package obm

// End-to-end integration tests across package boundaries: generate a
// workload, persist and reload it, replay it through every algorithm
// family, export and re-parse the experiment CSV, and check the global
// invariants the paper's evaluation relies on.

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"obm/internal/core"
	"obm/internal/flow"
	"obm/internal/graph"
	"obm/internal/sim"
	"obm/internal/trace"
)

func TestEndToEndPipeline(t *testing.T) {
	// 1. Generate and round-trip the workload through the binary codec.
	p := trace.FacebookPreset(trace.Database, 24, 5)
	p.Requests = 20000
	tr, err := trace.FacebookStyle(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	tr, err = trace.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// 2. Replay through every algorithm family on the same topology.
	top := graph.FatTreeRacks(24)
	model := core.CostModel{Metric: top.Metric(), Alpha: 30}
	cfg := sim.Config{
		Name:        "integration",
		Trace:       tr,
		Model:       model,
		Bs:          []int{4},
		Reps:        2,
		Checkpoints: sim.Checkpoints(tr.Len(), 5),
	}
	specs := []sim.AlgSpec{
		{Name: "r-bma", FixedB: -1, New: func(b int, rep uint64) (core.Algorithm, error) {
			return core.NewRBMA(24, b, model, rep)
		}},
		{Name: "bma", FixedB: -1, New: func(b int, rep uint64) (core.Algorithm, error) {
			return core.NewBMA(24, b, model)
		}},
		{Name: "so-bma", FixedB: -1, New: func(b int, rep uint64) (core.Algorithm, error) {
			return core.NewStaticFromTrace(tr, b, model)
		}},
		{Name: "batch", FixedB: -1, New: func(b int, rep uint64) (core.Algorithm, error) {
			return core.NewBatch(24, b, model, 500, 0.8)
		}},
		{Name: "rotor", FixedB: -1, New: func(b int, rep uint64) (core.Algorithm, error) {
			return core.NewRotor(24, b, model, 100)
		}},
		{Name: "oblivious", FixedB: 0, New: func(b int, rep uint64) (core.Algorithm, error) {
			return core.NewOblivious(model)
		}},
	}
	res, err := sim.RunExperimentParallel(cfg, specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	finals := res.FinalRouting()

	// 3. Global ordering invariants on skewed, temporally structured load:
	// every demand-aware scheme beats oblivious; demand-aware beats the
	// demand-oblivious rotor.
	obl := finals["oblivious(b=0)"]
	for _, name := range []string{"r-bma(b=4)", "bma(b=4)", "so-bma(b=4)", "batch(b=4)"} {
		if finals[name] >= obl {
			t.Fatalf("%s (%v) should beat oblivious (%v)", name, finals[name], obl)
		}
	}
	if finals["r-bma(b=4)"] >= finals["rotor(b=4)"] {
		t.Fatalf("r-bma (%v) should beat rotor (%v) on skewed traffic",
			finals["r-bma(b=4)"], finals["rotor(b=4)"])
	}

	// 4. CSV export parses back with consistent totals.
	var csv bytes.Buffer
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 1+len(res.Curves)*5 {
		t.Fatalf("CSV has %d lines, want %d", len(lines), 1+len(res.Curves)*5)
	}
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != 8 {
			t.Fatalf("bad CSV row %q", line)
		}
		routing, err1 := strconv.ParseFloat(fields[4], 64)
		reconf, err2 := strconv.ParseFloat(fields[5], 64)
		total, err3 := strconv.ParseFloat(fields[6], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("unparseable CSV row %q", line)
		}
		if diff := total - routing - reconf; diff > 0.51 || diff < -0.51 {
			t.Fatalf("CSV totals inconsistent in %q", line)
		}
	}
}

func TestEndToEndFlowLevel(t *testing.T) {
	// Cost-model improvement must translate into flow-level improvement.
	top := graph.FatTreeRacks(16)
	model := core.CostModel{Metric: top.Metric(), Alpha: 30}
	p := trace.FacebookPreset(trace.Hadoop, 16, 7)
	p.Requests = 15000
	tr, _ := trace.FacebookStyle(p)
	cfg := flow.Config{
		LinkCapacity: 100, OpticalCapacity: 400,
		MeanFlowSize: 50, ArrivalRate: 4, Seed: 2,
	}
	obl, err := flow.SimulateOblivious(top, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	alg, _ := core.NewRBMA(16, 3, model, 9)
	opt, err := flow.SimulateWithAlgorithm(top, tr, cfg, alg)
	if err != nil {
		t.Fatal(err)
	}
	if opt.MeanFCT >= obl.MeanFCT {
		t.Fatalf("flow-level FCT should improve with R-BMA: %v vs %v", opt.MeanFCT, obl.MeanFCT)
	}
}

func TestEndToEndUtilization(t *testing.T) {
	top := graph.FatTreeRacks(16)
	model := core.CostModel{Metric: top.Metric(), Alpha: 30}
	p := trace.FacebookPreset(trace.Database, 16, 3)
	p.Requests = 15000
	tr, _ := trace.FacebookStyle(p)

	alg, _ := core.NewRBMA(16, 3, model, 1)
	res, util, err := sim.RunWithUtilization(alg, tr, model.Alpha, top)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalMatchingSize == 0 || util.MatchedFraction == 0 {
		t.Fatal("expected a live matching")
	}
	if util.MaxLinkLoad < util.MeanLinkLoad {
		t.Fatal("max link load below mean")
	}
	if len(util.HottestLinks) == 0 {
		t.Fatal("no hottest links reported")
	}
}
