// Package obm is a from-scratch Go reproduction of "Optimizing
// Reconfigurable Optical Datacenters: The Power of Randomization"
// (Bienkowski, Fuchssteiner, Schmid; SC 2023): the randomized online
// (b,a)-matching algorithm R-BMA, its deterministic and offline baselines,
// the datacenter-topology and workload substrates, and a benchmark harness
// regenerating every figure of the paper's evaluation.
//
// See README.md for a guided tour, the layer map, and how to regenerate
// the figures. The library lives under internal/; the runnable entry
// points are cmd/ and examples/.
//
// Three cross-cutting design decisions shape the request hot path:
//
// Dense pair index. The pair universe — n·(n−1)/2 unordered rack pairs —
// is known up front, so per-pair state lives in flat arrays indexed by
// trace.PairID (a row-major int32 index) rather than hash maps:
// trace.Compiled pre-resolves each request once, the paging caches use
// slot tables (paging.DeclareUniverse, paging.MarkingBank), and
// matching.BMatching, R-BMA and BMA keep counters, incidence and
// membership in arrays and bitsets.
//
// Streaming replay. Workload generators are resumable trace.Streams,
// compiled against the metric chunk by chunk through trace.Source, so a
// 10⁸-request scenario replays under O(chunk) memory instead of O(T). The
// materialized Trace/Compiled path is the trivial adapter case of the same
// interface, and both produce bit-identical cost curves. The scenario-grid
// scheduler (sim.ScenarioSpec, sim.RunGrid, `experiments grid`) expands
// named JSON-encodable scenario specs — including the diurnal, hotspot-
// migration and tenant-mix families beyond the paper — into a (scenario ×
// algorithm × b × rep) job grid on a worker pool.
//
// Durable runs. Grid execution persists through internal/report: a run
// store (manifest.json + an atomically appended jobs.jsonl log) makes a
// grid resumable after a crash (`experiments grid -store DIR -resume`
// re-executes only missing jobs), shardable across processes or machines
// (`-shard i/n` owns a disjoint slice; `experiments merge` folds shard
// logs into one store), and self-documenting (`experiments report`
// renders Markdown summary tables and ASCII cost curves). Resume and
// merge are guarded by a SHA-256 spec hash so a store never absorbs
// results from a different grid. On top of the stores sits the experiment
// service (internal/serve, `experiments serve`): an HTTP/JSON API that
// queues submitted grids on a bounded worker pool, deduplicates them by
// spec hash into a content-addressed result cache (an identical grid
// submitted twice — even across restarts — is served from its finished
// store), streams per-job progress over SSE, and recovers interrupted
// grids mid-run after a crash or graceful shutdown.
//
// Distributed execution. The service doubles as a coordinator: it
// partitions each grid into leasable shards, and a fleet of worker
// processes (internal/work, `experiments worker`) drains them
// cooperatively — lease over HTTP, execute as a local shard store,
// heartbeat, upload the log. Expired leases requeue (at-least-once),
// and every duplicate record is verified bit-for-bit on absorption, so
// the merged summary is byte-identical to a single-process run
// regardless of worker count, crashes or duplicate completions.
// docs/OPERATIONS.md is the operator runbook.
//
// Seed reproducibility. Every randomized component draws from a stats.Rand
// seeded explicitly; identical seeds give bit-for-bit identical runs,
// independent of Go version, map iteration order, or internal
// representation. The golden suite in internal/core pins the algorithms'
// exact cost curves across trace families, and resumable generators extend
// the contract: Reset rewinds a stream bit-identically, and request
// sequences are independent of the chunk sizes used to read them. The run
// store leans on the same contract one level up — a grid job's costs are a
// pure function of its (scenario, algorithm, b, rep) identity, so resumed
// and sharded runs aggregate to summaries byte-identical to uninterrupted
// single-process runs.
package obm
