// Package obm is a from-scratch Go reproduction of "Optimizing
// Reconfigurable Optical Datacenters: The Power of Randomization"
// (Bienkowski, Fuchssteiner, Schmid; SC 2023): the randomized online
// (b,a)-matching algorithm R-BMA, its deterministic and offline baselines,
// the datacenter-topology and workload substrates, and a benchmark harness
// regenerating every figure of the paper's evaluation.
//
// See README.md for a guided tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The library lives under
// internal/; the runnable entry points are cmd/ and examples/.
package obm
