// Command tracegen generates synthetic datacenter traces and inspects their
// structure (spatial skew, temporal locality) — the statistics the paper's
// evaluation relies on when explaining the algorithms' relative behaviour.
//
// Usage:
//
//	tracegen -workload facebook-hadoop -racks 100 -requests 185000 \
//	         -seed 1 -format csv -out hadoop.csv
//	tracegen -workload uniform -requests 100000000 -stream -out huge.csv
//	tracegen -analyze hadoop.csv
//
// With -stream the trace is drained from its resumable generator chunk by
// chunk straight into the output file — memory stays O(1) however many
// requests are written, so traces far larger than RAM are fine. The bytes
// written are identical to the materialized path for the same parameters
// (the stream contract); the trade-off is that the structure statistics,
// which need the whole trace in memory, are skipped.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"obm/internal/trace"
)

func main() {
	var (
		workload = flag.String("workload", "facebook-database", "workload preset")
		racks    = flag.Int("racks", 100, "number of racks")
		requests = flag.Int("requests", 100000, "number of requests")
		seed     = flag.Uint64("seed", 1, "RNG seed")
		format   = flag.String("format", "csv", "output format: csv or bin")
		out      = flag.String("out", "", "output file ('' = stdout, csv only)")
		stream   = flag.Bool("stream", false, "stream the trace to the output chunk by chunk (O(1) memory, skips statistics)")
		analyze  = flag.String("analyze", "", "analyze an existing CSV trace instead of generating")
	)
	flag.Parse()

	if *analyze != "" {
		f, err := os.Open(*analyze)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := trace.ReadCSV(f)
		if err != nil {
			fatal(err)
		}
		printStats(tr)
		return
	}

	if *stream {
		st, err := newStream(*workload, *racks, *requests, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace %q: %d racks, %d requests (streamed)\n",
			st.Name(), st.NumRacks(), st.Len())
		if err := writeTo(*format, *out, func(w io.Writer) error {
			if *format == "bin" {
				return trace.WriteBinaryStream(w, st)
			}
			return trace.WriteCSVStream(w, st)
		}); err != nil {
			fatal(err)
		}
		return
	}

	tr, err := generate(*workload, *racks, *requests, *seed)
	if err != nil {
		fatal(err)
	}
	printStats(tr)
	if err := writeTo(*format, *out, func(w io.Writer) error {
		if *format == "bin" {
			return trace.WriteBinary(w, tr)
		}
		return trace.WriteCSV(w, tr)
	}); err != nil {
		fatal(err)
	}
}

// writeTo resolves the -format/-out flags into a writer and runs write
// against it.
func writeTo(format, out string, write func(io.Writer) error) error {
	switch format {
	case "csv":
		w := os.Stdout
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := write(w); err != nil {
			return err
		}
	case "bin":
		if out == "" {
			return fmt.Errorf("binary format requires -out")
		}
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := write(f); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s\n", out)
	}
	return nil
}

func generate(workload string, racks, requests int, seed uint64) (*trace.Trace, error) {
	switch workload {
	case "facebook-database":
		p := trace.FacebookPreset(trace.Database, racks, seed)
		p.Requests = requests
		return trace.FacebookStyle(p)
	case "facebook-webservice":
		p := trace.FacebookPreset(trace.WebService, racks, seed)
		p.Requests = requests
		return trace.FacebookStyle(p)
	case "facebook-hadoop":
		p := trace.FacebookPreset(trace.Hadoop, racks, seed)
		p.Requests = requests
		return trace.FacebookStyle(p)
	case "microsoft":
		return trace.MicrosoftStyle(racks, requests, seed), nil
	case "uniform":
		return trace.Uniform(racks, requests, seed), nil
	case "permutation":
		return trace.Permutation(racks, requests, seed), nil
	}
	return nil, fmt.Errorf("unknown workload %q", workload)
}

// newStream maps a workload preset onto its resumable generator — the
// same parameters as generate, never materialized. Every materialized
// preset has a streaming twin by construction (the materialized
// generators are Collect over these very streams).
func newStream(workload string, racks, requests int, seed uint64) (trace.Stream, error) {
	switch workload {
	case "facebook-database":
		p := trace.FacebookPreset(trace.Database, racks, seed)
		p.Requests = requests
		return trace.NewFacebookStream(p)
	case "facebook-webservice":
		p := trace.FacebookPreset(trace.WebService, racks, seed)
		p.Requests = requests
		return trace.NewFacebookStream(p)
	case "facebook-hadoop":
		p := trace.FacebookPreset(trace.Hadoop, racks, seed)
		p.Requests = requests
		return trace.NewFacebookStream(p)
	case "microsoft":
		return trace.NewMicrosoftStream(racks, requests, seed)
	case "uniform":
		return trace.NewUniformStream(racks, requests, seed)
	case "permutation":
		return trace.NewPermutationStream(racks, requests, seed)
	}
	return nil, fmt.Errorf("unknown workload %q", workload)
}

func printStats(tr *trace.Trace) {
	c := trace.Analyze(tr)
	fmt.Fprintf(os.Stderr, "trace %q: %d racks, %d requests\n", tr.Name, tr.NumRacks, tr.Len())
	fmt.Fprintf(os.Stderr, "  unique pairs:    %d\n", c.UniquePairs)
	fmt.Fprintf(os.Stderr, "  pair entropy:    %.2f bits\n", c.PairEntropy)
	fmt.Fprintf(os.Stderr, "  pair Gini:       %.3f (spatial skew)\n", c.PairGini)
	fmt.Fprintf(os.Stderr, "  top-10 share:    %.1f%%\n", 100*c.Top10Share)
	fmt.Fprintf(os.Stderr, "  repeat ratio:    %.3f\n", c.RepeatRatio)
	fmt.Fprintf(os.Stderr, "  temporal score:  %.3f (0 = i.i.d.)\n", c.TemporalScore)
	fmt.Fprintf(os.Stderr, "  working set/1k:  %.0f pairs\n", c.WorkingSet1k)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
