// Command tracegen generates synthetic datacenter traces and inspects their
// structure (spatial skew, temporal locality) — the statistics the paper's
// evaluation relies on when explaining the algorithms' relative behaviour.
//
// Usage:
//
//	tracegen -workload facebook-hadoop -racks 100 -requests 185000 \
//	         -seed 1 -format csv -out hadoop.csv
//	tracegen -analyze hadoop.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"obm/internal/trace"
)

func main() {
	var (
		workload = flag.String("workload", "facebook-database", "workload preset")
		racks    = flag.Int("racks", 100, "number of racks")
		requests = flag.Int("requests", 100000, "number of requests")
		seed     = flag.Uint64("seed", 1, "RNG seed")
		format   = flag.String("format", "csv", "output format: csv or bin")
		out      = flag.String("out", "", "output file ('' = stdout, csv only)")
		analyze  = flag.String("analyze", "", "analyze an existing CSV trace instead of generating")
	)
	flag.Parse()

	if *analyze != "" {
		f, err := os.Open(*analyze)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := trace.ReadCSV(f)
		if err != nil {
			fatal(err)
		}
		printStats(tr)
		return
	}

	tr, err := generate(*workload, *racks, *requests, *seed)
	if err != nil {
		fatal(err)
	}
	printStats(tr)
	switch *format {
	case "csv":
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := trace.WriteCSV(w, tr); err != nil {
			fatal(err)
		}
	case "bin":
		if *out == "" {
			fatal(fmt.Errorf("binary format requires -out"))
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := trace.WriteBinary(f, tr); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}

func generate(workload string, racks, requests int, seed uint64) (*trace.Trace, error) {
	switch workload {
	case "facebook-database":
		p := trace.FacebookPreset(trace.Database, racks, seed)
		p.Requests = requests
		return trace.FacebookStyle(p)
	case "facebook-webservice":
		p := trace.FacebookPreset(trace.WebService, racks, seed)
		p.Requests = requests
		return trace.FacebookStyle(p)
	case "facebook-hadoop":
		p := trace.FacebookPreset(trace.Hadoop, racks, seed)
		p.Requests = requests
		return trace.FacebookStyle(p)
	case "microsoft":
		return trace.MicrosoftStyle(racks, requests, seed), nil
	case "uniform":
		return trace.Uniform(racks, requests, seed), nil
	case "permutation":
		return trace.Permutation(racks, requests, seed), nil
	}
	return nil, fmt.Errorf("unknown workload %q", workload)
}

func printStats(tr *trace.Trace) {
	c := trace.Analyze(tr)
	fmt.Fprintf(os.Stderr, "trace %q: %d racks, %d requests\n", tr.Name, tr.NumRacks, tr.Len())
	fmt.Fprintf(os.Stderr, "  unique pairs:    %d\n", c.UniquePairs)
	fmt.Fprintf(os.Stderr, "  pair entropy:    %.2f bits\n", c.PairEntropy)
	fmt.Fprintf(os.Stderr, "  pair Gini:       %.3f (spatial skew)\n", c.PairGini)
	fmt.Fprintf(os.Stderr, "  top-10 share:    %.1f%%\n", 100*c.Top10Share)
	fmt.Fprintf(os.Stderr, "  repeat ratio:    %.3f\n", c.RepeatRatio)
	fmt.Fprintf(os.Stderr, "  temporal score:  %.3f (0 = i.i.d.)\n", c.TemporalScore)
	fmt.Fprintf(os.Stderr, "  working set/1k:  %.0f pairs\n", c.WorkingSet1k)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
