// Command bmatch runs one online b-matching algorithm on one workload and
// prints a cost breakdown: the quickest way to poke at the algorithms.
//
// Usage:
//
//	bmatch [-alg r-bma|bma|oblivious|so-bma] [-b 6] [-alpha 30]
//	       [-workload facebook-database|facebook-webservice|facebook-hadoop|
//	                  microsoft|uniform|permutation]
//	       [-racks 100] [-requests 100000] [-seed 1] [-trace file.csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"obm/internal/core"
	"obm/internal/graph"
	"obm/internal/sim"
	"obm/internal/trace"
)

func main() {
	var (
		alg      = flag.String("alg", "r-bma", "algorithm: r-bma, bma, oblivious, so-bma")
		b        = flag.Int("b", 6, "degree cap (number of optical switches)")
		alpha    = flag.Float64("alpha", 30, "reconfiguration cost α")
		workload = flag.String("workload", "facebook-database", "synthetic workload name")
		racks    = flag.Int("racks", 100, "number of racks")
		requests = flag.Int("requests", 100000, "number of requests")
		seed     = flag.Uint64("seed", 1, "RNG seed")
		traceCSV = flag.String("trace", "", "CSV trace file (overrides -workload)")
		showUtil = flag.Bool("utilization", false, "report per-link static-fabric utilization")
	)
	flag.Parse()

	tr, err := loadTrace(*traceCSV, *workload, *racks, *requests, *seed)
	if err != nil {
		fatal(err)
	}
	top := graph.FatTreeRacks(tr.NumRacks)
	model := core.CostModel{Metric: top.Metric(), Alpha: *alpha}
	algorithm, err := buildAlg(*alg, tr, *b, model, *seed)
	if err != nil {
		fatal(err)
	}
	res, err := sim.Run(algorithm, tr, model.Alpha, sim.Checkpoints(tr.Len(), 1))
	if err != nil {
		fatal(err)
	}
	routing := res.Series.Routing[len(res.Series.Routing)-1]
	reconfig := res.Series.Reconfig[len(res.Series.Reconfig)-1]
	obl, _ := core.NewOblivious(model)
	oblRes, err := sim.Run(obl, tr, model.Alpha, sim.Checkpoints(tr.Len(), 1))
	if err != nil {
		fatal(err)
	}
	oblRouting := oblRes.Series.Routing[0]

	fmt.Printf("trace:            %s (%d racks, %d requests)\n", tr.Name, tr.NumRacks, tr.Len())
	fmt.Printf("topology:         %s (ℓmax=%d)\n", top.Name(), model.Metric.Max())
	fmt.Printf("algorithm:        %s (b=%d, α=%g)\n", algorithm.Name(), *b, *alpha)
	fmt.Printf("routing cost:     %.0f\n", routing)
	fmt.Printf("reconfig cost:    %.0f (%d adds, %d removals)\n", reconfig, res.Adds, res.Removals)
	fmt.Printf("total cost:       %.0f\n", routing+reconfig)
	fmt.Printf("final matching:   %d edges\n", res.FinalMatchingSize)
	fmt.Printf("oblivious cost:   %.0f\n", oblRouting)
	fmt.Printf("routing saving:   %.1f%%\n", 100*(1-routing/oblRouting))
	fmt.Printf("decision loop:    %v\n", res.Elapsed)

	if *showUtil {
		fresh, err := buildAlg(*alg, tr, *b, model, *seed)
		if err != nil {
			fatal(err)
		}
		_, util, err := sim.RunWithUtilization(fresh, tr, model.Alpha, top)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("matched share:    %.1f%%\n", 100*util.MatchedFraction)
		fmt.Printf("max link load:    %.0f requests\n", util.MaxLinkLoad)
		fmt.Printf("mean link load:   %.1f requests\n", util.MeanLinkLoad)
		fmt.Printf("hottest links:    %v\n", util.HottestLinks)
	}
}

func loadTrace(file, workload string, racks, requests int, seed uint64) (*trace.Trace, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadCSV(f)
	}
	switch workload {
	case "facebook-database":
		p := trace.FacebookPreset(trace.Database, racks, seed)
		p.Requests = requests
		return trace.FacebookStyle(p)
	case "facebook-webservice":
		p := trace.FacebookPreset(trace.WebService, racks, seed)
		p.Requests = requests
		return trace.FacebookStyle(p)
	case "facebook-hadoop":
		p := trace.FacebookPreset(trace.Hadoop, racks, seed)
		p.Requests = requests
		return trace.FacebookStyle(p)
	case "microsoft":
		return trace.MicrosoftStyle(racks, requests, seed), nil
	case "uniform":
		return trace.Uniform(racks, requests, seed), nil
	case "permutation":
		return trace.Permutation(racks, requests, seed), nil
	}
	return nil, fmt.Errorf("unknown workload %q", workload)
}

func buildAlg(name string, tr *trace.Trace, b int, model core.CostModel, seed uint64) (core.Algorithm, error) {
	switch name {
	case "r-bma":
		return core.NewRBMA(tr.NumRacks, b, model, seed)
	case "bma":
		return core.NewBMA(tr.NumRacks, b, model)
	case "oblivious":
		return core.NewOblivious(model)
	case "so-bma":
		return core.NewStaticFromTrace(tr, b, model)
	}
	return nil, fmt.Errorf("unknown algorithm %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bmatch:", err)
	os.Exit(1)
}
