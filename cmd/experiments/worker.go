package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"obm/internal/work"
)

// workerMain implements the `experiments worker` subcommand: a fleet
// worker that connects to a running `experiments serve` coordinator,
// leases shards of submitted grids, executes them against local shard
// stores, and uploads the logs. Any number of workers — on any number of
// machines that can reach the coordinator — drain the same grid
// cooperatively; killing a worker at any point loses no results.
func workerMain(args []string) {
	fs := flag.NewFlagSet("experiments worker", flag.ExitOnError)
	var (
		coordinator = fs.String("coordinator", "", "base URL of the experiment service (required), e.g. http://127.0.0.1:8080")
		capacity    = fs.Int("capacity", 1, "shard leases executed concurrently by this worker")
		workdir     = fs.String("workdir", "work", "directory for in-flight shard stores (kept across restarts for resume)")
		name        = fs.String("name", "", "worker name in coordinator logs (default <hostname>-<pid>)")
		gridWorkers = fs.Int("grid-workers", 0, "sim worker pool per shard (0 = GOMAXPROCS)")
		chunk       = fs.Int("chunk", 0, "streaming chunk size in requests (0 = default)")
		parallel    = fs.Int("parallel", 1, "replay goroutines per multi-plane job (shards > 1); results are identical for every value")
		ckEvery     = fs.Int("checkpoint-every", 0, "checkpoint in-flight grid jobs every N requests so a restarted worker resumes inside them (0 = off)")
		poll        = fs.Duration("poll", 2*time.Second, "idle wait between lease attempts when nothing is leasable")
		metricsAddr = fs.String("metrics", "", "address to serve GET /metrics (obm_work_* + obm_grid_* series) and /healthz on (empty = off)")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "Usage: experiments worker -coordinator URL [flags]\n\n"+
			"Runs a fleet worker against an `experiments serve` coordinator: it\n"+
			"leases shards of submitted grids (POST /api/v1/jobs/{id}/lease),\n"+
			"executes each as a local sharded run store, heartbeats to keep the\n"+
			"lease alive, and uploads the shard's jobs.jsonl on completion.\n\n"+
			"Workers are disposable: a killed worker's lease expires and its shard\n"+
			"is re-leased to another worker; exact-agreement checks on the\n"+
			"coordinator make duplicate executions safe, so the merged summary is\n"+
			"byte-identical to a single-process run. On SIGINT/SIGTERM the worker\n"+
			"aborts in-flight shards at a chunk boundary, uploads their partial\n"+
			"logs so the coordinator requeues the shards immediately, and keeps\n"+
			"the local stores so restarting it resumes its own partial work.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}
	if *coordinator == "" {
		fs.Usage()
		fatal(fmt.Errorf("worker: -coordinator is required"))
	}

	r, err := work.New(work.Options{
		Coordinator:     *coordinator,
		Name:            *name,
		Capacity:        *capacity,
		Dir:             *workdir,
		GridWorkers:     *gridWorkers,
		ChunkSize:       *chunk,
		Parallel:        *parallel,
		CheckpointEvery: *ckEvery,
		Poll:            *poll,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fatal(err)
	}

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", r.Registry().Handler())
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "worker: metrics on http://%s/metrics\n", ln.Addr())
		go http.Serve(ln, mux)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	completed, err := r.Run(ctx)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "worker: stopped (%d shards completed)\n", completed)
}
