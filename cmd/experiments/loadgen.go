package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"obm/internal/engine"
	"obm/internal/obs"
	"obm/internal/sim"
	"obm/internal/trace"
)

// loadgenMain implements the `experiments loadgen` subcommand: an
// open-loop driver for the live engine's binary ingest port. Each
// connection owns one session and one workload stream (a trace.Stream
// from the scenario-family registry), pipelines batches up to -window
// deep, and reports achieved throughput. With -verify the final
// cumulative costs are checked bit-for-bit against an offline
// sim.RunSource replay of the same stream through an identically-seeded
// algorithm — the engine's determinism contract, asserted end to end over
// a real socket.
func loadgenMain(args []string) {
	fs := flag.NewFlagSet("experiments loadgen", flag.ExitOnError)
	var (
		ingest   = fs.String("ingest", "127.0.0.1:9091", "engine binary-ingest address")
		control  = fs.String("control", "http://127.0.0.1:9090", "engine control-plane URL for session setup (empty = sessions already exist)")
		session  = fs.String("session", "loadgen", "session id (id prefix when -conns > 1)")
		family   = fs.String("family", "uniform", "workload family (sim scenario registry)")
		racks    = fs.Int("racks", 64, "rack count")
		requests = fs.Int("requests", 1000000, "requests per connection")
		seed     = fs.Uint64("seed", 1, "base seed: connection i streams with seed+i and seeds its algorithm with seed+i")
		b        = fs.Int("b", 8, "matching degree cap")
		alg      = fs.String("alg", "r-bma", "algorithm")
		alpha    = fs.Float64("alpha", 30, "reconfiguration cost")
		shards   = fs.Int("shards", 0, "switch planes per session (0/1 = classic single plane)")
		batch    = fs.Int("batch", 1024, "requests per batch frame")
		window   = fs.Int("window", 8, "pipelined batches in flight per connection")
		conns    = fs.Int("conns", 1, "concurrent connections, each with its own session + stream")
		verify   = fs.Bool("verify", false, "after draining, replay offline and require bit-identical costs")
		keep     = fs.Bool("keep", false, "leave the sessions live instead of deleting them")
		resume   = fs.Bool("resume", false, "attach to existing sessions and stream only the tail past their served count (helloOK); -requests stays the full stream length")
		report   = fs.Duration("report-every", 0, "print a client-side progress line (req/s, batch RTT p50/p99, cumulative cost) every interval while streaming (0 = off)")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "Usage: experiments loadgen [flags]\n\n"+
			"Drives an `experiments engine` ingest port with generated workload\n"+
			"streams and reports throughput; -verify additionally replays the same\n"+
			"streams offline (sim.RunSource) and requires the engine's cumulative\n"+
			"costs to match bit for bit.\n\n"+
			"-resume re-attaches to sessions that already served a prefix of the\n"+
			"same seeded stream (a reconnect, or a session restored from a\n"+
			"snapshot): each connection skips the served count reported in helloOK\n"+
			"and streams the remaining tail, so -resume -verify proves a restored\n"+
			"session continues bit-identically to an uninterrupted run.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}

	type connResult struct {
		id       string
		skipped  int
		streamed int
		elapsed  time.Duration
		final    engine.BatchResult
		err      error
	}
	results := make([]connResult, *conns)

	// Session setup over the control plane.
	sessionID := func(i int) string {
		if *conns == 1 {
			return *session
		}
		return fmt.Sprintf("%s-%d", *session, i)
	}
	if *control != "" && !*resume {
		for i := 0; i < *conns; i++ {
			cfg := engine.SessionConfig{
				ID: sessionID(i), Racks: *racks, B: *b,
				Alg: *alg, Alpha: *alpha, Seed: *seed + uint64(i), Shards: *shards,
			}
			body, err := json.Marshal(cfg)
			if err != nil {
				fatal(err)
			}
			resp, err := http.Post(*control+"/api/v1/sessions", "application/json", bytes.NewReader(body))
			if err != nil {
				fatal(fmt.Errorf("loadgen: creating session %q: %w", cfg.ID, err))
			}
			if resp.StatusCode != http.StatusCreated {
				var msg bytes.Buffer
				msg.ReadFrom(resp.Body)
				resp.Body.Close()
				fatal(fmt.Errorf("loadgen: creating session %q: %s: %s", cfg.ID, resp.Status, msg.String()))
			}
			resp.Body.Close()
		}
		if !*keep {
			defer func() {
				for i := 0; i < *conns; i++ {
					req, _ := http.NewRequest(http.MethodDelete, *control+"/api/v1/sessions/"+sessionID(i), nil)
					if resp, err := http.DefaultClient.Do(req); err == nil {
						resp.Body.Close()
					}
				}
			}()
		}
	}

	// spec builds connection i's workload stream — and, under -verify, the
	// identically-parameterized offline replay.
	spec := func(i int) sim.ScenarioSpec {
		return sim.ScenarioSpec{
			Name: "loadgen", Family: *family,
			Racks: *racks, Requests: *requests, Seed: *seed + uint64(i),
			Alpha: *alpha, Bs: []int{*b}, Algs: []string{*alg}, Shards: *shards,
		}
	}

	// Client-side progress tracking for -report-every: a shared streamed
	// counter, a batch round-trip histogram (timestamps FIFO as deep as
	// the pipeline window — a Send that returns a result acked the oldest
	// in-flight batch), and each connection's latest cumulative result.
	track := *report > 0
	var (
		streamedTotal atomic.Int64
		rtt           obs.Histogram
		costMu        sync.Mutex
		lastRes       = make([]engine.BatchResult, *conns)
	)

	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := &results[i]
			r.id = sessionID(i)
			st, err := spec(i).NewStream()
			if err != nil {
				r.err = err
				return
			}
			c, hello, err := engine.DialIngest(*ingest, r.id, *window)
			if err != nil {
				r.err = err
				return
			}
			defer c.Close()
			buf := make([]trace.Request, *batch)
			if *resume {
				// The session already served a prefix of this same seeded
				// stream; drain that many requests from the front without
				// sending them, then stream the tail.
				skip := int(hello.Served)
				if skip > *requests {
					r.err = fmt.Errorf("loadgen: session already served %d requests, -requests is only %d", skip, *requests)
					return
				}
				for rem := skip; rem > 0; {
					n := st.Next(buf[:min(len(buf), rem)])
					if n == 0 {
						r.err = fmt.Errorf("loadgen: stream ended while skipping %d served requests", skip)
						return
					}
					rem -= n
				}
				r.skipped = skip
			}
			t0 := time.Now()
			var pend []time.Time
			for {
				n := st.Next(buf)
				if n == 0 {
					break
				}
				if track {
					pend = append(pend, time.Now())
				}
				res, err := c.Send(buf[:n])
				if err != nil {
					r.err = err
					return
				}
				r.streamed += n
				if track {
					streamedTotal.Add(int64(n))
					if res != nil {
						rtt.ObserveDuration(time.Since(pend[0]))
						copy(pend, pend[1:])
						pend = pend[:len(pend)-1]
						costMu.Lock()
						lastRes[i] = *res
						costMu.Unlock()
					}
				}
			}
			final, err := c.Drain()
			if err != nil {
				r.err = err
				return
			}
			r.elapsed = time.Since(t0)
			if final == nil {
				// A resumed session that had already served the full
				// stream: nothing went over the wire, so read the
				// cumulative counters off the control plane.
				if *control == "" {
					r.err = fmt.Errorf("loadgen: session already served all %d requests and no -control to read its counters from", *requests)
					return
				}
				resp, err := http.Get(*control + "/api/v1/sessions/" + r.id)
				if err != nil {
					r.err = err
					return
				}
				var status engine.SessionStatus
				err = json.NewDecoder(resp.Body).Decode(&status)
				resp.Body.Close()
				if err != nil {
					r.err = err
					return
				}
				r.final = engine.BatchResult{
					Served:   uint64(status.Served),
					Routing:  status.Routing,
					Reconfig: status.Reconfig,
				}
				return
			}
			r.final = *final
		}(i)
	}
	var reportDone, reportStop chan struct{}
	if track {
		reportStop, reportDone = make(chan struct{}), make(chan struct{})
		go func() {
			defer close(reportDone)
			t := time.NewTicker(*report)
			defer t.Stop()
			for {
				select {
				case <-reportStop:
					return
				case <-t.C:
				}
				el := time.Since(start).Seconds()
				n := streamedTotal.Load()
				sum := rtt.Summary()
				costMu.Lock()
				var routing, reconfig float64
				for _, res := range lastRes {
					routing += res.Routing
					reconfig += res.Reconfig
				}
				costMu.Unlock()
				fmt.Printf("loadgen: t=%5.1fs streamed %d reqs (%.3f Mreq/s), batch RTT p50 %dµs p99 %dµs, cost %.0f (routing %.0f + reconfig %.0f)\n",
					el, n, float64(n)/el/1e6, sum.P50/1000, sum.P99/1000, routing+reconfig, routing, reconfig)
			}
		}()
	}

	wg.Wait()
	if track {
		close(reportStop)
		<-reportDone
	}
	wall := time.Since(start)

	total := 0
	for i := range results {
		r := &results[i]
		if r.err != nil {
			fatal(fmt.Errorf("loadgen: conn %s: %w", r.id, r.err))
		}
		if int(r.final.Served) != r.skipped+r.streamed {
			fatal(fmt.Errorf("loadgen: conn %s: engine served %d, expected %d (%d resumed + %d streamed)",
				r.id, r.final.Served, r.skipped+r.streamed, r.skipped, r.streamed))
		}
		total += r.streamed
		fmt.Printf("loadgen: conn %s: %d reqs in %.2fs = %.3f Mreq/s, routing %.0f, reconfig %.0f, matching %d\n",
			r.id, r.streamed, r.elapsed.Seconds(), float64(r.streamed)/r.elapsed.Seconds()/1e6,
			r.final.Routing, r.final.Reconfig, r.final.MatchingSize)
	}
	fmt.Printf("loadgen: total %d reqs over %d conns in %.2fs = %.3f Mreq/s\n",
		total, *conns, wall.Seconds(), float64(total)/wall.Seconds()/1e6)

	if *verify {
		for i := range results {
			s := spec(i)
			a, err := s.BuildAlgorithm(*alg, *b, *seed+uint64(i))
			if err != nil {
				fatal(err)
			}
			src, err := s.NewSource()
			if err != nil {
				fatal(err)
			}
			res, err := sim.RunSource(a, src, *alpha, []int{*requests}, 0)
			if err != nil {
				fatal(err)
			}
			r := &results[i]
			if math.Float64bits(r.final.Routing) != math.Float64bits(res.Series.Routing[0]) ||
				math.Float64bits(r.final.Reconfig) != math.Float64bits(res.Series.Reconfig[0]) {
				fatal(fmt.Errorf("loadgen: verify MISMATCH on %s: engine (%v, %v) != offline (%v, %v)",
					r.id, r.final.Routing, r.final.Reconfig, res.Series.Routing[0], res.Series.Reconfig[0]))
			}
		}
		fmt.Printf("loadgen: verify MATCH: %d conns bit-identical to offline replay\n", *conns)
	}
}
