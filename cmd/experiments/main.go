// Command experiments regenerates the paper's evaluation figures
// (Figures 1–4, sub-figures a/b/c) end to end: it synthesizes the
// workloads, runs every algorithm/b combination with averaging, and emits
// tidy CSV files plus terminal summaries and ASCII charts.
//
// Usage:
//
//	experiments [-figure all|fig1a|…] [-scale 1.0] [-reps 5] [-seed 1]
//	            [-outdir results] [-chart]
//
// The full-scale run (-scale 1.0) replays up to 1.75M requests per figure;
// use -scale 0.1 for a quick pass.
//
// The grid subcommand runs named scenario specs — beyond the paper's
// figures — through the scenario-grid scheduler with streamed,
// bounded-memory trace replay. With -store the run is durable (each
// finished job appends to a run-store log), resumable (-resume skips
// completed jobs after a crash or interruption) and shardable (-shard i/n
// executes one of n disjoint job slices):
//
//	experiments grid [-list] [-scenario name,…] [-scenarios file.json]
//	                 [-scale 1.0] [-workers 0] [-outdir results] [-format csv]
//	                 [-store runs/my-grid] [-resume] [-shard i/n] [-curve-points 10]
//
// The merge subcommand folds shard (or partial) stores of the same grid
// into one full-grid store; report renders any store as Markdown plus a
// deterministic summary CSV:
//
//	experiments merge -out runs/merged runs/shard0 runs/shard1
//	experiments report -store runs/merged [-stdout]
//
// The serve subcommand runs the experiment service: an HTTP/JSON API
// that queues, deduplicates and executes submitted grids over a root of
// run stores — identical spec lists are content-addressed cache hits,
// interrupted grids resume after a restart, and per-job progress streams
// over SSE (see internal/serve):
//
//	experiments serve -addr 127.0.0.1:8080 -store-root runs/serve -workers 2
//
// The worker subcommand joins a fleet draining that service's grids: it
// leases shards (slices of a grid's job plan) from the coordinator,
// executes them locally, and uploads the shard logs; expired leases are
// requeued, so workers can be added and killed freely (see internal/work
// and docs/OPERATIONS.md):
//
//	experiments worker -coordinator http://127.0.0.1:8080 -capacity 2
//
// The engine subcommand runs the live matching engine: long-lived
// algorithm sessions served over an HTTP/JSON control plane plus a
// zero-allocation binary batch-ingest port, with cumulative costs
// bit-identical to offline replay; loadgen drives it with generated
// workload streams and (with -verify) asserts that identity end to end
// (see internal/engine):
//
//	experiments engine -addr 127.0.0.1:9090 -ingest 127.0.0.1:9091
//	experiments loadgen -family uniform -requests 1000000 -verify
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"obm/internal/figures"
	"obm/internal/sim"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "grid":
			gridMain(os.Args[2:])
			return
		case "merge":
			mergeMain(os.Args[2:])
			return
		case "report":
			reportMain(os.Args[2:])
			return
		case "serve":
			serveMain(os.Args[2:])
			return
		case "worker":
			workerMain(os.Args[2:])
			return
		case "engine":
			engineMain(os.Args[2:])
			return
		case "loadgen":
			loadgenMain(os.Args[2:])
			return
		default:
			// Anything positional that is not a known subcommand must not
			// fall through to figure mode (whose default is the full-scale
			// `-figure all` run).
			if !strings.HasPrefix(os.Args[1], "-") {
				fatal(fmt.Errorf("unknown subcommand %q (have: grid, merge, report, serve, worker, engine, loadgen; figure mode takes flags only)", os.Args[1]))
			}
		}
	}
	var (
		figureID = flag.String("figure", "all", "figure to run (fig1a…fig4c, ext-…), 'all' (paper figures), or 'extras'")
		scale    = flag.Float64("scale", 1.0, "request-count scale factor in (0,1]")
		reps     = flag.Int("reps", 5, "repetitions to average (paper: 5)")
		seed     = flag.Uint64("seed", 1, "base RNG seed")
		outdir   = flag.String("outdir", "results", "directory for CSV output")
		chart    = flag.Bool("chart", true, "print ASCII charts")
		parallel = flag.Int("parallel", 0, "worker pool size for cost figures (0 = sequential; "+
			"execution-time figures always run sequentially for clean timings)")
	)
	flag.Parse()

	var figs []figures.Figure
	switch *figureID {
	case "all":
		figs = figures.All()
	case "extras":
		figs = figures.Extras()
	default:
		f, err := figures.ByID(*figureID)
		if err != nil {
			fatal(err)
		}
		figs = []figures.Figure{f}
	}
	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		fatal(err)
	}
	for _, f := range figs {
		if err := runFigure(f, *scale, *reps, *seed, *outdir, *chart, *parallel); err != nil {
			fatal(fmt.Errorf("%s: %w", f.ID, err))
		}
	}
}

func runFigure(f figures.Figure, scale float64, reps int, seed uint64, outdir string, chart bool, parallel int) error {
	fmt.Printf("=== %s: %s ===\n", f.ID, f.Title)
	start := time.Now()
	cfg, specs, err := f.Build(scale, reps, seed)
	if err != nil {
		return err
	}
	var res *sim.Result
	if parallel > 0 && f.Metric != figures.ExecutionTime {
		res, err = sim.RunExperimentParallel(cfg, specs, parallel)
	} else {
		res, err = sim.RunExperiment(cfg, specs)
	}
	if err != nil {
		return err
	}
	for _, row := range res.SummaryRows() {
		fmt.Println("  " + row)
	}
	if chart {
		value := func(a sim.Averaged, i int) float64 { return a.Routing[i] }
		title := "cumulative routing cost"
		if f.Metric == figures.ExecutionTime {
			// Execution time is a scalar per curve; chart routing anyway and
			// rely on the summary rows for times.
			title = "cumulative routing cost (see rows above for times)"
		}
		fmt.Println(sim.ASCIIChart(title, res.Curves, 64, 14, value))
	}
	path := filepath.Join(outdir, f.ID+".csv")
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	defer file.Close()
	if err := res.WriteCSV(file); err != nil {
		return err
	}
	fmt.Printf("  wrote %s (%.1fs)\n\n", path, time.Since(start).Seconds())
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
