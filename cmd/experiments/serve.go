package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"obm/internal/serve"
)

// serveMain implements the `experiments serve` subcommand: the
// long-running experiment service. Clients POST the same ScenarioSpec
// JSON a `grid -scenarios` file holds and get back a job keyed by the
// run's spec hash; identical grids are served from the store root's
// content-addressed cache, interrupted ones resume on restart.
func serveMain(args []string) {
	fs := flag.NewFlagSet("experiments serve", flag.ExitOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:8080", "listen address")
		storeRoot   = fs.String("store-root", "runs/serve", "root directory holding one run store per job (the durable queue + result cache)")
		workers     = fs.Int("workers", 1, "grids executed concurrently by this process (0 = coordinator-only: grids progress via fleet workers)")
		queueDepth  = fs.Int("queue", 16, "max queued jobs before submissions get 429")
		gridWorkers = fs.Int("grid-workers", 0, "sim worker pool per grid (0 = GOMAXPROCS)")
		chunk       = fs.Int("chunk", 0, "streaming chunk size in requests (0 = default)")
		parallel    = fs.Int("parallel", 1, "replay goroutines per multi-plane job (shards > 1); results are identical for every value")
		curvePts    = fs.Int("curve-points", 10, "cost-curve checkpoints per job (part of the job identity)")
		leaseTTL    = fs.Duration("lease-ttl", 30*time.Second, "fleet shard-lease TTL: a worker missing heartbeats this long is presumed dead and its shard requeued")
		shardSize   = fs.Int("shard-size", 16, "target grid jobs per leasable fleet shard")
		leaseWAL    = fs.Bool("lease-wal", true, "journal fleet lease/queue state to a per-job WAL so a crashed (kill -9) coordinator restarts into live leases instead of a requeued grid")
		drain       = fs.Duration("drain", 30*time.Second, "graceful-shutdown drain budget before in-flight grids are interrupted (they stay resumable)")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "Usage: experiments serve [flags]\n\n"+
			"Runs the experiment service: an HTTP/JSON API that queues, caches and\n"+
			"executes scenario grids over the durable run-store layer.\n\n"+
			"  POST /api/v1/jobs                  submit a ScenarioSpec JSON list\n"+
			"  GET  /api/v1/jobs                  list jobs\n"+
			"  GET  /api/v1/jobs/{id}             job status\n"+
			"  GET  /api/v1/jobs/{id}/events      SSE progress stream\n"+
			"  GET  /api/v1/jobs/{id}/summary.csv rendered artifacts of done jobs\n"+
			"  GET  /api/v1/jobs/{id}/report.md\n"+
			"  GET  /api/v1/jobs/{id}/curves.json\n"+
			"  POST /api/v1/jobs/{id}/lease       fleet protocol (experiments worker)\n"+
			"  POST /api/v1/jobs/{id}/shards/{k}/heartbeat\n"+
			"  POST /api/v1/jobs/{id}/shards/{k}/complete\n"+
			"  GET  /api/v1/jobs/{id}/shards      shard/lease states\n"+
			"  GET  /metrics                      Prometheus text exposition (obm_serve_* + obm_grid_*)\n"+
			"  GET  /healthz\n\n"+
			"Identical spec lists dedupe onto one job (the run's SHA-256 spec hash);\n"+
			"a finished job is a cache hit, across restarts. Grids execute on this\n"+
			"process's pool (-workers) and/or on a fleet of `experiments worker`\n"+
			"processes leasing shards of -shard-size grid jobs under -lease-ttl.\n"+
			"On SIGINT/SIGTERM the service drains in-flight grids, then interrupts\n"+
			"them at a chunk boundary — every completed grid job is already\n"+
			"persisted, so a restart on the same -store-root resumes mid-grid.\n"+
			"Fleet lease state is journaled per job (-lease-wal), so even a\n"+
			"kill -9'd coordinator restarts into its outstanding leases.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}

	if *workers == 0 {
		*workers = -1 // flag 0 = coordinator-only; Options uses negative for it
	}
	s, err := serve.New(serve.Options{
		StoreRoot:   *storeRoot,
		Workers:     *workers,
		QueueDepth:  *queueDepth,
		GridWorkers: *gridWorkers,
		ChunkSize:   *chunk,
		Parallel:    *parallel,
		CurvePoints: *curvePts,
		LeaseTTL:    *leaseTTL,
		ShardSize:   *shardSize,
		NoLeaseWAL:  !*leaseWAL,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: s.Handler()}
	fmt.Fprintf(os.Stderr, "serve: listening on http://%s (store root %s)\n", ln.Addr(), *storeRoot)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "serve: %s — draining (budget %s)\n", sig, *drain)
	case err := <-errc:
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Service and HTTP shutdown run concurrently: the service closes its
	// stop channel first thing, which ends open SSE streams — otherwise a
	// single `curl -N .../events` client would hold srv.Shutdown (and the
	// whole drain budget) hostage.
	svcDone := make(chan error, 1)
	go func() { svcDone <- s.Shutdown(ctx) }()
	srv.Shutdown(ctx)
	if err := <-svcDone; err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "serve: stopped")
}
