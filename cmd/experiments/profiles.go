package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiles enables pprof profiling for a run: a CPU profile collected
// from now until the returned stop function runs, and a heap profile
// snapshotted by stop (after a GC, so it shows live retained memory, not
// transient garbage). Either path may be empty. stop is idempotent-enough
// for a single deferred call and reports write failures on stderr rather
// than clobbering the command's exit path.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "  cpuprofile: %v\n", err)
			} else {
				fmt.Printf("  wrote %s\n", cpuPath)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "  memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "  memprofile: %v\n", err)
				f.Close()
				return
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "  memprofile: %v\n", err)
				return
			}
			fmt.Printf("  wrote %s\n", memPath)
		}
	}, nil
}
