package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"obm/internal/report"
	"obm/internal/sim"
)

// parseShard parses the -shard "i/n" syntax ("" = full grid). Strict:
// trailing garbage ("1/10o", "0/2/3") must not silently run the wrong
// partition.
func parseShard(s string) (report.Shard, error) {
	if s == "" {
		return report.Shard{}, nil
	}
	is, ns, ok := strings.Cut(s, "/")
	if !ok {
		return report.Shard{}, fmt.Errorf("grid: -shard %q: want \"i/n\" (e.g. 0/4)", s)
	}
	i, err1 := strconv.Atoi(is)
	n, err2 := strconv.Atoi(ns)
	if err1 != nil || err2 != nil {
		return report.Shard{}, fmt.Errorf("grid: -shard %q: want \"i/n\" (e.g. 0/4)", s)
	}
	if n < 2 || i < 0 || i >= n {
		return report.Shard{}, fmt.Errorf("grid: -shard %q: need 0 <= i < n and n >= 2", s)
	}
	return report.Shard{Index: i, Count: n}, nil
}

// openOrCreateStore resolves the -store/-resume/-shard flags into an open
// run store: a fresh store for a new directory, the existing store when
// resuming — after verifying it really holds this grid (spec hash) and
// this shard, so a resumed run can never silently mix grids.
func openOrCreateStore(dir string, specs []sim.ScenarioSpec, curvePoints int, shard report.Shard, resume bool) (*report.Store, error) {
	m, err := report.NewManifest("experiments grid", specs, curvePoints, shard)
	if err != nil {
		return nil, err
	}
	if !report.Exists(dir) {
		return report.Create(dir, m)
	}
	if !resume {
		return nil, fmt.Errorf("grid: %s already holds a run store; pass -resume to continue it, or choose a fresh -store directory", dir)
	}
	st, err := report.Open(dir)
	if err != nil {
		return nil, err
	}
	have := st.Manifest()
	if have.SpecHash != m.SpecHash {
		st.Close()
		return nil, fmt.Errorf("grid: %s holds a different grid (spec hash %.12s, flags produce %.12s); "+
			"resume with the original scenario/scale/reps/curve-points flags or choose a fresh -store directory",
			dir, have.SpecHash, m.SpecHash)
	}
	if have.Shard != shard {
		st.Close()
		return nil, fmt.Errorf("grid: %s was created as shard %s, flags say %s", dir, have.Shard, shard)
	}
	return st, nil
}

// renderStore writes the store's summary.csv and report.md next to its
// log, so a finished run documents itself.
func renderStore(st *report.Store) error {
	csvPath, mdPath, err := st.Render()
	if err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", csvPath)
	fmt.Printf("  wrote %s\n", mdPath)
	return nil
}

// mergeMain implements `experiments merge`: fold shard (or partial) run
// stores of the same grid into one store, then render it.
func mergeMain(args []string) {
	fs := flag.NewFlagSet("experiments merge", flag.ExitOnError)
	out := fs.String("out", "", "directory for the merged run store (required, must be fresh)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "Usage: experiments merge -out DIR STORE1 STORE2 ...\n\n"+
			"Folds the job logs of several run stores of the same grid — typically\n"+
			"one per -shard i/n slice — into one full-grid store at DIR. Overlapping\n"+
			"records must agree exactly; a complete merged store is rendered to\n"+
			"summary.csv and report.md.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}
	srcs := fs.Args()
	if *out == "" || len(srcs) == 0 {
		fs.Usage()
		os.Exit(2)
	}
	st, err := report.Merge(*out, srcs...)
	if err != nil {
		fatal(err)
	}
	defer st.Close()
	missing, err := st.Missing()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  merged %s -> %s: %d jobs recorded, %d missing\n",
		strings.Join(srcs, " + "), *out, st.Len(), len(missing))
	if len(missing) == 0 {
		if err := renderStore(st); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("  resume the rest with: experiments grid -store %s -resume ...\n", *out)
	}
}

// reportMain implements `experiments report`: render an existing run
// store to Markdown + summary CSV (whether or not it is complete).
func reportMain(args []string) {
	fs := flag.NewFlagSet("experiments report", flag.ExitOnError)
	var (
		dir    = fs.String("store", "", "run-store directory to render (required)")
		stdout = fs.Bool("stdout", false, "print the Markdown report to stdout instead of writing files")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "Usage: experiments report -store DIR [-stdout]\n\n"+
			"Renders a run store into summary.csv (deterministic per-cell costs)\n"+
			"and report.md (per-scenario tables and ASCII cost curves), written\n"+
			"into the store directory.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}
	if *dir == "" {
		fs.Usage()
		os.Exit(2)
	}
	st, err := report.Open(*dir)
	if err != nil {
		fatal(err)
	}
	defer st.Close()
	if *stdout {
		if err := st.WriteReport(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if err := renderStore(st); err != nil {
		fatal(err)
	}
}
