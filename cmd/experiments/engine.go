package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"obm/internal/engine"
)

// jsonList is a repeatable flag collecting raw JSON documents.
type jsonList []string

func (l *jsonList) String() string     { return strings.Join(*l, " ") }
func (l *jsonList) Set(s string) error { *l = append(*l, s); return nil }

// engineMain implements the `experiments engine` subcommand: the live
// matching engine. It owns algorithm sessions and serves them on two
// ports — an HTTP/JSON control plane (sessions, single-request serve,
// status with latency quantiles, pprof) and a binary batch-ingest TCP
// port (the zero-allocation hot path; see internal/engine's wire format).
func engineMain(args []string) {
	fs := flag.NewFlagSet("experiments engine", flag.ExitOnError)
	var creates jsonList
	var (
		addr        = fs.String("addr", "127.0.0.1:9090", "HTTP control/status listen address (also serves /debug/pprof)")
		ingest      = fs.String("ingest", "127.0.0.1:9091", "binary batch-ingest listen address")
		maxSessions = fs.Int("max-sessions", 64, "live session cap")
		quiet       = fs.Bool("quiet", false, "suppress per-connection log lines")
	)
	fs.Var(&creates, "create", "create a session at startup from SessionConfig JSON "+
		`(e.g. '{"id":"live","racks":64,"b":8}'; repeatable)`)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "Usage: experiments engine [flags]\n\n"+
			"Runs the live matching engine: long-lived algorithm sessions served at\n"+
			"line rate. Control plane (-addr):\n\n"+
			"  POST   /api/v1/sessions            create ({\"id\",\"racks\",\"b\",\"alg\",\"alpha\",\"seed\",\"shards\"})\n"+
			"  GET    /api/v1/sessions            all session statuses\n"+
			"  GET    /api/v1/sessions/{id}       status: cumulative costs + latency quantiles\n"+
			"  DELETE /api/v1/sessions/{id}       drop a session\n"+
			"  POST   /api/v1/sessions/{id}/serve serve one request ({\"u\":3,\"v\":7})\n"+
			"  GET    /api/v1/sessions/{id}/churn per-batch matching churn as NDJSON (?after=seq, ?follow=1)\n"+
			"  POST   /api/v1/sessions/{id}/snapshot serialize the session (octet-stream)\n"+
			"  POST   /api/v1/sessions/restore    recreate a session from a snapshot body (?id= renames)\n"+
			"  GET    /metrics                    Prometheus text exposition (obm_engine_*)\n"+
			"  GET    /healthz                    liveness\n"+
			"  /debug/pprof/                      runtime profiles\n\n"+
			"Bulk traffic goes to the binary protocol on -ingest (see\n"+
			"`experiments loadgen` and internal/engine). A session fed a request\n"+
			"sequence reports cumulative costs bit-identical to an offline replay\n"+
			"of that sequence with the same algorithm parameters and seed.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}

	opts := engine.Options{MaxSessions: *maxSessions}
	if !*quiet {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	e := engine.New(opts)
	for _, doc := range creates {
		var cfg engine.SessionConfig
		dec := json.NewDecoder(strings.NewReader(doc))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&cfg); err != nil {
			fatal(fmt.Errorf("engine: bad -create %q: %w", doc, err))
		}
		s, err := e.CreateSession(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "engine: created session %q\n", s.ID())
	}

	ingestLn, err := net.Listen("tcp", *ingest)
	if err != nil {
		fatal(err)
	}
	httpLn, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: e.Handler()}
	fmt.Fprintf(os.Stderr, "engine: control on http://%s, binary ingest on %s\n",
		httpLn.Addr(), ingestLn.Addr())

	errc := make(chan error, 2)
	go func() { errc <- e.ServeIngest(ingestLn) }()
	go func() { errc <- srv.Serve(httpLn) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "engine: %s — shutting down\n", sig)
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	e.Close()
	fmt.Fprintln(os.Stderr, "engine: stopped")
}
