package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"obm/internal/obs"
	"obm/internal/report"
	"obm/internal/sim"
)

// gridMain implements the `experiments grid` subcommand: it selects
// scenarios (registered presets, names, or a JSON file), expands the
// (scenario × algorithm × b × rep) job grid, and executes it on the worker
// pool with streamed, bounded-memory replay. With -store the run is
// durable: completed jobs append to a run-store log, -resume picks a
// crashed or partial run up where it left off, and -shard i/n executes
// only the i-th of n disjoint job slices (merged later via `experiments
// merge`).
func gridMain(args []string) {
	fs := flag.NewFlagSet("experiments grid", flag.ExitOnError)
	var (
		file      = fs.String("scenarios", "", "JSON file with a scenario list ([{...}]); empty = registered presets")
		names     = fs.String("scenario", "", "comma-separated registered scenario names (default: all presets)")
		list      = fs.Bool("list", false, "list registered scenarios, families and algorithms, then exit")
		scale     = fs.Float64("scale", 1.0, "request-count scale factor in (0,1]")
		reps      = fs.Int("reps", 0, "override repetitions per job (0 = per-spec value)")
		workers   = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		chunk     = fs.Int("chunk", 0, "streaming chunk size in requests (0 = default)")
		outdir    = fs.String("outdir", "results", "directory for grid.csv / grid.json output")
		format    = fs.String("format", "csv", "output format: csv, json, or both")
		progress  = fs.Bool("progress", true, "print per-job progress to stderr")
		storeDir  = fs.String("store", "", "run-store directory for durable execution (empty = fire-and-forget)")
		resume    = fs.Bool("resume", false, "resume an existing run store (-store), skipping completed jobs")
		shardSpec = fs.String("shard", "", "own only slice i of n disjoint job slices, as \"i/n\" (requires -store)")
		curvePts  = fs.Int("curve-points", 10, "cost-curve checkpoints recorded per job in the store (0 = final costs only)")
		parallel  = fs.Int("parallel", 1, "replay goroutines per job for multi-plane scenarios (shards > 1); results are identical for every value")
		ckEvery   = fs.Int("checkpoint-every", 0, "with -store: checkpoint in-flight jobs every N requests so -resume restarts inside them (0 = off)")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU pprof profile of the grid run to this file")
		memProf   = fs.String("memprofile", "", "write a heap pprof profile (taken after the run) to this file")
		metrics   = fs.String("metrics", "", "address to serve GET /metrics (obm_grid_* series) on while the grid runs (empty = off)")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "Usage: experiments grid [flags]\n\n"+
			"Runs named scenario specs through the grid scheduler with streamed,\n"+
			"bounded-memory trace replay. Scenarios come from the built-in registry\n"+
			"(-scenario name,... selects a subset) or a JSON file (-scenarios).\n\n"+
			"With -store DIR each completed job is appended to DIR/jobs.jsonl;\n"+
			"re-invoking with -resume skips completed jobs, and -shard i/n restricts\n"+
			"this process to a disjoint slice of the grid (fold slices together with\n"+
			"`experiments merge`, render any store with `experiments report`).\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}
	if *list {
		fmt.Println("scenarios:")
		for _, s := range sim.Scenarios() {
			fmt.Printf("  %-26s family=%-18s racks=%-4d requests=%-8d bs=%v reps=%d\n",
				s.Name, s.Family, s.Racks, s.Requests, s.Bs, s.Reps)
		}
		fmt.Printf("families:   %s\n", strings.Join(sim.Families(), ", "))
		fmt.Printf("algorithms: %s\n", strings.Join(sim.Algorithms(), ", "))
		return
	}

	specs, err := selectScenarios(*file, *names)
	if err != nil {
		fatal(err)
	}
	if *scale <= 0 || *scale > 1 {
		fatal(fmt.Errorf("grid: -scale %v out of (0,1]", *scale))
	}
	for i := range specs {
		if *scale < 1 {
			// Scale down with a 1000-request floor — but never scale a
			// spec up past its own size.
			scaled := int(float64(specs[i].Requests) * *scale)
			scaled = max(scaled, min(1000, specs[i].Requests))
			specs[i].Requests = scaled
		}
		if *reps > 0 {
			specs[i].Reps = *reps
		}
	}

	stopProfiles, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	opt := sim.GridOptions{Workers: *workers, ChunkSize: *chunk, Parallel: *parallel, CheckpointEvery: *ckEvery}
	if *metrics != "" {
		reg := obs.NewRegistry()
		opt.Metrics = sim.NewMetrics(reg)
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", reg.Handler())
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			fatal(err)
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "  grid: metrics on http://%s/metrics\n", ln.Addr())
		go http.Serve(ln, mux)
	}
	if *progress {
		opt.Progress = func(done, total int, job sim.GridJob, err error) {
			status := "ok"
			if err != nil {
				status = "FAILED"
			}
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s %s\n", done, total, job, status)
		}
	}

	shard, err := parseShard(*shardSpec)
	if err != nil {
		fatal(err)
	}
	var st *report.Store
	if *storeDir != "" {
		st, err = openOrCreateStore(*storeDir, specs, *curvePts, shard, *resume)
		if err != nil {
			fatal(err)
		}
		defer st.Close()
		opt = st.GridOptions(opt)
		if n := st.Len(); n > 0 {
			fmt.Printf("  resuming %s: %d jobs already recorded\n", *storeDir, n)
		}
		if st.Truncated() > 0 {
			fmt.Printf("  dropped %d crash-truncated record(s); the jobs will re-run\n", st.Truncated())
		}
	} else {
		if !shard.IsFull() {
			fatal(fmt.Errorf("grid: -shard requires -store (shard slices only make sense when merged from their logs)"))
		}
		if *ckEvery > 0 {
			fatal(fmt.Errorf("grid: -checkpoint-every requires -store (checkpoints live in the store's checkpoints/ directory)"))
		}
		opt.CurvePoints = 0
	}

	start := time.Now()
	res, err := sim.RunGrid(specs, opt)
	if err != nil {
		fatal(err)
	}
	if st != nil {
		if err := st.Sync(); err != nil {
			fatal(err)
		}
		missing, err := st.Missing()
		if err != nil {
			fatal(err)
		}
		if len(missing) == 0 && shard.IsFull() {
			// A complete full-grid store documents itself.
			if err := renderStore(st); err != nil {
				fatal(err)
			}
		} else if !shard.IsFull() {
			fmt.Printf("  shard %s complete: merge slices with `experiments merge -out DIR %s ...`\n",
				shard, *storeDir)
		}
	}
	for _, row := range res.SummaryRows() {
		fmt.Println("  " + row)
	}
	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		fatal(err)
	}
	if *format == "csv" || *format == "both" {
		if err := writeGridFile(res.WriteCSV, filepath.Join(*outdir, "grid.csv")); err != nil {
			fatal(err)
		}
	}
	if *format == "json" || *format == "both" {
		if err := writeGridFile(res.WriteJSON, filepath.Join(*outdir, "grid.json")); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("  grid: %d rows in %.1fs\n", len(res.Rows), time.Since(start).Seconds())
}

// selectScenarios resolves the -scenarios / -scenario flags into specs.
func selectScenarios(file, names string) ([]sim.ScenarioSpec, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return sim.ReadScenarios(f)
	}
	if names == "" {
		return sim.Scenarios(), nil
	}
	var specs []sim.ScenarioSpec
	for _, name := range strings.Split(names, ",") {
		spec, err := sim.ScenarioByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

func writeGridFile(write func(w io.Writer) error, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", path)
	return nil
}
