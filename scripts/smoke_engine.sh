#!/usr/bin/env bash
# End-to-end smoke test of the live matching engine (`experiments engine`):
#
#   1. start the engine (HTTP control plane + binary ingest port);
#   2. drive it with `experiments loadgen -verify`, which streams a
#      generated workload over the binary protocol and asserts the
#      engine's cumulative costs are bit-identical to an offline
#      sim.RunSource replay of the same stream — the determinism
#      contract, end to end over a real socket;
#   3. assert the achieved ingest rate clears a conservative throughput
#      floor (the acceptance benchmark BenchmarkEngineIngest pins the
#      real line-rate number; this floor only catches order-of-magnitude
#      collapses on slow CI runners);
#   4. exercise the HTTP single-request path and the status/pprof
#      endpoints;
#   5. shut the engine down gracefully (SIGINT).
#
# Usage: scripts/smoke_engine.sh [throughput_floor_mreq_per_s]
set -euo pipefail
cd "$(dirname "$0")/.."

floor="${1:-0.2}"

tmp=$(mktemp -d)
engine_pid=""
cleanup() {
	if [ -n "$engine_pid" ] && kill -0 "$engine_pid" 2>/dev/null; then
		kill -INT "$engine_pid" 2>/dev/null || true
		wait "$engine_pid" 2>/dev/null || true
	fi
	rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/experiments" ./cmd/experiments

port=$((20000 + RANDOM % 20000))
addr="127.0.0.1:$port"
ingest="127.0.0.1:$((port + 1))"
"$tmp/experiments" engine -addr "$addr" -ingest "$ingest" >"$tmp/engine.log" 2>&1 &
engine_pid=$!

for _ in $(seq 1 100); do
	if curl -sf "http://$addr/healthz" >/dev/null 2>&1; then
		break
	fi
	if ! kill -0 "$engine_pid" 2>/dev/null; then
		echo "smoke_engine: engine died on startup:" >&2
		cat "$tmp/engine.log" >&2
		exit 1
	fi
	sleep 0.1
done
curl -sf "http://$addr/healthz" >/dev/null

# Loadgen with -verify: two connections, each a session + workload stream,
# costs checked bit-for-bit against offline replay after draining.
# -report-every exercises the client-side progress reporter (the run may
# finish before the first tick, so only the exit status is asserted).
"$tmp/experiments" loadgen -ingest "$ingest" -control "http://$addr" \
	-family uniform -racks 48 -requests 300000 -conns 2 -seed 7 \
	-report-every 25ms -verify -keep | tee "$tmp/loadgen.out"
grep -q 'verify MATCH' "$tmp/loadgen.out"

# Throughput floor on the aggregate rate loadgen reports.
rate=$(sed -n 's/^loadgen: total .* = \([0-9.]*\) Mreq\/s$/\1/p' "$tmp/loadgen.out")
if [ -z "$rate" ]; then
	echo "smoke_engine: no total throughput line in loadgen output" >&2
	exit 1
fi
if ! awk -v r="$rate" -v f="$floor" 'BEGIN { exit !(r >= f) }'; then
	echo "smoke_engine: ingest rate $rate Mreq/s below floor $floor Mreq/s" >&2
	exit 1
fi

# The sessions were kept alive (-keep): status must report the served
# counts and latency quantiles, and the single-request HTTP path must
# advance the counter.
status=$(curl -sf "http://$addr/api/v1/sessions/loadgen-0")
grep -q '"served": 300000' <<<"$status"
grep -q '"p99_us"' <<<"$status"

# The metrics exposition must carry the ingest counters (2 conns x 300000
# requests), the per-session series, and the batch-size summary.
metrics=$(curl -sf "http://$addr/metrics")
ingested=$(sed -n 's/^obm_engine_ingest_requests_total \([0-9]*\)$/\1/p' <<<"$metrics")
if [ -z "$ingested" ] || [ "$ingested" -lt 600000 ]; then
	echo "smoke_engine: obm_engine_ingest_requests_total=$ingested, want >= 600000" >&2
	exit 1
fi
grep -q '^obm_engine_session_served_total{session="loadgen-0"} 300000$' <<<"$metrics"
grep -q '^obm_engine_batch_requests{quantile="0.5"}' <<<"$metrics"
grep -q '^obm_engine_session_batch_seconds_count{session="loadgen-0"}' <<<"$metrics"

# The churn stream must replay per-batch matching deltas for the session.
churn=$(curl -sf "http://$addr/api/v1/sessions/loadgen-0/churn")
grep -q '"adds":' <<<"$churn"
grep -q '"reconfig_delta":' <<<"$churn"

served=$(curl -sf -X POST --data '{"u":1,"v":2}' \
	"http://$addr/api/v1/sessions/loadgen-0/serve" |
	sed -n 's/.*"served": \([0-9]*\).*/\1/p')
if [ "$served" != "300001" ]; then
	echo "smoke_engine: HTTP serve did not advance the counter (served=$served)" >&2
	exit 1
fi

# A second scrape must be monotone on the ingest counter and reflect the
# HTTP-served request in the per-session series.
metrics2=$(curl -sf "http://$addr/metrics")
ingested2=$(sed -n 's/^obm_engine_ingest_requests_total \([0-9]*\)$/\1/p' <<<"$metrics2")
if [ -z "$ingested2" ] || [ "$ingested2" -lt "$ingested" ]; then
	echo "smoke_engine: ingest counter went backwards ($ingested -> $ingested2)" >&2
	exit 1
fi
grep -q '^obm_engine_session_served_total{session="loadgen-0"} 300001$' <<<"$metrics2"

# pprof rides on the status port.
curl -sf "http://$addr/debug/pprof/cmdline" >/dev/null

# Delete a session; its status must 404.
curl -sf -X DELETE "http://$addr/api/v1/sessions/loadgen-1" >/dev/null
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/api/v1/sessions/loadgen-1")
if [ "$code" != "404" ]; then
	echo "smoke_engine: deleted session still answers (HTTP $code)" >&2
	exit 1
fi

# Snapshot/restore leg: stream half a workload into a fresh session,
# snapshot it over HTTP, kill the engine hard (kill -9 — nothing graceful
# to lean on), restart it, restore the session from the blob, and stream
# the remaining half with `loadgen -resume -verify`: the resumed session's
# final costs must still be bit-identical to an offline replay of the FULL
# stream — a snapshot really is the session, mid-stream, to the bit.
"$tmp/experiments" loadgen -ingest "$ingest" -control "http://$addr" \
	-session ckpt -family uniform -racks 48 -requests 150000 -conns 1 -seed 9 \
	-keep >"$tmp/loadgen_head.out"
curl -sf -X POST "http://$addr/api/v1/sessions/ckpt/snapshot" -o "$tmp/ckpt.bin"
if [ ! -s "$tmp/ckpt.bin" ]; then
	echo "smoke_engine: snapshot endpoint returned an empty blob" >&2
	exit 1
fi

kill -9 "$engine_pid"
wait "$engine_pid" 2>/dev/null || true
"$tmp/experiments" engine -addr "$addr" -ingest "$ingest" >>"$tmp/engine.log" 2>&1 &
engine_pid=$!
for _ in $(seq 1 100); do
	if curl -sf "http://$addr/healthz" >/dev/null 2>&1; then
		break
	fi
	if ! kill -0 "$engine_pid" 2>/dev/null; then
		echo "smoke_engine: engine died on restart:" >&2
		cat "$tmp/engine.log" >&2
		exit 1
	fi
	sleep 0.1
done

curl -sf -X POST --data-binary "@$tmp/ckpt.bin" \
	"http://$addr/api/v1/sessions/restore" >/dev/null
restored=$(curl -sf "http://$addr/api/v1/sessions/ckpt" |
	sed -n 's/.*"served": \([0-9]*\).*/\1/p' | head -1)
if [ "$restored" != "150000" ]; then
	echo "smoke_engine: restored session reports served=$restored, want 150000" >&2
	exit 1
fi

"$tmp/experiments" loadgen -ingest "$ingest" -control "http://$addr" \
	-session ckpt -family uniform -racks 48 -requests 300000 -conns 1 -seed 9 \
	-resume -verify | tee "$tmp/loadgen_resume.out"
grep -q 'verify MATCH' "$tmp/loadgen_resume.out"

# Graceful shutdown.
kill -INT "$engine_pid"
wait "$engine_pid"
engine_pid=""

echo "smoke_engine: OK (verify MATCH, $rate Mreq/s >= $floor floor; snapshot->kill -9->restore->resume MATCH)"
