#!/usr/bin/env sh
# bench.sh — run the figure benchmark suite and emit machine-readable JSON.
#
# Usage:
#   scripts/bench.sh [out.json] [benchtime] [pattern]
#
#   out.json   output path; default is a timestamped BENCH_<yyyymmddHHMMSS>.json
#              in the repo root, "-" writes to stdout
#   benchtime  go test -benchtime value (default: 1s)
#   pattern    benchmark regexp (default: the Fig1 suite + Serve microbenchmarks
#              — the acceptance benchmarks of the dense-hot-path refactor — plus
#              the ReplayParallel multi-core scaling suite, whose shards=1..8
#              sub-benchmarks record speedup-vs-cores in the BENCH_* trajectory,
#              and EngineIngest, the live engine's end-to-end socket path whose
#              mreq_per_s + allocs/op pin the zero-alloc line-rate contract)
#
# The JSON schema is one object per benchmark:
#   {"name": ..., "iterations": N, "ns_per_op": ..., "bytes_per_op": ...,
#    "allocs_per_op": ..., "metrics": {"routing_cost": ..., ...}}
# Compare two runs with scripts/bench_compare.sh (used by CI to gate ns/op
# regressions against BENCH_baseline.json), or with benchstat on the raw
# `go test -bench` output.
set -eu

cd "$(dirname "$0")/.."

OUT="${1:-BENCH_$(date +%Y%m%d%H%M%S).json}"
BENCHTIME="${2:-1s}"
PATTERN="${3:-BenchmarkFig1|BenchmarkServe|BenchmarkReplayParallel|BenchmarkEngineIngest}"

if [ "$OUT" = "-" ]; then
    OUT=""
fi

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" -count 1 . | tee "$RAW" >&2

# Parse `go test -bench` lines:
#   BenchmarkFig1a   675  1712661 ns/op  10692 routing_cost ... 516912 B/op  3395 allocs/op
awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix
    iters = $2
    ns = ""; bytes = ""; allocs = ""; metrics = ""
    for (i = 3; i < NF; i += 2) {
        val = $i; unit = $(i + 1)
        if (unit == "ns/op") ns = val
        else if (unit == "B/op") bytes = val
        else if (unit == "allocs/op") allocs = val
        else {
            if (metrics != "") metrics = metrics ", "
            metrics = metrics "\"" unit "\": " val
        }
    }
    if (out != "") out = out ",\n"
    out = out sprintf("  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"metrics\": {%s}}",
                      name, iters, ns, bytes == "" ? "null" : bytes, allocs == "" ? "null" : allocs, metrics)
}
END { printf "[\n%s\n]\n", out }
' "$RAW" > "${OUT:-/dev/stdout}"

if [ -n "$OUT" ]; then
    echo "wrote $OUT" >&2
fi
