#!/usr/bin/env bash
# Docs-freshness check: every command inside the ```sh blocks of
# README.md and docs/OPERATIONS.md must exit zero, so the docs can never
# drift ahead of (or behind) the code. Illustrative, long-running
# walkthroughs (server sessions, curl transcripts) use ```bash blocks,
# which are not executed.
#
# The commands run in a throwaway copy of the repository, so the stores,
# CSVs and charts they write never touch the working tree. Commands whose
# runtime has no place in a docs check are skipped by pattern:
#   - `go test …`       (CI runs the suite directly)
#   - bench suites      (CI runs the benchmark-regression job directly)
#   - `-figure all`     (the full-scale figure regeneration, minutes long)
#   - distributed smoke (CI runs scripts/smoke_distributed.sh directly)
#   - engine smoke      (CI runs scripts/smoke_engine.sh directly)
#
# Usage: scripts/check_docs.sh
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_RE='go test|bench|-figure all|smoke_distributed|smoke_engine'
DOCS=(README.md docs/OPERATIONS.md)

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
mkdir -p "$tmp/repo"
tar -c --exclude ./.git --exclude ./results --exclude ./runs . | tar -x -C "$tmp/repo"
cd "$tmp/repo"

# Every example must build even if the docs never run it.
go build ./... ./examples/...

ran=0
for doc in "${DOCS[@]}"; do
	mapfile -t cmds < <(awk '/^```sh$/{f=1;next} /^```/{f=0} f' "$doc" |
		sed -e 's/[[:space:]]*#.*$//' -e 's/[[:space:]]*$//' | grep -v '^$' || true)
	if [ "${#cmds[@]}" -eq 0 ]; then
		echo "check_docs: no sh code blocks found in $doc" >&2
		exit 1
	fi
	for cmd in "${cmds[@]}"; do
		if [[ "$cmd" =~ $SKIP_RE ]]; then
			echo "SKIP  [$doc] $cmd"
			continue
		fi
		echo "RUN   [$doc] $cmd"
		if ! bash -c "$cmd" >/dev/null 2>"$tmp/stderr"; then
			echo "check_docs: $doc command failed: $cmd" >&2
			cat "$tmp/stderr" >&2
			exit 1
		fi
		ran=$((ran + 1))
	done
done
echo "check_docs: $ran doc commands ran clean"
