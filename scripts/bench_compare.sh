#!/usr/bin/env sh
# bench_compare.sh — gate ns/op regressions between two bench.sh JSON files.
#
# Usage:
#   scripts/bench_compare.sh baseline.json new.json [tolerance_pct]
#
#   tolerance_pct  allowed per-benchmark slowdown in percent (default: 25)
#
# Raw ns/op numbers are machine-dependent (the committed BENCH_baseline.json
# was captured on one box, CI runs on another), so comparing them directly
# would gate on hardware, not code. Instead the ratio new/old is computed
# per benchmark, the median ratio is taken as the machine-speed factor, and
# a benchmark fails only if its ratio exceeds median × (1 + tolerance):
# a *relative* regression concentrated in some benchmarks. A uniform
# slowdown of the whole suite shifts the median and is invisible here —
# catch that by re-running bench.sh on the baseline's machine.
#
# The BenchmarkReplayParallel/shards=N suite participates in the same gate
# (each sub-benchmark is an ordinary name-keyed entry). Because its numbers
# come from the new run's machine, a speedup-vs-shards summary is also
# printed, informationally: parallel replay scales with real cores, so the
# ratio is ~1x on a single-core box and approaches the shard count on a
# machine with that many cores. The gate itself never fails on scaling —
# only on per-benchmark ns/op regressions like every other entry.
#
# Throughput metrics gate too: every benchmark reporting an mreq_per_s
# custom metric (BenchmarkEngineIngest, the ReplayParallel suite)
# contributes a "name@mreq_per_s" entry whose value is the *inverse*
# throughput, so a throughput drop is a ratio increase and flows through
# the same median-normalized limit as ns/op. An engine ingest rate
# regression therefore fails CI exactly like a decision-loop slowdown.
set -eu

BASE="${1:?usage: bench_compare.sh baseline.json new.json [tolerance_pct]}"
NEW="${2:?usage: bench_compare.sh baseline.json new.json [tolerance_pct]}"
TOL="${3:-25}"

# Extract "name value" pairs: ns_per_op under the benchmark name, plus an
# inverse-throughput entry per mreq_per_s metric (bigger = worse for both,
# so one gate covers latency and throughput). Accepts both the flat array
# bench.sh emits and the annotated BENCH_baseline.json object (whose
# current numbers live under the "baseline" key).
extract() {
    python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
if isinstance(d, dict):
    d = d.get("baseline", [])
for b in d:
    if b.get("ns_per_op"):
        print(b["name"], b["ns_per_op"])
    mreq = (b.get("metrics") or {}).get("mreq_per_s")
    if mreq:
        print(b["name"] + "@mreq_per_s", 1.0 / mreq)
' "$1"
}

BASETAB="$(mktemp)"
NEWTAB="$(mktemp)"
trap 'rm -f "$BASETAB" "$NEWTAB"' EXIT
extract "$BASE" > "$BASETAB"
extract "$NEW" > "$NEWTAB"

awk -v tol="$TOL" '
BEGIN { n = 0 } # explicit: an uninitialized subscript is "" in mawk, not 0
NR == FNR { base[$1] = $2; next }
{
    if ($1 in base && base[$1] > 0 && $2 > 0) {
        name[n] = $1
        ratio[n] = $2 / base[$1]
        n++
    }
}
END {
    if (n == 0) {
        print "bench_compare: no common benchmarks between the two files" > "/dev/stderr"
        exit 2
    }
    # Median of ratios = machine-speed factor.
    for (i = 0; i < n; i++) sorted[i] = ratio[i]
    for (i = 0; i < n; i++)
        for (j = i + 1; j < n; j++)
            if (sorted[j] < sorted[i]) { t = sorted[i]; sorted[i] = sorted[j]; sorted[j] = t }
    median = (n % 2) ? sorted[int(n/2)] : (sorted[n/2-1] + sorted[n/2]) / 2
    limit = median * (1 + tol / 100)
    printf "bench_compare: %d benchmarks, machine factor %.3f, per-benchmark limit %.3f (+%s%%)\n", n, median, limit, tol
    fail = 0
    for (i = 0; i < n; i++) {
        verdict = "ok"
        if (ratio[i] > limit) { verdict = "REGRESSION"; fail = 1 }
        printf "  %-40s ratio %.3f  %s\n", name[i], ratio[i], verdict
    }
    exit fail
}
' "$BASETAB" "$NEWTAB"

# Informational: multi-core replay scaling from the new run. shards=1 is the
# sequential reference; speedup(N) = ns/op(shards=1) / ns/op(shards=N).
awk '
$1 ~ /^BenchmarkReplayParallel\/shards=/ {
    n = $1
    sub(/^.*shards=/, "", n)
    ns[n + 0] = $2
    if (n + 0 > maxn) maxn = n + 0
}
END {
    if (!(1 in ns)) exit 0
    printf "bench_compare: replay scaling (new run; ~1x is expected on a single-core box)\n"
    for (s = 1; s <= maxn; s++)
        if (s in ns)
            printf "  shards=%-3d speedup %.2fx\n", s, ns[1] / ns[s]
}
' "$NEWTAB"
