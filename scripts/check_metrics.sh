#!/usr/bin/env bash
# Exposition lint for every /metrics endpoint in the system. Boots the
# three long-running binaries (engine, coordinator, fleet worker), pushes
# a little traffic through the engine so its dynamic per-session series
# exist, scrapes each exposition, and checks Prometheus text-format
# well-formedness:
#
#   - every non-empty line is a sample or a `# HELP` / `# TYPE` comment;
#   - `# TYPE` names one of counter|gauge|summary and appears exactly
#     once per family, before any of the family's samples;
#   - metric names match [a-zA-Z_:][a-zA-Z0-9_:]*;
#   - no series (name + label set) is emitted twice;
#   - every sample value is numeric.
#
# CI runs this as part of the engine smoke job; it is also a quick local
# sanity check after touching internal/obs or any metric registration.
#
# Usage: scripts/check_metrics.sh
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pids=()
cleanup() {
	for pid in "${pids[@]:-}"; do
		if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
			kill -INT "$pid" 2>/dev/null || true
			wait "$pid" 2>/dev/null || true
		fi
	done
	rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/experiments" ./cmd/experiments

lint() { # file label
	awk -v src="$2" '
		function fail(msg) { printf "check_metrics: %s:%d: %s: %s\n", src, NR, msg, $0; bad = 1 }
		/^# HELP / { next }
		/^# TYPE / {
			fam = $3; kind = $4
			if (fam !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*$/) fail("bad family name in TYPE")
			if (kind != "counter" && kind != "gauge" && kind != "summary") fail("bad kind in TYPE")
			if (fam in typed) fail("duplicate TYPE for family")
			typed[fam] = kind
			next
		}
		/^#/ { fail("comment is neither HELP nor TYPE"); next }
		/^$/ { next }
		{
			if (!match($0, /^[a-zA-Z_:][a-zA-Z0-9_:]*/)) { fail("bad metric name"); next }
			name = substr($0, RSTART, RLENGTH)
			series = $0
			sub(/ [^ ]*$/, "", series)
			if (seen[series]++) fail("duplicate series")
			fam = name
			if (!(fam in typed) && typed[substr(fam, 1, length(fam) - 4)] == "summary" && fam ~ /_sum$/)
				fam = substr(fam, 1, length(fam) - 4)
			if (!(fam in typed) && typed[substr(fam, 1, length(fam) - 6)] == "summary" && fam ~ /_count$/)
				fam = substr(fam, 1, length(fam) - 6)
			if (!(fam in typed)) fail("sample precedes its TYPE (or family has none)")
			if ($NF !~ /^-?(0x)?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$/ && $NF != "NaN" && $NF !~ /^[+-]?Inf$/)
				fail("non-numeric sample value")
		}
		END { exit bad }
	' "$1"
}

port=$((20000 + RANDOM % 20000))
addr="127.0.0.1:$port"
ingest="127.0.0.1:$((port + 1))"
serve_addr="127.0.0.1:$((port + 2))"
worker_metrics="127.0.0.1:$((port + 3))"

wait_healthz() { # url pid what
	for _ in $(seq 1 100); do
		if curl -sf "$1/healthz" >/dev/null 2>&1; then
			return 0
		fi
		if ! kill -0 "$2" 2>/dev/null; then
			echo "check_metrics: $3 died on startup" >&2
			exit 1
		fi
		sleep 0.1
	done
	curl -sf "$1/healthz" >/dev/null
}

# Engine, with a sharded session fed real traffic so the per-session and
# per-plane series are live in the exposition.
"$tmp/experiments" engine -addr "$addr" -ingest "$ingest" -quiet \
	-create '{"id":"check","racks":32,"b":4,"shards":2}' >"$tmp/engine.log" 2>&1 &
pids+=($!)
wait_healthz "http://$addr" "${pids[-1]}" engine
"$tmp/experiments" loadgen -ingest "$ingest" -control "" -session check \
	-family uniform -racks 32 -requests 20000 -b 4 -shards 2 -keep >/dev/null
curl -sf "http://$addr/metrics" >"$tmp/engine.metrics"

# Coordinator + one fleet worker (its own exposition is on -metrics).
"$tmp/experiments" serve -addr "$serve_addr" -store-root "$tmp/serve-root" \
	-workers 0 >"$tmp/serve.log" 2>&1 &
pids+=($!)
wait_healthz "http://$serve_addr" "${pids[-1]}" coordinator
"$tmp/experiments" worker -coordinator "http://$serve_addr" \
	-workdir "$tmp/work" -metrics "$worker_metrics" -poll 100ms \
	>"$tmp/worker.log" 2>&1 &
pids+=($!)
wait_healthz "http://$worker_metrics" "${pids[-1]}" worker
curl -sf "http://$serve_addr/metrics" >"$tmp/serve.metrics"
curl -sf "http://$worker_metrics/metrics" >"$tmp/worker.metrics"

for what in engine serve worker; do
	if ! lint "$tmp/$what.metrics" "$what"; then
		echo "check_metrics: $what exposition is malformed (full text below)" >&2
		cat "$tmp/$what.metrics" >&2
		exit 1
	fi
	# Each binary must expose its own namespace.
	case $what in
	engine) grep -q '^obm_engine_ingest_requests_total ' "$tmp/$what.metrics" ;;
	serve) grep -q '^obm_serve_submissions_total ' "$tmp/$what.metrics" &&
		grep -q '^obm_grid_requests_total ' "$tmp/$what.metrics" ;;
	worker) grep -q '^obm_work_leases_total ' "$tmp/$what.metrics" &&
		grep -q '^obm_grid_requests_total ' "$tmp/$what.metrics" ;;
	esac
done

echo "check_metrics: OK (engine, coordinator and worker expositions well-formed)"
