#!/usr/bin/env bash
# End-to-end smoke test of the experiment service (`experiments serve`):
#
#   1. start the service on a free port with a fresh store root;
#   2. submit a tiny grid over HTTP and poll it to completion;
#   3. fetch summary.csv and assert it is byte-identical to a direct
#      `experiments grid -store` run of the same specs (the service must
#      be a transparent front end over the same deterministic grid);
#   4. resubmit the identical specs and assert a cache hit (no recompute);
#   5. shut the service down gracefully (SIGINT) and check it drains.
#
# CI runs this as the service smoke job; scripts/check_docs.sh runs it
# from the README, so the quickstart can never drift from the code.
#
# Usage: scripts/smoke_serve.sh
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
server_pid=""
cleanup() {
	if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
		kill -INT "$server_pid" 2>/dev/null || true
		wait "$server_pid" 2>/dev/null || true
	fi
	rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/experiments" ./cmd/experiments

cat >"$tmp/specs.json" <<'EOF'
[
  {
    "name": "smoke",
    "family": "uniform",
    "racks": 8,
    "requests": 2000,
    "seed": 1,
    "bs": [2],
    "reps": 2,
    "algs": ["r-bma", "oblivious"]
  }
]
EOF

port=$((20000 + RANDOM % 20000))
addr="127.0.0.1:$port"
"$tmp/experiments" serve -addr "$addr" -store-root "$tmp/serve-root" \
	>"$tmp/serve.log" 2>&1 &
server_pid=$!

for _ in $(seq 1 100); do
	if curl -sf "http://$addr/healthz" >/dev/null 2>&1; then
		break
	fi
	if ! kill -0 "$server_pid" 2>/dev/null; then
		echo "smoke_serve: server died on startup:" >&2
		cat "$tmp/serve.log" >&2
		exit 1
	fi
	sleep 0.1
done
curl -sf "http://$addr/healthz" >/dev/null

# Submit and remember the job id (= the run's spec hash).
submit=$(curl -sf -X POST --data-binary @"$tmp/specs.json" "http://$addr/api/v1/jobs")
job_id=$(sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p' <<<"$submit")
if [ -z "$job_id" ]; then
	echo "smoke_serve: submission returned no job id: $submit" >&2
	exit 1
fi

# Poll to completion.
state=""
for _ in $(seq 1 300); do
	status=$(curl -sf "http://$addr/api/v1/jobs/$job_id")
	state=$(sed -n 's/.*"state": "\([a-z]*\)".*/\1/p' <<<"$status")
	case "$state" in
	done) break ;;
	failed)
		echo "smoke_serve: job failed: $status" >&2
		exit 1
		;;
	esac
	sleep 0.1
done
if [ "$state" != "done" ]; then
	echo "smoke_serve: job never finished (state=$state)" >&2
	cat "$tmp/serve.log" >&2
	exit 1
fi

curl -sf "http://$addr/api/v1/jobs/$job_id/summary.csv" >"$tmp/served.csv"
curl -sf "http://$addr/api/v1/jobs/$job_id/report.md" >"$tmp/served.md"
grep -q '^# Run report' "$tmp/served.md"

# The same grid run directly (same curve-points as the service default)
# must render a byte-identical summary.
"$tmp/experiments" grid -scenarios "$tmp/specs.json" -store "$tmp/direct" \
	-curve-points 10 -outdir "$tmp/direct-out" -progress=false >/dev/null
if ! cmp -s "$tmp/served.csv" "$tmp/direct/summary.csv"; then
	echo "smoke_serve: served summary.csv differs from direct RunGrid:" >&2
	diff "$tmp/served.csv" "$tmp/direct/summary.csv" >&2 || true
	exit 1
fi

# Resubmitting the identical specs is a cache hit: HTTP 200 + cached flag.
code=$(curl -s -o "$tmp/resubmit.json" -w '%{http_code}' \
	-X POST --data-binary @"$tmp/specs.json" "http://$addr/api/v1/jobs")
if [ "$code" != "200" ] || ! grep -q '"cached": true' "$tmp/resubmit.json"; then
	echo "smoke_serve: resubmission was not a cache hit (HTTP $code):" >&2
	cat "$tmp/resubmit.json" >&2
	exit 1
fi

# Graceful shutdown must drain and exit zero.
kill -INT "$server_pid"
wait "$server_pid"
server_pid=""

echo "smoke_serve: OK (job $job_id, summary byte-identical, cache hit confirmed)"
