#!/usr/bin/env bash
# End-to-end smoke test of distributed grid execution (`experiments serve`
# as a coordinator-only service + an `experiments worker` fleet):
#
#   1. run the reference grid directly (`experiments grid -store`);
#   2. start the coordinator with -workers 0 (no local execution) and a
#      small -shard-size so the grid splits into several leasable shards;
#   3. start 2 worker processes against it;
#   4. submit the same specs over HTTP and poll the job to completion —
#      every grid job necessarily flowed through shard leases;
#   5. assert the served summary.csv is byte-identical to the direct run
#      and that every shard reports done;
#   6. chaos: SIGINT a worker mid-shard (handoff + requeue), then
#      kill -9 the coordinator mid-grid and restart it on the same
#      store-root — the lease WAL must rebuild the job and the summary
#      must still be byte-identical;
#   7. stop the fleet and the coordinator gracefully (SIGINT).
#
# CI runs this as the distributed smoke job; docs/OPERATIONS.md points
# here as the runnable form of the fleet runbook.
#
# Usage: scripts/smoke_distributed.sh
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pids=()
cleanup() {
	for pid in "${pids[@]:-}"; do
		if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
			kill -INT "$pid" 2>/dev/null || true
			wait "$pid" 2>/dev/null || true
		fi
	done
	rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/experiments" ./cmd/experiments

cat >"$tmp/specs.json" <<'EOF'
[
  {
    "name": "dist-uni",
    "family": "uniform",
    "racks": 10,
    "requests": 4000,
    "seed": 11,
    "bs": [2, 3],
    "reps": 2,
    "algs": ["r-bma", "bma"]
  },
  {
    "name": "dist-ps",
    "family": "phase-shift",
    "racks": 10,
    "requests": 4000,
    "seed": 12,
    "bs": [2],
    "reps": 2,
    "algs": ["r-bma", "oblivious"]
  }
]
EOF

# Reference: the same grid, single process, same curve-points as the
# service default.
"$tmp/experiments" grid -scenarios "$tmp/specs.json" -store "$tmp/direct" \
	-curve-points 10 -outdir "$tmp/direct-out" -progress=false >/dev/null

port=$((20000 + RANDOM % 20000))
addr="127.0.0.1:$port"
"$tmp/experiments" serve -addr "$addr" -store-root "$tmp/serve-root" \
	-workers 0 -shard-size 2 -lease-ttl 10s \
	>"$tmp/serve.log" 2>&1 &
pids+=($!)
server_pid=$!

for _ in $(seq 1 100); do
	if curl -sf "http://$addr/healthz" >/dev/null 2>&1; then
		break
	fi
	if ! kill -0 "$server_pid" 2>/dev/null; then
		echo "smoke_distributed: coordinator died on startup:" >&2
		cat "$tmp/serve.log" >&2
		exit 1
	fi
	sleep 0.1
done
curl -sf "http://$addr/healthz" >/dev/null

# A 2-worker fleet. Workers poll fast so the smoke stays quick;
# -checkpoint-every arms the mid-shard handoff exercised by the chaos leg.
# Each worker exposes its obm_work_*/obm_grid_* metrics on its own port.
worker_pids=()
for w in 1 2; do
	"$tmp/experiments" worker -coordinator "http://$addr" -capacity 2 \
		-workdir "$tmp/w$w" -name "smoke-w$w" -poll 100ms \
		-checkpoint-every 500000 -grid-workers 1 \
		-metrics "127.0.0.1:$((port + 1 + w))" \
		>"$tmp/worker$w.log" 2>&1 &
	pids+=($!)
	worker_pids+=($!)
done

submit=$(curl -sf -X POST --data-binary @"$tmp/specs.json" "http://$addr/api/v1/jobs")
job_id=$(sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p' <<<"$submit")
if [ -z "$job_id" ]; then
	echo "smoke_distributed: submission returned no job id: $submit" >&2
	exit 1
fi

state=""
for _ in $(seq 1 600); do
	status=$(curl -sf "http://$addr/api/v1/jobs/$job_id")
	state=$(sed -n 's/.*"state": "\([a-z]*\)".*/\1/p' <<<"$status")
	case "$state" in
	done) break ;;
	failed)
		echo "smoke_distributed: job failed: $status" >&2
		cat "$tmp/serve.log" "$tmp"/worker*.log >&2
		exit 1
		;;
	esac
	sleep 0.1
done
if [ "$state" != "done" ]; then
	echo "smoke_distributed: job never finished (state=$state)" >&2
	cat "$tmp/serve.log" "$tmp"/worker*.log >&2
	exit 1
fi

# The fleet must have owned the job (coordinator has no local pool) and
# every shard must be done.
shards=$(curl -sf "http://$addr/api/v1/jobs/$job_id/shards")
if grep -qE '"state": "(pending|leased)"' <<<"$shards"; then
	echo "smoke_distributed: unfinished shards after done:" >&2
	echo "$shards" >&2
	exit 1
fi
if ! grep -q '"state": "done"' <<<"$shards"; then
	echo "smoke_distributed: no shards were leased — fleet never ran:" >&2
	echo "$shards" >&2
	exit 1
fi

curl -sf "http://$addr/api/v1/jobs/$job_id/summary.csv" >"$tmp/served.csv"
if ! cmp -s "$tmp/served.csv" "$tmp/direct/summary.csv"; then
	echo "smoke_distributed: fleet summary.csv differs from direct RunGrid:" >&2
	diff "$tmp/served.csv" "$tmp/direct/summary.csv" >&2 || true
	exit 1
fi

# Coordinator metrics: the drained job must show up as granted leases,
# completed shards, absorbed records and a done job.
metric() { sed -n "s/^$2 \\([0-9][0-9.e+]*\\)\$/\\1/p" <<<"$1"; }
assert_ge() { # exposition metric-line floor label
	v=$(metric "$1" "$2")
	if [ -z "$v" ] || ! awk -v v="$v" -v f="$3" 'BEGIN { exit !(v >= f) }'; then
		echo "smoke_distributed: $4: $2=$v, want >= $3" >&2
		exit 1
	fi
}
smetrics=$(curl -sf "http://$addr/metrics")
assert_ge "$smetrics" 'obm_serve_leases_granted_total' 1 'coordinator'
assert_ge "$smetrics" 'obm_serve_shards_completed_total' 1 'coordinator'
assert_ge "$smetrics" 'obm_serve_absorbed_records_total' 12 'coordinator'
assert_ge "$smetrics" 'obm_serve_jobs{state="done"}' 1 'coordinator'
leases_before=$(metric "$smetrics" 'obm_serve_leases_granted_total')
absorbed_before=$(metric "$smetrics" 'obm_serve_absorbed_records_total')

# Worker metrics: across the fleet, every lease and replayed request is
# accounted for (heartbeats may legitimately be zero — the first one fires
# at TTL/3, which a fast shard never reaches).
wleases=0
wrequests=0
for w in 1 2; do
	wm=$(curl -sf "http://127.0.0.1:$((port + 1 + w))/metrics")
	l=$(metric "$wm" 'obm_work_leases_total')
	r=$(metric "$wm" 'obm_grid_requests_total')
	wleases=$((wleases + ${l:-0}))
	wrequests=$((wrequests + ${r:-0}))
done
if [ "$wleases" -lt 1 ] || [ "$wrequests" -lt 1 ]; then
	echo "smoke_distributed: fleet metrics flat (leases=$wleases, grid requests=$wrequests)" >&2
	exit 1
fi

# Chaos leg: SIGINT a worker in the middle of a shard. The dying worker
# uploads its partial log so the coordinator requeues the shard at once;
# the surviving worker finishes it (resuming inside partially replayed
# jobs from the dead worker's uploaded outcomes plus its own checkpoints)
# and the merged summary must STILL be byte-identical to the direct run.
cat >"$tmp/specs2.json" <<'EOF'
[
  {
    "name": "chaos-uni",
    "family": "uniform",
    "racks": 16,
    "requests": 20000000,
    "seed": 21,
    "bs": [2],
    "reps": 1,
    "algs": ["r-bma", "bma"]
  }
]
EOF
"$tmp/experiments" grid -scenarios "$tmp/specs2.json" -store "$tmp/direct2" \
	-curve-points 10 -outdir "$tmp/direct2-out" -progress=false >/dev/null

submit=$(curl -sf -X POST --data-binary @"$tmp/specs2.json" "http://$addr/api/v1/jobs")
job2_id=$(sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p' <<<"$submit")
if [ -z "$job2_id" ]; then
	echo "smoke_distributed: chaos submission returned no job id: $submit" >&2
	exit 1
fi

# Wait until a worker holds a leased chaos shard, then kill that worker
# mid-run.
victim=""
for _ in $(seq 1 200); do
	shards=$(curl -sf "http://$addr/api/v1/jobs/$job2_id/shards")
	if grep -q '"state": "leased"' <<<"$shards"; then
		victim=$(sed -n 's/.*"worker": "smoke-w\([0-9]*\)".*/\1/p' <<<"$shards" | head -1)
		[ -n "$victim" ] && break
	fi
	sleep 0.05
done
if [ -z "$victim" ]; then
	echo "smoke_distributed: no worker ever leased a chaos shard:" >&2
	curl -sf "http://$addr/api/v1/jobs/$job2_id/shards" >&2
	exit 1
fi
sleep 0.3 # let the replay get into the shard's interior
victim_pid="${worker_pids[$((victim - 1))]}"
kill -INT "$victim_pid"
wait "$victim_pid"
if ! grep -q 'handed off shard' "$tmp/worker$victim.log"; then
	echo "smoke_distributed: killed worker smoke-w$victim did not hand off its shard:" >&2
	cat "$tmp/worker$victim.log" >&2
	exit 1
fi

state=""
for _ in $(seq 1 1200); do
	status=$(curl -sf "http://$addr/api/v1/jobs/$job2_id")
	state=$(sed -n 's/.*"state": "\([a-z]*\)".*/\1/p' <<<"$status")
	case "$state" in
	done) break ;;
	failed)
		echo "smoke_distributed: chaos job failed: $status" >&2
		cat "$tmp/serve.log" "$tmp"/worker*.log >&2
		exit 1
		;;
	esac
	sleep 0.1
done
if [ "$state" != "done" ]; then
	echo "smoke_distributed: chaos job never finished (state=$state)" >&2
	cat "$tmp/serve.log" "$tmp"/worker*.log >&2
	exit 1
fi

curl -sf "http://$addr/api/v1/jobs/$job2_id/summary.csv" >"$tmp/served2.csv"
if ! cmp -s "$tmp/served2.csv" "$tmp/direct2/summary.csv"; then
	echo "smoke_distributed: chaos summary.csv differs from direct RunGrid:" >&2
	diff "$tmp/served2.csv" "$tmp/direct2/summary.csv" >&2 || true
	exit 1
fi

# A post-chaos scrape must be monotone on the counters and show both jobs
# done; the handed-off shard's partial log counts as absorbed records.
smetrics2=$(curl -sf "http://$addr/metrics")
assert_ge "$smetrics2" 'obm_serve_leases_granted_total' "$leases_before" 'coordinator (post-chaos)'
assert_ge "$smetrics2" 'obm_serve_absorbed_records_total' "$absorbed_before" 'coordinator (post-chaos)'
assert_ge "$smetrics2" 'obm_serve_jobs{state="done"}' 2 'coordinator (post-chaos)'

# Coordinator-crash leg: submit a third grid, wait until the fleet holds
# a lease on it, then kill -9 the coordinator — no Shutdown, no flush
# beyond the per-append lease WAL. A fresh coordinator process on the
# same store-root must replay the WAL, re-arm the outstanding lease
# (the surviving worker's heartbeats and upload retries bridge the
# outage), drain the job, and still produce a byte-identical summary.
cat >"$tmp/specs3.json" <<'EOF'
[
  {
    "name": "crash-ps",
    "family": "phase-shift",
    "racks": 16,
    "requests": 20000000,
    "seed": 31,
    "bs": [2],
    "reps": 1,
    "algs": ["r-bma", "oblivious"]
  }
]
EOF
"$tmp/experiments" grid -scenarios "$tmp/specs3.json" -store "$tmp/direct3" \
	-curve-points 10 -outdir "$tmp/direct3-out" -progress=false >/dev/null

submit=$(curl -sf -X POST --data-binary @"$tmp/specs3.json" "http://$addr/api/v1/jobs")
job3_id=$(sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p' <<<"$submit")
if [ -z "$job3_id" ]; then
	echo "smoke_distributed: crash submission returned no job id: $submit" >&2
	exit 1
fi

leased=""
for _ in $(seq 1 200); do
	shards=$(curl -sf "http://$addr/api/v1/jobs/$job3_id/shards" || true)
	if grep -q '"state": "leased"' <<<"$shards"; then
		leased=yes
		break
	fi
	sleep 0.05
done
if [ -z "$leased" ]; then
	echo "smoke_distributed: no worker ever leased a crash-leg shard:" >&2
	curl -sf "http://$addr/api/v1/jobs/$job3_id/shards" >&2 || true
	exit 1
fi
sleep 0.3 # let the replay get into the shard's interior

kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
echo "smoke_distributed: coordinator killed -9 mid-grid; restarting on the same store-root"

"$tmp/experiments" serve -addr "$addr" -store-root "$tmp/serve-root" \
	-workers 0 -shard-size 2 -lease-ttl 10s \
	>"$tmp/serve2.log" 2>&1 &
pids+=($!)
server_pid=$!
for _ in $(seq 1 100); do
	if curl -sf "http://$addr/healthz" >/dev/null 2>&1; then
		break
	fi
	if ! kill -0 "$server_pid" 2>/dev/null; then
		echo "smoke_distributed: restarted coordinator died on startup:" >&2
		cat "$tmp/serve2.log" >&2
		exit 1
	fi
	sleep 0.1
done
curl -sf "http://$addr/healthz" >/dev/null

# The restarted coordinator must have rebuilt the job from the lease WAL.
smetrics3=$(curl -sf "http://$addr/metrics")
assert_ge "$smetrics3" 'obm_serve_wal_replayed_records_total' 1 'coordinator (post-crash)'
if [ -n "$(metric "$smetrics3" 'obm_serve_wal_discarded_total')" ] &&
	[ "$(metric "$smetrics3" 'obm_serve_wal_discarded_total')" != "0" ]; then
	echo "smoke_distributed: restarted coordinator discarded a lease WAL:" >&2
	cat "$tmp/serve2.log" >&2
	exit 1
fi

state=""
for _ in $(seq 1 1200); do
	status=$(curl -sf "http://$addr/api/v1/jobs/$job3_id" || true)
	state=$(sed -n 's/.*"state": "\([a-z]*\)".*/\1/p' <<<"$status")
	case "$state" in
	done) break ;;
	failed)
		echo "smoke_distributed: crash job failed: $status" >&2
		cat "$tmp"/serve*.log "$tmp"/worker*.log >&2
		exit 1
		;;
	esac
	sleep 0.1
done
if [ "$state" != "done" ]; then
	echo "smoke_distributed: crash job never finished (state=$state)" >&2
	cat "$tmp"/serve*.log "$tmp"/worker*.log >&2
	exit 1
fi

curl -sf "http://$addr/api/v1/jobs/$job3_id/summary.csv" >"$tmp/served3.csv"
if ! cmp -s "$tmp/served3.csv" "$tmp/direct3/summary.csv"; then
	echo "smoke_distributed: crash summary.csv differs from direct RunGrid:" >&2
	diff "$tmp/served3.csv" "$tmp/direct3/summary.csv" >&2 || true
	exit 1
fi

# Graceful fleet + coordinator shutdown must exit zero (the surviving
# worker and the coordinator; worker 1 was already SIGINTed by the chaos
# leg).
for ((i = ${#pids[@]} - 1; i >= 0; i--)); do
	pid="${pids[$i]}"
	if kill -0 "$pid" 2>/dev/null; then
		kill -INT "$pid"
		wait "$pid"
	fi
done
pids=()

echo "smoke_distributed: OK (job $job_id drained by 2 workers, summary byte-identical; chaos job $job2_id survived a mid-shard worker kill byte-identically; crash job $job3_id survived a kill -9 coordinator restart byte-identically)"
