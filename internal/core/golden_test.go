package core

import (
	"fmt"
	"os"
	"testing"

	"obm/internal/graph"
	"obm/internal/paging"
	"obm/internal/trace"
)

// The golden equivalence suite pins RBMA and BMA to the exact cost curves of
// the original (pre-dense-refactor) map-backed implementations. Any change
// to the request hot path must keep these bit-for-bit: same routing cost,
// same reconfiguration count, same matching, same forwarded-request count,
// for the same seeds, across trace families with different spatial and
// temporal structure.
//
// Regenerate the table with:
//
//	OBM_PRINT_GOLDEN=1 go test ./internal/core -run TestGolden -v
//
// and paste the printed literal — but only when a cost-semantics change is
// intended and called out in the commit message.

type goldenPoint struct {
	x        int
	routing  float64
	reconfig float64
}

type goldenRun struct {
	trace   string
	alg     string
	seed    uint64
	points  [4]goldenPoint
	size    int // final matching size
	forward int // forwarded requests (RBMA only, else 0)
}

const goldenAlpha = 30

func goldenTraces(t testing.TB) map[string]*trace.Trace {
	t.Helper()
	fb, err := trace.FacebookStyle(trace.FacebookPreset(trace.Database, 40, 7))
	if err != nil {
		t.Fatal(err)
	}
	fb.Reqs = fb.Reqs[:20000]
	ps, err := trace.PhaseShift(30, 16000, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*trace.Trace{
		"facebook":   fb,
		"microsoft":  trace.MicrosoftStyle(30, 20000, 3),
		"uniform":    trace.Uniform(30, 16000, 5),
		"phaseshift": ps,
	}
}

func goldenAlg(t testing.TB, name string, n int, model CostModel, seed uint64) Algorithm {
	t.Helper()
	var (
		alg Algorithm
		err error
	)
	switch name {
	case "rbma":
		alg, err = NewRBMA(n, 6, model, seed)
	case "rbma-eager":
		alg, err = NewRBMA(n, 6, model, seed, WithEagerRemoval())
	case "rbma-lru":
		alg, err = NewRBMA(n, 6, model, seed, WithCacheFactory(paging.NewLRUFactory, "lru"))
	case "bma":
		alg, err = NewBMA(n, 6, model)
	default:
		t.Fatalf("unknown golden algorithm %q", name)
	}
	if err != nil {
		t.Fatal(err)
	}
	return alg
}

// replayGolden serves the whole trace, sampling cumulative costs at the four
// quartile checkpoints.
func replayGolden(alg Algorithm, tr *trace.Trace) ([4]goldenPoint, int) {
	var pts [4]goldenPoint
	var routing, reconfig float64
	total := tr.Len()
	pi := 0
	for i, req := range tr.Reqs {
		st := alg.Serve(int(req.Src), int(req.Dst))
		routing += st.RoutingCost
		reconfig += st.ReconfigCost(goldenAlpha)
		if (i+1)*4 >= (pi+1)*total {
			pts[pi] = goldenPoint{x: i + 1, routing: routing, reconfig: reconfig}
			pi++
		}
	}
	return pts, alg.MatchingSize()
}

// goldenCases enumerates the (trace, algorithm, seed) combinations pinned by
// the suite; goldenTable holds one entry per case, in this order.
func goldenCases() []goldenRun {
	var cases []goldenRun
	for _, tr := range []string{"facebook", "microsoft", "uniform", "phaseshift"} {
		for _, alg := range []string{"rbma", "rbma-eager", "rbma-lru", "bma"} {
			seeds := []uint64{1, 2}
			if alg == "bma" {
				seeds = []uint64{1} // deterministic: the seed is unused
			}
			for _, s := range seeds {
				cases = append(cases, goldenRun{trace: tr, alg: alg, seed: s})
			}
		}
	}
	return cases
}

func TestGoldenEquivalence(t *testing.T) {
	traces := goldenTraces(t)
	printMode := os.Getenv("OBM_PRINT_GOLDEN") != ""
	cases := goldenCases()
	if !printMode {
		if len(goldenTable) != len(cases) {
			t.Fatalf("golden table has %d entries, want %d — regenerate with OBM_PRINT_GOLDEN=1", len(goldenTable), len(cases))
		}
		cases = goldenTable
	}
	for _, want := range cases {
		name := fmt.Sprintf("%s/%s/seed=%d", want.trace, want.alg, want.seed)
		t.Run(name, func(t *testing.T) {
			tr := traces[want.trace]
			if tr == nil {
				t.Fatalf("unknown golden trace %q", want.trace)
			}
			model := CostModel{Metric: graph.FatTreeRacks(tr.NumRacks).Metric(), Alpha: goldenAlpha}
			alg := goldenAlg(t, want.alg, tr.NumRacks, model, want.seed)
			pts, size := replayGolden(alg, tr)
			forward := 0
			if r, ok := alg.(*RBMA); ok {
				forward = r.ForwardedRequests
			}
			if printMode {
				fmt.Printf("\t{trace: %q, alg: %q, seed: %d, points: [4]goldenPoint{\n", want.trace, want.alg, want.seed)
				for _, p := range pts {
					fmt.Printf("\t\t{x: %d, routing: %v, reconfig: %v},\n", p.x, p.routing, p.reconfig)
				}
				fmt.Printf("\t}, size: %d, forward: %d},\n", size, forward)
				return
			}
			if size != want.size {
				t.Errorf("final matching size = %d, golden %d", size, want.size)
			}
			if forward != want.forward {
				t.Errorf("forwarded requests = %d, golden %d", forward, want.forward)
			}
			for i, p := range pts {
				if p != want.points[i] {
					t.Errorf("checkpoint %d = %+v, golden %+v", i, p, want.points[i])
				}
			}
			if err := CheckDegreeInvariant(alg); err != nil {
				t.Error(err)
			}
		})
	}
}

// goldenTable holds the exact curves of the seed (map-backed)
// implementations, captured at commit dd53d82 with the regeneration command
// above. Placeholder values are overwritten by the capture below.
var goldenTable = []goldenRun{
	{trace: "facebook", alg: "rbma", seed: 1, points: [4]goldenPoint{
		{x: 5000, routing: 7038, reconfig: 1890},
		{x: 10000, routing: 12776, reconfig: 2550},
		{x: 15000, routing: 18474, reconfig: 3540},
		{x: 20000, routing: 24069, reconfig: 4410},
	}, size: 79, forward: 1943},
	{trace: "facebook", alg: "rbma", seed: 2, points: [4]goldenPoint{
		{x: 5000, routing: 7060, reconfig: 2070},
		{x: 10000, routing: 12780, reconfig: 2610},
		{x: 15000, routing: 18459, reconfig: 3720},
		{x: 20000, routing: 24024, reconfig: 4350},
	}, size: 79, forward: 1943},
	{trace: "facebook", alg: "rbma-eager", seed: 1, points: [4]goldenPoint{
		{x: 5000, routing: 7038, reconfig: 1890},
		{x: 10000, routing: 12776, reconfig: 2550},
		{x: 15000, routing: 18474, reconfig: 3540},
		{x: 20000, routing: 24069, reconfig: 4410},
	}, size: 79, forward: 1943},
	{trace: "facebook", alg: "rbma-eager", seed: 2, points: [4]goldenPoint{
		{x: 5000, routing: 7060, reconfig: 2070},
		{x: 10000, routing: 12780, reconfig: 2610},
		{x: 15000, routing: 18459, reconfig: 3720},
		{x: 20000, routing: 24024, reconfig: 4350},
	}, size: 79, forward: 1943},
	{trace: "facebook", alg: "rbma-lru", seed: 1, points: [4]goldenPoint{
		{x: 5000, routing: 7044, reconfig: 1950},
		{x: 10000, routing: 12758, reconfig: 2550},
		{x: 15000, routing: 18383, reconfig: 3240},
		{x: 20000, routing: 23934, reconfig: 3810},
	}, size: 79, forward: 1943},
	{trace: "facebook", alg: "rbma-lru", seed: 2, points: [4]goldenPoint{
		{x: 5000, routing: 7044, reconfig: 1950},
		{x: 10000, routing: 12758, reconfig: 2550},
		{x: 15000, routing: 18383, reconfig: 3240},
		{x: 20000, routing: 23934, reconfig: 3810},
	}, size: 79, forward: 1943},
	{trace: "facebook", alg: "bma", seed: 1, points: [4]goldenPoint{
		{x: 5000, routing: 7034, reconfig: 1770},
		{x: 10000, routing: 12793, reconfig: 2430},
		{x: 15000, routing: 18457, reconfig: 3030},
		{x: 20000, routing: 24090, reconfig: 3720},
	}, size: 80, forward: 0},
	{trace: "microsoft", alg: "rbma", seed: 1, points: [4]goldenPoint{
		{x: 5000, routing: 13213, reconfig: 17070},
		{x: 10000, routing: 25634, reconfig: 39570},
		{x: 15000, routing: 38486, reconfig: 65700},
		{x: 20000, routing: 51293, reconfig: 91710},
	}, size: 55, forward: 2225},
	{trace: "microsoft", alg: "rbma", seed: 2, points: [4]goldenPoint{
		{x: 5000, routing: 13220, reconfig: 17550},
		{x: 10000, routing: 25766, reconfig: 40710},
		{x: 15000, routing: 38564, reconfig: 66690},
		{x: 20000, routing: 51334, reconfig: 92280},
	}, size: 56, forward: 2225},
	{trace: "microsoft", alg: "rbma-eager", seed: 1, points: [4]goldenPoint{
		{x: 5000, routing: 13434, reconfig: 17910},
		{x: 10000, routing: 26297, reconfig: 41550},
		{x: 15000, routing: 39514, reconfig: 68400},
		{x: 20000, routing: 52676, reconfig: 95190},
	}, size: 41, forward: 2225},
	{trace: "microsoft", alg: "rbma-eager", seed: 2, points: [4]goldenPoint{
		{x: 5000, routing: 13412, reconfig: 18240},
		{x: 10000, routing: 26409, reconfig: 42690},
		{x: 15000, routing: 39626, reconfig: 69690},
		{x: 20000, routing: 52741, reconfig: 96030},
	}, size: 43, forward: 2225},
	{trace: "microsoft", alg: "rbma-lru", seed: 1, points: [4]goldenPoint{
		{x: 5000, routing: 13096, reconfig: 17040},
		{x: 10000, routing: 25273, reconfig: 39120},
		{x: 15000, routing: 37908, reconfig: 64650},
		{x: 20000, routing: 50526, reconfig: 89970},
	}, size: 53, forward: 2225},
	{trace: "microsoft", alg: "rbma-lru", seed: 2, points: [4]goldenPoint{
		{x: 5000, routing: 13096, reconfig: 17040},
		{x: 10000, routing: 25273, reconfig: 39120},
		{x: 15000, routing: 37908, reconfig: 64650},
		{x: 20000, routing: 50526, reconfig: 89970},
	}, size: 53, forward: 2225},
	{trace: "microsoft", alg: "bma", seed: 1, points: [4]goldenPoint{
		{x: 5000, routing: 14515, reconfig: 16320},
		{x: 10000, routing: 28817, reconfig: 38340},
		{x: 15000, routing: 43080, reconfig: 61080},
		{x: 20000, routing: 57500, reconfig: 84630},
	}, size: 59, forward: 0},
	{trace: "uniform", alg: "rbma", seed: 1, points: [4]goldenPoint{
		{x: 4000, routing: 14112, reconfig: 14850},
		{x: 8000, routing: 27369, reconfig: 43410},
		{x: 12000, routing: 40540, reconfig: 71250},
		{x: 16000, routing: 53663, reconfig: 99570},
	}, size: 79, forward: 1704},
	{trace: "uniform", alg: "rbma", seed: 2, points: [4]goldenPoint{
		{x: 4000, routing: 14118, reconfig: 14970},
		{x: 8000, routing: 27343, reconfig: 43440},
		{x: 12000, routing: 40462, reconfig: 71430},
		{x: 16000, routing: 53590, reconfig: 99660},
	}, size: 78, forward: 1704},
	{trace: "uniform", alg: "rbma-eager", seed: 1, points: [4]goldenPoint{
		{x: 4000, routing: 14241, reconfig: 15360},
		{x: 8000, routing: 27860, reconfig: 44010},
		{x: 12000, routing: 41351, reconfig: 72090},
		{x: 16000, routing: 54868, reconfig: 100290},
	}, size: 65, forward: 1704},
	{trace: "uniform", alg: "rbma-eager", seed: 2, points: [4]goldenPoint{
		{x: 4000, routing: 14298, reconfig: 15420},
		{x: 8000, routing: 27925, reconfig: 43920},
		{x: 12000, routing: 41427, reconfig: 72030},
		{x: 16000, routing: 55001, reconfig: 100350},
	}, size: 61, forward: 1704},
	{trace: "uniform", alg: "rbma-lru", seed: 1, points: [4]goldenPoint{
		{x: 4000, routing: 14133, reconfig: 14970},
		{x: 8000, routing: 27312, reconfig: 43410},
		{x: 12000, routing: 40434, reconfig: 71340},
		{x: 16000, routing: 53527, reconfig: 99510},
	}, size: 81, forward: 1704},
	{trace: "uniform", alg: "rbma-lru", seed: 2, points: [4]goldenPoint{
		{x: 4000, routing: 14133, reconfig: 14970},
		{x: 8000, routing: 27312, reconfig: 43410},
		{x: 12000, routing: 40434, reconfig: 71340},
		{x: 16000, routing: 53527, reconfig: 99510},
	}, size: 81, forward: 1704},
	{trace: "uniform", alg: "bma", seed: 1, points: [4]goldenPoint{
		{x: 4000, routing: 14153, reconfig: 14340},
		{x: 8000, routing: 27497, reconfig: 38310},
		{x: 12000, routing: 40935, reconfig: 62250},
		{x: 16000, routing: 54421, reconfig: 85890},
	}, size: 75, forward: 0},
	{trace: "phaseshift", alg: "rbma", seed: 1, points: [4]goldenPoint{
		{x: 4000, routing: 6345, reconfig: 1770},
		{x: 8000, routing: 16448, reconfig: 17760},
		{x: 12000, routing: 27425, reconfig: 39120},
		{x: 16000, routing: 37948, reconfig: 59640},
	}, size: 60, forward: 1704},
	{trace: "phaseshift", alg: "rbma", seed: 2, points: [4]goldenPoint{
		{x: 4000, routing: 6393, reconfig: 2070},
		{x: 8000, routing: 16502, reconfig: 17640},
		{x: 12000, routing: 27451, reconfig: 38970},
		{x: 16000, routing: 37964, reconfig: 59310},
	}, size: 63, forward: 1704},
	{trace: "phaseshift", alg: "rbma-eager", seed: 1, points: [4]goldenPoint{
		{x: 4000, routing: 6348, reconfig: 1770},
		{x: 8000, routing: 16707, reconfig: 18810},
		{x: 12000, routing: 27950, reconfig: 40770},
		{x: 16000, routing: 38712, reconfig: 61800},
	}, size: 40, forward: 1704},
	{trace: "phaseshift", alg: "rbma-eager", seed: 2, points: [4]goldenPoint{
		{x: 4000, routing: 6393, reconfig: 2100},
		{x: 8000, routing: 16758, reconfig: 18600},
		{x: 12000, routing: 27984, reconfig: 40770},
		{x: 16000, routing: 38717, reconfig: 61920},
	}, size: 36, forward: 1704},
	{trace: "phaseshift", alg: "rbma-lru", seed: 1, points: [4]goldenPoint{
		{x: 4000, routing: 6352, reconfig: 2040},
		{x: 8000, routing: 16312, reconfig: 17700},
		{x: 12000, routing: 27158, reconfig: 39150},
		{x: 16000, routing: 37535, reconfig: 59280},
	}, size: 60, forward: 1704},
	{trace: "phaseshift", alg: "rbma-lru", seed: 2, points: [4]goldenPoint{
		{x: 4000, routing: 6352, reconfig: 2040},
		{x: 8000, routing: 16312, reconfig: 17700},
		{x: 12000, routing: 27158, reconfig: 39150},
		{x: 16000, routing: 37535, reconfig: 59280},
	}, size: 60, forward: 1704},
	{trace: "phaseshift", alg: "bma", seed: 1, points: [4]goldenPoint{
		{x: 4000, routing: 6471, reconfig: 1950},
		{x: 8000, routing: 18289, reconfig: 17610},
		{x: 12000, routing: 30239, reconfig: 36180},
		{x: 16000, routing: 41824, reconfig: 54540},
	}, size: 64, forward: 0},
}
