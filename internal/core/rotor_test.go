package core

import (
	"testing"

	"obm/internal/trace"
)

func TestRoundRobinScheduleIsTournament(t *testing.T) {
	for _, n := range []int{4, 5, 8, 9, 16} {
		rounds := roundRobinSchedule(n)
		seen := map[trace.PairKey]int{}
		for ri, round := range rounds {
			deg := map[int]int{}
			for _, k := range round {
				seen[k]++
				u, v := k.Endpoints()
				deg[u]++
				deg[v]++
			}
			for node, d := range deg {
				if d != 1 {
					t.Fatalf("n=%d round %d: node %d appears %d times", n, ri, node, d)
				}
			}
		}
		// Every pair exactly once across the tournament.
		wantPairs := n * (n - 1) / 2
		if len(seen) != wantPairs {
			t.Fatalf("n=%d: schedule covers %d pairs, want %d", n, len(seen), wantPairs)
		}
		for k, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: pair %v appears %d times", n, k, c)
			}
		}
	}
}

func TestRotorValidation(t *testing.T) {
	model := testModel(10, 30)
	if _, err := NewRotor(1, 1, model, 10); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := NewRotor(10, 0, model, 10); err == nil {
		t.Error("b=0 accepted")
	}
	if _, err := NewRotor(10, 2, model, 0); err == nil {
		t.Error("period=0 accepted")
	}
	if _, err := NewRotor(4, 99, model, 10); err == nil {
		t.Error("b larger than round count accepted")
	}
}

func TestRotorLiveDegreeIsB(t *testing.T) {
	model := testModel(10, 30)
	for _, b := range []int{1, 2, 3} {
		r, err := NewRotor(10, b, model, 5)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 200; step++ {
			r.Serve(0, 1)
			deg := map[int]int{}
			for k, c := range r.live {
				if c > 1 {
					t.Fatalf("pair %v live on %d switches (staggered offsets must differ)", k, c)
				}
				u, v := k.Endpoints()
				deg[u]++
				deg[v]++
			}
			for node, d := range deg {
				if d > b {
					t.Fatalf("b=%d: node %d live degree %d", b, node, d)
				}
			}
		}
	}
}

func TestRotorRotates(t *testing.T) {
	model := testModel(10, 30)
	r, _ := NewRotor(10, 1, model, 3)
	before := r.MatchingSize()
	if before == 0 {
		t.Fatal("rotor should start with a live matching")
	}
	wasLive := r.Matched(9, 0) // round 0 pairs the fixed node with 0
	for i := 0; i < 3; i++ {
		r.Serve(0, 1)
	}
	if r.Matched(9, 0) == wasLive && wasLive {
		t.Fatal("rotation did not change the live matching")
	}
}

func TestRotorObliviousToDemand(t *testing.T) {
	// Rotor ignores traffic: serving different workloads leaves the same
	// rotation trajectory.
	model := testModel(10, 30)
	a, _ := NewRotor(10, 2, model, 7)
	b, _ := NewRotor(10, 2, model, 7)
	for i := 0; i < 500; i++ {
		a.Serve(0, 1)
		b.Serve(i%9, (i%9)+1)
	}
	if a.MatchingSize() != b.MatchingSize() {
		t.Fatal("rotor trajectory depended on demand")
	}
	for k := range a.live {
		if b.live[k] == 0 {
			t.Fatal("rotor live sets diverged across workloads")
		}
	}
}

func TestDemandAwareBeatsRotorOnSkewedTraffic(t *testing.T) {
	// The Cerberus-style comparison: on skewed traffic, demand-aware
	// R-BMA should beat the demand-oblivious rotor clearly.
	model := testModel(16, 30)
	p := trace.FacebookPreset(trace.Database, 16, 9)
	p.Requests = 30000
	tr, _ := trace.FacebookStyle(p)
	run := func(alg Algorithm) float64 {
		var sum float64
		for _, req := range tr.Reqs {
			sum += alg.Serve(int(req.Src), int(req.Dst)).RoutingCost
		}
		return sum
	}
	rot, err := NewRotor(16, 3, model, 50)
	if err != nil {
		t.Fatal(err)
	}
	rotCost := run(rot)
	rbma, _ := NewRBMA(16, 3, model, 3)
	rbmaCost := run(rbma)
	t.Logf("rotor %v vs r-bma %v", rotCost, rbmaCost)
	if rbmaCost >= rotCost {
		t.Fatalf("demand-aware should beat rotor on skewed traffic: %v vs %v", rbmaCost, rotCost)
	}
}

func TestRotorChargeRotations(t *testing.T) {
	model := testModel(10, 30)
	r, _ := NewRotor(10, 1, model, 2)
	r.ChargeRotations = true
	r.Serve(0, 1)
	st := r.Serve(0, 1) // rotation fires
	if st.Adds == 0 || st.Removals == 0 {
		t.Fatal("charged rotor rotation should report reconfigurations")
	}
}
