package core

import (
	"fmt"
	"io"
	"math/bits"

	"obm/internal/snap"
	"obm/internal/trace"
)

// Snapshot/restore for algorithm state. Every Algorithm in this package
// implements Snapshotter with a tagged binary section: a snapshot captures
// exactly the mutable per-instance state (paging caches, RNG streams,
// per-pair counters, the b-matching), never the immutable configuration —
// restore targets are always constructed from the run's own parameters
// first and then loaded, so decoding validates shape against an instance
// it already trusts and a corrupt stream can never size an allocation.
//
// The contract, verified by sim's equivalence suite: restoring a snapshot
// taken after k requests into a freshly built instance and replaying the
// tail produces bit-identical costs to replaying the whole stream.

// Snapshotter is implemented by algorithms whose dynamic state can be
// serialized and restored. Restore must only be called on an instance
// constructed with the same parameters (n, b, cost model, seed layout) as
// the snapshotted one; on error the instance is left in an unspecified
// state and must be Reset before reuse.
type Snapshotter interface {
	Snapshot(w io.Writer) error
	Restore(r io.Reader) error
}

// Section tags: one byte, first in every algorithm section, so a snapshot
// restored into the wrong algorithm type fails loudly instead of
// misparsing.
const (
	snapTagRBMA      = 1
	snapTagBMA       = 2
	snapTagOblivious = 3
	snapTagStatic    = 4
	snapTagSharded   = 5
)

var (
	_ Snapshotter = (*RBMA)(nil)
	_ Snapshotter = (*BMA)(nil)
	_ Snapshotter = (*Oblivious)(nil)
	_ Snapshotter = (*Static)(nil)
	_ Snapshotter = (*Sharded)(nil)
)

// expectTag reads and checks an algorithm section's leading tag byte.
func expectTag(sr *snap.Reader, want uint8, alg string) error {
	got := sr.U8()
	if sr.Err() != nil {
		return sr.Err()
	}
	if got != want {
		return snap.Corruptf("core: snapshot section tag %d is not %s (tag %d)", got, alg, want)
	}
	return nil
}

// Snapshot implements Snapshotter. Only the default slab-backed marking
// bank is supported; instances with a substituted cache factory (the
// ablation variants) return an error, since arbitrary paging.Cache
// implementations carry no serialization contract.
func (r *RBMA) Snapshot(w io.Writer) error {
	if r.bank == nil {
		return fmt.Errorf("core: snapshot unsupported for %s: substituted cache factory", r.name)
	}
	sw := snap.NewWriter(w)
	sw.U8(snapTagRBMA)
	sw.U32(uint32(r.n))
	sw.U32(uint32(r.b))
	if r.lazy {
		sw.U8(1)
	} else {
		sw.U8(0)
	}
	if err := r.bank.Snapshot(sw); err != nil {
		return err
	}
	if err := r.m.Snapshot(sw); err != nil {
		return err
	}
	sw.U64s(r.marked)
	sw.I32s(r.counter)
	sw.I64(int64(r.ForwardedRequests))
	return sw.Err()
}

// Restore implements Snapshotter. The per-node marked counts and the
// global marked total are rebuilt from the bitset rather than trusted, and
// every marked pair must be a current matching edge — the lazy-removal
// invariant — so a corrupt snapshot cannot smuggle in a state the
// algorithm could never reach on its own.
func (r *RBMA) Restore(rd io.Reader) error {
	if r.bank == nil {
		return fmt.Errorf("core: restore unsupported for %s: substituted cache factory", r.name)
	}
	sr := snap.NewReader(rd)
	if err := expectTag(sr, snapTagRBMA, "r-bma"); err != nil {
		return err
	}
	if n := sr.U32(); sr.Err() == nil && int(n) != r.n {
		return snap.Corruptf("core: r-bma snapshot for n=%d, have n=%d", n, r.n)
	}
	if b := sr.U32(); sr.Err() == nil && int(b) != r.b {
		return snap.Corruptf("core: r-bma snapshot for b=%d, have b=%d", b, r.b)
	}
	lazy := sr.U8()
	if sr.Err() != nil {
		return sr.Err()
	}
	if (lazy == 1) != r.lazy {
		return snap.Corruptf("core: r-bma snapshot lazy=%d, instance lazy=%v", lazy, r.lazy)
	}
	if err := r.bank.Restore(sr); err != nil {
		return err
	}
	if err := r.m.Restore(sr); err != nil {
		return err
	}
	sr.U64s(r.marked)
	sr.I32s(r.counter)
	fwd := sr.I64()
	if sr.Err() != nil {
		return sr.Err()
	}
	np := r.idx.NumPairs()
	clear(r.markedAt)
	r.nMarked = 0
	for wi, word := range r.marked {
		for rest := word; rest != 0; rest &= rest - 1 {
			id := trace.PairID(wi<<6 + bits.TrailingZeros64(rest))
			if int(id) >= np {
				return snap.Corruptf("core: r-bma marked bit %d beyond pair universe %d", id, np)
			}
			if !r.m.HasID(id) {
				return snap.Corruptf("core: r-bma marked pair %d is not a matching edge", id)
			}
			u, v := r.idx.Endpoints(id)
			r.markedAt[u]++
			r.markedAt[v]++
			r.nMarked++
		}
	}
	for id, c := range r.counter {
		if c < 0 || c >= r.kePair[id] {
			return snap.Corruptf("core: r-bma counter[%d] = %d outside [0,%d)", id, c, r.kePair[id])
		}
	}
	if fwd < 0 {
		return snap.Corruptf("core: r-bma negative forwarded-request count %d", fwd)
	}
	r.ForwardedRequests = int(fwd)
	if err := r.CheckCacheInvariant(); err != nil {
		return snap.Corruptf("core: r-bma restored state inconsistent: %v", err)
	}
	return nil
}

// Snapshot implements Snapshotter.
func (a *BMA) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w)
	sw.U8(snapTagBMA)
	sw.U32(uint32(a.n))
	sw.U32(uint32(a.b))
	if err := a.m.Snapshot(sw); err != nil {
		return err
	}
	sw.F64s(a.rent)
	sw.F64s(a.defense)
	return sw.Err()
}

// Restore implements Snapshotter. Counters are range-checked against the
// scheme's own invariants: rents are non-negative and finite, defenses lie
// in [0, α].
func (a *BMA) Restore(rd io.Reader) error {
	sr := snap.NewReader(rd)
	if err := expectTag(sr, snapTagBMA, "bma"); err != nil {
		return err
	}
	if n := sr.U32(); sr.Err() == nil && int(n) != a.n {
		return snap.Corruptf("core: bma snapshot for n=%d, have n=%d", n, a.n)
	}
	if b := sr.U32(); sr.Err() == nil && int(b) != a.b {
		return snap.Corruptf("core: bma snapshot for b=%d, have b=%d", b, a.b)
	}
	if err := a.m.Restore(sr); err != nil {
		return err
	}
	sr.F64s(a.rent)
	sr.F64s(a.defense)
	if sr.Err() != nil {
		return sr.Err()
	}
	for id, v := range a.rent {
		if !(v >= 0) || v > 1e18 {
			return snap.Corruptf("core: bma rent[%d] = %v out of range", id, v)
		}
	}
	for id, v := range a.defense {
		if !(v >= 0) || v > a.model.Alpha {
			return snap.Corruptf("core: bma defense[%d] = %v outside [0,%v]", id, v, a.model.Alpha)
		}
	}
	return nil
}

// Snapshot implements Snapshotter: the oblivious baseline has no dynamic
// state, so its section is just the tag.
func (o *Oblivious) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w)
	sw.U8(snapTagOblivious)
	return sw.Err()
}

// Restore implements Snapshotter.
func (o *Oblivious) Restore(rd io.Reader) error {
	sr := snap.NewReader(rd)
	return expectTag(sr, snapTagOblivious, "oblivious")
}

// Snapshot implements Snapshotter. A static matching never changes after
// construction, so the section records the edge set only for restore-time
// verification.
func (s *Static) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w)
	sw.U8(snapTagStatic)
	sw.U32(uint32(s.n))
	sw.U32(uint32(s.b))
	sw.U32(uint32(s.size))
	sw.U64s(s.edges)
	return sw.Err()
}

// Restore implements Snapshotter: it verifies that this instance (built
// offline from the same trace) carries the snapshotted matching, rather
// than loading edges from untrusted bytes. A mismatch means the restore
// target was built from a different trace or b — a configuration error
// worth failing loudly on.
func (s *Static) Restore(rd io.Reader) error {
	sr := snap.NewReader(rd)
	if err := expectTag(sr, snapTagStatic, "so-bma"); err != nil {
		return err
	}
	if n := sr.U32(); sr.Err() == nil && int(n) != s.n {
		return snap.Corruptf("core: so-bma snapshot for n=%d, have n=%d", n, s.n)
	}
	if b := sr.U32(); sr.Err() == nil && int(b) != s.b {
		return snap.Corruptf("core: so-bma snapshot for b=%d, have b=%d", b, s.b)
	}
	if size := sr.U32(); sr.Err() == nil && int(size) != s.size {
		return snap.Corruptf("core: so-bma snapshot has %d edges, instance has %d", size, s.size)
	}
	got := make([]uint64, len(s.edges))
	sr.U64s(got)
	if sr.Err() != nil {
		return sr.Err()
	}
	for i := range got {
		if got[i] != s.edges[i] {
			return snap.Corruptf("core: so-bma snapshot matching differs from this instance's (built from a different trace?)")
		}
	}
	return nil
}

// Snapshot implements Snapshotter: plane sections in ascending shard
// order. Every plane must itself be a Snapshotter.
func (sh *Sharded) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w)
	sw.U8(snapTagSharded)
	sw.U32(uint32(sh.part.shards))
	if sw.Err() != nil {
		return sw.Err()
	}
	for s, alg := range sh.subs {
		ss, ok := alg.(Snapshotter)
		if !ok {
			return fmt.Errorf("core: shard %d algorithm %s does not support snapshots", s, alg.Name())
		}
		if err := ss.Snapshot(sw); err != nil {
			return fmt.Errorf("core: snapshotting shard %d: %w", s, err)
		}
	}
	return sw.Err()
}

// Restore implements Snapshotter.
func (sh *Sharded) Restore(rd io.Reader) error {
	sr := snap.NewReader(rd)
	if err := expectTag(sr, snapTagSharded, "sharded"); err != nil {
		return err
	}
	if n := sr.U32(); sr.Err() == nil && int(n) != sh.part.shards {
		return snap.Corruptf("core: sharded snapshot for %d planes, have %d", n, sh.part.shards)
	}
	if sr.Err() != nil {
		return sr.Err()
	}
	for s, alg := range sh.subs {
		ss, ok := alg.(Snapshotter)
		if !ok {
			return fmt.Errorf("core: shard %d algorithm %s does not support snapshots", s, alg.Name())
		}
		if err := ss.Restore(sr); err != nil {
			return fmt.Errorf("core: restoring shard %d: %w", s, err)
		}
	}
	return nil
}
