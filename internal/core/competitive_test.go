package core

import (
	"math"
	"testing"

	"obm/internal/graph"
	"obm/internal/paging"
	"obm/internal/stats"
	"obm/internal/trace"
)

func totalCost(alg Algorithm, tr *trace.Trace, alpha float64) float64 {
	var sum float64
	for _, req := range tr.Reqs {
		sum += alg.Serve(int(req.Src), int(req.Dst)).Total(alpha)
	}
	return sum
}

func TestOfflineOPTTinySanity(t *testing.T) {
	// Two racks, one pair: OPT either always routes (cost ℓ per request) or
	// buys the edge once (cost α + 1 per request).
	model := CostModel{Metric: graph.UniformMetric(2, 3), Alpha: 4}
	mkTrace := func(count int) *trace.Trace {
		reqs := make([]trace.Request, count)
		for i := range reqs {
			reqs[i] = trace.Request{Src: 0, Dst: 1}
		}
		return &trace.Trace{NumRacks: 2, Reqs: reqs}
	}
	// 1 request: routing (3) beats buying (4+1).
	got, err := OfflineOPT(mkTrace(1), 1, model, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("OPT(1 request) = %v, want 3", got)
	}
	// 10 requests: buying up front (4 + 10·1 = 14) beats routing (30).
	got, err = OfflineOPT(mkTrace(10), 1, model, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 14 {
		t.Fatalf("OPT(10 requests) = %v, want 14", got)
	}
}

func TestOfflineOPTNeverAboveOblivious(t *testing.T) {
	model := CostModel{Metric: graph.UniformMetric(4, 2), Alpha: 3}
	tr := trace.Uniform(4, 300, 9)
	opt, err := OfflineOPT(tr, 1, model, 100000)
	if err != nil {
		t.Fatal(err)
	}
	obl, _ := NewOblivious(model)
	oblCost := totalCost(obl, tr, model.Alpha)
	if opt > oblCost {
		t.Fatalf("OPT %v exceeds oblivious %v", opt, oblCost)
	}
	if opt <= 0 {
		t.Fatalf("OPT = %v", opt)
	}
}

func TestRBMAEmpiricalCompetitiveRatio(t *testing.T) {
	// Small uniform instance where exact OPT is computable. The theory
	// bound is O(γ·log b) with moderate constants; we assert a generous
	// numeric cap that a broken algorithm (e.g. thrashing reconfiguration)
	// would blow through.
	model := CostModel{Metric: graph.UniformMetric(5, 1), Alpha: 1}
	tr := trace.Uniform(5, 800, 31)
	b := 2
	opt, err := OfflineOPT(tr, b, model, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	const seeds = 5
	for s := uint64(0); s < seeds; s++ {
		r, _ := NewRBMA(5, b, model, s)
		sum += totalCost(r, tr, model.Alpha)
	}
	ratio := sum / seeds / opt
	t.Logf("empirical competitive ratio (uniform, b=%d): %.3f (OPT=%v)", b, ratio, opt)
	if ratio > 10 {
		t.Fatalf("empirical ratio %.2f implausibly high", ratio)
	}
}

func TestRBMAResourceAugmentationHelps(t *testing.T) {
	// (b,a)-setting: with a larger online cap b, R-BMA's cost against the
	// same a-restricted OPT should not increase (more capacity only helps
	// on average).
	model := CostModel{Metric: graph.UniformMetric(5, 1), Alpha: 1}
	tr := trace.Uniform(5, 1500, 17)
	avgCost := func(b int) float64 {
		var sum float64
		const seeds = 6
		for s := uint64(0); s < seeds; s++ {
			r, _ := NewRBMA(5, b, model, s)
			sum += totalCost(r, tr, model.Alpha)
		}
		return sum / seeds
	}
	c1 := avgCost(1)
	c3 := avgCost(3)
	if c3 > c1*1.05 {
		t.Fatalf("cost should not grow with b: b=1 → %v, b=3 → %v", c1, c3)
	}
}

func TestLowerBoundStarConstruction(t *testing.T) {
	// Theorem 4's embedding: a star with hub v0; requests are blocks of α
	// requests to {v0, v_i}. The hub's degree cap b makes the matched
	// leaves behave exactly like a size-b cache. Verify the embedding
	// properties on R-BMA: the hub never exceeds degree b, and after a
	// block the requested leaf is matched (it was requested α ≥ k_e times).
	nLeaves := 6
	b := 3
	top := graph.Star(nLeaves)
	model := CostModel{Metric: top.Metric(), Alpha: 8}
	r, err := NewRBMA(top.NumRacks(), b, model, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(5)
	alpha := int(model.Alpha)
	for block := 0; block < 200; block++ {
		leaf := 1 + rng.Intn(nLeaves)
		for j := 0; j < alpha; j++ {
			r.Serve(0, leaf)
		}
		if !r.Matched(0, leaf) {
			t.Fatalf("block %d: leaf %d not matched after α requests", block, leaf)
		}
		if err := CheckDegreeInvariant(r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRandomizationBeatsLRUOnAdversarialCycle(t *testing.T) {
	// The deterministic-killer workload: cycle through b+1 hub pairs. LRU
	// caches fault on every forwarded request; randomized marking faults
	// ~H_b per phase. This is the observable content of the paper's
	// "exponentially better than deterministic" separation.
	nLeaves := 9
	b := 8
	top := graph.Star(nLeaves)
	model := CostModel{Metric: top.Metric(), Alpha: 1} // uniform-ish: k_e = 1
	reqs := make([]trace.Request, 0, 40000)
	for round := 0; round < 4000; round++ {
		leaf := 1 + round%(b+1)
		reqs = append(reqs, trace.Request{Src: 0, Dst: int32(leaf)})
	}
	tr := &trace.Trace{NumRacks: top.NumRacks(), Reqs: reqs}

	lru, _ := NewRBMA(top.NumRacks(), b, model, 1, WithCacheFactory(paging.NewLRUFactory, "lru"))
	lruCost := totalCost(lru, tr, model.Alpha)
	var markSum float64
	const seeds = 3
	for s := uint64(0); s < seeds; s++ {
		mark, _ := NewRBMA(top.NumRacks(), b, model, s)
		markSum += totalCost(mark, tr, model.Alpha)
	}
	markCost := markSum / seeds
	if markCost >= lruCost*0.8 {
		t.Fatalf("marking (%v) should clearly beat LRU (%v) on the adversarial cycle", markCost, lruCost)
	}
}

func TestRBMATotalCostWithinTheoryEnvelopeOnStar(t *testing.T) {
	// On the star lower-bound workload with random blocks, compare R-BMA to
	// the offline OPT computed by DP on a small instance and check the
	// ratio stays within a loose multiple of γ·ln(b)+1.
	nLeaves := 4
	b := 2
	top := graph.Star(nLeaves)
	model := CostModel{Metric: top.Metric(), Alpha: 3}
	rng := stats.NewRand(77)
	reqs := make([]trace.Request, 0, 1200)
	for block := 0; block < 120; block++ {
		leaf := 1 + rng.Intn(nLeaves)
		for j := 0; j < int(model.Alpha); j++ {
			reqs = append(reqs, trace.Request{Src: 0, Dst: int32(leaf)})
		}
	}
	tr := &trace.Trace{NumRacks: top.NumRacks(), Reqs: reqs}
	opt, err := OfflineOPT(tr, b, model, 2_000_000)
	if err != nil {
		t.Skipf("OPT not computable: %v", err)
	}
	var sum float64
	const seeds = 4
	for s := uint64(0); s < seeds; s++ {
		r, _ := NewRBMA(top.NumRacks(), b, model, s)
		sum += totalCost(r, tr, model.Alpha)
	}
	ratio := sum / seeds / opt
	gamma := model.Gamma()
	bound := 16 * gamma * (math.Log(float64(b)) + 1)
	t.Logf("star ratio %.3f (loose envelope %.1f, OPT %v)", ratio, bound, opt)
	if ratio > bound {
		t.Fatalf("ratio %.2f above loose theory envelope %.2f", ratio, bound)
	}
}

func TestEagerAndLazyCostsComparable(t *testing.T) {
	// Lazy pruning (paper footnote 2) can only help routing cost (edges
	// stay usable longer) at equal-or-lower reconfiguration cost. Verify
	// lazy total ≤ eager total within noise on a skewed workload.
	model := testModel(16, 30)
	tr, _ := trace.FacebookStyle(trace.FacebookPreset(trace.Database, 16, 21))
	tr = tr.Prefix(40000)
	run := func(opts ...RBMAOption) float64 {
		var sum float64
		const seeds = 3
		for s := uint64(0); s < seeds; s++ {
			r, _ := NewRBMA(16, 3, model, s, opts...)
			sum += totalCost(r, tr, model.Alpha)
		}
		return sum / seeds
	}
	lazy := run()
	eager := run(WithEagerRemoval())
	t.Logf("lazy %.0f vs eager %.0f", lazy, eager)
	if lazy > eager*1.05 {
		t.Fatalf("lazy (%v) should not exceed eager (%v) by >5%%", lazy, eager)
	}
}
