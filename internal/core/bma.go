package core

import (
	"fmt"

	"obm/internal/matching"
	"obm/internal/trace"
)

// BMA is the deterministic online b-matching baseline of Bienkowski,
// Fuchssteiner, Marcinkowski and Schmid (PERFORMANCE 2020), reimplemented
// from its description: a rent-or-buy counter scheme with min-counter
// eviction.
//
//   - Every unmatched pair accumulates the routing cost it pays. Once a
//     pair's accumulated cost reaches α it becomes a candidate: buying the
//     edge would have been no more expensive than the rent already paid.
//   - A candidate is inserted if both endpoints have spare capacity.
//     At a saturated endpoint, the incident matching edge with the smallest
//     defense counter is evicted — but only if the candidate's counter
//     exceeds that defense; otherwise insertion is deferred and the
//     candidate keeps accumulating (and keeps re-trying on every request,
//     which is the Θ(b) scan that makes BMA measurably slower than R-BMA
//     and sensitive to b, as the paper's Figures 1b–4b show).
//   - An inserted edge's defense counter starts at α and decays by the
//     evicted edges' accounting: on eviction a pair's counters reset, so it
//     must re-earn its place. This gives the O(b) competitive behaviour of
//     the original (each matched edge can deflect at most b candidates).
//
// The rent and defense counters are flat []float64 tables indexed by
// trace.PairID (absent ≡ 0, matching the original map semantics), so the
// per-request work is array reads plus the deliberate Θ(b) incidence scan.
type BMA struct {
	n, b  int
	model CostModel

	idx     *trace.PairIndex
	m       *matching.BMatching
	rent    []float64 // by PairID: accumulated routing cost while unmatched
	defense []float64 // by PairID: defense counter of matched edges
}

// NewBMA constructs the deterministic baseline.
func NewBMA(n, b int, model CostModel) (*BMA, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: NewBMA requires n >= 2, got %d", n)
	}
	if b < 1 {
		return nil, fmt.Errorf("core: NewBMA requires b >= 1, got %d", b)
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if model.Metric.N() < n {
		return nil, fmt.Errorf("core: metric covers %d racks, need %d", model.Metric.N(), n)
	}
	a := &BMA{n: n, b: b, model: model, idx: trace.SharedPairIndex(n)}
	a.Reset()
	return a, nil
}

// Name implements Algorithm.
func (a *BMA) Name() string { return "bma" }

// B implements Algorithm.
func (a *BMA) B() int { return a.b }

// Matched implements Algorithm.
func (a *BMA) Matched(u, v int) bool { return a.m.Has(trace.MakePairKey(u, v)) }

// MatchingSize implements Algorithm.
func (a *BMA) MatchingSize() int { return a.m.Size() }

func (a *BMA) bmatching() *matching.BMatching { return a.m }

// Reset implements Algorithm.
func (a *BMA) Reset() {
	if a.m == nil {
		a.m = matching.NewBMatching(a.n, a.b)
	} else {
		a.m.Reset()
	}
	if a.rent == nil {
		np := a.idx.NumPairs()
		a.rent = make([]float64, np)
		a.defense = make([]float64, np)
	} else {
		clear(a.rent)
		clear(a.defense)
	}
}

// Serve implements Algorithm.
func (a *BMA) Serve(u, v int) Step {
	if u > v {
		u, v = v, u
	}
	id := a.idx.ID(u, v)
	return a.serve(id, u, v, a.model.Metric.Dist(u, v))
}

// ServeCompiled implements CompiledServer.
func (a *BMA) ServeCompiled(req trace.CompiledReq) Step {
	return a.serve(req.ID, int(req.U), int(req.V), int(req.Dist))
}

// serve processes the request for pair id = {u, v} (u < v) at static
// distance dist.
func (a *BMA) serve(id trace.PairID, u, v, dist int) Step {
	var step Step
	if a.m.HasID(id) {
		step.RoutingCost = 1
		// A matched edge that keeps being used strengthens its defense,
		// up to one reconfiguration's worth.
		if a.defense[id] < a.model.Alpha {
			a.defense[id]++
		}
		return step
	}
	le := float64(dist)
	step.RoutingCost = le
	a.rent[id] += le
	// The original BMA evaluates the insertion condition on every request
	// to an unmatched pair, which requires finding the weakest incident
	// matching edge at both endpoints — a Θ(b) scan per request. This scan
	// is the reason BMA's running time grows with b in the paper's
	// Figures 1b–4b, so it is reproduced faithfully here rather than
	// short-circuited behind the rent threshold.
	victims, nv, ok := a.findVictims(id, u, v)
	if !ok || a.rent[id] < a.model.Alpha {
		return step
	}
	for _, q := range victims[:nv] {
		if err := a.m.Remove(a.idx.Key(q)); err != nil {
			panic(fmt.Sprintf("core: BMA removing %v: %v", a.idx.Key(q), err))
		}
		a.defense[q] = 0
		a.rent[q] = 0
		step.Removals++
	}
	k := a.idx.Key(id)
	if err := a.m.Add(k); err != nil {
		panic(fmt.Sprintf("core: BMA adding %v: %v", k, err))
	}
	step.Adds++
	a.defense[id] = a.model.Alpha
	a.rent[id] = 0
	return step
}

// findVictims determines whether candidate id = {u, v} can be inserted,
// returning the matching edges that must be evicted first (at most one per
// saturated endpoint). Insertion is refused if a saturated endpoint's
// weakest incident edge defends with a counter at least as large as the
// candidate's rent. The scan over incident edges is deliberately the
// original's Θ(b) per attempt; the victims ride back in a fixed-size array
// so the hot path does not allocate.
func (a *BMA) findVictims(id trace.PairID, u, v int) (victims [2]trace.PairID, n int, ok bool) {
	for _, w := range [2]int{u, v} {
		if a.m.Free(w) > 0 {
			continue
		}
		weakest := trace.NoPair
		weakestDef := -1.0
		for _, q := range a.m.IncidentView(w) {
			qid := a.idx.IDOfKey(q)
			d := a.defense[qid]
			// Tie-break on the pair id (≡ pair key order) for
			// deterministic runs regardless of incidence order.
			if weakestDef < 0 || d < weakestDef || (d == weakestDef && qid < weakest) {
				weakest, weakestDef = qid, d
			}
		}
		if a.rent[id] <= weakestDef {
			return victims, 0, false
		}
		victims[n] = weakest
		n++
	}
	// The two victims could coincide only if they were the same pair
	// incident to both u and v, i.e. the pair {u,v} itself — impossible
	// since the candidate is unmatched.
	return victims, n, true
}
