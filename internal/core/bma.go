package core

import (
	"fmt"

	"obm/internal/matching"
	"obm/internal/trace"
)

// BMA is the deterministic online b-matching baseline of Bienkowski,
// Fuchssteiner, Marcinkowski and Schmid (PERFORMANCE 2020), reimplemented
// from its description: a rent-or-buy counter scheme with min-counter
// eviction.
//
//   - Every unmatched pair accumulates the routing cost it pays. Once a
//     pair's accumulated cost reaches α it becomes a candidate: buying the
//     edge would have been no more expensive than the rent already paid.
//   - A candidate is inserted if both endpoints have spare capacity.
//     At a saturated endpoint, the incident matching edge with the smallest
//     defense counter is evicted — but only if the candidate's counter
//     exceeds that defense; otherwise insertion is deferred and the
//     candidate keeps accumulating (and keeps re-trying on every request,
//     which is the Θ(b) scan that makes BMA measurably slower than R-BMA
//     and sensitive to b, as the paper's Figures 1b–4b show).
//   - An inserted edge's defense counter starts at α and decays by the
//     evicted edges' accounting: on eviction a pair's counters reset, so it
//     must re-earn its place. This gives the O(b) competitive behaviour of
//     the original (each matched edge can deflect at most b candidates).
type BMA struct {
	n, b  int
	model CostModel

	m       *matching.BMatching
	rent    map[trace.PairKey]float64 // accumulated routing cost while unmatched
	defense map[trace.PairKey]float64 // defense counter of matched edges
}

// NewBMA constructs the deterministic baseline.
func NewBMA(n, b int, model CostModel) (*BMA, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: NewBMA requires n >= 2, got %d", n)
	}
	if b < 1 {
		return nil, fmt.Errorf("core: NewBMA requires b >= 1, got %d", b)
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if model.Metric.N() < n {
		return nil, fmt.Errorf("core: metric covers %d racks, need %d", model.Metric.N(), n)
	}
	a := &BMA{n: n, b: b, model: model}
	a.Reset()
	return a, nil
}

// Name implements Algorithm.
func (a *BMA) Name() string { return "bma" }

// B implements Algorithm.
func (a *BMA) B() int { return a.b }

// Matched implements Algorithm.
func (a *BMA) Matched(u, v int) bool { return a.m.Has(trace.MakePairKey(u, v)) }

// MatchingSize implements Algorithm.
func (a *BMA) MatchingSize() int { return a.m.Size() }

func (a *BMA) bmatching() *matching.BMatching { return a.m }

// Reset implements Algorithm.
func (a *BMA) Reset() {
	a.m = matching.NewBMatching(a.n, a.b)
	a.rent = make(map[trace.PairKey]float64)
	a.defense = make(map[trace.PairKey]float64)
}

// Serve implements Algorithm.
func (a *BMA) Serve(u, v int) Step {
	k := trace.MakePairKey(u, v)
	var step Step
	if a.m.Has(k) {
		step.RoutingCost = 1
		// A matched edge that keeps being used strengthens its defense,
		// up to one reconfiguration's worth.
		if a.defense[k] < a.model.Alpha {
			a.defense[k]++
		}
		return step
	}
	le := a.model.RouteCost(k, false)
	step.RoutingCost = le
	a.rent[k] += le
	// The original BMA evaluates the insertion condition on every request
	// to an unmatched pair, which requires finding the weakest incident
	// matching edge at both endpoints — a Θ(b) scan per request. This scan
	// is the reason BMA's running time grows with b in the paper's
	// Figures 1b–4b, so it is reproduced faithfully here rather than
	// short-circuited behind the rent threshold.
	victims, ok := a.findVictims(k)
	if !ok || a.rent[k] < a.model.Alpha {
		return step
	}
	for _, q := range victims {
		if err := a.m.Remove(q); err != nil {
			panic(fmt.Sprintf("core: BMA removing %v: %v", q, err))
		}
		delete(a.defense, q)
		a.rent[q] = 0
		step.Removals++
	}
	if err := a.m.Add(k); err != nil {
		panic(fmt.Sprintf("core: BMA adding %v: %v", k, err))
	}
	step.Adds++
	a.defense[k] = a.model.Alpha
	a.rent[k] = 0
	return step
}

// findVictims determines whether candidate k can be inserted, returning the
// matching edges that must be evicted first (at most one per saturated
// endpoint). Insertion is refused if a saturated endpoint's weakest
// incident edge defends with a counter at least as large as the
// candidate's rent. The scan over incident edges is deliberately the
// original's Θ(b) per attempt.
func (a *BMA) findVictims(k trace.PairKey) ([]trace.PairKey, bool) {
	u, v := k.Endpoints()
	var victims []trace.PairKey
	for _, w := range [2]int{u, v} {
		if a.m.Free(w) > 0 {
			continue
		}
		var weakest trace.PairKey
		weakestDef := -1.0
		a.m.ForEachIncident(w, func(q trace.PairKey) bool {
			d := a.defense[q]
			// Tie-break on the pair key for deterministic runs (the
			// incidence set iterates in map order).
			if weakestDef < 0 || d < weakestDef || (d == weakestDef && q < weakest) {
				weakest, weakestDef = q, d
			}
			return true
		})
		if a.rent[k] <= weakestDef {
			return nil, false
		}
		victims = append(victims, weakest)
	}
	// The two victims could coincide only if they were the same pair
	// incident to both u and v, i.e. the pair {u,v} itself — impossible
	// since k is unmatched. A victim incident to both endpoints cannot
	// occur for distinct pairs.
	return victims, true
}
