package core

import (
	"fmt"

	"obm/internal/trace"
)

// Rotor is a demand-oblivious reconfigurable baseline in the style of
// RotorNet/Sirius (paper §4 related work): each of the b optical switches
// cycles through a fixed round-robin schedule of perfect matchings,
// independent of traffic. A request served while its pair happens to be on
// a live circuit costs 1; everything else takes the static fabric. The b
// switches are staggered evenly across the schedule, so every node always
// has b distinct live partners.
//
// Rotation follows a fixed period measured in requests (standing in for
// the fixed-timer rotation of rotor hardware); rotations are not charged
// reconfiguration cost because rotor switches rotate on a schedule rather
// than per-decision (documented deviation from the α-model; set
// ChargeRotations to charge them).
type Rotor struct {
	n, b   int
	model  CostModel
	period int
	// ChargeRotations, when true, bills α per edge changed at rotation.
	ChargeRotations bool

	schedule [][]trace.PairKey     // schedule[r]: matching of round r
	offsets  []int                 // current round per switch
	live     map[trace.PairKey]int // live pair -> number of switches serving it
	since    int
}

// NewRotor constructs the rotor baseline. n must be >= 2; odd n is handled
// with a dummy node (one node idles per round). period is the number of
// requests between rotations.
func NewRotor(n, b int, model CostModel, period int) (*Rotor, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: NewRotor requires n >= 2")
	}
	if b < 1 {
		return nil, fmt.Errorf("core: NewRotor requires b >= 1")
	}
	if period < 1 {
		return nil, fmt.Errorf("core: NewRotor requires period >= 1")
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if model.Metric.N() < n {
		return nil, fmt.Errorf("core: metric covers %d racks, need %d", model.Metric.N(), n)
	}
	r := &Rotor{n: n, b: b, model: model, period: period}
	r.schedule = roundRobinSchedule(n)
	if b > len(r.schedule) {
		return nil, fmt.Errorf("core: NewRotor b=%d exceeds %d distinct rounds", b, len(r.schedule))
	}
	r.Reset()
	return r, nil
}

// roundRobinSchedule builds the circle-method round-robin tournament: for
// even m = n (or n+1 with a dummy), m-1 rounds, each a perfect matching on
// the non-dummy nodes.
func roundRobinSchedule(n int) [][]trace.PairKey {
	m := n
	if m%2 == 1 {
		m++ // node m-1 is a dummy: its partner idles that round
	}
	rounds := make([][]trace.PairKey, 0, m-1)
	for r := 0; r < m-1; r++ {
		var round []trace.PairKey
		// Circle method: node m-1 is fixed, the rest rotate.
		if r < n && m-1 < n {
			round = append(round, trace.MakePairKey(m-1, r))
		}
		for i := 1; i < m/2; i++ {
			a := (r + i) % (m - 1)
			b := (r - i + m - 1) % (m - 1)
			if a < n && b < n {
				round = append(round, trace.MakePairKey(a, b))
			}
		}
		rounds = append(rounds, round)
	}
	return rounds
}

// Name implements Algorithm.
func (r *Rotor) Name() string { return fmt.Sprintf("rotor[p=%d]", r.period) }

// B implements Algorithm.
func (r *Rotor) B() int { return r.b }

// Matched implements Algorithm.
func (r *Rotor) Matched(u, v int) bool {
	return r.live[trace.MakePairKey(u, v)] > 0
}

// MatchingSize implements Algorithm.
func (r *Rotor) MatchingSize() int { return len(r.live) }

// Reset implements Algorithm.
func (r *Rotor) Reset() {
	r.offsets = make([]int, r.b)
	stride := len(r.schedule) / r.b
	if stride == 0 {
		stride = 1
	}
	for s := range r.offsets {
		r.offsets[s] = (s * stride) % len(r.schedule)
	}
	r.live = make(map[trace.PairKey]int)
	for _, s := range r.offsets {
		for _, k := range r.schedule[s] {
			r.live[k]++
		}
	}
	r.since = 0
}

// Serve implements Algorithm.
func (r *Rotor) Serve(u, v int) Step {
	k := trace.MakePairKey(u, v)
	var step Step
	step.RoutingCost = r.model.RouteCost(k, r.live[k] > 0)
	r.since++
	if r.since < r.period {
		return step
	}
	r.since = 0
	// Rotate every switch to its next round.
	for s := range r.offsets {
		old := r.schedule[r.offsets[s]]
		r.offsets[s] = (r.offsets[s] + 1) % len(r.schedule)
		next := r.schedule[r.offsets[s]]
		for _, q := range old {
			if r.live[q] == 1 {
				delete(r.live, q)
			} else {
				r.live[q]--
			}
			if r.ChargeRotations {
				step.Removals++
			}
		}
		for _, q := range next {
			r.live[q]++
			if r.ChargeRotations {
				step.Adds++
			}
		}
	}
	return step
}
