package core

import (
	"testing"

	"obm/internal/graph"
	"obm/internal/trace"
)

func TestAdaptiveAdversaryValidation(t *testing.T) {
	top := graph.Star(4)
	model := CostModel{Metric: top.Metric(), Alpha: 4}
	alg, _ := NewBMA(top.NumRacks(), 2, model)
	if _, err := AdaptiveAdversary(alg, 1, 10, 4); err == nil {
		t.Error("nLeaves=1 accepted")
	}
	if _, err := AdaptiveAdversary(alg, 4, 0, 4); err == nil {
		t.Error("blocks=0 accepted")
	}
	if _, err := AdaptiveAdversary(alg, 4, 10, 0); err == nil {
		t.Error("blockLen=0 accepted")
	}
}

func TestAdversaryHurtsDeterministicMoreThanRandomized(t *testing.T) {
	// The separation experiment: build the adversarial sequence against
	// deterministic BMA (it always requests an unmatched hub pair, so BMA
	// keeps paying rent and churning), then replay the same sequence on
	// R-BMA with several seeds. The deterministic algorithm's cost should
	// exceed the randomized algorithm's average noticeably.
	b := 4
	nLeaves := b + 1
	top := graph.Star(nLeaves)
	model := CostModel{Metric: top.Metric(), Alpha: 8}
	alpha := model.Alpha

	bma, err := NewBMA(top.NumRacks(), b, model)
	if err != nil {
		t.Fatal(err)
	}
	// Generate against BMA while serving it, tracking its cost.
	var bmaCost float64
	tr, err := AdaptiveAdversary(bma, nLeaves, 400, int(alpha))
	if err != nil {
		t.Fatal(err)
	}
	// Re-run BMA from scratch on the recorded trace to get its total cost
	// (the generator already served it once; replay a fresh instance).
	bma2, _ := NewBMA(top.NumRacks(), b, model)
	for _, req := range tr.Reqs {
		bmaCost += bma2.Serve(int(req.Src), int(req.Dst)).Total(alpha)
	}

	var rbmaSum float64
	const seeds = 5
	for s := uint64(0); s < seeds; s++ {
		r, _ := NewRBMA(top.NumRacks(), b, model, s)
		for _, req := range tr.Reqs {
			rbmaSum += r.Serve(int(req.Src), int(req.Dst)).Total(alpha)
		}
	}
	rbmaAvg := rbmaSum / seeds
	t.Logf("adversarial star: BMA %v vs R-BMA %v (ratio %.2f)",
		bmaCost, rbmaAvg, bmaCost/rbmaAvg)
	if bmaCost <= rbmaAvg {
		t.Fatalf("adaptive adversary should hurt deterministic BMA more: %v vs %v",
			bmaCost, rbmaAvg)
	}
}

func TestAdversaryRotatesWhenFullyMatchable(t *testing.T) {
	// nLeaves <= b: everything can be matched; the adversary must still
	// produce a valid trace.
	top := graph.Star(3)
	model := CostModel{Metric: top.Metric(), Alpha: 4}
	alg, _ := NewRBMA(top.NumRacks(), 3, model, 1)
	tr, err := AdaptiveAdversary(alg, 3, 30, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 120 {
		t.Fatalf("trace length %d, want 120", tr.Len())
	}
}

func TestAdversaryStreamMatchesAdaptiveAdversary(t *testing.T) {
	// The streaming adversary must issue the exact request sequence of the
	// materialized one when driven against an identically constructed
	// deterministic target, and Reset must reproduce it.
	top := graph.Star(6)
	model := CostModel{Metric: top.Metric(), Alpha: 4}
	mat, _ := NewBMA(top.NumRacks(), 2, model)
	want, err := AdaptiveAdversary(mat, 6, 40, 4)
	if err != nil {
		t.Fatal(err)
	}
	target, _ := NewBMA(top.NumRacks(), 2, model)
	s, err := NewAdversaryStream(target, 6, 40, 4)
	if err != nil {
		t.Fatal(err)
	}
	drain := func() []trace.Request {
		var out []trace.Request
		buf := make([]trace.Request, 7) // ragged batches across block bounds
		for {
			n := s.Next(buf)
			if n == 0 {
				return out
			}
			out = append(out, buf[:n]...)
		}
	}
	got := drain()
	if len(got) != want.Len() {
		t.Fatalf("stream produced %d requests, want %d", len(got), want.Len())
	}
	for i := range got {
		if got[i] != want.Reqs[i] {
			t.Fatalf("request %d = %v, want %v", i, got[i], want.Reqs[i])
		}
	}
	s.Reset()
	again := drain()
	for i := range again {
		if again[i] != want.Reqs[i] {
			t.Fatalf("after Reset, request %d = %v, want %v", i, again[i], want.Reqs[i])
		}
	}
}
