package core

import (
	"fmt"
	"math"

	"obm/internal/trace"
)

// OfflineOPT computes the exact optimal offline cost of serving the trace
// while maintaining an a-matching (degree cap a), by dynamic programming
// over all feasible matchings. The state space is exponential in the number
// of node pairs, so this is intended for small instances (it refuses to run
// when more than maxStates matchings exist). It is the denominator for the
// empirical competitive-ratio experiments, matching the paper's Opt(σ)
// with the (b,a) resource-augmentation setting of §1.1.
func OfflineOPT(tr *trace.Trace, a int, model CostModel, maxStates int) (float64, error) {
	if err := tr.Validate(); err != nil {
		return 0, err
	}
	if err := model.Validate(); err != nil {
		return 0, err
	}
	if a < 1 {
		return 0, fmt.Errorf("core: OfflineOPT requires a >= 1")
	}
	n := tr.NumRacks
	// Enumerate all pairs.
	var pairs []trace.PairKey
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			pairs = append(pairs, trace.MakePairKey(u, v))
		}
	}
	if len(pairs) > 20 {
		return 0, fmt.Errorf("core: OfflineOPT limited to 20 pairs, have %d", len(pairs))
	}
	// Enumerate feasible matchings as bitmasks over pairs.
	var states []uint32
	for mask := uint32(0); mask < 1<<len(pairs); mask++ {
		if feasibleMask(mask, pairs, n, a) {
			states = append(states, mask)
			if len(states) > maxStates {
				return 0, fmt.Errorf("core: OfflineOPT state space exceeds %d", maxStates)
			}
		}
	}
	stateIndex := make(map[uint32]int, len(states))
	for i, s := range states {
		stateIndex[s] = i
	}
	// Reconfiguration cost between two states: α per differing pair.
	reconf := func(a, b uint32) float64 {
		return model.Alpha * float64(popcount32(a^b))
	}
	pairBit := make(map[trace.PairKey]uint32, len(pairs))
	for i, p := range pairs {
		pairBit[p] = 1 << uint(i)
	}
	// DP: cost[i] = minimal cost ending in states[i].
	cost := make([]float64, len(states))
	next := make([]float64, len(states))
	for i, s := range states {
		// Initial matching is empty; pay to configure s up front.
		cost[i] = reconf(0, s)
	}
	for _, req := range tr.Reqs {
		k := req.Key()
		bit := pairBit[k]
		route := func(s uint32) float64 {
			return model.RouteCost(k, s&bit != 0)
		}
		// First pay routing in the current state, then optionally move.
		// (Paper: the request is served, then the matching may change.)
		for i, s := range states {
			cost[i] += route(s)
			_ = s
		}
		// Relax transitions: next[j] = min_i cost[i] + reconf(i, j).
		// O(S²) per request; fine at these sizes.
		for j, sj := range states {
			best := math.Inf(1)
			for i, si := range states {
				if c := cost[i] + reconf(si, sj); c < best {
					best = c
				}
			}
			next[j] = best
		}
		cost, next = next, cost
	}
	best := math.Inf(1)
	for _, c := range cost {
		if c < best {
			best = c
		}
	}
	return best, nil
}

func feasibleMask(mask uint32, pairs []trace.PairKey, n, a int) bool {
	deg := make([]int, n)
	for i, p := range pairs {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		u, v := p.Endpoints()
		deg[u]++
		deg[v]++
		if deg[u] > a || deg[v] > a {
			return false
		}
	}
	return true
}

func popcount32(x uint32) int {
	count := 0
	for x != 0 {
		x &= x - 1
		count++
	}
	return count
}
