package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"obm/internal/graph"
	"obm/internal/matching"
	"obm/internal/paging"
	"obm/internal/stats"
	"obm/internal/trace"
)

// RBMA is the paper's randomized online algorithm for (b,a)-matching
// (§2.2–2.3), built from two reductions:
//
//  1. Nonuniform → uniform (Theorem 1): per pair e, only every
//     k_e = ⌈α/ℓ_e⌉-th request is forwarded to the uniform algorithm, so
//     reconfiguration decisions happen only after the routing cost paid on
//     e since the last decision is about α.
//  2. Uniform → paging (Theorem 2): every node runs an independent paging
//     cache of capacity b over the node pairs incident to it; the invariant
//     is that a pair is a matching edge iff it is cached at both endpoints.
//
// With randomized-marking caches this yields the
// O((1+ℓmax/α)·log(b/(b−a+1)))-competitive algorithm R-BMA (Corollary 3).
//
// Eviction handling follows the paper's footnote 2: by default removals are
// lazy — an edge evicted from a cache is only marked, and marked edges are
// pruned when a node's incident matching edges would exceed b. Eager mode
// (exact Theorem 2 invariant) is available for analysis and ablations.
//
// All per-pair state is dense, indexed by trace.PairID: forwarding counters
// and the precomputed k_e table are flat []int32, lazily-removed edges live
// in a bitset with per-node marked counts, and the default marking caches
// run in one slab-backed paging.MarkingBank (rack w caches pair {w,o} as
// the item o). Runs are bit-for-bit identical to the original map-backed
// implementation for the same seed: eviction choices are positional, and
// PairID order coincides with PairKey order wherever a tie is broken by
// "smallest pair".
type RBMA struct {
	name    string
	n, b    int
	model   CostModel
	factory paging.Factory // nil: use the slab-backed marking bank
	seed    uint64

	idx      *trace.PairIndex
	bank     *paging.MarkingBank // default uniform layer (factory == nil)
	caches   []paging.Cache      // substituted uniform layer (factory != nil)
	m        *matching.BMatching
	marked   []uint64 // bitset by PairID: lazily-removed edges still in m
	markedAt []int32  // per node: marked edges incident to it
	nMarked  int
	counter  []int32 // by PairID: requests since last special request
	kePair   []int32 // by PairID: k_e = ⌈α/ℓ_e⌉; shared and read-only
	lazy     bool

	// ForwardedRequests counts requests passed to the uniform layer
	// (diagnostics for the reduction's accounting).
	ForwardedRequests int
}

// RBMAOption customizes construction.
type RBMAOption func(*RBMA)

// WithEagerRemoval disables lazy pruning: edges leave the matching the
// moment either endpoint evicts them (the exact Theorem 2 invariant).
func WithEagerRemoval() RBMAOption {
	return func(r *RBMA) { r.lazy = false }
}

// WithCacheFactory substitutes the paging algorithm run at each node
// (default: randomized marking). Used by the ablation experiments. Caches
// built this way hold uint64(trace.PairID) items; implementations that
// support paging.DeclareUniverse get dense slot tables automatically.
func WithCacheFactory(f paging.Factory, name string) RBMAOption {
	return func(r *RBMA) {
		r.factory = f
		r.name = "r-bma[" + name + "]"
	}
}

// NewRBMA constructs R-BMA for n racks with degree cap b under the given
// cost model. The seed drives all randomized choices; the same seed yields
// an identical run.
func NewRBMA(n, b int, model CostModel, seed uint64, opts ...RBMAOption) (*RBMA, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: NewRBMA requires n >= 2, got %d", n)
	}
	if b < 1 {
		return nil, fmt.Errorf("core: NewRBMA requires b >= 1, got %d", b)
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if model.Metric.N() < n {
		return nil, fmt.Errorf("core: metric covers %d racks, need %d", model.Metric.N(), n)
	}
	r := &RBMA{
		name:  "r-bma",
		n:     n,
		b:     b,
		model: model,
		seed:  seed,
		idx:   trace.SharedPairIndex(n),
		lazy:  true,
	}
	for _, opt := range opts {
		opt(r)
	}
	r.Reset()
	return r, nil
}

// Name implements Algorithm.
func (r *RBMA) Name() string { return r.name }

// B implements Algorithm.
func (r *RBMA) B() int { return r.b }

// Matched implements Algorithm.
func (r *RBMA) Matched(u, v int) bool { return r.m.Has(trace.MakePairKey(u, v)) }

// MatchingSize implements Algorithm.
func (r *RBMA) MatchingSize() int { return r.m.Size() }

func (r *RBMA) bmatching() *matching.BMatching { return r.m }

// setCaches swaps in an externally built uniform layer (clairvoyant and
// predictive variants). Items must be uint64(trace.PairID).
func (r *RBMA) setCaches(cs []paging.Cache) {
	r.bank = nil
	r.caches = cs
}

// Reseed implements Reseeder: the instance restarts from the initial state
// a fresh construction with the new seed would have, reusing every backing
// table.
func (r *RBMA) Reseed(seed uint64) {
	r.seed = seed
	r.Reset()
}

// Reset implements Algorithm.
func (r *RBMA) Reset() {
	master := stats.NewRand(r.seed)
	if r.factory == nil {
		// Default uniform layer: slab-backed marking bank, one cache per
		// rack over the other-endpoint universe. The bank consumes one
		// master draw per rack, exactly like the factory loop below.
		if r.bank == nil {
			r.bank = paging.NewMarkingBank(r.n, r.b, r.n, master)
		} else {
			r.bank.Reset(master)
		}
		r.caches = nil
	} else {
		// Dense slot tables cost NumPairs() entries per cache, O(n³)
		// across all racks; past this total they stop paying for
		// themselves, and map mode is behavior-identical anyway.
		const maxDenseEntries = 16 << 20
		dense := r.n*r.idx.NumPairs() <= maxDenseEntries
		r.caches = make([]paging.Cache, r.n)
		for i := range r.caches {
			r.caches[i] = r.factory(r.b, master.Uint64())
			if dense {
				paging.DeclareUniverse(r.caches[i], r.idx.NumPairs())
			}
		}
		r.bank = nil
	}
	if r.m == nil {
		r.m = matching.NewBMatching(r.n, r.b)
	} else {
		r.m.Reset()
	}
	np := r.idx.NumPairs()
	if r.counter == nil {
		r.counter = make([]int32, np)
		r.kePair = sharedKePair(r.model, r.n, r.idx)
		r.marked = make([]uint64, (np+63)/64)
		r.markedAt = make([]int32, r.n)
	} else {
		clear(r.counter)
		clear(r.marked)
		clear(r.markedAt)
	}
	r.nMarked = 0
	r.ForwardedRequests = 0
}

// kePairCacheKey identifies one precomputed k_e table: the forwarding
// periods depend only on the metric, α and the rack count.
type kePairCacheKey struct {
	metric *graph.Metric
	alpha  float64
	n      int
}

var (
	kePairCache     sync.Map // kePairCacheKey -> []int32
	kePairCacheSize atomic.Int32
)

// sharedKePair returns the per-pair table of k_e = ⌈α/ℓ_e⌉ (Theorem 1's
// forwarding period), precomputed once per (metric, α, n) and shared across
// algorithm instances — the table is immutable. The computation goes
// through a small per-distance table so ceil is evaluated once per distinct
// distance. The cache is keyed by metric identity; it is flushed past a
// size bound so processes that keep constructing fresh metrics don't
// accumulate dead tables.
func sharedKePair(model CostModel, n int, idx *trace.PairIndex) []int32 {
	key := kePairCacheKey{metric: model.Metric, alpha: model.Alpha, n: n}
	if t, ok := kePairCache.Load(key); ok {
		return t.([]int32)
	}
	keByDist := make([]int32, model.Metric.Max()+1)
	for d := 1; d < len(keByDist); d++ {
		keByDist[d] = int32(math.Ceil(model.Alpha / float64(d)))
	}
	kePair := make([]int32, idx.NumPairs())
	for id := range kePair {
		u, v := idx.Endpoints(trace.PairID(id))
		kePair[id] = keByDist[model.Metric.Dist(u, v)]
	}
	if t, loaded := kePairCache.LoadOrStore(key, kePair); loaded {
		return t.([]int32)
	}
	if kePairCacheSize.Add(1) > 128 {
		kePairCache.Clear()
		kePairCacheSize.Store(0)
		// The freshly computed table stays valid for this caller; the
		// next constructor for the same model recomputes it.
	}
	return kePair
}

func (r *RBMA) isMarked(id trace.PairID) bool {
	return r.marked[id>>6]&(1<<(uint(id)&63)) != 0
}

func (r *RBMA) setMarked(id trace.PairID) {
	r.marked[id>>6] |= 1 << (uint(id) & 63)
	u, v := r.idx.Endpoints(id)
	r.markedAt[u]++
	r.markedAt[v]++
	r.nMarked++
}

func (r *RBMA) clearMarked(id trace.PairID) {
	r.marked[id>>6] &^= 1 << (uint(id) & 63)
	u, v := r.idx.Endpoints(id)
	r.markedAt[u]--
	r.markedAt[v]--
	r.nMarked--
}

// Serve implements Algorithm.
func (r *RBMA) Serve(u, v int) Step {
	if u > v {
		u, v = v, u
	}
	id := r.idx.ID(u, v)
	return r.serve(id, u, v, r.model.Metric.Dist(u, v))
}

// ServeCompiled implements CompiledServer.
func (r *RBMA) ServeCompiled(req trace.CompiledReq) Step {
	return r.serve(req.ID, int(req.U), int(req.V), int(req.Dist))
}

// serve processes the request for pair id = {u, v} (u < v) at static
// distance dist.
func (r *RBMA) serve(id trace.PairID, u, v, dist int) Step {
	var step Step
	if r.m.HasID(id) {
		step.RoutingCost = 1
	} else {
		step.RoutingCost = float64(dist)
	}

	// Nonuniform → uniform reduction: forward only every k_e-th request.
	r.counter[id]++
	if r.counter[id] < r.kePair[id] {
		return step
	}
	r.counter[id] = 0
	r.ForwardedRequests++

	// Uniform layer: pass the pair to the paging caches at both endpoints.
	if r.bank != nil {
		if o, wasEvicted, _ := r.bank.Access(u, int32(v)); wasEvicted {
			r.handleEviction(r.idx.ID(u, int(o)), &step)
		}
		if o, wasEvicted, _ := r.bank.Access(v, int32(u)); wasEvicted {
			r.handleEviction(r.idx.ID(v, int(o)), &step)
		}
	} else {
		if q, wasEvicted, _ := r.caches[u].Access(uint64(id)); wasEvicted {
			r.handleEviction(trace.PairID(q), &step)
		}
		if q, wasEvicted, _ := r.caches[v].Access(uint64(id)); wasEvicted {
			r.handleEviction(trace.PairID(q), &step)
		}
	}

	// Maintain the invariant: the requested pair is cached at both
	// endpoints now, so it must be(come) a matching edge.
	if r.m.HasID(id) {
		// Lazy mode: a marked edge that is requested again is simply
		// un-marked; it never left the physical matching.
		if r.isMarked(id) {
			r.clearMarked(id)
		}
		return step
	}
	if r.m.Free(u) == 0 {
		step.Removals += r.pruneAt(u)
	}
	if r.m.Free(v) == 0 {
		step.Removals += r.pruneAt(v)
	}
	k := r.idx.Key(id)
	if err := r.m.Add(k); err != nil {
		// Unreachable if the invariants hold; fail loudly rather than
		// silently corrupting the experiment.
		panic(fmt.Sprintf("core: R-BMA invariant violation adding %v: %v", k, err))
	}
	step.Adds++
	return step
}

// handleEviction reacts to pair q falling out of one endpoint's cache:
// matching edges are marked for lazy removal, or removed immediately in
// eager mode. Evictions of non-matching pairs are ignored.
func (r *RBMA) handleEviction(q trace.PairID, step *Step) {
	if !r.m.HasID(q) {
		return
	}
	if r.lazy {
		if !r.isMarked(q) {
			r.setMarked(q)
		}
	} else {
		r.mustRemove(q)
		step.Removals++
	}
}

// pruneAt removes the smallest marked edge incident to node w, returning
// the number of removals performed (1). In lazy mode a saturated node
// always has a marked incident edge when a new edge must be added: the
// unmarked incident edges are all cached at w, and w's cache also holds the
// pair being added. The scan is over w's ≤ b incident edges; the per-node
// marked count rejects inconsistent states up front.
func (r *RBMA) pruneAt(w int) int {
	if r.markedAt[w] == 0 {
		panic(fmt.Sprintf("core: R-BMA lazy-pruning invariant violation at node %d", w))
	}
	// Smallest PairID == smallest PairKey, so runs with the same seed are
	// bit-for-bit reproducible regardless of incidence order.
	victim := trace.NoPair
	for _, q := range r.m.IncidentView(w) {
		qid := r.idx.IDOfKey(q)
		if r.isMarked(qid) && (victim == trace.NoPair || qid < victim) {
			victim = qid
		}
	}
	if victim == trace.NoPair {
		panic(fmt.Sprintf("core: R-BMA marked count desync at node %d", w))
	}
	r.mustRemove(victim)
	return 1
}

func (r *RBMA) mustRemove(q trace.PairID) {
	if err := r.m.Remove(r.idx.Key(q)); err != nil {
		panic(fmt.Sprintf("core: R-BMA removing %v: %v", r.idx.Key(q), err))
	}
	if r.isMarked(q) {
		r.clearMarked(q)
	}
}

// cachedAt reports whether pair id is held by node w's cache.
func (r *RBMA) cachedAt(w int, id trace.PairID) bool {
	if r.bank != nil {
		return r.bank.Contains(w, int32(r.idx.Other(id, w)))
	}
	return r.caches[w].Contains(uint64(id))
}

// CheckCacheInvariant verifies the Theorem 2 invariant: every unmarked
// matching edge is cached at both endpoints, and in eager mode every
// matching edge is cached at both endpoints. Intended for tests.
func (r *RBMA) CheckCacheInvariant() error {
	for _, k := range r.m.Edges() {
		id := r.idx.IDOfKey(k)
		if r.isMarked(id) {
			continue
		}
		u, v := k.Endpoints()
		if !r.cachedAt(u, id) || !r.cachedAt(v, id) {
			return fmt.Errorf("core: unmarked matching edge %v not cached at both endpoints", k)
		}
	}
	if !r.lazy && r.nMarked != 0 {
		return fmt.Errorf("core: eager R-BMA has %d marked edges", r.nMarked)
	}
	return nil
}
