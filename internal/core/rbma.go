package core

import (
	"fmt"
	"math"

	"obm/internal/matching"
	"obm/internal/paging"
	"obm/internal/stats"
	"obm/internal/trace"
)

// RBMA is the paper's randomized online algorithm for (b,a)-matching
// (§2.2–2.3), built from two reductions:
//
//  1. Nonuniform → uniform (Theorem 1): per pair e, only every
//     k_e = ⌈α/ℓ_e⌉-th request is forwarded to the uniform algorithm, so
//     reconfiguration decisions happen only after the routing cost paid on
//     e since the last decision is about α.
//  2. Uniform → paging (Theorem 2): every node runs an independent paging
//     cache of capacity b over the node pairs incident to it; the invariant
//     is that a pair is a matching edge iff it is cached at both endpoints.
//
// With randomized-marking caches this yields the
// O((1+ℓmax/α)·log(b/(b−a+1)))-competitive algorithm R-BMA (Corollary 3).
//
// Eviction handling follows the paper's footnote 2: by default removals are
// lazy — an edge evicted from a cache is only marked, and marked edges are
// pruned when a node's incident matching edges would exceed b. Eager mode
// (exact Theorem 2 invariant) is available for analysis and ablations.
type RBMA struct {
	name    string
	n, b    int
	model   CostModel
	factory paging.Factory
	seed    uint64

	caches   []paging.Cache
	m        *matching.BMatching
	marked   map[trace.PairKey]struct{} // lazily-removed edges still in m
	counter  map[trace.PairKey]int      // requests since last special request
	keByDist []int                      // k_e = ⌈α/ℓ⌉ indexed by distance ℓ
	lazy     bool

	// ForwardedRequests counts requests passed to the uniform layer
	// (diagnostics for the reduction's accounting).
	ForwardedRequests int
}

// RBMAOption customizes construction.
type RBMAOption func(*RBMA)

// WithEagerRemoval disables lazy pruning: edges leave the matching the
// moment either endpoint evicts them (the exact Theorem 2 invariant).
func WithEagerRemoval() RBMAOption {
	return func(r *RBMA) { r.lazy = false }
}

// WithCacheFactory substitutes the paging algorithm run at each node
// (default: randomized marking). Used by the ablation experiments.
func WithCacheFactory(f paging.Factory, name string) RBMAOption {
	return func(r *RBMA) {
		r.factory = f
		r.name = "r-bma[" + name + "]"
	}
}

// NewRBMA constructs R-BMA for n racks with degree cap b under the given
// cost model. The seed drives all randomized choices; the same seed yields
// an identical run.
func NewRBMA(n, b int, model CostModel, seed uint64, opts ...RBMAOption) (*RBMA, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: NewRBMA requires n >= 2, got %d", n)
	}
	if b < 1 {
		return nil, fmt.Errorf("core: NewRBMA requires b >= 1, got %d", b)
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if model.Metric.N() < n {
		return nil, fmt.Errorf("core: metric covers %d racks, need %d", model.Metric.N(), n)
	}
	r := &RBMA{
		name:    "r-bma",
		n:       n,
		b:       b,
		model:   model,
		factory: paging.NewMarkingFactory,
		seed:    seed,
		lazy:    true,
	}
	for _, opt := range opts {
		opt(r)
	}
	r.Reset()
	return r, nil
}

// Name implements Algorithm.
func (r *RBMA) Name() string { return r.name }

// B implements Algorithm.
func (r *RBMA) B() int { return r.b }

// Matched implements Algorithm.
func (r *RBMA) Matched(u, v int) bool { return r.m.Has(trace.MakePairKey(u, v)) }

// MatchingSize implements Algorithm.
func (r *RBMA) MatchingSize() int { return r.m.Size() }

func (r *RBMA) bmatching() *matching.BMatching { return r.m }

// Reset implements Algorithm.
func (r *RBMA) Reset() {
	master := stats.NewRand(r.seed)
	r.caches = make([]paging.Cache, r.n)
	for i := range r.caches {
		r.caches[i] = r.factory(r.b, master.Uint64())
	}
	r.m = matching.NewBMatching(r.n, r.b)
	r.marked = make(map[trace.PairKey]struct{})
	r.counter = make(map[trace.PairKey]int)
	r.keByDist = make([]int, r.model.Metric.Max()+1)
	for d := 1; d < len(r.keByDist); d++ {
		r.keByDist[d] = int(math.Ceil(r.model.Alpha / float64(d)))
	}
	r.ForwardedRequests = 0
}

// ke returns k_e = ⌈α/ℓ_e⌉ for the pair (Theorem 1's forwarding period).
func (r *RBMA) ke(k trace.PairKey) int {
	u, v := k.Endpoints()
	return r.keByDist[r.model.Metric.Dist(u, v)]
}

// Serve implements Algorithm.
func (r *RBMA) Serve(u, v int) Step {
	k := trace.MakePairKey(u, v)
	var step Step
	step.RoutingCost = r.model.RouteCost(k, r.m.Has(k))

	// Nonuniform → uniform reduction: forward only every k_e-th request.
	r.counter[k]++
	if r.counter[k] < r.ke(k) {
		return step
	}
	r.counter[k] = 0
	r.ForwardedRequests++

	// Uniform layer: pass the pair to the paging caches at both endpoints.
	for _, w := range [2]int{u, v} {
		evicted, wasEvicted, _ := r.caches[w].Access(uint64(k))
		if !wasEvicted {
			continue
		}
		q := trace.PairKey(evicted)
		if !r.m.Has(q) {
			continue
		}
		if r.lazy {
			r.marked[q] = struct{}{}
		} else {
			r.mustRemove(q)
			step.Removals++
		}
	}

	// Maintain the invariant: the requested pair is cached at both
	// endpoints now, so it must be(come) a matching edge.
	if r.m.Has(k) {
		// Lazy mode: a marked edge that is requested again is simply
		// un-marked; it never left the physical matching.
		delete(r.marked, k)
		return step
	}
	for _, w := range [2]int{u, v} {
		if r.m.Free(w) == 0 {
			step.Removals += r.pruneAt(w)
		}
	}
	if err := r.m.Add(k); err != nil {
		// Unreachable if the invariants hold; fail loudly rather than
		// silently corrupting the experiment.
		panic(fmt.Sprintf("core: R-BMA invariant violation adding %v: %v", k, err))
	}
	step.Adds++
	return step
}

// pruneAt removes one marked edge incident to node w, returning the number
// of removals performed (1). In lazy mode a saturated node always has a
// marked incident edge when a new edge must be added: the unmarked incident
// edges are all cached at w, and w's cache also holds the pair being added.
func (r *RBMA) pruneAt(w int) int {
	// Incident returns edges in map order; pick the smallest key so runs
	// with the same seed are bit-for-bit reproducible.
	var victim trace.PairKey
	found := false
	for _, q := range r.m.Incident(w) {
		if _, ok := r.marked[q]; ok && (!found || q < victim) {
			victim, found = q, true
		}
	}
	if !found {
		panic(fmt.Sprintf("core: R-BMA lazy-pruning invariant violation at node %d", w))
	}
	r.mustRemove(victim)
	return 1
}

func (r *RBMA) mustRemove(q trace.PairKey) {
	if err := r.m.Remove(q); err != nil {
		panic(fmt.Sprintf("core: R-BMA removing %v: %v", q, err))
	}
	delete(r.marked, q)
}

// CheckCacheInvariant verifies the Theorem 2 invariant: every unmarked
// matching edge is cached at both endpoints, and in eager mode every
// matching edge is cached at both endpoints. Intended for tests.
func (r *RBMA) CheckCacheInvariant() error {
	for _, k := range r.m.Edges() {
		if _, isMarked := r.marked[k]; isMarked {
			continue
		}
		u, v := k.Endpoints()
		if !r.caches[u].Contains(uint64(k)) || !r.caches[v].Contains(uint64(k)) {
			return fmt.Errorf("core: unmarked matching edge %v not cached at both endpoints", k)
		}
	}
	if !r.lazy && len(r.marked) != 0 {
		return fmt.Errorf("core: eager R-BMA has %d marked edges", len(r.marked))
	}
	return nil
}
