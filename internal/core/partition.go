package core

import (
	"fmt"

	"obm/internal/trace"
)

// Pair-universe partitioning: the structure behind the multi-plane ("S
// independent optical switch layers") experiment mode and the parallel
// replay hot path in internal/sim.
//
// R-BMA reduces (b,a)-matching to independent per-node paging instances, so
// the pair universe partitions naturally by node row: pair {u, v} with
// u < v belongs to row u, and row u belongs to shard u mod S. Every shard
// then owns a disjoint set of pairs, and an algorithm instance per shard
// runs with no shared mutable state at all — which is what lets a replay
// fan requests out to per-shard workers and still merge costs
// deterministically (see FoldShardSteps and sim.RunSourceParallel).
//
// Semantically, a Sharded algorithm is not the single-switch algorithm
// computed faster: it models S independent switch planes, each maintaining
// its own degree-b matching over the pairs it owns (a rack can hold up to b
// edges per plane, S·b in total — the multi-layer reconfigurable fabrics of
// the rotor-switch literature). Shard count is therefore part of an
// experiment's identity: results for S planes differ from results for one,
// and the simulation layer treats Shards as a scenario parameter, never as
// a runtime tuning knob.

// Partition maps the pair universe over n racks onto a fixed number of
// shards by node row: pair {u, v} (u < v) is owned by shard u mod shards.
// The zero value is not valid; use NewPartition.
type Partition struct {
	n, shards int
	idx       *trace.PairIndex
}

// NewPartition builds a node-row partition of the n-rack pair universe into
// the given number of shards. shards must be in [1, n].
func NewPartition(n, shards int) (Partition, error) {
	if n < 2 {
		return Partition{}, fmt.Errorf("core: NewPartition requires n >= 2, got %d", n)
	}
	if shards < 1 || shards > n {
		return Partition{}, fmt.Errorf("core: NewPartition requires 1 <= shards <= %d, got %d", n, shards)
	}
	return Partition{n: n, shards: shards, idx: trace.SharedPairIndex(n)}, nil
}

// N returns the rack-universe size.
func (p Partition) N() int { return p.n }

// Shards returns the shard count.
func (p Partition) Shards() int { return p.shards }

// OfRow returns the shard owning node row u.
func (p Partition) OfRow(u int) int { return u % p.shards }

// OfReq returns the shard owning a compiled request's pair. Compiled
// requests carry U < V, so ownership is one modulo.
func (p Partition) OfReq(req trace.CompiledReq) int { return int(req.U) % p.shards }

// OfPair returns the shard owning pair id.
func (p Partition) OfPair(id trace.PairID) int {
	u, _ := p.idx.Endpoints(id)
	return u % p.shards
}

// ShardSeed derives the algorithm seed of one shard from the run's base
// seed. Shard 0 keeps the base seed, so a single-shard run is seeded (and
// behaves) exactly like the unsharded algorithm; higher shards are splashed
// across the seed space with a fixed odd multiplier.
func ShardSeed(base uint64, shard int) uint64 {
	if shard == 0 {
		return base
	}
	return base ^ (uint64(shard) * 0x9e3779b97f4a7c15)
}

// ShardStep accumulates the cost deltas of one shard: routing and
// reconfiguration cost folded per step exactly like the sequential cost
// meter (reconfiguration is α·(adds+removals) added per step), so a
// single-shard accumulator reproduces the sequential totals bit for bit.
type ShardStep struct {
	Routing  float64
	Reconfig float64
	Adds     int
	Removals int
}

// Add folds one serve result into the accumulator. The operation order
// mirrors sim's cost meter: one += per cost component per step — it IS
// the accumulation step of every replay path (sequential, parallel and
// the live engine), which is what makes their cumulative cost streams
// bit-identical.
func (d *ShardStep) Add(st Step, alpha float64) {
	d.Routing += st.RoutingCost
	d.Reconfig += st.ReconfigCost(alpha)
	d.Adds += st.Adds
	d.Removals += st.Removals
}

// FoldShardSteps folds per-shard accumulators into one total in canonical
// ascending shard order. The fixed order makes the merge deterministic:
// every fold of the same per-shard states produces the same bits, no matter
// which goroutines produced them or when. (Per-shard costs are sums of
// integer-valued step costs whenever α is an integer, as in every preset
// and figure — then the fold is exact and equals the sequential trace-order
// accumulation, not merely a reproducible reordering of it.)
func FoldShardSteps(acc []ShardStep) ShardStep {
	var t ShardStep
	for i := range acc {
		t.Routing += acc[i].Routing
		t.Reconfig += acc[i].Reconfig
		t.Adds += acc[i].Adds
		t.Removals += acc[i].Removals
	}
	return t
}

// Sharded runs one independent algorithm instance per partition shard: S
// switch planes, each a full Algorithm over the pairs its shard owns.
// Requests are delegated to the owning plane; costs and matching sizes sum
// across planes. Planes share no mutable state, so distinct shards may be
// served from distinct goroutines concurrently (the same shard must stay
// single-threaded).
type Sharded struct {
	part Partition
	name string
	b    int
	subs []Algorithm
	fast []CompiledServer // fast[s] non-nil when subs[s] has the dense path
}

// NewSharded builds a sharded algorithm: build is called once per shard and
// must return a fresh instance (typically seeded via ShardSeed). All
// instances must agree on the degree cap.
func NewSharded(part Partition, build func(shard int) (Algorithm, error)) (*Sharded, error) {
	if part.shards < 1 {
		return nil, fmt.Errorf("core: NewSharded requires a valid Partition (use NewPartition)")
	}
	sh := &Sharded{
		part: part,
		subs: make([]Algorithm, part.shards),
		fast: make([]CompiledServer, part.shards),
	}
	for s := 0; s < part.shards; s++ {
		alg, err := build(s)
		if err != nil {
			return nil, fmt.Errorf("core: NewSharded building shard %d: %w", s, err)
		}
		if alg == nil {
			return nil, fmt.Errorf("core: NewSharded: nil algorithm for shard %d", s)
		}
		if s > 0 && alg.B() != sh.b {
			return nil, fmt.Errorf("core: NewSharded: shard %d has b = %d, shard 0 has %d", s, alg.B(), sh.b)
		}
		if s == 0 {
			sh.b = alg.B()
		}
		sh.subs[s] = alg
		sh.fast[s], _ = alg.(CompiledServer)
	}
	sh.name = sh.subs[0].Name()
	if part.shards > 1 {
		sh.name = fmt.Sprintf("%s[shards=%d]", sh.name, part.shards)
	}
	return sh, nil
}

// Partition returns the pair partition the planes are built over.
func (sh *Sharded) Partition() Partition { return sh.part }

// Shards returns the plane count.
func (sh *Sharded) Shards() int { return sh.part.shards }

// Shard returns plane s's algorithm instance.
func (sh *Sharded) Shard(s int) Algorithm { return sh.subs[s] }

// Name implements Algorithm. A single-shard instance keeps its plane's
// name, so it is indistinguishable from the unsharded algorithm in output.
func (sh *Sharded) Name() string { return sh.name }

// B implements Algorithm: the per-plane degree cap (a rack can hold up to
// B() edges in every plane it appears in).
func (sh *Sharded) B() int { return sh.b }

// Serve implements Algorithm by delegating to the owning plane.
func (sh *Sharded) Serve(u, v int) Step {
	if u > v {
		u, v = v, u
	}
	return sh.subs[sh.part.OfRow(u)].Serve(u, v)
}

// ServeCompiled implements CompiledServer by delegating to the owning
// plane's dense path.
func (sh *Sharded) ServeCompiled(req trace.CompiledReq) Step {
	s := sh.part.OfReq(req)
	if cs := sh.fast[s]; cs != nil {
		return cs.ServeCompiled(req)
	}
	return sh.subs[s].Serve(int(req.U), int(req.V))
}

// ApplyShard serves a run of compiled requests that are all owned by shard
// s (the caller has grouped them; ownership is not re-checked), folding the
// step costs into d with the sequential meter's operation order. This is
// the batch-apply fast path the parallel replay workers run: one virtual
// dispatch per batch instead of per request.
func (sh *Sharded) ApplyShard(s int, alpha float64, reqs []trace.CompiledReq, d *ShardStep) {
	if cs := sh.fast[s]; cs != nil {
		for _, req := range reqs {
			d.Add(cs.ServeCompiled(req), alpha)
		}
		return
	}
	alg := sh.subs[s]
	for _, req := range reqs {
		d.Add(alg.Serve(int(req.U), int(req.V)), alpha)
	}
}

// ServeChunk serves a chunk of compiled requests with mixed ownership,
// folding each step into its owner's accumulator. acc must have at least
// Shards() entries; entries are not cleared first, so chunks accumulate.
// Combined with FoldShardSteps this is the sequential form of the batched
// hot path: group by shard, accumulate per shard, fold canonically.
func (sh *Sharded) ServeChunk(alpha float64, reqs []trace.CompiledReq, acc []ShardStep) {
	for _, req := range reqs {
		s := sh.part.OfReq(req)
		var st Step
		if cs := sh.fast[s]; cs != nil {
			st = cs.ServeCompiled(req)
		} else {
			st = sh.subs[s].Serve(int(req.U), int(req.V))
		}
		acc[s].Add(st, alpha)
	}
}

// Matched implements Algorithm: a pair is matched iff its owning plane
// matched it.
func (sh *Sharded) Matched(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	return sh.subs[sh.part.OfRow(u)].Matched(u, v)
}

// MatchingSize implements Algorithm: planes own disjoint pair sets, so the
// total is the plain sum.
func (sh *Sharded) MatchingSize() int {
	total := 0
	for _, alg := range sh.subs {
		total += alg.MatchingSize()
	}
	return total
}

// Reset implements Algorithm.
func (sh *Sharded) Reset() {
	for _, alg := range sh.subs {
		alg.Reset()
	}
}
