package core

import (
	"fmt"
	"math"

	"obm/internal/paging"
	"obm/internal/trace"
)

// NewClairvoyantRBMA builds an R-BMA variant whose per-node caches run
// Belady's offline-optimal MIN instead of randomized marking. It explores
// the paper's future-work question (§5) of how much algorithms could gain
// from (perfect) predictions of future demand: the reduction structure is
// unchanged, only the eviction decisions become clairvoyant.
//
// Because MIN needs each cache's full request sequence up front, the trace
// must be supplied at construction time, and Serve must be called with
// exactly the trace's requests in order. The per-node sequences are fully
// determined by the trace and the deterministic k_e-forwarding of the
// uniform reduction, so they can be precomputed exactly.
func NewClairvoyantRBMA(tr *trace.Trace, b int, model CostModel) (*RBMA, error) {
	perNode, err := forwardedSequences(tr, model)
	if err != nil {
		return nil, err
	}
	r, err := NewRBMA(tr.NumRacks, b, model, 0)
	if err != nil {
		return nil, err
	}
	// Swap in MIN caches after construction. Note that Reset would restore
	// marking caches; a clairvoyant instance is single-use by design (its
	// caches must be replayed from the start of their sequences anyway).
	caches := make([]paging.Cache, tr.NumRacks)
	for v := range caches {
		caches[v] = paging.NewMIN(b, perNode[v])
	}
	r.setCaches(caches)
	r.name = "r-bma[clairvoyant]"
	return r, nil
}

// NewPredictiveRBMA is R-BMA with noisy-prediction caches: each node evicts
// by predicted next use, where predictions are the truth perturbed by
// log-normal noise of magnitude sigma (paging.Predictive). sigma = 0 is the
// clairvoyant variant; growing sigma degrades gracefully towards random
// eviction. Single-use, like NewClairvoyantRBMA.
func NewPredictiveRBMA(tr *trace.Trace, b int, model CostModel, sigma float64, seed uint64) (*RBMA, error) {
	perNode, err := forwardedSequences(tr, model)
	if err != nil {
		return nil, err
	}
	r, err := NewRBMA(tr.NumRacks, b, model, seed)
	if err != nil {
		return nil, err
	}
	master := seed
	caches := make([]paging.Cache, tr.NumRacks)
	for v := range caches {
		master = master*0x9e3779b97f4a7c15 + uint64(v) + 1
		caches[v] = paging.NewPredictive(b, perNode[v], sigma, master)
	}
	r.setCaches(caches)
	r.name = fmt.Sprintf("r-bma[pred σ=%g]", sigma)
	return r, nil
}

// forwardedSequences replays the k_e-forwarding of the uniform reduction to
// extract each node's paging request sequence. Items are uint64(PairID) —
// the encoding RBMA's substituted-cache path feeds its caches.
func forwardedSequences(tr *trace.Trace, model CostModel) ([][]uint64, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if model.Metric.N() < tr.NumRacks {
		return nil, fmt.Errorf("core: metric covers %d racks, trace needs %d", model.Metric.N(), tr.NumRacks)
	}
	idx := trace.SharedPairIndex(tr.NumRacks)
	perNode := make([][]uint64, tr.NumRacks)
	counter := make([]int32, idx.NumPairs())
	for _, req := range tr.Reqs {
		u, v := int(req.Src), int(req.Dst)
		if u > v {
			u, v = v, u
		}
		id := idx.ID(u, v)
		le := float64(model.Metric.Dist(u, v))
		ke := int32(math.Ceil(model.Alpha / le))
		counter[id]++
		if counter[id] < ke {
			continue
		}
		counter[id] = 0
		perNode[u] = append(perNode[u], uint64(id))
		perNode[v] = append(perNode[v], uint64(id))
	}
	return perNode, nil
}
