package core

import (
	"testing"

	"obm/internal/graph"
	"obm/internal/paging"
	"obm/internal/stats"
	"obm/internal/trace"
)

func testModel(n int, alpha float64) CostModel {
	top := graph.FatTreeRacks(n)
	return CostModel{Metric: top.Metric(), Alpha: alpha}
}

func uniformModel(n int) CostModel {
	return CostModel{Metric: graph.UniformMetric(n, 1), Alpha: 1}
}

func runTrace(t *testing.T, alg Algorithm, tr *trace.Trace) (routing, reconfig float64) {
	t.Helper()
	for _, req := range tr.Reqs {
		st := alg.Serve(int(req.Src), int(req.Dst))
		routing += st.RoutingCost
		reconfig += st.ReconfigCost(30)
	}
	return
}

func TestCostModelValidate(t *testing.T) {
	if err := (CostModel{}).Validate(); err == nil {
		t.Fatal("nil metric accepted")
	}
	if err := (CostModel{Metric: graph.UniformMetric(3, 1), Alpha: 0.5}).Validate(); err == nil {
		t.Fatal("alpha < 1 accepted")
	}
	m := testModel(10, 30)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if g := m.Gamma(); g != 1+4.0/30 {
		t.Fatalf("Gamma = %v", g)
	}
}

func TestStepCosts(t *testing.T) {
	s := Step{RoutingCost: 4, Adds: 1, Removals: 2}
	if s.ReconfigCost(10) != 30 || s.Total(10) != 34 {
		t.Fatal("step cost arithmetic wrong")
	}
}

func TestRBMAConstructorErrors(t *testing.T) {
	m := testModel(10, 30)
	if _, err := NewRBMA(1, 2, m, 0); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := NewRBMA(5, 0, m, 0); err == nil {
		t.Error("b=0 accepted")
	}
	if _, err := NewRBMA(5, 2, CostModel{}, 0); err == nil {
		t.Error("invalid model accepted")
	}
	if _, err := NewRBMA(50, 2, m, 0); err == nil {
		t.Error("metric too small accepted")
	}
}

func TestRBMAMatchesRequestedPairUniform(t *testing.T) {
	// In the uniform case (α=1, ℓ=1) every request is forwarded; after a
	// request, the pair must be in the matching.
	r, err := NewRBMA(6, 2, uniformModel(6), 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(3)
	for i := 0; i < 2000; i++ {
		u, v := rng.Intn(6), rng.Intn(6)
		if u == v {
			continue
		}
		r.Serve(u, v)
		if !r.Matched(u, v) {
			t.Fatalf("step %d: requested pair {%d,%d} not matched after serve", i, u, v)
		}
		if err := CheckDegreeInvariant(r); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if err := r.CheckCacheInvariant(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

func TestRBMAEagerInvariants(t *testing.T) {
	r, err := NewRBMA(8, 2, uniformModel(8), 7, WithEagerRemoval())
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(9)
	for i := 0; i < 5000; i++ {
		u, v := rng.Intn(8), rng.Intn(8)
		if u == v {
			continue
		}
		r.Serve(u, v)
		if err := r.CheckCacheInvariant(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if err := CheckDegreeInvariant(r); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

func TestRBMALazyInvariantsNonUniform(t *testing.T) {
	model := testModel(12, 30)
	r, err := NewRBMA(12, 3, model, 11)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := trace.FacebookStyle(trace.FacebookPreset(trace.Database, 12, 5))
	tr = tr.Prefix(20000)
	for i, req := range tr.Reqs {
		r.Serve(int(req.Src), int(req.Dst))
		if i%100 == 0 {
			if err := r.CheckCacheInvariant(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
			if err := CheckDegreeInvariant(r); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
}

func TestRBMAForwardingAccounting(t *testing.T) {
	// With α=30 and fat-tree distances {2,4}: k_e ∈ {15, 8}. Requesting one
	// same-pod pair (ℓ=2, k_e=15) 45 times must forward exactly 3 times.
	model := testModel(10, 30)
	r, err := NewRBMA(10, 2, model, 0)
	if err != nil {
		t.Fatal(err)
	}
	if model.Metric.Dist(0, 1) != 2 {
		t.Fatalf("expected same-pod distance 2, got %d", model.Metric.Dist(0, 1))
	}
	for i := 0; i < 45; i++ {
		r.Serve(0, 1)
	}
	if r.ForwardedRequests != 3 {
		t.Fatalf("forwarded %d requests, want 3", r.ForwardedRequests)
	}
}

func TestRBMARoutingCostDropsAfterMatch(t *testing.T) {
	model := testModel(10, 30)
	r, _ := NewRBMA(10, 2, model, 0)
	// Cross-pod pair: ℓ=4, k_e=8. First 7 requests cost 4 each; the 8th is
	// forwarded and matches the pair; afterwards cost is 1.
	u, v := 0, 5
	if model.Metric.Dist(u, v) != 4 {
		t.Fatalf("expected cross-pod distance 4, got %d", model.Metric.Dist(u, v))
	}
	var costs []float64
	for i := 0; i < 10; i++ {
		st := r.Serve(u, v)
		costs = append(costs, st.RoutingCost)
	}
	for i := 0; i < 8; i++ {
		if costs[i] != 4 {
			t.Fatalf("request %d cost %v, want 4", i, costs[i])
		}
	}
	if costs[8] != 1 || costs[9] != 1 {
		t.Fatalf("post-match costs = %v, want 1", costs[8:])
	}
}

func TestRBMADeterministicForSeed(t *testing.T) {
	model := testModel(10, 30)
	tr, _ := trace.FacebookStyle(trace.FacebookPreset(trace.WebService, 10, 2))
	tr = tr.Prefix(10000)
	run := func() (float64, float64) {
		r, _ := NewRBMA(10, 3, model, 42)
		return runTrace(t, r, tr)
	}
	r1a, r1b := run()
	r2a, r2b := run()
	if r1a != r2a || r1b != r2b {
		t.Fatal("same seed produced different costs")
	}
}

func TestRBMASeedsDiffer(t *testing.T) {
	model := testModel(10, 30)
	tr, _ := trace.FacebookStyle(trace.FacebookPreset(trace.WebService, 10, 2))
	tr = tr.Prefix(10000)
	costs := map[float64]bool{}
	for seed := uint64(0); seed < 4; seed++ {
		r, _ := NewRBMA(10, 3, model, seed)
		a, b := runTrace(t, r, tr)
		costs[a+b] = true
	}
	if len(costs) < 2 {
		t.Fatal("different seeds should usually produce different runs")
	}
}

func TestRBMAResetRestoresInitialState(t *testing.T) {
	model := testModel(8, 30)
	tr, _ := trace.FacebookStyle(trace.FacebookPreset(trace.Database, 8, 3))
	tr = tr.Prefix(5000)
	r, _ := NewRBMA(8, 2, model, 5)
	a1, b1 := runTrace(t, r, tr)
	r.Reset()
	if r.MatchingSize() != 0 || r.ForwardedRequests != 0 {
		t.Fatal("Reset did not clear state")
	}
	a2, b2 := runTrace(t, r, tr)
	if a1 != a2 || b1 != b2 {
		t.Fatal("replay after Reset differs")
	}
}

func TestRBMACacheFactoryAblation(t *testing.T) {
	model := testModel(8, 30)
	r, err := NewRBMA(8, 2, model, 5, WithCacheFactory(paging.NewLRUFactory, "lru"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "r-bma[lru]" {
		t.Fatalf("Name = %q", r.Name())
	}
	tr, _ := trace.FacebookStyle(trace.FacebookPreset(trace.Database, 8, 3))
	runTrace(t, r, tr.Prefix(3000))
	if err := r.CheckCacheInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestBMAInvariantsAndCosts(t *testing.T) {
	model := testModel(12, 30)
	a, err := NewBMA(12, 2, model)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := trace.FacebookStyle(trace.FacebookPreset(trace.Database, 12, 7))
	tr = tr.Prefix(20000)
	for i, req := range tr.Reqs {
		st := a.Serve(int(req.Src), int(req.Dst))
		if st.RoutingCost < 1 {
			t.Fatalf("step %d: routing cost %v < 1", i, st.RoutingCost)
		}
		if i%250 == 0 {
			if err := CheckDegreeInvariant(a); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if a.MatchingSize() == 0 {
		t.Fatal("BMA never matched anything on a skewed trace")
	}
}

func TestBMARentOrBuyThreshold(t *testing.T) {
	model := testModel(10, 30)
	a, _ := NewBMA(10, 2, model)
	// Cross-pod pair, ℓ=4: rent reaches α=30 on the 8th request
	// (accumulated 32 ≥ 30), which is when the edge is bought.
	for i := 0; i < 7; i++ {
		st := a.Serve(0, 5)
		if st.Adds != 0 {
			t.Fatalf("request %d bought too early", i)
		}
	}
	st := a.Serve(0, 5)
	if st.Adds != 1 {
		t.Fatal("edge not bought at rent threshold")
	}
	if !a.Matched(0, 5) {
		t.Fatal("pair not matched after buy")
	}
	if a.Serve(0, 5).RoutingCost != 1 {
		t.Fatal("matched pair should route at cost 1")
	}
}

func TestBMAEvictionRequiresStrongerCandidate(t *testing.T) {
	// b=1: node 0 matches {0,1}; a fresh candidate {0,2} must out-rent the
	// defense before evicting it.
	model := testModel(10, 30)
	a, _ := NewBMA(10, 1, model)
	for i := 0; i < 8; i++ {
		a.Serve(0, 5) // cross-pod: buys on 8th
	}
	if !a.Matched(0, 5) {
		t.Fatal("setup failed")
	}
	// {0,1} is same-pod (ℓ=2): rent reaches 30 after 15 requests, but the
	// defense of {0,5} is α=30, so eviction needs rent > 30.
	for i := 0; i < 15; i++ {
		a.Serve(0, 1)
	}
	if a.Matched(0, 1) {
		t.Fatal("candidate evicted defender too early")
	}
	a.Serve(0, 1) // rent 32 > 30
	if !a.Matched(0, 1) || a.Matched(0, 5) {
		t.Fatal("candidate should have replaced defender")
	}
}

func TestObliviousNeverMatches(t *testing.T) {
	model := testModel(10, 30)
	o, err := NewOblivious(model)
	if err != nil {
		t.Fatal(err)
	}
	st := o.Serve(0, 5)
	if st.RoutingCost != 4 || st.Adds != 0 {
		t.Fatalf("oblivious step = %+v", st)
	}
	if o.Matched(0, 5) || o.MatchingSize() != 0 {
		t.Fatal("oblivious must not match")
	}
}

func TestStaticMatchesHeavyPairs(t *testing.T) {
	model := testModel(10, 30)
	// A trace dominated by two pairs: SO-BMA must match both.
	reqs := make([]trace.Request, 0, 3000)
	for i := 0; i < 1000; i++ {
		reqs = append(reqs, trace.Request{Src: 0, Dst: 5})
		reqs = append(reqs, trace.Request{Src: 1, Dst: 6})
		reqs = append(reqs, trace.Request{Src: int32(2 + i%3), Dst: int32(7 + i%3)})
	}
	tr := &trace.Trace{Name: "synthetic", NumRacks: 10, Reqs: reqs}
	s, err := NewStaticFromTrace(tr, 2, model)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Matched(0, 5) || !s.Matched(1, 6) {
		t.Fatal("SO-BMA missed the heavy pairs")
	}
	if s.Serve(0, 5).RoutingCost != 1 {
		t.Fatal("matched pair should cost 1")
	}
}

func TestStaticRespectsDegreeCap(t *testing.T) {
	model := testModel(10, 30)
	tr, _ := trace.FacebookStyle(trace.FacebookPreset(trace.Database, 10, 1))
	tr = tr.Prefix(20000)
	for _, b := range []int{1, 2, 4} {
		s, err := NewStaticFromTrace(tr, b, model)
		if err != nil {
			t.Fatal(err)
		}
		deg := make([]int, 10)
		for _, k := range s.Edges() {
			u, v := k.Endpoints()
			deg[u]++
			deg[v]++
		}
		for u, d := range deg {
			if d > b {
				t.Fatalf("b=%d: node %d degree %d", b, u, d)
			}
		}
	}
}

func TestClairvoyantRBMABeatsOrMatchesOnline(t *testing.T) {
	model := testModel(10, 30)
	tr, _ := trace.FacebookStyle(trace.FacebookPreset(trace.Database, 10, 13))
	tr = tr.Prefix(30000)
	alpha := model.Alpha

	total := func(alg Algorithm) float64 {
		var sum float64
		for _, req := range tr.Reqs {
			st := alg.Serve(int(req.Src), int(req.Dst))
			sum += st.Total(alpha)
		}
		return sum
	}
	cv, err := NewClairvoyantRBMA(tr, 3, model)
	if err != nil {
		t.Fatal(err)
	}
	cvCost := total(cv)
	// Average online R-BMA over a few seeds.
	var onSum float64
	const seeds = 3
	for s := uint64(0); s < seeds; s++ {
		r, _ := NewRBMA(10, 3, model, s)
		onSum += total(r)
	}
	onAvg := onSum / seeds
	// Belady caches are not globally optimal for the matching problem, but
	// they should not be dramatically worse than online marking; typically
	// they are better. Allow 10% slack.
	if cvCost > onAvg*1.10 {
		t.Fatalf("clairvoyant cost %v far above online average %v", cvCost, onAvg)
	}
}
