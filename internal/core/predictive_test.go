package core

import (
	"testing"

	"obm/internal/trace"
)

func TestPredictiveRBMASigmaZeroMatchesClairvoyant(t *testing.T) {
	model := testModel(10, 30)
	tr, _ := trace.FacebookStyle(trace.FacebookPreset(trace.Database, 10, 17))
	tr = tr.Prefix(15000)
	run := func(alg Algorithm) float64 {
		var sum float64
		for _, req := range tr.Reqs {
			sum += alg.Serve(int(req.Src), int(req.Dst)).Total(model.Alpha)
		}
		return sum
	}
	cv, err := NewClairvoyantRBMA(tr, 3, model)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewPredictiveRBMA(tr, 3, model, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cvCost, prCost := run(cv), run(pr)
	// σ=0 predictions equal the truth; eviction tie-breaking differs (MIN
	// picks an arbitrary farthest item, Predictive the largest key), so
	// costs match closely but not necessarily exactly.
	if prCost > cvCost*1.05 || cvCost > prCost*1.05 {
		t.Fatalf("σ=0 predictive (%v) should track clairvoyant (%v)", prCost, cvCost)
	}
}

func TestPredictiveRBMANoiseMonotone(t *testing.T) {
	model := testModel(10, 30)
	tr, _ := trace.FacebookStyle(trace.FacebookPreset(trace.WebService, 10, 23))
	tr = tr.Prefix(20000)
	cost := func(sigma float64) float64 {
		var sum float64
		const seeds = 3
		for s := uint64(0); s < seeds; s++ {
			alg, err := NewPredictiveRBMA(tr, 3, model, sigma, s)
			if err != nil {
				t.Fatal(err)
			}
			for _, req := range tr.Reqs {
				sum += alg.Serve(int(req.Src), int(req.Dst)).Total(model.Alpha)
			}
		}
		return sum / seeds
	}
	perfect := cost(0)
	noisy := cost(8)
	if noisy < perfect*0.98 {
		t.Fatalf("heavy noise (%v) should not beat perfect predictions (%v)", noisy, perfect)
	}
}

func TestPredictiveRBMARejectsBadInput(t *testing.T) {
	model := testModel(10, 30)
	bad := &trace.Trace{NumRacks: 1}
	if _, err := NewPredictiveRBMA(bad, 2, model, 0, 1); err == nil {
		t.Fatal("invalid trace accepted")
	}
	tr := trace.Uniform(10, 100, 1)
	if _, err := NewClairvoyantRBMA(tr, 0, model); err == nil {
		t.Fatal("b=0 accepted")
	}
}
