package core

import (
	"testing"

	"obm/internal/trace"
)

func TestBatchConstructorValidation(t *testing.T) {
	model := testModel(10, 30)
	cases := []struct {
		n, b, window int
		decay        float64
	}{
		{1, 2, 100, 0.5},
		{10, 0, 100, 0.5},
		{10, 2, 0, 0.5},
		{10, 2, 100, 0},
		{10, 2, 100, 1.5},
	}
	for i, c := range cases {
		if _, err := NewBatch(c.n, c.b, model, c.window, c.decay); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := NewBatch(10, 2, model, 100, 1); err != nil {
		t.Fatal(err)
	}
}

func TestBatchRecomputesOnWindow(t *testing.T) {
	model := testModel(10, 30)
	a, err := NewBatch(10, 2, model, 50, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// 49 requests: no reconfiguration yet.
	var adds int
	for i := 0; i < 49; i++ {
		st := a.Serve(0, 5)
		adds += st.Adds
	}
	if adds != 0 {
		t.Fatal("Batch reconfigured before the window closed")
	}
	st := a.Serve(0, 5) // 50th: recompute
	if st.Adds != 1 || !a.Matched(0, 5) {
		t.Fatalf("Batch should have matched the dominant pair: %+v", st)
	}
}

func TestBatchTracksShiftingDemand(t *testing.T) {
	model := testModel(10, 30)
	a, err := NewBatch(10, 1, model, 100, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		a.Serve(0, 5)
	}
	if !a.Matched(0, 5) {
		t.Fatal("phase 1 pair not matched")
	}
	// Demand shifts to a conflicting pair at node 0.
	for i := 0; i < 600; i++ {
		a.Serve(0, 7)
	}
	if !a.Matched(0, 7) {
		t.Fatal("Batch failed to follow the demand shift")
	}
	if a.Matched(0, 5) {
		t.Fatal("stale edge kept despite b=1 conflict")
	}
	if err := CheckDegreeInvariant(a); err != nil {
		t.Fatal(err)
	}
}

func TestBatchInvariantsOnWorkload(t *testing.T) {
	model := testModel(12, 30)
	a, _ := NewBatch(12, 3, model, 200, 0.8)
	tr, _ := trace.FacebookStyle(trace.FacebookPreset(trace.WebService, 12, 3))
	for i, req := range tr.Prefix(20000).Reqs {
		a.Serve(int(req.Src), int(req.Dst))
		if i%500 == 0 {
			if err := CheckDegreeInvariant(a); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if a.MatchingSize() == 0 {
		t.Fatal("Batch never matched anything")
	}
}

func TestGreedyNoEvictNeverRemoves(t *testing.T) {
	model := testModel(10, 30)
	a, err := NewGreedyNoEvict(10, 1, model)
	if err != nil {
		t.Fatal(err)
	}
	st := a.Serve(0, 5)
	if st.Adds != 1 {
		t.Fatal("first request should match")
	}
	// Conflicting pair at node 0: must be refused, never evict.
	for i := 0; i < 1000; i++ {
		st := a.Serve(0, 7)
		if st.Adds != 0 || st.Removals != 0 {
			t.Fatal("no-evict baseline reconfigured")
		}
	}
	if !a.Matched(0, 5) || a.Matched(0, 7) {
		t.Fatal("matching changed")
	}
}

func TestGreedyNoEvictWorseThanRBMAOnShiftingDemand(t *testing.T) {
	// Two successive permutation patterns: no-evict locks onto the first
	// and pays full price for the second; R-BMA adapts.
	model := testModel(16, 30)
	tr1 := trace.Permutation(16, 15000, 1)
	tr2 := trace.Permutation(16, 15000, 9) // different permutation
	reqs := append(append([]trace.Request{}, tr1.Reqs...), tr2.Reqs...)
	tr := &trace.Trace{NumRacks: 16, Reqs: reqs}

	run := func(alg Algorithm) float64 {
		var sum float64
		for _, req := range tr.Reqs {
			sum += alg.Serve(int(req.Src), int(req.Dst)).Total(model.Alpha)
		}
		return sum
	}
	ge, _ := NewGreedyNoEvict(16, 1, model)
	geCost := run(ge)
	r, _ := NewRBMA(16, 1, model, 4)
	rCost := run(r)
	if rCost >= geCost {
		t.Fatalf("R-BMA (%v) should beat no-evict (%v) on shifting demand", rCost, geCost)
	}
}

func TestBatchAndGreedyNames(t *testing.T) {
	model := testModel(10, 30)
	a, _ := NewBatch(10, 2, model, 75, 0.5)
	if a.Name() != "batch[w=75]" {
		t.Fatalf("Name = %q", a.Name())
	}
	g, _ := NewGreedyNoEvict(10, 2, model)
	if g.Name() != "greedy-noevict" {
		t.Fatalf("Name = %q", g.Name())
	}
	if g.B() != 2 || a.B() != 2 {
		t.Fatal("B() wrong")
	}
}
