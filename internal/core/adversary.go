package core

import (
	"fmt"

	"obm/internal/trace"
)

// AdaptiveAdversary generates the request sequence that separates
// deterministic from randomized online algorithms (the Θ(b) vs O(log b)
// gap, Theorems 2 and 4): on a star with b+1 leaves it watches the
// algorithm's matching and always requests a hub–leaf pair that is
// currently *unmatched*. A deterministic algorithm can be tracked exactly
// and misses every block; a randomized algorithm cannot (against an
// oblivious adversary), but this adaptive variant still exhibits the
// worst-case pressure on both.
//
// target is queried through its public Matched method only. blockLen
// requests are issued per chosen pair (blockLen = α makes each block
// exactly one rent-or-buy unit; blockLen = k_e forwards exactly once).
// The generated requests are served on target as they are produced, and
// also returned for replay against other algorithms.
func AdaptiveAdversary(target Algorithm, nLeaves, blocks, blockLen int) (*trace.Trace, error) {
	if nLeaves < 2 {
		return nil, fmt.Errorf("core: adversary needs nLeaves >= 2")
	}
	if blocks < 1 || blockLen < 1 {
		return nil, fmt.Errorf("core: adversary needs blocks, blockLen >= 1")
	}
	reqs := make([]trace.Request, 0, blocks*blockLen)
	for blk := 0; blk < blocks; blk++ {
		// Find an unmatched hub–leaf pair; the degree cap guarantees one
		// exists whenever nLeaves > b.
		leaf := -1
		for cand := 1; cand <= nLeaves; cand++ {
			if !target.Matched(0, cand) {
				leaf = cand
				break
			}
		}
		if leaf == -1 {
			// Fully matched (nLeaves <= b): rotate deterministically.
			leaf = 1 + blk%nLeaves
		}
		for j := 0; j < blockLen; j++ {
			reqs = append(reqs, trace.Request{Src: 0, Dst: int32(leaf)})
			target.Serve(0, leaf)
		}
	}
	return &trace.Trace{
		Name:     fmt.Sprintf("adversary(star %d leaves)", nLeaves),
		NumRacks: nLeaves + 1,
		Reqs:     reqs,
	}, nil
}

// adversaryStream is the resumable trace.Stream form of AdaptiveAdversary:
// blocks are generated lazily as the stream is read, and the target is
// served (and consulted) request by request, so an adversarial workload of
// any length occupies O(1) memory. Reset rewinds by resetting the target to
// its initial empty-matching state; for a deterministic target the replayed
// sequence is bit-identical.
type adversaryStream struct {
	target           Algorithm
	nLeaves          int
	blocks, blockLen int
	pos              int
	leaf             int // leaf of the current block
}

// NewAdversaryStream returns AdaptiveAdversary as a resumable stream over
// target. The target must be freshly constructed (or Reset): the stream
// assumes it starts from the empty matching, and Reset restores that state
// via target.Reset.
func NewAdversaryStream(target Algorithm, nLeaves, blocks, blockLen int) (trace.Stream, error) {
	if nLeaves < 2 {
		return nil, fmt.Errorf("core: adversary needs nLeaves >= 2")
	}
	if blocks < 1 || blockLen < 1 {
		return nil, fmt.Errorf("core: adversary needs blocks, blockLen >= 1")
	}
	return &adversaryStream{target: target, nLeaves: nLeaves, blocks: blocks, blockLen: blockLen}, nil
}

func (s *adversaryStream) Name() string {
	return fmt.Sprintf("adversary(star %d leaves)", s.nLeaves)
}
func (s *adversaryStream) NumRacks() int { return s.nLeaves + 1 }
func (s *adversaryStream) Len() int      { return s.blocks * s.blockLen }

func (s *adversaryStream) Reset() {
	s.target.Reset()
	s.pos = 0
	s.leaf = 0
}

func (s *adversaryStream) Next(buf []trace.Request) int {
	n := 0
	for n < len(buf) && s.pos < s.blocks*s.blockLen {
		if s.pos%s.blockLen == 0 {
			// Block start: pick an unmatched hub–leaf pair, exactly as
			// AdaptiveAdversary does.
			blk := s.pos / s.blockLen
			s.leaf = -1
			for cand := 1; cand <= s.nLeaves; cand++ {
				if !s.target.Matched(0, cand) {
					s.leaf = cand
					break
				}
			}
			if s.leaf == -1 {
				s.leaf = 1 + blk%s.nLeaves
			}
		}
		buf[n] = trace.Request{Src: 0, Dst: int32(s.leaf)}
		s.target.Serve(0, s.leaf)
		s.pos++
		n++
	}
	return n
}
