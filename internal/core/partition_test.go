package core

import (
	"testing"

	"obm/internal/trace"
)

// testTraceCompiled compiles a small Facebook-style trace against the
// model's metric for the compiled-path tests.
func testTraceCompiled(t *testing.T, n, requests int, seed uint64, model CostModel) *trace.Compiled {
	t.Helper()
	p := trace.FacebookPreset(trace.Database, n, seed)
	p.Requests = requests
	tr, err := trace.FacebookStyle(p)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := tr.Compile(model.Metric.Dist)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

func newShardedRBMA(t *testing.T, n, shards, b int, model CostModel, baseSeed uint64) *Sharded {
	t.Helper()
	part, err := NewPartition(n, shards)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewSharded(part, func(shard int) (Algorithm, error) {
		return NewRBMA(n, b, model, ShardSeed(baseSeed, shard))
	})
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

func TestPartitionValidation(t *testing.T) {
	if _, err := NewPartition(1, 1); err == nil {
		t.Error("n = 1 accepted")
	}
	if _, err := NewPartition(8, 0); err == nil {
		t.Error("shards = 0 accepted")
	}
	if _, err := NewPartition(8, 9); err == nil {
		t.Error("shards > n accepted")
	}
}

// TestPartitionOwnershipConsistent pins OfRow, OfReq and OfPair to one
// another: every pair is owned by exactly the shard of its smaller
// endpoint's row.
func TestPartitionOwnershipConsistent(t *testing.T) {
	const n = 12
	idx := trace.SharedPairIndex(n)
	for _, shards := range []int{1, 2, 3, 5, n} {
		p, err := NewPartition(n, shards)
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < idx.NumPairs(); id++ {
			u, v := idx.Endpoints(trace.PairID(id))
			want := p.OfRow(u)
			if got := p.OfPair(trace.PairID(id)); got != want {
				t.Fatalf("shards=%d: OfPair({%d,%d}) = %d, OfRow(%d) = %d", shards, u, v, got, u, want)
			}
			req := trace.CompiledReq{ID: trace.PairID(id), U: int32(u), V: int32(v), Dist: 1}
			if got := p.OfReq(req); got != want {
				t.Fatalf("shards=%d: OfReq({%d,%d}) = %d, want %d", shards, u, v, got, want)
			}
			if want < 0 || want >= shards {
				t.Fatalf("shards=%d: owner %d out of range", shards, want)
			}
		}
	}
}

// TestShardedSingleShardMatchesPlain: one shard with ShardSeed(base, 0) is
// the unsharded algorithm — identical steps, name, matching.
func TestShardedSingleShardMatchesPlain(t *testing.T) {
	const n, b = 16, 3
	model := testModel(n, 30)
	ct := testTraceCompiled(t, n, 8000, 3, model)
	plain, err := NewRBMA(n, b, model, 42)
	if err != nil {
		t.Fatal(err)
	}
	sh := newShardedRBMA(t, n, 1, b, model, 42)
	if sh.Name() != plain.Name() {
		t.Fatalf("single-shard name %q != %q", sh.Name(), plain.Name())
	}
	for i, req := range ct.Reqs {
		if got, want := sh.ServeCompiled(req), plain.ServeCompiled(req); got != want {
			t.Fatalf("request %d: sharded step %+v != plain %+v", i, got, want)
		}
	}
	if sh.MatchingSize() != plain.MatchingSize() {
		t.Fatalf("matching size %d != %d", sh.MatchingSize(), plain.MatchingSize())
	}
}

// TestShardedPlanesAreIndependent: each plane of a multi-shard run evolves
// exactly like a standalone instance fed only that shard's requests.
func TestShardedPlanesAreIndependent(t *testing.T) {
	const n, b, shards = 16, 3, 4
	model := testModel(n, 30)
	ct := testTraceCompiled(t, n, 8000, 7, model)
	sh := newShardedRBMA(t, n, shards, b, model, 9)
	ref := make([]*RBMA, shards)
	for s := range ref {
		alg, err := NewRBMA(n, b, model, ShardSeed(9, s))
		if err != nil {
			t.Fatal(err)
		}
		ref[s] = alg
	}
	part := sh.Partition()
	size := 0
	for i, req := range ct.Reqs {
		s := part.OfReq(req)
		if got, want := sh.ServeCompiled(req), ref[s].ServeCompiled(req); got != want {
			t.Fatalf("request %d (shard %d): step %+v != standalone %+v", i, s, got, want)
		}
	}
	for s := range ref {
		if sh.Shard(s).MatchingSize() != ref[s].MatchingSize() {
			t.Fatalf("shard %d size %d != standalone %d", s, sh.Shard(s).MatchingSize(), ref[s].MatchingSize())
		}
		size += ref[s].MatchingSize()
		if err := CheckDegreeInvariant(sh.Shard(s)); err != nil {
			t.Fatal(err)
		}
	}
	if sh.MatchingSize() != size {
		t.Fatalf("MatchingSize %d != plane sum %d", sh.MatchingSize(), size)
	}
}

// TestServeChunkMatchesPerRequest: the batch-apply path (ServeChunk +
// FoldShardSteps) produces the same totals as per-request ServeCompiled
// accumulation, and ApplyShard over shard-grouped runs agrees with both.
func TestServeChunkMatchesPerRequest(t *testing.T) {
	const n, b, shards, alpha = 16, 3, 3, 30.0
	model := testModel(n, alpha)
	ct := testTraceCompiled(t, n, 8000, 11, model)

	perReq := newShardedRBMA(t, n, shards, b, model, 5)
	var seq ShardStep
	for _, req := range ct.Reqs {
		seq.Add(perReq.ServeCompiled(req), alpha)
	}

	chunked := newShardedRBMA(t, n, shards, b, model, 5)
	acc := make([]ShardStep, shards)
	for lo := 0; lo < len(ct.Reqs); lo += 1024 {
		hi := min(lo+1024, len(ct.Reqs))
		chunked.ServeChunk(alpha, ct.Reqs[lo:hi], acc)
	}
	if got := FoldShardSteps(acc); got != seq {
		t.Fatalf("ServeChunk fold %+v != per-request total %+v", got, seq)
	}

	grouped := newShardedRBMA(t, n, shards, b, model, 5)
	part := grouped.Partition()
	byShard := make([][]trace.CompiledReq, shards)
	for _, req := range ct.Reqs {
		s := part.OfReq(req)
		byShard[s] = append(byShard[s], req)
	}
	acc2 := make([]ShardStep, shards)
	for s := range byShard {
		grouped.ApplyShard(s, alpha, byShard[s], &acc2[s])
	}
	if got := FoldShardSteps(acc2); got != seq {
		t.Fatalf("ApplyShard fold %+v != per-request total %+v", got, seq)
	}
	for s := range acc2 {
		if acc2[s] != acc[s] {
			t.Fatalf("shard %d: ApplyShard delta %+v != ServeChunk delta %+v", s, acc2[s], acc[s])
		}
	}
}

// TestShardedServeMatchesServeCompiled pins the raw Serve delegation to the
// dense path.
func TestShardedServeMatchesServeCompiled(t *testing.T) {
	const n, b, shards = 12, 2, 3
	model := testModel(n, 30)
	ct := testTraceCompiled(t, n, 5000, 13, model)
	viaServe := newShardedRBMA(t, n, shards, b, model, 1)
	viaCompiled := newShardedRBMA(t, n, shards, b, model, 1)
	for i, req := range ct.Reqs {
		// Feed Serve the reversed endpoints to exercise canonicalization.
		if got, want := viaServe.Serve(int(req.V), int(req.U)), viaCompiled.ServeCompiled(req); got != want {
			t.Fatalf("request %d: Serve %+v != ServeCompiled %+v", i, got, want)
		}
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if viaServe.Matched(v, u) != viaCompiled.Matched(u, v) {
				t.Fatalf("Matched(%d,%d) disagrees between paths", u, v)
			}
		}
	}
}

// TestShardedReset: after Reset the sharded run replays identically.
func TestShardedReset(t *testing.T) {
	const n, b, shards = 12, 2, 3
	model := testModel(n, 30)
	ct := testTraceCompiled(t, n, 5000, 17, model)
	sh := newShardedRBMA(t, n, shards, b, model, 21)
	run := func() ShardStep {
		var d ShardStep
		for _, req := range ct.Reqs {
			d.Add(sh.ServeCompiled(req), 30)
		}
		return d
	}
	first := run()
	sh.Reset()
	if sh.MatchingSize() != 0 {
		t.Fatal("Reset left matched edges")
	}
	if second := run(); second != first {
		t.Fatalf("replay after Reset %+v != first run %+v", second, first)
	}
}

// TestReseedMatchesFreshConstruction: Reseed must leave an instance in the
// state a fresh construction with that seed produces — this is what lets
// the figure drivers recycle instances across repetitions.
func TestReseedMatchesFreshConstruction(t *testing.T) {
	const n, b = 14, 3
	model := testModel(n, 30)
	ct := testTraceCompiled(t, n, 6000, 19, model)
	run := func(alg Algorithm) ShardStep {
		var d ShardStep
		for _, req := range ct.Reqs {
			d.Add(alg.(CompiledServer).ServeCompiled(req), 30)
		}
		return d
	}
	recycled, err := NewRBMA(n, b, model, 100)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(200); seed < 204; seed++ {
		fresh, err := NewRBMA(n, b, model, seed)
		if err != nil {
			t.Fatal(err)
		}
		recycled.Reseed(seed)
		if got, want := run(recycled), run(fresh); got != want {
			t.Fatalf("seed %d: reseeded run %+v != fresh run %+v", seed, got, want)
		}
	}
}
