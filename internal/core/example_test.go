package core_test

import (
	"fmt"

	"obm/internal/core"
	"obm/internal/graph"
)

// ExampleNewRBMA shows the minimal end-to-end use of the paper's algorithm:
// build a topology, construct R-BMA, and serve requests.
func ExampleNewRBMA() {
	top := graph.FatTreeRacks(16)
	model := core.CostModel{Metric: top.Metric(), Alpha: 30}
	alg, err := core.NewRBMA(16, 2, model, 42)
	if err != nil {
		panic(err)
	}
	// A cross-pod pair at distance 4: k_e = ⌈30/4⌉ = 8, so the pair is
	// matched on the 8th request.
	var before, after float64
	for i := 0; i < 8; i++ {
		before = alg.Serve(0, 9).RoutingCost
	}
	after = alg.Serve(0, 9).RoutingCost
	fmt.Printf("matched=%v routing %"+"v -> %v\n", alg.Matched(0, 9), before, after)
	// Output: matched=true routing 4 -> 1
}

// ExampleNewOblivious contrasts the static-network baseline.
func ExampleNewOblivious() {
	top := graph.FatTreeRacks(16)
	model := core.CostModel{Metric: top.Metric(), Alpha: 30}
	alg, _ := core.NewOblivious(model)
	st := alg.Serve(0, 9)
	fmt.Printf("routing=%v adds=%d\n", st.RoutingCost, st.Adds)
	// Output: routing=4 adds=0
}

// ExampleCostModel_Gamma computes the nonuniformity factor of the
// competitive ratio.
func ExampleCostModel_Gamma() {
	top := graph.FatTreeRacks(16)
	model := core.CostModel{Metric: top.Metric(), Alpha: 30}
	fmt.Printf("gamma = %.3f\n", model.Gamma())
	// Output: gamma = 1.133
}
