package core

import (
	"fmt"

	"obm/internal/matching"
	"obm/internal/trace"
)

// Batch is a dynamic-but-offline-flavored baseline in the style of the
// batch/dynamic heavy-matching systems the paper cites as related work
// (Hanauer et al., INFOCOM 2022/2023): every Window requests it recomputes
// a maximum-weight b-matching from the recent demand (exponentially decayed
// pair counts) and reconfigures to it, paying α per changed edge. Between
// recomputations the matching is static.
//
// Batch trades reconfiguration burstiness against matching quality: small
// windows track demand closely but reconfigure often; large windows
// amortize reconfiguration but lag behind shifts. It complements the
// request-by-request online algorithms in ablation studies.
type Batch struct {
	n, b   int
	model  CostModel
	window int
	decay  float64

	m      *matching.BMatching
	counts map[trace.PairKey]float64
	since  int
}

// NewBatch constructs the windowed-recompute baseline. window is the number
// of requests between recomputations; decay in (0,1] is the multiplicative
// weight applied to historical counts at each recomputation (1 = cumulative
// counts, smaller = more recency-biased).
func NewBatch(n, b int, model CostModel, window int, decay float64) (*Batch, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: NewBatch requires n >= 2")
	}
	if b < 1 {
		return nil, fmt.Errorf("core: NewBatch requires b >= 1")
	}
	if window < 1 {
		return nil, fmt.Errorf("core: NewBatch requires window >= 1")
	}
	if decay <= 0 || decay > 1 {
		return nil, fmt.Errorf("core: NewBatch requires decay in (0,1]")
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if model.Metric.N() < n {
		return nil, fmt.Errorf("core: metric covers %d racks, need %d", model.Metric.N(), n)
	}
	a := &Batch{n: n, b: b, model: model, window: window, decay: decay}
	a.Reset()
	return a, nil
}

// Name implements Algorithm.
func (a *Batch) Name() string { return fmt.Sprintf("batch[w=%d]", a.window) }

// B implements Algorithm.
func (a *Batch) B() int { return a.b }

// Matched implements Algorithm.
func (a *Batch) Matched(u, v int) bool { return a.m.Has(trace.MakePairKey(u, v)) }

// MatchingSize implements Algorithm.
func (a *Batch) MatchingSize() int { return a.m.Size() }

func (a *Batch) bmatching() *matching.BMatching { return a.m }

// Reset implements Algorithm.
func (a *Batch) Reset() {
	a.m = matching.NewBMatching(a.n, a.b)
	a.counts = make(map[trace.PairKey]float64)
	a.since = 0
}

// Serve implements Algorithm.
func (a *Batch) Serve(u, v int) Step {
	k := trace.MakePairKey(u, v)
	var step Step
	step.RoutingCost = a.model.RouteCost(k, a.m.Has(k))
	// Weight demand by the saving a matching edge would provide.
	a.counts[k] += float64(a.model.Metric.Dist(u, v) - 1)
	a.since++
	if a.since < a.window {
		return step
	}
	a.since = 0
	adds, removals := a.recompute()
	step.Adds += adds
	step.Removals += removals
	return step
}

// recompute rebuilds the matching from decayed counts and returns the
// number of edge additions and removals performed.
func (a *Batch) recompute() (adds, removals int) {
	edges := make([]matching.WeightedEdge, 0, len(a.counts))
	for k, w := range a.counts {
		if w <= 0 {
			continue
		}
		u, v := k.Endpoints()
		edges = append(edges, matching.WeightedEdge{U: u, V: v, W: w})
	}
	target := matching.GreedyBMatching(a.n, edges, a.b)
	want := make(map[trace.PairKey]struct{}, len(target))
	for _, k := range target {
		want[k] = struct{}{}
	}
	for _, k := range a.m.Edges() {
		if _, keep := want[k]; !keep {
			if err := a.m.Remove(k); err != nil {
				panic(fmt.Sprintf("core: Batch removing %v: %v", k, err))
			}
			removals++
		}
	}
	for k := range want {
		if !a.m.Has(k) {
			if err := a.m.Add(k); err != nil {
				panic(fmt.Sprintf("core: Batch adding %v: %v", k, err))
			}
			adds++
		}
	}
	for k := range a.counts {
		a.counts[k] *= a.decay
		if a.counts[k] < 1e-9 {
			delete(a.counts, k)
		}
	}
	return adds, removals
}

// GreedyNoEvict is the simplest demand-aware baseline: the first time a
// pair is requested with both endpoints below their degree cap, it is
// matched — and never evicted. Cheap, but unable to adapt once capacity
// fills; its gap to R-BMA isolates the value of eviction.
type GreedyNoEvict struct {
	n, b  int
	model CostModel
	m     *matching.BMatching
}

// NewGreedyNoEvict constructs the no-eviction baseline.
func NewGreedyNoEvict(n, b int, model CostModel) (*GreedyNoEvict, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: NewGreedyNoEvict requires n >= 2")
	}
	if b < 1 {
		return nil, fmt.Errorf("core: NewGreedyNoEvict requires b >= 1")
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if model.Metric.N() < n {
		return nil, fmt.Errorf("core: metric covers %d racks, need %d", model.Metric.N(), n)
	}
	a := &GreedyNoEvict{n: n, b: b, model: model}
	a.Reset()
	return a, nil
}

// Name implements Algorithm.
func (a *GreedyNoEvict) Name() string { return "greedy-noevict" }

// B implements Algorithm.
func (a *GreedyNoEvict) B() int { return a.b }

// Matched implements Algorithm.
func (a *GreedyNoEvict) Matched(u, v int) bool { return a.m.Has(trace.MakePairKey(u, v)) }

// MatchingSize implements Algorithm.
func (a *GreedyNoEvict) MatchingSize() int { return a.m.Size() }

func (a *GreedyNoEvict) bmatching() *matching.BMatching { return a.m }

// Reset implements Algorithm.
func (a *GreedyNoEvict) Reset() { a.m = matching.NewBMatching(a.n, a.b) }

// Serve implements Algorithm.
func (a *GreedyNoEvict) Serve(u, v int) Step {
	k := trace.MakePairKey(u, v)
	var step Step
	if a.m.Has(k) {
		step.RoutingCost = 1
		return step
	}
	step.RoutingCost = a.model.RouteCost(k, false)
	if a.m.Free(u) > 0 && a.m.Free(v) > 0 {
		if err := a.m.Add(k); err != nil {
			panic(fmt.Sprintf("core: GreedyNoEvict adding %v: %v", k, err))
		}
		step.Adds++
	}
	return step
}
