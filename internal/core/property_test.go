package core

import (
	"testing"
	"testing/quick"

	"obm/internal/graph"
	"obm/internal/stats"
)

// TestAllAlgorithmsSharedProperties drives every online algorithm through
// random request sequences and checks the properties any correct
// implementation must satisfy:
//   - routing cost of a step is 1 when the pair was matched before the
//     step and ℓ_e otherwise;
//   - adds/removals are non-negative and the degree cap always holds;
//   - MatchingSize equals the add/removal ledger.
func TestAllAlgorithmsSharedProperties(t *testing.T) {
	n := 10
	top := graph.FatTreeRacks(n)
	model := CostModel{Metric: top.Metric(), Alpha: 10}
	mks := map[string]func() Algorithm{
		"r-bma": func() Algorithm {
			a, err := NewRBMA(n, 2, model, 1)
			if err != nil {
				t.Fatal(err)
			}
			return a
		},
		"r-bma-eager": func() Algorithm {
			a, err := NewRBMA(n, 2, model, 1, WithEagerRemoval())
			if err != nil {
				t.Fatal(err)
			}
			return a
		},
		"bma": func() Algorithm {
			a, err := NewBMA(n, 2, model)
			if err != nil {
				t.Fatal(err)
			}
			return a
		},
		"batch": func() Algorithm {
			a, err := NewBatch(n, 2, model, 37, 0.7)
			if err != nil {
				t.Fatal(err)
			}
			return a
		},
		"greedy-noevict": func() Algorithm {
			a, err := NewGreedyNoEvict(n, 2, model)
			if err != nil {
				t.Fatal(err)
			}
			return a
		},
		"oblivious": func() Algorithm {
			a, err := NewOblivious(model)
			if err != nil {
				t.Fatal(err)
			}
			return a
		},
	}
	for name, mk := range mks {
		t.Run(name, func(t *testing.T) {
			if err := quick.Check(func(seed uint16) bool {
				alg := mk()
				r := stats.NewRand(uint64(seed))
				ledger := 0
				for i := 0; i < 400; i++ {
					u, v := r.Intn(n), r.Intn(n)
					if u == v {
						continue
					}
					wasMatched := alg.Matched(u, v)
					st := alg.Serve(u, v)
					wantCost := float64(model.Metric.Dist(u, v))
					if wasMatched {
						wantCost = 1
					}
					if st.RoutingCost != wantCost {
						t.Logf("step %d: routing %v, want %v", i, st.RoutingCost, wantCost)
						return false
					}
					if st.Adds < 0 || st.Removals < 0 {
						return false
					}
					ledger += st.Adds - st.Removals
					if alg.MatchingSize() != ledger {
						t.Logf("step %d: size %d, ledger %d", i, alg.MatchingSize(), ledger)
						return false
					}
					if err := CheckDegreeInvariant(alg); err != nil {
						t.Log(err)
						return false
					}
				}
				return true
			}, &quick.Config{MaxCount: 30}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestServePanicsOnInvalidPair documents the contract: algorithms reject
// degenerate pairs loudly instead of corrupting state.
func TestServePanicsOnInvalidPair(t *testing.T) {
	n := 8
	top := graph.FatTreeRacks(n)
	model := CostModel{Metric: top.Metric(), Alpha: 10}
	alg, _ := NewRBMA(n, 2, model, 1)
	for _, pair := range [][2]int{{3, 3}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Serve(%d,%d) should panic", pair[0], pair[1])
				}
			}()
			alg.Serve(pair[0], pair[1])
		}()
	}
}
