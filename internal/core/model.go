// Package core implements the paper's contribution and its baselines: the
// randomized online (b,a)-matching algorithm R-BMA (reduction to per-node
// paging, §2), the deterministic online b-matching baseline BMA
// (Bienkowski et al., PERFORMANCE 2020), the oblivious baseline (static
// network only), the offline static maximum-weight b-matching SO-BMA, and a
// clairvoyant R-BMA variant (Belady caches) exploring the paper's
// future-work direction of prediction-augmented algorithms.
//
// Cost model (paper §1.1): serving request e costs 1 if e is a matching
// edge, else ℓ_e (the static-network distance); every edge added to or
// removed from the matching costs α.
package core

import (
	"fmt"

	"obm/internal/graph"
	"obm/internal/matching"
	"obm/internal/trace"
)

// CostModel bundles the distance oracle ℓ and the reconfiguration cost α.
type CostModel struct {
	Metric *graph.Metric
	Alpha  float64
}

// Validate reports whether the model is usable.
func (c CostModel) Validate() error {
	if c.Metric == nil {
		return fmt.Errorf("core: CostModel without metric")
	}
	if c.Alpha < 1 {
		return fmt.Errorf("core: CostModel alpha = %v, need >= 1", c.Alpha)
	}
	return nil
}

// Gamma returns γ = 1 + ℓmax/α, the nonuniformity factor in R-BMA's
// competitive ratio (Corollary 3).
func (c CostModel) Gamma() float64 {
	return 1 + float64(c.Metric.Max())/c.Alpha
}

// RouteCost returns the cost of serving pair k given its matching status.
func (c CostModel) RouteCost(k trace.PairKey, matched bool) float64 {
	if matched {
		return 1
	}
	u, v := k.Endpoints()
	return float64(c.Metric.Dist(u, v))
}

// Step reports what one request cost: the routing cost paid and the number
// of matching edges added and removed while serving it.
type Step struct {
	RoutingCost float64
	Adds        int
	Removals    int
}

// ReconfigCost returns the reconfiguration cost of the step under α.
func (s Step) ReconfigCost(alpha float64) float64 {
	return alpha * float64(s.Adds+s.Removals)
}

// Total returns the full cost of the step under α.
func (s Step) Total(alpha float64) float64 {
	return s.RoutingCost + s.ReconfigCost(alpha)
}

// Algorithm is an online b-matching algorithm: it is fed one request at a
// time and maintains a dynamic b-matching.
type Algorithm interface {
	// Name identifies the algorithm (used in experiment output).
	Name() string
	// B returns the degree cap.
	B() int
	// Serve processes the request {u, v} and returns the step costs.
	Serve(u, v int) Step
	// Matched reports whether pair {u, v} is currently a matching edge.
	Matched(u, v int) bool
	// MatchingSize returns the current number of matching edges.
	MatchingSize() int
	// Reset restores the initial (empty-matching) state.
	Reset()
}

// CompiledServer is implemented by algorithms with a dense fast path: given
// a pre-resolved request (PairID, endpoints, static distance) they can skip
// per-request canonicalization and metric lookups. ServeCompiled must be
// semantically identical to Serve(req.U, req.V); the simulation harness
// uses it when replaying a trace.Compiled.
type CompiledServer interface {
	ServeCompiled(req trace.CompiledReq) Step
}

// Reseeder is implemented by randomized algorithms that can adopt a new
// seed in place: after Reseed(seed) the instance must be indistinguishable
// from a freshly constructed one with that seed. Experiment drivers use it
// to recycle instances across repetitions instead of reallocating the
// per-pair state tables.
type Reseeder interface {
	Reseed(seed uint64)
}

// degreeCapped is the invariant-check hook shared by implementations that
// expose their BMatching for tests.
type degreeCapped interface {
	bmatching() *matching.BMatching
}

// CheckDegreeInvariant verifies that alg's matching respects its degree cap;
// it returns nil for algorithms that do not expose their matching.
// Intended for tests and the simulator's paranoid mode.
func CheckDegreeInvariant(alg Algorithm) error {
	d, ok := alg.(degreeCapped)
	if !ok {
		return nil
	}
	return d.bmatching().CheckInvariants()
}
