package core

import (
	"math"
	"math/rand/v2"
	"testing"
)

// TestFoldShardStepsPermutationInvariant is the property behind every
// deterministic merge in the tree — the parallel replay, the coordinator's
// log absorption, the engine's sharded sessions: when per-shard costs are
// integer-valued (true whenever α is an integer, as in every preset), the
// fold is exact, so ANY ordering of the per-shard accumulators produces
// the same bits. Random shard states, random permutations, bit-compared
// against the canonical ascending fold.
func TestFoldShardStepsPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(16)
		acc := make([]ShardStep, n)
		for i := range acc {
			// Integer-valued costs at realistic magnitudes: routing is a
			// sum of path lengths, reconfig a sum of α-multiples.
			acc[i] = ShardStep{
				Routing:  float64(rng.Int64N(1 << 40)),
				Reconfig: 30 * float64(rng.Int64N(1<<35)),
				Adds:     int(rng.Int64N(1 << 20)),
				Removals: int(rng.Int64N(1 << 20)),
			}
		}
		want := FoldShardSteps(acc)
		for p := 0; p < 20; p++ {
			perm := make([]ShardStep, n)
			for i, j := range rng.Perm(n) {
				perm[i] = acc[j]
			}
			got := FoldShardSteps(perm)
			if math.Float64bits(got.Routing) != math.Float64bits(want.Routing) ||
				math.Float64bits(got.Reconfig) != math.Float64bits(want.Reconfig) ||
				got.Adds != want.Adds || got.Removals != want.Removals {
				t.Fatalf("trial %d perm %d: fold (%v, %v, %d, %d) != canonical (%v, %v, %d, %d)",
					trial, p, got.Routing, got.Reconfig, got.Adds, got.Removals,
					want.Routing, want.Reconfig, want.Adds, want.Removals)
			}
		}
	}
}

// TestFoldShardStepsMatchesSequential pins the stronger half of the
// contract: folding per-shard partial sums equals accumulating every step
// in trace order, exactly — the reason a sharded replay's totals are
// byte-identical to the sequential replay's.
func TestFoldShardStepsMatchesSequential(t *testing.T) {
	const alpha = 30.0
	rng := rand.New(rand.NewPCG(3, 1))
	for trial := 0; trial < 100; trial++ {
		shards := 1 + rng.IntN(8)
		steps := 1 + rng.IntN(2000)
		var seq ShardStep
		acc := make([]ShardStep, shards)
		for i := 0; i < steps; i++ {
			st := Step{RoutingCost: float64(rng.Int64N(64))}
			if rng.IntN(4) == 0 {
				st.Adds = 1
				st.Removals = rng.IntN(2)
			}
			seq.Add(st, alpha)
			acc[rng.IntN(shards)].Add(st, alpha)
		}
		got := FoldShardSteps(acc)
		if math.Float64bits(got.Routing) != math.Float64bits(seq.Routing) ||
			math.Float64bits(got.Reconfig) != math.Float64bits(seq.Reconfig) ||
			got.Adds != seq.Adds || got.Removals != seq.Removals {
			t.Fatalf("trial %d: fold (%v, %v) != sequential (%v, %v)",
				trial, got.Routing, got.Reconfig, seq.Routing, seq.Reconfig)
		}
	}
}
