package core

import (
	"fmt"

	"obm/internal/matching"
	"obm/internal/trace"
)

// Oblivious is the no-reconfiguration baseline: every request is routed
// over the static network (the violet "Oblivious" line in the paper's
// routing-cost figures).
type Oblivious struct {
	model CostModel
}

// NewOblivious constructs the oblivious baseline.
func NewOblivious(model CostModel) (*Oblivious, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &Oblivious{model: model}, nil
}

// Name implements Algorithm.
func (o *Oblivious) Name() string { return "oblivious" }

// B implements Algorithm.
func (o *Oblivious) B() int { return 0 }

// Serve implements Algorithm.
func (o *Oblivious) Serve(u, v int) Step {
	return Step{RoutingCost: o.model.RouteCost(trace.MakePairKey(u, v), false)}
}

// Matched implements Algorithm.
func (o *Oblivious) Matched(u, v int) bool { return false }

// MatchingSize implements Algorithm.
func (o *Oblivious) MatchingSize() int { return 0 }

// Reset implements Algorithm.
func (o *Oblivious) Reset() {}

// Static replays a fixed matching chosen offline: the paper's SO-BMA
// baseline, which computes a static maximum-weight b-matching from the
// full trace (via iterated blossom matchings) and never reconfigures.
type Static struct {
	name  string
	b     int
	model CostModel
	edges map[trace.PairKey]struct{}
	n     int
}

// NewStaticFromTrace builds SO-BMA for a trace: pair weights are the total
// routing-cost saving the pair would enjoy if matched, count_e · (ℓ_e − 1),
// and the matching is a maximum-weight b-matching of those weights.
func NewStaticFromTrace(tr *trace.Trace, b int, model CostModel) (*Static, error) {
	if b < 1 {
		return nil, fmt.Errorf("core: NewStaticFromTrace requires b >= 1")
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if model.Metric.N() < tr.NumRacks {
		return nil, fmt.Errorf("core: metric covers %d racks, trace needs %d", model.Metric.N(), tr.NumRacks)
	}
	counts := tr.PairCounts()
	edges := make([]matching.WeightedEdge, 0, len(counts))
	for k, c := range counts {
		u, v := k.Endpoints()
		benefit := float64(c) * float64(model.Metric.Dist(u, v)-1)
		if benefit > 0 {
			edges = append(edges, matching.WeightedEdge{U: u, V: v, W: benefit})
		}
	}
	chosen := matching.IteratedMWM(tr.NumRacks, edges, b)
	s := &Static{
		name:  "so-bma",
		b:     b,
		model: model,
		edges: make(map[trace.PairKey]struct{}, len(chosen)),
		n:     tr.NumRacks,
	}
	for _, k := range chosen {
		s.edges[k] = struct{}{}
	}
	return s, nil
}

// Name implements Algorithm.
func (s *Static) Name() string { return s.name }

// B implements Algorithm.
func (s *Static) B() int { return s.b }

// Serve implements Algorithm.
func (s *Static) Serve(u, v int) Step {
	k := trace.MakePairKey(u, v)
	_, matched := s.edges[k]
	return Step{RoutingCost: s.model.RouteCost(k, matched)}
}

// Matched implements Algorithm.
func (s *Static) Matched(u, v int) bool {
	_, ok := s.edges[trace.MakePairKey(u, v)]
	return ok
}

// MatchingSize implements Algorithm.
func (s *Static) MatchingSize() int { return len(s.edges) }

// Reset implements Algorithm. The matching is static, so nothing changes.
func (s *Static) Reset() {}
