package core

import (
	"fmt"
	"sort"

	"obm/internal/matching"
	"obm/internal/trace"
)

// Oblivious is the no-reconfiguration baseline: every request is routed
// over the static network (the violet "Oblivious" line in the paper's
// routing-cost figures).
type Oblivious struct {
	model CostModel
}

// NewOblivious constructs the oblivious baseline.
func NewOblivious(model CostModel) (*Oblivious, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &Oblivious{model: model}, nil
}

// Name implements Algorithm.
func (o *Oblivious) Name() string { return "oblivious" }

// B implements Algorithm.
func (o *Oblivious) B() int { return 0 }

// Serve implements Algorithm.
func (o *Oblivious) Serve(u, v int) Step {
	return Step{RoutingCost: o.model.RouteCost(trace.MakePairKey(u, v), false)}
}

// ServeCompiled implements CompiledServer.
func (o *Oblivious) ServeCompiled(req trace.CompiledReq) Step {
	return Step{RoutingCost: float64(req.Dist)}
}

// Matched implements Algorithm.
func (o *Oblivious) Matched(u, v int) bool { return false }

// MatchingSize implements Algorithm.
func (o *Oblivious) MatchingSize() int { return 0 }

// Reset implements Algorithm.
func (o *Oblivious) Reset() {}

// Static replays a fixed matching chosen offline: the paper's SO-BMA
// baseline, which computes a static maximum-weight b-matching from the
// full trace (via iterated blossom matchings) and never reconfigures.
type Static struct {
	name  string
	b     int
	model CostModel
	idx   *trace.PairIndex
	edges []uint64 // bitset by PairID
	size  int
	n     int
}

// NewStaticFromTrace builds SO-BMA for a trace: pair weights are the total
// routing-cost saving the pair would enjoy if matched, count_e · (ℓ_e − 1),
// and the matching is a maximum-weight b-matching of those weights.
func NewStaticFromTrace(tr *trace.Trace, b int, model CostModel) (*Static, error) {
	if b < 1 {
		return nil, fmt.Errorf("core: NewStaticFromTrace requires b >= 1")
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if model.Metric.N() < tr.NumRacks {
		return nil, fmt.Errorf("core: metric covers %d racks, trace needs %d", model.Metric.N(), tr.NumRacks)
	}
	counts := tr.PairCounts()
	edges := make([]matching.WeightedEdge, 0, len(counts))
	for k, c := range counts {
		u, v := k.Endpoints()
		benefit := float64(c) * float64(model.Metric.Dist(u, v)-1)
		if benefit > 0 {
			edges = append(edges, matching.WeightedEdge{U: u, V: v, W: benefit})
		}
	}
	// counts is a map, so the edge list arrives in randomized order — and
	// IteratedMWM's tie-breaking is order-sensitive. Sort canonically so
	// the same trace always yields the same matching: SO-BMA construction
	// is part of the determinism contract (two runs of one figure, or a
	// snapshot-restored instance and its original, must agree exactly).
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	chosen := matching.IteratedMWM(tr.NumRacks, edges, b)
	idx := trace.SharedPairIndex(tr.NumRacks)
	s := &Static{
		name:  "so-bma",
		b:     b,
		model: model,
		idx:   idx,
		edges: make([]uint64, (idx.NumPairs()+63)/64),
		size:  len(chosen),
		n:     tr.NumRacks,
	}
	for _, k := range chosen {
		id := idx.IDOfKey(k)
		s.edges[id>>6] |= 1 << (uint(id) & 63)
	}
	return s, nil
}

func (s *Static) has(id trace.PairID) bool {
	return s.edges[id>>6]&(1<<(uint(id)&63)) != 0
}

// Name implements Algorithm.
func (s *Static) Name() string { return s.name }

// B implements Algorithm.
func (s *Static) B() int { return s.b }

// Serve implements Algorithm.
func (s *Static) Serve(u, v int) Step {
	k := trace.MakePairKey(u, v)
	return Step{RoutingCost: s.model.RouteCost(k, s.has(s.idx.IDOfKey(k)))}
}

// ServeCompiled implements CompiledServer.
func (s *Static) ServeCompiled(req trace.CompiledReq) Step {
	if s.has(req.ID) {
		return Step{RoutingCost: 1}
	}
	return Step{RoutingCost: float64(req.Dist)}
}

// Matched implements Algorithm.
func (s *Static) Matched(u, v int) bool {
	return s.has(s.idx.IDOfKey(trace.MakePairKey(u, v)))
}

// MatchingSize implements Algorithm.
func (s *Static) MatchingSize() int { return s.size }

// Edges returns the static matching's edges in ascending pair order.
func (s *Static) Edges() []trace.PairKey {
	out := make([]trace.PairKey, 0, s.size)
	for id := 0; id < s.idx.NumPairs(); id++ {
		if s.has(trace.PairID(id)) {
			out = append(out, s.idx.Key(trace.PairID(id)))
		}
	}
	return out
}

// Reset implements Algorithm. The matching is static, so nothing changes.
func (s *Static) Reset() {}
