package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestWritePrometheusGolden pins the exposition format byte-for-byte:
// family sorting, HELP/TYPE headers, label rendering and escaping,
// summary quantile/_sum/_count shape, and integer-exact counter values.
// scripts/check_metrics.sh lints the same grammar against live binaries.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_requests_total", "Requests ingested.", Label{Key: "plane", Value: "0"}).Add(42)
	r.Counter("t_requests_total", "Requests ingested.", Label{Key: "plane", Value: "1"}).Add(7)
	r.Gauge("t_conns", "Open connections.").Set(3)
	h := r.Histogram("t_batch", "Batch sizes.", 1)
	for v := uint64(1); v <= 10; v++ {
		h.Observe(v)
	}
	r.Collect(func(e *Exposition) {
		e.Gauge("t_sessions", "Live sessions.", 2)
		e.Counter("t_served_total", "Served per session.", 100,
			Label{Key: "session", Value: `a"b\c`})
	})

	const want = `# HELP t_batch Batch sizes.
# TYPE t_batch summary
t_batch{quantile="0.5"} 5
t_batch{quantile="0.9"} 9
t_batch{quantile="0.99"} 10
t_batch{quantile="0.999"} 10
t_batch_sum 55
t_batch_count 10
# HELP t_conns Open connections.
# TYPE t_conns gauge
t_conns 3
# HELP t_requests_total Requests ingested.
# TYPE t_requests_total counter
t_requests_total{plane="0"} 42
t_requests_total{plane="1"} 7
# HELP t_served_total Served per session.
# TYPE t_served_total counter
t_served_total{session="a\"b\\c"} 100
# HELP t_sessions Live sessions.
# TYPE t_sessions gauge
t_sessions 2
`
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRegistryGetOrCreate checks that re-registering a series returns
// the same metric (so layers can share a registry without coordination).
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "X.")
	b := r.Counter("x_total", "X.")
	if a != b {
		t.Fatal("re-registering the same counter returned a different instance")
	}
	a.Add(5)
	if b.Value() != 5 {
		t.Fatalf("shared counter value = %d, want 5", b.Value())
	}
	if r.Counter("x_total", "X.", Label{Key: "k", Value: "v"}) == a {
		t.Fatal("distinct label set must be a distinct series")
	}
}

// TestRegistryConcurrent hammers counters, gauges and a histogram from
// many goroutines while scraping concurrently; run under -race this
// checks the whole read/write surface, and the final scrape must see
// exactly the totals written.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "C.")
	g := r.Gauge("g", "G.")
	h := r.Histogram("h_seconds", "H.", 1e-9)

	const workers = 8
	const perWorker = 2000
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() { // concurrent scraper
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			if !strings.Contains(b.String(), "# TYPE h_seconds summary") {
				t.Error("scrape lost the histogram family")
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(uint64(i%1000 + 1))
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-scraperDone

	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if s := h.Summary(); s.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", s.Count, workers*perWorker)
	}
}

// TestHistogramSummary sanity-checks the digest against known samples.
func TestHistogramSummary(t *testing.T) {
	var h Histogram
	if s := h.Summary(); s.Count != 0 || s.P99 != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	s := h.Summary()
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mean != 50.5 {
		t.Fatalf("mean = %v, want 50.5", s.Mean)
	}
	// Log2 buckets give <= 1/16 relative error on the upper quantiles.
	if s.P50 < 50 || s.P50 > 54 {
		t.Fatalf("p50 = %d", s.P50)
	}
	if s.P99 < 99 || s.P99 > 100 {
		t.Fatalf("p99 = %d", s.P99)
	}
}

// TestRing checks sequence numbering, windowing and cursoring.
func TestRing(t *testing.T) {
	r := NewRing[int](4)
	if ev, _ := r.Since(0); ev != nil {
		t.Fatalf("empty ring returned %v", ev)
	}
	for i := 1; i <= 3; i++ {
		if seq := r.Append(i * 10); seq != uint64(i) {
			t.Fatalf("Append #%d returned seq %d", i, seq)
		}
	}
	ev, first := r.Since(0)
	if first != 1 || len(ev) != 3 || ev[0] != 10 || ev[2] != 30 {
		t.Fatalf("Since(0) = %v first=%d", ev, first)
	}
	ev, first = r.Since(2)
	if first != 3 || len(ev) != 1 || ev[0] != 30 {
		t.Fatalf("Since(2) = %v first=%d", ev, first)
	}
	// Overflow the window: events 4..7 evict 1..3.
	for i := 4; i <= 7; i++ {
		r.Append(i * 10)
	}
	ev, first = r.Since(0)
	if first != 4 || len(ev) != 4 || ev[0] != 40 || ev[3] != 70 {
		t.Fatalf("after overflow Since(0) = %v first=%d", ev, first)
	}
	if ev, _ := r.Since(7); ev != nil {
		t.Fatalf("Since(latest) = %v, want nil", ev)
	}
	if r.Count() != 7 {
		t.Fatalf("Count = %d", r.Count())
	}
}
