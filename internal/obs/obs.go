// Package obs is the zero-dependency observability layer shared by every
// long-running binary in this repo: the live engine, the experiment
// coordinator, the fleet worker and the grid replay driver.
//
// It is deliberately small — three metric kinds and one trace primitive —
// because the hot paths it instruments are allocation-free and must stay
// that way:
//
//   - Counter and Gauge are single atomic words. Updating one from the
//     engine's per-batch ingest loop is one atomic add: no locks, no
//     allocation, no registry lookup (callers hold the *Counter).
//   - Histogram wraps the fixed-array log2 histogram in internal/stats
//     behind a mutex, so concurrent writers (HTTP handlers, replay
//     workers) share one distribution without per-sample allocation.
//   - Ring (ring.go) is a fixed-capacity event trace for introspection
//     streams (the engine's per-batch matching-churn deltas).
//
// A Registry owns named metrics and renders them in the Prometheus text
// exposition format (WritePrometheus / Handler). Metrics registered up
// front are static series; dynamic series — per-session counters whose
// label sets come and go — are emitted at scrape time by collector
// callbacks (Collect), which keeps registration-free hot paths and avoids
// any register/unregister lifecycle. Histograms are exposed as summaries
// (quantiles + _sum/_count) rather than native histogram buckets: the
// underlying histogram has 976 buckets, which would drown a text scrape.
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension. Labels are rendered in the order given,
// so callers keep a fixed order for a deterministic exposition.
type Label struct {
	Key   string
	Value string
}

// Counter is a monotonically increasing counter, safe for concurrent use.
// Add is a single atomic add — hot paths update counters without locks or
// allocations.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer gauge (depths, live connections), safe for
// concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to decrement).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metricKind discriminates registry entries.
type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "summary"
	}
}

// entry is one registered metric.
type entry struct {
	kind   metricKind
	name   string
	help   string
	labels string // pre-rendered {k="v",...}, or ""
	scale  float64

	c *Counter
	g *Gauge
	h *Histogram
}

// Collector emits dynamic samples at scrape time.
type Collector func(*Exposition)

// Registry owns named metrics and collectors and renders them as
// Prometheus text. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu         sync.Mutex
	entries    []*entry
	index      map[string]*entry // name+labels → entry
	collectors []Collector
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*entry)}
}

// validName reports whether s is a legal Prometheus metric or label name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// renderLabels renders a label list as {k="v",...} with escaped values.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q", l.Key))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeValue(l.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeValue escapes a label value per the text exposition format.
func escapeValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a help string per the text exposition format.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// get returns the entry for (name, labels), creating it via mk on first
// use. Re-registering the same series returns the same metric; a kind
// mismatch is a programming error and panics.
func (r *Registry) get(kind metricKind, name, help string, labels []Label, mk func(*entry)) *entry {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	ls := renderLabels(labels)
	key := name + ls
	r.mu.Lock()
	defer r.mu.Unlock()
	if en, ok := r.index[key]; ok {
		if en.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", key, kind, en.kind))
		}
		return en
	}
	en := &entry{kind: kind, name: name, help: help, labels: ls}
	mk(en)
	r.entries = append(r.entries, en)
	r.index[key] = en
	return en
}

// Counter registers (or returns) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.get(counterKind, name, help, labels, func(en *entry) { en.c = &Counter{} }).c
}

// Gauge registers (or returns) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.get(gaugeKind, name, help, labels, func(en *entry) { en.g = &Gauge{} }).g
}

// Histogram registers (or returns) a histogram series, exposed as a
// summary (p50/p90/p99/p999 + _sum/_count). scale multiplies exposed
// values — 1e-9 publishes nanosecond recordings as seconds, 1 publishes
// raw units (batch sizes).
func (r *Registry) Histogram(name, help string, scale float64, labels ...Label) *Histogram {
	if scale == 0 {
		scale = 1
	}
	return r.get(histogramKind, name, help, labels, func(en *entry) {
		en.h = &Histogram{}
		en.scale = scale
	}).h
}

// Collect registers a scrape-time collector for dynamic series (labels
// that come and go, like per-session counters). Collectors run on every
// exposition, outside the registry lock, in registration order; each is
// responsible for emitting its samples in a deterministic order.
func (r *Registry) Collect(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// sample is one exposition line-in-waiting.
type sample struct {
	family string
	help   string
	kind   metricKind
	suffix string // "", "_sum" or "_count" (summary parts)
	labels string // rendered, including any quantile label
	fval   float64
	uval   uint64
	isUint bool
}

// Exposition accumulates samples for one scrape. Collectors append to it
// through the typed emit methods.
type Exposition struct {
	samples []sample
}

// Counter emits one counter sample.
func (e *Exposition) Counter(name, help string, v uint64, labels ...Label) {
	e.samples = append(e.samples, sample{
		family: name, help: help, kind: counterKind,
		labels: renderLabels(labels), uval: v, isUint: true,
	})
}

// Gauge emits one gauge sample.
func (e *Exposition) Gauge(name, help string, v float64, labels ...Label) {
	e.samples = append(e.samples, sample{
		family: name, help: help, kind: gaugeKind,
		labels: renderLabels(labels), fval: v,
	})
}

// Summary emits one summary (quantiles + _sum/_count) from a histogram
// snapshot, multiplying values by scale.
func (e *Exposition) Summary(name, help string, s Summary, scale float64, labels ...Label) {
	if scale == 0 {
		scale = 1
	}
	e.emitSummary(name, help, renderLabels(labels), s, scale)
}

// gather snapshots registered metrics and runs the collectors.
func (r *Registry) gather() *Exposition {
	r.mu.Lock()
	entries := make([]*entry, len(r.entries))
	copy(entries, r.entries)
	collectors := make([]Collector, len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()

	e := &Exposition{}
	for _, en := range entries {
		switch en.kind {
		case counterKind:
			e.samples = append(e.samples, sample{
				family: en.name, help: en.help, kind: counterKind,
				labels: en.labels, uval: en.c.Value(), isUint: true,
			})
		case gaugeKind:
			e.samples = append(e.samples, sample{
				family: en.name, help: en.help, kind: gaugeKind,
				labels: en.labels, fval: float64(en.g.Value()),
			})
		case histogramKind:
			e.emitSummary(en.name, en.help, en.labels, en.h.Summary(), en.scale)
		}
	}
	for _, c := range collectors {
		c(e)
	}
	return e
}

// emitSummary is Exposition.Summary over an already-rendered label string.
func (e *Exposition) emitSummary(name, help, base string, s Summary, scale float64) {
	quantile := func(q string) string {
		if base == "" {
			return `{quantile="` + q + `"}`
		}
		return base[:len(base)-1] + `,quantile="` + q + `"}`
	}
	qs := [...]struct {
		q string
		v uint64
	}{{"0.5", s.P50}, {"0.9", s.P90}, {"0.99", s.P99}, {"0.999", s.P999}}
	for _, x := range qs {
		e.samples = append(e.samples, sample{
			family: name, help: help, kind: histogramKind,
			labels: quantile(x.q), fval: float64(x.v) * scale,
		})
	}
	e.samples = append(e.samples, sample{
		family: name, help: help, kind: histogramKind, suffix: "_sum",
		labels: base, fval: s.Mean * float64(s.Count) * scale,
	})
	e.samples = append(e.samples, sample{
		family: name, help: help, kind: histogramKind, suffix: "_count",
		labels: base, uval: s.Count, isUint: true,
	})
}

// WritePrometheus renders every registered metric plus every collector's
// samples in the Prometheus text exposition format: families sorted by
// name, one # HELP/# TYPE header per family, samples in emission order
// within a family. The output is deterministic given deterministic
// collector emission order (obs_test.go pins it with a golden scrape).
func (r *Registry) WritePrometheus(w io.Writer) error {
	e := r.gather()
	famOrder := make([]string, 0, 16)
	byFam := make(map[string][]sample, 16)
	for _, s := range e.samples {
		if _, ok := byFam[s.family]; !ok {
			famOrder = append(famOrder, s.family)
		}
		byFam[s.family] = append(byFam[s.family], s)
	}
	sort.Strings(famOrder)
	var b strings.Builder
	for _, fam := range famOrder {
		ss := byFam[fam]
		fmt.Fprintf(&b, "# HELP %s %s\n", fam, escapeHelp(ss[0].help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam, ss[0].kind)
		for _, s := range ss {
			b.WriteString(fam)
			b.WriteString(s.suffix)
			b.WriteString(s.labels)
			b.WriteByte(' ')
			if s.isUint {
				b.WriteString(strconv.FormatUint(s.uval, 10))
			} else {
				b.WriteString(strconv.FormatFloat(s.fval, 'g', -1, 64))
			}
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the exposition over HTTP (mount at GET /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
