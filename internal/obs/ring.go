package obs

import "sync"

// Ring is a fixed-capacity event trace: a bounded window of the most
// recent events, each carrying a 1-based sequence number, for
// introspection streams (the engine's per-batch matching-churn deltas).
// Append copies the value into a preallocated slot — no allocation on
// the write path; readers cursor through Since and allocate only for
// their own copy.
type Ring[T any] struct {
	mu  sync.Mutex
	buf []T
	n   uint64 // total events ever appended; the latest has seq n
}

// NewRing builds a ring retaining the last capacity events (min 1).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Append records v as the next event and returns its sequence number.
func (r *Ring[T]) Append(v T) uint64 {
	r.mu.Lock()
	r.n++
	r.buf[int((r.n-1)%uint64(len(r.buf)))] = v
	n := r.n
	r.mu.Unlock()
	return n
}

// Count returns the total number of events ever appended.
func (r *Ring[T]) Count() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Since returns copies of the retained events with sequence number >
// after, oldest first, plus the sequence number of the first returned
// event (0 when none). Events older than the retention window are gone;
// a reader that fell behind resumes at the oldest retained event.
func (r *Ring[T]) Since(after uint64) ([]T, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	capacity := uint64(len(r.buf))
	lo := after
	if r.n > capacity && r.n-capacity > lo {
		lo = r.n - capacity
	}
	if lo >= r.n {
		return nil, 0
	}
	out := make([]T, 0, r.n-lo)
	for seq := lo + 1; seq <= r.n; seq++ {
		out = append(out, r.buf[int((seq-1)%capacity)])
	}
	return out, lo + 1
}
