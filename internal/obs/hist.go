package obs

import (
	"sync"
	"time"

	"obm/internal/stats"
)

// Histogram is a concurrency-safe wrapper around the fixed-array log2
// histogram in internal/stats — the single histogram implementation in
// the repo. Observe takes one mutex and writes into a fixed array: no
// per-sample allocation, cheap enough for per-batch paths (the engine
// records one sample per ingest batch, not per request).
//
// Values are recorded in whatever unit the caller chooses (nanoseconds
// for latencies, raw counts for sizes); the exposition scale passed to
// Registry.Histogram converts on the way out.
type Histogram struct {
	mu sync.Mutex
	h  stats.Histogram
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.mu.Lock()
	h.h.Record(v)
	h.mu.Unlock()
}

// ObserveDuration records a duration as nanoseconds (negative clamps to
// zero).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Summary is a point-in-time digest of a histogram: count, extrema, mean
// and upper quantiles. All value fields are in recorded units.
type Summary struct {
	Count uint64
	Min   uint64
	Max   uint64
	Mean  float64
	P50   uint64
	P90   uint64
	P99   uint64
	P999  uint64
}

// Summary digests the current distribution. It locks out writers only
// for four bucket scans over a fixed array — fine at scrape frequency.
func (h *Histogram) Summary() Summary {
	h.mu.Lock()
	defer h.mu.Unlock()
	return Summary{
		Count: h.h.Count(),
		Min:   h.h.Min(),
		Max:   h.h.Max(),
		Mean:  h.h.Mean(),
		P50:   h.h.Quantile(0.5),
		P90:   h.h.Quantile(0.9),
		P99:   h.h.Quantile(0.99),
		P999:  h.h.Quantile(0.999),
	}
}

// Snapshot copies the underlying distribution (for merging or offline
// analysis).
func (h *Histogram) Snapshot() stats.Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h
}
