package trace

import (
	"obm/internal/stats"
)

// Complexity summarizes the structure of a trace along the two axes the
// paper's evaluation discusses (§3.1, citing Avin et al. SIGMETRICS 2020):
// spatial skew (how concentrated demand is on few pairs) and temporal
// locality (how predictable the next request is from the recent past).
type Complexity struct {
	// UniquePairs is the number of distinct pairs requested.
	UniquePairs int
	// PairEntropy is the Shannon entropy (bits) of the empirical pair
	// distribution; low entropy = high spatial skew.
	PairEntropy float64
	// PairGini is the Gini coefficient of the pair distribution;
	// high Gini = high spatial skew.
	PairGini float64
	// Top10Share is the fraction of requests covered by the 10 most
	// frequent pairs.
	Top10Share float64
	// RepeatRatio is the fraction of requests identical to their
	// predecessor (burstiness at lag 1).
	RepeatRatio float64
	// TemporalScore is RepeatRatio minus the repeat ratio of a shuffled
	// copy of the trace: ≈ 0 for i.i.d. traces, > 0 in the presence of
	// temporal structure.
	TemporalScore float64
	// WorkingSet1k is the mean number of distinct pairs per window of
	// 1000 consecutive requests.
	WorkingSet1k float64
}

// Analyze computes the complexity statistics of t.
func Analyze(t *Trace) Complexity {
	var c Complexity
	if len(t.Reqs) == 0 {
		return c
	}
	counts := t.PairCounts()
	c.UniquePairs = len(counts)
	weights := make([]float64, 0, len(counts))
	for _, v := range counts {
		weights = append(weights, float64(v))
	}
	c.PairEntropy = stats.Entropy(weights)
	c.PairGini = stats.Gini(weights)
	c.Top10Share = topShare(weights, 10, len(t.Reqs))
	c.RepeatRatio = repeatRatio(t.Reqs)
	c.TemporalScore = c.RepeatRatio - repeatRatio(t.Shuffled(0xC0FFEE).Reqs)
	c.WorkingSet1k = meanWindowUnique(t.Reqs, 1000)
	return c
}

func repeatRatio(reqs []Request) float64 {
	if len(reqs) < 2 {
		return 0
	}
	rep := 0
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Key() == reqs[i-1].Key() {
			rep++
		}
	}
	return float64(rep) / float64(len(reqs)-1)
}

func topShare(weights []float64, k, total int) float64 {
	if total == 0 {
		return 0
	}
	top := append([]float64(nil), weights...)
	// Partial selection: simple sort is fine at these sizes.
	for i := 0; i < k && i < len(top); i++ {
		maxJ := i
		for j := i + 1; j < len(top); j++ {
			if top[j] > top[maxJ] {
				maxJ = j
			}
		}
		top[i], top[maxJ] = top[maxJ], top[i]
	}
	var s float64
	for i := 0; i < k && i < len(top); i++ {
		s += top[i]
	}
	return s / float64(total)
}

// Autocorrelation returns the probability that the request at lag steps
// after a request to pair p is again p, averaged over the trace, for each
// lag in 1..maxLag. For an i.i.d. trace this is flat at Σ p_i² (the
// collision probability); temporal structure shows as elevated short lags.
func Autocorrelation(t *Trace, maxLag int) []float64 {
	if maxLag < 1 {
		panic("trace: Autocorrelation requires maxLag >= 1")
	}
	out := make([]float64, maxLag)
	n := len(t.Reqs)
	for lag := 1; lag <= maxLag; lag++ {
		if n <= lag {
			break
		}
		same := 0
		for i := lag; i < n; i++ {
			if t.Reqs[i].Key() == t.Reqs[i-lag].Key() {
				same++
			}
		}
		out[lag-1] = float64(same) / float64(n-lag)
	}
	return out
}

// InterArrivals returns, for the pair with the most requests, the gaps
// (in requests) between its consecutive occurrences — a direct view of
// burstiness. Returns nil when no pair occurs twice.
func InterArrivals(t *Trace) []int {
	counts := t.PairCounts()
	var best PairKey
	bestC := 0
	for k, c := range counts {
		if c > bestC || (c == bestC && k < best) {
			best, bestC = k, c
		}
	}
	if bestC < 2 {
		return nil
	}
	var gaps []int
	last := -1
	for i, r := range t.Reqs {
		if r.Key() != best {
			continue
		}
		if last >= 0 {
			gaps = append(gaps, i-last)
		}
		last = i
	}
	return gaps
}

func meanWindowUnique(reqs []Request, window int) float64 {
	if len(reqs) == 0 {
		return 0
	}
	if window > len(reqs) {
		window = len(reqs)
	}
	var sum float64
	nWin := 0
	seen := make(map[PairKey]struct{}, window)
	for start := 0; start < len(reqs); start += window {
		end := start + window
		if end > len(reqs) {
			end = len(reqs)
		}
		clear(seen)
		for _, r := range reqs[start:end] {
			seen[r.Key()] = struct{}{}
		}
		sum += float64(len(seen))
		nWin++
	}
	return sum / float64(nWin)
}
