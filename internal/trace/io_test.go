package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	tr := Uniform(12, 500, 3)
	tr.Name = "rt"
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "rt" || got.NumRacks != 12 || got.Len() != 500 {
		t.Fatalf("round trip header mismatch: %+v", got)
	}
	for i := range tr.Reqs {
		if got.Reqs[i] != tr.Reqs[i] {
			t.Fatalf("request %d mismatch", i)
		}
	}
}

func TestCSVInfersRacks(t *testing.T) {
	in := "src,dst\n0,5\n2,3\n"
	tr, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumRacks != 6 {
		t.Fatalf("inferred racks = %d, want 6", tr.NumRacks)
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []string{
		"src,dst\n0\n",
		"src,dst\nx,1\n",
		"src,dst\n1,y\n",
		"src,dst\n-1,2\n",
		"src,dst\n3,3\n",
		"# racks=zz\nsrc,dst\n0,1\n",
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error for %q", i, in)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := MicrosoftStyle(10, 2000, 7)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRacks != tr.NumRacks || got.Len() != tr.Len() {
		t.Fatal("binary round trip shape mismatch")
	}
	for i := range tr.Reqs {
		if got.Reqs[i] != tr.Reqs[i] {
			t.Fatalf("request %d mismatch", i)
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOPE1234567890123456")); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestBinaryTruncated(t *testing.T) {
	tr := Uniform(5, 100, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	tr := &Trace{Name: "empty", NumRacks: 4}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.NumRacks != 4 {
		t.Fatal("empty trace round trip failed")
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	c := Analyze(&Trace{NumRacks: 3})
	if c.UniquePairs != 0 || c.RepeatRatio != 0 {
		t.Fatal("empty trace should produce zero stats")
	}
}

func TestAnalyzePointMass(t *testing.T) {
	reqs := make([]Request, 100)
	for i := range reqs {
		reqs[i] = Request{0, 1}
	}
	c := Analyze(&Trace{NumRacks: 2, Reqs: reqs})
	if c.UniquePairs != 1 || c.RepeatRatio != 1 || c.PairEntropy != 0 {
		t.Fatalf("point-mass stats wrong: %+v", c)
	}
	if c.Top10Share != 1 {
		t.Fatalf("Top10Share = %v, want 1", c.Top10Share)
	}
}

// TestStreamWritersMatchMaterialized: the streaming writers must emit
// byte-identical files to their materialized twins over Collect of the
// same stream — the stream contract, applied to trace I/O.
func TestStreamWritersMatchMaterialized(t *testing.T) {
	streams := []func() Stream{
		func() Stream { s, _ := NewUniformStream(10, 700, 5); return s },
		func() Stream { s, _ := NewMicrosoftStream(12, 600, 6); return s },
		func() Stream { s, _ := NewPermutationStream(8, 500, 7); return s },
		func() Stream {
			p := FacebookPreset(Hadoop, 14, 8)
			p.Requests = 650
			s, _ := NewFacebookStream(p)
			return s
		},
	}
	for _, mk := range streams {
		s := mk()
		tr := Collect(mk())

		var matCSV, strCSV bytes.Buffer
		if err := WriteCSV(&matCSV, tr); err != nil {
			t.Fatal(err)
		}
		if err := WriteCSVStream(&strCSV, s); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(matCSV.Bytes(), strCSV.Bytes()) {
			t.Errorf("%s: streamed CSV differs from materialized", s.Name())
		}

		var matBin, strBin bytes.Buffer
		if err := WriteBinary(&matBin, tr); err != nil {
			t.Fatal(err)
		}
		if err := WriteBinaryStream(&strBin, s); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(matBin.Bytes(), strBin.Bytes()) {
			t.Errorf("%s: streamed binary differs from materialized", s.Name())
		}

		// And the streamed binary reads back as the collected trace.
		got, err := ReadBinary(&strBin)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != tr.Len() || got.NumRacks != tr.NumRacks {
			t.Errorf("%s: read-back mismatch: %d/%d racks %d/%d",
				s.Name(), got.Len(), tr.Len(), got.NumRacks, tr.NumRacks)
		}
	}
}

// TestWriteCSVStreamIsResumable: writing twice from the same stream
// instance yields identical output (the writer resets the stream).
func TestWriteCSVStreamIsResumable(t *testing.T) {
	s, err := NewUniformStream(6, 300, 9)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := WriteCSVStream(&a, s); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSVStream(&b, s); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("second streamed write differs from the first")
	}
}
