package trace

import (
	"fmt"
	"math"

	"obm/internal/stats"
)

// TrafficMatrix is a symmetric non-negative rack-to-rack demand matrix.
// Diagonal entries are always zero.
type TrafficMatrix struct {
	n int
	w []float64
}

// NewTrafficMatrix returns an all-zero n×n matrix. It panics if n < 2.
func NewTrafficMatrix(n int) *TrafficMatrix {
	if n < 2 {
		panic("trace: NewTrafficMatrix requires n >= 2")
	}
	return &TrafficMatrix{n: n, w: make([]float64, n*n)}
}

// N returns the rack count.
func (m *TrafficMatrix) N() int { return m.n }

// Set assigns weight w to the unordered pair {u, v} (both directions).
// It panics on self-pairs, out-of-range indices, or negative weights.
func (m *TrafficMatrix) Set(u, v int, w float64) {
	if u == v {
		panic("trace: TrafficMatrix self-pair")
	}
	if u < 0 || u >= m.n || v < 0 || v >= m.n {
		panic(fmt.Sprintf("trace: TrafficMatrix index {%d,%d} out of range", u, v))
	}
	if w < 0 {
		panic("trace: TrafficMatrix negative weight")
	}
	m.w[u*m.n+v] = w
	m.w[v*m.n+u] = w
}

// At returns the weight of pair {u, v}.
func (m *TrafficMatrix) At(u, v int) float64 { return m.w[u*m.n+v] }

// Total returns the sum over unordered pairs.
func (m *TrafficMatrix) Total() float64 {
	var s float64
	for u := 0; u < m.n; u++ {
		for v := u + 1; v < m.n; v++ {
			s += m.w[u*m.n+v]
		}
	}
	return s
}

// PairWeights flattens the upper triangle into (pairs, weights) slices,
// ordered lexicographically.
func (m *TrafficMatrix) PairWeights() ([]PairKey, []float64) {
	pairs := make([]PairKey, 0, m.n*(m.n-1)/2)
	weights := make([]float64, 0, cap(pairs))
	for u := 0; u < m.n; u++ {
		for v := u + 1; v < m.n; v++ {
			pairs = append(pairs, MakePairKey(u, v))
			weights = append(weights, m.w[u*m.n+v])
		}
	}
	return pairs, weights
}

// Gini returns the Gini coefficient of the pair-weight distribution, the
// spatial-skew statistic referenced in the paper's workload discussion.
func (m *TrafficMatrix) Gini() float64 {
	_, w := m.PairWeights()
	return stats.Gini(w)
}

// SkewedMatrix synthesizes a skewed rack-to-rack demand matrix in the style
// of the Microsoft/ProjecToR distribution used by the paper: rack
// popularities are log-normal (heavy tail), pair weight is the product of
// endpoint popularities, and nHot randomly chosen "elephant" pairs receive a
// strong multiplicative boost. The result has high spatial skew and no
// temporal structure whatsoever (temporal structure only arises from how a
// trace is sampled; see SampleIID).
func SkewedMatrix(n int, sigma float64, nHot int, boost float64, seed uint64) *TrafficMatrix {
	if sigma < 0 || nHot < 0 || boost < 1 {
		panic("trace: SkewedMatrix invalid parameters")
	}
	r := stats.NewRand(seed)
	pop := make([]float64, n)
	for i := range pop {
		pop[i] = math.Exp(sigma * r.NormFloat64())
	}
	m := NewTrafficMatrix(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			m.Set(u, v, pop[u]*pop[v])
		}
	}
	for h := 0; h < nHot; h++ {
		u := r.Intn(n)
		v := r.Intn(n)
		for u == v {
			v = r.Intn(n)
		}
		m.Set(u, v, m.At(u, v)*boost)
	}
	return m
}

// SampleIID draws count requests i.i.d. from the matrix's pair distribution
// — exactly the construction the paper applies to the Microsoft data set
// ("we sample from this distribution i.i.d.", §3.1).
func (m *TrafficMatrix) SampleIID(count int, seed uint64) *Trace {
	s, err := NewIIDStream(m, count, seed, "")
	if err != nil {
		panic(err) // unreachable for count >= 0
	}
	return Collect(s)
}
