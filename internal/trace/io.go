package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSV format: a header line "src,dst" followed by one "u,v" line per
// request. Binary format: magic "OBMT", uint32 version, uint32 numRacks,
// uint64 count, then count little-endian (int32, int32) pairs.

const (
	binaryMagic   = "OBMT"
	binaryVersion = 1
)

// WriteCSV writes the trace in CSV form.
func WriteCSV(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# racks=%d name=%s\nsrc,dst\n", t.NumRacks, t.Name); err != nil {
		return err
	}
	for _, r := range t.Reqs {
		if _, err := fmt.Fprintf(bw, "%d,%d\n", r.Src, r.Dst); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteCSVStream drains s (resetting it first) straight into w in CSV
// form, chunk by chunk — the whole trace is never materialized, so a
// stream of any length writes under O(1) memory. By the stream contract
// the output is byte-identical to WriteCSV over Collect(s).
func WriteCSVStream(w io.Writer, s Stream) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# racks=%d name=%s\nsrc,dst\n", s.NumRacks(), s.Name()); err != nil {
		return err
	}
	s.Reset()
	var buf [4096]Request
	seen := 0
	for {
		n := s.Next(buf[:])
		if n == 0 {
			break
		}
		seen += n
		for _, r := range buf[:n] {
			if _, err := fmt.Fprintf(bw, "%d,%d\n", r.Src, r.Dst); err != nil {
				return err
			}
		}
	}
	if seen != s.Len() {
		return fmt.Errorf("trace: stream %q produced %d requests, declared %d", s.Name(), seen, s.Len())
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV. The "# racks=… name=…"
// comment is optional; if absent, NumRacks is inferred as max index + 1.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	t := &Trace{}
	maxIdx := int32(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			for _, field := range strings.Fields(line[1:]) {
				if v, ok := strings.CutPrefix(field, "racks="); ok {
					n, err := strconv.Atoi(v)
					if err != nil {
						return nil, fmt.Errorf("trace: line %d: bad racks= value %q", lineNo, v)
					}
					t.NumRacks = n
				} else if v, ok := strings.CutPrefix(field, "name="); ok {
					t.Name = v
				}
			}
			continue
		}
		if line == "src,dst" {
			continue
		}
		a, b, ok := strings.Cut(line, ",")
		if !ok {
			return nil, fmt.Errorf("trace: line %d: malformed request %q", lineNo, line)
		}
		u, err := strconv.Atoi(strings.TrimSpace(a))
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad src %q", lineNo, a)
		}
		v, err := strconv.Atoi(strings.TrimSpace(b))
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad dst %q", lineNo, b)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("trace: line %d: negative rack index", lineNo)
		}
		if u == v {
			return nil, fmt.Errorf("trace: line %d: self-loop request at %d", lineNo, u)
		}
		t.Reqs = append(t.Reqs, Request{Src: int32(u), Dst: int32(v)})
		if int32(u) > maxIdx {
			maxIdx = int32(u)
		}
		if int32(v) > maxIdx {
			maxIdx = int32(v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t.NumRacks == 0 {
		t.NumRacks = int(maxIdx) + 1
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteBinary writes the trace in the compact binary format.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint32(hdr[0:], binaryVersion)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(t.NumRacks))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(t.Reqs)))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, r := range t.Reqs {
		binary.LittleEndian.PutUint32(buf[0:], uint32(r.Src))
		binary.LittleEndian.PutUint32(buf[4:], uint32(r.Dst))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteBinaryStream drains s (resetting it first) straight into w in the
// compact binary format, chunk by chunk under O(1) memory. The request
// count every Stream knows a priori (Len) goes into the header up front,
// so the output is byte-identical to WriteBinary over Collect(s).
func WriteBinaryStream(w io.Writer, s Stream) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint32(hdr[0:], binaryVersion)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(s.NumRacks()))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(s.Len()))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	s.Reset()
	var (
		reqs [4096]Request
		rec  [8]byte
		seen int
	)
	for {
		n := s.Next(reqs[:])
		if n == 0 {
			break
		}
		seen += n
		for _, r := range reqs[:n] {
			binary.LittleEndian.PutUint32(rec[0:], uint32(r.Src))
			binary.LittleEndian.PutUint32(rec[4:], uint32(r.Dst))
			if _, err := bw.Write(rec[:]); err != nil {
				return err
			}
		}
	}
	if seen != s.Len() {
		return fmt.Errorf("trace: stream %q produced %d requests, declared %d", s.Name(), seen, s.Len())
	}
	return bw.Flush()
}

// ReadBinary parses a trace written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:]); v != binaryVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	t := &Trace{NumRacks: int(binary.LittleEndian.Uint32(hdr[4:]))}
	count := binary.LittleEndian.Uint64(hdr[8:])
	const maxReasonable = 1 << 33
	if count > maxReasonable {
		return nil, fmt.Errorf("trace: implausible request count %d", count)
	}
	t.Reqs = make([]Request, count)
	buf := make([]byte, 8)
	for i := range t.Reqs {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("trace: reading request %d: %w", i, err)
		}
		t.Reqs[i] = Request{
			Src: int32(binary.LittleEndian.Uint32(buf[0:])),
			Dst: int32(binary.LittleEndian.Uint32(buf[4:])),
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
