// Package trace provides the workload substrate: request/trace types,
// synthetic workload generators standing in for the paper's Facebook and
// Microsoft datacenter traces, trace file I/O, and the complexity statistics
// (spatial skew, temporal locality) that explain the algorithms' relative
// performance in the evaluation.
//
// Pairs have three interchangeable representations: (u,v) endpoints, the
// canonical PairKey (u<<32|v with u < v), and the dense PairID — a
// row-major int32 index over the n·(n−1)/2 unordered pairs of a fixed
// n-rack universe. PairID is what lets every per-pair table on the request
// hot path be a flat array; PairIndex translates between the three, and
// Compiled pre-resolves a whole trace to (PairID, u, v, distance) tuples
// so replays do no per-request work. PairID order equals PairKey order, a
// property the algorithms' deterministic tie-breaks rely on.
//
// Traces exist in two regimes. Materialized: Trace holds the raw requests
// and Compiled the pre-resolved tuples, both O(T) in memory. Streaming:
// Stream produces raw requests in caller-sized batches from resumable
// generator state, and Source compiles them chunk by chunk against the
// metric (NewSource), so replaying a 10⁸-request workload holds O(chunk)
// requests. Every generator is a Stream; the materialized constructors are
// Collect over the same stream, and (*Compiled).Source adapts a
// materialized trace back to the streaming interface — one replay path
// subsumes the other, with bit-identical request sequences.
//
// Reproducibility: every generator is parameterized by an explicit seed
// and draws only from stats.Rand, so a (generator, seed) pair denotes one
// exact trace, on any platform and Go version. For streams the contract
// extends along two axes: Reset rewinds to the beginning bit-identically
// (replays across repetitions and b-sweeps reuse one stream), and the
// request sequence is independent of the batch sizes used to read it.
package trace

import (
	"fmt"

	"obm/internal/stats"
)

// Request is one communication request between two racks, identified by
// rack indices. Src != Dst always holds for requests produced by this
// package; the order of Src and Dst is not meaningful (requests are
// unordered pairs in the model).
type Request struct {
	Src, Dst int32
}

// Key returns the canonical unordered-pair key of the request.
func (r Request) Key() PairKey { return MakePairKey(int(r.Src), int(r.Dst)) }

// PairKey is a canonical encoding of an unordered node pair {u, v} with
// u < v: the key is u<<32 | v. It is the item identity used by the paging
// caches inside R-BMA and by all per-pair counters.
type PairKey uint64

// MakePairKey canonicalizes {u, v} into a PairKey. It panics if u == v or
// either is negative.
func MakePairKey(u, v int) PairKey {
	if u == v {
		panic(fmt.Sprintf("trace: pair with identical endpoints %d", u))
	}
	if u < 0 || v < 0 {
		panic(fmt.Sprintf("trace: negative endpoint in pair {%d,%d}", u, v))
	}
	if u > v {
		u, v = v, u
	}
	return PairKey(uint64(u)<<32 | uint64(v))
}

// Endpoints returns the pair's endpoints with u < v.
func (k PairKey) Endpoints() (u, v int) {
	return int(k >> 32), int(k & 0xffffffff)
}

// Other returns the endpoint of the pair different from w. It panics if w is
// not an endpoint.
func (k PairKey) Other(w int) int {
	u, v := k.Endpoints()
	switch w {
	case u:
		return v
	case v:
		return u
	}
	panic(fmt.Sprintf("trace: node %d not an endpoint of pair {%d,%d}", w, u, v))
}

// String renders the pair as "{u,v}".
func (k PairKey) String() string {
	u, v := k.Endpoints()
	return fmt.Sprintf("{%d,%d}", u, v)
}

// Trace is a finite request sequence over NumRacks racks.
type Trace struct {
	Name     string
	NumRacks int
	Reqs     []Request
}

// Len returns the number of requests.
func (t *Trace) Len() int { return len(t.Reqs) }

// Validate checks that every request references racks in range and has
// distinct endpoints.
func (t *Trace) Validate() error {
	if t.NumRacks < 2 {
		return fmt.Errorf("trace %q: NumRacks = %d, need >= 2", t.Name, t.NumRacks)
	}
	for i, r := range t.Reqs {
		if r.Src < 0 || int(r.Src) >= t.NumRacks || r.Dst < 0 || int(r.Dst) >= t.NumRacks {
			return fmt.Errorf("trace %q: request %d = (%d,%d) out of range [0,%d)",
				t.Name, i, r.Src, r.Dst, t.NumRacks)
		}
		if r.Src == r.Dst {
			return fmt.Errorf("trace %q: request %d is a self-loop at %d", t.Name, i, r.Src)
		}
	}
	return nil
}

// Prefix returns a shallow copy of the trace truncated to the first n
// requests (or the whole trace if n exceeds its length).
func (t *Trace) Prefix(n int) *Trace {
	if n > len(t.Reqs) {
		n = len(t.Reqs)
	}
	return &Trace{Name: t.Name, NumRacks: t.NumRacks, Reqs: t.Reqs[:n]}
}

// Shuffled returns a copy of the trace with requests in random order.
// Shuffling destroys temporal structure while preserving the spatial
// distribution — the comparison used by the temporal-complexity statistic.
func (t *Trace) Shuffled(seed uint64) *Trace {
	r := stats.NewRand(seed)
	reqs := append([]Request(nil), t.Reqs...)
	r.Shuffle(len(reqs), func(i, j int) { reqs[i], reqs[j] = reqs[j], reqs[i] })
	return &Trace{Name: t.Name + "-shuffled", NumRacks: t.NumRacks, Reqs: reqs}
}

// PairCounts returns the request count per pair.
func (t *Trace) PairCounts() map[PairKey]int {
	c := make(map[PairKey]int)
	for _, r := range t.Reqs {
		c[r.Key()]++
	}
	return c
}
