package trace

import (
	"fmt"
	"sync"
)

// PairID is a dense row-major index over the unordered rack pairs of an
// n-rack universe: pair {u, v} with u < v has
//
//	id = u·(2n−u−1)/2 + (v−u−1),
//
// enumerating (0,1), (0,2), …, (0,n−1), (1,2), … exactly like
// pairFromIndex. PairID order therefore coincides with PairKey order, so
// "smallest pair" tie-breaks are interchangeable between the two
// representations — a property the seed-reproducibility contract of the
// online algorithms relies on.
//
// The dense index is what lets the request hot path (paging caches,
// per-pair counters, matching incidence) run on flat arrays instead of hash
// maps: the pair universe has exactly n·(n−1)/2 elements, known up front.
type PairID int32

// NoPair is the sentinel for "no pair" in PairID-indexed tables.
const NoPair PairID = -1

// NumPairs returns the size of the unordered-pair universe over n nodes.
func NumPairs(n int) int { return n * (n - 1) / 2 }

// PairIndex translates between pair representations for a fixed universe of
// n racks: (u,v) endpoints, canonical PairKey, and dense PairID. The
// endpoint tables make ID→endpoints a single array read, which is what the
// eviction paths of the online algorithms need. A PairIndex is immutable
// and safe for concurrent use.
type PairIndex struct {
	n        int
	epU, epV []int32 // endpoints per PairID, epU[id] < epV[id]
}

// NewPairIndex builds the index for n racks. It panics if n < 2.
func NewPairIndex(n int) *PairIndex {
	if n < 2 {
		panic(fmt.Sprintf("trace: NewPairIndex requires n >= 2, got %d", n))
	}
	np := NumPairs(n)
	x := &PairIndex{n: n, epU: make([]int32, np), epV: make([]int32, np)}
	id := 0
	for u := 0; u < n-1; u++ {
		for v := u + 1; v < n; v++ {
			x.epU[id] = int32(u)
			x.epV[id] = int32(v)
			id++
		}
	}
	return x
}

var pairIndexCache sync.Map // n -> *PairIndex

// SharedPairIndex returns a process-wide shared index for n racks,
// constructing it on first use. Algorithm instances use this so that
// repeated construction (one instance per repetition in the experiment
// harness) does not re-allocate the O(n²) endpoint tables.
func SharedPairIndex(n int) *PairIndex {
	if x, ok := pairIndexCache.Load(n); ok {
		return x.(*PairIndex)
	}
	x, _ := pairIndexCache.LoadOrStore(n, NewPairIndex(n))
	return x.(*PairIndex)
}

// N returns the number of racks.
func (x *PairIndex) N() int { return x.n }

// NumPairs returns the universe size n·(n−1)/2.
func (x *PairIndex) NumPairs() int { return len(x.epU) }

// ID canonicalizes {u, v} into its dense PairID. Like MakePairKey it panics
// if u == v or either endpoint is out of range.
func (x *PairIndex) ID(u, v int) PairID {
	if u > v {
		u, v = v, u
	}
	if u == v {
		panic(fmt.Sprintf("trace: pair with identical endpoints %d", u))
	}
	if u < 0 || v >= x.n {
		panic(fmt.Sprintf("trace: pair {%d,%d} out of range [0,%d)", u, v, x.n))
	}
	return PairID(u*(2*x.n-u-1)/2 + (v - u - 1))
}

// IDOfKey converts a canonical PairKey to its dense PairID.
func (x *PairIndex) IDOfKey(k PairKey) PairID {
	u, v := k.Endpoints()
	return PairID(u*(2*x.n-u-1)/2 + (v - u - 1))
}

// Endpoints returns the pair's endpoints with u < v.
func (x *PairIndex) Endpoints(id PairID) (u, v int) {
	return int(x.epU[id]), int(x.epV[id])
}

// Other returns the endpoint of pair id different from w; it is w's cache
// item for the pair in the per-node paging reduction. The result is
// unspecified if w is not an endpoint of id.
func (x *PairIndex) Other(id PairID, w int) int {
	if int(x.epU[id]) == w {
		return int(x.epV[id])
	}
	return int(x.epU[id])
}

// Key returns the canonical PairKey of pair id.
func (x *PairIndex) Key(id PairID) PairKey {
	return PairKey(uint64(x.epU[id])<<32 | uint64(x.epV[id]))
}
