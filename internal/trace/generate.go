package trace

import "fmt"

// FacebookParams controls the Facebook-style synthetic generator. The
// generator reproduces the two trace properties the paper's evaluation
// hinges on (§3.1, citing Avin et al.): spatial skew (a Zipf distribution
// over rack pairs) and temporal structure (a bounded working set of
// currently-active pairs plus Markov-modulated bursts that repeat the
// previous pair).
//
// Mechanics per request:
//  1. If the burst chain is ON, repeat the previous pair.
//  2. Otherwise, with probability WorkingSetProb draw from the current
//     working set (uniformly), else draw fresh from the global Zipf-over-
//     pairs distribution.
//  3. Each request renews one working-set slot with probability ChurnProb
//     (replacing a uniformly chosen slot with a fresh global draw).
type FacebookParams struct {
	Racks          int     // number of racks (paper: 100)
	Requests       int     // trace length
	ZipfSkew       float64 // spatial skew of the global pair distribution
	WorkingSet     int     // number of concurrently active pairs
	WorkingSetProb float64 // P(draw from working set) when not bursting
	ChurnProb      float64 // P(renew one working-set slot per request)
	BurstProb      float64 // stationary ON probability of the burst chain
	BurstLen       float64 // expected burst length (requests)
	Seed           uint64
	Name           string
}

// Validate reports whether the parameters are usable.
func (p *FacebookParams) Validate() error {
	switch {
	case p.Racks < 2:
		return fmt.Errorf("trace: FacebookParams.Racks = %d, need >= 2", p.Racks)
	case p.Requests < 0:
		return fmt.Errorf("trace: FacebookParams.Requests = %d, need >= 0", p.Requests)
	case p.ZipfSkew < 0:
		return fmt.Errorf("trace: FacebookParams.ZipfSkew = %v, need >= 0", p.ZipfSkew)
	case p.WorkingSet < 1:
		return fmt.Errorf("trace: FacebookParams.WorkingSet = %d, need >= 1", p.WorkingSet)
	case p.WorkingSetProb < 0 || p.WorkingSetProb > 1:
		return fmt.Errorf("trace: FacebookParams.WorkingSetProb = %v, need in [0,1]", p.WorkingSetProb)
	case p.ChurnProb < 0 || p.ChurnProb > 1:
		return fmt.Errorf("trace: FacebookParams.ChurnProb = %v, need in [0,1]", p.ChurnProb)
	case p.BurstProb < 0 || p.BurstProb >= 1:
		return fmt.Errorf("trace: FacebookParams.BurstProb = %v, need in [0,1)", p.BurstProb)
	case p.BurstLen < 1:
		return fmt.Errorf("trace: FacebookParams.BurstLen = %v, need >= 1", p.BurstLen)
	}
	return nil
}

// FacebookStyle generates a synthetic trace with the given parameters. It
// is the materialized form of NewFacebookStream: the stream is drained into
// a Trace, so both yield bit-identical request sequences.
func FacebookStyle(p FacebookParams) (*Trace, error) {
	s, err := NewFacebookStream(p)
	if err != nil {
		return nil, err
	}
	return Collect(s), nil
}

// pairFromIndex maps a linear index in [0, n(n-1)/2) to the unordered pair
// it denotes, enumerating pairs (0,1), (0,2), …, (0,n-1), (1,2), ….
func pairFromIndex(idx, n int) (int, int) {
	u := 0
	rowLen := n - 1
	for idx >= rowLen {
		idx -= rowLen
		u++
		rowLen--
	}
	return u, u + 1 + idx
}

// Cluster identifies one of the paper's three Facebook workload presets.
type Cluster int

const (
	// Database: SQL-serving cluster — strong spatial skew, pronounced
	// temporal locality with a small working set.
	Database Cluster = iota
	// WebService: web servers — flatter spatial distribution, larger and
	// faster-churning working set.
	WebService
	// Hadoop: batch processing — long bursty flows (heavy temporal
	// structure) over a moderately skewed spatial distribution.
	Hadoop
)

// String returns the preset name.
func (c Cluster) String() string {
	switch c {
	case Database:
		return "facebook-database"
	case WebService:
		return "facebook-webservice"
	case Hadoop:
		return "facebook-hadoop"
	}
	return fmt.Sprintf("Cluster(%d)", int(c))
}

// FacebookPreset returns the generator parameters for one of the three
// Facebook cluster presets at the given scale. Request counts default to
// the x-axis extents of the paper's figures (3.5e5, 4e5, 1.85e5) and are
// overridable by the caller after construction.
func FacebookPreset(c Cluster, racks int, seed uint64) FacebookParams {
	p := FacebookParams{
		Racks: racks,
		Seed:  seed,
		Name:  c.String(),
	}
	switch c {
	case Database:
		p.Requests = 350000
		p.ZipfSkew = 1.25
		p.WorkingSet = 3 * racks
		p.WorkingSetProb = 0.75
		p.ChurnProb = 0.002
		p.BurstProb = 0.25
		p.BurstLen = 12
	case WebService:
		p.Requests = 400000
		p.ZipfSkew = 0.90
		p.WorkingSet = 6 * racks
		p.WorkingSetProb = 0.60
		p.ChurnProb = 0.01
		p.BurstProb = 0.15
		p.BurstLen = 6
	case Hadoop:
		p.Requests = 185000
		p.ZipfSkew = 1.05
		p.WorkingSet = 2 * racks
		p.WorkingSetProb = 0.70
		p.ChurnProb = 0.004
		p.BurstProb = 0.45
		p.BurstLen = 40
	default:
		panic(fmt.Sprintf("trace: unknown cluster %d", int(c)))
	}
	return p
}

// MicrosoftStyle generates the paper's Microsoft workload: count i.i.d.
// samples from a skewed synthetic rack-to-rack traffic matrix over n racks
// (paper: 50 racks, 1.75e6 requests). The trace has spatial skew but, by
// construction, no temporal structure.
func MicrosoftStyle(n, count int, seed uint64) *Trace {
	s, err := NewMicrosoftStream(n, count, seed)
	if err != nil {
		panic(err) // matches the historical behavior: bad n panicked in SkewedMatrix
	}
	return Collect(s)
}

// Uniform generates count requests drawn uniformly at random from all rack
// pairs: the unstructured baseline workload (worst case for demand-aware
// reconfiguration).
func Uniform(n, count int, seed uint64) *Trace {
	s, err := NewUniformStream(n, count, seed)
	if err != nil {
		panic(err) // matches the historical behavior: bad n panicked in Intn
	}
	return Collect(s)
}

// PhaseShift generates a workload whose communication pattern changes
// abruptly between phases: the trace is divided into `phases` equal
// segments, each an independent skewed i.i.d. pattern (fresh SkewedMatrix).
// Static offline matchings and no-evict schemes straddle the shifts badly;
// adaptive online algorithms re-converge — the scenario behind the paper's
// motivation for *dynamic* reconfiguration.
func PhaseShift(n, count, phases int, seed uint64) (*Trace, error) {
	s, err := NewPhaseShiftStream(n, count, phases, seed)
	if err != nil {
		return nil, err
	}
	return Collect(s), nil
}

// Permutation generates count requests that cycle through a fixed random
// perfect matching of racks: the ideal workload for a reconfigurable
// network (every rack talks to exactly one partner). n must be even.
func Permutation(n, count int, seed uint64) *Trace {
	s, err := NewPermutationStream(n, count, seed)
	if err != nil {
		panic(err) // matches the historical behavior: odd n panicked here
	}
	return Collect(s)
}
