package trace

import (
	"fmt"
	"math"

	"obm/internal/stats"
)

// This file holds the scenario-grid workload families that go beyond the
// paper's evaluation: diurnal load swings, migrating hotspots and
// multi-tenant overlays. All are resumable Streams obeying the same
// seed-reproducibility contract as the paper-era generators.

// DiurnalParams controls the diurnal load-swing generator: traffic blends
// between a strongly skewed "peak" pair distribution and a much flatter
// "off-hours" one, following a sinusoidal day cycle of Period requests.
// Demand-aware algorithms profit at the peaks and must not thrash through
// the troughs — the classic datacenter day/night pattern.
type DiurnalParams struct {
	Racks    int
	Requests int
	Seed     uint64
	Period   int     // requests per day cycle; <= 0 defaults to Requests/4
	PeakSkew float64 // Zipf exponent of the daytime distribution (default 1.3)
	OffSkew  float64 // Zipf exponent of the nighttime distribution (default 0.3)
	Name     string
}

func (p *DiurnalParams) withDefaults() DiurnalParams {
	q := *p
	if q.Period <= 0 {
		q.Period = q.Requests / 4
		if q.Period < 1 {
			q.Period = 1
		}
	}
	if q.PeakSkew == 0 {
		q.PeakSkew = 1.3
	}
	if q.OffSkew == 0 {
		q.OffSkew = 0.3
	}
	if q.Name == "" {
		q.Name = fmt.Sprintf("diurnal(n=%d,period=%d)", q.Racks, q.Period)
	}
	return q
}

// Validate reports whether the parameters are usable.
func (p *DiurnalParams) Validate() error {
	switch {
	case p.Racks < 2:
		return fmt.Errorf("trace: DiurnalParams.Racks = %d, need >= 2", p.Racks)
	case p.Requests < 0:
		return fmt.Errorf("trace: DiurnalParams.Requests = %d, need >= 0", p.Requests)
	case p.PeakSkew < 0 || p.OffSkew < 0:
		return fmt.Errorf("trace: DiurnalParams skews must be >= 0")
	}
	return nil
}

type diurnalStream struct {
	p         DiurnalParams
	r         *stats.Rand
	peak, off *stats.Zipf
	perm      []int
	pos       int
}

// NewDiurnalStream builds the diurnal load-swing stream. Both distributions
// are Zipf over one shared random permutation of the pair universe, so the
// peak hotspots are a subset of the off-hours mass rather than disjoint.
func NewDiurnalStream(p DiurnalParams) (Stream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	q := p.withDefaults()
	s := &diurnalStream{
		p:    q,
		r:    stats.NewRand(q.Seed),
		peak: stats.NewZipf(NumPairs(q.Racks), q.PeakSkew),
		off:  stats.NewZipf(NumPairs(q.Racks), q.OffSkew),
	}
	s.Reset()
	return s, nil
}

func (s *diurnalStream) Name() string  { return s.p.Name }
func (s *diurnalStream) NumRacks() int { return s.p.Racks }
func (s *diurnalStream) Len() int      { return s.p.Requests }

func (s *diurnalStream) Reset() {
	s.r.Seed(s.p.Seed)
	s.perm = s.r.Perm(NumPairs(s.p.Racks))
	s.pos = 0
}

func (s *diurnalStream) Next(buf []Request) int {
	n := 0
	for n < len(buf) && s.pos < s.p.Requests {
		// Peak intensity: 0 at midnight, 1 at noon, sinusoidal in between.
		phase := 2 * math.Pi * float64(s.pos%s.p.Period) / float64(s.p.Period)
		intensity := 0.5 - 0.5*math.Cos(phase)
		var rank int
		if s.r.Bool(intensity) {
			rank = s.peak.Sample(s.r)
		} else {
			rank = s.off.Sample(s.r)
		}
		u, v := pairFromIndex(s.perm[rank], s.p.Racks)
		buf[n] = Request{Src: int32(u), Dst: int32(v)}
		s.pos++
		n++
	}
	return n
}

// HotspotParams controls the hotspot-migration generator: a small set of
// elephant pairs carries most of the traffic, and the set drifts — every
// MigrateEvery requests one hotspot is retired and a fresh random pair
// becomes hot. Online algorithms must track the moving hotspots; static
// matchings decay as the set walks away from them.
type HotspotParams struct {
	Racks        int
	Requests     int
	Seed         uint64
	Hotspots     int     // size of the hot set (default 8)
	HotProb      float64 // P(request hits the hot set) (default 0.8)
	MigrateEvery int     // requests between single-hotspot migrations (default 5000)
	Name         string
}

func (p *HotspotParams) withDefaults() HotspotParams {
	q := *p
	if q.Hotspots == 0 {
		q.Hotspots = 8
	}
	if q.HotProb == 0 {
		q.HotProb = 0.8
	}
	if q.MigrateEvery == 0 {
		q.MigrateEvery = 5000
	}
	if q.Name == "" {
		q.Name = fmt.Sprintf("hotspot(n=%d,k=%d)", q.Racks, q.Hotspots)
	}
	return q
}

// Validate reports whether the parameters are usable.
func (p *HotspotParams) Validate() error {
	q := p.withDefaults()
	switch {
	case q.Racks < 2:
		return fmt.Errorf("trace: HotspotParams.Racks = %d, need >= 2", q.Racks)
	case q.Requests < 0:
		return fmt.Errorf("trace: HotspotParams.Requests = %d, need >= 0", q.Requests)
	case q.Hotspots < 1:
		return fmt.Errorf("trace: HotspotParams.Hotspots = %d, need >= 1", q.Hotspots)
	case q.HotProb < 0 || q.HotProb > 1:
		return fmt.Errorf("trace: HotspotParams.HotProb = %v, need in [0,1]", q.HotProb)
	case q.MigrateEvery < 1:
		return fmt.Errorf("trace: HotspotParams.MigrateEvery = %d, need >= 1", q.MigrateEvery)
	}
	return nil
}

type hotspotStream struct {
	p   HotspotParams
	r   *stats.Rand
	hot []pairUV
	pos int
}

// NewHotspotStream builds the hotspot-migration stream.
func NewHotspotStream(p HotspotParams) (Stream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	q := p.withDefaults()
	s := &hotspotStream{p: q, r: stats.NewRand(q.Seed), hot: make([]pairUV, q.Hotspots)}
	s.Reset()
	return s, nil
}

func (s *hotspotStream) Name() string  { return s.p.Name }
func (s *hotspotStream) NumRacks() int { return s.p.Racks }
func (s *hotspotStream) Len() int      { return s.p.Requests }

func (s *hotspotStream) drawPair() pairUV {
	u := s.r.Intn(s.p.Racks)
	v := s.r.Intn(s.p.Racks)
	for u == v {
		v = s.r.Intn(s.p.Racks)
	}
	return pairUV{u, v}
}

func (s *hotspotStream) Reset() {
	s.r.Seed(s.p.Seed)
	for i := range s.hot {
		s.hot[i] = s.drawPair()
	}
	s.pos = 0
}

func (s *hotspotStream) Next(buf []Request) int {
	n := 0
	for n < len(buf) && s.pos < s.p.Requests {
		if s.pos > 0 && s.pos%s.p.MigrateEvery == 0 {
			s.hot[s.r.Intn(len(s.hot))] = s.drawPair()
		}
		var cur pairUV
		if s.r.Bool(s.p.HotProb) {
			cur = s.hot[s.r.Intn(len(s.hot))]
		} else {
			cur = s.drawPair()
		}
		buf[n] = Request{Src: int32(cur.u), Dst: int32(cur.v)}
		s.pos++
		n++
	}
	return n
}

// TenantMixParams controls the multi-tenant overlay generator: the fabric
// is partitioned into Tenants contiguous rack groups, each running its own
// skewed (Zipf-over-pairs, private permutation) workload; per request a
// tenant is chosen from a Zipf distribution over tenants, and with
// probability CrossProb the request instead crosses tenant boundaries
// uniformly. Models consolidation of many independent workloads onto one
// reconfigurable fabric.
type TenantMixParams struct {
	Racks      int
	Requests   int
	Seed       uint64
	Tenants    int     // number of tenants (default 4); needs Racks >= 2·Tenants
	TenantSkew float64 // Zipf exponent over tenants (default 1.0)
	PairSkew   float64 // Zipf exponent of each tenant's pair distribution (default 1.2)
	CrossProb  float64 // P(request crosses tenant boundaries) (default 0.05)
	Name       string
}

func (p *TenantMixParams) withDefaults() TenantMixParams {
	q := *p
	if q.Tenants == 0 {
		q.Tenants = 4
	}
	if q.TenantSkew == 0 {
		q.TenantSkew = 1.0
	}
	if q.PairSkew == 0 {
		q.PairSkew = 1.2
	}
	if q.Name == "" {
		q.Name = fmt.Sprintf("tenant-mix(n=%d,t=%d)", q.Racks, q.Tenants)
	}
	return q
}

// Validate reports whether the parameters are usable.
func (p *TenantMixParams) Validate() error {
	q := p.withDefaults()
	switch {
	case q.Tenants < 1:
		return fmt.Errorf("trace: TenantMixParams.Tenants = %d, need >= 1", q.Tenants)
	case q.Racks < 2*q.Tenants:
		return fmt.Errorf("trace: TenantMixParams.Racks = %d, need >= 2·Tenants = %d", q.Racks, 2*q.Tenants)
	case q.Requests < 0:
		return fmt.Errorf("trace: TenantMixParams.Requests = %d, need >= 0", q.Requests)
	case q.TenantSkew < 0 || q.PairSkew < 0:
		return fmt.Errorf("trace: TenantMixParams skews must be >= 0")
	case q.CrossProb < 0 || q.CrossProb > 1:
		return fmt.Errorf("trace: TenantMixParams.CrossProb = %v, need in [0,1]", q.CrossProb)
	}
	return nil
}

// tenant is one rack group with its private skewed pair distribution.
type tenant struct {
	lo, hi int // rack range [lo, hi)
	zipf   *stats.Zipf
	perm   []int
}

type tenantMixStream struct {
	p       TenantMixParams
	r       *stats.Rand
	tenants []tenant
	tzipf   *stats.Zipf
	pos     int
}

// NewTenantMixStream builds the multi-tenant overlay stream.
func NewTenantMixStream(p TenantMixParams) (Stream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	q := p.withDefaults()
	s := &tenantMixStream{
		p:       q,
		r:       stats.NewRand(q.Seed),
		tenants: make([]tenant, q.Tenants),
		tzipf:   stats.NewZipf(q.Tenants, q.TenantSkew),
	}
	// Rack-range partition and per-tenant Zipf tables draw nothing from the
	// RNG, so they are built once; only the permutations are re-drawn on
	// Reset.
	per := q.Racks / q.Tenants
	for i := range s.tenants {
		lo := i * per
		hi := lo + per
		if i == q.Tenants-1 {
			hi = q.Racks
		}
		s.tenants[i] = tenant{lo: lo, hi: hi, zipf: stats.NewZipf(NumPairs(hi-lo), q.PairSkew)}
	}
	s.Reset()
	return s, nil
}

func (s *tenantMixStream) Name() string  { return s.p.Name }
func (s *tenantMixStream) NumRacks() int { return s.p.Racks }
func (s *tenantMixStream) Len() int      { return s.p.Requests }

func (s *tenantMixStream) Reset() {
	s.r.Seed(s.p.Seed)
	for i := range s.tenants {
		t := &s.tenants[i]
		t.perm = s.r.Perm(NumPairs(t.hi - t.lo))
	}
	s.pos = 0
}

func (s *tenantMixStream) Next(buf []Request) int {
	n := 0
	for n < len(buf) && s.pos < s.p.Requests {
		var u, v int
		if s.r.Bool(s.p.CrossProb) {
			u = s.r.Intn(s.p.Racks)
			v = s.r.Intn(s.p.Racks)
			for u == v {
				v = s.r.Intn(s.p.Racks)
			}
		} else {
			t := &s.tenants[s.tzipf.Sample(s.r)]
			lu, lv := pairFromIndex(t.perm[t.zipf.Sample(s.r)], t.hi-t.lo)
			u, v = t.lo+lu, t.lo+lv
		}
		buf[n] = Request{Src: int32(u), Dst: int32(v)}
		s.pos++
		n++
	}
	return n
}
