package trace

import (
	"testing"
	"testing/quick"
)

func TestMakePairKeyCanonical(t *testing.T) {
	if MakePairKey(3, 7) != MakePairKey(7, 3) {
		t.Fatal("PairKey must be order-independent")
	}
	u, v := MakePairKey(7, 3).Endpoints()
	if u != 3 || v != 7 {
		t.Fatalf("Endpoints = (%d,%d), want (3,7)", u, v)
	}
}

func TestMakePairKeyPanics(t *testing.T) {
	for _, f := range []func(){
		func() { MakePairKey(4, 4) },
		func() { MakePairKey(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPairKeyOther(t *testing.T) {
	k := MakePairKey(2, 9)
	if k.Other(2) != 9 || k.Other(9) != 2 {
		t.Fatal("Other wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other with non-endpoint should panic")
		}
	}()
	k.Other(5)
}

func TestPairKeyInjective(t *testing.T) {
	if err := quick.Check(func(a, b, c, d uint16) bool {
		u1, v1 := int(a), int(b)
		u2, v2 := int(c), int(d)
		if u1 == v1 || u2 == v2 {
			return true
		}
		k1, k2 := MakePairKey(u1, v1), MakePairKey(u2, v2)
		samePair := (min(u1, v1) == min(u2, v2)) && (max(u1, v1) == max(u2, v2))
		return (k1 == k2) == samePair
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPairKeyString(t *testing.T) {
	if s := MakePairKey(5, 1).String(); s != "{1,5}" {
		t.Fatalf("String = %q", s)
	}
}

func TestValidate(t *testing.T) {
	good := &Trace{NumRacks: 3, Reqs: []Request{{0, 1}, {1, 2}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Trace{
		{NumRacks: 1},
		{NumRacks: 3, Reqs: []Request{{0, 3}}},
		{NumRacks: 3, Reqs: []Request{{-1, 1}}},
		{NumRacks: 3, Reqs: []Request{{2, 2}}},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestPrefix(t *testing.T) {
	tr := &Trace{NumRacks: 4, Reqs: []Request{{0, 1}, {1, 2}, {2, 3}}}
	if p := tr.Prefix(2); p.Len() != 2 {
		t.Fatal("Prefix(2) wrong length")
	}
	if p := tr.Prefix(99); p.Len() != 3 {
		t.Fatal("Prefix beyond length should clamp")
	}
}

func TestShuffledPreservesMultiset(t *testing.T) {
	tr := Uniform(10, 500, 42)
	sh := tr.Shuffled(7)
	a, b := tr.PairCounts(), sh.PairCounts()
	if len(a) != len(b) {
		t.Fatal("shuffle changed pair support")
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("shuffle changed count of %v", k)
		}
	}
}

func TestPairFromIndexBijective(t *testing.T) {
	n := 17
	seen := make(map[PairKey]bool)
	for i := 0; i < n*(n-1)/2; i++ {
		u, v := pairFromIndex(i, n)
		if u < 0 || v <= u || v >= n {
			t.Fatalf("pairFromIndex(%d) = (%d,%d) invalid", i, u, v)
		}
		k := MakePairKey(u, v)
		if seen[k] {
			t.Fatalf("pairFromIndex(%d) duplicates %v", i, k)
		}
		seen[k] = true
	}
}
