package trace

import (
	"math"
	"testing"
)

func TestAutocorrelationIIDFlat(t *testing.T) {
	tr := MicrosoftStyle(20, 60000, 3)
	ac := Autocorrelation(tr, 10)
	// All lags should hover around the same collision probability.
	base := ac[0]
	for lag, v := range ac {
		if math.Abs(v-base) > 0.02 {
			t.Fatalf("lag %d: autocorrelation %v deviates from %v on i.i.d. trace", lag+1, v, base)
		}
	}
}

func TestAutocorrelationBurstyDecays(t *testing.T) {
	p := FacebookPreset(Hadoop, 20, 5)
	p.Requests = 60000
	tr, _ := FacebookStyle(p)
	ac := Autocorrelation(tr, 20)
	if ac[0] <= ac[19]+0.02 {
		t.Fatalf("bursty trace should have elevated lag-1 autocorrelation: %v vs %v", ac[0], ac[19])
	}
}

func TestAutocorrelationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Autocorrelation(&Trace{NumRacks: 2}, 0)
}

func TestInterArrivalsPointMass(t *testing.T) {
	reqs := make([]Request, 10)
	for i := range reqs {
		reqs[i] = Request{0, 1}
	}
	gaps := InterArrivals(&Trace{NumRacks: 2, Reqs: reqs})
	if len(gaps) != 9 {
		t.Fatalf("gaps = %v", gaps)
	}
	for _, g := range gaps {
		if g != 1 {
			t.Fatalf("gap = %d, want 1", g)
		}
	}
}

func TestInterArrivalsNilWhenNoRepeat(t *testing.T) {
	tr := &Trace{NumRacks: 4, Reqs: []Request{{0, 1}, {2, 3}}}
	if gaps := InterArrivals(tr); gaps != nil {
		t.Fatalf("gaps = %v, want nil", gaps)
	}
}

func TestInterArrivalsEmptyTrace(t *testing.T) {
	if gaps := InterArrivals(&Trace{NumRacks: 2}); gaps != nil {
		t.Fatal("empty trace should give nil")
	}
}
