package trace

import (
	"fmt"
	"io"
)

// DefaultChunkSize is the chunk capacity used when a caller does not pick
// one. Large enough to amortize the per-chunk call overhead, small enough
// that per-worker chunk buffers stay in cache.
const DefaultChunkSize = 8192

// CompiledChunk is a reusable fixed-capacity buffer of compiled requests:
// the unit of transfer between a Source and a replay loop. Next fills
// Reqs up to its capacity and re-slices it to the produced count, so one
// chunk is allocated per replay (or per worker) and recycled for the whole
// run — the bounded-memory contract of streamed replay.
type CompiledChunk struct {
	Reqs []CompiledReq
}

// NewChunk returns an empty chunk with the given capacity (DefaultChunkSize
// if size <= 0).
func NewChunk(size int) *CompiledChunk {
	if size <= 0 {
		size = DefaultChunkSize
	}
	return &CompiledChunk{Reqs: make([]CompiledReq, 0, size)}
}

// Source is a stream of compiled requests: a trace generated, resolved
// against the metric, and consumed in fixed-size chunks, so replaying a
// 10⁸-request workload holds O(chunk) requests in memory rather than O(T).
//
// The request sequence is independent of the chunk sizes used to read it,
// Reset rewinds to the beginning bit-identically (sources are resumable
// across repetitions and b-sweeps), and Len is known a priori. A Source is
// not safe for concurrent use; parallel replays each build their own.
type Source interface {
	// Name identifies the workload.
	Name() string
	// NumRacks returns the rack universe size.
	NumRacks() int
	// Len returns the total number of requests the source produces over
	// one pass.
	Len() int
	// Index returns the pair universe the compiled requests refer to.
	Index() *PairIndex
	// Reset rewinds the source to its beginning.
	Reset()
	// Next fills chunk.Reqs up to its capacity with the next compiled
	// requests and returns how many were produced. It returns io.EOF
	// (and n == 0) once the source is exhausted.
	Next(chunk *CompiledChunk) (n int, err error)
}

// streamSource compiles a raw request Stream chunk by chunk against a
// distance oracle: the streaming equivalent of Trace.Compile. Each chunk is
// validated as it is produced, so a malformed generator fails at the first
// bad request instead of poisoning the replay.
type streamSource struct {
	s    Stream
	dist func(u, v int) int
	idx  *PairIndex
	raw  []Request // scratch for the uncompiled chunk, grown to chunk capacity
	pos  int       // requests emitted so far (error reporting)
}

// NewSource wraps a raw request stream into a Source compiling against
// dist, the rack-to-rack distance oracle (typically graph.Metric.Dist).
func NewSource(s Stream, dist func(u, v int) int) (Source, error) {
	if s.NumRacks() < 2 {
		return nil, fmt.Errorf("trace: source %q: NumRacks = %d, need >= 2", s.Name(), s.NumRacks())
	}
	if dist == nil {
		return nil, fmt.Errorf("trace: source %q: nil distance oracle", s.Name())
	}
	src := &streamSource{s: s, dist: dist, idx: SharedPairIndex(s.NumRacks())}
	src.Reset()
	return src, nil
}

func (c *streamSource) Name() string      { return c.s.Name() }
func (c *streamSource) NumRacks() int     { return c.s.NumRacks() }
func (c *streamSource) Len() int          { return c.s.Len() }
func (c *streamSource) Index() *PairIndex { return c.idx }
func (c *streamSource) Reset()            { c.s.Reset(); c.pos = 0 }

func (c *streamSource) Next(chunk *CompiledChunk) (int, error) {
	capN := cap(chunk.Reqs)
	if capN == 0 {
		return 0, fmt.Errorf("trace: source %q: Next with zero-capacity chunk", c.s.Name())
	}
	if cap(c.raw) < capN {
		c.raw = make([]Request, capN)
	}
	n := c.s.Next(c.raw[:capN])
	if n == 0 {
		chunk.Reqs = chunk.Reqs[:0]
		return 0, io.EOF
	}
	chunk.Reqs = chunk.Reqs[:n]
	racks := c.s.NumRacks()
	for i, r := range c.raw[:n] {
		u, v := int(r.Src), int(r.Dst)
		if u < 0 || u >= racks || v < 0 || v >= racks {
			return 0, fmt.Errorf("trace: source %q: request %d = (%d,%d) out of range [0,%d)",
				c.s.Name(), c.pos+i, u, v, racks)
		}
		if u == v {
			return 0, fmt.Errorf("trace: source %q: request %d is a self-loop at %d", c.s.Name(), c.pos+i, u)
		}
		if u > v {
			u, v = v, u
		}
		d := c.dist(u, v)
		if d < 1 {
			return 0, fmt.Errorf("trace: source %q: distance %d for pair {%d,%d}, need >= 1",
				c.s.Name(), d, u, v)
		}
		chunk.Reqs[i] = CompiledReq{ID: c.idx.ID(u, v), U: int32(u), V: int32(v), Dist: int32(d)}
	}
	c.pos += n
	return n, nil
}

// compiledSource adapts a materialized Compiled trace to the Source
// interface: the trivial (already-in-RAM) case, so the streamed replay path
// subsumes the materialized one.
type compiledSource struct {
	c   *Compiled
	pos int
}

// Source adapts the compiled trace to the streaming Source interface.
// Chunks are copied out of the in-memory request slice.
func (c *Compiled) Source() Source { return &compiledSource{c: c} }

func (s *compiledSource) Name() string      { return s.c.Name }
func (s *compiledSource) NumRacks() int     { return s.c.NumRacks }
func (s *compiledSource) Len() int          { return s.c.Len() }
func (s *compiledSource) Index() *PairIndex { return s.c.Index }
func (s *compiledSource) Reset()            { s.pos = 0 }

func (s *compiledSource) Next(chunk *CompiledChunk) (int, error) {
	capN := cap(chunk.Reqs)
	if capN == 0 {
		return 0, fmt.Errorf("trace: source %q: Next with zero-capacity chunk", s.c.Name)
	}
	n := min(capN, len(s.c.Reqs)-s.pos)
	if n == 0 {
		chunk.Reqs = chunk.Reqs[:0]
		return 0, io.EOF
	}
	chunk.Reqs = chunk.Reqs[:n]
	copy(chunk.Reqs, s.c.Reqs[s.pos:s.pos+n])
	s.pos += n
	return n, nil
}

// DrainSource materializes a source into a Compiled trace (resetting it
// first): the inverse of (*Compiled).Source, used by tests to prove the
// chunked and materialized compilation paths agree.
func DrainSource(src Source) (*Compiled, error) {
	src.Reset()
	out := &Compiled{
		Name:     src.Name(),
		NumRacks: src.NumRacks(),
		Index:    src.Index(),
		Reqs:     make([]CompiledReq, 0, src.Len()),
	}
	chunk := NewChunk(0)
	for {
		n, err := src.Next(chunk)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out.Reqs = append(out.Reqs, chunk.Reqs[:n]...)
	}
}
