package trace

import (
	"io"
	"reflect"
	"testing"
)

// streamFamilies enumerates every stream constructor next to the
// materialized generator it must reproduce bit-for-bit (nil for the new
// scenario families, which have no materialized twin).
func streamFamilies(t *testing.T) []struct {
	name   string
	stream func() (Stream, error)
	mat    func() (*Trace, error)
} {
	t.Helper()
	fbParams := FacebookPreset(Database, 20, 7)
	fbParams.Requests = 5000
	m := SkewedMatrix(16, 1.0, 8, 8, 3)
	return []struct {
		name   string
		stream func() (Stream, error)
		mat    func() (*Trace, error)
	}{
		{
			name:   "facebook",
			stream: func() (Stream, error) { return NewFacebookStream(fbParams) },
			mat:    func() (*Trace, error) { return FacebookStyle(fbParams) },
		},
		{
			name:   "uniform",
			stream: func() (Stream, error) { return NewUniformStream(18, 4000, 5) },
			mat:    func() (*Trace, error) { return Uniform(18, 4000, 5), nil },
		},
		{
			name:   "microsoft",
			stream: func() (Stream, error) { return NewMicrosoftStream(16, 4000, 3) },
			mat:    func() (*Trace, error) { return MicrosoftStyle(16, 4000, 3), nil },
		},
		{
			name:   "iid-matrix",
			stream: func() (Stream, error) { return NewIIDStream(m, 3000, 9, "") },
			mat:    func() (*Trace, error) { return m.SampleIID(3000, 9), nil },
		},
		{
			name:   "phase-shift",
			stream: func() (Stream, error) { return NewPhaseShiftStream(14, 4500, 3, 11) },
			mat:    func() (*Trace, error) { return PhaseShift(14, 4500, 3, 11) },
		},
		{
			name:   "permutation",
			stream: func() (Stream, error) { return NewPermutationStream(12, 2000, 13) },
			mat:    func() (*Trace, error) { return Permutation(12, 2000, 13), nil },
		},
		{
			name: "diurnal",
			stream: func() (Stream, error) {
				return NewDiurnalStream(DiurnalParams{Racks: 16, Requests: 4000, Seed: 17})
			},
		},
		{
			name: "hotspot",
			stream: func() (Stream, error) {
				return NewHotspotStream(HotspotParams{Racks: 16, Requests: 4000, Seed: 19, MigrateEvery: 500})
			},
		},
		{
			name: "tenant-mix",
			stream: func() (Stream, error) {
				return NewTenantMixStream(TenantMixParams{Racks: 16, Requests: 4000, Seed: 23})
			},
		},
	}
}

// drainSizes reads the stream to exhaustion with the given batch sizes,
// cycling through them.
func drainSizes(s Stream, sizes ...int) []Request {
	var out []Request
	buf := make([]Request, 8192)
	for i := 0; ; i++ {
		n := s.Next(buf[:sizes[i%len(sizes)]])
		if n == 0 {
			return out
		}
		out = append(out, buf[:n]...)
	}
}

func TestStreamMatchesMaterializedGenerator(t *testing.T) {
	for _, f := range streamFamilies(t) {
		if f.mat == nil {
			continue
		}
		t.Run(f.name, func(t *testing.T) {
			s, err := f.stream()
			if err != nil {
				t.Fatal(err)
			}
			want, err := f.mat()
			if err != nil {
				t.Fatal(err)
			}
			got := Collect(s)
			if got.Name != want.Name || got.NumRacks != want.NumRacks {
				t.Fatalf("stream metadata (%q, %d) != materialized (%q, %d)",
					got.Name, got.NumRacks, want.Name, want.NumRacks)
			}
			if !reflect.DeepEqual(got.Reqs, want.Reqs) {
				t.Fatalf("stream drain differs from materialized generator")
			}
		})
	}
}

func TestStreamChunkSizeIndependence(t *testing.T) {
	for _, f := range streamFamilies(t) {
		t.Run(f.name, func(t *testing.T) {
			s, err := f.stream()
			if err != nil {
				t.Fatal(err)
			}
			whole := drainSizes(s, 8192)
			if len(whole) != s.Len() {
				t.Fatalf("stream produced %d requests, Len() = %d", len(whole), s.Len())
			}
			s.Reset()
			ragged := drainSizes(s, 1, 7, 97, 1024)
			if !reflect.DeepEqual(whole, ragged) {
				t.Fatal("request sequence depends on the batch sizes used to read it")
			}
			if tr := (&Trace{Name: "x", NumRacks: s.NumRacks(), Reqs: whole}); tr.Validate() != nil {
				t.Fatalf("stream produced invalid requests: %v", tr.Validate())
			}
		})
	}
}

func TestStreamResetReproducesSequence(t *testing.T) {
	for _, f := range streamFamilies(t) {
		t.Run(f.name, func(t *testing.T) {
			s, err := f.stream()
			if err != nil {
				t.Fatal(err)
			}
			// Read part of the stream, then Reset mid-flight: the second
			// pass must reproduce the full sequence bit-identically.
			partial := make([]Request, s.Len()/3+1)
			s.Next(partial)
			s.Reset()
			first := drainSizes(s, 4096)
			s.Reset()
			second := drainSizes(s, 4096)
			if !reflect.DeepEqual(first, second) {
				t.Fatal("Reset does not reproduce the stream")
			}
		})
	}
}

func TestSourceMatchesMaterializedCompile(t *testing.T) {
	dist := func(u, v int) int { // any deterministic metric ≥ 1 will do
		if (u+v)%3 == 0 {
			return 4
		}
		return 2
	}
	for _, f := range streamFamilies(t) {
		t.Run(f.name, func(t *testing.T) {
			s, err := f.stream()
			if err != nil {
				t.Fatal(err)
			}
			src, err := NewSource(s, dist)
			if err != nil {
				t.Fatal(err)
			}
			chunked, err := DrainSource(src)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Collect(s).Compile(dist)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(chunked.Reqs, want.Reqs) {
				t.Fatal("chunked compilation differs from Trace.Compile")
			}
			// The materialized adapter must round-trip as well.
			roundTrip, err := DrainSource(want.Source())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(roundTrip.Reqs, want.Reqs) {
				t.Fatal("(*Compiled).Source does not round-trip")
			}
		})
	}
}

func TestSourceEOFAndReset(t *testing.T) {
	s, err := NewUniformStream(10, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSource(s, func(u, v int) int { return 2 })
	if err != nil {
		t.Fatal(err)
	}
	chunk := NewChunk(64)
	total := 0
	for {
		n, err := src.Next(chunk)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != 100 {
		t.Fatalf("source produced %d requests, want 100", total)
	}
	// EOF is sticky until Reset.
	if n, err := src.Next(chunk); err != io.EOF || n != 0 {
		t.Fatalf("post-EOF Next = (%d, %v), want (0, EOF)", n, err)
	}
	src.Reset()
	if n, err := src.Next(chunk); err != nil || n != 64 {
		t.Fatalf("post-Reset Next = (%d, %v), want (64, nil)", n, err)
	}
}

func TestSourceRejectsBadDistance(t *testing.T) {
	s, err := NewUniformStream(10, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSource(s, func(u, v int) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(NewChunk(16)); err == nil {
		t.Fatal("zero distance accepted")
	}
	if _, err := NewSource(s, nil); err == nil {
		t.Fatal("nil distance oracle accepted")
	}
}
