package trace

import "testing"

func TestPairIndexRoundTrip(t *testing.T) {
	for _, n := range []int{2, 3, 7, 40} {
		x := NewPairIndex(n)
		if x.NumPairs() != NumPairs(n) {
			t.Fatalf("n=%d: NumPairs() = %d, want %d", n, x.NumPairs(), NumPairs(n))
		}
		id := PairID(0)
		for u := 0; u < n-1; u++ {
			for v := u + 1; v < n; v++ {
				if got := x.ID(u, v); got != id {
					t.Fatalf("n=%d: ID(%d,%d) = %d, want %d (row-major)", n, u, v, got, id)
				}
				if got := x.ID(v, u); got != id {
					t.Fatalf("n=%d: ID(%d,%d) = %d, want %d (canonicalized)", n, v, u, got, id)
				}
				gu, gv := x.Endpoints(id)
				if gu != u || gv != v {
					t.Fatalf("n=%d: Endpoints(%d) = (%d,%d), want (%d,%d)", n, id, gu, gv, u, v)
				}
				k := MakePairKey(u, v)
				if x.Key(id) != k {
					t.Fatalf("n=%d: Key(%d) = %v, want %v", n, id, x.Key(id), k)
				}
				if x.IDOfKey(k) != id {
					t.Fatalf("n=%d: IDOfKey(%v) = %d, want %d", n, k, x.IDOfKey(k), id)
				}
				if x.Other(id, u) != v || x.Other(id, v) != u {
					t.Fatalf("n=%d: Other(%d) wrong", n, id)
				}
				id++
			}
		}
	}
}

// PairID order must coincide with PairKey order: the algorithms' "smallest
// pair" tie-breaks are expressed in either representation interchangeably.
func TestPairIDOrderMatchesPairKey(t *testing.T) {
	const n = 9
	x := NewPairIndex(n)
	type entry struct {
		id PairID
		k  PairKey
	}
	var prev entry
	for id := 0; id < x.NumPairs(); id++ {
		cur := entry{PairID(id), x.Key(PairID(id))}
		if id > 0 && !(prev.id < cur.id == (prev.k < cur.k)) {
			t.Fatalf("order mismatch between %v and %v", prev, cur)
		}
		prev = cur
	}
}

func TestPairIndexPanics(t *testing.T) {
	x := NewPairIndex(5)
	for _, f := range []func(){
		func() { x.ID(2, 2) },
		func() { x.ID(-1, 3) },
		func() { x.ID(0, 5) },
		func() { NewPairIndex(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSharedPairIndexIsShared(t *testing.T) {
	if SharedPairIndex(17) != SharedPairIndex(17) {
		t.Fatal("SharedPairIndex(17) returned distinct instances")
	}
}

func TestCompile(t *testing.T) {
	tr := &Trace{Name: "t", NumRacks: 4, Reqs: []Request{{Src: 2, Dst: 1}, {Src: 0, Dst: 3}}}
	dist := func(u, v int) int { return u + v }
	ct, err := tr.Compile(dist)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Len() != 2 || ct.NumRacks != 4 {
		t.Fatalf("compiled shape wrong: %+v", ct)
	}
	want := []CompiledReq{
		{ID: ct.Index.ID(1, 2), U: 1, V: 2, Dist: 3},
		{ID: ct.Index.ID(0, 3), U: 0, V: 3, Dist: 3},
	}
	for i, w := range want {
		if ct.Reqs[i] != w {
			t.Errorf("req %d = %+v, want %+v", i, ct.Reqs[i], w)
		}
	}

	bad := &Trace{Name: "bad", NumRacks: 4, Reqs: []Request{{Src: 1, Dst: 1}}}
	if _, err := bad.Compile(dist); err == nil {
		t.Error("Compile accepted a self-loop")
	}
	if _, err := tr.Compile(func(u, v int) int { return 0 }); err == nil {
		t.Error("Compile accepted a zero distance")
	}
}
