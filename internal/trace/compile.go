package trace

import "fmt"

// CompiledReq is one request of a Compiled trace with everything the
// request hot path needs pre-resolved: the dense PairID, both endpoints,
// and the static-network distance ℓ between them.
type CompiledReq struct {
	ID   PairID
	U, V int32 // U < V
	Dist int32
}

// Compiled is a trace pre-resolved against a pair universe and a distance
// oracle: each request carries its (PairID, u, v, dist) tuple so replaying
// the trace — possibly many times, across repetitions and b-sweeps — does
// no per-request canonicalization or metric lookups.
type Compiled struct {
	Name     string
	NumRacks int
	Index    *PairIndex
	Reqs     []CompiledReq
}

// Len returns the number of requests.
func (c *Compiled) Len() int { return len(c.Reqs) }

// Compile pre-resolves the trace against dist, the rack-to-rack distance
// oracle (typically graph.Metric.Dist). It validates the trace first, so a
// compiled trace never contains out-of-range or self-loop requests.
func (t *Trace) Compile(dist func(u, v int) int) (*Compiled, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	idx := SharedPairIndex(t.NumRacks)
	c := &Compiled{
		Name:     t.Name,
		NumRacks: t.NumRacks,
		Index:    idx,
		Reqs:     make([]CompiledReq, len(t.Reqs)),
	}
	for i, r := range t.Reqs {
		u, v := int(r.Src), int(r.Dst)
		if u > v {
			u, v = v, u
		}
		d := dist(u, v)
		if d < 1 {
			return nil, fmt.Errorf("trace %q: distance %d for pair {%d,%d}, need >= 1", t.Name, d, u, v)
		}
		c.Reqs[i] = CompiledReq{ID: idx.ID(u, v), U: int32(u), V: int32(v), Dist: int32(d)}
	}
	return c, nil
}
