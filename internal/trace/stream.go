package trace

import (
	"fmt"

	"obm/internal/stats"
)

// Stream is a resumable synthetic request generator: requests are produced
// in caller-sized batches instead of materialized up front, so a stream of
// any length occupies O(1) memory beyond its generator state.
//
// Streams obey the seed-reproducibility contract: a stream is a pure
// function of its parameters (including the seed), Reset rewinds it to the
// beginning, and the concatenation of Next results is independent of the
// batch sizes used to read it. Draining a stream therefore yields exactly
// the trace the materialized generator of the same family and parameters
// returns: the paper-era constructors (FacebookStyle, Uniform,
// MicrosoftStyle, PhaseShift, Permutation) are all implemented as Collect
// over their stream, and the scenario families (diurnal, hotspot,
// tenant-mix in scenario_streams.go) are streams from the start. The
// contract is what makes replays resumable: a grid job interrupted and
// re-run from its (family, parameters, seed) triple reproduces the same
// requests, so persisted results stay valid (see internal/report).
//
// Streams are not safe for concurrent use; replays that run in parallel
// each build their own stream from the same parameters.
type Stream interface {
	// Name identifies the workload (same convention as Trace.Name).
	Name() string
	// NumRacks returns the rack universe size.
	NumRacks() int
	// Len returns the total number of requests the stream produces over
	// one pass, known a priori for every generator in this package.
	Len() int
	// Reset rewinds the stream to its beginning; the subsequent request
	// sequence is bit-identical to the one after construction.
	Reset()
	// Next fills buf with the next requests and returns how many were
	// produced; 0 means the stream is exhausted.
	Next(buf []Request) int
}

// Collect materializes a stream into a Trace, resetting it first. The
// result is bit-identical for any stream state and independent of the
// internal batch size.
func Collect(s Stream) *Trace {
	s.Reset()
	reqs := make([]Request, 0, s.Len())
	var buf [4096]Request
	for {
		n := s.Next(buf[:])
		if n == 0 {
			break
		}
		reqs = append(reqs, buf[:n]...)
	}
	return &Trace{Name: s.Name(), NumRacks: s.NumRacks(), Reqs: reqs}
}

// pairUV is a generator-internal unordered pair.
type pairUV struct{ u, v int }

// facebookStream is the resumable form of the FacebookStyle generator. The
// per-request loop body is exactly the materialized generator's, so the two
// produce identical sequences for identical parameters.
type facebookStream struct {
	p        FacebookParams
	name     string
	r        *stats.Rand
	zipf     *stats.Zipf
	perm     []int
	ws       []pairUV
	burst    *stats.BurstChain
	prev     pairUV
	havePrev bool
	pos      int
}

// NewFacebookStream returns the streaming form of FacebookStyle(p).
func NewFacebookStream(p FacebookParams) (Stream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	name := p.Name
	if name == "" {
		name = fmt.Sprintf("facebook-style(n=%d,s=%.2f)", p.Racks, p.ZipfSkew)
	}
	s := &facebookStream{
		p:    p,
		name: name,
		r:    stats.NewRand(p.Seed),
		// The Zipf table draws nothing from the RNG, so it is built once.
		zipf:  stats.NewZipf(NumPairs(p.Racks), p.ZipfSkew),
		ws:    make([]pairUV, p.WorkingSet),
		burst: stats.NewBurstChain(p.BurstProb, p.BurstLen),
	}
	s.Reset()
	return s, nil
}

func (s *facebookStream) Name() string  { return s.name }
func (s *facebookStream) NumRacks() int { return s.p.Racks }
func (s *facebookStream) Len() int      { return s.p.Requests }

// Reset redoes the setup draws of the materialized generator in the same
// order: permutation, working-set fill, burst-chain initial state.
func (s *facebookStream) Reset() {
	s.r.Seed(s.p.Seed)
	s.perm = s.r.Perm(NumPairs(s.p.Racks))
	for i := range s.ws {
		u, v := s.drawGlobal()
		s.ws[i] = pairUV{u, v}
	}
	s.burst.Reset(s.r)
	s.prev = pairUV{}
	s.havePrev = false
	s.pos = 0
}

// drawGlobal samples the global Zipf-over-pairs distribution (spread over
// the fabric by the random permutation).
func (s *facebookStream) drawGlobal() (int, int) {
	return pairFromIndex(s.perm[s.zipf.Sample(s.r)], s.p.Racks)
}

func (s *facebookStream) Next(buf []Request) int {
	n := 0
	for n < len(buf) && s.pos < s.p.Requests {
		var cur pairUV
		if s.burst.Step(s.r) && s.havePrev {
			cur = s.prev
		} else if s.r.Bool(s.p.WorkingSetProb) {
			cur = s.ws[s.r.Intn(len(s.ws))]
		} else {
			u, v := s.drawGlobal()
			cur = pairUV{u, v}
		}
		buf[n] = Request{Src: int32(cur.u), Dst: int32(cur.v)}
		s.prev, s.havePrev = cur, true
		if s.r.Bool(s.p.ChurnProb) {
			u, v := s.drawGlobal()
			s.ws[s.r.Intn(len(s.ws))] = pairUV{u, v}
		}
		s.pos++
		n++
	}
	return n
}

// uniformStream is the resumable form of Uniform.
type uniformStream struct {
	n, count int
	seed     uint64
	r        *stats.Rand
	pos      int
}

// NewUniformStream returns the streaming form of Uniform(n, count, seed).
func NewUniformStream(n, count int, seed uint64) (Stream, error) {
	if n < 2 {
		return nil, fmt.Errorf("trace: NewUniformStream requires n >= 2, got %d", n)
	}
	if count < 0 {
		return nil, fmt.Errorf("trace: NewUniformStream requires count >= 0, got %d", count)
	}
	return &uniformStream{n: n, count: count, seed: seed, r: stats.NewRand(seed)}, nil
}

func (s *uniformStream) Name() string  { return fmt.Sprintf("uniform(n=%d)", s.n) }
func (s *uniformStream) NumRacks() int { return s.n }
func (s *uniformStream) Len() int      { return s.count }
func (s *uniformStream) Reset()        { s.r.Seed(s.seed); s.pos = 0 }

func (s *uniformStream) Next(buf []Request) int {
	n := 0
	for n < len(buf) && s.pos < s.count {
		u := s.r.Intn(s.n)
		v := s.r.Intn(s.n)
		for u == v {
			v = s.r.Intn(s.n)
		}
		buf[n] = Request{Src: int32(u), Dst: int32(v)}
		s.pos++
		n++
	}
	return n
}

// iidStream samples a traffic matrix's pair distribution i.i.d. — the
// resumable form of TrafficMatrix.SampleIID. The alias table is built once
// (it draws nothing from the RNG); only the per-request sampling consumes
// the stream's random state.
type iidStream struct {
	name  string
	n     int
	count int
	seed  uint64
	pairs []PairKey
	alias *stats.Alias
	r     *stats.Rand
	pos   int
}

// NewIIDStream returns the streaming form of m.SampleIID(count, seed).
// name overrides the trace name ("" keeps SampleIID's default).
func NewIIDStream(m *TrafficMatrix, count int, seed uint64, name string) (Stream, error) {
	if count < 0 {
		return nil, fmt.Errorf("trace: NewIIDStream requires count >= 0, got %d", count)
	}
	if name == "" {
		name = fmt.Sprintf("iid-matrix(n=%d)", m.N())
	}
	pairs, weights := m.PairWeights()
	return &iidStream{
		name:  name,
		n:     m.N(),
		count: count,
		seed:  seed,
		pairs: pairs,
		alias: stats.NewAlias(weights),
		r:     stats.NewRand(seed),
	}, nil
}

// NewMicrosoftStream returns the streaming form of MicrosoftStyle(n, count,
// seed): i.i.d. samples from the skewed synthetic traffic matrix.
func NewMicrosoftStream(n, count int, seed uint64) (Stream, error) {
	m := SkewedMatrix(n, 1.0, n/2, 8, seed)
	return NewIIDStream(m, count, seed+1, "microsoft")
}

func (s *iidStream) Name() string  { return s.name }
func (s *iidStream) NumRacks() int { return s.n }
func (s *iidStream) Len() int      { return s.count }
func (s *iidStream) Reset()        { s.r.Seed(s.seed); s.pos = 0 }

func (s *iidStream) Next(buf []Request) int {
	n := 0
	for n < len(buf) && s.pos < s.count {
		u, v := s.pairs[s.alias.Sample(s.r)].Endpoints()
		buf[n] = Request{Src: int32(u), Dst: int32(v)}
		s.pos++
		n++
	}
	return n
}

// phaseShiftStream is the resumable form of PhaseShift. Each phase has its
// own seeds (derived exactly as the materialized generator derives them),
// so entering a phase rebuilds that phase's matrix and sampler without
// replaying the earlier phases.
type phaseShiftStream struct {
	n, count, phases int
	seed             uint64
	per              int // requests per phase (last phase takes the remainder)

	ph       int // current phase
	phasePos int // requests emitted within the current phase
	phase    Stream
	pos      int
}

// NewPhaseShiftStream returns the streaming form of PhaseShift(n, count,
// phases, seed).
func NewPhaseShiftStream(n, count, phases int, seed uint64) (Stream, error) {
	if n < 2 {
		return nil, fmt.Errorf("trace: PhaseShift requires n >= 2")
	}
	if count < phases || phases < 1 {
		return nil, fmt.Errorf("trace: PhaseShift requires count >= phases >= 1")
	}
	s := &phaseShiftStream{n: n, count: count, phases: phases, seed: seed, per: count / phases}
	s.Reset()
	return s, nil
}

func (s *phaseShiftStream) Name() string {
	return fmt.Sprintf("phase-shift(n=%d,p=%d)", s.n, s.phases)
}
func (s *phaseShiftStream) NumRacks() int { return s.n }
func (s *phaseShiftStream) Len() int      { return s.count }

func (s *phaseShiftStream) Reset() {
	s.ph = -1
	s.pos = 0
	s.enterPhase(0)
}

// phaseLen returns the request count of phase ph.
func (s *phaseShiftStream) phaseLen(ph int) int {
	if ph == s.phases-1 {
		return s.count - s.per*(s.phases-1)
	}
	return s.per
}

// enterPhase builds phase ph's matrix and sampler with the same derived
// seeds as the materialized generator.
func (s *phaseShiftStream) enterPhase(ph int) {
	s.ph = ph
	s.phasePos = 0
	m := SkewedMatrix(s.n, 1.2, s.n/2, 10, s.seed+uint64(ph)*0x9e37)
	phase, err := NewIIDStream(m, s.phaseLen(ph), s.seed+uint64(ph)*0x79b9+1, "")
	if err != nil {
		panic(err) // unreachable: phaseLen >= 0 by construction
	}
	s.phase = phase
}

func (s *phaseShiftStream) Next(buf []Request) int {
	n := 0
	for n < len(buf) && s.pos < s.count {
		if s.phasePos == s.phaseLen(s.ph) {
			s.enterPhase(s.ph + 1)
		}
		k := s.phase.Next(buf[n : n+min(len(buf)-n, s.phaseLen(s.ph)-s.phasePos)])
		s.phasePos += k
		s.pos += k
		n += k
	}
	return n
}

// permutationStream is the resumable form of Permutation: the request at
// position i is a pure function of the fixed random matching, so Next does
// no random draws at all.
type permutationStream struct {
	n, count int
	perm     []int
	pos      int
}

// NewPermutationStream returns the streaming form of Permutation(n, count,
// seed). n must be even.
func NewPermutationStream(n, count int, seed uint64) (Stream, error) {
	if n < 2 || n%2 != 0 {
		return nil, fmt.Errorf("trace: Permutation requires even n >= 2, got %d", n)
	}
	if count < 0 {
		return nil, fmt.Errorf("trace: Permutation requires count >= 0, got %d", count)
	}
	r := stats.NewRand(seed)
	return &permutationStream{n: n, count: count, perm: r.Perm(n)}, nil
}

func (s *permutationStream) Name() string  { return fmt.Sprintf("permutation(n=%d)", s.n) }
func (s *permutationStream) NumRacks() int { return s.n }
func (s *permutationStream) Len() int      { return s.count }
func (s *permutationStream) Reset()        { s.pos = 0 }

func (s *permutationStream) Next(buf []Request) int {
	n := 0
	for n < len(buf) && s.pos < s.count {
		k := (s.pos % (s.n / 2)) * 2
		buf[n] = Request{Src: int32(s.perm[k]), Dst: int32(s.perm[k+1])}
		s.pos++
		n++
	}
	return n
}
