package trace

import (
	"testing"
)

func TestFacebookStyleValid(t *testing.T) {
	for _, c := range []Cluster{Database, WebService, Hadoop} {
		p := FacebookPreset(c, 20, 1)
		p.Requests = 5000
		tr, err := FacebookStyle(p)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if tr.Len() != 5000 {
			t.Fatalf("%v: length %d", c, tr.Len())
		}
	}
}

func TestFacebookStyleDeterministic(t *testing.T) {
	p := FacebookPreset(Database, 15, 9)
	p.Requests = 2000
	a, _ := FacebookStyle(p)
	b, _ := FacebookStyle(p)
	for i := range a.Reqs {
		if a.Reqs[i] != b.Reqs[i] {
			t.Fatal("same params+seed must give identical traces")
		}
	}
}

func TestFacebookStyleHasTemporalStructure(t *testing.T) {
	p := FacebookPreset(Hadoop, 30, 3)
	p.Requests = 30000
	tr, _ := FacebookStyle(p)
	c := Analyze(tr)
	if c.TemporalScore < 0.05 {
		t.Fatalf("Hadoop preset should be bursty; temporal score = %v", c.TemporalScore)
	}
	if c.PairGini < 0.3 {
		t.Fatalf("preset should be spatially skewed; Gini = %v", c.PairGini)
	}
}

func TestMicrosoftStyleNoTemporalStructure(t *testing.T) {
	tr := MicrosoftStyle(25, 40000, 4)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	c := Analyze(tr)
	if c.TemporalScore > 0.01 || c.TemporalScore < -0.01 {
		t.Fatalf("i.i.d. trace must have ~zero temporal score, got %v", c.TemporalScore)
	}
	if c.PairGini < 0.3 {
		t.Fatalf("Microsoft matrix should be skewed; Gini = %v", c.PairGini)
	}
}

func TestDatabaseMoreSkewedThanWebService(t *testing.T) {
	mk := func(c Cluster) Complexity {
		p := FacebookPreset(c, 40, 8)
		p.Requests = 40000
		tr, _ := FacebookStyle(p)
		return Analyze(tr)
	}
	db, ws := mk(Database), mk(WebService)
	if db.PairGini <= ws.PairGini {
		t.Fatalf("Database Gini (%v) should exceed WebService Gini (%v)", db.PairGini, ws.PairGini)
	}
}

func TestFacebookStyleRejectsBadParams(t *testing.T) {
	bad := []FacebookParams{
		{Racks: 1, Requests: 10, WorkingSet: 1, BurstLen: 1},
		{Racks: 5, Requests: -1, WorkingSet: 1, BurstLen: 1},
		{Racks: 5, Requests: 10, WorkingSet: 0, BurstLen: 1},
		{Racks: 5, Requests: 10, WorkingSet: 1, BurstLen: 0},
		{Racks: 5, Requests: 10, WorkingSet: 1, BurstLen: 1, WorkingSetProb: 2},
		{Racks: 5, Requests: 10, WorkingSet: 1, BurstLen: 1, BurstProb: 1},
		{Racks: 5, Requests: 10, WorkingSet: 1, BurstLen: 1, ZipfSkew: -1},
		{Racks: 5, Requests: 10, WorkingSet: 1, BurstLen: 1, ChurnProb: -0.5},
	}
	for i, p := range bad {
		if _, err := FacebookStyle(p); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestUniformCoversPairs(t *testing.T) {
	tr := Uniform(6, 10000, 5)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.PairCounts()); got != 15 {
		t.Fatalf("uniform trace hit %d pairs, want all 15", got)
	}
}

func TestPermutationStructure(t *testing.T) {
	tr := Permutation(8, 100, 2)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := tr.PairCounts()
	if len(counts) != 4 {
		t.Fatalf("permutation trace must use exactly n/2 pairs, got %d", len(counts))
	}
	deg := map[int]int{}
	for k := range counts {
		u, v := k.Endpoints()
		deg[u]++
		deg[v]++
	}
	for node, d := range deg {
		if d != 1 {
			t.Fatalf("node %d appears in %d pairs, want 1", node, d)
		}
	}
}

func TestPermutationOddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for odd n")
		}
	}()
	Permutation(7, 10, 1)
}

func TestPhaseShiftStructure(t *testing.T) {
	tr, err := PhaseShift(20, 8000, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 8000 {
		t.Fatalf("length %d", tr.Len())
	}
	// The hot set must differ across phases: compare top pairs of the
	// first and last quarter.
	top := func(reqs []Request) PairKey {
		counts := map[PairKey]int{}
		for _, r := range reqs {
			counts[r.Key()]++
		}
		var best PairKey
		bestC := -1
		for k, c := range counts {
			if c > bestC || (c == bestC && k < best) {
				best, bestC = k, c
			}
		}
		return best
	}
	if top(tr.Reqs[:2000]) == top(tr.Reqs[6000:]) {
		t.Fatal("phases should have different hot pairs")
	}
}

func TestPhaseShiftValidation(t *testing.T) {
	if _, err := PhaseShift(1, 100, 2, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := PhaseShift(10, 2, 5, 1); err == nil {
		t.Error("count < phases accepted")
	}
	if _, err := PhaseShift(10, 100, 0, 1); err == nil {
		t.Error("phases=0 accepted")
	}
}

func TestSkewedMatrixProperties(t *testing.T) {
	m := SkewedMatrix(20, 1.0, 5, 10, 3)
	if m.Total() <= 0 {
		t.Fatal("matrix total must be positive")
	}
	if m.At(0, 0) != 0 {
		t.Fatal("diagonal must be zero")
	}
	if m.At(3, 7) != m.At(7, 3) {
		t.Fatal("matrix must be symmetric")
	}
	if m.Gini() < 0.2 {
		t.Fatalf("skewed matrix Gini = %v, expected skew", m.Gini())
	}
}

func TestSampleIIDDistribution(t *testing.T) {
	m := NewTrafficMatrix(3)
	m.Set(0, 1, 8)
	m.Set(1, 2, 2)
	tr := m.SampleIID(50000, 9)
	counts := tr.PairCounts()
	c01 := counts[MakePairKey(0, 1)]
	c12 := counts[MakePairKey(1, 2)]
	if counts[MakePairKey(0, 2)] != 0 {
		t.Fatal("zero-weight pair sampled")
	}
	ratio := float64(c01) / float64(c12)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("sample ratio = %v, want ~4", ratio)
	}
}

func TestTrafficMatrixPanics(t *testing.T) {
	m := NewTrafficMatrix(4)
	for _, f := range []func(){
		func() { m.Set(1, 1, 2) },
		func() { m.Set(0, 9, 1) },
		func() { m.Set(0, 1, -1) },
		func() { NewTrafficMatrix(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
