package trace_test

import (
	"fmt"

	"obm/internal/trace"
)

// ExampleFacebookStyle synthesizes a workload with the spatial skew and
// temporal locality of the paper's Facebook traces.
func ExampleFacebookStyle() {
	p := trace.FacebookPreset(trace.Database, 50, 1)
	p.Requests = 10000
	tr, err := trace.FacebookStyle(p)
	if err != nil {
		panic(err)
	}
	c := trace.Analyze(tr)
	fmt.Printf("requests=%d skewed=%v temporal=%v\n",
		tr.Len(), c.PairGini > 0.5, c.TemporalScore > 0.05)
	// Output: requests=10000 skewed=true temporal=true
}

// ExampleMakePairKey demonstrates the canonical unordered-pair encoding
// that all per-pair state is keyed by.
func ExampleMakePairKey() {
	k := trace.MakePairKey(7, 3)
	u, v := k.Endpoints()
	fmt.Println(u, v, k.Other(3))
	// Output: 3 7 7
}
