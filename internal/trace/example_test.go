package trace_test

import (
	"fmt"
	"io"

	"obm/internal/trace"
)

// ExampleFacebookStyle synthesizes a workload with the spatial skew and
// temporal locality of the paper's Facebook traces.
func ExampleFacebookStyle() {
	p := trace.FacebookPreset(trace.Database, 50, 1)
	p.Requests = 10000
	tr, err := trace.FacebookStyle(p)
	if err != nil {
		panic(err)
	}
	c := trace.Analyze(tr)
	fmt.Printf("requests=%d skewed=%v temporal=%v\n",
		tr.Len(), c.PairGini > 0.5, c.TemporalScore > 0.05)
	// Output: requests=10000 skewed=true temporal=true
}

// ExampleNewUniformStream drives a trace.Stream by hand: requests arrive
// in caller-sized batches, Reset rewinds bit-identically, and the
// sequence is independent of the batch sizes used to read it.
func ExampleNewUniformStream() {
	s, err := trace.NewUniformStream(10, 5000, 42)
	if err != nil {
		panic(err)
	}
	var buf [64]trace.Request
	n := s.Next(buf[:])
	first := buf[0]
	total := n
	for {
		k := s.Next(buf[:])
		if k == 0 {
			break
		}
		total += k
	}
	s.Reset()
	s.Next(buf[:1])
	fmt.Printf("total=%d len=%d replayed=%v\n", total, s.Len(), buf[0] == first)
	// Output: total=5000 len=5000 replayed=true
}

// ExampleNewSource compiles a raw request stream against a distance
// oracle chunk by chunk — the bounded-memory replay path: however long
// the trace, only one chunk of compiled requests exists at a time.
func ExampleNewSource() {
	s, err := trace.NewPhaseShiftStream(8, 10000, 4, 7)
	if err != nil {
		panic(err)
	}
	// A toy metric: all rack pairs at distance 4 (a fat-tree's inter-pod
	// distance); real callers pass graph.Metric.Dist.
	src, err := trace.NewSource(s, func(u, v int) int { return 4 })
	if err != nil {
		panic(err)
	}
	chunk := trace.NewChunk(256)
	compiled := 0
	var firstDist int32
	for {
		n, err := src.Next(chunk)
		if err == io.EOF {
			break
		}
		if err != nil {
			panic(err)
		}
		if compiled == 0 {
			firstDist = chunk.Reqs[0].Dist
		}
		compiled += n
	}
	fmt.Printf("compiled=%d chunkcap=%d dist=%d\n",
		compiled, cap(chunk.Reqs), firstDist)
	// Output: compiled=10000 chunkcap=256 dist=4
}

// ExampleMakePairKey demonstrates the canonical unordered-pair encoding
// that all per-pair state is keyed by.
func ExampleMakePairKey() {
	k := trace.MakePairKey(7, 3)
	u, v := k.Endpoints()
	fmt.Println(u, v, k.Other(3))
	// Output: 3 7 7
}
