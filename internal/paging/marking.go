package paging

import "obm/internal/stats"

// Marking is the randomized marking algorithm (Fiat, Karp, Luby, McGeoch,
// Sleator, Young 1991): requests mark their item; on a miss with a full
// cache, a uniformly random *unmarked* item is evicted; when every cached
// item is marked and a miss occurs, a new phase starts and all marks are
// cleared. Randomized marking is 2·H_k-competitive against cache size k,
// and 2·ln(k/(k−h+1))-competitive against an offline optimum with cache
// size h ≤ k (Young 1991) — the bound that powers R-BMA's (b,a) guarantee.
type Marking struct {
	k        int
	rng      *stats.Rand
	seed     uint64
	pos      map[uint64]int // item -> index in slots
	slots    []uint64       // cached items; [0, nMarked) are marked
	nMarked  int
	phases   int
	detFirst bool // deterministic variant: evict first unmarked instead of random
}

// NewMarking returns a randomized marking cache of capacity k seeded with
// seed.
func NewMarking(k int, seed uint64) *Marking {
	validateCap(k)
	return &Marking{
		k:     k,
		rng:   stats.NewRand(seed),
		seed:  seed,
		pos:   make(map[uint64]int, k),
		slots: make([]uint64, 0, k),
	}
}

// NewMarkingFactory adapts NewMarking to the Factory signature.
func NewMarkingFactory(k int, seed uint64) Cache { return NewMarking(k, seed) }

// NewDeterministicMarking returns the deterministic marking variant, which
// always evicts the first unmarked item (k-competitive). Used as an ablation
// baseline isolating the value of randomization.
func NewDeterministicMarking(k int) *Marking {
	m := NewMarking(k, 0)
	m.detFirst = true
	return m
}

// NewDeterministicMarkingFactory adapts NewDeterministicMarking to Factory.
func NewDeterministicMarkingFactory(k int, _ uint64) Cache {
	return NewDeterministicMarking(k)
}

// Name implements Cache.
func (c *Marking) Name() string {
	if c.detFirst {
		return "marking-det"
	}
	return "marking"
}

// Cap implements Cache.
func (c *Marking) Cap() int { return c.k }

// Len implements Cache.
func (c *Marking) Len() int { return len(c.slots) }

// Contains implements Cache.
func (c *Marking) Contains(item uint64) bool { _, ok := c.pos[item]; return ok }

// Phases returns the number of completed marking phases, exposed for the
// phase-structure tests and the competitive analysis (cost per phase is at
// most the number of "new" items in it).
func (c *Marking) Phases() int { return c.phases }

// Marked reports whether item is cached and marked.
func (c *Marking) Marked(item uint64) bool {
	i, ok := c.pos[item]
	return ok && i < c.nMarked
}

// Access implements Cache.
func (c *Marking) Access(item uint64) (uint64, bool, bool) {
	if i, ok := c.pos[item]; ok {
		c.mark(i)
		return 0, false, false
	}
	var evictedItem uint64
	evicted := false
	if len(c.slots) == c.k {
		if c.nMarked == c.k {
			// All marked: new phase, clear all marks.
			c.phases++
			c.nMarked = 0
		}
		// Evict an unmarked item: uniform random, or first for the
		// deterministic variant. Unmarked items live at [nMarked, len).
		idx := c.nMarked
		if !c.detFirst {
			idx += c.rng.Intn(len(c.slots) - c.nMarked)
		}
		evictedItem = c.slots[idx]
		evicted = true
		last := len(c.slots) - 1
		c.slots[idx] = c.slots[last]
		c.pos[c.slots[idx]] = idx
		c.slots = c.slots[:last]
		delete(c.pos, evictedItem)
	}
	// Fetch and mark the new item.
	c.slots = append(c.slots, item)
	i := len(c.slots) - 1
	c.pos[item] = i
	c.mark(i)
	return evictedItem, evicted, true
}

// mark moves the item at index i into the marked prefix.
func (c *Marking) mark(i int) {
	if i < c.nMarked {
		return
	}
	j := c.nMarked
	c.slots[i], c.slots[j] = c.slots[j], c.slots[i]
	c.pos[c.slots[i]] = i
	c.pos[c.slots[j]] = j
	c.nMarked++
}

// Items implements Cache.
func (c *Marking) Items() []uint64 { return append([]uint64(nil), c.slots...) }

// Reset implements Cache.
func (c *Marking) Reset() {
	c.rng = stats.NewRand(c.seed)
	c.pos = make(map[uint64]int, c.k)
	c.slots = c.slots[:0]
	c.nMarked = 0
	c.phases = 0
}

// RandomEvict evicts a uniformly random cached item on each miss. A weak
// randomized baseline (k-competitive only in expectation against oblivious
// adversaries); included as an ablation.
type RandomEvict struct {
	k     int
	rng   *stats.Rand
	seed  uint64
	pos   map[uint64]int
	slots []uint64
}

// NewRandomEvict returns a random-eviction cache of capacity k.
func NewRandomEvict(k int, seed uint64) *RandomEvict {
	validateCap(k)
	return &RandomEvict{
		k:    k,
		rng:  stats.NewRand(seed),
		seed: seed,
		pos:  make(map[uint64]int, k),
	}
}

// NewRandomEvictFactory adapts NewRandomEvict to the Factory signature.
func NewRandomEvictFactory(k int, seed uint64) Cache { return NewRandomEvict(k, seed) }

// Name implements Cache.
func (c *RandomEvict) Name() string { return "random" }

// Cap implements Cache.
func (c *RandomEvict) Cap() int { return c.k }

// Len implements Cache.
func (c *RandomEvict) Len() int { return len(c.slots) }

// Contains implements Cache.
func (c *RandomEvict) Contains(item uint64) bool { _, ok := c.pos[item]; return ok }

// Access implements Cache.
func (c *RandomEvict) Access(item uint64) (uint64, bool, bool) {
	if _, ok := c.pos[item]; ok {
		return 0, false, false
	}
	var evictedItem uint64
	evicted := false
	if len(c.slots) == c.k {
		idx := c.rng.Intn(len(c.slots))
		evictedItem = c.slots[idx]
		last := len(c.slots) - 1
		c.slots[idx] = c.slots[last]
		c.pos[c.slots[idx]] = idx
		c.slots = c.slots[:last]
		delete(c.pos, evictedItem)
		evicted = true
	}
	c.slots = append(c.slots, item)
	c.pos[item] = len(c.slots) - 1
	return evictedItem, evicted, true
}

// Items implements Cache.
func (c *RandomEvict) Items() []uint64 { return append([]uint64(nil), c.slots...) }

// Reset implements Cache.
func (c *RandomEvict) Reset() {
	c.rng = stats.NewRand(c.seed)
	c.pos = make(map[uint64]int, c.k)
	c.slots = c.slots[:0]
}
