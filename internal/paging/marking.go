package paging

import "obm/internal/stats"

// Marking is the randomized marking algorithm (Fiat, Karp, Luby, McGeoch,
// Sleator, Young 1991): requests mark their item; on a miss with a full
// cache, a uniformly random *unmarked* item is evicted; when every cached
// item is marked and a miss occurs, a new phase starts and all marks are
// cleared. Randomized marking is 2·H_k-competitive against cache size k,
// and 2·ln(k/(k−h+1))-competitive against an offline optimum with cache
// size h ≤ k (Young 1991) — the bound that powers R-BMA's (b,a) guarantee.
//
// Eviction choices depend only on slot positions and the seeded RNG, never
// on item values, so a Marking cache behaves bit-for-bit identically in map
// and dense-universe (DeclareUniverse) mode.
type Marking struct {
	k        int
	rng      *stats.Rand
	seed     uint64
	pos      posTable // item -> index in slots
	slots    []uint64 // cached items; [0, nMarked) are marked
	nMarked  int
	phases   int
	detFirst bool // deterministic variant: evict first unmarked instead of random
}

// NewMarking returns a randomized marking cache of capacity k seeded with
// seed.
func NewMarking(k int, seed uint64) *Marking {
	validateCap(k)
	return &Marking{
		k:     k,
		rng:   stats.NewRand(seed),
		seed:  seed,
		pos:   newPosTable(k),
		slots: make([]uint64, 0, k),
	}
}

// NewMarkingFactory adapts NewMarking to the Factory signature.
func NewMarkingFactory(k int, seed uint64) Cache { return NewMarking(k, seed) }

// NewDeterministicMarking returns the deterministic marking variant, which
// always evicts the first unmarked item (k-competitive). Used as an ablation
// baseline isolating the value of randomization.
func NewDeterministicMarking(k int) *Marking {
	m := NewMarking(k, 0)
	m.detFirst = true
	return m
}

// NewDeterministicMarkingFactory adapts NewDeterministicMarking to Factory.
func NewDeterministicMarkingFactory(k int, _ uint64) Cache {
	return NewDeterministicMarking(k)
}

// Name implements Cache.
func (c *Marking) Name() string {
	if c.detFirst {
		return "marking-det"
	}
	return "marking"
}

// Cap implements Cache.
func (c *Marking) Cap() int { return c.k }

// Len implements Cache.
func (c *Marking) Len() int { return len(c.slots) }

// Contains implements Cache.
func (c *Marking) Contains(item uint64) bool { return c.pos.contains(item) }

// DeclareUniverse switches the position map to a flat slot table over items
// [0, size). The cache must be empty.
func (c *Marking) DeclareUniverse(size int) { c.pos.declareUniverse(size) }

// Phases returns the number of completed marking phases, exposed for the
// phase-structure tests and the competitive analysis (cost per phase is at
// most the number of "new" items in it).
func (c *Marking) Phases() int { return c.phases }

// Marked reports whether item is cached and marked.
func (c *Marking) Marked(item uint64) bool {
	i, ok := c.pos.get(item)
	return ok && int(i) < c.nMarked
}

// Access implements Cache.
func (c *Marking) Access(item uint64) (uint64, bool, bool) {
	if i, ok := c.pos.get(item); ok {
		c.mark(int(i))
		return 0, false, false
	}
	var evictedItem uint64
	evicted := false
	if len(c.slots) == c.k {
		if c.nMarked == c.k {
			// All marked: new phase, clear all marks.
			c.phases++
			c.nMarked = 0
		}
		// Evict an unmarked item: uniform random, or first for the
		// deterministic variant. Unmarked items live at [nMarked, len).
		idx := c.nMarked
		if !c.detFirst {
			idx += c.rng.Intn(len(c.slots) - c.nMarked)
		}
		evictedItem = c.slots[idx]
		evicted = true
		last := len(c.slots) - 1
		c.slots[idx] = c.slots[last]
		c.pos.set(c.slots[idx], int32(idx))
		c.slots = c.slots[:last]
		c.pos.del(evictedItem)
	}
	// Fetch and mark the new item.
	c.slots = append(c.slots, item)
	i := len(c.slots) - 1
	c.pos.set(item, int32(i))
	c.mark(i)
	return evictedItem, evicted, true
}

// mark moves the item at index i into the marked prefix.
func (c *Marking) mark(i int) {
	if i < c.nMarked {
		return
	}
	j := c.nMarked
	c.slots[i], c.slots[j] = c.slots[j], c.slots[i]
	c.pos.set(c.slots[i], int32(i))
	c.pos.set(c.slots[j], int32(j))
	c.nMarked++
}

// Items implements Cache.
func (c *Marking) Items() []uint64 { return append([]uint64(nil), c.slots...) }

// Reset implements Cache.
func (c *Marking) Reset() {
	c.rng = stats.NewRand(c.seed)
	c.pos.reset(c.k)
	c.slots = c.slots[:0]
	c.nMarked = 0
	c.phases = 0
}

// RandomEvict evicts a uniformly random cached item on each miss. A weak
// randomized baseline (k-competitive only in expectation against oblivious
// adversaries); included as an ablation.
type RandomEvict struct {
	k     int
	rng   *stats.Rand
	seed  uint64
	pos   posTable
	slots []uint64
}

// NewRandomEvict returns a random-eviction cache of capacity k.
func NewRandomEvict(k int, seed uint64) *RandomEvict {
	validateCap(k)
	return &RandomEvict{
		k:    k,
		rng:  stats.NewRand(seed),
		seed: seed,
		pos:  newPosTable(k),
	}
}

// NewRandomEvictFactory adapts NewRandomEvict to the Factory signature.
func NewRandomEvictFactory(k int, seed uint64) Cache { return NewRandomEvict(k, seed) }

// Name implements Cache.
func (c *RandomEvict) Name() string { return "random" }

// Cap implements Cache.
func (c *RandomEvict) Cap() int { return c.k }

// Len implements Cache.
func (c *RandomEvict) Len() int { return len(c.slots) }

// Contains implements Cache.
func (c *RandomEvict) Contains(item uint64) bool { return c.pos.contains(item) }

// DeclareUniverse switches the position map to a flat slot table over items
// [0, size). The cache must be empty.
func (c *RandomEvict) DeclareUniverse(size int) { c.pos.declareUniverse(size) }

// Access implements Cache.
func (c *RandomEvict) Access(item uint64) (uint64, bool, bool) {
	if c.pos.contains(item) {
		return 0, false, false
	}
	var evictedItem uint64
	evicted := false
	if len(c.slots) == c.k {
		idx := c.rng.Intn(len(c.slots))
		evictedItem = c.slots[idx]
		last := len(c.slots) - 1
		c.slots[idx] = c.slots[last]
		c.pos.set(c.slots[idx], int32(idx))
		c.slots = c.slots[:last]
		c.pos.del(evictedItem)
		evicted = true
	}
	c.slots = append(c.slots, item)
	c.pos.set(item, int32(len(c.slots)-1))
	return evictedItem, evicted, true
}

// Items implements Cache.
func (c *RandomEvict) Items() []uint64 { return append([]uint64(nil), c.slots...) }

// Reset implements Cache.
func (c *RandomEvict) Reset() {
	c.rng = stats.NewRand(c.seed)
	c.pos.reset(c.k)
	c.slots = c.slots[:0]
}
