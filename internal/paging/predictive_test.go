package paging

import (
	"testing"

	"obm/internal/stats"
)

func randomSeq(n, universe int, seed uint64) []uint64 {
	r := stats.NewRand(seed)
	seq := make([]uint64, n)
	for i := range seq {
		seq[i] = uint64(r.Intn(universe))
	}
	return seq
}

func costOf(c interface {
	Access(uint64) (uint64, bool, bool)
}, seq []uint64) int {
	misses := 0
	for _, it := range seq {
		if _, _, miss := c.Access(it); miss {
			misses++
		}
	}
	return misses
}

func TestPredictiveZeroNoiseEqualsMIN(t *testing.T) {
	seq := randomSeq(5000, 12, 3)
	k := 4
	min := OfflineCost(k, seq)
	pred := costOf(NewPredictive(k, seq, 0, 1), seq)
	if pred != min {
		t.Fatalf("σ=0 predictive = %d, MIN = %d", pred, min)
	}
}

func TestPredictiveDegradesGracefully(t *testing.T) {
	seq := randomSeq(20000, 20, 7)
	k := 5
	min := OfflineCost(k, seq)
	low := costOf(NewPredictive(k, seq, 0.3, 1), seq)
	high := costOf(NewPredictive(k, seq, 5.0, 1), seq)
	if low < min {
		t.Fatalf("predictive beat MIN: %d < %d", low, min)
	}
	// Low noise should stay close to MIN; heavy noise should be worse than
	// low noise but still a working cache (≤ every-request misses).
	if float64(low) > 1.25*float64(min) {
		t.Fatalf("σ=0.3 cost %d too far above MIN %d", low, min)
	}
	if high < low {
		t.Fatalf("more noise should not help: σ=5 %d < σ=0.3 %d", high, low)
	}
	if high > len(seq) {
		t.Fatalf("cost exceeds sequence length")
	}
}

func TestPredictiveRespectsCapacity(t *testing.T) {
	seq := randomSeq(3000, 15, 9)
	c := NewPredictive(3, seq, 1.0, 2)
	for _, it := range seq {
		c.Access(it)
		if c.Len() > 3 {
			t.Fatal("capacity exceeded")
		}
		if !c.Contains(it) {
			t.Fatal("no bypassing allowed")
		}
	}
}

func TestPredictiveDeterministicPerSeed(t *testing.T) {
	seq := randomSeq(5000, 10, 11)
	a := costOf(NewPredictive(4, seq, 1.0, 42), seq)
	b := costOf(NewPredictive(4, seq, 1.0, 42), seq)
	if a != b {
		t.Fatal("same seed must give identical behaviour")
	}
}

func TestPredictiveReset(t *testing.T) {
	seq := randomSeq(1000, 8, 13)
	c := NewPredictive(3, seq, 0.5, 5)
	first := costOf(c, seq)
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("Reset did not empty cache")
	}
	second := costOf(c, seq)
	if first != second {
		t.Fatal("replay after Reset differs")
	}
}

func TestPredictivePanics(t *testing.T) {
	seq := []uint64{1, 2, 3}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative sigma accepted")
			}
		}()
		NewPredictive(2, seq, -1, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-order access accepted")
			}
		}()
		c := NewPredictive(2, seq, 0, 0)
		c.Access(2)
	}()
}
