package paging

import (
	"math"

	"obm/internal/stats"
)

// Predictive is a prediction-augmented paging algorithm in the
// "algorithms with predictions" style: on a miss it evicts the cached item
// whose *predicted* next use is farthest away (Belady's rule applied to
// predictions instead of the truth). The prediction oracle is the true
// next-use time perturbed by multiplicative log-normal noise of magnitude
// sigma: sigma = 0 recovers offline MIN, sigma → ∞ degenerates towards
// random eviction. This implements the experiment suggested by the paper's
// future-work discussion (§5): how much of the gap between online marking
// and clairvoyant eviction can imperfect predictions close?
//
// Like MIN, it must be constructed with the full request sequence and
// accessed in exactly that order.
type Predictive struct {
	min   *MIN
	sigma float64
	rng   *stats.Rand
	seed  uint64
	pred  map[uint64]float64 // cached item -> predicted next use
	pos   int
	seq   []uint64
}

// NewPredictive builds the predictive cache for the given sequence with
// noise level sigma >= 0.
func NewPredictive(k int, seq []uint64, sigma float64, seed uint64) *Predictive {
	if sigma < 0 {
		panic("paging: NewPredictive with negative sigma")
	}
	return &Predictive{
		min:   NewMIN(k, seq),
		sigma: sigma,
		rng:   stats.NewRand(seed),
		seed:  seed,
		pred:  make(map[uint64]float64, k),
		seq:   seq,
	}
}

// Name implements Cache.
func (c *Predictive) Name() string { return "predictive" }

// Cap implements Cache.
func (c *Predictive) Cap() int { return c.min.Cap() }

// Len implements Cache.
func (c *Predictive) Len() int { return len(c.pred) }

// Contains implements Cache.
func (c *Predictive) Contains(item uint64) bool {
	_, ok := c.pred[item]
	return ok
}

// Access implements Cache. The item must follow the construction sequence.
func (c *Predictive) Access(item uint64) (uint64, bool, bool) {
	if c.pos >= len(c.seq) || c.seq[c.pos] != item {
		panic("paging: Predictive accessed out of order")
	}
	trueNext := float64(c.min.nextOcc[c.pos])
	c.pos++
	// Perturb the horizon (distance to next use), not the absolute index:
	// log-normal noise keeps predictions positive and orders-of-magnitude
	// calibrated.
	horizon := trueNext - float64(c.pos-1)
	if c.sigma > 0 {
		horizon *= lognormal(c.rng, c.sigma)
	}
	predicted := float64(c.pos-1) + horizon
	if _, ok := c.pred[item]; ok {
		c.pred[item] = predicted
		return 0, false, false
	}
	var evictedItem uint64
	evicted := false
	if len(c.pred) == c.min.Cap() {
		var victim uint64
		far := -1.0
		for it, nu := range c.pred {
			if nu > far || (nu == far && it > victim) {
				far = nu
				victim = it
			}
		}
		delete(c.pred, victim)
		evictedItem, evicted = victim, true
	}
	c.pred[item] = predicted
	return evictedItem, evicted, true
}

// lognormal draws exp(sigma·N(0,1)), clamping extreme tails so horizons
// stay finite.
func lognormal(r *stats.Rand, sigma float64) float64 {
	x := sigma * r.NormFloat64()
	if x > 30 {
		x = 30
	}
	if x < -30 {
		x = -30
	}
	return math.Exp(x)
}

// Items implements Cache.
func (c *Predictive) Items() []uint64 {
	out := make([]uint64, 0, len(c.pred))
	for it := range c.pred {
		out = append(out, it)
	}
	return out
}

// Reset implements Cache, rewinding to the start of the sequence.
func (c *Predictive) Reset() {
	c.min.Reset()
	c.rng = stats.NewRand(c.seed)
	c.pred = make(map[uint64]float64, c.min.Cap())
	c.pos = 0
}
