package paging

// LRU evicts the least-recently-used item. Deterministic, k-competitive.
// The recency list is intrusive over a fixed slab of k nodes (no per-item
// allocation); the item→node map supports the dense-universe slot table via
// DeclareUniverse.
type LRU struct {
	k     int
	pos   posTable // item -> index into nodes
	nodes []lruNode
	free  []int32
	head  int32 // most recent, -1 if empty
	tail  int32 // least recent, -1 if empty
	count int
}

type lruNode struct {
	item       uint64
	prev, next int32
}

// NewLRU returns an empty LRU cache of capacity k.
func NewLRU(k int) *LRU {
	validateCap(k)
	c := &LRU{k: k, pos: newPosTable(k), nodes: make([]lruNode, k), free: make([]int32, 0, k)}
	c.initFree()
	return c
}

func (c *LRU) initFree() {
	c.free = c.free[:0]
	for i := c.k - 1; i >= 0; i-- {
		c.free = append(c.free, int32(i))
	}
	c.head, c.tail = -1, -1
	c.count = 0
}

// NewLRUFactory adapts NewLRU to the Factory signature.
func NewLRUFactory(k int, _ uint64) Cache { return NewLRU(k) }

// Name implements Cache.
func (c *LRU) Name() string { return "lru" }

// Cap implements Cache.
func (c *LRU) Cap() int { return c.k }

// Len implements Cache.
func (c *LRU) Len() int { return c.count }

// Contains implements Cache.
func (c *LRU) Contains(item uint64) bool { return c.pos.contains(item) }

// DeclareUniverse switches the position map to a flat slot table over items
// [0, size). The cache must be empty.
func (c *LRU) DeclareUniverse(size int) { c.pos.declareUniverse(size) }

// Access implements Cache.
func (c *LRU) Access(item uint64) (uint64, bool, bool) {
	if i, ok := c.pos.get(item); ok {
		c.moveToFront(i)
		return 0, false, false
	}
	var evictedItem uint64
	evicted := false
	if c.count == c.k {
		victim := c.tail
		c.unlink(victim)
		c.pos.del(c.nodes[victim].item)
		c.free = append(c.free, victim)
		c.count--
		evictedItem, evicted = c.nodes[victim].item, true
	}
	i := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	c.nodes[i].item = item
	c.pos.set(item, i)
	c.pushFront(i)
	c.count++
	return evictedItem, evicted, true
}

// Items implements Cache, in most- to least-recently-used order.
func (c *LRU) Items() []uint64 {
	out := make([]uint64, 0, c.count)
	for i := c.head; i >= 0; i = c.nodes[i].next {
		out = append(out, c.nodes[i].item)
	}
	return out
}

// Reset implements Cache.
func (c *LRU) Reset() {
	c.pos.reset(c.k)
	c.initFree()
}

func (c *LRU) pushFront(i int32) {
	n := &c.nodes[i]
	n.prev = -1
	n.next = c.head
	if c.head >= 0 {
		c.nodes[c.head].prev = i
	}
	c.head = i
	if c.tail < 0 {
		c.tail = i
	}
}

func (c *LRU) unlink(i int32) {
	n := &c.nodes[i]
	if n.prev >= 0 {
		c.nodes[n.prev].next = n.next
	} else {
		c.head = n.next
	}
	if n.next >= 0 {
		c.nodes[n.next].prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = -1, -1
}

func (c *LRU) moveToFront(i int32) {
	if c.head == i {
		return
	}
	c.unlink(i)
	c.pushFront(i)
}
