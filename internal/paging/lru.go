package paging

// LRU evicts the least-recently-used item. Deterministic, k-competitive.
type LRU struct {
	k     int
	items map[uint64]*lruNode
	head  *lruNode // most recent
	tail  *lruNode // least recent
}

type lruNode struct {
	item       uint64
	prev, next *lruNode
}

// NewLRU returns an empty LRU cache of capacity k.
func NewLRU(k int) *LRU {
	validateCap(k)
	return &LRU{k: k, items: make(map[uint64]*lruNode, k)}
}

// NewLRUFactory adapts NewLRU to the Factory signature.
func NewLRUFactory(k int, _ uint64) Cache { return NewLRU(k) }

// Name implements Cache.
func (c *LRU) Name() string { return "lru" }

// Cap implements Cache.
func (c *LRU) Cap() int { return c.k }

// Len implements Cache.
func (c *LRU) Len() int { return len(c.items) }

// Contains implements Cache.
func (c *LRU) Contains(item uint64) bool { _, ok := c.items[item]; return ok }

// Access implements Cache.
func (c *LRU) Access(item uint64) (uint64, bool, bool) {
	if n, ok := c.items[item]; ok {
		c.moveToFront(n)
		return 0, false, false
	}
	var evictedItem uint64
	evicted := false
	if len(c.items) == c.k {
		victim := c.tail
		c.unlink(victim)
		delete(c.items, victim.item)
		evictedItem, evicted = victim.item, true
	}
	n := &lruNode{item: item}
	c.items[item] = n
	c.pushFront(n)
	return evictedItem, evicted, true
}

// Items implements Cache.
func (c *LRU) Items() []uint64 {
	out := make([]uint64, 0, len(c.items))
	for n := c.head; n != nil; n = n.next {
		out = append(out, n.item)
	}
	return out
}

// Reset implements Cache.
func (c *LRU) Reset() {
	c.items = make(map[uint64]*lruNode, c.k)
	c.head, c.tail = nil, nil
}

func (c *LRU) pushFront(n *lruNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *LRU) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *LRU) moveToFront(n *lruNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
