package paging

import (
	"io"

	"obm/internal/snap"
)

// Snapshot writes the bank's full state — per-cache slot prefixes, mark
// counts and RNG states; the position tables are derivable — as a section
// of an enclosing snapshot stream. Slot order is preserved exactly:
// eviction choices are positional, so a restored bank continues the very
// same randomized run.
func (b *MarkingBank) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w)
	sw.U32(uint32(b.n))
	sw.U32(uint32(b.k))
	sw.U32(uint32(b.universe))
	for c := 0; c < b.n; c++ {
		sw.U32(uint32(b.lens[c]))
		sw.U32(uint32(b.nMarked[c]))
		sw.I32s(b.slots[c*b.k : c*b.k+int(b.lens[c])])
		s := b.rngs[c].State()
		sw.U64s(s[:])
	}
	return sw.Err()
}

// Restore loads state written by Snapshot into this bank, which must have
// the same dimensions (n, k, universe). Lengths, mark counts and slot
// items are bounds-checked, slot distinctness is enforced while the
// position tables are rebuilt, and RNG states are rejected if degenerate —
// a corrupt stream errors out, it never panics or mis-sizes anything. On
// error the bank is left in an unspecified state and must be Reset before
// reuse.
func (b *MarkingBank) Restore(r io.Reader) error {
	sr := snap.NewReader(r)
	if n := sr.U32(); sr.Err() == nil && int(n) != b.n {
		return snap.Corruptf("paging: bank snapshot for n=%d, have n=%d", n, b.n)
	}
	if k := sr.U32(); sr.Err() == nil && int(k) != b.k {
		return snap.Corruptf("paging: bank snapshot for k=%d, have k=%d", k, b.k)
	}
	if u := sr.U32(); sr.Err() == nil && int(u) != b.universe {
		return snap.Corruptf("paging: bank snapshot for universe=%d, have %d", u, b.universe)
	}
	for i := range b.pos {
		b.pos[i] = -1
	}
	for c := 0; c < b.n; c++ {
		ln := int32(sr.U32())
		nm := int32(sr.U32())
		if sr.Err() != nil {
			return sr.Err()
		}
		if ln < 0 || int(ln) > b.k || nm < 0 || nm > ln {
			return snap.Corruptf("paging: cache %d has len=%d marked=%d (cap %d)", c, ln, nm, b.k)
		}
		b.lens[c] = ln
		b.nMarked[c] = nm
		slots := b.slots[c*b.k : c*b.k+int(ln)]
		sr.I32s(slots)
		if sr.Err() != nil {
			return sr.Err()
		}
		pos := b.pos[c*b.universe : (c+1)*b.universe]
		for i, item := range slots {
			if item < 0 || int(item) >= b.universe {
				return snap.Corruptf("paging: cache %d slot %d holds item %d outside [0,%d)", c, i, item, b.universe)
			}
			if pos[item] >= 0 {
				return snap.Corruptf("paging: cache %d holds item %d twice", c, item)
			}
			pos[item] = int32(i)
		}
		var s [4]uint64
		sr.U64s(s[:])
		if sr.Err() != nil {
			return sr.Err()
		}
		if err := b.rngs[c].SetState(s); err != nil {
			return snap.Corruptf("paging: cache %d RNG: %v", c, err)
		}
	}
	return sr.Err()
}
