package paging

import "fmt"

// posTable maps cache items to small integers (slot or queue indices). It
// has two modes: a hash map for an open item universe (the default), and a
// flat slot table for a dense universe declared up front. The online
// b-matching hot path always declares its universe — the n·(n−1)/2 rack
// pairs are known before the first request — turning every per-access map
// operation into one array read.
type posTable struct {
	m     map[uint64]int32
	dense []int32 // item -> value, -1 = absent; nil in map mode
}

func newPosTable(k int) posTable {
	return posTable{m: make(map[uint64]int32, k)}
}

// declareUniverse switches to the flat table over items [0, size). The
// caller guarantees the table is currently empty.
func (p *posTable) declareUniverse(size int) {
	if size < 1 {
		panic("paging: DeclareUniverse requires size >= 1")
	}
	p.m = nil
	p.dense = make([]int32, size)
	for i := range p.dense {
		p.dense[i] = -1
	}
}

func (p *posTable) get(item uint64) (int32, bool) {
	if p.dense != nil {
		v := p.dense[item]
		return v, v >= 0
	}
	v, ok := p.m[item]
	return v, ok
}

func (p *posTable) contains(item uint64) bool {
	if p.dense != nil {
		return int(item) < len(p.dense) && p.dense[item] >= 0
	}
	_, ok := p.m[item]
	return ok
}

func (p *posTable) set(item uint64, v int32) {
	if p.dense != nil {
		p.dense[item] = v
		return
	}
	p.m[item] = v
}

func (p *posTable) del(item uint64) {
	if p.dense != nil {
		p.dense[item] = -1
		return
	}
	delete(p.m, item)
}

// reset empties the table, preserving its mode.
func (p *posTable) reset(k int) {
	if p.dense != nil {
		for i := range p.dense {
			p.dense[i] = -1
		}
		return
	}
	p.m = make(map[uint64]int32, k)
}

// universeSizer is implemented by caches whose position maps can be
// replaced by flat slot tables when the item universe [0, size) is known up
// front.
type universeSizer interface {
	DeclareUniverse(size int)
}

// DeclareUniverse declares that every item subsequently accessed on c is
// drawn from [0, size), letting supporting implementations (Marking, LRU,
// FIFO, CLOCK, LFU, RandomEvict) back their position maps with flat
// []int32 slot tables. It reports whether c supports the dense path;
// unsupported caches (MIN, Predictive) are left unchanged. The cache must
// be empty; eviction decisions are bit-for-bit identical in both modes.
func DeclareUniverse(c Cache, size int) bool {
	d, ok := c.(universeSizer)
	if !ok {
		return false
	}
	if c.Len() != 0 {
		panic(fmt.Sprintf("paging: DeclareUniverse on non-empty %s cache", c.Name()))
	}
	d.DeclareUniverse(size)
	return true
}
