package paging

import (
	"sort"
	"testing"
)

// TestCacheSurface exercises the full Cache interface surface (Name, Cap,
// Items, Reset) on every implementation, including the sequence-bound ones.
func TestCacheSurface(t *testing.T) {
	seq := []uint64{5, 9, 5, 2, 7, 9, 2}
	caches := map[string]Cache{
		"lru":         NewLRU(3),
		"fifo":        NewFIFO(3),
		"clock":       NewCLOCK(3),
		"lfu":         NewLFU(3),
		"marking":     NewMarking(3, 1),
		"marking-det": NewDeterministicMarking(3),
		"random":      NewRandomEvict(3, 1),
		"min":         NewMIN(3, seq),
		"predictive":  NewPredictive(3, seq, 0.5, 1),
	}
	for name, c := range caches {
		t.Run(name, func(t *testing.T) {
			if c.Name() == "" {
				t.Error("empty Name")
			}
			if c.Cap() != 3 {
				t.Errorf("Cap = %d", c.Cap())
			}
			for _, it := range seq {
				c.Access(it)
			}
			items := c.Items()
			if len(items) != c.Len() {
				t.Fatalf("Items() has %d entries, Len() = %d", len(items), c.Len())
			}
			sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
			for i := 1; i < len(items); i++ {
				if items[i] == items[i-1] {
					t.Fatalf("duplicate item %d in Items()", items[i])
				}
			}
			for _, it := range items {
				if !c.Contains(it) {
					t.Fatalf("Items() reports %d but Contains is false", it)
				}
			}
			c.Reset()
			if c.Len() != 0 || len(c.Items()) != 0 {
				t.Fatal("Reset did not clear")
			}
			// Sequence-bound caches must replay identically after Reset.
			for _, it := range seq {
				c.Access(it)
			}
			if c.Len() == 0 {
				t.Fatal("cache unusable after Reset")
			}
		})
	}
}

// TestFWFSurface covers the flush-when-full type separately (it has its own
// multi-eviction Access signature).
func TestFWFSurface(t *testing.T) {
	c := NewFWF(2)
	if c.Cap() != 2 || c.Len() != 0 {
		t.Fatal("fresh FWF state wrong")
	}
	c.Access(1)
	if evs, miss := c.Access(1); miss || evs != nil {
		t.Fatal("hit mishandled")
	}
	c.Access(2)
	if !c.Contains(1) || !c.Contains(2) {
		t.Fatal("contents wrong")
	}
}
