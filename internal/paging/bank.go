package paging

import "obm/internal/stats"

// MarkingBank is n independent randomized-marking caches of capacity k with
// all state in shared flat slabs: position tables, slot arrays, mark
// counts, and one RNG per cache. It exists for R-BMA's uniform layer, which
// runs one cache per rack — constructing n separate Marking values costs
// O(n) allocations per algorithm instance, while a bank costs O(1).
//
// Items are int32 values in a per-cache universe [0, universe). R-BMA uses
// the other-endpoint encoding: rack w's cache stores pair {w, o} as the
// item o, so universe = n. Eviction decisions depend only on slot positions
// and the per-cache RNG stream — never on item values — so a bank cache
// behaves bit-for-bit like a Marking cache seeded with the same value and
// fed the same pair sequence under any injective item encoding.
type MarkingBank struct {
	n, k     int
	universe int
	pos      []int32 // n*universe: pos[c*universe+item], -1 = absent
	slots    []int32 // n*k: cached items; per cache, [0, nMarked) are marked
	lens     []int32 // n
	nMarked  []int32 // n
	rngs     []stats.Rand
}

// NewMarkingBank returns a bank of n empty marking caches of capacity k
// over per-cache item universes [0, universe). Each cache's RNG is seeded
// with one draw from master, in cache order — the same seeding a loop of
// NewMarking(k, master.Uint64()) would perform.
func NewMarkingBank(n, k, universe int, master *stats.Rand) *MarkingBank {
	validateCap(k)
	if n < 1 || universe < 1 {
		panic("paging: NewMarkingBank requires n >= 1 and universe >= 1")
	}
	b := &MarkingBank{
		n:        n,
		k:        k,
		universe: universe,
		pos:      make([]int32, n*universe),
		slots:    make([]int32, n*k),
		lens:     make([]int32, n),
		nMarked:  make([]int32, n),
		rngs:     make([]stats.Rand, n),
	}
	b.Reset(master)
	return b
}

// N returns the number of caches.
func (b *MarkingBank) N() int { return b.n }

// Cap returns each cache's capacity.
func (b *MarkingBank) Cap() int { return b.k }

// Len returns the number of items cached at cache c.
func (b *MarkingBank) Len(c int) int { return int(b.lens[c]) }

// Contains reports whether cache c holds item.
func (b *MarkingBank) Contains(c int, item int32) bool {
	return b.pos[c*b.universe+int(item)] >= 0
}

// Access requests item on cache c, with exactly the semantics of
// Marking.Access: a hit marks the item; a miss fetches it (evicting a
// uniformly random unmarked item if the cache is full, opening a new phase
// first when everything is marked) and marks it. It returns the evicted
// item, whether an eviction happened, and whether the access was a miss.
func (b *MarkingBank) Access(c int, item int32) (evictedItem int32, evicted, miss bool) {
	pos := b.pos[c*b.universe : (c+1)*b.universe]
	slots := b.slots[c*b.k : (c+1)*b.k]
	ln := b.lens[c]
	nm := b.nMarked[c]
	if i := pos[item]; i >= 0 {
		// Hit: move the item into the marked prefix.
		if i >= nm {
			slots[i], slots[nm] = slots[nm], slots[i]
			pos[slots[i]] = i
			pos[slots[nm]] = nm
			b.nMarked[c] = nm + 1
		}
		return -1, false, false
	}
	evictedItem = -1
	if int(ln) == b.k {
		if nm == ln {
			// All marked: new phase, clear all marks.
			nm = 0
			b.nMarked[c] = 0
		}
		idx := nm + int32(b.rngs[c].Intn(int(ln-nm)))
		evictedItem = slots[idx]
		evicted = true
		ln--
		slots[idx] = slots[ln]
		pos[slots[idx]] = idx
		pos[evictedItem] = -1
	}
	// Fetch the new item and mark it (swap into the marked prefix).
	slots[ln] = item
	pos[item] = ln
	ln++
	nm = b.nMarked[c]
	slots[ln-1], slots[nm] = slots[nm], slots[ln-1]
	pos[slots[ln-1]] = ln - 1
	pos[slots[nm]] = nm
	b.nMarked[c] = nm + 1
	b.lens[c] = ln
	return evictedItem, evicted, true
}

// Reset empties every cache and reseeds every RNG with one draw from
// master, in cache order.
func (b *MarkingBank) Reset(master *stats.Rand) {
	for i := range b.pos {
		b.pos[i] = -1
	}
	for c := 0; c < b.n; c++ {
		b.lens[c] = 0
		b.nMarked[c] = 0
		b.rngs[c].Seed(master.Uint64())
	}
}
