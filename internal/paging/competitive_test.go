package paging

import (
	"testing"

	"obm/internal/stats"
)

// TestLRUWithinKTimesOPT checks LRU's classic k-competitiveness bound
// empirically on random sequences (with the additive constant absorbed by
// generous trace lengths).
func TestLRUWithinKTimesOPT(t *testing.T) {
	r := stats.NewRand(41)
	for trial := 0; trial < 30; trial++ {
		k := 2 + r.Intn(5)
		universe := k + 1 + r.Intn(6)
		seq := make([]uint64, 3000)
		for i := range seq {
			seq[i] = uint64(r.Intn(universe))
		}
		opt := OfflineCost(k, seq)
		lru := Cost(NewLRUFactory, k, 0, seq)
		if float64(lru) > float64(k*opt)+float64(k) {
			t.Fatalf("trial %d: LRU %d exceeds k·OPT = %d·%d", trial, lru, k, opt)
		}
	}
}

// TestMarkingWithin2HkOPT checks randomized marking's 2·H_k bound on
// random inputs, averaged over seeds.
func TestMarkingWithin2HkOPT(t *testing.T) {
	r := stats.NewRand(43)
	for trial := 0; trial < 15; trial++ {
		k := 3 + r.Intn(5)
		universe := k + 2 + r.Intn(5)
		seq := make([]uint64, 4000)
		for i := range seq {
			seq[i] = uint64(r.Intn(universe))
		}
		opt := OfflineCost(k, seq)
		var sum float64
		const seeds = 5
		for s := uint64(0); s < seeds; s++ {
			sum += float64(Cost(NewMarkingFactory, k, s, seq))
		}
		avg := sum / seeds
		hk := 0.0
		for i := 1; i <= k; i++ {
			hk += 1 / float64(i)
		}
		bound := 2*hk*float64(opt) + float64(2*k)
		if avg > bound {
			t.Fatalf("trial %d (k=%d): marking %v exceeds 2·H_k bound %v (OPT %d)",
				trial, k, avg, bound, opt)
		}
	}
}

// TestCLOCKApproximatesLRU confirms CLOCK stays within a modest factor of
// LRU on locality-heavy sequences.
func TestCLOCKApproximatesLRU(t *testing.T) {
	r := stats.NewRand(47)
	seq := make([]uint64, 30000)
	cur := uint64(0)
	for i := range seq {
		if r.Bool(0.7) {
			// Local: stay near the current item.
			cur = (cur + uint64(r.Intn(3))) % 12
		} else {
			cur = uint64(r.Intn(30))
		}
		seq[i] = cur
	}
	k := 8
	lru := Cost(NewLRUFactory, k, 0, seq)
	clock := Cost(NewCLOCKFactory, k, 0, seq)
	if float64(clock) > 1.5*float64(lru) {
		t.Fatalf("CLOCK %d too far above LRU %d", clock, lru)
	}
}

// TestHitRateOrderingOnZipf documents the expected hit-rate ordering on a
// skewed i.i.d. workload: frequency-aware LFU ≥ recency algorithms ≥
// random eviction.
func TestHitRateOrderingOnZipf(t *testing.T) {
	r := stats.NewRand(53)
	z := stats.NewZipf(100, 1.1)
	seq := make([]uint64, 60000)
	for i := range seq {
		seq[i] = uint64(z.Sample(r))
	}
	k := 10
	lfu := Cost(NewLFUFactory, k, 0, seq)
	lru := Cost(NewLRUFactory, k, 0, seq)
	rnd := Cost(NewRandomEvictFactory, k, 1, seq)
	if lfu > lru {
		t.Fatalf("LFU (%d) should beat LRU (%d) on i.i.d. Zipf", lfu, lru)
	}
	if float64(lru) > 1.1*float64(rnd) {
		t.Fatalf("LRU (%d) should not trail random (%d) badly", lru, rnd)
	}
}
