package paging_test

import (
	"fmt"

	"obm/internal/paging"
)

// ExampleMarking demonstrates phase behaviour of the randomized marking
// algorithm at the heart of R-BMA.
func ExampleMarking() {
	c := paging.NewMarking(2, 7)
	c.Access(1) // miss, marks 1
	c.Access(2) // miss, marks 2
	_, _, miss := c.Access(1)
	fmt.Printf("hit on 1: miss=%v, phases=%d\n", miss, c.Phases())
	c.Access(3) // all marked -> new phase, evicts one of {1,2}
	fmt.Printf("after overflow: phases=%d len=%d\n", c.Phases(), c.Len())
	// Output:
	// hit on 1: miss=false, phases=0
	// after overflow: phases=1 len=2
}

// ExampleOfflineCost computes Belady's optimal miss count, the denominator
// of empirical competitive ratios.
func ExampleOfflineCost() {
	seq := []uint64{1, 2, 3, 1, 2, 3}
	fmt.Println(paging.OfflineCost(2, seq))
	// Output: 4
}
