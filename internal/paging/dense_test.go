package paging

import (
	"testing"

	"obm/internal/stats"
)

// Every cache must behave bit-for-bit identically in map mode and
// dense-universe mode: same hits, same evictions, in the same order.
func TestDenseUniverseEquivalence(t *testing.T) {
	factories := map[string]Factory{
		"marking":     NewMarkingFactory,
		"marking-det": NewDeterministicMarkingFactory,
		"random":      NewRandomEvictFactory,
		"lru":         NewLRUFactory,
		"fifo":        NewFIFOFactory,
		"clock":       NewCLOCKFactory,
		"lfu":         NewLFUFactory,
	}
	const (
		k        = 7
		universe = 40
		accesses = 20000
	)
	for name, f := range factories {
		t.Run(name, func(t *testing.T) {
			plain := f(k, 42)
			dense := f(k, 42)
			if !DeclareUniverse(dense, universe) {
				t.Fatalf("%s does not support DeclareUniverse", name)
			}
			r := stats.NewRand(99)
			for i := 0; i < accesses; i++ {
				item := uint64(r.Intn(universe))
				e1, ev1, m1 := plain.Access(item)
				e2, ev2, m2 := dense.Access(item)
				if ev1 != ev2 || m1 != m2 || (ev1 && e1 != e2) {
					t.Fatalf("access %d (item %d): map mode (%d,%v,%v) != dense mode (%d,%v,%v)",
						i, item, e1, ev1, m1, e2, ev2, m2)
				}
				if plain.Len() != dense.Len() {
					t.Fatalf("access %d: Len %d != %d", i, plain.Len(), dense.Len())
				}
			}
			// Reset must preserve the dense mode and still agree.
			plain.Reset()
			dense.Reset()
			for i := 0; i < 1000; i++ {
				item := uint64(r.Intn(universe))
				e1, ev1, m1 := plain.Access(item)
				e2, ev2, m2 := dense.Access(item)
				if ev1 != ev2 || m1 != m2 || (ev1 && e1 != e2) {
					t.Fatalf("post-Reset access %d diverged", i)
				}
			}
		})
	}
}

func TestDeclareUniverseUnsupported(t *testing.T) {
	if DeclareUniverse(NewMIN(3, nil), 10) {
		t.Error("MIN unexpectedly supports DeclareUniverse")
	}
}

func TestDeclareUniverseNonEmptyPanics(t *testing.T) {
	c := NewLRU(3)
	c.Access(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for DeclareUniverse on non-empty cache")
		}
	}()
	DeclareUniverse(c, 10)
}

// A MarkingBank cache must replicate a standalone Marking cache seeded the
// same way and fed the same items, for any injective item encoding.
func TestMarkingBankEquivalence(t *testing.T) {
	const (
		n        = 5
		k        = 4
		universe = 23
		accesses = 30000
	)
	master := stats.NewRand(7)
	bank := NewMarkingBank(n, k, universe, master)
	master = stats.NewRand(7) // replay the same seed draws
	caches := make([]*Marking, n)
	for i := range caches {
		caches[i] = NewMarking(k, master.Uint64())
	}
	r := stats.NewRand(1234)
	for i := 0; i < accesses; i++ {
		c := r.Intn(n)
		item := int32(r.Intn(universe))
		be, bev, bm := bank.Access(c, item)
		me, mev, mm := caches[c].Access(uint64(item))
		if bev != mev || bm != mm || (bev && uint64(be) != me) {
			t.Fatalf("access %d (cache %d, item %d): bank (%d,%v,%v) != marking (%d,%v,%v)",
				i, c, item, be, bev, bm, me, mev, mm)
		}
		if bank.Contains(c, item) != caches[c].Contains(uint64(item)) {
			t.Fatalf("access %d: Contains mismatch", i)
		}
		if bank.Len(c) != caches[c].Len() {
			t.Fatalf("access %d: Len mismatch", i)
		}
	}
	// Reset with a fresh master must keep the two in lockstep.
	master = stats.NewRand(8)
	bank.Reset(master)
	master = stats.NewRand(8)
	for i := range caches {
		caches[i] = NewMarking(k, master.Uint64())
	}
	for i := 0; i < 2000; i++ {
		c := r.Intn(n)
		item := int32(r.Intn(universe))
		be, bev, bm := bank.Access(c, item)
		me, mev, mm := caches[c].Access(uint64(item))
		if bev != mev || bm != mm || (bev && uint64(be) != me) {
			t.Fatalf("post-Reset access %d diverged", i)
		}
	}
}
