package paging

// LFU evicts the item with the smallest access frequency (ties broken by
// least-recent use). Frequencies persist only while the item is cached.
type LFU struct {
	k     int
	items map[uint64]*lfuEntry
	tick  uint64
}

type lfuEntry struct {
	freq     int
	lastUsed uint64
}

// NewLFU returns an empty LFU cache of capacity k.
func NewLFU(k int) *LFU {
	validateCap(k)
	return &LFU{k: k, items: make(map[uint64]*lfuEntry, k)}
}

// NewLFUFactory adapts NewLFU to the Factory signature.
func NewLFUFactory(k int, _ uint64) Cache { return NewLFU(k) }

// Name implements Cache.
func (c *LFU) Name() string { return "lfu" }

// Cap implements Cache.
func (c *LFU) Cap() int { return c.k }

// Len implements Cache.
func (c *LFU) Len() int { return len(c.items) }

// Contains implements Cache.
func (c *LFU) Contains(item uint64) bool { _, ok := c.items[item]; return ok }

// Access implements Cache.
func (c *LFU) Access(item uint64) (uint64, bool, bool) {
	c.tick++
	if e, ok := c.items[item]; ok {
		e.freq++
		e.lastUsed = c.tick
		return 0, false, false
	}
	var evictedItem uint64
	evicted := false
	if len(c.items) == c.k {
		var victim uint64
		var ve *lfuEntry
		for it, e := range c.items {
			if ve == nil || e.freq < ve.freq || (e.freq == ve.freq && e.lastUsed < ve.lastUsed) {
				victim, ve = it, e
			}
		}
		delete(c.items, victim)
		evictedItem, evicted = victim, true
	}
	c.items[item] = &lfuEntry{freq: 1, lastUsed: c.tick}
	return evictedItem, evicted, true
}

// Items implements Cache.
func (c *LFU) Items() []uint64 {
	out := make([]uint64, 0, len(c.items))
	for it := range c.items {
		out = append(out, it)
	}
	return out
}

// Reset implements Cache.
func (c *LFU) Reset() {
	c.items = make(map[uint64]*lfuEntry, c.k)
	c.tick = 0
}

// FWF is flush-when-full: when the cache is full and a miss occurs, the
// entire cache is emptied. The simplest marking-family algorithm; its misses
// count phases exactly. Note that unlike the other caches, a single Access
// can evict many items; FWF therefore does not implement the Cache
// interface's one-eviction contract and gets its own type.
type FWF struct {
	k     int
	items map[uint64]struct{}
}

// NewFWF returns an empty flush-when-full cache of capacity k.
func NewFWF(k int) *FWF {
	validateCap(k)
	return &FWF{k: k, items: make(map[uint64]struct{}, k)}
}

// Cap returns the capacity.
func (c *FWF) Cap() int { return c.k }

// Len returns the number of cached items.
func (c *FWF) Len() int { return len(c.items) }

// Contains reports whether item is cached.
func (c *FWF) Contains(item uint64) bool { _, ok := c.items[item]; return ok }

// Access requests item, returning all evicted items and whether it missed.
func (c *FWF) Access(item uint64) (evictedItems []uint64, miss bool) {
	if _, ok := c.items[item]; ok {
		return nil, false
	}
	if len(c.items) == c.k {
		evictedItems = make([]uint64, 0, len(c.items))
		for it := range c.items {
			evictedItems = append(evictedItems, it)
		}
		clear(c.items)
	}
	c.items[item] = struct{}{}
	return evictedItems, true
}
