package paging

// LFU evicts the item with the smallest access frequency (ties broken by
// least-recent use). Frequencies persist only while the item is cached.
// Entries live in a fixed slab of k slots (no per-item allocation); the
// victim scan walks the slab, which is deterministic because the
// (frequency, last-use) order is total — last-use ticks are unique.
type LFU struct {
	k       int
	pos     posTable // item -> slot
	items   []uint64 // slot -> item
	entries []lfuEntry
	count   int
	tick    uint64
}

type lfuEntry struct {
	freq     int
	lastUsed uint64
}

// NewLFU returns an empty LFU cache of capacity k.
func NewLFU(k int) *LFU {
	validateCap(k)
	return &LFU{k: k, pos: newPosTable(k), items: make([]uint64, k), entries: make([]lfuEntry, k)}
}

// NewLFUFactory adapts NewLFU to the Factory signature.
func NewLFUFactory(k int, _ uint64) Cache { return NewLFU(k) }

// Name implements Cache.
func (c *LFU) Name() string { return "lfu" }

// Cap implements Cache.
func (c *LFU) Cap() int { return c.k }

// Len implements Cache.
func (c *LFU) Len() int { return c.count }

// Contains implements Cache.
func (c *LFU) Contains(item uint64) bool { return c.pos.contains(item) }

// DeclareUniverse switches the position map to a flat slot table over items
// [0, size). The cache must be empty.
func (c *LFU) DeclareUniverse(size int) { c.pos.declareUniverse(size) }

// Access implements Cache.
func (c *LFU) Access(item uint64) (uint64, bool, bool) {
	c.tick++
	if i, ok := c.pos.get(item); ok {
		c.entries[i].freq++
		c.entries[i].lastUsed = c.tick
		return 0, false, false
	}
	var evictedItem uint64
	evicted := false
	slot := c.count
	if c.count == c.k {
		vs := 0
		for s := 1; s < c.count; s++ {
			e, ve := &c.entries[s], &c.entries[vs]
			if e.freq < ve.freq || (e.freq == ve.freq && e.lastUsed < ve.lastUsed) {
				vs = s
			}
		}
		evictedItem, evicted = c.items[vs], true
		c.pos.del(evictedItem)
		c.count--
		slot = vs
	}
	c.items[slot] = item
	c.entries[slot] = lfuEntry{freq: 1, lastUsed: c.tick}
	c.pos.set(item, int32(slot))
	c.count++
	return evictedItem, evicted, true
}

// Items implements Cache.
func (c *LFU) Items() []uint64 {
	return append([]uint64(nil), c.items[:c.count]...)
}

// Reset implements Cache.
func (c *LFU) Reset() {
	c.pos.reset(c.k)
	c.count = 0
	c.tick = 0
}

// FWF is flush-when-full: when the cache is full and a miss occurs, the
// entire cache is emptied. The simplest marking-family algorithm; its misses
// count phases exactly. Note that unlike the other caches, a single Access
// can evict many items; FWF therefore does not implement the Cache
// interface's one-eviction contract and gets its own type.
type FWF struct {
	k     int
	items map[uint64]struct{}
}

// NewFWF returns an empty flush-when-full cache of capacity k.
func NewFWF(k int) *FWF {
	validateCap(k)
	return &FWF{k: k, items: make(map[uint64]struct{}, k)}
}

// Cap returns the capacity.
func (c *FWF) Cap() int { return c.k }

// Len returns the number of cached items.
func (c *FWF) Len() int { return len(c.items) }

// Contains reports whether item is cached.
func (c *FWF) Contains(item uint64) bool { _, ok := c.items[item]; return ok }

// Access requests item, returning all evicted items and whether it missed.
func (c *FWF) Access(item uint64) (evictedItems []uint64, miss bool) {
	if _, ok := c.items[item]; ok {
		return nil, false
	}
	if len(c.items) == c.k {
		evictedItems = make([]uint64, 0, len(c.items))
		for it := range c.items {
			evictedItems = append(evictedItems, it)
		}
		clear(c.items)
	}
	c.items[item] = struct{}{}
	return evictedItems, true
}
