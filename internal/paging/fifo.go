package paging

// FIFO evicts the item fetched longest ago, regardless of use. The fetch
// queue is a fixed ring buffer of k slots; membership supports the
// dense-universe slot table via DeclareUniverse.
type FIFO struct {
	k     int
	pos   posTable // membership only (stored value unused)
	ring  []uint64
	start int // index of the oldest item
	count int
}

// NewFIFO returns an empty FIFO cache of capacity k.
func NewFIFO(k int) *FIFO {
	validateCap(k)
	return &FIFO{k: k, pos: newPosTable(k), ring: make([]uint64, k)}
}

// NewFIFOFactory adapts NewFIFO to the Factory signature.
func NewFIFOFactory(k int, _ uint64) Cache { return NewFIFO(k) }

// Name implements Cache.
func (c *FIFO) Name() string { return "fifo" }

// Cap implements Cache.
func (c *FIFO) Cap() int { return c.k }

// Len implements Cache.
func (c *FIFO) Len() int { return c.count }

// Contains implements Cache.
func (c *FIFO) Contains(item uint64) bool { return c.pos.contains(item) }

// DeclareUniverse switches the membership map to a flat slot table over
// items [0, size). The cache must be empty.
func (c *FIFO) DeclareUniverse(size int) { c.pos.declareUniverse(size) }

// Access implements Cache.
func (c *FIFO) Access(item uint64) (uint64, bool, bool) {
	if c.pos.contains(item) {
		return 0, false, false
	}
	var evictedItem uint64
	evicted := false
	if c.count == c.k {
		evictedItem = c.ring[c.start]
		c.start++
		if c.start == c.k {
			c.start = 0
		}
		c.count--
		c.pos.del(evictedItem)
		evicted = true
	}
	i := c.start + c.count
	if i >= c.k {
		i -= c.k
	}
	c.ring[i] = item
	c.count++
	c.pos.set(item, 0)
	return evictedItem, evicted, true
}

// Items implements Cache, in fetch order (oldest first).
func (c *FIFO) Items() []uint64 {
	out := make([]uint64, 0, c.count)
	for j := 0; j < c.count; j++ {
		i := c.start + j
		if i >= c.k {
			i -= c.k
		}
		out = append(out, c.ring[i])
	}
	return out
}

// Reset implements Cache.
func (c *FIFO) Reset() {
	c.pos.reset(c.k)
	c.start, c.count = 0, 0
}

// CLOCK approximates LRU with a second-chance bit per item.
type CLOCK struct {
	k     int
	pos   posTable // item -> slot index
	slots []clockSlot
	hand  int
	count int
}

type clockSlot struct {
	item uint64
	used bool
	full bool
}

// NewCLOCK returns an empty CLOCK cache of capacity k.
func NewCLOCK(k int) *CLOCK {
	validateCap(k)
	return &CLOCK{k: k, pos: newPosTable(k), slots: make([]clockSlot, k)}
}

// NewCLOCKFactory adapts NewCLOCK to the Factory signature.
func NewCLOCKFactory(k int, _ uint64) Cache { return NewCLOCK(k) }

// Name implements Cache.
func (c *CLOCK) Name() string { return "clock" }

// Cap implements Cache.
func (c *CLOCK) Cap() int { return c.k }

// Len implements Cache.
func (c *CLOCK) Len() int { return c.count }

// Contains implements Cache.
func (c *CLOCK) Contains(item uint64) bool { return c.pos.contains(item) }

// DeclareUniverse switches the position map to a flat slot table over items
// [0, size). The cache must be empty.
func (c *CLOCK) DeclareUniverse(size int) { c.pos.declareUniverse(size) }

// Access implements Cache.
func (c *CLOCK) Access(item uint64) (uint64, bool, bool) {
	if i, ok := c.pos.get(item); ok {
		c.slots[i].used = true
		return 0, false, false
	}
	// Find a slot: first an empty one, otherwise sweep the hand.
	if c.count < c.k {
		for i := range c.slots {
			if !c.slots[i].full {
				c.slots[i] = clockSlot{item: item, used: true, full: true}
				c.pos.set(item, int32(i))
				c.count++
				return 0, false, true
			}
		}
	}
	for {
		s := &c.slots[c.hand]
		if s.used {
			s.used = false
			c.hand = (c.hand + 1) % c.k
			continue
		}
		evictedItem := s.item
		c.pos.del(evictedItem)
		*s = clockSlot{item: item, used: true, full: true}
		c.pos.set(item, int32(c.hand))
		c.hand = (c.hand + 1) % c.k
		return evictedItem, true, true
	}
}

// Items implements Cache.
func (c *CLOCK) Items() []uint64 {
	out := make([]uint64, 0, c.k)
	for i := range c.slots {
		if c.slots[i].full {
			out = append(out, c.slots[i].item)
		}
	}
	return out
}

// Reset implements Cache.
func (c *CLOCK) Reset() {
	c.pos.reset(c.k)
	for i := range c.slots {
		c.slots[i] = clockSlot{}
	}
	c.hand = 0
	c.count = 0
}
