package paging

// FIFO evicts the item fetched longest ago, regardless of use.
type FIFO struct {
	k     int
	items map[uint64]struct{}
	queue []uint64 // fetch order; queue[0] is the oldest
}

// NewFIFO returns an empty FIFO cache of capacity k.
func NewFIFO(k int) *FIFO {
	validateCap(k)
	return &FIFO{k: k, items: make(map[uint64]struct{}, k)}
}

// NewFIFOFactory adapts NewFIFO to the Factory signature.
func NewFIFOFactory(k int, _ uint64) Cache { return NewFIFO(k) }

// Name implements Cache.
func (c *FIFO) Name() string { return "fifo" }

// Cap implements Cache.
func (c *FIFO) Cap() int { return c.k }

// Len implements Cache.
func (c *FIFO) Len() int { return len(c.items) }

// Contains implements Cache.
func (c *FIFO) Contains(item uint64) bool { _, ok := c.items[item]; return ok }

// Access implements Cache.
func (c *FIFO) Access(item uint64) (uint64, bool, bool) {
	if _, ok := c.items[item]; ok {
		return 0, false, false
	}
	var evictedItem uint64
	evicted := false
	if len(c.items) == c.k {
		evictedItem = c.queue[0]
		c.queue = c.queue[1:]
		delete(c.items, evictedItem)
		evicted = true
	}
	c.items[item] = struct{}{}
	c.queue = append(c.queue, item)
	return evictedItem, evicted, true
}

// Items implements Cache.
func (c *FIFO) Items() []uint64 { return append([]uint64(nil), c.queue...) }

// Reset implements Cache.
func (c *FIFO) Reset() {
	c.items = make(map[uint64]struct{}, c.k)
	c.queue = nil
}

// CLOCK approximates LRU with a second-chance bit per item.
type CLOCK struct {
	k     int
	items map[uint64]int // item -> slot index
	slots []clockSlot
	hand  int
}

type clockSlot struct {
	item uint64
	used bool
	full bool
}

// NewCLOCK returns an empty CLOCK cache of capacity k.
func NewCLOCK(k int) *CLOCK {
	validateCap(k)
	return &CLOCK{k: k, items: make(map[uint64]int, k), slots: make([]clockSlot, k)}
}

// NewCLOCKFactory adapts NewCLOCK to the Factory signature.
func NewCLOCKFactory(k int, _ uint64) Cache { return NewCLOCK(k) }

// Name implements Cache.
func (c *CLOCK) Name() string { return "clock" }

// Cap implements Cache.
func (c *CLOCK) Cap() int { return c.k }

// Len implements Cache.
func (c *CLOCK) Len() int { return len(c.items) }

// Contains implements Cache.
func (c *CLOCK) Contains(item uint64) bool { _, ok := c.items[item]; return ok }

// Access implements Cache.
func (c *CLOCK) Access(item uint64) (uint64, bool, bool) {
	if i, ok := c.items[item]; ok {
		c.slots[i].used = true
		return 0, false, false
	}
	// Find a slot: first an empty one, otherwise sweep the hand.
	if len(c.items) < c.k {
		for i := range c.slots {
			if !c.slots[i].full {
				c.slots[i] = clockSlot{item: item, used: true, full: true}
				c.items[item] = i
				return 0, false, true
			}
		}
	}
	for {
		s := &c.slots[c.hand]
		if s.used {
			s.used = false
			c.hand = (c.hand + 1) % c.k
			continue
		}
		evictedItem := s.item
		delete(c.items, evictedItem)
		*s = clockSlot{item: item, used: true, full: true}
		c.items[item] = c.hand
		c.hand = (c.hand + 1) % c.k
		return evictedItem, true, true
	}
}

// Items implements Cache.
func (c *CLOCK) Items() []uint64 {
	out := make([]uint64, 0, len(c.items))
	for it := range c.items {
		out = append(out, it)
	}
	return out
}

// Reset implements Cache.
func (c *CLOCK) Reset() {
	c.items = make(map[uint64]int, c.k)
	c.slots = make([]clockSlot, c.k)
	c.hand = 0
}
