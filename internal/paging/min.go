package paging

import "fmt"

// MIN is Belady's offline-optimal paging algorithm: on a miss with a full
// cache it evicts the cached item whose next use is farthest in the future.
// It must be constructed with the full request sequence and accessed in
// exactly that order; Access panics otherwise. MIN minimizes the number of
// misses over any (even offline) algorithm with the same cache size, so it
// provides the offline-optimum denominator in empirical competitive-ratio
// measurements.
type MIN struct {
	k       int
	seq     []uint64
	nextOcc []int          // nextOcc[i]: next index after i with the same item (len(seq) if none)
	pos     int            // current position in seq
	items   map[uint64]int // cached item -> its next-use index
}

// NewMIN builds the offline MIN cache for the given sequence.
func NewMIN(k int, seq []uint64) *MIN {
	validateCap(k)
	m := &MIN{
		k:       k,
		seq:     seq,
		nextOcc: make([]int, len(seq)),
		items:   make(map[uint64]int, k),
	}
	last := make(map[uint64]int, len(seq))
	for i := len(seq) - 1; i >= 0; i-- {
		if j, ok := last[seq[i]]; ok {
			m.nextOcc[i] = j
		} else {
			m.nextOcc[i] = len(seq)
		}
		last[seq[i]] = i
	}
	return m
}

// Name implements Cache.
func (c *MIN) Name() string { return "min" }

// Cap implements Cache.
func (c *MIN) Cap() int { return c.k }

// Len implements Cache.
func (c *MIN) Len() int { return len(c.items) }

// Contains implements Cache.
func (c *MIN) Contains(item uint64) bool { _, ok := c.items[item]; return ok }

// Access implements Cache. The item must equal the next element of the
// sequence MIN was constructed with.
func (c *MIN) Access(item uint64) (uint64, bool, bool) {
	if c.pos >= len(c.seq) {
		panic("paging: MIN accessed past the end of its sequence")
	}
	if c.seq[c.pos] != item {
		panic(fmt.Sprintf("paging: MIN accessed out of order at %d: got %d, want %d",
			c.pos, item, c.seq[c.pos]))
	}
	next := c.nextOcc[c.pos]
	c.pos++
	if _, ok := c.items[item]; ok {
		c.items[item] = next
		return 0, false, false
	}
	var evictedItem uint64
	evicted := false
	if len(c.items) == c.k {
		var victim uint64
		far := -1
		for it, nu := range c.items {
			if nu > far {
				far = nu
				victim = it
			}
		}
		delete(c.items, victim)
		evictedItem, evicted = victim, true
	}
	c.items[item] = next
	return evictedItem, evicted, true
}

// Items implements Cache.
func (c *MIN) Items() []uint64 {
	out := make([]uint64, 0, len(c.items))
	for it := range c.items {
		out = append(out, it)
	}
	return out
}

// Reset implements Cache, rewinding to the start of the sequence.
func (c *MIN) Reset() {
	c.pos = 0
	c.items = make(map[uint64]int, c.k)
}

// OfflineCost returns MIN's total miss count on its whole sequence.
func OfflineCost(k int, seq []uint64) int {
	m := NewMIN(k, seq)
	misses := 0
	for _, it := range seq {
		if _, _, miss := m.Access(it); miss {
			misses++
		}
	}
	return misses
}

// Phases decomposes seq into k-phases: maximal consecutive segments
// containing at most k distinct items. Returns the start index of each
// phase. Phase counting underlies the analysis of all marking algorithms.
func Phases(k int, seq []uint64) []int {
	if k < 1 {
		panic("paging: Phases with k < 1")
	}
	starts := []int{}
	distinct := make(map[uint64]struct{}, k+1)
	for i, it := range seq {
		if len(starts) == 0 {
			starts = append(starts, i)
		}
		if _, ok := distinct[it]; !ok && len(distinct) == k {
			starts = append(starts, i)
			clear(distinct)
		}
		distinct[it] = struct{}{}
	}
	return starts
}
