// Package paging implements the online paging (caching) algorithms that
// R-BMA runs at every node (paper §2.2): a cache of capacity b holds node
// pairs, and the randomized marking algorithm gives the O(log(b/(b-a+1)))
// competitive ratio (Fiat et al. 1991; Young 1991 for the (b,a) analysis).
//
// The package also provides the deterministic algorithms used as ablation
// baselines (LRU, FIFO, CLOCK, LFU, random eviction, flush-when-full) and
// Belady's offline MIN for lower-bound comparisons.
//
// Cost model: paging algorithms pay 1 per fetch (miss); evictions are free
// and bypassing is not allowed. These are the conventions of the paging
// literature the paper reduces to; the R-BMA layer translates them into
// matching reconfiguration costs.
//
// Dense universes: the b-matching reduction draws items from a universe
// known up front (rack pairs, or other-endpoints per rack), so every
// online cache here supports DeclareUniverse, replacing its position map
// with a flat []int32 slot table; MarkingBank goes further and runs n
// marking caches in shared slabs. Both are behavior-preserving: eviction
// decisions are positional and seeded, never map-order-dependent, so a
// given seed produces the same run in every mode — the repository's
// seed-reproducibility contract.
package paging

// Cache is an online paging algorithm over uint64 items with a fixed
// capacity. Implementations are not safe for concurrent use.
type Cache interface {
	// Name identifies the algorithm.
	Name() string
	// Cap returns the capacity (the paper's b).
	Cap() int
	// Len returns the number of cached items.
	Len() int
	// Contains reports whether item is cached.
	Contains(item uint64) bool
	// Access requests item. If it is cached (hit), the algorithm may update
	// internal state only. On a miss the item is fetched, evicting at most
	// one cached item if the cache is full. Access returns the evicted item
	// (evicted == true) and whether the access was a miss.
	Access(item uint64) (evictedItem uint64, evicted, miss bool)
	// Items returns the cached items in unspecified order.
	Items() []uint64
	// Reset empties the cache and clears all algorithm state.
	Reset()
}

// Factory constructs a fresh cache of capacity k. The seed parameterizes
// randomized algorithms; deterministic ones ignore it.
type Factory func(k int, seed uint64) Cache

// Cost replays a request sequence through a fresh cache from factory f and
// returns the number of misses (the paging cost).
func Cost(f Factory, k int, seed uint64, seq []uint64) int {
	c := f(k, seed)
	misses := 0
	for _, it := range seq {
		if _, _, miss := c.Access(it); miss {
			misses++
		}
	}
	return misses
}

func validateCap(k int) {
	if k < 1 {
		panic("paging: cache capacity must be >= 1")
	}
}
