package paging

import (
	"testing"
	"testing/quick"

	"obm/internal/stats"
)

// allFactories enumerates every online Cache implementation for shared
// property tests.
var allFactories = map[string]Factory{
	"lru":         NewLRUFactory,
	"fifo":        NewFIFOFactory,
	"clock":       NewCLOCKFactory,
	"lfu":         NewLFUFactory,
	"marking":     NewMarkingFactory,
	"marking-det": NewDeterministicMarkingFactory,
	"random":      NewRandomEvictFactory,
}

func TestCacheNeverExceedsCapacity(t *testing.T) {
	for name, f := range allFactories {
		t.Run(name, func(t *testing.T) {
			if err := quick.Check(func(raw []uint8, kRaw uint8) bool {
				k := int(kRaw%7) + 1
				c := f(k, 42)
				for _, v := range raw {
					item := uint64(v % 20)
					c.Access(item)
					if c.Len() > k {
						return false
					}
					if !c.Contains(item) {
						return false // no bypassing allowed
					}
				}
				return true
			}, &quick.Config{MaxCount: 200}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCacheEvictionConsistency(t *testing.T) {
	// An eviction must report an item that was cached and is no longer;
	// hits must never evict.
	for name, f := range allFactories {
		t.Run(name, func(t *testing.T) {
			r := stats.NewRand(7)
			c := f(4, 9)
			present := map[uint64]bool{}
			for i := 0; i < 5000; i++ {
				item := uint64(r.Intn(12))
				wasPresent := present[item]
				ev, evicted, miss := c.Access(item)
				if miss == wasPresent {
					t.Fatalf("step %d: miss=%v but wasPresent=%v", i, miss, wasPresent)
				}
				if !miss && evicted {
					t.Fatalf("step %d: hit evicted an item", i)
				}
				if evicted {
					if !present[ev] {
						t.Fatalf("step %d: evicted %d which was not cached", i, ev)
					}
					if c.Contains(ev) {
						t.Fatalf("step %d: evicted %d still cached", i, ev)
					}
					delete(present, ev)
				}
				present[item] = true
				if len(present) != c.Len() {
					t.Fatalf("step %d: shadow size %d != cache size %d", i, len(present), c.Len())
				}
			}
		})
	}
}

func TestResetEmptiesCache(t *testing.T) {
	for name, f := range allFactories {
		c := f(3, 1)
		c.Access(1)
		c.Access(2)
		c.Reset()
		if c.Len() != 0 || c.Contains(1) {
			t.Fatalf("%s: Reset did not empty the cache", name)
		}
	}
}

func TestLRUOrder(t *testing.T) {
	c := NewLRU(3)
	for _, v := range []uint64{1, 2, 3} {
		c.Access(v)
	}
	c.Access(1)                      // 1 becomes most recent
	ev, evicted, miss := c.Access(4) // evicts 2 (LRU)
	if !miss || !evicted || ev != 2 {
		t.Fatalf("expected to evict 2, got (%d,%v,%v)", ev, evicted, miss)
	}
}

func TestFIFOOrder(t *testing.T) {
	c := NewFIFO(3)
	for _, v := range []uint64{1, 2, 3} {
		c.Access(v)
	}
	c.Access(1)             // hit: does not refresh FIFO position
	ev, _, _ := c.Access(4) // evicts 1 (first in)
	if ev != 1 {
		t.Fatalf("FIFO should evict 1, evicted %d", ev)
	}
}

func TestLFUKeepsFrequentItem(t *testing.T) {
	c := NewLFU(2)
	c.Access(1)
	c.Access(1)
	c.Access(1)
	c.Access(2)
	ev, _, _ := c.Access(3) // 2 has freq 1, 1 has freq 3
	if ev != 2 {
		t.Fatalf("LFU should evict 2, evicted %d", ev)
	}
}

func TestMarkingPhaseStructure(t *testing.T) {
	c := NewMarking(3, 5)
	// Fill and mark all: 1,2,3. Then 4 starts a new phase.
	for _, v := range []uint64{1, 2, 3} {
		c.Access(v)
	}
	if c.Phases() != 0 {
		t.Fatalf("phases = %d before first overflow", c.Phases())
	}
	c.Access(4)
	if c.Phases() != 1 {
		t.Fatalf("phases = %d after overflow, want 1", c.Phases())
	}
	if !c.Marked(4) {
		t.Fatal("freshly fetched item must be marked")
	}
}

func TestMarkingNeverEvictsMarked(t *testing.T) {
	r := stats.NewRand(11)
	k := 5
	c := NewMarking(k, 3)
	marked := map[uint64]bool{}
	for i := 0; i < 20000; i++ {
		item := uint64(r.Intn(15))
		allMarkedBefore := len(marked) == k
		ev, evicted, miss := c.Access(item)
		_ = miss
		// Unless a phase boundary legally cleared all marks (which happens
		// exactly when every cached item was marked before the access), an
		// eviction must target an unmarked item.
		if evicted && !allMarkedBefore && marked[ev] {
			t.Fatalf("step %d: evicted marked item %d mid-phase", i, ev)
		}
		// Rebuild the shadow mark set from the cache's own view.
		clear(marked)
		for _, it := range c.Items() {
			if c.Marked(it) {
				marked[it] = true
			}
		}
	}
}

func TestMarkingDeterministicVariantIsDeterministic(t *testing.T) {
	seq := make([]uint64, 3000)
	r := stats.NewRand(2)
	for i := range seq {
		seq[i] = uint64(r.Intn(9))
	}
	a := Cost(NewDeterministicMarkingFactory, 4, 1, seq)
	b := Cost(NewDeterministicMarkingFactory, 4, 999, seq)
	if a != b {
		t.Fatal("deterministic marking must ignore the seed")
	}
}

func TestMarkingSameSeedSameCost(t *testing.T) {
	seq := make([]uint64, 5000)
	r := stats.NewRand(3)
	for i := range seq {
		seq[i] = uint64(r.Intn(11))
	}
	if Cost(NewMarkingFactory, 4, 77, seq) != Cost(NewMarkingFactory, 4, 77, seq) {
		t.Fatal("same seed must give identical cost")
	}
}

func TestMINIsOptimalVsOnlineAlgorithms(t *testing.T) {
	r := stats.NewRand(13)
	for trial := 0; trial < 20; trial++ {
		n := 400
		seq := make([]uint64, n)
		for i := range seq {
			seq[i] = uint64(r.Intn(8))
		}
		k := 3
		opt := OfflineCost(k, seq)
		for name, f := range allFactories {
			if got := Cost(f, k, uint64(trial), seq); got < opt {
				t.Fatalf("%s beat MIN: %d < %d", name, got, opt)
			}
		}
	}
}

func TestMINBruteForceTiny(t *testing.T) {
	// Cross-check MIN against exhaustive search over eviction choices.
	seq := []uint64{1, 2, 3, 1, 4, 1, 2, 3, 4, 2, 1}
	k := 2
	want := bruteForcePagingOPT(k, seq)
	if got := OfflineCost(k, seq); got != want {
		t.Fatalf("MIN = %d, brute force = %d", got, want)
	}
}

// bruteForcePagingOPT explores all eviction choices (exponential; tiny
// inputs only).
func bruteForcePagingOPT(k int, seq []uint64) int {
	type state struct {
		pos   int
		items string
	}
	var rec func(pos int, cache map[uint64]bool) int
	rec = func(pos int, cache map[uint64]bool) int {
		if pos == len(seq) {
			return 0
		}
		it := seq[pos]
		if cache[it] {
			return rec(pos+1, cache)
		}
		if len(cache) < k {
			cache[it] = true
			c := rec(pos+1, cache)
			delete(cache, it)
			return 1 + c
		}
		best := 1 << 30
		for victim := range cache {
			delete(cache, victim)
			cache[it] = true
			if c := rec(pos+1, cache); c < best {
				best = c
			}
			delete(cache, it)
			cache[victim] = true
		}
		return 1 + best
	}
	return rec(0, map[uint64]bool{})
}

func TestMINPanicsOutOfOrder(t *testing.T) {
	m := NewMIN(2, []uint64{1, 2, 3})
	m.Access(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-order access")
		}
	}()
	m.Access(3)
}

func TestMarkingCompetitiveOnAdversarialCycle(t *testing.T) {
	// The classic k+1-item cycle: LRU faults every request; randomized
	// marking faults ~H_k per phase, far fewer.
	k := 8
	n := k + 1
	rounds := 300
	seq := make([]uint64, 0, n*rounds)
	for r := 0; r < rounds; r++ {
		for i := 0; i < n; i++ {
			seq = append(seq, uint64(i))
		}
	}
	lru := Cost(NewLRUFactory, k, 0, seq)
	mark := Cost(NewMarkingFactory, k, 12345, seq)
	if lru != len(seq) {
		t.Fatalf("LRU on cycle should fault always: %d/%d", lru, len(seq))
	}
	if float64(mark) > 0.7*float64(lru) {
		t.Fatalf("marking should beat LRU decisively on cycle: %d vs %d", mark, lru)
	}
	opt := OfflineCost(k, seq)
	ratio := float64(mark) / float64(opt)
	// 2·H_8 ≈ 5.4; allow slack but catch gross breakage.
	if ratio > 8 {
		t.Fatalf("marking ratio %.2f exceeds theory bound region", ratio)
	}
}

func TestFWFFlushesEverything(t *testing.T) {
	c := NewFWF(3)
	for _, v := range []uint64{1, 2, 3} {
		c.Access(v)
	}
	evs, miss := c.Access(4)
	if !miss || len(evs) != 3 {
		t.Fatalf("FWF should flush 3 items, flushed %d", len(evs))
	}
	if c.Len() != 1 || !c.Contains(4) {
		t.Fatal("FWF post-flush state wrong")
	}
}

func TestPhasesDecomposition(t *testing.T) {
	seq := []uint64{1, 2, 1, 3, 4, 4, 5, 1, 2}
	// k=2: phases are [1 2 1], [3 4 4], [5 1], [2]... distinct counting:
	starts := Phases(2, seq)
	want := []int{0, 3, 6, 8}
	if len(starts) != len(want) {
		t.Fatalf("Phases = %v, want %v", starts, want)
	}
	for i := range want {
		if starts[i] != want[i] {
			t.Fatalf("Phases = %v, want %v", starts, want)
		}
	}
}

func TestPhasesMatchesMarkingPhases(t *testing.T) {
	r := stats.NewRand(99)
	seq := make([]uint64, 20000)
	for i := range seq {
		seq[i] = uint64(r.Intn(13))
	}
	k := 5
	c := NewMarking(k, 1)
	for _, it := range seq {
		c.Access(it)
	}
	// Marking counts a phase at each overflow; the combinatorial phase count
	// is the number of phase starts. They agree up to the trailing phase.
	phases := len(Phases(k, seq))
	if diff := phases - 1 - c.Phases(); diff < 0 || diff > 1 {
		t.Fatalf("marking phases %d vs combinatorial %d", c.Phases(), phases)
	}
}

func TestOfflineCostNeverAboveDistinct(t *testing.T) {
	if err := quick.Check(func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		seq := make([]uint64, len(raw))
		distinct := map[uint64]bool{}
		for i, v := range raw {
			seq[i] = uint64(v % 10)
			distinct[seq[i]] = true
		}
		opt := OfflineCost(3, seq)
		// OPT misses at least once per distinct item beyond capacity and at
		// least the number of distinct items when they first appear.
		return opt >= len(distinct) == (len(distinct) > 0) && opt <= len(seq)
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
