// Package wal is a compact append-only record log with crash-safe
// recovery semantics, shared by every subsystem that needs a durable
// event stream (today: the coordinator's lease/queue state in
// internal/serve).
//
// It deliberately mirrors the internal/snap discipline: little-endian
// framing, CRC-32 (IEEE) integrity trailers, and a decoder that is safe
// on adversarial input — no allocation is ever sized from the input
// beyond a fixed cap, and corrupt bytes produce an error wrapping
// snap.ErrCorrupt, never a panic.
//
// On-disk format:
//
//	header   8 bytes  "OBMWAL1\n"
//	record   u32 payload length (LE)
//	         payload bytes (opaque to this package)
//	         u32 CRC-32 IEEE over the payload (LE)
//	...      records repeat to EOF
//
// Recovery follows the report.Open torn-tail contract: appends are one
// write() each, so a crash tears at most the final record. Open trims an
// incomplete trailing record (including a partially written header of a
// just-created file) back to the last whole record and positions the log
// for clean appends. Anything else — a CRC mismatch, an oversized length
// mid-file, trailing garbage that parses as neither — is corruption and
// surfaces as snap.ErrCorrupt: the log refuses to open rather than
// replaying a lie.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"obm/internal/snap"
)

// header identifies a WAL file and its format version; bump the digit to
// invalidate old logs on an incompatible change.
var header = []byte("OBMWAL1\n")

// MaxRecord caps a single record's payload. Real records are tens of
// bytes; the cap exists so a corrupt length field can never drive an
// attacker-sized allocation.
const MaxRecord = 1 << 20

// Log is an open write-ahead log positioned for appends. Create/Open
// construct it; Append adds one durable record; Close releases it.
// A Log is not safe for concurrent use — callers serialize (the
// coordinator appends under its per-job lock).
type Log struct {
	path string
	f    *os.File
	buf  []byte // reused append frame
}

// Create truncates any existing log at path and starts a fresh one.
func Create(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(header); err != nil {
		f.Close()
		return nil, err
	}
	return &Log{path: path, f: f}, nil
}

// Open reads the log at path, invoking fn once per decoded record payload
// in append order, then returns the log positioned for further appends
// (trimming a torn tail first). A missing file is created empty. The
// returned count is the number of records replayed.
//
// Decoding errors wrap snap.ErrCorrupt. An error from fn aborts the open
// and is returned as-is — the caller decides whether a semantically
// invalid log is discardable.
func Open(path string, fn func(payload []byte) error) (*Log, int, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		l, cerr := Create(path)
		return l, 0, cerr
	}
	if err != nil {
		return nil, 0, err
	}
	goodEnd, n, err := Decode(data, fn)
	if err != nil {
		return nil, n, err
	}
	if goodEnd < len(data) {
		if err := os.Truncate(path, int64(goodEnd)); err != nil {
			return nil, n, fmt.Errorf("wal: trimming torn tail of %s: %w", path, err)
		}
	}
	if goodEnd == 0 {
		// Even the header was torn: the file was created and killed
		// within one write. Start it over.
		l, cerr := Create(path)
		return l, 0, cerr
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, n, err
	}
	return &Log{path: path, f: f}, n, nil
}

// Decode scans data as a WAL image, invoking fn per record payload.
// It returns the byte offset just past the last whole record (the torn
// tail, if any, lies beyond goodEnd), the number of records decoded, and
// the first error: snap.ErrCorrupt-wrapped for bad bytes, or fn's error
// verbatim. It never allocates from lengths found in the input.
func Decode(data []byte, fn func(payload []byte) error) (goodEnd, records int, err error) {
	if len(data) < len(header) {
		// A torn header: nothing replayable, trim to zero.
		return 0, 0, nil
	}
	for i := range header {
		if data[i] != header[i] {
			return 0, 0, snap.Corruptf("wal: bad header %q", data[:len(header)])
		}
	}
	pos := len(header)
	for {
		rest := len(data) - pos
		if rest == 0 {
			return pos, records, nil
		}
		if rest < 4 {
			return pos, records, nil // torn length prefix
		}
		n := int(binary.LittleEndian.Uint32(data[pos:]))
		if rest-4 < n || rest-4-n < 4 {
			// Fewer bytes than the record claims: a torn append (or a
			// corrupt length so large the distinction is moot) — trim.
			return pos, records, nil
		}
		if n > MaxRecord {
			// The full claimed extent is present, so this is no torn
			// write — it is corruption.
			return pos, records, snap.Corruptf("wal: record %d claims %d bytes (max %d)", records, n, MaxRecord)
		}
		payload := data[pos+4 : pos+4+n]
		stored := binary.LittleEndian.Uint32(data[pos+4+n:])
		if got := crc32.ChecksumIEEE(payload); got != stored {
			return pos, records, snap.Corruptf("wal: record %d CRC mismatch: stored %#08x, computed %#08x", records, stored, got)
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return pos, records, err
			}
		}
		records++
		pos += 4 + n + 4
	}
}

// Append durably adds one record: length, payload and CRC framed into a
// single write, so a crash tears at most this record and Open trims it.
func (l *Log) Append(payload []byte) error {
	if l.f == nil {
		return fmt.Errorf("wal: %s is closed", l.path)
	}
	if len(payload) > MaxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds max %d", len(payload), MaxRecord)
	}
	need := 4 + len(payload) + 4
	if cap(l.buf) < need {
		l.buf = make([]byte, 0, need*2)
	}
	b := l.buf[:0]
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
	l.buf = b
	_, err := l.f.Write(b)
	return err
}

// Sync flushes appended records to stable storage.
func (l *Log) Sync() error {
	if l.f == nil {
		return nil
	}
	return l.f.Sync()
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close releases the log. Further Appends fail.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// Remove closes the log and deletes its file — the caller has decided the
// state it journals is terminal (or superseded) and must not be replayed.
func (l *Log) Remove() error {
	cerr := l.Close()
	rerr := os.Remove(l.path)
	if cerr != nil {
		return cerr
	}
	if rerr != nil && !os.IsNotExist(rerr) {
		return rerr
	}
	return nil
}
