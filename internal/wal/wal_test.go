package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"obm/internal/snap"
)

// collect opens path and gathers every replayed payload.
func collect(t *testing.T, path string) (*Log, [][]byte) {
	t.Helper()
	var got [][]byte
	l, n, err := Open(path, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if n != len(got) {
		t.Fatalf("Open replayed %d records, callback saw %d", n, len(got))
	}
	return l, got
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := [][]byte{[]byte("one"), {}, []byte("three-with-longer-payload"), {0, 1, 2, 3}}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got := collect(t, path)
	defer l2.Close()
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], recs[i])
		}
	}
	// The reopened log keeps appending on a clean boundary.
	if err := l2.Append([]byte("five")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, got := collect(t, path)
	l3.Close()
	if len(got) != len(recs)+1 || !bytes.Equal(got[len(recs)], []byte("five")) {
		t.Fatalf("after reopen-append: %d records, last %q", len(got), got[len(got)-1])
	}
}

// TestTornTailTrimmedAtEveryBoundary cuts the file at every byte length
// inside the final record (and inside the header) and requires Open to
// recover exactly the whole records before the tear — and to trim the
// file so a subsequent append starts clean.
func TestTornTailTrimmedAtEveryBoundary(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.wal")
	l, err := Create(full)
	if err != nil {
		t.Fatal(err)
	}
	recs := [][]byte{[]byte("alpha"), []byte("beta-beta"), []byte("gamma")}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	blob, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	// Offsets of each record's start.
	bounds := []int{len(header)}
	for _, r := range recs {
		bounds = append(bounds, bounds[len(bounds)-1]+4+len(r)+4)
	}
	for cut := 0; cut < len(blob); cut++ {
		path := filepath.Join(dir, "cut.wal")
		if err := os.WriteFile(path, blob[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantWhole := 0
		for _, b := range bounds[1:] {
			if cut >= b {
				wantWhole++
			}
		}
		l, got := collect(t, path)
		if len(got) != wantWhole {
			t.Fatalf("cut at %d: replayed %d records, want %d", cut, len(got), wantWhole)
		}
		// The trim is durable: append and re-open must see whole+1.
		if err := l.Append([]byte("tail")); err != nil {
			t.Fatalf("cut at %d: append after trim: %v", cut, err)
		}
		l.Close()
		l2, got2 := collect(t, path)
		l2.Close()
		if len(got2) != wantWhole+1 || !bytes.Equal(got2[wantWhole], []byte("tail")) {
			t.Fatalf("cut at %d: after trim+append replayed %d records", cut, len(got2))
		}
		os.Remove(path)
	}
}

func TestCorruptionMidFileIsAnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("first"))
	l.Append([]byte("second"))
	l.Close()
	blob, _ := os.ReadFile(path)

	// Flip one payload byte of the FIRST record: a CRC mismatch with more
	// records following is corruption, not a torn tail.
	bad := append([]byte(nil), blob...)
	bad[len(header)+4] ^= 0xff
	os.WriteFile(path, bad, 0o644)
	if _, _, err := Open(path, nil); !errors.Is(err, snap.ErrCorrupt) {
		t.Fatalf("mid-file corruption: %v, want ErrCorrupt", err)
	}

	// A wrong header is corruption too.
	bad = append([]byte(nil), blob...)
	bad[0] = 'X'
	os.WriteFile(path, bad, 0o644)
	if _, _, err := Open(path, nil); !errors.Is(err, snap.ErrCorrupt) {
		t.Fatalf("bad header: %v, want ErrCorrupt", err)
	}

	// An oversized length whose claimed extent is fully present is
	// corruption (a torn write can only truncate, never extend).
	var frame []byte
	frame = binary.LittleEndian.AppendUint32(frame, MaxRecord+1)
	frame = append(frame, make([]byte, MaxRecord+1)...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(frame[4:]))
	os.WriteFile(path, append(append([]byte(nil), header...), frame...), 0o644)
	if _, _, err := Open(path, nil); !errors.Is(err, snap.ErrCorrupt) {
		t.Fatalf("oversized record: %v, want ErrCorrupt", err)
	}
}

func TestCallbackErrorAbortsOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	l, _ := Create(path)
	l.Append([]byte("ok"))
	l.Append([]byte("poison"))
	l.Close()
	want := errors.New("semantic failure")
	_, n, err := Open(path, func(p []byte) error {
		if bytes.Equal(p, []byte("poison")) {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) || n != 1 {
		t.Fatalf("Open = (%d, %v), want fn error after 1 record", n, err)
	}
}

func TestRemove(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	l, _ := Create(path)
	l.Append([]byte("x"))
	if err := l.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("file still present after Remove: %v", err)
	}
	// Removing a missing file is not an error (idempotent cleanup).
	if err := l.Remove(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyAndMissing(t *testing.T) {
	dir := t.TempDir()
	// Missing file: created fresh.
	l, n, err := Open(filepath.Join(dir, "fresh.wal"), nil)
	if err != nil || n != 0 {
		t.Fatalf("Open missing = (%d, %v)", n, err)
	}
	l.Append([]byte("a"))
	l.Close()
	// Zero-byte file (crash before the header write landed): reset.
	empty := filepath.Join(dir, "empty.wal")
	os.WriteFile(empty, nil, 0o644)
	l2, n, err := Open(empty, nil)
	if err != nil || n != 0 {
		t.Fatalf("Open empty = (%d, %v)", n, err)
	}
	if err := l2.Append([]byte("b")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, got := collect(t, empty)
	l3.Close()
	if len(got) != 1 || !bytes.Equal(got[0], []byte("b")) {
		t.Fatalf("reset empty file replay = %q", got)
	}
}
