// Package report is the durable experiment layer on top of the scenario
// grid: persistent run stores, resumable and shardable grid execution, and
// a renderer that turns a finished store into a self-contained Markdown
// report.
//
// A run store is a directory with two files:
//
//	manifest.json   what this run is: normalized scenario specs, their
//	                SHA-256 spec hash, curve-checkpoint count, shard
//	                layout, total job count, creation metadata
//	jobs.jsonl      one JSON line per completed (scenario, alg, b, rep)
//	                job, appended atomically as jobs finish
//
// Because a grid job's costs are a pure function of its identity (the
// spec's trace seed and the rep-derived algorithm seed — see the
// seed-reproducibility contract in the package obm docs), a completed
// job never needs to re-run: re-invoking the same grid against the same
// store loads the log through sim.GridOptions.Lookup and executes only
// the missing jobs, and logs produced by disjoint shards of the grid
// (sim.GridOptions.Shard/Shards) merge into one full-grid store whose
// aggregated results are byte-identical to a single-process run —
// either offline via Merge, or incrementally via Store.Absorb (how the
// experiment service folds uploaded fleet shard logs).
//
// The append log is crash-safe by construction: each record is one
// write() of one newline-terminated JSON line, so a crash can lose at
// most the line being written; Open detects a truncated tail, drops it,
// and the next run redoes just that job.
package report

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"obm/internal/sim"
)

// FormatVersion identifies the on-disk run-store layout. Stores written
// with a different major layout are rejected by Open.
const FormatVersion = 1

const (
	manifestFile = "manifest.json"
	jobsFile     = "jobs.jsonl"
)

// Shard names one slice of a statically partitioned grid: the jobs whose
// plan index i satisfies i % Count == Index. The zero value (and any
// Count <= 1) means the full, unsharded grid.
type Shard struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// IsFull reports whether the shard covers the whole grid.
func (s Shard) IsFull() bool { return s.Count <= 1 }

func (s Shard) String() string {
	if s.IsFull() {
		return "full"
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// Manifest records what a run store holds. Everything that determines job
// outcomes is covered by SpecHash; everything else (creation time, Go
// version, shard layout) is bookkeeping.
type Manifest struct {
	FormatVersion int    `json:"format_version"`
	Name          string `json:"name"`
	CreatedAt     string `json:"created_at"` // RFC 3339
	GoVersion     string `json:"go_version"`
	// SpecHash is the SHA-256 of the normalized spec list plus the
	// curve-checkpoint count: two stores resume/merge only if it matches.
	SpecHash    string `json:"spec_hash"`
	CurvePoints int    `json:"curve_points"`
	Shard       Shard  `json:"shard"`
	// TotalJobs is the full-grid job count (before sharding).
	TotalJobs int                `json:"total_jobs"`
	Specs     []sim.ScenarioSpec `json:"specs"`
}

// NewManifest plans the grid described by specs and assembles the manifest
// of a store for it. Specs are normalized first, so equivalent spec lists
// (defaults spelled out or omitted) produce the same SpecHash.
func NewManifest(name string, specs []sim.ScenarioSpec, curvePoints int, shard Shard) (Manifest, error) {
	norm := make([]sim.ScenarioSpec, len(specs))
	for i, s := range specs {
		norm[i] = s.Normalize()
	}
	plan, err := sim.PlanGrid(norm)
	if err != nil {
		return Manifest{}, err
	}
	if !shard.IsFull() && (shard.Index < 0 || shard.Index >= shard.Count) {
		return Manifest{}, fmt.Errorf("report: shard %d/%d out of range", shard.Index, shard.Count)
	}
	hash, err := SpecHash(norm, curvePoints)
	if err != nil {
		return Manifest{}, err
	}
	return Manifest{
		FormatVersion: FormatVersion,
		Name:          name,
		CreatedAt:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		SpecHash:      hash,
		CurvePoints:   curvePoints,
		Shard:         shard,
		TotalJobs:     len(plan.Jobs),
		Specs:         norm,
	}, nil
}

// SpecHash returns the SHA-256 over the canonical JSON encoding of the
// normalized specs and the curve-checkpoint count — the identity of a
// run's deterministic outcome space. JSON map keys (family params) are
// emitted sorted, so the hash is representation-independent.
func SpecHash(specs []sim.ScenarioSpec, curvePoints int) (string, error) {
	norm := make([]sim.ScenarioSpec, len(specs))
	for i, s := range specs {
		norm[i] = s.Normalize()
	}
	blob, err := json.Marshal(struct {
		Specs       []sim.ScenarioSpec `json:"specs"`
		CurvePoints int                `json:"curve_points"`
	}{norm, curvePoints})
	if err != nil {
		return "", fmt.Errorf("report: hashing specs: %w", err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}

// Plan re-expands the manifest's job grid (the full grid, ignoring the
// shard restriction).
func (m *Manifest) Plan() (*sim.GridPlan, error) {
	return sim.PlanGrid(m.Specs)
}

// ownsJob reports whether plan index i belongs to the manifest's shard.
func (m *Manifest) ownsJob(i int) bool {
	return m.Shard.IsFull() || i%m.Shard.Count == m.Shard.Index
}

// ReadManifest loads dir's manifest without opening the store (no log
// replay) — enough for lease planning and identity checks.
func ReadManifest(dir string) (Manifest, error) {
	return readManifest(dir)
}

// Exists reports whether dir already holds a run store (a manifest).
func Exists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestFile))
	return err == nil
}

// writeManifest writes m atomically (temp file + rename), so a crash
// never leaves a half-written manifest.
func writeManifest(dir string, m Manifest) error {
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("report: encoding manifest: %w", err)
	}
	tmp, err := os.CreateTemp(dir, manifestFile+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(blob, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, manifestFile))
}

// readManifest loads and sanity-checks dir's manifest.
func readManifest(dir string) (Manifest, error) {
	blob, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return Manifest{}, fmt.Errorf("report: %s is not a run store: %w", dir, err)
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return Manifest{}, fmt.Errorf("report: %s: corrupt manifest: %w", dir, err)
	}
	if m.FormatVersion != FormatVersion {
		return Manifest{}, fmt.Errorf("report: %s: store format v%d, this build reads v%d",
			dir, m.FormatVersion, FormatVersion)
	}
	if len(m.Specs) == 0 {
		return Manifest{}, fmt.Errorf("report: %s: manifest has no scenario specs", dir)
	}
	return m, nil
}
