package report_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"obm/internal/report"
	"obm/internal/sim"
)

// TestStoreCheckpointFiles pins the checkpoint file mechanics: save is
// atomic under the store, load returns exactly what was saved, a missing
// checkpoint is a clean miss, and drop removes the file.
func TestStoreCheckpointFiles(t *testing.T) {
	st, err := report.Create(t.TempDir(), newManifest(t, smallSpecs(), 0, report.Shard{}))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	j := sim.GridJob{Scenario: "uni", Alg: "r-bma", B: 2, Rep: 1}

	if _, ok := st.LoadCheckpoint(j); ok {
		t.Fatal("load hit before any save")
	}
	blob := []byte("checkpoint payload")
	if err := st.SaveCheckpoint(j, blob); err != nil {
		t.Fatal(err)
	}
	got, ok := st.LoadCheckpoint(j)
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("load = (%q, %v), want saved payload", got, ok)
	}
	// Distinct job coordinates get distinct checkpoints.
	j2 := j
	j2.Rep = 2
	if _, ok := st.LoadCheckpoint(j2); ok {
		t.Fatal("rep 2 sees rep 1's checkpoint")
	}
	// Overwrite wins.
	blob2 := []byte("newer payload")
	if err := st.SaveCheckpoint(j, blob2); err != nil {
		t.Fatal(err)
	}
	if got, _ := st.LoadCheckpoint(j); !bytes.Equal(got, blob2) {
		t.Fatalf("load after overwrite = %q", got)
	}
	st.DropCheckpoint(j)
	if _, ok := st.LoadCheckpoint(j); ok {
		t.Fatal("load hit after drop")
	}
	st.DropCheckpoint(j) // double drop is harmless
}

// TestResumeInsideJobByteIdentical is the mid-job resume acceptance test:
// a checkpointing grid run cancelled in the middle of a job must, on
// resume, pick the job up from its checkpoint (not from scratch) and
// finish with a summary byte-identical to an uninterrupted run — and
// leave no checkpoint files behind.
func TestResumeInsideJobByteIdentical(t *testing.T) {
	specs := smallSpecs()
	base := t.TempDir()

	ref := runShard(t, filepath.Join(base, "ref"), specs, 4, report.Shard{})
	refCSV := summaryCSV(t, ref)
	ref.Close()

	ckDir := filepath.Join(base, "ck")
	st, err := report.Create(ckDir, newManifest(t, specs, 4, report.Shard{}))
	if err != nil {
		t.Fatal(err)
	}
	// Cancel the run right after the second checkpoint lands: the job in
	// flight is abandoned mid-replay with its checkpoint on disk.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := st.GridOptions(sim.GridOptions{Workers: 1, ChunkSize: 256, CheckpointEvery: 400})
	innerSave := opt.SaveCheckpoint
	saves := 0
	opt.SaveCheckpoint = func(j sim.GridJob, blob []byte) error {
		if err := innerSave(j, blob); err != nil {
			return err
		}
		if saves++; saves == 2 {
			cancel()
		}
		return nil
	}
	if _, err := sim.RunGridContext(ctx, st.Manifest().Specs, opt); err == nil {
		t.Fatal("cancelled run reported success")
	}
	st.Close()
	ents, err := os.ReadDir(filepath.Join(ckDir, "checkpoints"))
	if err != nil || len(ents) == 0 {
		t.Fatalf("no checkpoint left behind after cancel: %v (%d entries)", err, len(ents))
	}

	// Resume: the interrupted job must load its checkpoint and skip the
	// already-replayed prefix.
	re, err := report.Open(ckDir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	opt = re.GridOptions(sim.GridOptions{Workers: 1, ChunkSize: 256, CheckpointEvery: 400})
	innerLoad := opt.LoadCheckpoint
	loads := 0
	opt.LoadCheckpoint = func(j sim.GridJob) ([]byte, bool) {
		blob, ok := innerLoad(j)
		if ok {
			loads++
		}
		return blob, ok
	}
	if _, err := sim.RunGrid(re.Manifest().Specs, opt); err != nil {
		t.Fatal(err)
	}
	if loads != 1 {
		t.Fatalf("resume loaded %d checkpoints, want exactly 1", loads)
	}
	if missing, _ := re.Missing(); len(missing) != 0 {
		t.Fatalf("resumed store still missing %v", missing)
	}
	if got := summaryCSV(t, re); !bytes.Equal(got, refCSV) {
		t.Fatalf("resumed summary differs from uninterrupted run:\n--- resumed\n%s--- reference\n%s", got, refCSV)
	}
	// Completion dropped every checkpoint.
	if ents, err := os.ReadDir(filepath.Join(ckDir, "checkpoints")); err == nil && len(ents) != 0 {
		t.Fatalf("%d checkpoint files left after completed run", len(ents))
	}
}
