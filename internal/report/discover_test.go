package report_test

import (
	"os"
	"path/filepath"
	"testing"

	"obm/internal/report"
	"obm/internal/sim"
)

func TestDiscoverAndFindByHash(t *testing.T) {
	root := t.TempDir()

	// An empty (or missing) root discovers nothing.
	if infos, err := report.Discover(root); err != nil || len(infos) != 0 {
		t.Fatalf("empty root: infos=%v err=%v", infos, err)
	}
	if infos, err := report.Discover(filepath.Join(root, "nope")); err != nil || len(infos) != 0 {
		t.Fatalf("missing root: infos=%v err=%v", infos, err)
	}

	specs := smallSpecs()
	m := newManifest(t, specs, 0, report.Shard{})
	dir := report.DirForHash(root, m.SpecHash)
	st, err := report.Create(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	// One completed job: the store is discoverable but incomplete.
	if err := st.Append(sim.GridJob{Scenario: "uni", Alg: "r-bma", B: 2, Rep: 0}, sim.JobOutcome{Routing: 1}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// A stray non-store directory and file must be skipped, not fail the scan.
	if err := os.MkdirAll(filepath.Join(root, "not-a-store"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "queue.json"), []byte("[]"), 0o644); err != nil {
		t.Fatal(err)
	}

	infos, err := report.Discover(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("discovered %d stores, want 1: %+v", len(infos), infos)
	}
	info := infos[0]
	if info.Dir != dir || info.Recorded != 1 || info.Complete() {
		t.Fatalf("info = %+v, want dir=%s recorded=1 incomplete", info, dir)
	}
	if info.Missing != info.Manifest.TotalJobs-1 {
		t.Fatalf("missing = %d, want %d", info.Missing, info.Manifest.TotalJobs-1)
	}

	found, ok, err := report.FindByHash(root, m.SpecHash)
	if err != nil || !ok {
		t.Fatalf("FindByHash: ok=%v err=%v", ok, err)
	}
	if found.Dir != dir {
		t.Fatalf("FindByHash dir = %s, want %s", found.Dir, dir)
	}
	if _, ok, err := report.FindByHash(root, "deadbeefdeadbeefdeadbeefdeadbeef"); ok || err != nil {
		t.Fatalf("FindByHash on unknown hash: ok=%v err=%v", ok, err)
	}
}

// TestFindByHashNonCanonicalDir: a store living under an arbitrary name
// (e.g. hand-merged) is still found by scanning.
func TestFindByHashNonCanonicalDir(t *testing.T) {
	root := t.TempDir()
	m := newManifest(t, smallSpecs(), 0, report.Shard{})
	st, err := report.Create(filepath.Join(root, "my-merged-run"), m)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	found, ok, err := report.FindByHash(root, m.SpecHash)
	if err != nil || !ok {
		t.Fatalf("FindByHash: ok=%v err=%v", ok, err)
	}
	if filepath.Base(found.Dir) != "my-merged-run" {
		t.Fatalf("found %s", found.Dir)
	}
}
