package report

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"obm/internal/sim"
)

// jobRecord is one line of jobs.jsonl.
type jobRecord struct {
	Scenario string         `json:"scenario"`
	Alg      string         `json:"alg"`
	B        int            `json:"b"`
	Rep      int            `json:"rep"`
	Outcome  sim.JobOutcome `json:"outcome"`
}

func (r jobRecord) job() sim.GridJob {
	return sim.GridJob{Scenario: r.Scenario, Alg: r.Alg, B: r.B, Rep: r.Rep}
}

// validate rejects structurally broken records — valid JSON whose curve
// arrays disagree in length would otherwise panic the renderer and merge
// far from the corruption site.
func (r jobRecord) validate() error {
	o := r.Outcome
	if len(o.RoutingCurve) != len(o.X) || len(o.ReconfigCurve) != len(o.X) {
		return fmt.Errorf("curve lengths (x=%d routing=%d reconfig=%d) disagree",
			len(o.X), len(o.RoutingCurve), len(o.ReconfigCurve))
	}
	return nil
}

// Store is an open run store: the manifest plus the completed-job log,
// loaded into memory for Lookup and kept open for appends. Lookup and
// Append are safe for concurrent use (RunGrid serializes Persist calls,
// but Lookup runs during planning and tests exercise both freely).
type Store struct {
	dir      string
	manifest Manifest

	mu       sync.Mutex
	log      *os.File
	outcomes map[sim.GridJob]sim.JobOutcome
	order    []sim.GridJob
	// truncated counts crash-truncated trailing records dropped by Open.
	truncated int
}

// Create initializes dir (created if needed) as a new run store with the
// given manifest. It refuses to overwrite an existing store — resuming
// goes through Open so a stale directory is never silently clobbered.
func Create(dir string, m Manifest) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if Exists(dir) {
		return nil, fmt.Errorf("report: %s already holds a run store (open it to resume, or choose a fresh directory)", dir)
	}
	if m.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("report: manifest format v%d, want v%d (build it with NewManifest)", m.FormatVersion, FormatVersion)
	}
	if err := writeManifest(dir, m); err != nil {
		return nil, err
	}
	log, err := os.OpenFile(filepath.Join(dir, jobsFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Store{
		dir:      dir,
		manifest: m,
		log:      log,
		outcomes: make(map[sim.GridJob]sim.JobOutcome),
	}, nil
}

// Open loads the run store in dir: the manifest and every completed job in
// the log. A crash-truncated trailing record is dropped (and the file
// trimmed back to the last whole record, so subsequent appends start on a
// clean line); corruption anywhere else is an error.
func Open(dir string) (*Store, error) {
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:      dir,
		manifest: m,
		outcomes: make(map[sim.GridJob]sim.JobOutcome),
	}
	path := filepath.Join(dir, jobsFile)
	if err := s.loadLog(path); err != nil {
		return nil, err
	}
	s.log, err = os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// loadLog reads the append log, keeping the first record per job and
// trimming a torn tail.
func (s *Store) loadLog(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	var (
		r       = bufio.NewReader(f)
		goodEnd int64 // byte offset just past the last whole record
		lineNo  int
	)
	for {
		line, err := r.ReadBytes('\n')
		if len(line) > 0 && err == nil {
			lineNo++
			var rec jobRecord
			jerr := json.Unmarshal(line, &rec)
			if jerr == nil {
				jerr = rec.validate()
			}
			if jerr != nil {
				// A malformed line mid-log is corruption; only a torn
				// final line (no trailing newline, handled below) is a
				// survivable crash artifact. A malformed *last* complete
				// line can also be a torn write that happened to end in
				// '\n' inside a JSON string — probe whether anything
				// follows before deciding.
				if _, perr := r.Peek(1); perr == io.EOF {
					s.truncated++
					break
				}
				return fmt.Errorf("report: %s: corrupt record on line %d: %v", path, lineNo, jerr)
			}
			s.record(rec.job(), rec.Outcome)
			goodEnd += int64(len(line))
			continue
		}
		if err == io.EOF {
			if len(line) > 0 {
				s.truncated++ // torn tail without newline
			}
			break
		}
		if err != nil {
			return err
		}
	}
	if s.truncated > 0 {
		if err := os.Truncate(path, goodEnd); err != nil {
			return fmt.Errorf("report: %s: trimming torn tail: %w", path, err)
		}
	}
	return nil
}

// record keeps the first outcome per job (duplicates can only arise from
// merged overlapping logs, which Merge verifies are identical).
func (s *Store) record(j sim.GridJob, o sim.JobOutcome) {
	if _, ok := s.outcomes[j]; ok {
		return
	}
	s.outcomes[j] = o
	s.order = append(s.order, j)
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Manifest returns the store's manifest.
func (s *Store) Manifest() Manifest { return s.manifest }

// Truncated reports how many crash-truncated trailing records Open
// dropped (0 or 1 for a store written by one process).
func (s *Store) Truncated() int { return s.truncated }

// Len returns the number of completed jobs in the store.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// Lookup returns the persisted outcome of j, if any. It is the
// sim.GridOptions.Lookup hook of a resumed run.
func (s *Store) Lookup(j sim.GridJob) (sim.JobOutcome, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.outcomes[j]
	return o, ok
}

// Append durably records a completed job: one marshaled line handed to a
// single append-mode write, so concurrent appenders never interleave and a
// crash tears at most the final line. It is the sim.GridOptions.Persist
// hook of a store-backed run.
func (s *Store) Append(j sim.GridJob, o sim.JobOutcome) error {
	rec := jobRecord{Scenario: j.Scenario, Alg: j.Alg, B: j.B, Rep: j.Rep, Outcome: o}
	if err := rec.validate(); err != nil {
		return fmt.Errorf("report: job %s: %w", j, err)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("report: encoding job %s: %w", j, err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return fmt.Errorf("report: store %s is closed", s.dir)
	}
	if _, ok := s.outcomes[j]; ok {
		return fmt.Errorf("report: job %s already recorded in %s", j, s.dir)
	}
	if _, err := s.log.Write(line); err != nil {
		return fmt.Errorf("report: appending job %s: %w", j, err)
	}
	s.record(j, o)
	return nil
}

// LogPath returns the path of the store's append log (jobs.jsonl) — what
// a fleet worker uploads to the coordinator when its shard completes.
func (s *Store) LogPath() string { return filepath.Join(s.dir, jobsFile) }

// ErrOutcomeConflict marks an Absorb failure where a record for an
// already-recorded job disagreed on a deterministic field — a broken
// determinism contract (or a mixed-version fleet), never noise. Callers
// distinguish it from transport-shaped failures (truncated uploads,
// malformed lines), which are safe to drop and retry.
var ErrOutcomeConflict = errors.New("report: conflicting outcome for an already-recorded job")

// Absorb folds a stream of jobs.jsonl records (for example, a shard log
// uploaded by a fleet worker) into the store. New jobs are appended;
// records for jobs the store already holds must agree exactly on the
// deterministic fields (identical seeds must mean identical costs), so
// at-least-once delivery — duplicate uploads, a shard re-run after its
// worker died — can never corrupt the store: the duplicate either
// verifies or surfaces as ErrOutcomeConflict. Records naming jobs
// outside the store's plan are rejected. Unlike Open's torn-tail
// handling, any malformed line is an error: an upload is a complete
// message, not a crash artifact. Returns the number of newly appended
// records.
func (s *Store) Absorb(r io.Reader) (added int, err error) {
	plan, err := s.manifest.Plan()
	if err != nil {
		return 0, err
	}
	planned := make(map[sim.GridJob]bool, len(plan.Jobs))
	for _, j := range plan.Jobs {
		planned[j] = true
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec jobRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return added, fmt.Errorf("report: absorbing into %s: corrupt record on line %d: %w", s.dir, lineNo, err)
		}
		if err := rec.validate(); err != nil {
			return added, fmt.Errorf("report: absorbing into %s: line %d: %w", s.dir, lineNo, err)
		}
		j := rec.job()
		if !planned[j] {
			return added, fmt.Errorf("report: absorbing into %s: job %s is not in this store's grid", s.dir, j)
		}
		if have, ok := s.Lookup(j); ok {
			if !sameOutcome(have, rec.Outcome) {
				return added, fmt.Errorf("%w: job %s (identical seeds must give identical costs)", ErrOutcomeConflict, j)
			}
			continue
		}
		if err := s.Append(j, rec.Outcome); err != nil {
			return added, err
		}
		added++
	}
	if err := sc.Err(); err != nil {
		return added, fmt.Errorf("report: absorbing into %s: %w", s.dir, err)
	}
	return added, nil
}

// Outcomes returns a copy of the completed-job map, the form
// sim.GridPlan.Aggregate consumes.
func (s *Store) Outcomes() map[sim.GridJob]sim.JobOutcome {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[sim.GridJob]sim.JobOutcome, len(s.outcomes))
	for j, o := range s.outcomes {
		out[j] = o
	}
	return out
}

// Missing returns the jobs of this store's shard slice that have no
// recorded outcome yet, in plan order. An empty result means the store is
// complete (for its shard).
func (s *Store) Missing() ([]sim.GridJob, error) {
	plan, err := s.manifest.Plan()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var missing []sim.GridJob
	for i, j := range plan.Jobs {
		if !s.manifest.ownsJob(i) {
			continue
		}
		if _, ok := s.outcomes[j]; !ok {
			missing = append(missing, j)
		}
	}
	return missing, nil
}

// GridOptions wires the store into grid options: Lookup resumes from the
// log, Persist appends to it, the checkpoint hooks read and write
// <dir>/checkpoints/, and the manifest's shard layout and curve
// checkpointing are applied. The remaining knobs (workers, chunk size,
// checkpoint interval, progress) are taken from base — mid-job
// checkpoints are only written when base.CheckpointEvery > 0, but a
// leftover checkpoint is always consulted and always cleaned up.
func (s *Store) GridOptions(base sim.GridOptions) sim.GridOptions {
	base.CurvePoints = s.manifest.CurvePoints
	base.Shard = s.manifest.Shard.Index
	base.Shards = s.manifest.Shard.Count
	base.Lookup = s.Lookup
	base.Persist = s.Append
	base.SaveCheckpoint = s.SaveCheckpoint
	base.LoadCheckpoint = s.LoadCheckpoint
	base.DropCheckpoint = s.DropCheckpoint
	return base
}

// Run executes the store's grid, resuming from the log: completed jobs
// are skipped, newly finished ones are appended. The returned result
// covers every outcome the store now holds (for a sharded store, its
// slice of the grid).
func (s *Store) Run(base sim.GridOptions) (*sim.GridResult, error) {
	return s.RunContext(context.Background(), base)
}

// RunContext is Run under a context: cancelling ctx stops the grid at the
// next chunk boundary and leaves the store partial-but-persisted — every
// job appended before the cancellation survives, and a later RunContext
// on the re-opened store resumes exactly where this one stopped (see
// sim.RunGridContext).
func (s *Store) RunContext(ctx context.Context, base sim.GridOptions) (*sim.GridResult, error) {
	return sim.RunGridContext(ctx, s.manifest.Specs, s.GridOptions(base))
}

// Sync flushes the append log to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	return s.log.Sync()
}

// Close syncs and closes the append log. Lookup and read accessors keep
// working; Append does not.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	err := s.log.Sync()
	if cerr := s.log.Close(); err == nil {
		err = cerr
	}
	s.log = nil
	return err
}
