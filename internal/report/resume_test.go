package report_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"obm/internal/report"
	"obm/internal/sim"
)

// paperSpecs covers the paper evaluation's four trace families (§3.1):
// the Facebook-style cluster workload, the Microsoft-style skewed matrix,
// uniform random, and phase-shift — small enough to replay in tests.
func paperSpecs() []sim.ScenarioSpec {
	return []sim.ScenarioSpec{
		{Name: "fb", Family: "facebook-database", Racks: 12, Requests: 3000, Seed: 1, Bs: []int{2, 3}, Reps: 2},
		{Name: "ms", Family: "microsoft", Racks: 12, Requests: 3000, Seed: 2, Bs: []int{2, 3}, Reps: 2},
		{Name: "uni", Family: "uniform", Racks: 12, Requests: 3000, Seed: 3, Bs: []int{2, 3}, Reps: 2},
		{Name: "ps", Family: "phase-shift", Racks: 12, Requests: 3000, Seed: 4, Bs: []int{2, 3}, Reps: 2},
	}
}

// summaryCSV renders a store's deterministic summary.
func summaryCSV(t *testing.T, st *report.Store) []byte {
	t.Helper()
	res, err := st.Result()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.WriteSummaryCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestResumeAfterCrashByteIdentical is the resume acceptance test: a grid
// run killed at an arbitrary job boundary (plus a torn trailing record,
// as a real kill -9 would leave) and then resumed must produce a summary
// CSV byte-identical to an uninterrupted run, re-executing only the
// missing jobs.
func TestResumeAfterCrashByteIdentical(t *testing.T) {
	specs := paperSpecs()
	base := t.TempDir()

	// Uninterrupted reference run.
	ref := runShard(t, filepath.Join(base, "ref"), specs, 4, report.Shard{})
	refCSV := summaryCSV(t, ref)
	total := ref.Manifest().TotalJobs
	ref.Close()

	// Crashing run: the persist hook kills the grid after 7 appends.
	crashDir := filepath.Join(base, "crash")
	st, err := report.Create(crashDir, newManifest(t, specs, 4, report.Shard{}))
	if err != nil {
		t.Fatal(err)
	}
	const crashAfter = 7
	boom := errors.New("simulated crash")
	opt := st.GridOptions(sim.GridOptions{Workers: 2, ChunkSize: 512})
	inner := opt.Persist
	appended := 0
	opt.Persist = func(j sim.GridJob, o sim.JobOutcome) error {
		if err := inner(j, o); err != nil {
			return err
		}
		appended++
		if appended == crashAfter {
			return boom
		}
		return nil
	}
	if _, err := sim.RunGrid(st.Manifest().Specs, opt); !errors.Is(err, boom) {
		t.Fatalf("crash did not surface: %v", err)
	}
	st.Close()
	// A kill mid-write also tears the last record: fake that too.
	f, err := os.OpenFile(filepath.Join(crashDir, "jobs.jsonl"), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"scenario":"fb","alg":"bma","b":`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Resume: reopen, run again, count what actually executed.
	re, err := report.Open(crashDir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Truncated() != 1 {
		t.Fatalf("torn record not detected: truncated=%d", re.Truncated())
	}
	already := re.Len()
	if already < crashAfter || already >= total {
		t.Fatalf("crashed store holds %d of %d jobs, want partial >= %d", already, total, crashAfter)
	}
	executed := 0
	opt = re.GridOptions(sim.GridOptions{Workers: 2, ChunkSize: 512})
	inner = opt.Persist
	opt.Persist = func(j sim.GridJob, o sim.JobOutcome) error {
		executed++
		return inner(j, o)
	}
	res, err := sim.RunGrid(re.Manifest().Specs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if executed != total-already {
		t.Fatalf("resume executed %d jobs, want exactly the %d missing", executed, total-already)
	}
	if missing, _ := re.Missing(); len(missing) != 0 {
		t.Fatalf("resumed store still missing %v", missing)
	}
	// The live result of the resumed run covers the full grid (recorded
	// outcomes folded in), and the stored summary is byte-identical to
	// the uninterrupted run's.
	if len(res.Rows) == 0 {
		t.Fatal("resumed run produced no rows")
	}
	if got := summaryCSV(t, re); !bytes.Equal(got, refCSV) {
		t.Fatalf("resumed summary differs from uninterrupted run:\n--- resumed\n%s--- reference\n%s", got, refCSV)
	}
}

// TestShardMergeMatchesSingleProcess is the sharding acceptance test: a
// 2-way sharded run of the paper's four trace families, merged via the
// report store, must match the single-process run byte for byte.
func TestShardMergeMatchesSingleProcess(t *testing.T) {
	specs := paperSpecs()
	base := t.TempDir()

	single := runShard(t, filepath.Join(base, "single"), specs, 4, report.Shard{})
	singleCSV := summaryCSV(t, single)
	single.Close()

	s0 := runShard(t, filepath.Join(base, "s0"), specs, 4, report.Shard{Index: 0, Count: 2})
	s1 := runShard(t, filepath.Join(base, "s1"), specs, 4, report.Shard{Index: 1, Count: 2})
	s0.Close()
	s1.Close()

	merged, err := report.Merge(filepath.Join(base, "merged"), filepath.Join(base, "s0"), filepath.Join(base, "s1"))
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	if missing, _ := merged.Missing(); len(missing) != 0 {
		t.Fatalf("merged store missing %v", missing)
	}
	if got := summaryCSV(t, merged); !bytes.Equal(got, singleCSV) {
		t.Fatalf("merged shards differ from single-process run:\n--- merged\n%s--- single\n%s", got, singleCSV)
	}
}

// TestShardedRunGridDropsForeignCells: a sharded live result only reports
// cells this shard owns jobs of — no half-aggregated ghosts.
func TestShardedRunGridDropsForeignCells(t *testing.T) {
	specs := paperSpecs()[:1]
	full, err := sim.RunGrid(specs, sim.GridOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	part, err := sim.RunGrid(specs, sim.GridOptions{Workers: 2, Shard: 0, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Rows) == 0 || len(part.Rows) > len(full.Rows) {
		t.Fatalf("shard rows = %d, full rows = %d", len(part.Rows), len(full.Rows))
	}
	var reps int
	for _, r := range part.Rows {
		reps += r.Routing.N
	}
	plan, err := sim.PlanGrid(specs)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := range plan.Jobs {
		if i%3 == 0 {
			want++
		}
	}
	if reps != want {
		t.Fatalf("shard aggregated %d reps, want %d", reps, want)
	}
}
