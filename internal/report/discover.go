package report

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Store discovery: the experiment service (internal/serve) keeps every run
// store it owns under one root directory, addressed by the run's spec
// hash. Discovery is what makes the root a durable queue and a
// content-addressed result cache at once — after a crash, scanning the
// root finds both the finished stores (cache hits) and the interrupted
// ones (jobs to resume), with no bookkeeping beyond the stores themselves.

// DirForHash returns the canonical store directory for a spec hash under
// root: the first 16 hex characters of the hash. The truncation is a
// directory-naming convenience, not an identity — Open always verifies
// the manifest's full SpecHash, so a (vanishingly unlikely) prefix
// collision surfaces as a hash mismatch, never as silent reuse.
func DirForHash(root, specHash string) string {
	if len(specHash) > 16 {
		specHash = specHash[:16]
	}
	return filepath.Join(root, specHash)
}

// StoreInfo describes one discovered run store.
type StoreInfo struct {
	Dir      string
	Manifest Manifest
	// Recorded is the number of completed jobs in the log; Missing is how
	// many of the store's shard slice have no outcome yet (0 = complete).
	Recorded int
	Missing  int
}

// Complete reports whether the store holds every job of its shard slice.
func (i StoreInfo) Complete() bool { return i.Missing == 0 }

// Discover scans the immediate subdirectories of root for run stores and
// returns one StoreInfo per store, sorted by directory name. Non-store
// subdirectories are skipped; a missing root is an empty result, not an
// error. An unreadable store is reported in err (first one wins) but does
// not hide the readable ones.
func Discover(root string) ([]StoreInfo, error) {
	entries, err := os.ReadDir(root)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var infos []StoreInfo
	var firstErr error
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		if !Exists(dir) {
			continue
		}
		info, err := Inspect(dir)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		infos = append(infos, info)
	}
	sort.Slice(infos, func(a, b int) bool { return infos[a].Dir < infos[b].Dir })
	return infos, firstErr
}

// Inspect opens dir read-only and summarizes it as a StoreInfo.
func Inspect(dir string) (StoreInfo, error) {
	s, err := Open(dir)
	if err != nil {
		return StoreInfo{}, err
	}
	defer s.Close()
	missing, err := s.Missing()
	if err != nil {
		return StoreInfo{}, err
	}
	return StoreInfo{
		Dir:      dir,
		Manifest: s.Manifest(),
		Recorded: s.Len(),
		Missing:  len(missing),
	}, nil
}

// FindByHash locates the store holding specHash under root, preferring
// the canonical DirForHash location and falling back to a scan (stores
// merged or created by hand can live under any name). ok is false when no
// store under root holds the hash.
func FindByHash(root, specHash string) (StoreInfo, bool, error) {
	canonical := DirForHash(root, specHash)
	if Exists(canonical) {
		info, err := Inspect(canonical)
		if err != nil {
			return StoreInfo{}, false, err
		}
		if info.Manifest.SpecHash != specHash {
			return StoreInfo{}, false, fmt.Errorf(
				"report: %s holds spec hash %.12s, not the requested %.12s (hash-prefix collision or stale store)",
				canonical, info.Manifest.SpecHash, specHash)
		}
		return info, true, nil
	}
	infos, err := Discover(root)
	if err != nil {
		return StoreInfo{}, false, err
	}
	for _, info := range infos {
		if info.Manifest.SpecHash == specHash {
			return info, true, nil
		}
	}
	return StoreInfo{}, false, nil
}
