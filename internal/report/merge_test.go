package report_test

import (
	"path/filepath"
	"strings"
	"testing"

	"obm/internal/report"
	"obm/internal/sim"
)

// runShard executes one shard slice of specs into a fresh store at dir.
func runShard(t *testing.T, dir string, specs []sim.ScenarioSpec, curvePoints int, shard report.Shard) *report.Store {
	t.Helper()
	st, err := report.Create(dir, newManifest(t, specs, curvePoints, shard))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Run(sim.GridOptions{Workers: 2, ChunkSize: 512}); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestMergeDisjointShards(t *testing.T) {
	specs := smallSpecs()
	base := t.TempDir()
	s0 := runShard(t, filepath.Join(base, "s0"), specs, 0, report.Shard{Index: 0, Count: 2})
	s1 := runShard(t, filepath.Join(base, "s1"), specs, 0, report.Shard{Index: 1, Count: 2})
	total := s0.Manifest().TotalJobs
	if got := s0.Len() + s1.Len(); got != total {
		t.Fatalf("shards cover %d of %d jobs", got, total)
	}
	if m0, _ := s0.Missing(); len(m0) != 0 {
		t.Fatalf("shard 0 incomplete: %v", m0)
	}
	s0.Close()
	s1.Close()

	merged, err := report.Merge(filepath.Join(base, "merged"), filepath.Join(base, "s0"), filepath.Join(base, "s1"))
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	if merged.Len() != total {
		t.Fatalf("merged %d of %d jobs", merged.Len(), total)
	}
	if !merged.Manifest().Shard.IsFull() {
		t.Fatal("merged store is not a full-grid store")
	}
	if missing, _ := merged.Missing(); len(missing) != 0 {
		t.Fatalf("merged store missing %v", missing)
	}
}

func TestMergeOverlappingIdentical(t *testing.T) {
	specs := smallSpecs()
	base := t.TempDir()
	// Two full runs of the same grid: every record overlaps and, by the
	// seed contract, must be identical in its deterministic fields.
	a := runShard(t, filepath.Join(base, "a"), specs, 0, report.Shard{})
	b := runShard(t, filepath.Join(base, "b"), specs, 0, report.Shard{})
	a.Close()
	b.Close()
	merged, err := report.Merge(filepath.Join(base, "m"), filepath.Join(base, "a"), filepath.Join(base, "b"))
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	if missing, _ := merged.Missing(); len(missing) != 0 || merged.Len() != merged.Manifest().TotalJobs {
		t.Fatalf("overlapping merge incomplete: len=%d missing=%d", merged.Len(), len(missing))
	}
}

func TestMergeConflictFails(t *testing.T) {
	specs := smallSpecs()
	base := t.TempDir()
	m := newManifest(t, specs, 0, report.Shard{})
	j := sim.GridJob{Scenario: "uni", Alg: "r-bma", B: 2, Rep: 0}
	a, err := report.Create(filepath.Join(base, "a"), m)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Append(j, sim.JobOutcome{Routing: 10}); err != nil {
		t.Fatal(err)
	}
	a.Close()
	b, err := report.Create(filepath.Join(base, "b"), m)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Append(j, sim.JobOutcome{Routing: 999}); err != nil {
		t.Fatal(err)
	}
	b.Close()
	_, err = report.Merge(filepath.Join(base, "m"), filepath.Join(base, "a"), filepath.Join(base, "b"))
	if err == nil || !strings.Contains(err.Error(), "conflicting") {
		t.Fatalf("conflicting merge not rejected: %v", err)
	}
}

func TestMergeSpecHashMismatchFails(t *testing.T) {
	base := t.TempDir()
	a, err := report.Create(filepath.Join(base, "a"), newManifest(t, smallSpecs(), 0, report.Shard{}))
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	other := smallSpecs()
	other[0].Seed = 77
	b, err := report.Create(filepath.Join(base, "b"), newManifest(t, other, 0, report.Shard{}))
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	_, err = report.Merge(filepath.Join(base, "m"), filepath.Join(base, "a"), filepath.Join(base, "b"))
	if err == nil || !strings.Contains(err.Error(), "different grids") {
		t.Fatalf("mismatched merge not rejected: %v", err)
	}
}
