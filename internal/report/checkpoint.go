package report

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"obm/internal/sim"
)

// Mid-job checkpoint files: a store-backed run persists each in-flight
// job's replay checkpoint (sim's "OBMC" blob) under <dir>/checkpoints/, so
// a killed run resumes inside a partially replayed cell instead of at its
// start. Files are written atomically (tmp + rename) and deleted when the
// job's outcome lands in the log — the log is the source of truth,
// checkpoints are disposable accelerators. sim treats an unreadable or
// stale blob as "replay from scratch", so nothing here needs fsync or
// crash-ordering guarantees.

// checkpointsDir is the per-store directory holding mid-job checkpoints.
const checkpointsDir = "checkpoints"

// checkpointPath names a job's checkpoint file. Job identity fields are
// hashed (not embedded) so scenario names never meet filesystem naming
// rules, and the filename stays stable for the same job across runs.
func (s *Store) checkpointPath(j sim.GridJob) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%s|%s|%d|%d", j.Scenario, j.Alg, j.B, j.Rep)))
	return filepath.Join(s.dir, checkpointsDir, "ck-"+hex.EncodeToString(h[:16])+".bin")
}

// SaveCheckpoint atomically replaces j's checkpoint file. It is the
// sim.GridOptions.SaveCheckpoint hook of a store-backed run.
func (s *Store) SaveCheckpoint(j sim.GridJob, blob []byte) error {
	path := s.checkpointPath(j)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("report: checkpoint dir for %s: %w", j, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ck-*.tmp")
	if err != nil {
		return fmt.Errorf("report: checkpoint for %s: %w", j, err)
	}
	_, werr := tmp.Write(blob)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("report: checkpoint for %s: %w", j, werr)
	}
	return nil
}

// LoadCheckpoint returns j's checkpoint blob, if one exists. It is the
// sim.GridOptions.LoadCheckpoint hook; sim validates the blob's integrity
// itself, so a missing or unreadable file is simply "no checkpoint".
func (s *Store) LoadCheckpoint(j sim.GridJob) ([]byte, bool) {
	blob, err := os.ReadFile(s.checkpointPath(j))
	if err != nil {
		return nil, false
	}
	return blob, true
}

// DropCheckpoint removes j's checkpoint file, if any. It is the
// sim.GridOptions.DropCheckpoint hook, called when a job completes.
func (s *Store) DropCheckpoint(j sim.GridJob) {
	os.Remove(s.checkpointPath(j))
}
