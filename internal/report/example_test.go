package report_test

import (
	"fmt"
	"os"
	"path/filepath"

	"obm/internal/report"
	"obm/internal/sim"
)

// ExampleStore runs a tiny grid into a durable run store, then "resumes"
// it: the second run finds every job already recorded and executes
// nothing — the core contract of resumable grids.
func ExampleStore() {
	dir, err := os.MkdirTemp("", "runstore")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	specs := []sim.ScenarioSpec{{
		Name: "demo", Family: "uniform",
		Racks: 8, Requests: 2000, Seed: 1,
		Bs: []int{2}, Reps: 2, Algs: []string{"r-bma"},
	}}

	m, err := report.NewManifest("demo", specs, 0, report.Shard{})
	if err != nil {
		panic(err)
	}
	st, err := report.Create(filepath.Join(dir, "run"), m)
	if err != nil {
		panic(err)
	}
	if _, err := st.Run(sim.GridOptions{Workers: 1}); err != nil {
		panic(err)
	}
	fmt.Println("jobs recorded:", st.Len())
	st.Close()

	// Re-open and re-run: everything resolves from the log.
	re, err := report.Open(filepath.Join(dir, "run"))
	if err != nil {
		panic(err)
	}
	defer re.Close()
	executed := 0
	opt := re.GridOptions(sim.GridOptions{Workers: 1})
	opt.Persist = func(j sim.GridJob, o sim.JobOutcome) error { executed++; return nil }
	if _, err := sim.RunGrid(re.Manifest().Specs, opt); err != nil {
		panic(err)
	}
	missing, err := re.Missing()
	if err != nil {
		panic(err)
	}
	fmt.Println("re-executed:", executed, "missing:", len(missing))
	// Output:
	// jobs recorded: 2
	// re-executed: 0 missing: 0
}
