package report_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"obm/internal/report"
	"obm/internal/sim"
)

// smallSpecs is a two-scenario grid small enough that store-mechanics
// tests run in milliseconds.
func smallSpecs() []sim.ScenarioSpec {
	return []sim.ScenarioSpec{
		{
			Name: "uni", Family: "uniform",
			Racks: 8, Requests: 1500, Seed: 1,
			Bs: []int{2}, Reps: 2,
			Algs: []string{"r-bma", "oblivious"},
		},
		{
			Name: "phase", Family: "phase-shift",
			Racks: 8, Requests: 1500, Seed: 2,
			Bs: []int{2}, Reps: 1,
			Algs: []string{"bma"},
		},
	}
}

func newManifest(t *testing.T, specs []sim.ScenarioSpec, curvePoints int, shard report.Shard) report.Manifest {
	t.Helper()
	m, err := report.NewManifest("test", specs, curvePoints, shard)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestStoreCreateAppendReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := report.Create(dir, newManifest(t, smallSpecs(), 0, report.Shard{}))
	if err != nil {
		t.Fatal(err)
	}
	// uni: r-bma b=2 ×2 reps + oblivious b=0 ×2; phase: bma b=2 ×1.
	if st.Manifest().TotalJobs != 5 {
		t.Fatalf("TotalJobs = %d, want 5", st.Manifest().TotalJobs)
	}
	j1 := sim.GridJob{Scenario: "uni", Alg: "r-bma", B: 2, Rep: 0}
	j2 := sim.GridJob{Scenario: "uni", Alg: "r-bma", B: 2, Rep: 1}
	if err := st.Append(j1, sim.JobOutcome{Routing: 10, Reconfig: 3, ElapsedMS: 1.5}); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(j2, sim.JobOutcome{Routing: 11, Reconfig: 4}); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(j1, sim.JobOutcome{Routing: 99}); err == nil {
		t.Fatal("duplicate append accepted")
	}
	missing, err := st.Missing()
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 3 {
		t.Fatalf("missing = %v, want 3 jobs", missing)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil { // idempotent
		t.Fatal(err)
	}

	re, err := report.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 2 || re.Truncated() != 0 {
		t.Fatalf("reopened: len=%d truncated=%d", re.Len(), re.Truncated())
	}
	o, ok := re.Lookup(j1)
	if !ok || o.Routing != 10 || o.Reconfig != 3 || o.ElapsedMS != 1.5 {
		t.Fatalf("lookup after reopen = %+v, %v", o, ok)
	}
	if re.Manifest().SpecHash != st.Manifest().SpecHash {
		t.Fatal("spec hash changed across reopen")
	}
}

func TestStoreRefusesClobberAndMissing(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	m := newManifest(t, smallSpecs(), 0, report.Shard{})
	st, err := report.Create(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := report.Create(dir, m); err == nil {
		t.Fatal("Create over an existing store accepted")
	}
	if _, err := report.Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("Open of a non-store accepted")
	}
	if !report.Exists(dir) || report.Exists(filepath.Join(t.TempDir(), "nope")) {
		t.Fatal("Exists misreports")
	}
}

// TestStoreTornTailRecovery simulates a crash mid-append: the log ends in
// half a record. Open must drop exactly that record, trim the file, and
// leave the store appendable on a clean line.
func TestStoreTornTailRecovery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := report.Create(dir, newManifest(t, smallSpecs(), 0, report.Shard{}))
	if err != nil {
		t.Fatal(err)
	}
	j1 := sim.GridJob{Scenario: "uni", Alg: "r-bma", B: 2, Rep: 0}
	if err := st.Append(j1, sim.JobOutcome{Routing: 10}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	log := filepath.Join(dir, "jobs.jsonl")
	f, err := os.OpenFile(log, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"scenario":"uni","alg":"r-bma","b":2,"rep":1,"outco`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := report.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 1 || re.Truncated() != 1 {
		t.Fatalf("after torn tail: len=%d truncated=%d, want 1/1", re.Len(), re.Truncated())
	}
	// The torn job is missing again and can be re-appended cleanly.
	j2 := sim.GridJob{Scenario: "uni", Alg: "r-bma", B: 2, Rep: 1}
	if _, ok := re.Lookup(j2); ok {
		t.Fatal("torn record survived")
	}
	if err := re.Append(j2, sim.JobOutcome{Routing: 11}); err != nil {
		t.Fatal(err)
	}
	re.Close()

	final, err := report.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	if final.Len() != 2 || final.Truncated() != 0 {
		t.Fatalf("after recovery append: len=%d truncated=%d, want 2/0", final.Len(), final.Truncated())
	}
}

func TestStoreCorruptMiddleFails(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := report.Create(dir, newManifest(t, smallSpecs(), 0, report.Shard{}))
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	log := filepath.Join(dir, "jobs.jsonl")
	content := "not json at all\n" +
		`{"scenario":"uni","alg":"r-bma","b":2,"rep":0,"outcome":{"routing":1,"reconfig":0,"elapsed_ms":0}}` + "\n"
	if err := os.WriteFile(log, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := report.Open(dir); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("mid-log corruption not detected: %v", err)
	}
}

// TestStoreRejectsMismatchedCurves: a record that is valid JSON but whose
// curve arrays disagree in length must be rejected at the load/append
// boundary, not crash the renderer or merge later.
func TestStoreRejectsMismatchedCurves(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := report.Create(dir, newManifest(t, smallSpecs(), 4, report.Shard{}))
	if err != nil {
		t.Fatal(err)
	}
	j := sim.GridJob{Scenario: "uni", Alg: "r-bma", B: 2, Rep: 0}
	bad := sim.JobOutcome{Routing: 10, X: []int{1, 2}, RoutingCurve: []float64{5}, ReconfigCurve: []float64{0, 0}}
	if err := st.Append(j, bad); err == nil {
		t.Fatal("mismatched curve lengths accepted by Append")
	}
	st.Close()

	// The same shape written to disk mid-log must fail Open as corruption.
	log := filepath.Join(dir, "jobs.jsonl")
	content := `{"scenario":"uni","alg":"r-bma","b":2,"rep":0,"outcome":{"routing":1,"reconfig":0,"elapsed_ms":0,"x":[1,2],"routing_curve":[5],"reconfig_curve":[0,0]}}` + "\n" +
		`{"scenario":"uni","alg":"r-bma","b":2,"rep":1,"outcome":{"routing":1,"reconfig":0,"elapsed_ms":0}}` + "\n"
	if err := os.WriteFile(log, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := report.Open(dir); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("mismatched curves mid-log not rejected: %v", err)
	}
	// As the *final* line it is indistinguishable from a torn write:
	// dropped, not fatal.
	if err := os.WriteFile(log, []byte(content[strings.Index(content, "\n")+1:]+content[:strings.Index(content, "\n")+1]), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := report.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 1 || re.Truncated() != 1 {
		t.Fatalf("trailing malformed record: len=%d truncated=%d, want 1/1", re.Len(), re.Truncated())
	}
}

func TestSpecHashNormalization(t *testing.T) {
	specs := smallSpecs()
	h1, err := report.SpecHash(specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Spelling out the defaults must not change the hash.
	specs[0].Alpha = 30
	specs[1].Reps = 1
	h2, err := report.SpecHash(specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("hash depends on whether defaults are spelled out")
	}
	// Anything that changes outcomes must change the hash.
	specs[0].Seed++
	if h3, _ := report.SpecHash(specs, 4); h3 == h1 {
		t.Fatal("hash ignores the seed")
	}
	specs[0].Seed--
	if h4, _ := report.SpecHash(specs, 5); h4 == h1 {
		t.Fatal("hash ignores curve points")
	}
}
