package report

import (
	"fmt"

	"obm/internal/sim"
)

// Merge folds the logs of srcDirs — typically one store per shard of the
// same grid — into a new full-grid store at dstDir. All sources must share
// the first source's spec hash (same normalized specs, same curve
// checkpointing). Records are written in canonical plan order; where
// sources overlap, the deterministic fields (final routing and
// reconfiguration cost, the cost curve) must agree exactly or Merge
// fails — identical seeds must mean identical costs, so a mismatch
// signals a real problem, not noise. Missing jobs are allowed: merging
// partial shard logs yields a partial store that a later run can resume.
func Merge(dstDir string, srcDirs ...string) (*Store, error) {
	if len(srcDirs) == 0 {
		return nil, fmt.Errorf("report: merge with no source stores")
	}
	srcs := make([]*Store, len(srcDirs))
	for i, dir := range srcDirs {
		s, err := Open(dir)
		if err != nil {
			return nil, err
		}
		defer s.Close()
		srcs[i] = s
		if got, want := s.manifest.SpecHash, srcs[0].manifest.SpecHash; got != want {
			return nil, fmt.Errorf("report: %s and %s hold different grids (spec hash %.12s vs %.12s)",
				srcDirs[i], srcDirs[0], got, want)
		}
	}

	first := srcs[0].manifest
	m, err := NewManifest(first.Name, first.Specs, first.CurvePoints, Shard{})
	if err != nil {
		return nil, err
	}
	if m.SpecHash != first.SpecHash {
		return nil, fmt.Errorf("report: %s: manifest spec hash %.12s does not match its specs (%.12s)",
			srcDirs[0], first.SpecHash, m.SpecHash)
	}
	dst, err := Create(dstDir, m)
	if err != nil {
		return nil, err
	}
	plan, err := m.Plan()
	if err != nil {
		dst.Close()
		return nil, err
	}
	for _, j := range plan.Jobs {
		var (
			chosen   sim.JobOutcome
			from     string
			haveJob  bool
			conflict string
		)
		for i, s := range srcs {
			o, ok := s.Lookup(j)
			if !ok {
				continue
			}
			if !haveJob {
				chosen, from, haveJob = o, srcDirs[i], true
				continue
			}
			if !sameOutcome(chosen, o) {
				conflict = srcDirs[i]
				break
			}
		}
		if conflict != "" {
			dst.Close()
			return nil, fmt.Errorf("report: job %s has conflicting outcomes in %s and %s (identical seeds must give identical costs)",
				j, from, conflict)
		}
		if !haveJob {
			continue
		}
		if err := dst.Append(j, chosen); err != nil {
			dst.Close()
			return nil, err
		}
	}
	if err := dst.Sync(); err != nil {
		dst.Close()
		return nil, err
	}
	return dst, nil
}

// sameOutcome compares the deterministic fields of two outcomes (wall
// time excluded).
func sameOutcome(a, b sim.JobOutcome) bool {
	if a.Routing != b.Routing || a.Reconfig != b.Reconfig {
		return false
	}
	if len(a.X) != len(b.X) ||
		len(a.RoutingCurve) != len(b.RoutingCurve) || len(a.ReconfigCurve) != len(b.ReconfigCurve) {
		return false
	}
	for i := range a.X {
		if a.X[i] != b.X[i] || a.RoutingCurve[i] != b.RoutingCurve[i] || a.ReconfigCurve[i] != b.ReconfigCurve[i] {
			return false
		}
	}
	return true
}
