package report_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"obm/internal/report"
)

// TestAbsorbShardLog: a full-grid store absorbs a shard store's uploaded
// log, and the result matches a Merge of the same sources.
func TestAbsorbShardLog(t *testing.T) {
	specs := smallSpecs()
	base := t.TempDir()
	s0 := runShard(t, filepath.Join(base, "s0"), specs, 2, report.Shard{Index: 0, Count: 2})
	s1 := runShard(t, filepath.Join(base, "s1"), specs, 2, report.Shard{Index: 1, Count: 2})
	s0.Close()
	s1.Close()

	dst, err := report.Create(filepath.Join(base, "dst"), newManifest(t, specs, 2, report.Shard{}))
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	for _, src := range []*report.Store{s0, s1} {
		blob, err := os.ReadFile(src.LogPath())
		if err != nil {
			t.Fatal(err)
		}
		added, err := dst.Absorb(bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		if added != src.Len() {
			t.Fatalf("absorbed %d records from a %d-record shard log", added, src.Len())
		}
	}
	if missing, _ := dst.Missing(); len(missing) != 0 {
		t.Fatalf("absorbed store still missing %v", missing)
	}

	merged, err := report.Merge(filepath.Join(base, "merged"), filepath.Join(base, "s0"), filepath.Join(base, "s1"))
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	if got, want := summaryCSV(t, dst), summaryCSV(t, merged); !bytes.Equal(got, want) {
		t.Fatalf("absorbed summary differs from merged:\n--- absorbed\n%s--- merged\n%s", got, want)
	}
}

// TestAbsorbDuplicatesVerify: re-absorbing the identical log is a no-op
// (at-least-once delivery), while a log whose overlapping record
// disagrees on a deterministic field is rejected.
func TestAbsorbDuplicatesVerify(t *testing.T) {
	specs := smallSpecs()
	base := t.TempDir()
	src := runShard(t, filepath.Join(base, "src"), specs, 0, report.Shard{})
	defer src.Close()
	blob, err := os.ReadFile(src.LogPath())
	if err != nil {
		t.Fatal(err)
	}

	dst, err := report.Create(filepath.Join(base, "dst"), newManifest(t, specs, 0, report.Shard{}))
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if added, err := dst.Absorb(bytes.NewReader(blob)); err != nil || added != src.Len() {
		t.Fatalf("first absorb: added=%d err=%v", added, err)
	}
	before := dst.Len()
	if added, err := dst.Absorb(bytes.NewReader(blob)); err != nil || added != 0 {
		t.Fatalf("duplicate absorb: added=%d err=%v, want 0 and nil", added, err)
	}
	if dst.Len() != before {
		t.Fatalf("duplicate absorb changed the store: %d -> %d records", before, dst.Len())
	}

	// Tamper with one routing cost: the absorb must fail loudly, with
	// the sentinel that distinguishes broken determinism from a merely
	// broken upload.
	line := strings.SplitN(string(blob), "\n", 2)[0]
	tampered := strings.Replace(line, `"routing":`, `"routing":1e99, "was":`, 1)
	if _, err := dst.Absorb(strings.NewReader(tampered + "\n")); !errors.Is(err, report.ErrOutcomeConflict) {
		t.Fatalf("conflicting absorb not rejected with ErrOutcomeConflict: %v", err)
	}
}

// TestAbsorbRejectsGarbage: malformed lines and jobs outside the store's
// grid are errors — an upload is a complete message, not a crash
// artifact, so there is no torn-tail tolerance here.
func TestAbsorbRejectsGarbage(t *testing.T) {
	dst, err := report.Create(filepath.Join(t.TempDir(), "dst"), newManifest(t, smallSpecs(), 0, report.Shard{}))
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	for _, bad := range []string{
		"{not json\n",
		`{"scenario":"uni","alg":"r-bma","b":2,"rep":0,"outcome":{"routing":1,"x":[1,2],"routing_curve":[1],"reconfig_curve":[1,2]}}` + "\n",
		`{"scenario":"nope","alg":"r-bma","b":2,"rep":0,"outcome":{"routing":1}}` + "\n",
	} {
		if _, err := dst.Absorb(strings.NewReader(bad)); err == nil {
			t.Errorf("absorb accepted %q", bad)
		}
	}
	if dst.Len() != 0 {
		t.Fatalf("rejected absorbs still appended %d records", dst.Len())
	}
}
