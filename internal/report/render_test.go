package report_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"obm/internal/report"
	"obm/internal/sim"
)

func TestWriteReportMarkdown(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st := runShard(t, dir, smallSpecs(), 6, report.Shard{})
	defer st.Close()

	var buf bytes.Buffer
	if err := st.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	md := buf.String()
	for _, want := range []string{
		"# Run report:",
		"| spec hash |",
		"## uni",
		"## phase",
		"Family `uniform`",
		"| algorithm | b |",
		"| r-bma | 2 |",
		"| oblivious | 0 |",
		"```text", // the ASCII cost chart (CurvePoints > 0)
		"cumulative routing cost",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("report missing %q:\n%s", want, md)
		}
	}
	if strings.Contains(md, "Incomplete run") {
		t.Error("complete store rendered as incomplete")
	}
}

func TestWriteReportIncompleteAndChartless(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	// CurvePoints = 0: no charts; one appended job out of five: incomplete.
	st, err := report.Create(dir, newManifest(t, smallSpecs(), 0, report.Shard{}))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	j := sim.GridJob{Scenario: "uni", Alg: "r-bma", B: 2, Rep: 0}
	if err := st.Append(j, sim.JobOutcome{Routing: 10, Reconfig: 2}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	md := buf.String()
	if !strings.Contains(md, "Incomplete run") {
		t.Error("partial store not flagged incomplete")
	}
	if strings.Contains(md, "```text") {
		t.Error("chart rendered without recorded curves")
	}
	// The one recorded cell still renders a table row.
	if !strings.Contains(md, "| r-bma | 2 |") {
		t.Errorf("recorded cell missing from tables:\n%s", md)
	}
}

func TestWriteSummaryCSVShape(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st := runShard(t, dir, smallSpecs(), 0, report.Shard{})
	defer st.Close()
	res, err := st.Result()
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := report.WriteSummaryCSV(&a, res); err != nil {
		t.Fatal(err)
	}
	if err := report.WriteSummaryCSV(&b, res); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("summary CSV not deterministic")
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if lines[0] != "scenario,family,alg,b,racks,requests,reps,"+
		"routing_mean,routing_std,reconfig_mean,reconfig_std,total_mean,total_std" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 1+len(res.Rows) {
		t.Fatalf("%d lines for %d rows", len(lines), len(res.Rows))
	}
	if strings.Contains(a.String(), "elapsed") {
		t.Fatal("summary CSV must not carry wall-time columns")
	}
}
