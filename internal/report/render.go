package report

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"obm/internal/figures"
	"obm/internal/sim"
)

// Result aggregates the store's completed jobs into grid rows, in the
// same canonical order a live sim.RunGrid over the manifest's specs uses.
// Because repetition values are folded in plan order, the deterministic
// columns of a resumed, sharded-and-merged, or uninterrupted run of the
// same grid are identical.
func (s *Store) Result() (*sim.GridResult, error) {
	plan, err := s.manifest.Plan()
	if err != nil {
		return nil, err
	}
	return plan.Aggregate(s.Outcomes()), nil
}

// WriteSummaryCSV emits the deterministic summary of a grid result: one
// row per aggregated (scenario, algorithm, b) cell, costs only. Wall-time
// columns are deliberately excluded so the file is byte-identical across
// resumed, sharded and uninterrupted executions of the same grid — it is
// the file the resume/merge equivalence tests compare.
func WriteSummaryCSV(w io.Writer, res *sim.GridResult) error {
	if _, err := fmt.Fprintln(w, "scenario,family,alg,b,racks,requests,reps,"+
		"routing_mean,routing_std,reconfig_mean,reconfig_std,total_mean,total_std"); err != nil {
		return err
	}
	for _, r := range res.Rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%d,%d,%d,%d,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g\n",
			r.Scenario, r.Family, r.Alg, r.B, r.Racks, r.Requests, r.Routing.N,
			r.Routing.Mean, r.Routing.Std, r.Reconfig.Mean, r.Reconfig.Std,
			r.Total.Mean, r.Total.Std); err != nil {
			return err
		}
	}
	return nil
}

// WriteReport renders the store as a self-contained Markdown report:
// run metadata, one summary table per scenario (mean ± std over
// repetitions), and — when the store records cost curves — one ASCII
// cumulative-routing-cost chart per scenario.
func (s *Store) WriteReport(w io.Writer) error {
	m := s.manifest
	plan, err := m.Plan()
	if err != nil {
		return err
	}
	outcomes := s.Outcomes()
	res := plan.Aggregate(outcomes)
	missing, err := s.Missing()
	if err != nil {
		return err
	}

	name := m.Name
	if name == "" {
		name = "experiment grid"
	}
	fmt.Fprintf(w, "# Run report: %s\n\n", name)
	fmt.Fprintf(w, "| | |\n|---|---|\n")
	fmt.Fprintf(w, "| created | %s |\n", m.CreatedAt)
	fmt.Fprintf(w, "| go version | %s |\n", m.GoVersion)
	fmt.Fprintf(w, "| spec hash | `%.12s` |\n", m.SpecHash)
	fmt.Fprintf(w, "| shard | %s |\n", m.Shard)
	fmt.Fprintf(w, "| jobs | %d recorded, %d of this shard's %s missing |\n",
		s.Len(), len(missing), shardJobsLabel(m))
	fmt.Fprintf(w, "| scenarios | %d |\n\n", len(m.Specs))
	if len(missing) > 0 {
		fmt.Fprintf(w, "**Incomplete run** — %d jobs have not finished; re-run the grid "+
			"against this store to resume.\n\n", len(missing))
	}

	for _, spec := range m.Specs {
		fmt.Fprintf(w, "## %s\n\n", spec.Name)
		fmt.Fprintf(w, "Family `%s`, %d racks, %d requests, seed %d, α=%g.\n\n",
			spec.Family, spec.Racks, spec.Requests, spec.Seed, spec.Alpha)
		fmt.Fprintln(w, "| algorithm | b | routing cost | reconfig cost | total cost | time (ms) | reps |")
		fmt.Fprintln(w, "|---|---:|---|---|---|---:|---:|")
		for _, r := range res.Rows {
			if r.Scenario != spec.Name {
				continue
			}
			fmt.Fprintf(w, "| %s | %d | %s | %s | %s | %.2f | %d |\n",
				r.Alg, r.B, r.Routing.MeanStd(), r.Reconfig.MeanStd(),
				r.Total.MeanStd(), r.ElapsedMS.Mean, r.Routing.N)
		}
		fmt.Fprintln(w)
		if m.CurvePoints > 0 {
			curves := scenarioCurves(plan, outcomes, spec.Name)
			if len(curves) > 0 {
				fmt.Fprintf(w, "```text\n%s```\n\n",
					figures.CurveChart("cumulative routing cost (mean over reps)", curves, 64, 14))
			}
		}
	}
	return nil
}

// Render writes the store's summary.csv (deterministic per-cell costs)
// and report.md (tables + ASCII cost curves) into the store directory,
// returning the paths written. It is how a finished run documents itself
// — `experiments grid/merge/report` and the experiment service all call
// it.
func (s *Store) Render() (csvPath, mdPath string, err error) {
	res, err := s.Result()
	if err != nil {
		return "", "", err
	}
	csvPath = filepath.Join(s.dir, "summary.csv")
	if err := writeFileWith(csvPath, func(w io.Writer) error {
		return WriteSummaryCSV(w, res)
	}); err != nil {
		return "", "", err
	}
	mdPath = filepath.Join(s.dir, "report.md")
	if err := writeFileWith(mdPath, s.WriteReport); err != nil {
		return "", "", err
	}
	return csvPath, mdPath, nil
}

// writeFileWith streams write into path atomically (temp file + rename,
// like writeManifest): readers — including concurrent re-renders racing
// over an HTTP artifact endpoint — only ever see a complete file.
func writeFileWith(path string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if err := write(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// CellCurve is one aggregated cost curve: a (scenario, algorithm, b)
// cell's checkpointed cumulative costs averaged over its recorded
// repetitions. It is the JSON-friendly form the experiment service's
// curve endpoint returns.
type CellCurve struct {
	Scenario string    `json:"scenario"`
	Alg      string    `json:"alg"`
	B        int       `json:"b"`
	Reps     int       `json:"reps"`
	X        []int     `json:"x"`
	Routing  []float64 `json:"routing"`
	Reconfig []float64 `json:"reconfig"`
}

// CellCurves returns every cell's averaged cost curve, in canonical plan
// order. Cells with no recorded curves (or inconsistent checkpoint lists)
// are skipped; a store created with CurvePoints == 0 yields none.
func (s *Store) CellCurves() ([]CellCurve, error) {
	plan, err := s.manifest.Plan()
	if err != nil {
		return nil, err
	}
	outcomes := s.Outcomes()
	var out []CellCurve
	for _, spec := range s.manifest.Specs {
		for _, c := range scenarioCurves(plan, outcomes, spec.Name) {
			out = append(out, CellCurve{
				Scenario: spec.Name,
				Alg:      c.Alg,
				B:        c.B,
				Reps:     c.Avg.Reps,
				X:        c.Avg.X,
				Routing:  c.Avg.Routing,
				Reconfig: c.Avg.Reconfig,
			})
		}
	}
	return out, nil
}

func shardJobsLabel(m Manifest) string {
	if m.Shard.IsFull() {
		return fmt.Sprintf("%d jobs", m.TotalJobs)
	}
	return fmt.Sprintf("slice of %d jobs", m.TotalJobs)
}

// scenarioCurves averages each of one scenario's cells' recorded cost
// curves over its repetitions, in cell order — the input of the report's
// ASCII charts. Cells whose repetitions carry no (or inconsistent) curves
// are skipped.
func scenarioCurves(plan *sim.GridPlan, outcomes map[sim.GridJob]sim.JobOutcome, scenario string) []sim.Curve {
	type acc struct {
		x        []int
		routing  []float64
		reconfig []float64
		reps     int
		bad      bool
	}
	accs := make([]acc, len(plan.Cells))
	for i, j := range plan.Jobs {
		ci := plan.CellOf[i]
		if plan.Cells[ci].Scenario != scenario {
			continue
		}
		o, ok := outcomes[j]
		if !ok || len(o.X) == 0 {
			continue
		}
		a := &accs[ci]
		if a.reps == 0 {
			a.x = o.X
			a.routing = append([]float64(nil), o.RoutingCurve...)
			a.reconfig = append([]float64(nil), o.ReconfigCurve...)
			a.reps = 1
			continue
		}
		if len(o.X) != len(a.x) {
			a.bad = true
			continue
		}
		for k := range a.routing {
			a.routing[k] += o.RoutingCurve[k]
			a.reconfig[k] += o.ReconfigCurve[k]
		}
		a.reps++
	}
	var curves []sim.Curve
	for ci := range accs {
		a := &accs[ci]
		if a.reps == 0 || a.bad {
			continue
		}
		for k := range a.routing {
			a.routing[k] /= float64(a.reps)
			a.reconfig[k] /= float64(a.reps)
		}
		cell := plan.Cells[ci]
		curves = append(curves, sim.Curve{
			Alg: cell.Alg,
			B:   cell.B,
			Avg: sim.Averaged{
				Label:    fmt.Sprintf("%s(b=%d)", cell.Alg, cell.B),
				X:        a.x,
				Routing:  a.routing,
				Reconfig: a.reconfig,
				Reps:     a.reps,
			},
		})
	}
	return curves
}
