package report_test

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"obm/internal/report"
	"obm/internal/sim"
)

// TestStoreConcurrentAppend hammers one store with parallel Append
// callers — the experiment service appends from several grid workers at
// once. Every record must survive, and the re-opened log must be clean
// (no interleaved or torn lines).
func TestStoreConcurrentAppend(t *testing.T) {
	specs := []sim.ScenarioSpec{{
		Name: "uni", Family: "uniform",
		Racks: 8, Requests: 500, Seed: 1,
		Bs: []int{2}, Reps: 24,
		Algs: []string{"r-bma"},
	}}
	dir := filepath.Join(t.TempDir(), "store")
	st, err := report.Create(dir, newManifest(t, specs, 0, report.Shard{}))
	if err != nil {
		t.Fatal(err)
	}
	const reps = 24
	var wg sync.WaitGroup
	errs := make([]error, reps)
	for rep := 0; rep < reps; rep++ {
		wg.Add(1)
		go func(rep int) {
			defer wg.Done()
			errs[rep] = st.Append(
				sim.GridJob{Scenario: "uni", Alg: "r-bma", B: 2, Rep: rep},
				sim.JobOutcome{Routing: float64(rep), Reconfig: 1},
			)
		}(rep)
	}
	wg.Wait()
	for rep, err := range errs {
		if err != nil {
			t.Fatalf("concurrent append rep %d: %v", rep, err)
		}
	}
	if missing, _ := st.Missing(); len(missing) != 0 {
		t.Fatalf("store missing %v after all appends", missing)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := report.Open(dir)
	if err != nil {
		t.Fatalf("reopen after concurrent appends: %v", err)
	}
	defer re.Close()
	if re.Len() != reps || re.Truncated() != 0 {
		t.Fatalf("reopened: len=%d truncated=%d, want %d/0", re.Len(), re.Truncated(), reps)
	}
	for rep := 0; rep < reps; rep++ {
		o, ok := re.Lookup(sim.GridJob{Scenario: "uni", Alg: "r-bma", B: 2, Rep: rep})
		if !ok || o.Routing != float64(rep) {
			t.Fatalf("rep %d: lookup = %+v, %v", rep, o, ok)
		}
	}
}

// TestMergeEmptyShardLog: merging a finished shard with a shard that never
// ran a job (its jobs.jsonl is empty — or missing entirely) must yield a
// partial store holding exactly the finished shard's records, resumable to
// completion.
func TestMergeEmptyShardLog(t *testing.T) {
	specs := smallSpecs()
	base := t.TempDir()
	s0 := runShard(t, filepath.Join(base, "s0"), specs, 0, report.Shard{Index: 0, Count: 2})
	done := s0.Len()
	s0.Close()
	// Shard 1 is created but never run: its log exists and is empty.
	s1, err := report.Create(filepath.Join(base, "s1"), newManifest(t, specs, 0, report.Shard{Index: 1, Count: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if s1.Len() != 0 {
		t.Fatalf("fresh shard has %d records", s1.Len())
	}
	s1.Close()

	merged, err := report.Merge(filepath.Join(base, "merged"), filepath.Join(base, "s0"), filepath.Join(base, "s1"))
	if err != nil {
		t.Fatalf("merge with empty shard log: %v", err)
	}
	total := merged.Manifest().TotalJobs
	if merged.Len() != done {
		t.Fatalf("merged %d records, want shard 0's %d", merged.Len(), done)
	}
	missing, err := merged.Missing()
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != total-done {
		t.Fatalf("merged store missing %d jobs, want %d", len(missing), total-done)
	}
	// The merged partial store resumes to a complete grid.
	if _, err := merged.Run(sim.GridOptions{Workers: 2, ChunkSize: 512}); err != nil {
		t.Fatal(err)
	}
	if missing, _ := merged.Missing(); len(missing) != 0 {
		t.Fatalf("resumed merge still missing %v", missing)
	}
	merged.Close()

	// Same merge with the empty log file removed entirely: Open treats a
	// store with no jobs.jsonl as zero completed jobs.
	if err := os.Remove(filepath.Join(base, "s1", "jobs.jsonl")); err != nil {
		t.Fatal(err)
	}
	merged2, err := report.Merge(filepath.Join(base, "merged2"), filepath.Join(base, "s0"), filepath.Join(base, "s1"))
	if err != nil {
		t.Fatalf("merge with missing shard log: %v", err)
	}
	defer merged2.Close()
	if merged2.Len() != done {
		t.Fatalf("merged2 %d records, want %d", merged2.Len(), done)
	}
}
