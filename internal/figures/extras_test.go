package figures

import (
	"testing"

	"obm/internal/sim"
)

func TestExtrasEnumerate(t *testing.T) {
	extras := Extras()
	if len(extras) != 5 {
		t.Fatalf("got %d extras, want 5", len(extras))
	}
	all := AllWithExtras()
	if len(all) != 12+5 {
		t.Fatalf("AllWithExtras = %d, want 17", len(all))
	}
	if _, err := ByID("ext-rotor"); err != nil {
		t.Fatal(err)
	}
}

func TestExtRotorShape(t *testing.T) {
	f, err := ByID("ext-rotor")
	if err != nil {
		t.Fatal(err)
	}
	cfg, specs, err := f.Build(0.02, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunExperimentParallel(cfg, specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	finals := res.FinalRouting()
	if finals["r-bma(b=6)"] >= finals["rotor(b=6)"] {
		t.Fatalf("demand-aware should beat rotor: %v", finals)
	}
	if finals["rotor(b=6)"] >= finals["oblivious(b=0)"] {
		t.Fatalf("rotor should still beat oblivious: %v", finals)
	}
}

func TestExtAlphaMonotone(t *testing.T) {
	f, _ := ByID("ext-alpha")
	cfg, specs, err := f.Build(0.02, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunExperimentParallel(cfg, specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	finals := res.FinalRouting()
	// Smaller α reconfigures more eagerly and should achieve lower routing
	// cost (the total-cost trade-off is what the reconfig column captures).
	if finals["r-bma-a5(b=6)"] > finals["r-bma-a120(b=6)"] {
		// Routing cost must not increase when reconfiguration is cheaper.
		t.Logf("finals: %v", finals)
	}
	if finals["r-bma-a5(b=6)"] >= finals["r-bma-a120(b=6)"] {
		t.Fatalf("cheap α should give lower routing cost: %v", finals)
	}
}

func TestAllExtrasBuildAndRunTiny(t *testing.T) {
	for _, f := range Extras() {
		f := f
		t.Run(f.ID, func(t *testing.T) {
			cfg, specs, err := f.Build(0.005, 1, 1)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.RunExperimentParallel(cfg, specs, 4)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Curves) == 0 {
				t.Fatal("no curves produced")
			}
		})
	}
}
