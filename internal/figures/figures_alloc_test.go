package figures

import (
	"testing"

	"obm/internal/sim"
)

// Steady-state allocation guards for the figure drivers: after a warm-up
// run, repeating an experiment must not rebuild algorithm state — instances
// are memoized per b and recycled via Reseed/Reset, replay goes through the
// shared scratch buffers, so what remains is only the per-curve result
// assembly (a few slice headers per curve). Before instance memoization
// Fig1a sat at ~536 KB and ~106 allocs per run; the bounds here are far
// below that and fail loudly if per-pair state tables creep back into the
// steady state.
func testFigureSteadyStateAllocs(t *testing.T, id string, maxAllocs float64) {
	t.Helper()
	fig, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	cfg, specs, err := fig.Build(0.02, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		if _, err := sim.RunExperiment(cfg, specs); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm up: construct and memoize the per-b instances
	run()
	if avg := testing.AllocsPerRun(3, run); avg > maxAllocs {
		t.Errorf("%s steady-state allocs = %.0f/run, want <= %.0f", id, avg, maxAllocs)
	}
}

func TestFig1aSteadyStateAllocs(t *testing.T) {
	testFigureSteadyStateAllocs(t, "fig1a", 64)
}

func TestFig1bSteadyStateAllocs(t *testing.T) {
	testFigureSteadyStateAllocs(t, "fig1b", 64)
}
