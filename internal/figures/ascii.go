package figures

import "obm/internal/sim"

// CurveChart renders averaged cumulative routing-cost curves as a
// fixed-size ASCII line chart: the terminal/markdown rendition of a
// figure. It is the chart the `experiments` summaries and the run-store
// report renderer (internal/report) embed, so every surfaced figure goes
// through one definition.
func CurveChart(title string, curves []sim.Curve, width, height int) string {
	return sim.ASCIIChart(title, curves, width, height,
		func(a sim.Averaged, i int) float64 { return a.Routing[i] })
}
