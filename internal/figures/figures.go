// Package figures defines the reproduction of every figure in the paper's
// evaluation (§3, Figures 1–4). Each sub-figure maps to a sim.Config plus
// the algorithm line-up it plots; cmd/experiments and the repository-root
// benchmarks both draw from these definitions so "the experiment" exists in
// exactly one place.
//
// Paper setup reproduced here (§3.1):
//   - fat-tree topology; 100 racks for the Facebook clusters, 50 for
//     Microsoft;
//   - Facebook workloads with spatial skew and temporal structure
//     (synthesized; see README.md for the substitution rationale);
//   - Microsoft workload sampled i.i.d. from a skewed traffic matrix;
//   - request cost = shortest-path length, or 1 over a matching edge;
//   - five repetitions, averaged.
//
// α is not stated in the paper; we use 30 (so k_e ∈ {8, 15} on fat-tree
// distances {4, 2}), swept in the ablation benchmarks.
package figures

import (
	"fmt"
	"sync"

	"obm/internal/core"
	"obm/internal/graph"
	"obm/internal/sim"
	"obm/internal/trace"
)

// DefaultAlpha is the reconfiguration cost used by all figures.
const DefaultAlpha = 30

// Metric says which quantity a sub-figure plots.
type Metric string

const (
	// RoutingCost: cumulative routing cost vs number of requests
	// (sub-figures a and c).
	RoutingCost Metric = "routing-cost"
	// ExecutionTime: wall-clock time of the decision loop (sub-figures b).
	ExecutionTime Metric = "execution-time"
)

// Figure is one reproducible sub-figure.
type Figure struct {
	ID     string // e.g. "fig1a"
	Title  string
	Metric Metric
	// Build assembles the experiment. scale in (0,1] shrinks the request
	// count (benchmarks use small scales; the full runs use 1.0). reps is
	// the number of averaged repetitions (paper: 5).
	Build func(scale float64, reps int, seed uint64) (sim.Config, []sim.AlgSpec, error)
}

type workload struct {
	name     string
	racks    int
	requests int
	bs       []int
	bestB    int
	make     func(racks, requests int, seed uint64) (*trace.Trace, error)
}

var workloads = []workload{
	{
		name: "facebook-database", racks: 100, requests: 350000,
		bs: []int{6, 12, 18}, bestB: 18,
		make: func(racks, requests int, seed uint64) (*trace.Trace, error) {
			p := trace.FacebookPreset(trace.Database, racks, seed)
			p.Requests = requests
			return trace.FacebookStyle(p)
		},
	},
	{
		name: "facebook-webservice", racks: 100, requests: 400000,
		bs: []int{6, 12, 18}, bestB: 18,
		make: func(racks, requests int, seed uint64) (*trace.Trace, error) {
			p := trace.FacebookPreset(trace.WebService, racks, seed)
			p.Requests = requests
			return trace.FacebookStyle(p)
		},
	},
	{
		name: "facebook-hadoop", racks: 100, requests: 185000,
		bs: []int{6, 12, 18}, bestB: 18,
		make: func(racks, requests int, seed uint64) (*trace.Trace, error) {
			p := trace.FacebookPreset(trace.Hadoop, racks, seed)
			p.Requests = requests
			return trace.FacebookStyle(p)
		},
	},
	{
		name: "microsoft", racks: 50, requests: 1750000,
		bs: []int{3, 6, 9}, bestB: 9,
		make: func(racks, requests int, seed uint64) (*trace.Trace, error) {
			return trace.MicrosoftStyle(racks, requests, seed), nil
		},
	},
}

// buildConfig materializes topology, trace and model for a workload.
func (w workload) buildConfig(scale float64, reps int, seed uint64) (sim.Config, core.CostModel, *trace.Trace, error) {
	if scale <= 0 || scale > 1 {
		return sim.Config{}, core.CostModel{}, nil, fmt.Errorf("figures: scale %v out of (0,1]", scale)
	}
	requests := int(float64(w.requests) * scale)
	if requests < 1000 {
		requests = 1000
	}
	top := graph.FatTreeRacks(w.racks)
	model := core.CostModel{Metric: top.Metric(), Alpha: DefaultAlpha}
	tr, err := w.make(w.racks, requests, seed)
	if err != nil {
		return sim.Config{}, core.CostModel{}, nil, err
	}
	ct, err := tr.Compile(model.Metric.Dist)
	if err != nil {
		return sim.Config{}, core.CostModel{}, nil, err
	}
	cfg := sim.Config{
		Name:        w.name,
		Trace:       tr,
		Model:       model,
		Bs:          w.bs,
		Reps:        reps,
		Checkpoints: sim.Checkpoints(tr.Len(), 10),
		Compiled:    ct,
	}
	return cfg, model, tr, nil
}

// RBMASpec is the paper's algorithm. One instance per b is memoized and
// re-seeded in place across repetitions and repeated experiment runs
// (core.Reseeder makes that exactly equivalent to fresh construction), so
// the figure drivers stop allocating per-pair state tables once warm —
// figures_alloc_test.go pins the steady state.
func RBMASpec(n int, model core.CostModel) sim.AlgSpec {
	var mu sync.Mutex
	cache := make(map[int]*core.RBMA)
	return sim.AlgSpec{
		Name:   "r-bma",
		FixedB: -1,
		New: func(b int, rep uint64) (core.Algorithm, error) {
			seed := rep*0x9e3779b9 + uint64(b)
			mu.Lock()
			defer mu.Unlock()
			if r, ok := cache[b]; ok {
				r.Reseed(seed)
				return r, nil
			}
			r, err := core.NewRBMA(n, b, model, seed)
			if err != nil {
				return nil, err
			}
			cache[b] = r
			return r, nil
		},
	}
}

// BMASpec is the deterministic baseline, with the same per-b instance
// memoization as RBMASpec (Reset restores the initial state in place).
func BMASpec(n int, model core.CostModel) sim.AlgSpec {
	var mu sync.Mutex
	cache := make(map[int]*core.BMA)
	return sim.AlgSpec{
		Name:   "bma",
		FixedB: -1,
		New: func(b int, rep uint64) (core.Algorithm, error) {
			mu.Lock()
			defer mu.Unlock()
			if a, ok := cache[b]; ok {
				a.Reset()
				return a, nil
			}
			a, err := core.NewBMA(n, b, model)
			if err != nil {
				return nil, err
			}
			cache[b] = a
			return a, nil
		},
	}
}

// ObliviousSpec is the static-network-only baseline. The algorithm is
// stateless, so a single instance serves every repetition.
func ObliviousSpec(model core.CostModel) sim.AlgSpec {
	var (
		once sync.Once
		inst *core.Oblivious
		ierr error
	)
	return sim.AlgSpec{
		Name:   "oblivious",
		FixedB: 0,
		New: func(b int, rep uint64) (core.Algorithm, error) {
			once.Do(func() { inst, ierr = core.NewOblivious(model) })
			return inst, ierr
		},
	}
}

// StaticSpec is SO-BMA, built offline from the full trace. A Static
// instance is immutable once built (Serve is read-only and Reset is a
// no-op), so the spec memoizes one instance per b: repetitions and repeated
// experiment runs skip the expensive iterated-blossom construction.
func StaticSpec(tr *trace.Trace, model core.CostModel) sim.AlgSpec {
	var mu sync.Mutex
	cache := make(map[int]*core.Static)
	return sim.AlgSpec{
		Name:   "so-bma",
		FixedB: -1,
		New: func(b int, rep uint64) (core.Algorithm, error) {
			mu.Lock()
			defer mu.Unlock()
			if s, ok := cache[b]; ok {
				return s, nil
			}
			s, err := core.NewStaticFromTrace(tr, b, model)
			if err != nil {
				return nil, err
			}
			cache[b] = s
			return s, nil
		},
	}
}

// All returns every sub-figure of the paper, in order.
func All() []Figure {
	var figs []Figure
	for i, w := range workloads {
		w := w
		figNum := i + 1
		figs = append(figs,
			Figure{
				ID:     fmt.Sprintf("fig%da", figNum),
				Title:  fmt.Sprintf("Figure %d(a): %s routing cost", figNum, w.name),
				Metric: RoutingCost,
				Build: func(scale float64, reps int, seed uint64) (sim.Config, []sim.AlgSpec, error) {
					cfg, model, _, err := w.buildConfig(scale, reps, seed)
					if err != nil {
						return sim.Config{}, nil, err
					}
					specs := []sim.AlgSpec{
						RBMASpec(w.racks, model),
						BMASpec(w.racks, model),
						ObliviousSpec(model),
					}
					return cfg, specs, nil
				},
			},
			Figure{
				ID:     fmt.Sprintf("fig%db", figNum),
				Title:  fmt.Sprintf("Figure %d(b): %s execution time", figNum, w.name),
				Metric: ExecutionTime,
				Build: func(scale float64, reps int, seed uint64) (sim.Config, []sim.AlgSpec, error) {
					cfg, model, _, err := w.buildConfig(scale, reps, seed)
					if err != nil {
						return sim.Config{}, nil, err
					}
					specs := []sim.AlgSpec{
						RBMASpec(w.racks, model),
						BMASpec(w.racks, model),
					}
					return cfg, specs, nil
				},
			},
			Figure{
				ID:     fmt.Sprintf("fig%dc", figNum),
				Title:  fmt.Sprintf("Figure %d(c): %s best-of comparison (b=%d)", figNum, w.name, w.bestB),
				Metric: RoutingCost,
				Build: func(scale float64, reps int, seed uint64) (sim.Config, []sim.AlgSpec, error) {
					cfg, model, tr, err := w.buildConfig(scale, reps, seed)
					if err != nil {
						return sim.Config{}, nil, err
					}
					cfg.Bs = []int{w.bestB}
					specs := []sim.AlgSpec{
						RBMASpec(w.racks, model),
						BMASpec(w.racks, model),
						StaticSpec(tr, model),
					}
					return cfg, specs, nil
				},
			},
		)
	}
	return figs
}

// ByID returns the figure (paper figure or extension experiment) with the
// given id.
func ByID(id string) (Figure, error) {
	for _, f := range AllWithExtras() {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("figures: unknown figure %q", id)
}
