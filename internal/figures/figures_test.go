package figures

import (
	"testing"

	"obm/internal/sim"
)

func TestAllEnumeratesTwelveSubfigures(t *testing.T) {
	figs := All()
	if len(figs) != 12 {
		t.Fatalf("got %d sub-figures, want 12 (4 figures × a/b/c)", len(figs))
	}
	seen := map[string]bool{}
	for _, f := range figs {
		if seen[f.ID] {
			t.Fatalf("duplicate figure id %s", f.ID)
		}
		seen[f.ID] = true
	}
	for _, id := range []string{"fig1a", "fig2b", "fig3c", "fig4a"} {
		if !seen[id] {
			t.Fatalf("missing figure %s", id)
		}
	}
}

func TestByID(t *testing.T) {
	f, err := ByID("fig1a")
	if err != nil || f.ID != "fig1a" {
		t.Fatalf("ByID failed: %v", err)
	}
	if _, err := ByID("fig9z"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestBuildRejectsBadScale(t *testing.T) {
	f, _ := ByID("fig1a")
	if _, _, err := f.Build(0, 1, 1); err == nil {
		t.Fatal("scale 0 accepted")
	}
	if _, _, err := f.Build(1.5, 1, 1); err == nil {
		t.Fatal("scale > 1 accepted")
	}
}

func TestFig1aSmallScaleShape(t *testing.T) {
	// Smoke-run Figure 1a at tiny scale and verify the headline shape:
	// both online algorithms beat Oblivious, and R-BMA is within a modest
	// factor of BMA's routing cost.
	f, _ := ByID("fig1a")
	cfg, specs, err := f.Build(0.02, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunExperiment(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	finals := res.FinalRouting()
	obl := finals["oblivious(b=0)"]
	r18 := finals["r-bma(b=18)"]
	b18 := finals["bma(b=18)"]
	if obl == 0 || r18 == 0 || b18 == 0 {
		t.Fatalf("missing curves: %v", finals)
	}
	if r18 >= obl || b18 >= obl {
		t.Fatalf("online algorithms should beat oblivious: %v", finals)
	}
	if r18 > 1.35*b18 || b18 > 1.35*r18 {
		t.Fatalf("R-BMA (%v) and BMA (%v) should be in the same ballpark", r18, b18)
	}
}

func TestFig4cStaticBeatsOnlineOnIID(t *testing.T) {
	// Microsoft trace is i.i.d.: the offline static matching has the
	// advantage (paper §3.2). Verify at small scale.
	f, _ := ByID("fig4c")
	cfg, specs, err := f.Build(0.01, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunExperiment(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	finals := res.FinalRouting()
	so := finals["so-bma(b=9)"]
	rb := finals["r-bma(b=9)"]
	if so == 0 || rb == 0 {
		t.Fatalf("missing curves: %v", finals)
	}
	if so >= rb {
		t.Fatalf("SO-BMA (%v) should beat R-BMA (%v) on i.i.d. traffic", so, rb)
	}
}
