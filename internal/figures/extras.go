package figures

import (
	"fmt"

	"obm/internal/core"
	"obm/internal/graph"
	"obm/internal/paging"
	"obm/internal/sim"
	"obm/internal/trace"
)

// Extras returns the extension experiments that go beyond the paper's
// figures: the reproduction's ablation experiments, runnable from
// cmd/experiments exactly like the paper figures ("ext-…" ids).
func Extras() []Figure {
	return []Figure{
		extCachePolicy(),
		extLazyEager(),
		extAlpha(),
		extRotor(),
		extShift(),
	}
}

// AllWithExtras returns the paper figures followed by the extensions.
func AllWithExtras() []Figure {
	return append(All(), Extras()...)
}

func extWorkload(scale float64, seed uint64) (sim.Config, core.CostModel, *trace.Trace, error) {
	const racks = 50
	requests := int(200000 * scale)
	if requests < 1000 {
		requests = 1000
	}
	top := graph.FatTreeRacks(racks)
	model := core.CostModel{Metric: top.Metric(), Alpha: DefaultAlpha}
	p := trace.FacebookPreset(trace.WebService, racks, seed)
	p.Requests = requests
	tr, err := trace.FacebookStyle(p)
	if err != nil {
		return sim.Config{}, core.CostModel{}, nil, err
	}
	cfg := sim.Config{
		Model:       model,
		Trace:       tr,
		Checkpoints: sim.Checkpoints(tr.Len(), 10),
	}
	return cfg, model, tr, nil
}

func extCachePolicy() Figure {
	return Figure{
		ID:     "ext-policy",
		Title:  "Extension: paging policy inside R-BMA (marking vs LRU/FIFO/random)",
		Metric: RoutingCost,
		Build: func(scale float64, reps int, seed uint64) (sim.Config, []sim.AlgSpec, error) {
			cfg, model, _, err := extWorkload(scale, seed)
			if err != nil {
				return sim.Config{}, nil, err
			}
			cfg.Name = "ext-policy"
			cfg.Bs = []int{2}
			cfg.Reps = reps
			n := cfg.Trace.NumRacks
			policies := []struct {
				name string
				f    paging.Factory
			}{
				{"marking", paging.NewMarkingFactory},
				{"lru", paging.NewLRUFactory},
				{"fifo", paging.NewFIFOFactory},
				{"random", paging.NewRandomEvictFactory},
			}
			var specs []sim.AlgSpec
			for _, p := range policies {
				p := p
				specs = append(specs, sim.AlgSpec{
					Name:   "r-bma-" + p.name,
					FixedB: -1,
					New: func(b int, rep uint64) (core.Algorithm, error) {
						return core.NewRBMA(n, b, model, rep, core.WithCacheFactory(p.f, p.name))
					},
				})
			}
			return cfg, specs, nil
		},
	}
}

func extLazyEager() Figure {
	return Figure{
		ID:     "ext-lazy",
		Title:  "Extension: lazy pruning (paper footnote 2) vs eager removal",
		Metric: RoutingCost,
		Build: func(scale float64, reps int, seed uint64) (sim.Config, []sim.AlgSpec, error) {
			cfg, model, _, err := extWorkload(scale, seed)
			if err != nil {
				return sim.Config{}, nil, err
			}
			cfg.Name = "ext-lazy"
			cfg.Bs = []int{2}
			cfg.Reps = reps
			n := cfg.Trace.NumRacks
			specs := []sim.AlgSpec{
				{Name: "r-bma-lazy", FixedB: -1, New: func(b int, rep uint64) (core.Algorithm, error) {
					return core.NewRBMA(n, b, model, rep)
				}},
				{Name: "r-bma-eager", FixedB: -1, New: func(b int, rep uint64) (core.Algorithm, error) {
					return core.NewRBMA(n, b, model, rep, core.WithEagerRemoval())
				}},
			}
			return cfg, specs, nil
		},
	}
}

func extAlpha() Figure {
	return Figure{
		ID:     "ext-alpha",
		Title:  "Extension: sensitivity to the reconfiguration cost α",
		Metric: RoutingCost,
		Build: func(scale float64, reps int, seed uint64) (sim.Config, []sim.AlgSpec, error) {
			cfg, _, tr, err := extWorkload(scale, seed)
			if err != nil {
				return sim.Config{}, nil, err
			}
			cfg.Name = "ext-alpha"
			cfg.Bs = []int{6}
			cfg.Reps = reps
			n := tr.NumRacks
			top := graph.FatTreeRacks(n)
			var specs []sim.AlgSpec
			for _, alpha := range []float64{5, 30, 120} {
				model := core.CostModel{Metric: top.Metric(), Alpha: alpha}
				alpha := alpha
				specs = append(specs, sim.AlgSpec{
					Name:   fmt.Sprintf("r-bma-a%g", alpha),
					FixedB: -1,
					New: func(b int, rep uint64) (core.Algorithm, error) {
						return core.NewRBMA(n, b, model, rep)
					},
				})
			}
			return cfg, specs, nil
		},
	}
}

func extRotor() Figure {
	return Figure{
		ID:     "ext-rotor",
		Title:  "Extension: demand-aware R-BMA vs demand-oblivious rotor",
		Metric: RoutingCost,
		Build: func(scale float64, reps int, seed uint64) (sim.Config, []sim.AlgSpec, error) {
			cfg, model, tr, err := extWorkload(scale, seed)
			if err != nil {
				return sim.Config{}, nil, err
			}
			cfg.Name = "ext-rotor"
			cfg.Bs = []int{3, 6}
			cfg.Reps = reps
			n := tr.NumRacks
			specs := []sim.AlgSpec{
				{Name: "r-bma", FixedB: -1, New: func(b int, rep uint64) (core.Algorithm, error) {
					return core.NewRBMA(n, b, model, rep)
				}},
				{Name: "rotor", FixedB: -1, New: func(b int, rep uint64) (core.Algorithm, error) {
					return core.NewRotor(n, b, model, 100)
				}},
				ObliviousSpec(model),
			}
			return cfg, specs, nil
		},
	}
}

func extShift() Figure {
	return Figure{
		ID:     "ext-shift",
		Title:  "Extension: adaptation to phase-shifting demand",
		Metric: RoutingCost,
		Build: func(scale float64, reps int, seed uint64) (sim.Config, []sim.AlgSpec, error) {
			const racks = 50
			requests := int(200000 * scale)
			if requests < 2000 {
				requests = 2000
			}
			top := graph.FatTreeRacks(racks)
			model := core.CostModel{Metric: top.Metric(), Alpha: DefaultAlpha}
			tr, err := trace.PhaseShift(racks, requests, 8, seed)
			if err != nil {
				return sim.Config{}, nil, err
			}
			cfg := sim.Config{
				Name:        "ext-shift",
				Trace:       tr,
				Model:       model,
				Bs:          []int{2},
				Reps:        reps,
				Checkpoints: sim.Checkpoints(tr.Len(), 10),
			}
			specs := []sim.AlgSpec{
				{Name: "r-bma", FixedB: -1, New: func(b int, rep uint64) (core.Algorithm, error) {
					return core.NewRBMA(racks, b, model, rep)
				}},
				{Name: "greedy-noevict", FixedB: -1, New: func(b int, rep uint64) (core.Algorithm, error) {
					return core.NewGreedyNoEvict(racks, b, model)
				}},
				{Name: "so-bma", FixedB: -1, New: func(b int, rep uint64) (core.Algorithm, error) {
					return core.NewStaticFromTrace(tr, b, model)
				}},
				ObliviousSpec(model),
			}
			return cfg, specs, nil
		},
	}
}
