// Package serve is the experiment service: a long-running HTTP/JSON
// front end over the scenario grid that accepts, queues, deduplicates and
// executes experiment requests, and serves their rendered artifacts.
//
// A request is the same ScenarioSpec JSON list the `experiments grid
// -scenarios` flag reads. Submitting one yields a job whose identity IS
// the run store's SHA-256 spec hash — the service is a content-addressed
// result cache: submitting an identical spec list again returns the
// already-finished (or in-flight) job instead of recomputing, across
// restarts, because the cache is the store root directory itself.
//
// Execution is a bounded job queue feeding a fixed worker pool; each
// worker drives one grid at a time through sim.RunGridContext with the
// job's run store wired in via the durability hooks. Alternatively (or
// additionally) a fleet of external worker processes (internal/work,
// `experiments worker`) drains grids cooperatively: the coordinator
// partitions a job's grid into leasable shards, workers pull shard
// leases over HTTP, execute them against local shard stores, and upload
// their logs, which the coordinator folds back into the job's store
// under exact-agreement conflict checks (see lease.go). Everything
// durable lives in the store root:
//
//	root/
//	├── <spec-hash[:16]>/    one run store per submitted grid
//	│   ├── manifest.json    (written at submission — the durable queue)
//	│   ├── jobs.jsonl       (appended as the grid executes)
//	│   ├── lease.wal        (fleet lease journal, while a fleet drains it)
//	│   ├── summary.csv      (rendered on completion)
//	│   └── report.md        (rendered on completion)
//	└── queue.json           (pending order, written on graceful shutdown)
//
// Crash recovery is therefore discovery: on startup the service scans the
// root; complete stores re-register as cache hits, incomplete ones
// re-enqueue and resume mid-grid (completed jobs short-circuit through
// the store's log). queue.json only preserves submission order — losing
// it (a hard kill) loses no work.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"obm/internal/obs"
	"obm/internal/report"
	"obm/internal/sim"
	"obm/internal/wal"
)

// Options configures a Server.
type Options struct {
	// StoreRoot is the directory holding one run store per job (required).
	StoreRoot string
	// Workers is the number of grids executed concurrently by this
	// process's own pool (default 1). A negative value disables local
	// execution entirely: the server is then a pure coordinator and jobs
	// only progress when fleet workers lease their shards.
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs; a
	// submission beyond it is refused with 429 (default 16).
	QueueDepth int
	// GridWorkers sizes the sim worker pool inside each grid run
	// (default GOMAXPROCS).
	GridWorkers int
	// ChunkSize is the streaming chunk size per grid worker (0 = default).
	ChunkSize int
	// Parallel, when > 1, replays multi-plane jobs (scenario Shards > 1)
	// with that many goroutines each (sim.GridOptions.Parallel). Job
	// outcomes are byte-identical for every value, so it is safe to vary
	// per deployment without invalidating stores or caches.
	Parallel int
	// CurvePoints is the cost-curve checkpoint count recorded per job
	// (default 10; it is part of the spec hash, so changing it changes
	// every job identity).
	CurvePoints int
	// LeaseTTL is how long a fleet worker's shard lease stays valid
	// without a heartbeat before the shard is requeued for another
	// worker (default 30s).
	LeaseTTL time.Duration
	// ShardSize is the target number of grid jobs per leasable shard;
	// a job's grid is partitioned into ceil(total/ShardSize) modulo
	// shards (default 16).
	ShardSize int
	// NoLeaseWAL disables the per-job lease WAL. A coordinator crash then
	// loses lease bookkeeping (every outstanding lease is stranded until
	// the fleet re-claims the job) but never loses results — the store is
	// the durable truth either way. For debugging and comparison only.
	NoLeaseWAL bool
	// Logf, when non-nil, receives one line per job state change.
	Logf func(format string, args ...any)
	// Registry, when non-nil, is where the server registers its
	// obm_serve_* and obm_grid_* metrics (nil gets a private registry).
	// Either way the exposition is served at GET /metrics.
	Registry *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Workers == 0 {
		o.Workers = 1
	}
	if o.Workers < 0 {
		o.Workers = 0 // coordinator-only: no local grid execution
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 30 * time.Second
	}
	if o.ShardSize <= 0 {
		o.ShardSize = 16
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	if o.CurvePoints == 0 {
		o.CurvePoints = 10
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// State is a job's lifecycle state.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// queueFile persists pending-job order across graceful restarts.
const queueFile = "queue.json"

// claim records which execution path owns a job's grid: the local worker
// pool runs whole grids; the fleet drains a grid shard by shard through
// leases. The two paths exclude each other per job — whichever claims a
// queued job first owns it to completion (or, for the fleet, until a
// coordinator restart resets in-memory lease state).
type claim string

const (
	claimNone  claim = ""
	claimLocal claim = "local"
	claimFleet claim = "fleet"
)

// job is one submitted grid: a run store plus in-memory execution state.
type job struct {
	id       string // the full spec hash — job identity == result identity
	dir      string
	total    int // full-grid job count, from the manifest
	manifest report.Manifest

	mu         sync.Mutex
	state      State
	claim      claim
	dequeued   bool // the queue-channel entry was consumed (or superseded by a fleet claim)
	done       int  // completed grid jobs (including previously persisted)
	errMsg     string
	createdAt  time.Time
	finishedAt time.Time
	cancel     context.CancelFunc // set while running locally
	dist       *distJob           // lease state, created on the first fleet lease
	wal        *wal.Log           // lease-state journal; nil until the first fleet lease, after an append failure, or with NoLeaseWAL
	hub        *hub

	// absorbMu serializes shard-log absorption into the job's store
	// (open → absorb → close must not interleave between two uploads).
	// Never acquired while holding mu.
	absorbMu sync.Mutex
}

// Status is the JSON shape of a job's state, returned by the status and
// list endpoints and carried by every SSE event.
type Status struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
	// Claim says which execution path owns a running job: "local" (this
	// process's pool) or "fleet" (shard leases). Empty while queued.
	Claim      string `json:"claim,omitempty"`
	Error      string `json:"error,omitempty"`
	Cached     bool   `json:"cached,omitempty"`
	CreatedAt  string `json:"created_at,omitempty"`
	FinishedAt string `json:"finished_at,omitempty"`
}

func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Status{
		ID:    j.id,
		State: j.state,
		Done:  j.done,
		Total: j.total,
		Claim: string(j.claim),
		Error: j.errMsg,
	}
	if !j.createdAt.IsZero() {
		s.CreatedAt = j.createdAt.UTC().Format(time.RFC3339)
	}
	if !j.finishedAt.IsZero() {
		s.FinishedAt = j.finishedAt.UTC().Format(time.RFC3339)
	}
	return s
}

// events returns the job's current hub; a failed-and-resubmitted job
// swaps in a fresh hub, so reads go through the lock.
func (j *job) events() *hub {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.hub
}

// publish pushes the job's current status to its SSE subscribers.
func (j *job) publish() { j.events().publish(j.status()) }

// Server is the experiment service. Create with New, mount Handler on an
// http.Server, stop with Shutdown.
type Server struct {
	opt Options
	reg *obs.Registry
	met serverMetrics
	sim *sim.Metrics // obm_grid_* instruments for locally executed grids

	mu       sync.Mutex
	jobs     map[string]*job // by spec hash
	order    []string        // submission order, for the list endpoint
	queue    chan *job
	overflow []*job // jobs the channel had no room for (fleet claims leave ghost slots); workers refill from here
	pending  int    // queued-but-not-dequeued jobs; bounds new submissions
	closed   bool

	stop     chan struct{} // closed by Shutdown: workers stop dequeuing
	wg       sync.WaitGroup
	shutOnce sync.Once

	// crashHook, when non-nil, is invoked at every lease-WAL persistence
	// boundary (see crashPoint). Production servers never set it; the
	// fault-injection harness panics from it to simulate a coordinator
	// dying at exactly that boundary. Set before any request traffic.
	crashHook func(crashPoint)
}

// New builds the service and recovers the store root: finished stores
// become cache entries, interrupted ones are re-enqueued (in queue.json
// order where available) and will resume mid-grid. Workers start
// immediately.
func New(opt Options) (*Server, error) {
	opt = opt.withDefaults()
	if opt.StoreRoot == "" {
		return nil, fmt.Errorf("serve: Options.StoreRoot is required")
	}
	if err := os.MkdirAll(opt.StoreRoot, 0o755); err != nil {
		return nil, err
	}
	reg := opt.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		opt:  opt,
		reg:  reg,
		met:  newServerMetrics(reg),
		sim:  sim.NewMetrics(reg),
		jobs: make(map[string]*job),
		stop: make(chan struct{}),
	}
	reg.Collect(s.collect)
	recovered, err := s.recover()
	if err != nil {
		return nil, err
	}
	// The queue must hold every recovered job plus QueueDepth new ones —
	// recovery must never be the thing that trips backpressure.
	s.queue = make(chan *job, opt.QueueDepth+len(recovered))
	for _, j := range recovered {
		s.pending++
		s.queue <- j
	}
	for w := 0; w < opt.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// recover scans the store root and registers every existing store:
// complete ones as done (cache hits), incomplete ones as queued.
// queue.json, when present, fixes the order of the queued ones; stores it
// does not mention (hard kill, manual drops) follow in directory order.
func (s *Server) recover() ([]*job, error) {
	// Discover is best-effort: a corrupt store must not take the healthy
	// ones (and the whole service) down with it — log and skip.
	infos, err := report.Discover(s.opt.StoreRoot)
	if err != nil {
		s.opt.Logf("serve: store root has unreadable stores (skipped): %v", err)
	}
	byHash := make(map[string]report.StoreInfo, len(infos))
	for _, info := range infos {
		byHash[info.Manifest.SpecHash] = info
	}

	var order []string
	qPath := filepath.Join(s.opt.StoreRoot, queueFile)
	if blob, err := os.ReadFile(qPath); err == nil {
		if err := json.Unmarshal(blob, &order); err != nil {
			return nil, fmt.Errorf("serve: corrupt %s: %w", qPath, err)
		}
		os.Remove(qPath) // consumed; from here the stores are the truth
	}

	now := time.Now()
	seen := make(map[string]bool)
	var pendingHashes []string
	for _, h := range order {
		// Only incomplete stores re-enqueue; a store can be complete yet
		// listed in queue.json (shutdown landed between the grid's last
		// Persist and its return) — re-running it would flip a finished
		// job back to running in clients' eyes.
		if info, ok := byHash[h]; ok && !seen[h] && !info.Complete() {
			seen[h] = true
			pendingHashes = append(pendingHashes, h)
		}
	}
	for _, info := range infos { // directory order: deterministic
		h := info.Manifest.SpecHash
		if !info.Complete() && !seen[h] {
			seen[h] = true // two stores can share a hash (hand-placed shards)
			pendingHashes = append(pendingHashes, h)
		}
	}

	var recovered []*job
	for _, info := range infos {
		h := info.Manifest.SpecHash
		j := &job{
			id:        h,
			dir:       info.Dir,
			total:     info.Manifest.TotalJobs,
			manifest:  info.Manifest,
			done:      info.Recorded,
			createdAt: time.Now(),
			hub:       newHub(),
		}
		if info.Complete() {
			j.state = StateDone
			j.finishedAt = time.Now()
			j.publish()
			j.hub.close()
			// A complete store may predate rendering (killed between the
			// last append and Render); rendered artifacts are re-derivable,
			// so artifact handlers re-render on demand instead of blocking
			// startup here.
			// A lease WAL next to a finished store is a stale journal of
			// the run that completed it — never replay it.
			os.Remove(filepath.Join(info.Dir, leaseWALFile))
		} else {
			j.state = StateQueued
			// A lease WAL means a fleet was draining this job when the
			// previous coordinator died; restore the lease table so live
			// workers keep their shards (the job then skips the local
			// queue — the fleet owns it again).
			s.recoverDist(j, now)
		}
		s.jobs[h] = j
		s.order = append(s.order, h)
	}
	for _, h := range pendingHashes {
		j := s.jobs[h]
		if j.state != StateQueued {
			continue // recovered straight into a live fleet claim from its lease WAL
		}
		recovered = append(recovered, j)
		s.opt.Logf("serve: recovered job %.12s (%d/%d done)", h, j.done, j.total)
	}
	return recovered, nil
}

// ErrQueueFull is returned by Submit when the pending queue is at
// capacity; the HTTP layer maps it to 429 Too Many Requests.
var ErrQueueFull = errors.New("serve: job queue is full")

// ErrClosed is returned by Submit after Shutdown has begun.
var ErrClosed = errors.New("serve: server is shutting down")

// ErrStorage marks server-side store failures (disk full, permissions),
// as opposed to invalid specs; the HTTP layer maps it to 500, not 400.
var ErrStorage = errors.New("serve: run-store storage error")

// Submit registers the grid described by specs and returns its job plus
// whether the result was already available (a cache hit: the identical
// spec list was run before, possibly in a previous process). A fresh
// submission creates the job's run store (manifest only) before
// enqueueing, so an accepted job survives any crash. Resubmitting a
// failed grid re-enqueues it — its store is intact, so the retry resumes
// past everything that succeeded before the failure.
func (s *Server) Submit(specs []sim.ScenarioSpec) (Status, error) {
	m, err := report.NewManifest("experiments serve", specs, s.opt.CurvePoints, report.Shard{})
	if err != nil {
		return Status{}, err
	}
	s.met.submissions.Inc()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Status{}, ErrClosed
	}
	if j, ok := s.jobs[m.SpecHash]; ok {
		st := j.status()
		if st.State != StateFailed {
			st.Cached = st.State == StateDone
			s.mu.Unlock()
			if st.Cached {
				s.met.cacheHits.Inc()
			}
			return st, nil
		}
		// Failed jobs must not poison their hash: re-enqueue (the store
		// keeps every job that succeeded, so the retry is a resume).
		if s.pending >= s.opt.QueueDepth {
			s.mu.Unlock()
			return Status{}, ErrQueueFull
		}
		j.mu.Lock()
		j.state = StateQueued
		j.claim = claimNone
		j.dequeued = false
		j.dist = nil // stale lease bookkeeping; a retry re-plans its shards
		j.walDrop()  // and journals from scratch
		j.errMsg = ""
		j.finishedAt = time.Time{}
		j.hub = newHub() // the failed run's hub is closed; subscribers need a live one
		j.mu.Unlock()
		s.pending++
		s.enqueueLocked(j)
		st = j.status()
		s.mu.Unlock()
		s.opt.Logf("serve: re-queued failed job %.12s", m.SpecHash)
		return st, nil
	}
	if s.pending >= s.opt.QueueDepth {
		s.mu.Unlock()
		return Status{}, ErrQueueFull
	}
	// Reserve the hash (so duplicates dedupe onto this job and the
	// pending bound holds), then do the store-creation disk I/O outside
	// the server lock — status/list/health requests must not stall
	// behind a slow filesystem.
	dir := report.DirForHash(s.opt.StoreRoot, m.SpecHash)
	j := &job{
		id:        m.SpecHash,
		dir:       dir,
		total:     m.TotalJobs,
		manifest:  m,
		state:     StateQueued,
		createdAt: time.Now(),
		hub:       newHub(),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.pending++
	s.mu.Unlock()

	store, err := report.Create(dir, m)
	if err == nil {
		err = store.Close()
	}
	s.mu.Lock()
	if err != nil {
		// Roll the reservation back; the hash stays submittable.
		delete(s.jobs, j.id)
		for i, id := range s.order {
			if id == j.id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		s.pending--
		s.mu.Unlock()
		return Status{}, fmt.Errorf("%w: creating run store: %v", ErrStorage, err)
	}
	s.enqueueLocked(j)
	s.mu.Unlock()
	s.opt.Logf("serve: queued job %.12s (%d grid jobs)", j.id, j.total)
	return j.status(), nil
}

// enqueueLocked hands j to the local pool without ever blocking (the
// caller holds s.mu, which every endpoint needs — a blocked send here
// would freeze the whole service). The channel can be full of ghost
// entries for fleet-claimed jobs, whose pending slots were released at
// claim time; jobs that do not fit are parked on the overflow list,
// which workers refill from after every dequeue. The fleet needs
// neither — it leases straight from the jobs map.
func (s *Server) enqueueLocked(j *job) {
	select {
	case s.queue <- j:
	default:
		s.overflow = append(s.overflow, j)
	}
}

// refill moves overflow jobs into the channel slots freed by dequeues.
func (s *Server) refill() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.overflow) > 0 {
		select {
		case s.queue <- s.overflow[0]:
			s.overflow = s.overflow[1:]
		default:
			return
		}
	}
}

// Job returns the status of the job with the given id (the spec hash).
func (s *Server) Job(id string) (Status, bool) {
	j, ok := s.lookup(id)
	if !ok {
		return Status{}, false
	}
	return j.status(), true
}

// Jobs returns every known job's status in submission order.
func (s *Server) Jobs() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	return out
}

func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// worker executes queued jobs until the queue closes or Shutdown begins.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case j, ok := <-s.queue:
			if !ok {
				return
			}
			s.refill() // the dequeue freed a slot for parked overflow jobs
			if !s.claimLocal(j) {
				// The fleet claimed this job while it sat in the queue
				// (or it already finished): the channel entry is a ghost.
				continue
			}
			s.runJob(j)
		}
	}
}

// claimLocal marks the dequeued job as owned by the local pool. The
// pending count is released exactly once per enqueue — at local dequeue
// or at the first fleet lease, whichever came first.
func (s *Server) claimLocal(j *job) bool {
	s.mu.Lock()
	j.mu.Lock()
	if !j.dequeued {
		j.dequeued = true
		s.pending--
	}
	ok := j.claim == claimNone && j.state == StateQueued
	if ok {
		j.claim = claimLocal
	}
	j.mu.Unlock()
	s.mu.Unlock()
	return ok
}

// runJob drives one job's grid to completion (or cancellation/failure),
// resuming from whatever its store already holds.
func (s *Server) runJob(j *job) {
	if j.status().State == StateDone {
		// Defense in depth: a finished job must never regress to running
		// (e.g. a stale queue entry).
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	store, err := report.Open(j.dir)
	if err != nil {
		s.finishJob(j, fmt.Errorf("opening run store: %w", err))
		return
	}
	defer store.Close()

	pre := store.Len()
	j.mu.Lock()
	j.state = StateRunning
	j.done = pre
	j.cancel = cancel
	j.mu.Unlock()
	j.publish()
	s.opt.Logf("serve: running job %.12s (resuming at %d/%d)", j.id, pre, j.total)

	base := sim.GridOptions{
		Workers:   s.opt.GridWorkers,
		ChunkSize: s.opt.ChunkSize,
		Parallel:  s.opt.Parallel,
		Metrics:   s.sim,
		// sim reports every attempt (done counts failures and aborts
		// too); job progress counts persisted successes only, so status
		// never overstates what a resume would find in the store.
		Progress: func(done, total int, gj sim.GridJob, err error) {
			if err != nil {
				return
			}
			j.mu.Lock()
			j.done++
			j.mu.Unlock()
			j.publish()
		},
	}
	_, err = store.RunContext(ctx, base)
	if serr := store.Sync(); err == nil && serr != nil {
		err = serr
	}
	if err != nil && errors.Is(err, context.Canceled) {
		// Shutdown cancelled the grid: the store keeps every persisted
		// job, and the job goes back to queued so a restart resumes it.
		j.mu.Lock()
		j.state = StateQueued
		j.claim = claimNone
		j.cancel = nil
		j.mu.Unlock()
		j.publish()
		s.opt.Logf("serve: interrupted job %.12s at %d/%d (will resume)", j.id, j.done, j.total)
		return
	}
	if err == nil {
		_, _, err = store.Render()
	}
	s.finishJob(j, err)
}

// finishJob moves a job to its terminal state and closes its event hub.
// Finishing an already-done job is a no-op, so racing completion paths
// (an upload's terminal check vs. lease-time finalization) are benign.
func (s *Server) finishJob(j *job, err error) {
	j.mu.Lock()
	if j.state == StateDone {
		j.mu.Unlock()
		return
	}
	j.claim = claimNone
	j.cancel = nil
	j.walDrop() // terminal state: the journal must never be replayed
	j.finishedAt = time.Now()
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
	} else {
		j.state = StateDone
		j.done = j.total
	}
	h := j.hub
	j.mu.Unlock()
	h.publish(j.status())
	h.close()
	if err != nil {
		s.opt.Logf("serve: job %.12s failed: %v", j.id, err)
	} else {
		s.opt.Logf("serve: job %.12s done (%d grid jobs)", j.id, j.total)
	}
}

// openStore opens a job's run store read-only for the artifact endpoints.
// Rendered files may be missing on a store completed by a previous
// process that died before rendering — Render is idempotent, so artifact
// handlers re-render on demand.
func (s *Server) openStore(j *job) (*report.Store, error) {
	return report.Open(j.dir)
}

// Shutdown stops the service gracefully: submissions and new leases are
// refused, workers stop picking up queued jobs, and in-flight grids are
// drained — until ctx expires, at which point they are cancelled at the
// next chunk boundary (their stores stay partial-but-persisted). Event
// hubs of every non-terminal job are closed so SSE subscribers are
// released rather than left waiting on a process that will publish
// nothing more. Pending job order is written to queue.json so a restart
// resumes in submission order.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.shutOnce.Do(func() { close(s.stop) })

	// Drain: wait for in-flight jobs, or cancel them when ctx expires.
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			j.mu.Lock()
			if j.cancel != nil {
				j.cancel()
			}
			j.mu.Unlock()
		}
		s.mu.Unlock()
		<-drained
	}

	// The drain is over: every job that is not terminal — requeued by the
	// cancellation above, never started, or fleet-claimed — will make no
	// further progress in this process, so its hub closes now. Subscribers
	// get their channels closed (after the final snapshot) instead of
	// hanging on a hub nothing will ever publish to again; recovery in the
	// next process builds fresh hubs.
	s.mu.Lock()
	for _, j := range s.jobs {
		j.mu.Lock()
		h, terminal := j.hub, j.state == StateDone || j.state == StateFailed
		if j.wal != nil {
			// Keep the journal (the next process replays it and the fleet
			// carries on) but flush and release the handle.
			j.wal.Sync()
			j.wal.Close()
			j.wal = nil
		}
		j.mu.Unlock()
		if !terminal {
			h.close()
		}
	}
	s.mu.Unlock()

	// Persist pending order: queued jobs still in the channel plus any
	// interrupted in-flight ones (those resume first).
	var pending []string
	s.mu.Lock()
drain:
	for {
		select {
		case j := <-s.queue:
			pending = append(pending, j.id)
		default:
			break drain
		}
	}
	var interrupted []string
	for _, id := range s.order {
		j := s.jobs[id]
		st := j.status()
		if st.State == StateQueued {
			found := false
			for _, p := range pending {
				if p == id {
					found = true
					break
				}
			}
			if !found {
				interrupted = append(interrupted, id)
			}
		}
	}
	pending = append(interrupted, pending...)
	s.mu.Unlock()

	if len(pending) == 0 {
		return nil
	}
	blob, err := json.Marshal(pending)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(s.opt.StoreRoot, queueFile), append(blob, '\n'), 0o644)
}
