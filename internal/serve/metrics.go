package serve

import (
	"obm/internal/obs"
	"obm/internal/sim"
)

// serverMetrics are the coordinator-wide obm_serve_* series. Updates are
// single atomic adds at the lifecycle points they name; queue depth and
// jobs-by-state are derived at scrape time by the collector below, so
// they can never drift from the jobs map they describe.
type serverMetrics struct {
	submissions     *obs.Counter // valid Submit calls (dedup hits included)
	cacheHits       *obs.Counter // submissions answered from a finished store
	leasesGranted   *obs.Counter // shard leases handed to fleet workers
	leasesExpired   *obs.Counter // leases reaped past their TTL (requeues)
	heartbeats      *obs.Counter // successful lease renewals
	shardsCompleted *obs.Counter // shards proven fully recorded by an upload
	absorbConflicts *obs.Counter // exact-agreement violations (job-fatal)
	absorbedRecords *obs.Counter // grid-job records folded in from uploads
	uploadsRejected *obs.Counter // malformed/truncated shard uploads
	sseSubscribers  *obs.Gauge   // open SSE event streams

	walAppends         *obs.Counter // lease-WAL records appended
	walReplayed        *obs.Counter // lease-WAL records replayed at recovery
	walRecoveredLeases *obs.Counter // live leases re-armed from a replayed WAL
	walDiscarded       *obs.Counter // lease WALs discarded (corrupt or stale)
}

func newServerMetrics(r *obs.Registry) serverMetrics {
	return serverMetrics{
		submissions:     r.Counter("obm_serve_submissions_total", "Valid grid submissions (including duplicates deduped onto live jobs)."),
		cacheHits:       r.Counter("obm_serve_cache_hits_total", "Submissions answered from an already-finished store."),
		leasesGranted:   r.Counter("obm_serve_leases_granted_total", "Shard leases granted to fleet workers."),
		leasesExpired:   r.Counter("obm_serve_leases_expired_total", "Shard leases reaped past their TTL and requeued."),
		heartbeats:      r.Counter("obm_serve_heartbeats_total", "Successful shard-lease renewals."),
		shardsCompleted: r.Counter("obm_serve_shards_completed_total", "Shards proven fully recorded by an absorbed upload."),
		absorbConflicts: r.Counter("obm_serve_absorb_conflicts_total", "Shard uploads rejected for exact-agreement outcome conflicts."),
		absorbedRecords: r.Counter("obm_serve_absorbed_records_total", "Grid-job records absorbed from shard uploads."),
		uploadsRejected: r.Counter("obm_serve_uploads_rejected_total", "Malformed or truncated shard uploads rejected."),
		sseSubscribers:  r.Gauge("obm_serve_sse_subscribers", "Open SSE progress streams."),

		walAppends:         r.Counter("obm_serve_wal_appends_total", "Lease-state records appended to per-job WALs."),
		walReplayed:        r.Counter("obm_serve_wal_replayed_records_total", "Lease-WAL records replayed during crash recovery."),
		walRecoveredLeases: r.Counter("obm_serve_wal_recovered_leases_total", "Live shard leases re-armed from a replayed WAL."),
		walDiscarded:       r.Counter("obm_serve_wal_discarded_total", "Lease WALs discarded at recovery (corrupt, stale, or mismatched)."),
	}
}

// collect derives queue depth and jobs-by-state at scrape time. Every
// state is always emitted (zero included) so dashboards see stable
// series from the first scrape.
func (s *Server) collect(x *obs.Exposition) {
	s.mu.Lock()
	pending := s.pending
	s.mu.Unlock()
	x.Gauge("obm_serve_queue_depth", "Jobs queued but not yet claimed by the pool or the fleet.", float64(pending))

	counts := map[State]int{StateQueued: 0, StateRunning: 0, StateDone: 0, StateFailed: 0}
	for _, st := range s.Jobs() {
		counts[st.State]++
	}
	for _, st := range []State{StateQueued, StateRunning, StateDone, StateFailed} {
		x.Gauge("obm_serve_jobs", "Known jobs by lifecycle state.", float64(counts[st]),
			obs.Label{Key: "state", Value: string(st)})
	}
}

// Registry returns the server's metrics registry (the one serving
// GET /metrics).
func (s *Server) Registry() *obs.Registry { return s.reg }

// GridMetrics returns the obm_grid_* instruments wired into locally
// executed grids, for callers embedding the server.
func (s *Server) GridMetrics() *sim.Metrics { return s.sim }
