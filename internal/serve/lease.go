package serve

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"time"

	"obm/internal/report"
	"obm/internal/sim"
	"obm/internal/wal"
)

// The coordinator side of distributed grid execution.
//
// A job's grid is partitioned into ceil(total/ShardSize) modulo shards —
// the same static partition sim.GridOptions.Shard/Shards executes and
// report.Merge folds, so a shard's log is an ordinary run-store log.
// Fleet workers drain the shards through three verbs:
//
//	lease      claim a pending shard; the response carries everything a
//	           worker needs to rebuild the shard's manifest (specs,
//	           curve points, shard layout) and verify the spec hash
//	heartbeat  keep the lease alive and report in-flight progress;
//	           a lost lease answers ErrLeaseLost so the worker aborts
//	complete   upload the shard's jobs.jsonl; the coordinator absorbs it
//	           into the job's own store
//
// A lease that misses its TTL is requeued — the worker is presumed dead
// and another worker re-runs the shard from scratch. That makes delivery
// at-least-once: the same grid job can be executed (and uploaded) twice.
// Correctness survives because job outcomes are pure functions of their
// identity and absorption verifies exact agreement on every duplicate
// record (report.Store.Absorb): a re-run either reproduces the recorded
// costs bit-for-bit or the job fails loudly. The merged summary is
// therefore byte-identical to a single-process run regardless of worker
// count, crashes, or duplicate completions.
//
// Lease state lives in memory but is journaled: every transition appends
// one record to the job's lease WAL (see wal.go), so a restarted
// coordinator replays the journal, re-arms live leases and requeues dead
// ones — a fleet survives a coordinator crash without losing a shard.
// The shard logs absorbed into the job's store remain the durable truth
// for outcomes; a missing or corrupt WAL degrades to re-enqueue-and-
// resume, never to wrong results.

// shardPhase is a leasable shard's lifecycle state.
type shardPhase string

const (
	shardPending shardPhase = "pending"
	shardLeased  shardPhase = "leased"
	shardDone    shardPhase = "done"
)

// shardState tracks one leasable shard of a fleet-claimed job.
type shardState struct {
	phase    shardPhase
	jobs     []sim.GridJob // the shard's slice of the plan, for exactness checks
	token    string
	worker   string
	expires  time.Time
	done     int // worker-reported in-flight progress (persisted-but-not-uploaded)
	attempts int // leases granted, including requeues
}

// distJob is a job's lease bookkeeping, created on the first fleet lease.
type distJob struct {
	shards   []shardState
	recorded int // jobs in the coordinator's store at the last absorb
}

// Lease is the coordinator's answer to a successful shard-lease request:
// the shard's identity plus everything needed to execute it. The worker
// rebuilds the shard manifest from Name/Specs/CurvePoints and must
// verify its spec hash equals JobID before running.
type Lease struct {
	JobID       string             `json:"job_id"`
	Shard       int                `json:"shard"`
	Shards      int                `json:"shards"`
	Jobs        int                `json:"jobs"` // grid jobs in this shard
	Token       string             `json:"token"`
	TTLMS       int64              `json:"ttl_ms"`
	Name        string             `json:"name"`
	CurvePoints int                `json:"curve_points"`
	Specs       []sim.ScenarioSpec `json:"specs"`
}

// ShardStatus is the JSON shape of one shard's lease state, returned by
// the shards endpoint for operators watching a fleet drain.
type ShardStatus struct {
	Index     int    `json:"index"`
	State     string `json:"state"`
	Jobs      int    `json:"jobs"`
	Done      int    `json:"done,omitempty"`
	Worker    string `json:"worker,omitempty"`
	Attempts  int    `json:"attempts,omitempty"`
	ExpiresAt string `json:"expires_at,omitempty"`
}

// ErrLeaseLost is returned by heartbeats whose lease has expired and been
// requeued (or completed by another worker); the HTTP layer maps it to
// 409 so the worker stops burning CPU on a shard it no longer owns.
var ErrLeaseLost = errors.New("serve: lease lost")

// ErrNoLease reports that a job has no shard to lease right now (all
// leased or done, or the job is terminal or locally owned); the HTTP
// layer maps it to 204 No Content.
var ErrNoLease = errors.New("serve: nothing to lease")

// newToken mints an unguessable lease token.
func newToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("serve: reading random lease token: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// initDist plans the job's shard partition and consults the job's store
// so shards whose every job is already recorded (a recovered partial
// grid, an earlier failed local run) start out done instead of being
// re-executed by the fleet. It runs without j.mu (it does disk I/O);
// absorbMu keeps the read-only open from racing a concurrent upload's
// append, whose torn tail Open would otherwise trim away.
func (s *Server) initDist(j *job) error {
	plan, err := j.manifest.Plan()
	if err != nil {
		return err
	}
	n := (len(plan.Jobs) + s.opt.ShardSize - 1) / s.opt.ShardSize
	if n < 1 {
		n = 1
	}
	shards := make([]shardState, n)
	for k := range shards {
		shards[k] = shardState{phase: shardPending, jobs: plan.ShardSlice(k, n)}
	}

	j.absorbMu.Lock()
	store, err := report.Open(j.dir)
	if err != nil {
		j.absorbMu.Unlock()
		return fmt.Errorf("%w: opening store for job %.12s: %v", ErrStorage, j.id, err)
	}
	recorded := store.Len()
	for k := range shards {
		done := true
		for _, gj := range shards[k].jobs {
			if _, ok := store.Lookup(gj); !ok {
				done = false
				break
			}
		}
		if done {
			shards[k].phase = shardDone
		}
	}
	store.Close()

	// Attach the lease table and its journal while still holding absorbMu:
	// two racing initDist calls must not both Create the WAL file (the
	// loser's truncation would orphan the winner's handle). The losing
	// racer re-checks j.dist under j.mu and touches nothing.
	j.mu.Lock()
	journaled := false
	if j.dist == nil { // a concurrent lease may have won the race
		j.dist = &distJob{shards: shards, recorded: recorded}
		j.done = recorded
		if !s.opt.NoLeaseWAL {
			if lg, werr := wal.Create(filepath.Join(j.dir, leaseWALFile)); werr != nil {
				s.opt.Logf("serve: job %.12s: lease WAL disabled: %v", j.id, werr)
			} else {
				j.wal = lg
				s.walAppend(j, walRecInit(len(shards), recorded))
				journaled = j.wal != nil
			}
		}
	}
	j.mu.Unlock()
	j.absorbMu.Unlock()
	if journaled {
		s.crashAt(crashPostInit)
	}
	return nil
}

// reapExpired requeues every leased shard whose TTL lapsed and refreshes
// the job's progress counter. Called with j.mu held; returns the indices
// requeued (for logging outside the lock via logRequeued).
func (j *job) reapExpired(now time.Time) []int {
	if j.dist == nil {
		return nil
	}
	var requeued []int
	for k := range j.dist.shards {
		sh := &j.dist.shards[k]
		if sh.phase == shardLeased && sh.expires.Before(now) {
			sh.phase = shardPending
			sh.token = ""
			sh.worker = ""
			sh.done = 0
			requeued = append(requeued, k)
		}
	}
	if len(requeued) > 0 {
		j.done = j.fleetDone()
	}
	return requeued
}

// logRequeued reports and counts reaped leases; call it after releasing
// j.mu.
func (s *Server) logRequeued(j *job, requeued []int) {
	s.met.leasesExpired.Add(uint64(len(requeued)))
	for _, k := range requeued {
		s.opt.Logf("serve: job %.12s shard %d lease expired — requeued", j.id, k)
	}
}

// fleetDone recomputes the job's progress counter from the absorbed
// record count plus every in-flight lease's reported progress, clamped
// to the grid size: a shard re-run after a partial upload re-executes
// jobs the store already absorbed, so the naive sum can overshoot.
// Called with j.mu held.
func (j *job) fleetDone() int {
	done := j.dist.recorded
	for k := range j.dist.shards {
		if j.dist.shards[k].phase == shardLeased {
			done += j.dist.shards[k].done
		}
	}
	return min(done, j.total)
}

// lease claims a pending shard of j for worker. The first lease of a
// queued job claims the whole job for the fleet (the local pool skips
// it from then on). Returns ErrNoLease when the job has nothing to
// lease, ErrClosed during shutdown.
func (s *Server) lease(j *job, worker string) (Lease, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Lease{}, ErrClosed
	}
	j.mu.Lock()
	if j.state == StateDone || j.state == StateFailed || j.claim == claimLocal {
		j.mu.Unlock()
		s.mu.Unlock()
		return Lease{}, ErrNoLease
	}
	if j.claim == claimNone {
		// First fleet touch: claim the job and release its queue slot —
		// the channel entry becomes a ghost the local pool skips.
		j.claim = claimFleet
		j.state = StateRunning
		if !j.dequeued {
			j.dequeued = true
			s.pending--
		}
	}
	needDist := j.dist == nil
	j.mu.Unlock()
	s.mu.Unlock()

	if needDist {
		if err := s.initDist(j); err != nil {
			// A job the fleet cannot plan must not stay stuck "running":
			// hand it back to the local queue — including a fresh channel
			// entry, since the original one may already have been consumed
			// as a ghost while the job was fleet-claimed. (Revert only if
			// no concurrent lease succeeded meanwhile.)
			s.mu.Lock()
			j.mu.Lock()
			if j.claim == claimFleet && j.dist == nil {
				j.claim = claimNone
				j.state = StateQueued
				if j.dequeued {
					j.dequeued = false
					s.pending++
				}
				s.enqueueLocked(j)
			}
			j.mu.Unlock()
			s.mu.Unlock()
			return Lease{}, err
		}
	}

	now := time.Now()
	j.mu.Lock()
	if j.dist == nil {
		// A failed-job resubmission reset the lease state under us.
		j.mu.Unlock()
		return Lease{}, ErrNoLease
	}
	requeued := j.reapExpired(now)
	s.walRequeues(j, requeued)
	var grant *shardState
	var index int
	for k := range j.dist.shards {
		if j.dist.shards[k].phase == shardPending {
			grant, index = &j.dist.shards[k], k
			break
		}
	}
	if grant == nil {
		allDone := true
		for k := range j.dist.shards {
			if j.dist.shards[k].phase != shardDone {
				allDone = false
				break
			}
		}
		j.mu.Unlock()
		s.logRequeued(j, requeued)
		if len(requeued) > 0 {
			s.crashAt(crashPostRequeue)
		}
		if allDone {
			// Every shard was already recorded when lease state was
			// (re)built — e.g. a job that failed at the render step and
			// was resubmitted. No upload will ever arrive to trigger the
			// terminal path, so finish it here.
			s.finalizeFleetJob(j)
		}
		return Lease{}, ErrNoLease
	}
	grant.phase = shardLeased
	grant.token = newToken()
	grant.worker = worker
	grant.expires = now.Add(s.opt.LeaseTTL)
	grant.done = 0
	grant.attempts++
	attempt := grant.attempts
	s.walAppend(j, walRecLease(index, grant))
	m := j.manifest
	l := Lease{
		JobID:       j.id,
		Shard:       index,
		Shards:      len(j.dist.shards),
		Jobs:        len(grant.jobs),
		Token:       grant.token,
		TTLMS:       s.opt.LeaseTTL.Milliseconds(),
		Name:        m.Name,
		CurvePoints: m.CurvePoints,
		Specs:       m.Specs,
	}
	j.mu.Unlock()
	s.logRequeued(j, requeued)
	if len(requeued) > 0 {
		s.crashAt(crashPostRequeue)
	}
	s.crashAt(crashPostLease)
	s.met.leasesGranted.Inc()
	s.opt.Logf("serve: job %.12s shard %d/%d leased to %s (%d grid jobs, attempt %d)",
		j.id, index, l.Shards, worker, l.Jobs, attempt)
	j.publish()
	return l, nil
}

// heartbeat renews a shard lease and records the worker's in-flight
// progress. Returns the renewed TTL, or ErrLeaseLost when the lease was
// requeued or completed under the worker.
func (s *Server) heartbeat(j *job, shard int, token string, done int) (time.Duration, error) {
	j.mu.Lock()
	if j.dist == nil || shard < 0 || shard >= len(j.dist.shards) {
		j.mu.Unlock()
		return 0, ErrLeaseLost
	}
	requeued := j.reapExpired(time.Now())
	s.walRequeues(j, requeued)
	sh := &j.dist.shards[shard]
	if sh.phase != shardLeased || sh.token != token {
		j.mu.Unlock()
		s.logRequeued(j, requeued)
		if len(requeued) > 0 {
			s.crashAt(crashPostRequeue)
		}
		return 0, ErrLeaseLost
	}
	sh.expires = time.Now().Add(s.opt.LeaseTTL)
	if done > sh.done {
		sh.done = done
	}
	s.walAppend(j, walRecHeartbeat(shard, sh))
	j.done = j.fleetDone()
	j.mu.Unlock()
	s.logRequeued(j, requeued)
	if len(requeued) > 0 {
		s.crashAt(crashPostRequeue)
	}
	s.crashAt(crashPostHeartbeat)
	s.met.heartbeats.Inc()
	j.publish()
	return s.opt.LeaseTTL, nil
}

// completeShard absorbs an uploaded shard log into the job's store and,
// when the upload proves the shard fully recorded, marks it done; when
// every grid job is recorded the job renders and finishes. Uploads are
// accepted regardless of lease validity — a worker whose lease expired
// mid-upload still carries valid outcomes, and exact-agreement absorption
// makes duplicates safe — so completion is idempotent. failMsg, when
// non-empty, reports a worker-side execution failure: the partial log is
// still absorbed and the shard requeues for another attempt.
func (s *Server) completeShard(j *job, shard int, token, worker, failMsg string, log io.Reader) (Status, error) {
	j.mu.Lock()
	if j.state == StateDone || j.state == StateFailed || j.claim == claimLocal {
		// The job already reached a terminal state, or the local pool
		// owns it (a stale upload racing a local run must not interleave
		// appends with it): either way the upload is moot — dropping it
		// loses nothing the job's own path will not (or deliberately
		// should not) record.
		j.mu.Unlock()
		return j.status(), nil
	}
	if j.dist == nil || shard < 0 || shard >= len(j.dist.shards) {
		j.mu.Unlock()
		return Status{}, fmt.Errorf("serve: job %.12s has no leased shard %d", j.id, shard)
	}
	// Shard job slices are immutable after initDist; snapshot so the
	// exactness check below survives j.dist being reset concurrently
	// (a failed-job resubmission).
	shardJobs := j.dist.shards[shard].jobs
	j.mu.Unlock()

	// Absorb outside j.mu (disk I/O); absorbMu serializes concurrent
	// uploads for the same job so duplicate detection cannot race. Each
	// upload reopens the store, replaying its log — O(recorded) work per
	// upload, fine at the default shard size against typical grids; keep
	// a per-job open store (lifecycle tied to finishJob) if coordinator
	// absorption ever shows up in profiles.
	j.absorbMu.Lock()
	store, err := report.Open(j.dir)
	if err != nil {
		j.absorbMu.Unlock()
		return Status{}, fmt.Errorf("%w: opening store for job %.12s: %v", ErrStorage, j.id, err)
	}
	added, aerr := store.Absorb(log)
	var storageErr error
	if aerr == nil {
		storageErr = store.Sync()
	}
	recorded := store.Len()
	shardComplete := false
	missing := -1
	if aerr == nil && storageErr == nil {
		shardComplete = true
		for _, gj := range shardJobs {
			if _, ok := store.Lookup(gj); !ok {
				shardComplete = false
				break
			}
		}
		if m, merr := store.Missing(); merr != nil {
			storageErr = merr
		} else {
			missing = len(m)
		}
	}
	store.Close()
	j.absorbMu.Unlock()
	if storageErr != nil {
		// An infrastructure failure (disk, permissions) is not a
		// correctness verdict: report it as such and let the worker
		// retry; the job keeps running.
		return Status{}, fmt.Errorf("%w: job %.12s shard %d: %v", ErrStorage, j.id, shard, storageErr)
	}
	s.met.absorbedRecords.Add(uint64(added))
	if aerr != nil {
		if errors.Is(aerr, report.ErrOutcomeConflict) {
			// A conflicting outcome is not noise — identical seeds must
			// mean identical costs. Fail the job loudly; resubmission
			// re-enqueues it with the store intact.
			s.met.absorbConflicts.Inc()
			s.finishJob(j, fmt.Errorf("absorbing shard %d from %s: %w", shard, worker, aerr))
			return Status{}, aerr
		}
		// Anything else (a truncated body from a worker that died
		// mid-upload, a malformed or foreign record) invalidates only
		// this upload, never the job: every record absorbed before the
		// bad line is already durable, the shard stays leased until its
		// TTL reaps it, and a re-run re-delivers the rest.
		s.met.uploadsRejected.Inc()
		s.opt.Logf("serve: job %.12s shard %d: rejected upload from %s after %d records: %v", j.id, shard, worker, added, aerr)
		return Status{}, fmt.Errorf("serve: job %.12s shard %d: bad upload: %w", j.id, shard, aerr)
	}

	// The upload is durable in the store; its WAL record comes next. A
	// crash here is exactly the window the WAL may lag the store by —
	// recovery reconciles every shard against the store, which already
	// holds these records.
	s.crashAt(crashPostStoreAbsorb)

	var terminal bool
	var crash crashPoint
	j.mu.Lock()
	if j.dist != nil && shard < len(j.dist.shards) {
		sh := &j.dist.shards[shard]
		owns := sh.phase == shardLeased && sh.token == token
		switch {
		case shardComplete:
			// The store now holds the whole shard: done, whoever the
			// upload came from. A superseded leaseholder learns via its
			// next heartbeat (lease lost) and stands down. Only an actual
			// transition is journaled — replay rejects duplicate dones.
			if sh.phase != shardDone {
				s.met.shardsCompleted.Inc()
				sh.phase = shardDone
				sh.token, sh.worker, sh.done = "", "", 0
				s.walAppend(j, walRecShardDone(shard, recorded))
				crash = crashPostComplete
			}
		case owns:
			// The current leaseholder failed or under-delivered: its
			// partial work is absorbed, the shard requeues for another
			// attempt.
			sh.phase = shardPending
			sh.token, sh.worker, sh.done = "", "", 0
			s.walAppend(j, walRecAbsorb(shard, recorded))
			crash = crashPostAbsorb
		default:
			// A stale partial upload from an expired lease: the absorbed
			// records still count, but the shard's current owner keeps
			// its lease undisturbed.
			if added > 0 {
				s.walAppend(j, walRecAbsorb(-1, recorded))
				crash = crashPostAbsorb
			}
		}
		j.dist.recorded = recorded
		j.done = j.fleetDone()
	}
	terminal = missing == 0
	j.mu.Unlock()
	if crash != "" {
		s.crashAt(crash)
	}

	if failMsg != "" {
		s.opt.Logf("serve: job %.12s shard %d failed on %s (%s) — absorbed %d jobs, requeued", j.id, shard, worker, failMsg, added)
	} else {
		s.opt.Logf("serve: job %.12s shard %d complete from %s (+%d jobs, %d/%d recorded)", j.id, shard, worker, added, recorded, j.total)
	}
	if terminal {
		s.finishJob(j, s.renderJob(j))
	} else {
		j.publish()
	}
	return j.status(), nil
}

// finalizeFleetJob finishes a fleet-claimed job whose grid is already
// fully recorded but which no upload will ever complete (all shards
// were done the moment lease state was built). Verifies against the
// store before rendering; finishJob is idempotent for done jobs, so a
// race with a straggling upload's terminal path is benign.
func (s *Server) finalizeFleetJob(j *job) {
	j.mu.Lock()
	ours := j.state == StateRunning && j.claim == claimFleet
	j.mu.Unlock()
	if !ours {
		return
	}
	j.absorbMu.Lock()
	missing := -1
	if store, err := report.Open(j.dir); err == nil {
		if m, merr := store.Missing(); merr == nil {
			missing = len(m)
		}
		store.Close()
	}
	j.absorbMu.Unlock()
	if missing != 0 {
		return // bookkeeping and store disagree; leave it to uploads
	}
	s.finishJob(j, s.renderJob(j))
}

// renderJob renders a completed job's artifacts (under absorbMu so a
// racing upload never reads a half-written store).
func (s *Server) renderJob(j *job) error {
	j.absorbMu.Lock()
	defer j.absorbMu.Unlock()
	return s.render(j)
}

// shardStatuses snapshots a job's lease state for the shards endpoint.
// A job untouched by the fleet has none.
func (s *Server) shardStatuses(j *job) []ShardStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dist == nil {
		return nil
	}
	// Atomic counter adds are safe under j.mu; requeues noticed by a
	// status poll still count.
	if reaped := j.reapExpired(time.Now()); len(reaped) > 0 {
		s.met.leasesExpired.Add(uint64(len(reaped)))
		s.walRequeues(j, reaped)
	}
	out := make([]ShardStatus, len(j.dist.shards))
	for k := range j.dist.shards {
		sh := &j.dist.shards[k]
		out[k] = ShardStatus{
			Index:    k,
			State:    string(sh.phase),
			Jobs:     len(sh.jobs),
			Done:     sh.done,
			Worker:   sh.worker,
			Attempts: sh.attempts,
		}
		if sh.phase == shardLeased {
			out[k].ExpiresAt = sh.expires.UTC().Format(time.RFC3339)
		}
	}
	return out
}
