package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"

	"obm/internal/report"
	"obm/internal/sim"
)

// The HTTP/JSON API. All job-scoped routes key on the job id, which is
// the run's full SHA-256 spec hash:
//
//	GET  /healthz                      liveness + queue counters
//	GET  /metrics                      Prometheus text exposition
//	POST /api/v1/jobs                  submit a ScenarioSpec JSON list
//	GET  /api/v1/jobs                  list all jobs
//	GET  /api/v1/jobs/{id}             one job's status
//	GET  /api/v1/jobs/{id}/events      SSE progress stream
//	GET  /api/v1/jobs/{id}/summary.csv rendered summary (done jobs)
//	GET  /api/v1/jobs/{id}/report.md   rendered Markdown report (done jobs)
//	GET  /api/v1/jobs/{id}/curves.json aggregated cost-curve points (done jobs)
//
// Fleet-worker routes (the coordinator/worker protocol; see lease.go and
// internal/work):
//
//	POST /api/v1/jobs/{id}/lease               claim a shard lease ({"worker": name};
//	                                           200 Lease, 204 nothing to lease)
//	POST /api/v1/jobs/{id}/shards/{k}/heartbeat renew a lease + report progress
//	                                           ({"token","done"}; 409 = lease lost)
//	POST /api/v1/jobs/{id}/shards/{k}/complete upload the shard's jobs.jsonl
//	                                           (?token=&worker=&failed=; body = log)
//	GET  /api/v1/jobs/{id}/shards              shard/lease states, for operators

// Handler returns the service's HTTP handler, ready to mount on an
// http.Server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.withJob(s.handleStatus))
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.withJob(s.serveEvents))
	mux.HandleFunc("GET /api/v1/jobs/{id}/summary.csv", s.withJob(s.artifact("summary.csv", "text/csv; charset=utf-8")))
	mux.HandleFunc("GET /api/v1/jobs/{id}/report.md", s.withJob(s.artifact("report.md", "text/markdown; charset=utf-8")))
	mux.HandleFunc("GET /api/v1/jobs/{id}/curves.json", s.withJob(s.handleCurves))
	mux.HandleFunc("POST /api/v1/jobs/{id}/lease", s.withJob(s.handleLease))
	mux.HandleFunc("POST /api/v1/jobs/{id}/shards/{k}/heartbeat", s.withShard(s.handleHeartbeat))
	mux.HandleFunc("POST /api/v1/jobs/{id}/shards/{k}/complete", s.withShard(s.handleComplete))
	mux.HandleFunc("GET /api/v1/jobs/{id}/shards", s.withJob(s.handleShards))
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	var queued, running, done, failed int
	for _, st := range s.Jobs() {
		switch st.State {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		case StateDone:
			done++
		case StateFailed:
			failed++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"queued":  queued,
		"running": running,
		"done":    done,
		"failed":  failed,
	})
}

// handleSubmit accepts the same ScenarioSpec JSON list `experiments grid
// -scenarios` reads. Responses: 200 with cached=true when the identical
// grid already finished, 202 when it is queued or running (first
// submission or duplicate), 400 on invalid specs, 429 when the queue is
// full, 503 during shutdown.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	specs, err := sim.ReadScenarios(http.MaxBytesReader(w, r.Body, 4<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st, err := s.Submit(specs)
	switch {
	case errors.Is(err, ErrQueueFull):
		httpError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, ErrStorage):
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	case err != nil: // invalid specs (manifest/plan validation)
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	code := http.StatusAccepted
	if st.Cached {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
}

// withJob resolves the {id} path segment to a job, 404ing unknown ids.
func (s *Server) withJob(h func(http.ResponseWriter, *http.Request, *job)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.lookup(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
			return
		}
		h(w, r, j)
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request, j *job) {
	writeJSON(w, http.StatusOK, j.status())
}

// requireDone gates artifact endpoints: artifacts exist only for finished
// jobs (409 otherwise, with the job's status in the body so clients can
// poll the same URL).
func requireDone(w http.ResponseWriter, j *job) bool {
	st := j.status()
	if st.State == StateDone {
		return true
	}
	writeJSON(w, http.StatusConflict, st)
	return false
}

// artifact serves a rendered file from the job's store directory,
// re-rendering on demand when it is missing (a previous process may have
// completed the grid but died before rendering).
func (s *Server) artifact(name, contentType string) func(http.ResponseWriter, *http.Request, *job) {
	return func(w http.ResponseWriter, r *http.Request, j *job) {
		if !requireDone(w, j) {
			return
		}
		path := filepath.Join(j.dir, name)
		if _, err := os.Stat(path); err != nil {
			if rerr := s.render(j); rerr != nil {
				httpError(w, http.StatusInternalServerError, "rendering %s: %v", name, rerr)
				return
			}
		}
		w.Header().Set("Content-Type", contentType)
		http.ServeFile(w, r, path)
	}
}

// render re-renders a done job's artifacts from its store.
func (s *Server) render(j *job) error {
	store, err := s.openStore(j)
	if err != nil {
		return err
	}
	defer store.Close()
	_, _, err = store.Render()
	return err
}

// withShard additionally resolves the {k} shard-index path segment.
func (s *Server) withShard(h func(http.ResponseWriter, *http.Request, *job, int)) http.HandlerFunc {
	return s.withJob(func(w http.ResponseWriter, r *http.Request, j *job) {
		k, err := strconv.Atoi(r.PathValue("k"))
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad shard index %q", r.PathValue("k"))
			return
		}
		h(w, r, j, k)
	})
}

// handleLease grants a shard lease: 200 with the Lease body, 204 when
// the job has nothing to lease, 503 during shutdown.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request, j *job) {
	var req struct {
		Worker string `json:"worker"`
	}
	if r.Body != nil {
		json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req)
	}
	if req.Worker == "" {
		req.Worker = r.RemoteAddr
	}
	l, err := s.lease(j, req.Worker)
	switch {
	case errors.Is(err, ErrNoLease):
		w.WriteHeader(http.StatusNoContent)
		return
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, l)
}

// handleHeartbeat renews a shard lease: 200 with the refreshed TTL, 409
// when the lease was requeued or completed under the worker.
func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request, j *job, k int) {
	var req struct {
		Token string `json:"token"`
		Done  int    `json:"done"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ttl, err := s.heartbeat(j, k, req.Token, req.Done)
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int64{"ttl_ms": ttl.Milliseconds()})
}

// handleComplete absorbs an uploaded shard log (the request body is the
// shard store's jobs.jsonl). 200 with the job's status on success; 409
// on an exact-agreement conflict (the job is then failed — identical
// seeds must mean identical costs); 400 on a bad upload (truncated or
// malformed — the shard re-runs, the job keeps going); 500 on a
// server-side storage failure (the job keeps running; the worker may
// retry).
func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request, j *job, k int) {
	q := r.URL.Query()
	st, err := s.completeShard(j, k, q.Get("token"), q.Get("worker"), q.Get("failed"),
		http.MaxBytesReader(w, r.Body, 256<<20))
	switch {
	case errors.Is(err, ErrStorage):
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	case errors.Is(err, report.ErrOutcomeConflict):
		httpError(w, http.StatusConflict, "%v", err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleShards reports the job's shard lease states (empty until the
// fleet first touches the job).
func (s *Server) handleShards(w http.ResponseWriter, r *http.Request, j *job) {
	shards := s.shardStatuses(j)
	if shards == nil {
		shards = []ShardStatus{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": j.id, "shards": shards})
}

// handleCurves serves the job's aggregated cost-curve points: one entry
// per (scenario, alg, b) cell, averaged over repetitions.
func (s *Server) handleCurves(w http.ResponseWriter, r *http.Request, j *job) {
	if !requireDone(w, j) {
		return
	}
	store, err := s.openStore(j)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	defer store.Close()
	curves, err := store.CellCurves()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"curves": curves})
}
