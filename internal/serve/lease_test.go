package serve

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"obm/internal/report"
	"obm/internal/sim"
	"obm/internal/trace"
)

// leaseSpecs is a grid with enough jobs for several shards.
func leaseSpecs() []sim.ScenarioSpec {
	return []sim.ScenarioSpec{{
		Name: "lease-uni", Family: "uniform",
		Racks: 8, Requests: 1200, Seed: 21,
		Bs: []int{2, 3}, Reps: 3,
		Algs: []string{"r-bma", "oblivious"},
	}} // 2 algs × 2 bs × 3 reps = 12 grid jobs
}

// coordinator builds a fleet-only server (no local pool) so queued jobs
// wait for leases instead of racing the local workers.
func coordinator(t *testing.T, opt Options) (*Server, *job) {
	t.Helper()
	if opt.StoreRoot == "" {
		opt.StoreRoot = t.TempDir()
	}
	opt.Workers = -1
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	st, err := s.Submit(leaseSpecs())
	if err != nil {
		t.Fatal(err)
	}
	j, ok := s.lookup(st.ID)
	if !ok {
		t.Fatal("submitted job not found")
	}
	return s, j
}

func TestLeasePartitionAndExhaustion(t *testing.T) {
	s, j := coordinator(t, Options{ShardSize: 5, CurvePoints: 2})
	plan, err := j.manifest.Plan()
	if err != nil {
		t.Fatal(err)
	}
	wantShards := (len(plan.Jobs) + 4) / 5

	l0, err := s.lease(j, "w0")
	if err != nil {
		t.Fatal(err)
	}
	if l0.Shards != wantShards || l0.Jobs != len(plan.ShardSlice(l0.Shard, l0.Shards)) ||
		l0.Token == "" || l0.JobID != j.id {
		t.Fatalf("lease = %+v (want %d shards over %d jobs)", l0, wantShards, len(plan.Jobs))
	}
	if got := j.status(); got.State != StateRunning || got.Claim != "fleet" {
		t.Fatalf("after first lease, status = %+v", got)
	}
	// The lease carries enough to reproduce the job id.
	m, err := report.NewManifest(l0.Name, l0.Specs, l0.CurvePoints, report.Shard{Index: l0.Shard, Count: l0.Shards})
	if err != nil {
		t.Fatal(err)
	}
	if m.SpecHash != j.id {
		t.Fatalf("lease manifest hashes to %.12s, job is %.12s", m.SpecHash, j.id)
	}

	seen := map[int]bool{l0.Shard: true}
	for i := 1; i < wantShards; i++ {
		l, err := s.lease(j, "w0")
		if err != nil {
			t.Fatal(err)
		}
		if seen[l.Shard] {
			t.Fatalf("shard %d leased twice", l.Shard)
		}
		seen[l.Shard] = true
	}
	if _, err := s.lease(j, "w0"); !errors.Is(err, ErrNoLease) {
		t.Fatalf("lease beyond exhaustion: %v", err)
	}
}

func TestLeaseExpiryRequeuesShard(t *testing.T) {
	s, j := coordinator(t, Options{ShardSize: 100, LeaseTTL: 20 * time.Millisecond})

	l0, err := s.lease(j, "w0")
	if err != nil {
		t.Fatal(err)
	}
	if l0.Shards != 1 {
		t.Fatalf("want a single shard, got %d", l0.Shards)
	}
	if _, err := s.lease(j, "w1"); !errors.Is(err, ErrNoLease) {
		t.Fatalf("second lease while live: %v", err)
	}
	time.Sleep(30 * time.Millisecond)
	l1, err := s.lease(j, "w1")
	if err != nil {
		t.Fatalf("lease after expiry: %v", err)
	}
	if l1.Shard != l0.Shard || l1.Token == l0.Token {
		t.Fatalf("requeued lease = %+v (old token %s)", l1, l0.Token)
	}
	// The dead worker's heartbeat must now be told to stand down.
	if _, err := s.heartbeat(j, l0.Shard, l0.Token, 1); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale heartbeat: %v", err)
	}
	// The live worker's heartbeat renews and reports progress.
	if _, err := s.heartbeat(j, l1.Shard, l1.Token, 2); err != nil {
		t.Fatal(err)
	}
	if st := j.status(); st.Done != 2 {
		t.Fatalf("heartbeat progress not reflected: %+v", st)
	}
}

// runLeasedShard executes a lease the way internal/work does — a local
// sharded store — and returns the raw log bytes.
func runLeasedShard(t *testing.T, dir string, l Lease) []byte {
	t.Helper()
	m, err := report.NewManifest(l.Name, l.Specs, l.CurvePoints, report.Shard{Index: l.Shard, Count: l.Shards})
	if err != nil {
		t.Fatal(err)
	}
	st, err := report.Create(filepath.Join(dir, "shard"), m)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Run(sim.GridOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(st.LogPath())
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestSubmitNeverBlocksOnGhostQueueSlots: fleet claims release a job's
// pending slot but leave its channel entry behind as a ghost. Submit
// must park jobs that do not fit on the overflow list instead of
// blocking on the full channel while holding the server lock — which
// would freeze every endpoint permanently.
func TestSubmitNeverBlocksOnGhostQueueSlots(t *testing.T) {
	s, err := New(Options{StoreRoot: t.TempDir(), Workers: -1, QueueDepth: 2, ShardSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	specsAt := func(seed uint64) []sim.ScenarioSpec {
		sp := leaseSpecs()
		sp[0].Seed = seed
		return sp
	}
	for seed := uint64(100); seed < 102; seed++ {
		if _, err := s.Submit(specsAt(seed)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Submit(specsAt(102)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit at depth 2: %v, want ErrQueueFull", err)
	}
	// The fleet claims both queued jobs, freeing their pending slots —
	// but their channel entries stay (nothing dequeues with Workers<0).
	for seed := uint64(100); seed < 102; seed++ {
		st, _ := s.Submit(specsAt(seed)) // dedupe hit to get the id
		j, _ := s.lookup(st.ID)
		if _, err := s.lease(j, "w0"); err != nil {
			t.Fatalf("lease seed %d: %v", seed, err)
		}
	}
	// Fresh submissions must be accepted (pending slots are free) and
	// must return promptly even though the channel is full of ghosts —
	// before the overflow list, the send blocked here holding s.mu and
	// froze the whole service. Each new job is fleet-claimed in turn,
	// the lifecycle that keeps a coordinator-only server accepting work
	// indefinitely.
	done := make(chan error, 1)
	go func() {
		for seed := uint64(102); seed < 107; seed++ {
			st, err := s.Submit(specsAt(seed))
			if err != nil {
				done <- err
				return
			}
			nj, _ := s.lookup(st.ID)
			if _, err := s.lease(nj, "w0"); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("submit after fleet claims: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Submit blocked on a ghost-filled queue (deadlock regression)")
	}
}

// TestRecoveredShardsNotReExecuted: when lease state is rebuilt (e.g.
// after a coordinator restart), shards whose jobs are already in the
// job's store must start out done — the fleet must not re-run compute
// the store already holds.
func TestRecoveredShardsNotReExecuted(t *testing.T) {
	root := t.TempDir()
	s, j := coordinator(t, Options{StoreRoot: root, ShardSize: 5, CurvePoints: 2})
	l0, err := s.lease(j, "w0")
	if err != nil {
		t.Fatal(err)
	}
	blob := runLeasedShard(t, t.TempDir(), l0)
	if _, err := s.completeShard(j, l0.Shard, l0.Token, "w0", "", bytes.NewReader(blob)); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh server over the same root rebuilds lease state
	// from nothing but the stores.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.Shutdown(ctx)
	s2, err := New(Options{StoreRoot: root, Workers: -1, ShardSize: 5, CurvePoints: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s2.Shutdown(ctx)
	})
	j2, ok := s2.lookup(j.id)
	if !ok {
		t.Fatal("job not recovered")
	}
	granted := 0
	for {
		l, err := s2.lease(j2, "w1")
		if errors.Is(err, ErrNoLease) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if l.Shard == l0.Shard {
			t.Fatalf("shard %d re-leased although its jobs are all recorded", l0.Shard)
		}
		granted++
	}
	if granted != l0.Shards-1 {
		t.Fatalf("recovered job leased %d shards, want %d (all but the recorded one)", granted, l0.Shards-1)
	}
}

// TestLeaseFinalizesAlreadyCompleteJob: a fleet lease against a job
// whose store already holds every grid job (e.g. one that failed at the
// render step and was resubmitted) must finish the job rather than
// strand it in "running" — no upload will ever arrive to do it.
func TestLeaseFinalizesAlreadyCompleteJob(t *testing.T) {
	s, j := coordinator(t, Options{ShardSize: 5, CurvePoints: 2})

	// Fill the job's own store out-of-band, simulating a grid that was
	// fully recorded before the fleet ever touched it.
	st, err := report.Open(j.dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Run(sim.GridOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	if _, err := s.lease(j, "w0"); !errors.Is(err, ErrNoLease) {
		t.Fatalf("lease on a fully recorded job: %v, want ErrNoLease", err)
	}
	if got := j.status(); got.State != StateDone || got.Done != got.Total {
		t.Fatalf("fully recorded job not finalized by the lease path: %+v", got)
	}
	if _, err := os.Stat(filepath.Join(j.dir, "summary.csv")); err != nil {
		t.Fatalf("finalized job was not rendered: %v", err)
	}
}

// TestCompleteShardsFinishJob drives the whole coordinator protocol
// in-process: lease every shard, upload every log, and the job must
// finish with a summary byte-identical to a direct run — including when
// one shard's log is uploaded twice (at-least-once delivery).
func TestCompleteShardsFinishJob(t *testing.T) {
	s, j := coordinator(t, Options{ShardSize: 5, CurvePoints: 2})

	var logs []struct {
		l    Lease
		blob []byte
	}
	for {
		l, err := s.lease(j, "w0")
		if errors.Is(err, ErrNoLease) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		logs = append(logs, struct {
			l    Lease
			blob []byte
		}{l, runLeasedShard(t, t.TempDir(), l)})
	}
	if len(logs) == 0 || len(logs) != logs[0].l.Shards {
		t.Fatalf("leased %d shards, want %d", len(logs), logs[0].l.Shards)
	}
	for i, sh := range logs {
		st, err := s.completeShard(j, sh.l.Shard, sh.l.Token, "w0", "", bytes.NewReader(sh.blob))
		if err != nil {
			t.Fatal(err)
		}
		if i < len(logs)-1 && st.State != StateRunning {
			t.Fatalf("job terminal after %d/%d shards: %+v", i+1, len(logs), st)
		}
	}
	if st := j.status(); st.State != StateDone || st.Done != st.Total {
		t.Fatalf("after all shards: %+v", st)
	}
	// Duplicate completion of a finished job is accepted and changes
	// nothing (the worker may have retried an upload the first response
	// to which was lost).
	if st, err := s.completeShard(j, logs[0].l.Shard, logs[0].l.Token, "w0", "", bytes.NewReader(logs[0].blob)); err != nil || st.State != StateDone {
		t.Fatalf("duplicate complete: %+v, %v", st, err)
	}

	// Byte-identity with a direct single-process run.
	dir := filepath.Join(t.TempDir(), "direct")
	m, err := report.NewManifest("direct", leaseSpecs(), 2, report.Shard{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := report.Create(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if _, err := ref.Run(sim.GridOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	refCSV, _, err := ref.Render()
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(refCSV)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(j.dir, "summary.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet-drained summary differs from direct run:\n--- fleet\n%s--- direct\n%s", got, want)
	}
}

// TestCompleteConflictFailsJob: an upload whose overlapping record
// disagrees with what the store already holds must fail the job loudly —
// identical seeds must mean identical costs.
func TestCompleteConflictFailsJob(t *testing.T) {
	s, j := coordinator(t, Options{ShardSize: 6, CurvePoints: 0})

	l0, err := s.lease(j, "w0")
	if err != nil {
		t.Fatal(err)
	}
	blob := runLeasedShard(t, t.TempDir(), l0)
	if _, err := s.completeShard(j, l0.Shard, l0.Token, "w0", "", bytes.NewReader(blob)); err != nil {
		t.Fatal(err)
	}

	// A tampered duplicate of the same shard log disagrees on a cost.
	tampered := strings.Replace(string(blob), `"routing":`, `"routing":1e99,"x_was":`, 1)
	if _, err := s.completeShard(j, l0.Shard, l0.Token, "evil", "", strings.NewReader(tampered)); err == nil {
		t.Fatal("conflicting upload accepted")
	}
	if st := j.status(); st.State != StateFailed || !strings.Contains(st.Error, "absorbing shard") {
		t.Fatalf("conflict did not fail the job: %+v", st)
	}
}

// TestCompletePartialUploadRequeues: a failed worker's partial log is
// absorbed (that work is not lost) but the shard goes back to pending.
func TestCompletePartialUploadRequeues(t *testing.T) {
	s, j := coordinator(t, Options{ShardSize: 100, CurvePoints: 0})

	l0, err := s.lease(j, "w0")
	if err != nil {
		t.Fatal(err)
	}
	blob := runLeasedShard(t, t.TempDir(), l0)
	lines := strings.SplitAfterN(string(blob), "\n", 3)
	partial := lines[0] + lines[1] // 2 of 12 records

	st, err := s.completeShard(j, l0.Shard, l0.Token, "w0", "worker exploded", strings.NewReader(partial))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateRunning || st.Done != 2 {
		t.Fatalf("after failed partial upload: %+v", st)
	}
	// The shard is leasable again, and completing it finishes the job
	// (the duplicate records verify against the absorbed partial).
	l1, err := s.lease(j, "w1")
	if err != nil {
		t.Fatalf("re-lease after failure: %v", err)
	}
	if l1.Shard != l0.Shard {
		t.Fatalf("re-lease got shard %d, want %d", l1.Shard, l0.Shard)
	}
	if st, err := s.completeShard(j, l1.Shard, l1.Token, "w1", "", bytes.NewReader(blob)); err != nil || st.State != StateDone {
		t.Fatalf("full upload after partial: %+v, %v", st, err)
	}
}

// TestTruncatedUploadDoesNotFailJob: a worker dying mid-upload leaves a
// torn request body. That must reject the upload (the shard re-runs)
// without failing the job — only genuine outcome conflicts are fatal.
func TestTruncatedUploadDoesNotFailJob(t *testing.T) {
	s, j := coordinator(t, Options{ShardSize: 100, CurvePoints: 0})
	l0, err := s.lease(j, "w0")
	if err != nil {
		t.Fatal(err)
	}
	blob := runLeasedShard(t, t.TempDir(), l0)
	torn := blob[:len(blob)-10] // cut inside the final JSON record

	if _, err := s.completeShard(j, l0.Shard, l0.Token, "w0", "", bytes.NewReader(torn)); err == nil {
		t.Fatal("torn upload accepted as complete")
	} else if errors.Is(err, report.ErrOutcomeConflict) {
		t.Fatalf("torn upload misdiagnosed as a determinism conflict: %v", err)
	}
	if st := j.status(); st.State != StateRunning {
		t.Fatalf("torn upload failed the job: %+v", st)
	}
	// The records before the tear were absorbed, the lease is still
	// live; re-delivering the full log (the shard's re-run) completes
	// the job.
	if st, err := s.completeShard(j, l0.Shard, l0.Token, "w0", "", bytes.NewReader(blob)); err != nil || st.State != StateDone {
		t.Fatalf("re-delivery after torn upload: %+v, %v", st, err)
	}
}

// TestLocalClaimExcludesLeases: a grid the local pool is executing is
// not leasable, and a stale fleet upload for it is dropped rather than
// interleaved with the local run's appends.
func TestLocalClaimExcludesLeases(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	free := func() { once.Do(func() { close(release) }) }
	defer free()
	sim.RegisterFamily("lease-local-test", func(spec sim.ScenarioSpec) (trace.Stream, error) {
		return &blockingStream{n: spec.Racks, count: spec.Requests, release: release}, nil
	})

	s, err := New(Options{StoreRoot: t.TempDir(), Workers: 1, GridWorkers: 1, CurvePoints: 0})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		free()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	st, err := s.Submit([]sim.ScenarioSpec{{
		Name: "local-owned", Family: "lease-local-test",
		Racks: 8, Requests: 3000, Seed: 5,
		Bs: []int{2}, Reps: 1,
		Algs: []string{"oblivious"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	j, _ := s.lookup(st.ID)
	deadline := time.Now().Add(30 * time.Second)
	for j.status().State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started locally")
		}
	}
	if got := j.status().Claim; got != "local" {
		t.Fatalf("running job claim = %q, want local", got)
	}
	if _, err := s.lease(j, "w0"); !errors.Is(err, ErrNoLease) {
		t.Fatalf("lease on a locally owned job: %v", err)
	}
	// A stale upload (from a worker that leased before a coordinator
	// restart, say) is acknowledged but must not touch the store.
	if _, err := s.completeShard(j, 0, "stale-token", "w0", "", strings.NewReader("garbage that must never be parsed\n")); err != nil {
		t.Fatalf("stale upload not dropped cleanly: %v", err)
	}
	free()
	deadline = time.Now().Add(30 * time.Second)
	for j.status().State != StateDone {
		if j.status().State == StateFailed {
			t.Fatalf("job failed: %s", j.status().Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShutdownClosesHubsOfRequeuedJobs is the regression test for the
// drain-time subscriber leak: a job requeued when Shutdown cancels its
// grid (and any job still queued at drain) must close its event hub so
// SSE subscribers are released instead of hanging forever.
func TestShutdownClosesHubsOfRequeuedJobs(t *testing.T) {
	root := t.TempDir()
	s, err := New(Options{StoreRoot: root, GridWorkers: 1, CurvePoints: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit(slowSpecs())
	if err != nil {
		t.Fatal(err)
	}
	j, _ := s.lookup(st.ID)

	// Wait until the grid is genuinely in flight.
	deadline := time.Now().Add(30 * time.Second)
	for j.status().Done < 1 {
		if time.Now().After(deadline) {
			t.Fatal("job never made progress")
		}
		time.Sleep(time.Millisecond)
	}
	ch, done, cancel := j.events().subscribe()
	defer cancel()
	if done {
		t.Fatal("hub closed while the job is running")
	}

	// Expired context: the drain cancels the grid, which requeues the job.
	expired, expire := context.WithCancel(context.Background())
	expire()
	if err := s.Shutdown(expired); err != nil {
		t.Fatal(err)
	}
	if got := j.status().State; got != StateQueued {
		t.Fatalf("job state after drain = %s, want queued", got)
	}

	// The subscriber's channel must close (possibly after buffered
	// snapshots drain) — before the fix it stayed open forever.
	closed := make(chan struct{})
	go func() {
		for range ch {
		}
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber channel still open after Shutdown: drain leaks SSE subscribers")
	}
}
