package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// hub fans a job's status updates out to its SSE subscribers. Slow
// subscribers never block the grid: every event is a full status
// snapshot, so dropping one in favor of a newer one loses nothing.
type hub struct {
	mu     sync.Mutex
	subs   map[chan Status]struct{}
	last   *Status // latest snapshot, replayed to new subscribers
	closed bool
}

func newHub() *hub {
	return &hub{subs: make(map[chan Status]struct{})}
}

// subscribe registers a new subscriber. The latest snapshot (if any) is
// already buffered on the returned channel; done reports whether the hub
// is closed (terminal state reached) — the snapshot still delivers.
func (h *hub) subscribe() (ch chan Status, done bool, cancel func()) {
	ch = make(chan Status, 8)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.last != nil {
		ch <- *h.last
	}
	if h.closed {
		close(ch)
		return ch, true, func() {}
	}
	h.subs[ch] = struct{}{}
	return ch, false, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		delete(h.subs, ch)
	}
}

// publish snapshots st to every subscriber, dropping the event for
// subscribers whose buffer is full (the next snapshot supersedes it).
func (h *hub) publish(st Status) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.last = &st
	for ch := range h.subs {
		select {
		case ch <- st:
		default:
		}
	}
}

// close marks the job terminal: subscribers' channels are closed after
// the final snapshot, ending their SSE responses.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		close(ch)
	}
	h.subs = nil
}

// serveEvents streams a job's progress as Server-Sent Events: one
// `progress` event per status change and a final `done` or `failed`
// event when the job reaches a terminal state, after which the response
// ends. A reconnecting client just re-subscribes — every event is a full
// snapshot.
func (s *Server) serveEvents(w http.ResponseWriter, r *http.Request, j *job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	s.met.sseSubscribers.Add(1)
	defer s.met.sseSubscribers.Add(-1)
	ch, done, cancel := j.events().subscribe()
	defer cancel()
	writeEvent := func(st Status) {
		name := "progress"
		switch st.State {
		case StateDone:
			name = "done"
		case StateFailed:
			name = "failed"
		}
		blob, _ := json.Marshal(st)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, blob)
		fl.Flush()
	}
	if done {
		// Terminal before we attached: emit the final snapshot and finish.
		for st := range ch {
			writeEvent(st)
		}
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.stop:
			return
		case st, ok := <-ch:
			if !ok {
				return
			}
			writeEvent(st)
			if st.State == StateDone || st.State == StateFailed {
				return
			}
		}
	}
}
