package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"obm/internal/report"
	"obm/internal/sim"
	"obm/internal/trace"
)

// tinySpecs is a grid small enough to finish in tens of milliseconds.
func tinySpecs() []sim.ScenarioSpec {
	return []sim.ScenarioSpec{{
		Name: "uni-serve", Family: "uniform",
		Racks: 8, Requests: 2000, Seed: 7,
		Bs: []int{2}, Reps: 2,
		Algs: []string{"r-bma", "oblivious"},
	}}
}

// slowSpecs is a grid with enough jobs and requests that a test can
// reliably interrupt it mid-grid.
func slowSpecs() []sim.ScenarioSpec {
	return []sim.ScenarioSpec{{
		Name: "slow-serve", Family: "uniform",
		Racks: 16, Requests: 100000, Seed: 9,
		Bs: []int{2, 3, 4}, Reps: 3,
		Algs: []string{"r-bma", "bma"},
	}}
}

func specsJSON(t *testing.T, specs []sim.ScenarioSpec) []byte {
	t.Helper()
	blob, err := json.Marshal(specs)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, specs []sim.ScenarioSpec) (Status, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(specsJSON(t, specs)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

func getStatus(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitState(t *testing.T, ts *httptest.Server, id string, want State) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State == want {
			return st
		}
		if st.State == StateFailed && want != StateFailed {
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %s", id, want)
	return Status{}
}

func fetch(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// directSummary runs the same grid without the service and renders its
// summary.csv — the byte-identity reference for the served artifact.
func directSummary(t *testing.T, specs []sim.ScenarioSpec, curvePoints int) []byte {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "direct")
	m, err := report.NewManifest("direct", specs, curvePoints, report.Shard{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := report.Create(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Run(sim.GridOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	csvPath, _, err := st.Render()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestSubmitRunAndFetchArtifacts(t *testing.T) {
	_, ts := newTestServer(t, Options{StoreRoot: t.TempDir(), Workers: 2, CurvePoints: 4})

	st, code := submit(t, ts, tinySpecs())
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d, want 202", code)
	}
	if st.ID == "" || st.Total != 4 {
		t.Fatalf("submit status = %+v, want id and total=4", st)
	}

	// Artifacts 409 while the job is not done.
	if code, _ := fetch(t, ts, "/api/v1/jobs/"+st.ID+"/summary.csv"); code == http.StatusOK {
		t.Log("job finished before the 409 probe; skipping that assertion")
	} else if code != http.StatusConflict {
		t.Fatalf("summary.csv before done: status %d, want 409", code)
	}

	final := waitState(t, ts, st.ID, StateDone)
	if final.Done != final.Total {
		t.Fatalf("done job reports %d/%d", final.Done, final.Total)
	}

	code, got := fetch(t, ts, "/api/v1/jobs/"+st.ID+"/summary.csv")
	if code != http.StatusOK {
		t.Fatalf("summary.csv: status %d", code)
	}
	want := directSummary(t, tinySpecs(), 4)
	if !bytes.Equal(got, want) {
		t.Errorf("served summary.csv differs from direct RunGrid:\n got:\n%s\nwant:\n%s", got, want)
	}

	code, md := fetch(t, ts, "/api/v1/jobs/"+st.ID+"/report.md")
	if code != http.StatusOK || !bytes.Contains(md, []byte("# Run report")) {
		t.Fatalf("report.md: status %d, body %.80s", code, md)
	}

	code, curvesBlob := fetch(t, ts, "/api/v1/jobs/"+st.ID+"/curves.json")
	if code != http.StatusOK {
		t.Fatalf("curves.json: status %d", code)
	}
	var curves struct {
		Curves []report.CellCurve `json:"curves"`
	}
	if err := json.Unmarshal(curvesBlob, &curves); err != nil {
		t.Fatal(err)
	}
	if len(curves.Curves) != 2 {
		t.Fatalf("curves.json has %d cells, want 2", len(curves.Curves))
	}
	for _, c := range curves.Curves {
		if len(c.X) != 4 || len(c.Routing) != 4 {
			t.Fatalf("cell %s/%d curve has %d points, want 4", c.Alg, c.B, len(c.X))
		}
	}

	// Unknown job id → 404.
	if code, _ := fetch(t, ts, "/api/v1/jobs/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", code)
	}
}

// TestCacheHit is acceptance criterion 1: the identical spec list
// submitted again is served from the finished store, with no
// recomputation — also across a server restart on the same root.
func TestCacheHit(t *testing.T) {
	root := t.TempDir()
	_, ts := newTestServer(t, Options{StoreRoot: root, CurvePoints: 4})

	st, code := submit(t, ts, tinySpecs())
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	waitState(t, ts, st.ID, StateDone)
	// Tamper-proof recomputation probe: remember the log's mtime.
	logPath := filepath.Join(report.DirForHash(root, st.ID), "jobs.jsonl")
	before, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}

	st2, code := submit(t, ts, tinySpecs())
	if code != http.StatusOK || !st2.Cached || st2.State != StateDone {
		t.Fatalf("second submit: status %d, %+v — want 200 + cached + done", code, st2)
	}
	if st2.ID != st.ID {
		t.Fatalf("cache hit changed job id: %s vs %s", st2.ID, st.ID)
	}
	after, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(before.ModTime()) || after.Size() != before.Size() {
		t.Fatal("cache hit recomputed the grid (jobs.jsonl changed)")
	}

	// The cache survives a restart: a fresh server on the same root
	// recovers the finished store and still answers from it.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ts.Config.Handler = http.NotFoundHandler() // detach old server
	s2, err := New(Options{StoreRoot: root, CurvePoints: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(ctx)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	st3, code := submit(t, ts2, tinySpecs())
	if code != http.StatusOK || !st3.Cached {
		t.Fatalf("post-restart submit: status %d, %+v — want cached hit", code, st3)
	}
}

// TestKillMidGridAndResume is acceptance criterion 2: interrupting the
// server mid-grid and restarting on the same root resumes the job and
// produces a summary.csv byte-identical to an uninterrupted run.
func TestKillMidGridAndResume(t *testing.T) {
	root := t.TempDir()
	s1, err := New(Options{StoreRoot: root, GridWorkers: 1, CurvePoints: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())

	st, code := submit(t, ts1, slowSpecs())
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	// Wait until at least one grid job persisted, then kill: Shutdown
	// with an expired context cancels the in-flight grid at its next
	// chunk boundary — the hard-kill equivalent at the grid level.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if cur := getStatus(t, ts1, st.ID); cur.Done >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never made progress")
		}
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s1.Shutdown(expired); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ts1.Close()

	info, ok, err := report.FindByHash(root, st.ID)
	if err != nil || !ok {
		t.Fatalf("store not found after kill: ok=%v err=%v", ok, err)
	}
	if info.Recorded == 0 {
		t.Fatal("no jobs persisted before the kill")
	}
	if info.Complete() {
		t.Skip("grid finished before the kill could land; resume path not exercised")
	}
	t.Logf("killed mid-grid at %d/%d jobs", info.Recorded, info.Recorded+info.Missing)
	// Graceful shutdown persisted the pending queue.
	if _, err := os.Stat(filepath.Join(root, queueFile)); err != nil {
		t.Fatalf("queue.json not written on shutdown: %v", err)
	}

	// Restart: recovery re-enqueues the interrupted job and resumes it.
	_, ts2 := newTestServer(t, Options{StoreRoot: root, GridWorkers: 1, CurvePoints: 4})
	resumed := getStatus(t, ts2, st.ID)
	if resumed.Done < info.Recorded {
		t.Fatalf("restart lost persisted jobs: %d < %d", resumed.Done, info.Recorded)
	}
	waitState(t, ts2, st.ID, StateDone)

	code, got := fetch(t, ts2, "/api/v1/jobs/"+st.ID+"/summary.csv")
	if code != http.StatusOK {
		t.Fatalf("summary.csv after resume: status %d", code)
	}
	want := directSummary(t, slowSpecs(), 4)
	if !bytes.Equal(got, want) {
		t.Errorf("resumed summary.csv differs from uninterrupted run:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// blockingStream is a trace.Stream whose Next blocks until release is
// closed — it lets a test hold the service's worker inside a grid for as
// long as it needs, with no timing assumptions. Requests are a
// deterministic round-robin, so the grid it drives is still valid.
type blockingStream struct {
	n, count int
	release  <-chan struct{}
	pos      int
}

func (s *blockingStream) Name() string  { return "blocking" }
func (s *blockingStream) NumRacks() int { return s.n }
func (s *blockingStream) Len() int      { return s.count }
func (s *blockingStream) Reset()        { s.pos = 0 }

func (s *blockingStream) Next(buf []trace.Request) int {
	<-s.release
	k := 0
	for k < len(buf) && s.pos < s.count {
		u := s.pos % s.n
		v := (s.pos + 1) % s.n
		buf[k] = trace.Request{Src: int32(u), Dst: int32(v)}
		s.pos++
		k++
	}
	return k
}

// TestBackpressure: submissions beyond QueueDepth are refused with 429
// while the worker is busy. The busy grid blocks on a channel, so the
// sequence below is deterministic — no reliance on grid duration
// outpacing HTTP round trips.
func TestBackpressure(t *testing.T) {
	release := make(chan struct{})
	var releaseOnce sync.Once
	free := func() { releaseOnce.Do(func() { close(release) }) }
	sim.RegisterFamily("block-test", func(spec sim.ScenarioSpec) (trace.Stream, error) {
		return &blockingStream{n: spec.Racks, count: spec.Requests, release: release}, nil
	})

	_, ts := newTestServer(t, Options{StoreRoot: t.TempDir(), Workers: 1, GridWorkers: 1, QueueDepth: 1, CurvePoints: 4})
	// The worker blocks inside the busy grid until released; free it
	// before the server's Shutdown cleanup so the drain cannot hang.
	t.Cleanup(free)

	busy := []sim.ScenarioSpec{{
		Name: "busy-serve", Family: "block-test",
		Racks: 8, Requests: 4000, Seed: 13,
		Bs: []int{2}, Reps: 1,
		Algs: []string{"oblivious"},
	}}
	first, code := submit(t, ts, busy)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	deadline := time.Now().Add(30 * time.Second)
	for getStatus(t, ts, first.ID).State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
	}
	// Fill the queue.
	filler := tinySpecs()
	filler[0].Seed = 1001
	if _, code := submit(t, ts, filler); code != http.StatusAccepted {
		t.Fatalf("filler submit: status %d", code)
	}
	// Overflow.
	over := tinySpecs()
	over[0].Seed = 1002
	if _, code := submit(t, ts, over); code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", code)
	}
	// Resubmitting a known job is NOT backpressured — it is a dedupe hit
	// on the queued filler.
	if st, code := submit(t, ts, filler); code != http.StatusAccepted {
		t.Fatalf("duplicate submit during backpressure: status %d (state %s), want 202", code, st.State)
	}

	// Unblock the worker: the busy grid and the filler must now drain,
	// and a fresh submission is accepted again.
	free()
	waitState(t, ts, first.ID, StateDone)
	if _, code := submit(t, ts, over); code != http.StatusAccepted {
		t.Fatalf("submit after drain: status %d, want 202", code)
	}
}

// TestSSEProgress: the events endpoint streams progress snapshots and a
// terminal `done` event, including for jobs that finished long ago.
func TestSSEProgress(t *testing.T) {
	_, ts := newTestServer(t, Options{StoreRoot: t.TempDir(), CurvePoints: 4})
	st, _ := submit(t, ts, tinySpecs())

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var events []string
	var lastData Status
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if name, ok := strings.CutPrefix(line, "event: "); ok {
			events = append(events, name)
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			if err := json.Unmarshal([]byte(data), &lastData); err != nil {
				t.Fatalf("bad SSE data %q: %v", data, err)
			}
		}
	}
	if len(events) == 0 || events[len(events)-1] != "done" {
		t.Fatalf("SSE events = %v, want trailing done", events)
	}
	if lastData.State != StateDone || lastData.Done != lastData.Total {
		t.Fatalf("final SSE snapshot = %+v", lastData)
	}

	// A late subscriber to the finished job still gets the final event.
	resp2, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp2.Body)
	if !strings.Contains(buf.String(), "event: done") {
		t.Fatalf("late SSE subscription missing done event:\n%s", buf.String())
	}
}

// TestSubmitValidation: malformed and invalid spec bodies are 400s.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{StoreRoot: t.TempDir()})
	for _, body := range []string{
		"not json",
		`[{"name":"x","family":"no-such-family","racks":8,"requests":100,"bs":[2],"reps":1}]`,
		`[]`,
	} {
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %.30q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestHealthAndList sanity-checks the remaining endpoints.
func TestHealthAndList(t *testing.T) {
	_, ts := newTestServer(t, Options{StoreRoot: t.TempDir(), CurvePoints: 4})
	st, _ := submit(t, ts, tinySpecs())
	waitState(t, ts, st.ID, StateDone)

	code, body := fetch(t, ts, "/healthz")
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"status": "ok"`)) {
		t.Fatalf("healthz: %d %s", code, body)
	}
	code, body = fetch(t, ts, "/api/v1/jobs")
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	var list struct {
		Jobs []Status `json:"jobs"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Fatalf("list = %+v", list)
	}
}

// TestShutdownRefusesSubmissions: a draining server answers 503.
func TestShutdownRefusesSubmissions(t *testing.T) {
	s, err := New(Options{StoreRoot: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(specsJSON(t, tinySpecs())))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during shutdown: status %d, want 503", resp.StatusCode)
	}
}

// shortStream underdelivers (Len−1 requests) until *healthy is flipped —
// a deterministic way to make a grid job fail and then succeed on retry.
type shortStream struct {
	n, count int
	healthy  *bool
	pos, cap int
}

func (s *shortStream) Name() string  { return "short" }
func (s *shortStream) NumRacks() int { return s.n }
func (s *shortStream) Len() int      { return s.count }
func (s *shortStream) Reset() {
	s.pos = 0
	s.cap = s.count
	if !*s.healthy {
		s.cap = s.count - 1
	}
}

func (s *shortStream) Next(buf []trace.Request) int {
	k := 0
	for k < len(buf) && s.pos < s.cap {
		buf[k] = trace.Request{Src: int32(s.pos % s.n), Dst: int32((s.pos + 1) % s.n)}
		s.pos++
		k++
	}
	return k
}

// TestFailedJobResubmitRetries: a failed grid must not poison its spec
// hash — resubmitting the identical specs re-enqueues the job, and once
// the underlying fault clears, it completes.
func TestFailedJobResubmitRetries(t *testing.T) {
	healthy := false
	sim.RegisterFamily("flaky-test", func(spec sim.ScenarioSpec) (trace.Stream, error) {
		return &shortStream{n: spec.Racks, count: spec.Requests, healthy: &healthy}, nil
	})
	_, ts := newTestServer(t, Options{StoreRoot: t.TempDir(), CurvePoints: 4})

	specs := []sim.ScenarioSpec{{
		Name: "flaky", Family: "flaky-test",
		Racks: 8, Requests: 3000, Seed: 1,
		Bs: []int{2}, Reps: 1,
		Algs: []string{"oblivious"},
	}}
	st, code := submit(t, ts, specs)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	failed := waitState(t, ts, st.ID, StateFailed)
	if failed.Error == "" {
		t.Fatal("failed job carries no error")
	}

	// While still broken, a resubmission retries and fails again (not a
	// stale 'accepted' that never runs).
	if _, code := submit(t, ts, specs); code != http.StatusAccepted {
		t.Fatalf("resubmit of failed job: status %d, want 202", code)
	}
	waitState(t, ts, st.ID, StateFailed)

	// Fault cleared: the next resubmission completes.
	healthy = true
	st2, code := submit(t, ts, specs)
	if code != http.StatusAccepted || st2.State != StateQueued {
		t.Fatalf("resubmit after fix: status %d, %+v", code, st2)
	}
	waitState(t, ts, st.ID, StateDone)
	if code, _ := fetch(t, ts, "/api/v1/jobs/"+st.ID+"/summary.csv"); code != http.StatusOK {
		t.Fatalf("summary.csv after retry: status %d", code)
	}
}
