package serve_test

import (
	"context"
	"fmt"
	"os"
	"time"

	"obm/internal/serve"
	"obm/internal/sim"
)

// ExampleNew builds the experiment service over a store root and shuts
// it down gracefully — the embedding pattern `experiments serve` uses
// (mount s.Handler() on an http.Server to expose the API).
func ExampleNew() {
	root, err := os.MkdirTemp("", "serve-root")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(root)

	s, err := serve.New(serve.Options{
		StoreRoot: root, // the durable queue + content-addressed result cache
		Workers:   1,    // grids executed concurrently by this process
	})
	if err != nil {
		panic(err)
	}
	// s.Handler() is the HTTP API; here we only exercise the lifecycle.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		panic(err)
	}
	fmt.Println("service drained cleanly")
	// Output:
	// service drained cleanly
}

// ExampleServer_Submit submits a grid programmatically, waits for it,
// and shows the content-addressed cache: resubmitting identical specs
// returns the finished job instead of recomputing.
func ExampleServer_Submit() {
	root, err := os.MkdirTemp("", "serve-root")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(root)
	s, err := serve.New(serve.Options{StoreRoot: root, Workers: 1})
	if err != nil {
		panic(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	specs := []sim.ScenarioSpec{{
		Name: "demo", Family: "uniform",
		Racks: 8, Requests: 2000, Seed: 1,
		Bs: []int{2}, Reps: 2, Algs: []string{"r-bma"},
	}}
	st, err := s.Submit(specs)
	if err != nil {
		panic(err)
	}
	fmt.Println("queued:", st.Total, "grid jobs; cached:", st.Cached)

	for st.State != serve.StateDone && st.State != serve.StateFailed {
		time.Sleep(5 * time.Millisecond)
		st, _ = s.Job(st.ID)
	}
	fmt.Println("finished:", st.State, st.Done, "of", st.Total)

	// The job id is the SHA-256 spec hash: identical specs are a cache
	// hit, served from the finished store with zero recomputation.
	again, err := s.Submit(specs)
	if err != nil {
		panic(err)
	}
	fmt.Println("resubmitted: cached =", again.Cached, "— same job:", again.ID == st.ID)
	// Output:
	// queued: 2 grid jobs; cached: false
	// finished: done 2 of 2
	// resubmitted: cached = true — same job: true
}
