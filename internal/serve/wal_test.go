package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"obm/internal/wal"
)

// pickLease deterministically selects one held lease (map iteration order
// is randomized in Go; sorting keeps a seed reproducible).
func pickLease(rng *rand.Rand, leases map[int]Lease) (int, Lease, bool) {
	if len(leases) == 0 {
		return 0, Lease{}, false
	}
	keys := make([]int, 0, len(leases))
	for k := range leases {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	k := keys[rng.Intn(len(keys))]
	return k, leases[k], true
}

// TestWALReplayMatchesInMemoryState is the model-based property test:
// random interleavings of the five lease-table operations — lease,
// heartbeat, expire(+reap), failed partial upload, full completion —
// applied to a live coordinator must leave a WAL whose strict replay
// reconstructs the in-memory shard table exactly (phase, token, worker,
// progress, attempts, recorded count). Shard 0 is never fully completed
// so the job stays live and its journal stays on disk.
func TestWALReplayMatchesInMemoryState(t *testing.T) {
	logs := buildShardLogs(t, "uniform")
	for _, seed := range []int64{1, 7, 42, 1234} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			s := faultCoordinator(t, t.TempDir())
			st, err := s.Submit(faultSpecs("uniform"))
			if err != nil {
				t.Fatal(err)
			}
			j, _ := s.lookup(st.ID)
			leases := make(map[int]Lease)

			// Prime the lease table so every later op has state to act on.
			if l, err := s.lease(j, "w0"); err == nil {
				leases[l.Shard] = l
			} else {
				t.Fatal(err)
			}
			for op := 0; op < 60; op++ {
				switch rng.Intn(5) {
				case 0: // lease whatever is pending
					if l, err := s.lease(j, fmt.Sprintf("w%d", rng.Intn(3))); err == nil {
						leases[l.Shard] = l
					} else if !errors.Is(err, ErrNoLease) {
						t.Fatal(err)
					}
				case 1: // heartbeat a held lease
					if k, l, ok := pickLease(rng, leases); ok {
						if _, err := s.heartbeat(j, k, l.Token, rng.Intn(4)); errors.Is(err, ErrLeaseLost) {
							delete(leases, k)
						} else if err != nil {
							t.Fatal(err)
						}
					}
				case 2: // TTL lapse + the reap that notices it
					if k, _, ok := pickLease(rng, leases); ok {
						expireLease(j, k)
						s.shardStatuses(j)
						delete(leases, k)
					}
				case 3: // worker failure: partial log absorbed, shard requeued
					if k, l, ok := pickLease(rng, leases); ok {
						blob := logs[k]
						half := blob[:bytes.IndexByte(blob, '\n')+1]
						if _, err := s.completeShard(j, k, l.Token, "w", "injected", bytes.NewReader(half)); err != nil {
							t.Fatal(err)
						}
						delete(leases, k)
					}
				case 4: // full completion of any shard but 0
					k := 1 + rng.Intn(len(logs)-1)
					tok := ""
					if l, ok := leases[k]; ok {
						tok = l.Token
					}
					if _, err := s.completeShard(j, k, tok, "w", "", bytes.NewReader(logs[k])); err != nil {
						t.Fatal(err)
					}
					delete(leases, k)
				}
			}

			type view struct {
				phase          shardPhase
				token, worker  string
				done, attempts int
			}
			j.mu.Lock()
			if j.dist == nil {
				j.mu.Unlock()
				t.Fatal("no lease table after op sequence")
			}
			mem := make([]view, len(j.dist.shards))
			for k := range j.dist.shards {
				sh := &j.dist.shards[k]
				mem[k] = view{sh.phase, sh.token, sh.worker, sh.done, sh.attempts}
			}
			memRecorded := j.dist.recorded
			walPath := j.wal.Path()
			j.mu.Unlock()

			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			s.Shutdown(ctx) // flushes and closes the journal, keeps the file

			var replayed walJobState
			lg, n, err := wal.Open(walPath, replayed.apply)
			if err != nil {
				t.Fatalf("strict replay failed: %v", err)
			}
			lg.Close()
			if n == 0 {
				t.Fatal("journal is empty after an op sequence")
			}
			if len(replayed.shards) != len(mem) {
				t.Fatalf("replay has %d shards, memory has %d", len(replayed.shards), len(mem))
			}
			for k := range mem {
				got := replayed.shards[k]
				if got.phase != mem[k].phase || got.token != mem[k].token ||
					got.worker != mem[k].worker || got.done != mem[k].done ||
					got.attempts != mem[k].attempts {
					t.Errorf("shard %d: replay {%s %q %q done=%d att=%d} != memory %+v",
						k, got.phase, got.token, got.worker, got.done, got.attempts, mem[k])
				}
			}
			if replayed.recorded != memRecorded {
				t.Errorf("replay recorded = %d, memory = %d", replayed.recorded, memRecorded)
			}
		})
	}
}

// TestRestartHonorsLiveLeasesAndReapsDeadOnes is the coordinator-restart
// race test: a worker whose lease is still inside its TTL when the
// coordinator comes back keeps its shard (heartbeats are honored, same
// token), a worker whose lease lapsed during the outage gets 409
// (ErrLeaseLost), and the lapsed shard is requeued — never dropped.
func TestRestartHonorsLiveLeasesAndReapsDeadOnes(t *testing.T) {
	logs := buildShardLogs(t, "uniform")
	root := t.TempDir()
	s1 := faultCoordinator(t, root)
	st, err := s1.Submit(faultSpecs("uniform"))
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := s1.lookup(st.ID)

	lA, err := s1.lease(j1, "worker-dead")
	if err != nil {
		t.Fatal(err)
	}
	lB, err := s1.lease(j1, "worker-live")
	if err != nil {
		t.Fatal(err)
	}
	// Make lease A journaled-dead: a heartbeat record whose renewed expiry
	// is already in the past is exactly what a log looks like when the
	// coordinator was down longer than the worker's TTL.
	j1.mu.Lock()
	shA := &j1.dist.shards[lA.Shard]
	shA.expires = time.Now().Add(-time.Minute)
	s1.walAppend(j1, walRecHeartbeat(lA.Shard, shA))
	j1.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s1.Shutdown(ctx)

	s2 := faultCoordinator(t, root)
	defer func() { s2.Shutdown(ctx) }()
	j2, ok := s2.lookup(st.ID)
	if !ok {
		t.Fatal("job not recovered")
	}
	if got := j2.status(); got.State != StateRunning || got.Claim != "fleet" {
		t.Fatalf("recovered job = %+v, want running/fleet", got)
	}
	if n := s2.met.walReplayed.Value(); n == 0 {
		t.Fatal("restart replayed no WAL records")
	}
	if n := s2.met.walRecoveredLeases.Value(); n != 1 {
		t.Fatalf("recovered %d live leases, want 1 (worker-live)", n)
	}

	// The live worker's heartbeat is honored with its original token.
	if _, err := s2.heartbeat(j2, lB.Shard, lB.Token, 2); err != nil {
		t.Fatalf("live lease heartbeat after restart: %v", err)
	}
	// The dead worker gets the 409 and stands down.
	if _, err := s2.heartbeat(j2, lA.Shard, lA.Token, 1); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("dead lease heartbeat after restart: %v, want ErrLeaseLost", err)
	}
	// Its shard was requeued, not dropped: the next lease call grants it.
	lA2, err := s2.lease(j2, "worker-new")
	if err != nil {
		t.Fatalf("re-leasing the reaped shard: %v", err)
	}
	if lA2.Shard != lA.Shard {
		t.Fatalf("re-lease granted shard %d, want the requeued %d", lA2.Shard, lA.Shard)
	}
	if lA2.Token == lA.Token {
		t.Fatal("requeued shard reissued with the dead lease's token")
	}

	// No shard is lost: the fleet drains the job to done.
	for k := 0; k < len(logs); k++ {
		if _, err := s2.completeShard(j2, k, "", "worker-new", "", bytes.NewReader(logs[k])); err != nil {
			t.Fatalf("complete shard %d: %v", k, err)
		}
	}
	if got := j2.status(); got.State != StateDone {
		t.Fatalf("after draining recovered job: %+v", got)
	}
	if _, err := os.Stat(filepath.Join(j2.dir, leaseWALFile)); !os.IsNotExist(err) {
		t.Fatalf("journal still present after the job finished: %v", err)
	}
}

// TestRestartWithAllLeasesDeadFallsBack: when every journaled lease is
// already past its TTL at recovery, the WAL is discarded and the job
// recovers on the plain path — queued, claimable by pool and fleet alike —
// instead of sitting fleet-claimed with no live workers.
func TestRestartWithAllLeasesDeadFallsBack(t *testing.T) {
	root := t.TempDir()
	s1, err := New(Options{
		StoreRoot: root, Workers: -1,
		ShardSize: 100, CurvePoints: faultCurvePoints,
		LeaseTTL: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s1.Submit(faultSpecs("uniform"))
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := s1.lookup(st.ID)
	l0, err := s1.lease(j1, "doomed")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s1.Shutdown(ctx)
	time.Sleep(80 * time.Millisecond) // outage outlives the TTL

	s2, err := New(Options{
		StoreRoot: root, Workers: -1,
		ShardSize: 100, CurvePoints: faultCurvePoints,
		LeaseTTL: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { s2.Shutdown(ctx) }()
	j2, ok := s2.lookup(st.ID)
	if !ok {
		t.Fatal("job not recovered")
	}
	if got := j2.status(); got.State != StateQueued {
		t.Fatalf("job with only dead leases = %+v, want queued", got)
	}
	if _, err := os.Stat(filepath.Join(j2.dir, leaseWALFile)); !os.IsNotExist(err) {
		t.Fatalf("stale journal not discarded: %v", err)
	}
	// The dead worker's heartbeat is refused; the shard is re-leasable.
	if _, err := s2.heartbeat(j2, l0.Shard, l0.Token, 1); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("heartbeat on fallback-recovered job: %v, want ErrLeaseLost", err)
	}
	if _, err := s2.lease(j2, "fresh"); err != nil {
		t.Fatalf("re-lease after fallback: %v", err)
	}
}

// TestRestartDiscardsWALOnCorruptionAndShardMismatch: a journal that
// fails strict replay, and a journal whose shard partition no longer
// matches the server's ShardSize, must both be discarded — recovery
// degrades to the plain path, never replays a lie.
func TestRestartDiscardsWALOnCorruptionAndShardMismatch(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	t.Run("corrupt", func(t *testing.T) {
		root := t.TempDir()
		s1 := faultCoordinator(t, root)
		st, _ := s1.Submit(faultSpecs("uniform"))
		j1, _ := s1.lookup(st.ID)
		if _, err := s1.lease(j1, "w0"); err != nil {
			t.Fatal(err)
		}
		s1.Shutdown(ctx)
		path := filepath.Join(j1.dir, leaseWALFile)
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		blob[len(blob)/2] ^= 0xff
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		s2 := faultCoordinator(t, root)
		defer func() { s2.Shutdown(ctx) }()
		j2, _ := s2.lookup(st.ID)
		if got := j2.status(); got.State != StateQueued {
			t.Fatalf("job with corrupt journal = %+v, want queued", got)
		}
		if n := s2.met.walDiscarded.Value(); n != 1 {
			t.Fatalf("walDiscarded = %d, want 1", n)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("corrupt journal left on disk: %v", err)
		}
	})

	t.Run("shard-mismatch", func(t *testing.T) {
		root := t.TempDir()
		s1 := faultCoordinator(t, root) // ShardSize 3
		st, _ := s1.Submit(faultSpecs("uniform"))
		j1, _ := s1.lookup(st.ID)
		if _, err := s1.lease(j1, "w0"); err != nil {
			t.Fatal(err)
		}
		s1.Shutdown(ctx)
		s2, err := New(Options{ // different partition: old shard indices are meaningless
			StoreRoot: root, Workers: -1,
			ShardSize: 100, CurvePoints: faultCurvePoints, LeaseTTL: time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { s2.Shutdown(ctx) }()
		j2, _ := s2.lookup(st.ID)
		if got := j2.status(); got.State != StateQueued {
			t.Fatalf("job with mismatched journal = %+v, want queued", got)
		}
		if n := s2.met.walDiscarded.Value(); n != 1 {
			t.Fatalf("walDiscarded = %d, want 1", n)
		}
		l, err := s2.lease(j2, "w1")
		if err != nil {
			t.Fatalf("lease under the new partition: %v", err)
		}
		if l.Shards != 1 {
			t.Fatalf("new partition has %d shards, want 1", l.Shards)
		}
	})
}

// TestSSESubscribersReconnectAcrossRestart: subscribers of the dying
// coordinator are released (closed channel — the SSE stream ends), and a
// re-subscription against the restarted coordinator's recovered job
// receives events again. This is the event-stream half of the restart
// contract: no subscriber hangs forever on a dead process's hub.
func TestSSESubscribersReconnectAcrossRestart(t *testing.T) {
	root := t.TempDir()
	s1 := faultCoordinator(t, root)
	st, err := s1.Submit(faultSpecs("uniform"))
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := s1.lookup(st.ID)
	lB, err := s1.lease(j1, "w0")
	if err != nil {
		t.Fatal(err)
	}
	ch, closed, cancelSub := j1.events().subscribe()
	defer cancelSub()
	if closed {
		t.Fatal("hub closed while job is live")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s1.Shutdown(ctx)

	// The old stream ends: the channel closes (after buffered snapshots).
	drained := make(chan struct{})
	go func() {
		for range ch {
		}
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber not released by the dying coordinator")
	}

	// Reconnect: the recovered job has a fresh hub that publishes again.
	s2 := faultCoordinator(t, root)
	defer func() { s2.Shutdown(ctx) }()
	j2, ok := s2.lookup(st.ID)
	if !ok {
		t.Fatal("job not recovered")
	}
	ch2, closed2, cancelSub2 := j2.events().subscribe()
	defer cancelSub2()
	if closed2 {
		t.Fatal("recovered job's hub is closed")
	}
	if _, err := s2.heartbeat(j2, lB.Shard, lB.Token, 3); err != nil {
		t.Fatalf("heartbeat after restart: %v", err)
	}
	select {
	case got := <-ch2:
		if got.State != StateRunning || got.Claim != "fleet" {
			t.Fatalf("reconnected subscriber got %+v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reconnected subscriber received no event")
	}
}

// TestNoLeaseWALOptionDisablesJournal: with the WAL off, fleet runs work
// exactly as before PR 10 — no journal file, and a restart falls back to
// plain re-enqueue recovery.
func TestNoLeaseWALOptionDisablesJournal(t *testing.T) {
	root := t.TempDir()
	s, err := New(Options{
		StoreRoot: root, Workers: -1, NoLeaseWAL: true,
		ShardSize: faultShardSize, CurvePoints: faultCurvePoints, LeaseTTL: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	defer func() { s.Shutdown(ctx) }()
	st, err := s.Submit(faultSpecs("uniform"))
	if err != nil {
		t.Fatal(err)
	}
	j, _ := s.lookup(st.ID)
	if _, err := s.lease(j, "w0"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(j.dir, leaseWALFile)); !os.IsNotExist(err) {
		t.Fatalf("journal created despite NoLeaseWAL: %v", err)
	}
	if n := s.met.walAppends.Value(); n != 0 {
		t.Fatalf("walAppends = %d with the journal disabled", n)
	}
}
