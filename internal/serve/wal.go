package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"time"

	"obm/internal/report"
	"obm/internal/snap"
	"obm/internal/wal"
)

// The coordinator's lease/queue write-ahead log.
//
// PR 5's lease state was deliberately in-memory: the absorbed shard logs
// are the durable truth for *outcomes*, so a coordinator crash lost only
// bookkeeping. That bookkeeping still cost real time — every outstanding
// lease was stranded until a fresh fleet claim re-planned the job — and,
// worse, a restarted coordinator answered live workers' heartbeats with
// 409s, aborting shards mid-replay for no reason. This file makes the
// bookkeeping itself crash-recoverable.
//
// Every lease-state transition appends one record to <job-dir>/lease.wal
// (framing and torn-tail trimming come from internal/wal; payload
// encoding reuses the internal/snap primitives). Records journal the
// POST-transition state, so replay is assignment plus strict legality
// checks: a lease record must land on a pending shard with the next
// attempt number, a heartbeat must name the current token, a requeue
// must land on a leased shard. Any violation — duplicated, reordered or
// hand-edited records — classifies as snap.ErrCorrupt and the whole log
// is discarded rather than replayed into a lie (recovery then degrades
// to PR 5 behavior, which is always safe: outcomes live in the store).
//
// The WAL is strictly a durability optimization with one invariant:
// it may lag the store (a crash between an upload's absorb and its WAL
// record), never lead it. Recovery therefore reconciles every replayed
// shard against the store and trusts the store's verdict. Leases whose
// TTL lapsed while the coordinator was down are requeued on the spot;
// live ones are re-armed to a full TTL so the worker's next heartbeat
// lands instead of 409ing — a fleet survives a coordinator restart
// without losing a single shard of progress.

// leaseWALFile is the per-job WAL file name, next to jobs.jsonl.
const leaseWALFile = "lease.wal"

// walOp tags one lease-state transition record.
type walOp uint8

const (
	walOpInit      walOp = 1 // shard partition planned (shard count, recorded jobs)
	walOpLease     walOp = 2 // shard leased to a worker
	walOpHeartbeat walOp = 3 // lease renewed, progress reported
	walOpRequeue   walOp = 4 // lease reaped (TTL) — shard back to pending
	walOpShardDone walOp = 5 // upload proved the shard fully recorded
	walOpAbsorb    walOp = 6 // partial upload absorbed (optionally requeuing its shard)
)

const (
	// maxWALString caps decoded token/worker strings (tokens are 32 hex
	// chars; worker names are short) so a corrupt length cannot size an
	// allocation.
	maxWALString = 256
	// maxWALShards caps the decoded shard count for the same reason.
	maxWALShards = 1 << 16
)

// walEncode runs f over a snap.Writer and returns the payload bytes.
// Records do not carry their own CRC trailer — internal/wal frames one
// per record.
func walEncode(f func(w *snap.Writer)) []byte {
	var buf bytes.Buffer
	w := snap.NewWriter(&buf)
	f(w)
	return buf.Bytes()
}

func walWriteString(w *snap.Writer, s string) {
	if len(s) > maxWALString {
		s = s[:maxWALString]
	}
	w.U32(uint32(len(s)))
	w.Bytes([]byte(s))
}

func walReadString(r *snap.Reader) (string, error) {
	n := r.U32()
	if err := r.Err(); err != nil {
		return "", err
	}
	if n > maxWALString {
		return "", snap.Corruptf("serve wal: string of %d bytes (max %d)", n, maxWALString)
	}
	b := make([]byte, n)
	r.Bytes(b)
	return string(b), r.Err()
}

func walRecInit(shards, recorded int) []byte {
	return walEncode(func(w *snap.Writer) {
		w.U8(uint8(walOpInit))
		w.U32(uint32(shards))
		w.U32(uint32(recorded))
	})
}

func walRecLease(shard int, sh *shardState) []byte {
	return walEncode(func(w *snap.Writer) {
		w.U8(uint8(walOpLease))
		w.U32(uint32(shard))
		walWriteString(w, sh.token)
		walWriteString(w, sh.worker)
		w.I64(sh.expires.UnixNano())
		w.U32(uint32(sh.attempts))
	})
}

func walRecHeartbeat(shard int, sh *shardState) []byte {
	return walEncode(func(w *snap.Writer) {
		w.U8(uint8(walOpHeartbeat))
		w.U32(uint32(shard))
		walWriteString(w, sh.token)
		w.U32(uint32(sh.done))
		w.I64(sh.expires.UnixNano())
	})
}

func walRecRequeue(shard int) []byte {
	return walEncode(func(w *snap.Writer) {
		w.U8(uint8(walOpRequeue))
		w.U32(uint32(shard))
	})
}

func walRecShardDone(shard, recorded int) []byte {
	return walEncode(func(w *snap.Writer) {
		w.U8(uint8(walOpShardDone))
		w.U32(uint32(shard))
		w.U32(uint32(recorded))
	})
}

// walRecAbsorb records a partial absorb; requeued is the shard returned
// to pending by it, or -1 when only the recorded count moved (a stale
// upload from an expired lease).
func walRecAbsorb(requeued, recorded int) []byte {
	return walEncode(func(w *snap.Writer) {
		w.U8(uint8(walOpAbsorb))
		w.U32(uint32(int32(requeued)))
		w.U32(uint32(recorded))
	})
}

// walShardView is one shard's lease state as reconstructed from the WAL
// (shardState minus the plan-derived jobs slice, which replay re-derives
// from the manifest).
type walShardView struct {
	phase    shardPhase
	token    string
	worker   string
	expires  time.Time
	done     int
	attempts int
}

// walJobState is the lease-table state machine the WAL replays into. Its
// apply method is strict: records must describe transitions the live
// coordinator could actually have performed, in an order it could have
// performed them, or the log classifies as corrupt.
type walJobState struct {
	inited   bool
	shards   []walShardView
	recorded int
}

// shardRef decodes a shard index and bounds-checks it.
func (st *walJobState) shardRef(r *snap.Reader) (*walShardView, error) {
	k := r.U32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if !st.inited {
		return nil, snap.Corruptf("serve wal: record before init")
	}
	if int(k) >= len(st.shards) {
		return nil, snap.Corruptf("serve wal: shard %d out of range (have %d)", k, len(st.shards))
	}
	return &st.shards[k], nil
}

// apply folds one record payload into the state. It is the fn passed to
// wal.Open and the subject of FuzzWALReplay.
func (st *walJobState) apply(payload []byte) error {
	r := snap.NewReader(bytes.NewReader(payload))
	op := walOp(r.U8())
	if err := r.Err(); err != nil {
		return err
	}
	switch op {
	case walOpInit:
		n, rec := r.U32(), r.U32()
		if err := r.Err(); err != nil {
			return err
		}
		if st.inited {
			return snap.Corruptf("serve wal: duplicate init record")
		}
		if n == 0 || n > maxWALShards {
			return snap.Corruptf("serve wal: init names %d shards (max %d)", n, maxWALShards)
		}
		st.inited = true
		st.shards = make([]walShardView, n)
		for k := range st.shards {
			st.shards[k].phase = shardPending
		}
		st.recorded = int(rec)

	case walOpLease:
		sh, err := st.shardRef(r)
		if err != nil {
			return err
		}
		token, err := walReadString(r)
		if err != nil {
			return err
		}
		worker, err := walReadString(r)
		if err != nil {
			return err
		}
		expires, attempts := r.I64(), r.U32()
		if err := r.Err(); err != nil {
			return err
		}
		if sh.phase != shardPending {
			return snap.Corruptf("serve wal: lease of a %s shard", sh.phase)
		}
		if int(attempts) != sh.attempts+1 {
			return snap.Corruptf("serve wal: lease attempt %d after %d", attempts, sh.attempts)
		}
		sh.phase = shardLeased
		sh.token, sh.worker = token, worker
		sh.expires = time.Unix(0, expires)
		sh.done = 0
		sh.attempts = int(attempts)

	case walOpHeartbeat:
		sh, err := st.shardRef(r)
		if err != nil {
			return err
		}
		token, err := walReadString(r)
		if err != nil {
			return err
		}
		done, expires := r.U32(), r.I64()
		if err := r.Err(); err != nil {
			return err
		}
		if sh.phase != shardLeased || sh.token != token {
			return snap.Corruptf("serve wal: heartbeat against a lease it does not hold")
		}
		if int(done) < sh.done {
			return snap.Corruptf("serve wal: heartbeat progress went backwards (%d after %d)", done, sh.done)
		}
		sh.done = int(done)
		sh.expires = time.Unix(0, expires)

	case walOpRequeue:
		sh, err := st.shardRef(r)
		if err != nil {
			return err
		}
		if sh.phase != shardLeased {
			return snap.Corruptf("serve wal: requeue of a %s shard", sh.phase)
		}
		sh.phase = shardPending
		sh.token, sh.worker, sh.done = "", "", 0

	case walOpShardDone:
		sh, err := st.shardRef(r)
		if err != nil {
			return err
		}
		rec := r.U32()
		if err := r.Err(); err != nil {
			return err
		}
		if sh.phase == shardDone {
			return snap.Corruptf("serve wal: duplicate shard-done record")
		}
		if int(rec) < st.recorded {
			return snap.Corruptf("serve wal: recorded count went backwards (%d after %d)", rec, st.recorded)
		}
		sh.phase = shardDone
		sh.token, sh.worker, sh.done = "", "", 0
		st.recorded = int(rec)

	case walOpAbsorb:
		k := int(int32(r.U32()))
		rec := r.U32()
		if err := r.Err(); err != nil {
			return err
		}
		if !st.inited {
			return snap.Corruptf("serve wal: record before init")
		}
		if int(rec) < st.recorded {
			return snap.Corruptf("serve wal: recorded count went backwards (%d after %d)", rec, st.recorded)
		}
		if k != -1 {
			if k < 0 || k >= len(st.shards) {
				return snap.Corruptf("serve wal: shard %d out of range (have %d)", k, len(st.shards))
			}
			sh := &st.shards[k]
			if sh.phase != shardLeased {
				return snap.Corruptf("serve wal: absorb-requeue of a %s shard", sh.phase)
			}
			sh.phase = shardPending
			sh.token, sh.worker, sh.done = "", "", 0
		}
		st.recorded = int(rec)

	default:
		return snap.Corruptf("serve wal: unknown op %d", op)
	}
	// A record must be exactly its fields — trailing bytes mean a framing
	// bug or tampering.
	var one [1]byte
	if n, _ := r.Read(one[:]); n != 0 {
		return snap.Corruptf("serve wal: trailing bytes after op %d", op)
	}
	return nil
}

// walAppend journals one lease-state record for j. Callers hold j.mu
// (appends must serialize in transition order). A write failure disables
// the job's WAL — recovery then degrades to the store-only path — rather
// than failing the operation: the WAL is a durability optimization,
// never a correctness gate.
func (s *Server) walAppend(j *job, payload []byte) {
	if j.wal == nil {
		return
	}
	if err := j.wal.Append(payload); err != nil {
		s.opt.Logf("serve: job %.12s: lease WAL append failed — disabling (%v)", j.id, err)
		j.wal.Close()
		j.wal = nil
		return
	}
	s.met.walAppends.Inc()
}

// walRequeues journals the shards reapExpired just returned to pending.
// Callers hold j.mu.
func (s *Server) walRequeues(j *job, requeued []int) {
	for _, k := range requeued {
		s.walAppend(j, walRecRequeue(k))
	}
}

// walDrop closes and deletes j's WAL (terminal job, or lease state reset
// by a resubmission). Callers hold j.mu.
func (j *job) walDrop() {
	if j.wal != nil {
		j.wal.Remove()
		j.wal = nil
	}
}

// crashPoint names a persistence boundary in the coordinator's lease
// protocol — the instants right after a WAL append (or, for
// post-store-absorb, right after an upload became durable in the store
// but before its WAL record) where a crash leaves the most interesting
// recoverable state. The fault-injection harness arms crashHook to kill
// the coordinator at exactly these points.
type crashPoint string

const (
	crashPostInit        crashPoint = "post-init"
	crashPostLease       crashPoint = "post-lease"
	crashPostHeartbeat   crashPoint = "post-heartbeat"
	crashPostRequeue     crashPoint = "post-requeue"
	crashPostStoreAbsorb crashPoint = "post-store-absorb"
	crashPostAbsorb      crashPoint = "post-absorb"
	crashPostComplete    crashPoint = "post-complete"
)

// crashPoints lists every injection point, for harnesses sweeping them.
var crashPoints = []crashPoint{
	crashPostInit, crashPostLease, crashPostHeartbeat, crashPostRequeue,
	crashPostStoreAbsorb, crashPostAbsorb, crashPostComplete,
}

// crashAt invokes the fault-injection hook, if armed. Production servers
// never set crashHook; the harness's hook panics with a sentinel,
// simulating a coordinator death at exactly this persistence boundary.
// Call sites hold no server-wide locks (an abandoned job's mutex is
// unreachable garbage after the simulated crash).
func (s *Server) crashAt(p crashPoint) {
	if h := s.crashHook; h != nil {
		h(p)
	}
}

// recoverDist restores j's fleet lease state from its lease WAL, if one
// exists and still describes a live fleet. Returns true when j was
// restored as a fleet-claimed running job (it must then NOT re-enter the
// local queue). On any doubt — corrupt or semantically invalid log,
// shard partition mismatch (a changed -shard-size), store disagreement,
// or simply no lease still inside its TTL — the WAL is discarded and
// recovery falls back to the plain re-enqueue path, which is always
// safe: job outcomes live in the store, and the fleet re-claims on its
// next lease.
func (s *Server) recoverDist(j *job, now time.Time) bool {
	if s.opt.NoLeaseWAL {
		return false
	}
	path := filepath.Join(j.dir, leaseWALFile)
	if _, err := os.Stat(path); err != nil {
		return false
	}
	discard := func(lg *wal.Log, format string, args ...any) bool {
		s.met.walDiscarded.Inc()
		s.opt.Logf("serve: job %.12s: discarding lease WAL: "+format, append([]any{j.id}, args...)...)
		if lg != nil {
			lg.Remove()
		} else {
			os.Remove(path)
		}
		return false
	}

	var st walJobState
	lg, replayed, err := wal.Open(path, st.apply)
	s.met.walReplayed.Add(uint64(replayed))
	if err != nil {
		if lg != nil {
			lg.Close()
		}
		lg = nil
		return discard(nil, "%v", err)
	}
	if !st.inited {
		lg.Remove() // fresh or fully torn log: nothing to restore
		return false
	}
	plan, err := j.manifest.Plan()
	if err != nil {
		lg.Close()
		return false
	}
	n := (len(plan.Jobs) + s.opt.ShardSize - 1) / s.opt.ShardSize
	if n < 1 {
		n = 1
	}
	if n != len(st.shards) {
		return discard(lg, "journaled %d shards, current partition has %d (changed shard size?)", len(st.shards), n)
	}

	// Reconcile against the store — the durable truth for outcomes. The
	// WAL may lag it (a crash between an upload's absorb and its WAL
	// record) but must never lead it: a journaled-done shard the store
	// cannot corroborate means the store was tampered with or swapped,
	// and the whole log is untrustworthy.
	store, err := report.Open(j.dir)
	if err != nil {
		lg.Close()
		return false
	}
	defer store.Close()
	recorded := store.Len()
	shards := make([]shardState, n)
	live := 0
	for k := range shards {
		v := &st.shards[k]
		shards[k] = shardState{
			phase: v.phase, token: v.token, worker: v.worker,
			expires: v.expires, done: v.done, attempts: v.attempts,
			jobs: plan.ShardSlice(k, n),
		}
		complete := true
		for _, gj := range shards[k].jobs {
			if _, ok := store.Lookup(gj); !ok {
				complete = false
				break
			}
		}
		if v.phase == shardDone && !complete {
			return discard(lg, "shard %d journaled done but the store is missing its jobs", k)
		}
		if complete {
			shards[k].phase = shardDone
			shards[k].token, shards[k].worker, shards[k].done = "", "", 0
		} else if v.phase == shardLeased && v.expires.After(now) {
			live++
		}
	}
	if live == 0 {
		// Every lease (if any) was already dead when we came back: plain
		// recovery — re-enqueue and resume from the store — is strictly
		// better, and leaves the job claimable by pool and fleet alike.
		lg.Remove()
		return false
	}

	// The fleet is still out there. Requeue leases that died while we
	// were down (journaled, so a later replay stays linear) and re-arm
	// the live ones to a full TTL — the recovery moment is their new
	// heartbeat epoch, so a worker mid-replay gets its next renewal in.
	requeued, recovered := 0, 0
	for k := range shards {
		sh := &shards[k]
		if sh.phase != shardLeased {
			continue
		}
		if !sh.expires.After(now) {
			if err := lg.Append(walRecRequeue(k)); err == nil {
				s.met.walAppends.Inc()
			}
			sh.phase = shardPending
			sh.token, sh.worker, sh.done = "", "", 0
			requeued++
			continue
		}
		sh.expires = now.Add(s.opt.LeaseTTL)
		recovered++
	}
	s.met.walRecoveredLeases.Add(uint64(recovered))
	s.met.leasesExpired.Add(uint64(requeued))

	j.mu.Lock()
	j.state = StateRunning
	j.claim = claimFleet
	j.dequeued = true
	j.dist = &distJob{shards: shards, recorded: recorded}
	j.wal = lg
	j.done = j.fleetDone()
	j.mu.Unlock()
	s.opt.Logf("serve: job %.12s: lease WAL recovered (%d records: %d live leases re-armed, %d expired leases requeued, %d/%d jobs recorded)",
		j.id, replayed, recovered, requeued, recorded, j.total)
	return true
}
