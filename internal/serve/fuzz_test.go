package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
	"time"

	"obm/internal/snap"
	"obm/internal/wal"
)

// frameRecord frames one payload the way wal.Append does (length,
// payload, CRC — all little-endian), for building seed images in memory.
func frameRecord(p []byte) []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
	b = append(b, p...)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(p))
	return b
}

// validOpSequence is one legal record stream covering every op type.
func validOpSequence() [][]byte {
	sh := &shardState{
		phase: shardLeased, token: "tok-a", worker: "w0",
		expires: time.Unix(0, 1700000000_000000000), attempts: 1,
	}
	hb := *sh
	hb.done = 3
	return [][]byte{
		walRecInit(4, 2),
		walRecLease(1, sh),
		walRecHeartbeat(1, &hb),
		walRecRequeue(1),
		walRecAbsorb(-1, 5),
		walRecShardDone(0, 9),
	}
}

// FuzzWALReplay fuzzes the full recovery decode path — wal.Decode framing
// plus the strict walJobState replay — with the invariants recovery
// depends on: never panic, never allocate from attacker-sized lengths,
// classify every non-torn defect as snap.ErrCorrupt, decode
// deterministically, and keep the torn-tail prefix property (the bytes
// before goodEnd always re-decode cleanly to the same state).
func FuzzWALReplay(f *testing.F) {
	recs := validOpSequence()
	full := fuzzSeedLog(f, recs...)
	f.Add(full)
	f.Add(full[:len(full)-3])                        // torn tail inside the last record
	f.Add(full[:9])                                  // torn just past the header
	f.Add([]byte{})                                  // empty file
	f.Add([]byte("OBMWAL1\n"))                       // header only
	f.Add([]byte("not a wal at all"))                // bad header
	f.Add(fuzzSeedLog(f, recs[1]))                   // record before init
	f.Add(fuzzSeedLog(f, recs[0], recs[0]))          // duplicate init
	f.Add(fuzzSeedLog(f, recs[0], recs[1], recs[1])) // double lease of one shard
	f.Add(fuzzSeedLog(f, recs[0], recs[3]))          // requeue of a pending shard
	corrupt := append([]byte(nil), full...)
	corrupt[12] ^= 0xff
	f.Add(corrupt) // CRC mismatch mid-file

	f.Fuzz(func(t *testing.T, data []byte) {
		var st walJobState
		goodEnd, n, err := wal.Decode(data, st.apply)
		if goodEnd < 0 || goodEnd > len(data) {
			t.Fatalf("goodEnd %d out of range [0,%d]", goodEnd, len(data))
		}
		if n < 0 {
			t.Fatalf("negative record count %d", n)
		}
		if err != nil && !errors.Is(err, snap.ErrCorrupt) {
			t.Fatalf("decode error is not ErrCorrupt: %v", err)
		}
		if st.inited && (len(st.shards) == 0 || len(st.shards) > maxWALShards) {
			t.Fatalf("replayed state has %d shards", len(st.shards))
		}

		// Determinism: the same bytes replay to the same verdict and state.
		var st2 walJobState
		goodEnd2, n2, err2 := wal.Decode(data, st2.apply)
		if goodEnd2 != goodEnd || n2 != n || (err == nil) != (err2 == nil) {
			t.Fatalf("non-deterministic decode: (%d,%d,%v) then (%d,%d,%v)", goodEnd, n, err, goodEnd2, n2, err2)
		}

		// Prefix property: the good region is a self-contained log — what
		// recovery trims to must itself recover, identically.
		if err == nil {
			var st3 walJobState
			goodEnd3, n3, err3 := wal.Decode(data[:goodEnd], st3.apply)
			if err3 != nil || goodEnd3 != goodEnd || n3 != n {
				t.Fatalf("trimmed prefix does not re-decode: (%d,%d,%v), want (%d,%d,nil)", goodEnd3, n3, err3, goodEnd, n)
			}
			if st3.inited != st.inited || st3.recorded != st.recorded || len(st3.shards) != len(st.shards) {
				t.Fatal("trimmed prefix replays to a different state")
			}
			for k := range st.shards {
				if st3.shards[k] != st.shards[k] {
					t.Fatalf("trimmed prefix shard %d differs", k)
				}
			}
		}
	})
}

// fuzzSeedLog frames payloads for seeding (f.Add needs bytes before any
// t.TempDir exists, so this uses an in-memory frame, not a file).
func fuzzSeedLog(f *testing.F, payloads ...[]byte) []byte {
	f.Helper()
	var buf bytes.Buffer
	buf.WriteString("OBMWAL1\n")
	for _, p := range payloads {
		buf.Write(frameRecord(p))
	}
	return buf.Bytes()
}
