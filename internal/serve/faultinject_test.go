package serve

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"obm/internal/sim"
)

// The deterministic fault-injection harness.
//
// For every WAL crash point (see crashPoint in wal.go) the sweep drives a
// full fleet run against a coordinator armed to die — panic through
// crashHook — at exactly that persistence boundary, "restarts" it (a
// fresh Server over the same store root, exactly what a process restart
// does), finishes the run, and requires the final summary.csv to be
// byte-identical to an uninterrupted single-process RunGrid of the same
// grid. The driver is single-threaded and the crash points are reached
// by construction (a stranded lease forces a requeue, a failed partial
// upload forces an absorb, full uploads force completions), so every
// sweep run exercises every recovery path deterministically — no timing,
// no sleeps, no luck.

// crashSignal is the sentinel panic value crashHook throws; anything else
// escaping a coordinator call is a real bug and re-panics.
type crashSignal struct{ point crashPoint }

// armCrash makes s die at the next occurrence of p. Returns the fired
// flag so the sweep can assert the point actually occurred.
func armCrash(s *Server, p crashPoint) *atomic.Bool {
	fired := new(atomic.Bool)
	s.crashHook = func(got crashPoint) {
		if got == p && fired.CompareAndSwap(false, true) {
			panic(crashSignal{got})
		}
	}
	return fired
}

// crashing runs one coordinator call, converting an injected crash into a
// boolean. The crashed coordinator object is abandoned afterwards, like a
// dead process — the store root is the only thing that survives.
func crashing(t *testing.T, f func()) (crashed bool) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(crashSignal); ok {
				crashed = true
				return
			}
			panic(r)
		}
	}()
	f()
	return false
}

// faultFamilies are the four paper trace families the sweep runs against.
var faultFamilies = []string{"uniform", "facebook-database", "microsoft", "phase-shift"}

// faultSpecs is a small grid (8 jobs → 3 shards at ShardSize 3) for one
// family.
func faultSpecs(family string) []sim.ScenarioSpec {
	return []sim.ScenarioSpec{{
		Name: "fault-" + family, Family: family,
		Racks: 8, Requests: 600, Seed: 77,
		Bs: []int{2, 3}, Reps: 2,
		Algs: []string{"r-bma", "oblivious"},
	}}
}

const (
	faultShardSize   = 3
	faultCurvePoints = 2
)

// faultCoordinator builds a fleet-only server over root. No t.Cleanup
// shutdown: most of these servers are deliberately crashed and abandoned.
func faultCoordinator(t *testing.T, root string) *Server {
	t.Helper()
	s, err := New(Options{
		StoreRoot: root, Workers: -1,
		ShardSize: faultShardSize, CurvePoints: faultCurvePoints,
		LeaseTTL: time.Hour, // expiry is driven explicitly, never by the clock
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// buildShardLogs executes every shard of the grid once, offline, through
// a throwaway coordinator, and returns the raw shard logs by index. The
// sweep replays these logs against crashed-and-recovered coordinators —
// determinism makes them valid for every attempt.
func buildShardLogs(t *testing.T, family string) map[int][]byte {
	t.Helper()
	s := faultCoordinator(t, t.TempDir())
	defer s.Shutdown(t.Context())
	st, err := s.Submit(faultSpecs(family))
	if err != nil {
		t.Fatal(err)
	}
	j, _ := s.lookup(st.ID)
	logs := make(map[int][]byte)
	for {
		l, err := s.lease(j, "builder")
		if errors.Is(err, ErrNoLease) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		logs[l.Shard] = runLeasedShard(t, t.TempDir(), l)
	}
	if len(logs) == 0 {
		t.Fatal("no shards leased while building logs")
	}
	return logs
}

// expireLease rewinds one leased shard's in-memory deadline so the next
// reap requeues it — a TTL lapse without the wall-clock wait. Only the
// in-memory view moves (exactly like real time passing); the WAL still
// holds the original expiry and learns of the lapse from the reap's
// requeue record, the same order production follows.
func expireLease(j *job, shard int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dist != nil && shard < len(j.dist.shards) && j.dist.shards[shard].phase == shardLeased {
		j.dist.shards[shard].expires = time.Now().Add(-time.Hour)
	}
}

// driveFleet runs the scripted fleet protocol against s until the job
// finishes or an injected crash kills the coordinator. The script hits
// every crash point by construction: leases (init + lease), a stranded
// lease reaped on the next request (requeue), heartbeats, one failed
// partial upload (store-absorb + absorb), then full completions
// (store-absorb + complete). Every step tolerates state left behind by a
// previous attempt's crash — unknown tokens, recovered leases, shards
// already done.
func driveFleet(t *testing.T, s *Server, j *job, logs map[int][]byte) (done bool) {
	t.Helper()
	leases := make(map[int]Lease)

	// Lease everything still pending.
	for {
		var l Lease
		var err error
		if crashing(t, func() { l, err = s.lease(j, "driver") }) {
			return false
		}
		if errors.Is(err, ErrNoLease) {
			break
		}
		if err != nil {
			t.Fatalf("lease: %v", err)
		}
		leases[l.Shard] = l
	}

	// Strand the lowest-index lease we hold, then touch the coordinator:
	// the reap requeues it (journaled) and the same call re-grants it.
	doomed := -1
	for k := range leases {
		if doomed == -1 || k < doomed {
			doomed = k
		}
	}
	if doomed >= 0 {
		expireLease(j, doomed)
		var l Lease
		var err error
		if crashing(t, func() { l, err = s.lease(j, "driver") }) {
			return false
		}
		if err == nil {
			leases[l.Shard] = l
		} else if !errors.Is(err, ErrNoLease) {
			t.Fatalf("re-lease after expiry: %v", err)
		}
	}

	// Heartbeat every lease we know the token for.
	for k, l := range leases {
		var err error
		if crashing(t, func() { _, err = s.heartbeat(j, k, l.Token, 1) }) {
			return false
		}
		if err != nil && !errors.Is(err, ErrLeaseLost) {
			t.Fatalf("heartbeat shard %d: %v", k, err)
		}
	}

	// One failed partial upload: half the doomed shard's log under its
	// current token — absorbed, then requeued.
	if doomed >= 0 {
		blob := logs[doomed]
		half := blob[:bytes.IndexByte(blob, '\n')+1]
		tok := leases[doomed].Token
		var err error
		if crashing(t, func() { _, err = s.completeShard(j, doomed, tok, "driver", "injected failure", bytes.NewReader(half)) }) {
			return false
		}
		if err != nil {
			t.Fatalf("partial upload: %v", err)
		}
	}

	// Full completions for every shard, in index order. Tokens are
	// irrelevant for complete uploads — the store's verdict decides —
	// so attempts after a crash need not own the recovered leases.
	for k := 0; k < len(logs); k++ {
		tok := leases[k].Token
		var err error
		if crashing(t, func() { _, err = s.completeShard(j, k, tok, "driver", "", bytes.NewReader(logs[k])) }) {
			return false
		}
		if err != nil {
			t.Fatalf("complete shard %d: %v", k, err)
		}
	}

	st := j.status()
	if st.State != StateDone {
		t.Fatalf("all shards uploaded but job is %+v", st)
	}
	return true
}

// TestFaultInjectionSweep is the acceptance harness: for every family and
// every crash point, kill the coordinator at that point mid-run, restart
// it over the same root, finish the run, and require the summary to be
// byte-identical to the uninterrupted reference. In -short mode (the race
// job) only the uniform family runs; the dedicated smoke job runs the
// full 4-family sweep.
func TestFaultInjectionSweep(t *testing.T) {
	families := faultFamilies
	if testing.Short() {
		families = families[:1]
	}
	for _, family := range families {
		family := family
		t.Run(family, func(t *testing.T) {
			want := directSummary(t, faultSpecs(family), faultCurvePoints)
			logs := buildShardLogs(t, family)
			for _, point := range crashPoints {
				point := point
				t.Run(string(point), func(t *testing.T) {
					root := t.TempDir()
					s := faultCoordinator(t, root)
					st, err := s.Submit(faultSpecs(family))
					if err != nil {
						t.Fatal(err)
					}
					j, _ := s.lookup(st.ID)
					fired := armCrash(s, point)

					restarts := 0
					for !driveFleet(t, s, j, logs) {
						if restarts++; restarts > 3 {
							t.Fatalf("more than %d crashes for a single armed point", restarts)
						}
						s = faultCoordinator(t, root) // the restart
						var ok bool
						if j, ok = s.lookup(st.ID); !ok {
							t.Fatal("job lost across restart")
						}
					}
					if !fired.Load() {
						t.Fatalf("crash point %s never fired: the sweep is not covering it", point)
					}
					if restarts != 1 {
						t.Fatalf("restarts = %d, want exactly 1", restarts)
					}
					if s.met.walReplayed.Value() == 0 && point != crashPostInit {
						t.Fatalf("recovered coordinator replayed no WAL records after %s", point)
					}

					got := summaryBytes(t, s, j)
					if !bytes.Equal(got, want) {
						t.Fatalf("summary after crash at %s differs from uninterrupted run:\n--- recovered\n%s--- direct\n%s", point, got, want)
					}
					s.Shutdown(t.Context())
				})
			}
		})
	}
}

// summaryBytes reads the job's rendered summary, rendering it first if
// the run finished across a crash that skipped the render step.
func summaryBytes(t *testing.T, s *Server, j *job) []byte {
	t.Helper()
	path := filepath.Join(j.dir, "summary.csv")
	if _, err := os.Stat(path); os.IsNotExist(err) {
		if err := s.renderJob(j); err != nil {
			t.Fatalf("rendering recovered job: %v", err)
		}
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestFaultInjectionDoubleCrash arms two successive crashes (the second
// on the recovered coordinator) at the two most delicate points — after a
// store absorb whose WAL record never landed, then after a completion
// record — and still requires byte-identity. Recovery must be as
// crash-tolerant as the original run.
func TestFaultInjectionDoubleCrash(t *testing.T) {
	family := "uniform"
	want := directSummary(t, faultSpecs(family), faultCurvePoints)
	logs := buildShardLogs(t, family)

	root := t.TempDir()
	s := faultCoordinator(t, root)
	st, err := s.Submit(faultSpecs(family))
	if err != nil {
		t.Fatal(err)
	}
	j, _ := s.lookup(st.ID)

	points := []crashPoint{crashPostStoreAbsorb, crashPostComplete}
	armed := 0
	fired := armCrash(s, points[armed])
	restarts := 0
	for !driveFleet(t, s, j, logs) {
		if !fired.Load() {
			t.Fatal("crash without the armed point firing")
		}
		if restarts++; restarts > 4 {
			t.Fatal("runaway crash loop")
		}
		s = faultCoordinator(t, root)
		var ok bool
		if j, ok = s.lookup(st.ID); !ok {
			t.Fatal("job lost across restart")
		}
		if armed++; armed < len(points) {
			fired = armCrash(s, points[armed])
		}
	}
	if restarts != len(points) {
		t.Fatalf("restarts = %d, want %d", restarts, len(points))
	}
	got := summaryBytes(t, s, j)
	if !bytes.Equal(got, want) {
		t.Fatalf("summary after double crash differs:\n--- recovered\n%s--- direct\n%s", got, want)
	}
	s.Shutdown(t.Context())
}

// faultPointsAreExhaustive pins the sweep to the seam: adding a crash
// point to the server without adding it to the sweep list must fail
// loudly here rather than silently shrink coverage.
func TestFaultPointsAreExhaustive(t *testing.T) {
	want := map[crashPoint]bool{
		crashPostInit: true, crashPostLease: true, crashPostHeartbeat: true,
		crashPostRequeue: true, crashPostStoreAbsorb: true, crashPostAbsorb: true,
		crashPostComplete: true,
	}
	if len(crashPoints) != len(want) {
		t.Fatalf("crashPoints has %d entries, want %d", len(crashPoints), len(want))
	}
	for _, p := range crashPoints {
		if !want[p] {
			t.Fatalf("unknown crash point %q in sweep list", p)
		}
	}
}
