package graph

import (
	"container/heap"
	"fmt"
	"math"
)

// DistanceMatrix holds all-pairs shortest-path lengths for a graph. It is
// the ℓ lookup of the paper's cost model: Dist(u, v) is the hop count of a
// shortest path between u and v over the static network.
type DistanceMatrix struct {
	n    int
	d    []int32
	diam int
}

// Unreachable is the distance reported between nodes in different components.
const Unreachable = int(math.MaxInt32)

// AllPairsShortestPaths computes hop-count distances with one BFS per node.
// Runtime O(n·(n+m)), memory O(n²) (int32 entries).
func AllPairsShortestPaths(g *Graph) *DistanceMatrix {
	n := g.N()
	dm := &DistanceMatrix{n: n, d: make([]int32, n*n)}
	for i := range dm.d {
		dm.d[i] = math.MaxInt32
	}
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		row := dm.d[s*n : (s+1)*n]
		row[s] = 0
		queue = queue[:0]
		queue = append(queue, s)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			du := row[u]
			for _, v := range g.Neighbors(u) {
				if row[v] == math.MaxInt32 {
					row[v] = du + 1
					queue = append(queue, v)
				}
			}
		}
	}
	dm.diam = 0
	for _, v := range dm.d {
		if v != math.MaxInt32 && int(v) > dm.diam {
			dm.diam = int(v)
		}
	}
	return dm
}

// N returns the node count the matrix was built for.
func (m *DistanceMatrix) N() int { return m.n }

// Dist returns the shortest-path hop count between u and v, or Unreachable
// if they are in different components. It panics on out-of-range nodes.
func (m *DistanceMatrix) Dist(u, v int) int {
	if u < 0 || u >= m.n || v < 0 || v >= m.n {
		panic(fmt.Sprintf("graph: Dist(%d,%d) out of range [0,%d)", u, v, m.n))
	}
	d := m.d[u*m.n+v]
	if d == math.MaxInt32 {
		return Unreachable
	}
	return int(d)
}

// Diameter returns the largest finite pairwise distance.
func (m *DistanceMatrix) Diameter() int { return m.diam }

// MaxPairDistance returns ℓmax restricted to a node subset of size k
// (nodes 0..k-1), the quantity entering the competitive ratio γ = 1 + ℓmax/α.
func (m *DistanceMatrix) MaxPairDistance(k int) int {
	if k > m.n {
		k = m.n
	}
	best := 0
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			if d := m.Dist(u, v); d != Unreachable && d > best {
				best = d
			}
		}
	}
	return best
}

// item is a priority-queue entry for Dijkstra.
type item struct {
	node int
	dist float64
}

type pq []item

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(item)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// Dijkstra computes single-source shortest paths with per-edge weights given
// by weight(u, v) (must be >= 0). Returns distances, with math.Inf(1) for
// unreachable nodes. Provided for weighted-topology extensions; the paper's
// cost model is unweighted and uses AllPairsShortestPaths.
func Dijkstra(g *Graph, src int, weight func(u, v int) float64) []float64 {
	n := g.N()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	h := &pq{{src, 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(item)
		if it.dist > dist[it.node] {
			continue
		}
		for _, v := range g.Neighbors(it.node) {
			w := weight(it.node, v)
			if w < 0 {
				panic("graph: Dijkstra with negative edge weight")
			}
			if nd := it.dist + w; nd < dist[v] {
				dist[v] = nd
				heap.Push(h, item{v, nd})
			}
		}
	}
	return dist
}
