package graph

import (
	"testing"
	"testing/quick"

	"obm/internal/stats"
)

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge should be undirected")
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Fatal("degree bookkeeping wrong")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(-1, 2); err == nil {
		t.Error("negative endpoint accepted")
	}
	if err := g.AddEdge(0, 3); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	g.MustAddEdge(0, 1)
	if err := g.AddEdge(1, 0); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestEdgesSorted(t *testing.T) {
	g := New(4)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 3)
	es := g.Edges()
	want := [][2]int{{0, 1}, {1, 3}, {2, 3}}
	if len(es) != len(want) {
		t.Fatalf("Edges = %v", es)
	}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("Edges = %v, want %v", es, want)
		}
	}
}

func TestConnected(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(2, 3)
	if g.Connected() {
		t.Fatal("two components reported connected")
	}
	g.MustAddEdge(1, 2)
	if !g.Connected() {
		t.Fatal("path graph reported disconnected")
	}
	if !New(0).Connected() || !New(1).Connected() {
		t.Fatal("trivial graphs should be connected")
	}
}

func TestAPSPOnPath(t *testing.T) {
	g := New(5)
	for i := 0; i < 4; i++ {
		g.MustAddEdge(i, i+1)
	}
	m := AllPairsShortestPaths(g)
	for u := 0; u < 5; u++ {
		for v := 0; v < 5; v++ {
			want := v - u
			if want < 0 {
				want = -want
			}
			if m.Dist(u, v) != want {
				t.Fatalf("Dist(%d,%d) = %d, want %d", u, v, m.Dist(u, v), want)
			}
		}
	}
	if m.Diameter() != 4 {
		t.Fatalf("Diameter = %d", m.Diameter())
	}
}

func TestAPSPDisconnected(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	m := AllPairsShortestPaths(g)
	if m.Dist(0, 2) != Unreachable {
		t.Fatal("expected Unreachable across components")
	}
}

func TestDijkstraMatchesBFSOnUnitWeights(t *testing.T) {
	top := RandomRegular(24, 3, 7)
	g := top.Graph()
	m := AllPairsShortestPaths(g)
	dist := Dijkstra(g, 0, func(u, v int) float64 { return 1 })
	for v := 0; v < g.N(); v++ {
		if int(dist[v]) != m.Dist(0, v) {
			t.Fatalf("node %d: dijkstra %v, bfs %d", v, dist[v], m.Dist(0, v))
		}
	}
}

func TestFatTreeStructure(t *testing.T) {
	k := 4
	top := FatTree(k)
	g := top.Graph()
	wantNodes := k*k/2 + k*k/2 + k*k/4
	if g.N() != wantNodes {
		t.Fatalf("nodes = %d, want %d", g.N(), wantNodes)
	}
	if top.NumRacks() != k*k/2 {
		t.Fatalf("racks = %d, want %d", top.NumRacks(), k*k/2)
	}
	if !g.Connected() {
		t.Fatal("fat-tree must be connected")
	}
	m := top.Metric()
	// Same pod -> 2, different pod -> 4.
	if d := m.Dist(0, 1); d != 2 {
		t.Fatalf("same-pod rack distance = %d, want 2", d)
	}
	if d := m.Dist(0, k/2); d != 4 {
		t.Fatalf("cross-pod rack distance = %d, want 4", d)
	}
	if m.Max() != 4 {
		t.Fatalf("ℓmax = %d, want 4", m.Max())
	}
}

func TestFatTreeRejectsOddK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on odd k")
		}
	}()
	FatTree(3)
}

func TestFatTreeRacksCount(t *testing.T) {
	for _, n := range []int{1, 7, 50, 100} {
		top := FatTreeRacks(n)
		if top.NumRacks() != n {
			t.Fatalf("FatTreeRacks(%d) has %d racks", n, top.NumRacks())
		}
		m := top.Metric()
		if n > 1 && (m.Max() != 2 && m.Max() != 4) {
			t.Fatalf("fat-tree ℓmax = %d", m.Max())
		}
	}
}

func TestLeafSpineDistances(t *testing.T) {
	top := LeafSpine(6, 3)
	m := top.Metric()
	for u := 0; u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			if m.Dist(u, v) != 2 {
				t.Fatalf("leaf-spine Dist(%d,%d) = %d, want 2", u, v, m.Dist(u, v))
			}
		}
	}
}

func TestStarDistances(t *testing.T) {
	top := Star(5)
	m := top.Metric()
	if m.Dist(0, 3) != 1 {
		t.Fatal("hub-leaf distance must be 1")
	}
	if m.Dist(1, 2) != 2 {
		t.Fatal("leaf-leaf distance must be 2")
	}
}

func TestRingDiameter(t *testing.T) {
	top := Ring(8)
	m := top.Metric()
	if m.Max() != 4 {
		t.Fatalf("ring(8) ℓmax = %d, want 4", m.Max())
	}
	if m.Dist(0, 3) != 3 || m.Dist(0, 5) != 3 {
		t.Fatal("ring wrap-around distance wrong")
	}
}

func TestTorusDistances(t *testing.T) {
	top := Torus2D(4, 5)
	m := top.Metric()
	// (0,0) to (2,2): 2 + 2 = 4 hops.
	if d := m.Dist(0, 2*5+2); d != 4 {
		t.Fatalf("torus distance = %d, want 4", d)
	}
}

func TestHypercubeDistanceIsHamming(t *testing.T) {
	top := Hypercube(4)
	m := top.Metric()
	for u := 0; u < 16; u++ {
		for v := 0; v < 16; v++ {
			x := u ^ v
			ham := 0
			for x != 0 {
				ham += x & 1
				x >>= 1
			}
			if m.Dist(u, v) != ham {
				t.Fatalf("hypercube Dist(%d,%d) = %d, want %d", u, v, m.Dist(u, v), ham)
			}
		}
	}
}

func TestCompleteAllOnes(t *testing.T) {
	m := Complete(6).Metric()
	if m.Max() != 1 || m.AverageDistance() != 1 {
		t.Fatal("complete graph distances must all be 1")
	}
}

func TestRandomRegularIsRegularAndConnected(t *testing.T) {
	top := RandomRegular(30, 4, 99)
	g := top.Graph()
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) != 4 {
			t.Fatalf("node %d degree %d, want 4", u, g.Degree(u))
		}
	}
	if !g.Connected() {
		t.Fatal("random regular graph disconnected")
	}
}

func TestRandomRegularDeterministic(t *testing.T) {
	a := RandomRegular(20, 3, 5).Graph().Edges()
	b := RandomRegular(20, 3, 5).Graph().Edges()
	if len(a) != len(b) {
		t.Fatal("same seed, different edge count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
}

func TestUniformMetric(t *testing.T) {
	m := UniformMetric(5, 3)
	if m.Dist(0, 0) != 0 || m.Dist(1, 4) != 3 || m.Max() != 3 {
		t.Fatal("uniform metric wrong")
	}
}

func TestMetricSymmetryProperty(t *testing.T) {
	top := FatTreeRacks(20)
	m := top.Metric()
	if err := quick.Check(func(a, b uint8) bool {
		u, v := int(a)%20, int(b)%20
		return m.Dist(u, v) == m.Dist(v, u)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMetricTriangleInequality(t *testing.T) {
	top := RandomRegular(16, 3, 11)
	m := top.Metric()
	r := stats.NewRand(1)
	for i := 0; i < 2000; i++ {
		u, v, w := r.Intn(16), r.Intn(16), r.Intn(16)
		if m.Dist(u, w) > m.Dist(u, v)+m.Dist(v, w) {
			t.Fatalf("triangle inequality violated at (%d,%d,%d)", u, v, w)
		}
	}
}

func TestHistogramCountsAllPairs(t *testing.T) {
	top := FatTreeRacks(10)
	m := top.Metric()
	h := m.Histogram()
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 10*9/2 {
		t.Fatalf("histogram covers %d pairs, want 45", total)
	}
}
