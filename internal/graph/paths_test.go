package graph

import (
	"testing"

	"obm/internal/stats"
)

func TestPathEndpointsAndLength(t *testing.T) {
	top := FatTreeRacks(20)
	m := top.Metric()
	oracle := top.Paths()
	r := stats.NewRand(3)
	for trial := 0; trial < 500; trial++ {
		u, v := r.Intn(20), r.Intn(20)
		if u == v {
			continue
		}
		path := oracle.Path(u, v)
		if path[0] != top.RackNode(u) || path[len(path)-1] != top.RackNode(v) {
			t.Fatalf("path endpoints wrong: %v for racks %d,%d", path, u, v)
		}
		if len(path)-1 != m.Dist(u, v) {
			t.Fatalf("path length %d != metric distance %d", len(path)-1, m.Dist(u, v))
		}
		// Consecutive nodes must be adjacent in the graph.
		for i := 1; i < len(path); i++ {
			if !top.Graph().HasEdge(path[i-1], path[i]) {
				t.Fatalf("path step %d-%d not an edge", path[i-1], path[i])
			}
		}
	}
}

func TestVisitPathEdgesMatchesPath(t *testing.T) {
	top := Ring(9)
	oracle := top.Paths()
	for u := 0; u < 9; u++ {
		for v := 0; v < 9; v++ {
			if u == v {
				continue
			}
			var count int
			oracle.VisitPathEdges(u, v, func(a, b int) { count++ })
			if want := len(oracle.Path(u, v)) - 1; count != want {
				t.Fatalf("VisitPathEdges(%d,%d) visited %d edges, want %d", u, v, count, want)
			}
		}
	}
}

func TestPathSelfIsTrivial(t *testing.T) {
	top := Star(4)
	oracle := top.Paths()
	p := oracle.Path(2, 2)
	if len(p) != 1 {
		t.Fatalf("self path = %v", p)
	}
	oracle.VisitPathEdges(2, 2, func(a, b int) {
		t.Fatal("self path should visit no edges")
	})
}

func TestPathPanicsOutOfRange(t *testing.T) {
	top := Star(4)
	oracle := top.Paths()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	oracle.Path(0, 99)
}

func TestStarPathsGoThroughHub(t *testing.T) {
	top := Star(6)
	oracle := top.Paths()
	// Leaf racks are 1..6 (rack ids equal node ids in Star).
	path := oracle.Path(2, 5)
	if len(path) != 3 || path[1] != 0 {
		t.Fatalf("leaf-leaf path should pass the hub: %v", path)
	}
}
