package graph

import (
	"fmt"

	"obm/internal/stats"
)

// Topology bundles a static network with the subset of nodes that act as
// racks (top-of-rack switches): the endpoints between which reconfigurable
// matching edges may be installed. Non-rack nodes (aggregation and core
// switches) only participate in routing.
type Topology struct {
	g     *Graph
	racks []int
	name  string
}

// Graph returns the underlying static network.
func (t *Topology) Graph() *Graph { return t.g }

// NumRacks returns the number of racks.
func (t *Topology) NumRacks() int { return len(t.racks) }

// RackNode returns the graph node id of rack i.
func (t *Topology) RackNode(i int) int { return t.racks[i] }

// Name returns a human-readable topology name.
func (t *Topology) Name() string { return t.name }

// Metric is the rack-to-rack hop-count distance oracle ℓ of the paper's cost
// model, restricted to rack indices 0..NumRacks-1.
type Metric struct {
	n   int
	d   []int32
	max int
}

// Metric computes rack-to-rack distances with one BFS per rack over the full
// static network. It panics if any two racks are disconnected.
func (t *Topology) Metric() *Metric {
	nr := len(t.racks)
	m := &Metric{n: nr, d: make([]int32, nr*nr)}
	n := t.g.N()
	dist := make([]int32, n)
	queue := make([]int, 0, n)
	rackIndex := make(map[int]int, nr)
	for i, v := range t.racks {
		rackIndex[v] = i
	}
	for i, s := range t.racks {
		for j := range dist {
			dist[j] = -1
		}
		dist[s] = 0
		queue = queue[:0]
		queue = append(queue, s)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range t.g.Neighbors(u) {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
		row := m.d[i*nr : (i+1)*nr]
		for v, ri := range rackIndex {
			if dist[v] < 0 {
				panic(fmt.Sprintf("graph: racks %d and %d disconnected", i, ri))
			}
			row[ri] = dist[v]
			if int(dist[v]) > m.max {
				m.max = int(dist[v])
			}
		}
	}
	return m
}

// N returns the number of racks covered by the metric.
func (m *Metric) N() int { return m.n }

// Dist returns the static-network hop count between racks u and v.
func (m *Metric) Dist(u, v int) int { return int(m.d[u*m.n+v]) }

// Max returns ℓmax, the largest rack-to-rack distance.
func (m *Metric) Max() int { return m.max }

// UniformMetric returns a metric with Dist(u,v) = d for all u != v, used by
// the uniform-case analysis (d = 1) and by star-topology shortcuts.
func UniformMetric(n, d int) *Metric {
	m := &Metric{n: n, d: make([]int32, n*n), max: d}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				m.d[u*n+v] = int32(d)
			}
		}
	}
	if n <= 1 {
		m.max = 0
	}
	return m
}

// FatTree builds a standard k-ary fat-tree (Al-Fares et al.): k pods, each
// with k/2 edge (ToR) and k/2 aggregation switches, plus (k/2)² core
// switches. Racks are the edge switches: k²/2 in total. Rack distances are
// 2 within a pod and 4 across pods. k must be even and >= 2.
func FatTree(k int) *Topology {
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("graph: FatTree requires even k >= 2, got %d", k))
	}
	half := k / 2
	numEdge := k * half
	numAgg := k * half
	numCore := half * half
	g := New(numEdge + numAgg + numCore)
	edgeID := func(pod, i int) int { return pod*half + i }
	aggID := func(pod, i int) int { return numEdge + pod*half + i }
	coreID := func(i, j int) int { return numEdge + numAgg + i*half + j }
	for pod := 0; pod < k; pod++ {
		// Full bipartite edge<->agg within the pod.
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				g.MustAddEdge(edgeID(pod, e), aggID(pod, a))
			}
		}
		// Aggregation switch a of each pod connects to core row a.
		for a := 0; a < half; a++ {
			for j := 0; j < half; j++ {
				g.MustAddEdge(aggID(pod, a), coreID(a, j))
			}
		}
	}
	racks := make([]int, numEdge)
	for i := range racks {
		racks[i] = i
	}
	return &Topology{g: g, racks: racks, name: fmt.Sprintf("fat-tree(k=%d)", k)}
}

// FatTreeRacks builds the smallest fat-tree with at least n racks and keeps
// only the first n edge switches as racks (the paper's "fat-tree with 100
// nodes" / "50 nodes" setups). The remaining switches still route.
func FatTreeRacks(n int) *Topology {
	if n < 1 {
		panic("graph: FatTreeRacks requires n >= 1")
	}
	k := 2
	for k*k/2 < n {
		k += 2
	}
	t := FatTree(k)
	t.racks = t.racks[:n]
	t.name = fmt.Sprintf("fat-tree(k=%d, racks=%d)", k, n)
	return t
}

// LeafSpine builds a two-tier Clos: every leaf connects to every spine.
// Racks are the leaves; any two racks are at distance 2.
func LeafSpine(leaves, spines int) *Topology {
	if leaves < 1 || spines < 1 {
		panic("graph: LeafSpine requires leaves, spines >= 1")
	}
	g := New(leaves + spines)
	for l := 0; l < leaves; l++ {
		for s := 0; s < spines; s++ {
			g.MustAddEdge(l, leaves+s)
		}
	}
	racks := make([]int, leaves)
	for i := range racks {
		racks[i] = i
	}
	return &Topology{g: g, racks: racks, name: fmt.Sprintf("leaf-spine(%d,%d)", leaves, spines)}
}

// Star builds a star on n+1 nodes: node 0 is the hub, nodes 1..n are leaves.
// All n+1 nodes are racks. This is the topology of the paper's lower-bound
// construction (Lemma 1): requests {v0, vi} have ℓ = 1.
func Star(nLeaves int) *Topology {
	if nLeaves < 1 {
		panic("graph: Star requires nLeaves >= 1")
	}
	g := New(nLeaves + 1)
	for i := 1; i <= nLeaves; i++ {
		g.MustAddEdge(0, i)
	}
	racks := make([]int, nLeaves+1)
	for i := range racks {
		racks[i] = i
	}
	return &Topology{g: g, racks: racks, name: fmt.Sprintf("star(%d)", nLeaves)}
}

// Ring builds a cycle on n >= 3 nodes; all nodes are racks.
func Ring(n int) *Topology {
	if n < 3 {
		panic("graph: Ring requires n >= 3")
	}
	g := New(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n)
	}
	return &Topology{g: g, racks: allNodes(n), name: fmt.Sprintf("ring(%d)", n)}
}

// Torus2D builds a rows×cols wrap-around grid; all nodes are racks.
// Both dimensions must be >= 3 to avoid parallel edges.
func Torus2D(rows, cols int) *Topology {
	if rows < 3 || cols < 3 {
		panic("graph: Torus2D requires rows, cols >= 3")
	}
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.MustAddEdge(id(r, c), id(r, (c+1)%cols))
			g.MustAddEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return &Topology{g: g, racks: allNodes(rows * cols), name: fmt.Sprintf("torus(%dx%d)", rows, cols)}
}

// Hypercube builds a dim-dimensional hypercube on 2^dim nodes (all racks).
func Hypercube(dim int) *Topology {
	if dim < 1 || dim > 20 {
		panic("graph: Hypercube requires 1 <= dim <= 20")
	}
	n := 1 << dim
	g := New(n)
	for u := 0; u < n; u++ {
		for b := 0; b < dim; b++ {
			v := u ^ (1 << b)
			if u < v {
				g.MustAddEdge(u, v)
			}
		}
	}
	return &Topology{g: g, racks: allNodes(n), name: fmt.Sprintf("hypercube(%d)", dim)}
}

// Complete builds the complete graph on n nodes (all racks, all distances 1).
func Complete(n int) *Topology {
	if n < 1 {
		panic("graph: Complete requires n >= 1")
	}
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(u, v)
		}
	}
	return &Topology{g: g, racks: allNodes(n), name: fmt.Sprintf("complete(%d)", n)}
}

// RandomRegular builds a random d-regular simple graph on n nodes using the
// pairing model with restarts, then verifies connectivity (restarting if
// needed). n*d must be even, d < n. All nodes are racks.
func RandomRegular(n, d int, seed uint64) *Topology {
	if n < 2 || d < 1 || d >= n || n*d%2 != 0 {
		panic(fmt.Sprintf("graph: RandomRegular invalid (n=%d, d=%d)", n, d))
	}
	r := stats.NewRand(seed)
	const maxAttempts = 1000
	for attempt := 0; attempt < maxAttempts; attempt++ {
		g := tryPairing(n, d, r)
		if g != nil && g.Connected() {
			return &Topology{g: g, racks: allNodes(n), name: fmt.Sprintf("random-regular(%d,%d)", n, d)}
		}
	}
	panic("graph: RandomRegular failed to generate after many attempts")
}

func tryPairing(n, d int, r *stats.Rand) *Graph {
	stubs := make([]int, 0, n*d)
	for u := 0; u < n; u++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, u)
		}
	}
	r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	g := New(n)
	for i := 0; i < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v || g.HasEdge(u, v) {
			return nil
		}
		g.MustAddEdge(u, v)
	}
	return g
}

func allNodes(n int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = i
	}
	return r
}

// AverageDistance returns the mean pairwise rack distance of the metric,
// a convenient summary statistic for topology comparisons.
func (m *Metric) AverageDistance() float64 {
	if m.n < 2 {
		return 0
	}
	var sum float64
	for u := 0; u < m.n; u++ {
		for v := u + 1; v < m.n; v++ {
			sum += float64(m.Dist(u, v))
		}
	}
	pairs := float64(m.n) * float64(m.n-1) / 2
	return sum / pairs
}

// Histogram returns counts of pairwise distances 0..Max (unordered pairs).
func (m *Metric) Histogram() []int {
	h := make([]int, m.max+1)
	for u := 0; u < m.n; u++ {
		for v := u + 1; v < m.n; v++ {
			h[m.Dist(u, v)]++
		}
	}
	return h
}
