package graph_test

import (
	"fmt"

	"obm/internal/graph"
)

// ExampleFatTreeRacks builds the paper's experimental topology and reads
// off the distance structure that drives the cost model.
func ExampleFatTreeRacks() {
	top := graph.FatTreeRacks(100)
	m := top.Metric()
	fmt.Printf("racks=%d same-pod=%d cross-pod=%d lmax=%d\n",
		top.NumRacks(), m.Dist(0, 1), m.Dist(0, 60), m.Max())
	// Output: racks=100 same-pod=2 cross-pod=4 lmax=4
}

// ExampleStar shows the lower-bound topology of Theorem 4.
func ExampleStar() {
	top := graph.Star(4)
	m := top.Metric()
	fmt.Printf("hub-leaf=%d leaf-leaf=%d\n", m.Dist(0, 1), m.Dist(1, 2))
	// Output: hub-leaf=1 leaf-leaf=2
}
