package graph

import "fmt"

// PathOracle reconstructs concrete shortest paths between racks over the
// static network. It stores one BFS parent tree per rack
// (O(racks × nodes) memory), so path extraction is O(path length).
// Used by the simulator's link-utilization accounting: the paper equates
// routing cost with "bandwidth tax", and the oracle makes the per-link
// load behind that tax observable.
type PathOracle struct {
	top     *Topology
	parents [][]int32 // parents[i][node]: BFS predecessor towards rack i's node
}

// Paths builds the oracle with one BFS per rack.
func (t *Topology) Paths() *PathOracle {
	nr := len(t.racks)
	n := t.g.N()
	p := &PathOracle{top: t, parents: make([][]int32, nr)}
	queue := make([]int, 0, n)
	for i, s := range t.racks {
		par := make([]int32, n)
		for j := range par {
			par[j] = -1
		}
		par[s] = int32(s) // root marks itself
		queue = queue[:0]
		queue = append(queue, s)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range t.g.Neighbors(u) {
				if par[v] == -1 {
					par[v] = int32(u)
					queue = append(queue, v)
				}
			}
		}
		p.parents[i] = par
	}
	return p
}

// Path returns the node sequence of a shortest path from rack u to rack v
// (graph node ids, starting at rack u's node and ending at rack v's node).
// It panics if the racks are disconnected or indices are out of range.
func (p *PathOracle) Path(u, v int) []int {
	if u < 0 || u >= len(p.parents) || v < 0 || v >= len(p.parents) {
		panic(fmt.Sprintf("graph: Path(%d,%d) rack out of range [0,%d)", u, v, len(p.parents)))
	}
	// Walk from v's node towards rack u using u's BFS tree.
	par := p.parents[u]
	cur := p.top.racks[v]
	if par[cur] == -1 {
		panic(fmt.Sprintf("graph: racks %d and %d disconnected", u, v))
	}
	var rev []int
	for {
		rev = append(rev, cur)
		next := int(par[cur])
		if next == cur {
			break
		}
		cur = next
	}
	// rev runs v → u; reverse to u → v.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// VisitPathEdges calls fn for every static-network edge (a, b) on a
// shortest path from rack u to rack v, without allocating.
func (p *PathOracle) VisitPathEdges(u, v int, fn func(a, b int)) {
	par := p.parents[u]
	cur := p.top.racks[v]
	if cur < 0 || par[cur] == -1 {
		panic(fmt.Sprintf("graph: racks %d and %d disconnected", u, v))
	}
	for {
		next := int(par[cur])
		if next == cur {
			return
		}
		fn(cur, next)
		cur = next
	}
}
