package graph

import (
	"testing"
	"testing/quick"
)

// TestAllTopologiesConnected sweeps the generators over parameter grids and
// checks structural invariants: connectivity, rack validity, metric
// symmetry, and zero diagonal.
func TestAllTopologiesConnected(t *testing.T) {
	tops := []*Topology{
		FatTree(2), FatTree(4), FatTree(6), FatTree(8),
		FatTreeRacks(1), FatTreeRacks(2), FatTreeRacks(13), FatTreeRacks(50), FatTreeRacks(100),
		LeafSpine(1, 1), LeafSpine(10, 4), LeafSpine(3, 7),
		Star(1), Star(2), Star(17),
		Ring(3), Ring(10),
		Torus2D(3, 3), Torus2D(4, 6),
		Hypercube(1), Hypercube(3), Hypercube(6),
		Complete(2), Complete(9),
		RandomRegular(10, 3, 1), RandomRegular(12, 4, 2), RandomRegular(14, 4, 3),
	}
	for _, top := range tops {
		t.Run(top.Name(), func(t *testing.T) {
			if !top.Graph().Connected() {
				t.Fatal("not connected")
			}
			nr := top.NumRacks()
			if nr < 1 {
				t.Fatal("no racks")
			}
			for i := 0; i < nr; i++ {
				if v := top.RackNode(i); v < 0 || v >= top.Graph().N() {
					t.Fatalf("rack %d maps to invalid node %d", i, v)
				}
			}
			if nr < 2 {
				return
			}
			m := top.Metric()
			for u := 0; u < nr; u++ {
				if m.Dist(u, u) != 0 {
					t.Fatalf("Dist(%d,%d) = %d", u, u, m.Dist(u, u))
				}
			}
			for u := 0; u < nr; u++ {
				for v := u + 1; v < nr; v++ {
					if m.Dist(u, v) != m.Dist(v, u) {
						t.Fatalf("asymmetric metric at (%d,%d)", u, v)
					}
					if m.Dist(u, v) < 1 {
						t.Fatalf("distinct racks at distance %d", m.Dist(u, v))
					}
				}
			}
		})
	}
}

func TestFatTreeEdgeCountFormula(t *testing.T) {
	// k-ary fat-tree: k pods × (k/2)² edge-agg links + (k/2)² × k agg-core.
	for _, k := range []int{2, 4, 6, 8, 10} {
		g := FatTree(k).Graph()
		want := k*(k/2)*(k/2) + (k/2)*(k/2)*k
		if g.M() != want {
			t.Fatalf("k=%d: %d edges, want %d", k, g.M(), want)
		}
	}
}

func TestMetricAverageWithinDiameter(t *testing.T) {
	if err := quick.Check(func(seed uint8) bool {
		n := 6 + 2*int(seed%5) // even: n·d must be even for d=3
		top := RandomRegular(n, 3, uint64(seed)+1)
		m := top.Metric()
		avg := m.AverageDistance()
		return avg >= 1 && avg <= float64(m.Max())
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHypercubeDiameterIsDim(t *testing.T) {
	for dim := 1; dim <= 7; dim++ {
		if m := Hypercube(dim).Metric(); m.Max() != dim {
			t.Fatalf("dim=%d: diameter %d", dim, m.Max())
		}
	}
}

func TestTorusDiameterFormula(t *testing.T) {
	m := Torus2D(6, 8).Metric()
	if m.Max() != 6/2+8/2 {
		t.Fatalf("torus diameter %d, want 7", m.Max())
	}
}

func TestLeafSpineSpinesNotRacks(t *testing.T) {
	top := LeafSpine(5, 3)
	if top.NumRacks() != 5 {
		t.Fatalf("racks = %d", top.NumRacks())
	}
	if top.Graph().N() != 8 {
		t.Fatalf("nodes = %d", top.Graph().N())
	}
}
