// Package graph provides the static-network substrate of the reproduction:
// an undirected graph type, shortest-path computation, and generators for
// the datacenter topologies used in the paper's evaluation (fat-tree) plus
// several others (star, leaf-spine, ring, torus, hypercube, random regular).
//
// In the paper's model the static network G = (V, F) determines the routing
// cost ℓ_e of serving a request over the fixed infrastructure: the length of
// a shortest path between the endpoints. The DistanceMatrix produced here is
// exactly that ℓ lookup.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph on nodes 0..N-1. Parallel edges and
// self-loops are rejected. The zero value is an empty graph with no nodes;
// use New to create a graph with a fixed node count.
type Graph struct {
	n   int
	adj [][]int
	m   int
}

// New returns an empty graph on n nodes. It panics if n < 0.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: New with negative node count")
	}
	return &Graph{n: n, adj: make([][]int, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// AddEdge inserts the undirected edge {u, v}. It returns an error if an
// endpoint is out of range, u == v, or the edge already exists.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at node %d", u)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.m++
	return nil
}

// MustAddEdge is AddEdge that panics on error; intended for generators whose
// inputs are validated up front.
func (g *Graph) MustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// HasEdge reports whether the edge {u, v} exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	// Scan the smaller adjacency list.
	a, b := u, v
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, w := range g.adj[a] {
		if w == b {
			return true
		}
	}
	return false
}

// Degree returns the degree of node u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Neighbors returns the adjacency list of u. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Neighbors(u int) []int { return g.adj[u] }

// Edges returns all edges as ordered pairs (u < v), sorted lexicographically.
func (g *Graph) Edges() [][2]int {
	es := make([][2]int, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				es = append(es, [2]int{u, v})
			}
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
	return es
}

// Connected reports whether the graph is connected (true for n <= 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == g.n
}
