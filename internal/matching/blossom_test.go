package matching

import (
	"math"
	"testing"

	"obm/internal/stats"
)

func mateWeight(n int, edges []WeightedEdge, mate []int) float64 {
	var w float64
	for _, e := range edges {
		if mate[e.U] == e.V && mate[e.V] == e.U {
			w += e.W
		}
	}
	return w
}

func checkMateConsistent(t *testing.T, mate []int) {
	t.Helper()
	for v, m := range mate {
		if m == -1 {
			continue
		}
		if m < 0 || m >= len(mate) || mate[m] != v || m == v {
			t.Fatalf("inconsistent mate array: mate[%d]=%d, mate[%d]=%d", v, m, m, mate[m])
		}
	}
}

func TestMWMEmpty(t *testing.T) {
	mate := MaxWeightMatching(3, nil, false)
	for _, m := range mate {
		if m != -1 {
			t.Fatal("empty graph must have empty matching")
		}
	}
}

func TestMWMSingleEdge(t *testing.T) {
	mate := MaxWeightMatching(2, []WeightedEdge{{0, 1, 5}}, false)
	if mate[0] != 1 || mate[1] != 0 {
		t.Fatalf("mate = %v", mate)
	}
}

func TestMWMPicksHeavierOfTwo(t *testing.T) {
	// Path 0-1-2: must pick the heavier edge.
	edges := []WeightedEdge{{0, 1, 2}, {1, 2, 3}}
	mate := MaxWeightMatching(3, edges, false)
	if mate[1] != 2 || mate[0] != -1 {
		t.Fatalf("mate = %v, want 1-2 matched", mate)
	}
}

func TestMWMPrefersTwoLightOverOneHeavy(t *testing.T) {
	// Path 0-1-2-3 with weights 3, 5, 3: two light edges (6) beat the heavy one.
	edges := []WeightedEdge{{0, 1, 3}, {1, 2, 5}, {2, 3, 3}}
	mate := MaxWeightMatching(4, edges, false)
	if mate[0] != 1 || mate[2] != 3 {
		t.Fatalf("mate = %v, want {0-1, 2-3}", mate)
	}
}

func TestMWMTriangle(t *testing.T) {
	edges := []WeightedEdge{{0, 1, 6}, {1, 2, 5}, {0, 2, 4}}
	mate := MaxWeightMatching(3, edges, false)
	if w := mateWeight(3, edges, mate); w != 6 {
		t.Fatalf("triangle weight = %v, want 6", w)
	}
}

// TestMWMKnownTricky ports the classic regression cases from van Rantwijk's
// test suite: blossoms that must be created, used, expanded, and augmented
// through.
func TestMWMKnownTricky(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges []WeightedEdge
		want  []int
	}{
		{
			name: "create blossom, use for augmentation",
			n:    4,
			edges: []WeightedEdge{
				{0, 1, 8}, {0, 2, 9}, {1, 2, 10}, {2, 3, 7},
			},
			want: []int{1, 0, 3, 2},
		},
		{
			name: "create S-blossom, relabel as T-blossom, use for augmentation",
			n:    6,
			edges: []WeightedEdge{
				{0, 1, 9}, {0, 2, 8}, {1, 2, 10}, {0, 3, 5}, {3, 4, 4}, {0, 5, 3},
			},
			want: []int{5, 2, 1, 4, 3, 0},
		},
		{
			name: "create nested S-blossom, use for augmentation",
			n:    6,
			edges: []WeightedEdge{
				{0, 1, 9}, {0, 2, 9}, {1, 2, 10}, {1, 3, 8}, {2, 4, 8}, {3, 4, 10}, {4, 5, 6},
			},
			want: []int{2, 3, 0, 1, 5, 4},
		},
		{
			name: "expand nested S-blossom",
			n:    7,
			edges: []WeightedEdge{
				{0, 1, 19}, {0, 2, 20}, {0, 7 - 7, 0}, // placeholder removed below
			},
			want: nil,
		},
	}
	// Replace the placeholder case with the real "expand nested S-blossom".
	cases[3] = struct {
		name  string
		n     int
		edges []WeightedEdge
		want  []int
	}{
		name: "expand nested S-blossom",
		n:    8,
		edges: []WeightedEdge{
			{0, 1, 19}, {0, 2, 20}, {1, 2, 25}, {1, 3, 18}, {2, 4, 18},
			{3, 4, 13}, {3, 6, 7}, {4, 7, 7},
		},
		want: []int{1, 0, 4, 6, 2, -1, 3, 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mate := MaxWeightMatching(tc.n, tc.edges, false)
			checkMateConsistent(t, mate)
			got := mateWeight(tc.n, tc.edges, mate)
			want := BruteForceMWM(tc.n, tc.edges)
			if got != want {
				t.Fatalf("weight = %v, brute force = %v (mate %v)", got, want, mate)
			}
			if tc.want != nil {
				for v := range tc.want {
					if mate[v] != tc.want[v] {
						t.Logf("note: different optimal mate %v (want %v); weights equal", mate, tc.want)
						break
					}
				}
			}
		})
	}
}

func TestMWMSBlossomRelabelTricky(t *testing.T) {
	// Further regression cases exercising T-blossom expansion paths
	// (van Rantwijk tests 30-34 family).
	cases := [][]WeightedEdge{
		// S-blossom, relabel as T in more complex way
		{{0, 1, 45}, {0, 4, 45}, {1, 2, 50}, {2, 3, 45}, {3, 4, 50}, {0, 5, 30}, {2, 8, 35}, {4, 7, 35}, {5, 6, 26}, {8, 9, 5}},
		// again, with a different crossing edge
		{{0, 1, 45}, {0, 4, 45}, {1, 2, 50}, {2, 3, 45}, {3, 4, 50}, {0, 5, 30}, {2, 8, 35}, {4, 7, 26}, {5, 6, 40}, {8, 9, 5}},
		// create blossom, relabel as T, expand
		{{0, 1, 23}, {0, 4, 22}, {0, 5, 15}, {1, 2, 25}, {2, 3, 22}, {3, 4, 25}, {3, 7, 14}, {4, 8, 13}, {5, 6, 11}},
		// create nested blossom, relabel as T, expand
		{{0, 1, 19}, {0, 2, 20}, {0, 7, 8}, {1, 2, 25}, {1, 3, 18}, {2, 4, 18}, {3, 4, 13}, {3, 6, 7}, {4, 8, 6}},
	}
	for i, edges := range cases {
		n := 0
		for _, e := range edges {
			if e.U >= n {
				n = e.U + 1
			}
			if e.V >= n {
				n = e.V + 1
			}
		}
		mate := MaxWeightMatching(n, edges, false)
		checkMateConsistent(t, mate)
		got := mateWeight(n, edges, mate)
		want := BruteForceMWM(n, edges)
		if got != want {
			t.Fatalf("case %d: weight %v, brute force %v", i, got, want)
		}
	}
}

func TestMWMRandomVsBruteForce(t *testing.T) {
	r := stats.NewRand(17)
	for trial := 0; trial < 300; trial++ {
		n := 4 + r.Intn(5) // 4..8 vertices
		var edges []WeightedEdge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Bool(0.55) {
					edges = append(edges, WeightedEdge{u, v, float64(1 + r.Intn(20))})
				}
			}
		}
		if len(edges) > 22 {
			edges = edges[:22]
		}
		mate := MaxWeightMatching(n, edges, false)
		checkMateConsistent(t, mate)
		got := mateWeight(n, edges, mate)
		want := BruteForceMWM(n, edges)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d (n=%d, m=%d): blossom %v != brute force %v\nedges: %v",
				trial, n, len(edges), got, want, edges)
		}
	}
}

func TestMWMMaxCardinality(t *testing.T) {
	// Path 0-1-2 with weights 2, 3: plain MWM picks {1,2}; max-cardinality
	// also picks one edge (max matching size is 1)... use a case where
	// cardinality matters: path 0-1-2-3 weights 1, 100, 1.
	edges := []WeightedEdge{{0, 1, 1}, {1, 2, 100}, {2, 3, 1}}
	plain := MaxWeightMatching(4, edges, false)
	if mateWeight(4, edges, plain) != 100 {
		t.Fatalf("plain MWM weight = %v", mateWeight(4, edges, plain))
	}
	maxc := MaxWeightMatching(4, edges, true)
	matchedEdges := 0
	for v, m := range maxc {
		if m > v {
			matchedEdges++
		}
	}
	if matchedEdges != 2 {
		t.Fatalf("max-cardinality matching has %d edges, want 2 (mate %v)", matchedEdges, maxc)
	}
}

func TestMWMNegativeWeightsIgnored(t *testing.T) {
	edges := []WeightedEdge{{0, 1, -5}, {1, 2, 4}}
	mate := MaxWeightMatching(3, edges, false)
	if mate[0] != -1 || mate[1] != 2 {
		t.Fatalf("mate = %v", mate)
	}
}

func TestMWMPanicsOnBadEdge(t *testing.T) {
	for _, edges := range [][]WeightedEdge{
		{{0, 0, 1}},
		{{0, 5, 1}},
		{{-1, 1, 1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("edges %v: expected panic", edges)
				}
			}()
			MaxWeightMatching(3, edges, false)
		}()
	}
}

func TestMWMLargerRandomSanity(t *testing.T) {
	// No brute force here; check feasibility and that blossom >= greedy.
	r := stats.NewRand(23)
	for trial := 0; trial < 10; trial++ {
		n := 40
		var edges []WeightedEdge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Bool(0.2) {
					edges = append(edges, WeightedEdge{u, v, float64(1 + r.Intn(1000))})
				}
			}
		}
		mate := MaxWeightMatching(n, edges, false)
		checkMateConsistent(t, mate)
		blossomW := mateWeight(n, edges, mate)
		greedy := GreedyBMatching(n, edges, 1)
		var greedyW float64
		wmap := map[[2]int]float64{}
		for _, e := range edges {
			wmap[[2]int{e.U, e.V}] = e.W
		}
		for _, k := range greedy {
			u, v := k.Endpoints()
			greedyW += wmap[[2]int{u, v}]
		}
		if blossomW < greedyW {
			t.Fatalf("trial %d: blossom %v < greedy %v", trial, blossomW, greedyW)
		}
	}
}
