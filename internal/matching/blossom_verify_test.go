package matching

// Dual-certificate verification for the blossom solver: after solve(), the
// LP duals must certify optimality by complementary slackness. This is the
// same check van Rantwijk's reference runs under CHECK_OPTIMUM, and is far
// stronger than value comparison alone — it validates the internal dual
// bookkeeping, not just the matching.

import (
	"testing"

	"obm/internal/stats"
)

// verifyOptimum checks the complementary-slackness conditions:
//  1. every edge has non-negative slack;
//  2. every matched edge has zero slack (counting blossoms containing both
//     endpoints, whose duals subtract from the slack);
//  3. vertex duals are non-negative (plain max-weight mode);
//  4. unmatched ("single") vertices have zero dual;
//  5. blossom duals are non-negative.
func verifyOptimum(t *testing.T, s *blossomSolver) {
	t.Helper()
	n := s.nvertex
	for v := 0; v < n; v++ {
		if !s.maxCardinality && s.dualvar[v] < -1e-9 {
			t.Fatalf("vertex %d has negative dual %v", v, s.dualvar[v])
		}
		if s.mate[v] == -1 && !s.maxCardinality && s.dualvar[v] > 1e-9 {
			t.Fatalf("single vertex %d has positive dual %v", v, s.dualvar[v])
		}
	}
	for b := n; b < 2*n; b++ {
		if s.blossombase[b] >= 0 && s.dualvar[b] < -1e-9 {
			t.Fatalf("blossom %d has negative dual %v", b, s.dualvar[b])
		}
	}
	for k, e := range s.edges {
		slack := s.dualvar[e.U] + s.dualvar[e.V] - 2*e.W
		// Add duals of blossoms containing both endpoints: the chains of
		// containers are nested, so the common containers are exactly the
		// blossoms appearing in both parent chains.
		var iblossoms, jblossoms []int
		for bi := e.U; bi != -1; bi = s.blossomparent[bi] {
			iblossoms = append(iblossoms, bi)
		}
		for bj := e.V; bj != -1; bj = s.blossomparent[bj] {
			jblossoms = append(jblossoms, bj)
		}
		for _, bi := range iblossoms {
			for _, bj := range jblossoms {
				if bi == bj && bi >= n {
					slack += 2 * s.dualvar[bi]
				}
			}
		}
		if slack < -1e-9 {
			t.Fatalf("edge %d {%d,%d,w=%v} has negative slack %v", k, e.U, e.V, e.W, slack)
		}
		matched := s.mate[e.U] >= 0 && s.endpoint[s.mate[e.U]] == e.V
		if matched && slack > 1e-9 {
			t.Fatalf("matched edge %d {%d,%d} has positive slack %v", k, e.U, e.V, slack)
		}
	}
}

func TestBlossomDualCertificateRandom(t *testing.T) {
	r := stats.NewRand(61)
	for trial := 0; trial < 200; trial++ {
		n := 4 + r.Intn(8)
		var edges []WeightedEdge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Bool(0.5) {
					edges = append(edges, WeightedEdge{u, v, float64(1 + r.Intn(25))})
				}
			}
		}
		if len(edges) == 0 {
			continue
		}
		s := newBlossomSolver(n, edges, false)
		s.solve()
		verifyOptimum(t, s)
	}
}

func TestBlossomDualCertificateDense(t *testing.T) {
	r := stats.NewRand(62)
	for trial := 0; trial < 20; trial++ {
		n := 12
		var edges []WeightedEdge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				edges = append(edges, WeightedEdge{u, v, float64(1 + r.Intn(100))})
			}
		}
		s := newBlossomSolver(n, edges, false)
		s.solve()
		verifyOptimum(t, s)
	}
}

func TestBlossomDualCertificateOddCycles(t *testing.T) {
	// Odd cycles force blossoms; verify duals survive them.
	for _, n := range []int{3, 5, 7, 9} {
		var edges []WeightedEdge
		for i := 0; i < n; i++ {
			edges = append(edges, WeightedEdge{i, (i + 1) % n, 10})
		}
		s := newBlossomSolver(n, edges, false)
		s.solve()
		verifyOptimum(t, s)
	}
}
