package matching

// Maximum-weight matching in general graphs via Edmonds' blossom algorithm
// with dual-variable maintenance, following Galil's exposition ("Efficient
// algorithms for finding maximum matching in graphs", ACM Computing Surveys
// 1986) in the O(n³) formulation popularized by Jan van Rantwijk's
// implementation (the same algorithm behind NetworkX's
// max_weight_matching, which the paper's SO-BMA baseline used).
//
// The implementation mirrors the reference structure: vertices are
// 0..n-1, blossoms are n..2n-1, edge endpoints p encode edge p/2 and side
// p%2, and each stage augments the matching by one edge or proves optimality
// via the dual problem.

// WeightedEdge is an undirected edge with a weight.
type WeightedEdge struct {
	U, V int
	W    float64
}

// MaxWeightMatching computes a matching of maximum total weight on the
// graph with n vertices and the given edges. If maxCardinality is true,
// it returns the maximum-weight matching among matchings of maximum
// cardinality. The result maps each vertex to its partner, or -1.
//
// Edges with non-positive weight are permitted; with maxCardinality=false
// they never improve the matching and are effectively ignored by
// optimality. Duplicate edges and self-loops must not be supplied.
func MaxWeightMatching(n int, edges []WeightedEdge, maxCardinality bool) []int {
	mate := make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	if len(edges) == 0 || n == 0 {
		return mate
	}
	for _, e := range edges {
		if e.U == e.V || e.U < 0 || e.V < 0 || e.U >= n || e.V >= n {
			panic("matching: MaxWeightMatching invalid edge")
		}
	}
	g := newBlossomSolver(n, edges, maxCardinality)
	g.solve()
	// g.mate[v] is a remote endpoint; convert to vertex ids.
	for v := 0; v < n; v++ {
		if g.mate[v] >= 0 {
			mate[v] = g.endpoint[g.mate[v]]
		}
	}
	return mate
}

// MatchingWeight sums the weights of the matched edges described by mate.
func MatchingWeight(edges []WeightedEdge, mate []int) float64 {
	var w float64
	for _, e := range edges {
		if mate[e.U] == e.V {
			w += e.W
		}
	}
	return w
}

type blossomSolver struct {
	nvertex        int
	edges          []WeightedEdge
	maxCardinality bool

	endpoint  []int   // endpoint[p]: vertex at endpoint p
	neighbend [][]int // neighbend[v]: remote endpoints of edges incident to v

	mate     []int // mate[v]: remote endpoint of matched edge at v, or -1
	label    []int // label[b]: 0 free, 1 S, 2 T (entries for vertices and blossoms)
	labelend []int // labelend[b]: endpoint through which b got its label, or -1

	inblossom        []int   // inblossom[v]: top-level blossom containing v
	blossomparent    []int   // immediate parent blossom, or -1
	blossomchilds    [][]int // sub-blossom list (cyclic, starting at base)
	blossombase      []int   // base vertex of each blossom
	blossomendps     [][]int // endpoints connecting consecutive sub-blossoms
	bestedge         []int   // least-slack edge per vertex/blossom, or -1
	blossombestedges [][]int // least-slack edges of an S-blossom to other S-blossoms
	unusedblossoms   []int
	dualvar          []float64 // duals: vertices then blossoms
	allowedge        []bool    // edge has zero slack (usable in alternating trees)
	queue            []int
}

func newBlossomSolver(n int, edges []WeightedEdge, maxCardinality bool) *blossomSolver {
	s := &blossomSolver{nvertex: n, edges: edges, maxCardinality: maxCardinality}
	nedge := len(edges)
	var maxweight float64
	for _, e := range edges {
		if e.W > maxweight {
			maxweight = e.W
		}
	}
	s.endpoint = make([]int, 2*nedge)
	for p := range s.endpoint {
		if p%2 == 0 {
			s.endpoint[p] = edges[p/2].U
		} else {
			s.endpoint[p] = edges[p/2].V
		}
	}
	s.neighbend = make([][]int, n)
	for k, e := range edges {
		s.neighbend[e.U] = append(s.neighbend[e.U], 2*k+1)
		s.neighbend[e.V] = append(s.neighbend[e.V], 2*k)
	}
	s.mate = make([]int, n)
	for i := range s.mate {
		s.mate[i] = -1
	}
	s.label = make([]int, 2*n)
	s.labelend = make([]int, 2*n)
	for i := range s.labelend {
		s.labelend[i] = -1
	}
	s.inblossom = make([]int, n)
	for i := range s.inblossom {
		s.inblossom[i] = i
	}
	s.blossomparent = make([]int, 2*n)
	for i := range s.blossomparent {
		s.blossomparent[i] = -1
	}
	s.blossomchilds = make([][]int, 2*n)
	s.blossombase = make([]int, 2*n)
	for i := 0; i < n; i++ {
		s.blossombase[i] = i
	}
	for i := n; i < 2*n; i++ {
		s.blossombase[i] = -1
	}
	s.blossomendps = make([][]int, 2*n)
	s.bestedge = make([]int, 2*n)
	for i := range s.bestedge {
		s.bestedge[i] = -1
	}
	s.blossombestedges = make([][]int, 2*n)
	s.unusedblossoms = make([]int, 0, n)
	for i := n; i < 2*n; i++ {
		s.unusedblossoms = append(s.unusedblossoms, i)
	}
	s.dualvar = make([]float64, 2*n)
	for i := 0; i < n; i++ {
		s.dualvar[i] = maxweight
	}
	s.allowedge = make([]bool, nedge)
	return s
}

// slack returns the dual slack of edge k (non-negative outside the tree).
func (s *blossomSolver) slack(k int) float64 {
	e := s.edges[k]
	return s.dualvar[e.U] + s.dualvar[e.V] - 2*e.W
}

// blossomLeaves appends all vertices contained in blossom b to out.
func (s *blossomSolver) blossomLeaves(b int, out []int) []int {
	if b < s.nvertex {
		return append(out, b)
	}
	for _, t := range s.blossomchilds[b] {
		out = s.blossomLeaves(t, out)
	}
	return out
}

// assignLabel gives vertex w's top-level blossom label t (1=S, 2=T) reached
// through endpoint p.
func (s *blossomSolver) assignLabel(w, t, p int) {
	b := s.inblossom[w]
	s.label[w] = t
	s.label[b] = t
	s.labelend[w] = p
	s.labelend[b] = p
	s.bestedge[w] = -1
	s.bestedge[b] = -1
	if t == 1 {
		s.queue = s.blossomLeaves(b, s.queue)
	} else {
		base := s.blossombase[b]
		s.assignLabel(s.endpoint[s.mate[base]], 1, s.mate[base]^1)
	}
}

// scanBlossom traces back from vertices v and w to find the closest common
// ancestor blossom of the alternating trees, or -1 if the trees are rooted
// at different free vertices (in which case an augmenting path exists).
func (s *blossomSolver) scanBlossom(v, w int) int {
	path := []int{}
	base := -1
	for v != -1 || w != -1 {
		b := s.inblossom[v]
		if s.label[b]&4 != 0 {
			base = s.blossombase[b]
			break
		}
		path = append(path, b)
		s.label[b] = 5
		if s.labelend[b] == -1 {
			v = -1
		} else {
			v = s.endpoint[s.labelend[b]]
			b = s.inblossom[v]
			v = s.endpoint[s.labelend[b]]
		}
		if w != -1 {
			v, w = w, v
		}
	}
	for _, b := range path {
		s.label[b] = 1
	}
	return base
}

// addBlossom creates a new blossom with the given base, through edge k,
// merging the top-level blossoms along the two tree paths.
func (s *blossomSolver) addBlossom(base, k int) {
	v, w := s.edges[k].U, s.edges[k].V
	bb := s.inblossom[base]
	bv := s.inblossom[v]
	bw := s.inblossom[w]
	b := s.unusedblossoms[len(s.unusedblossoms)-1]
	s.unusedblossoms = s.unusedblossoms[:len(s.unusedblossoms)-1]
	s.blossombase[b] = base
	s.blossomparent[b] = -1
	s.blossomparent[bb] = b
	path := []int{}
	endps := []int{}
	for bv != bb {
		s.blossomparent[bv] = b
		path = append(path, bv)
		endps = append(endps, s.labelend[bv])
		v = s.endpoint[s.labelend[bv]]
		bv = s.inblossom[v]
	}
	path = append(path, bb)
	reverseInts(path)
	reverseInts(endps)
	endps = append(endps, 2*k)
	for bw != bb {
		s.blossomparent[bw] = b
		path = append(path, bw)
		endps = append(endps, s.labelend[bw]^1)
		w = s.endpoint[s.labelend[bw]]
		bw = s.inblossom[w]
	}
	s.label[b] = 1
	s.labelend[b] = s.labelend[bb]
	s.dualvar[b] = 0
	s.blossomchilds[b] = path
	s.blossomendps[b] = endps
	leaves := s.blossomLeaves(b, nil)
	for _, lv := range leaves {
		if s.label[s.inblossom[lv]] == 2 {
			s.queue = append(s.queue, lv)
		}
		s.inblossom[lv] = b
	}
	// Compute the new blossom's best edges to other S-blossoms.
	bestedgeto := make([]int, 2*s.nvertex)
	for i := range bestedgeto {
		bestedgeto[i] = -1
	}
	for _, child := range path {
		var nblists [][]int
		if s.blossombestedges[child] == nil {
			for _, lv := range s.blossomLeaves(child, nil) {
				list := make([]int, 0, len(s.neighbend[lv]))
				for _, p := range s.neighbend[lv] {
					list = append(list, p/2)
				}
				nblists = append(nblists, list)
			}
		} else {
			nblists = [][]int{s.blossombestedges[child]}
		}
		for _, nblist := range nblists {
			for _, ek := range nblist {
				j := s.edges[ek].V
				if s.inblossom[j] == b {
					j = s.edges[ek].U
				}
				bj := s.inblossom[j]
				if bj != b && s.label[bj] == 1 &&
					(bestedgeto[bj] == -1 || s.slack(ek) < s.slack(bestedgeto[bj])) {
					bestedgeto[bj] = ek
				}
			}
		}
		s.blossombestedges[child] = nil
		s.bestedge[child] = -1
	}
	best := make([]int, 0)
	for _, ek := range bestedgeto {
		if ek != -1 {
			best = append(best, ek)
		}
	}
	s.blossombestedges[b] = best
	s.bestedge[b] = -1
	for _, ek := range best {
		if s.bestedge[b] == -1 || s.slack(ek) < s.slack(s.bestedge[b]) {
			s.bestedge[b] = ek
		}
	}
}

// expandBlossom dissolves blossom b, promoting its children to top level.
// During a stage (endstage=false) the sub-blossoms of a T-blossom are
// relabeled to preserve the alternating-tree structure.
func (s *blossomSolver) expandBlossom(b int, endstage bool) {
	for _, child := range s.blossomchilds[b] {
		s.blossomparent[child] = -1
		if child < s.nvertex {
			s.inblossom[child] = child
		} else if endstage && s.dualvar[child] == 0 {
			s.expandBlossom(child, endstage)
		} else {
			for _, lv := range s.blossomLeaves(child, nil) {
				s.inblossom[lv] = child
			}
		}
	}
	if !endstage && s.label[b] == 2 {
		entrychild := s.inblossom[s.endpoint[s.labelend[b]^1]]
		j := indexOf(s.blossomchilds[b], entrychild)
		var jstep, endptrick int
		if j&1 != 0 {
			j -= len(s.blossomchilds[b])
			jstep = 1
			endptrick = 0
		} else {
			jstep = -1
			endptrick = 1
		}
		p := s.labelend[b]
		for j != 0 {
			s.label[s.endpoint[p^1]] = 0
			s.label[s.endpoint[at(s.blossomendps[b], j-endptrick)^endptrick^1]] = 0
			s.assignLabel(s.endpoint[p^1], 2, p)
			s.allowedge[at(s.blossomendps[b], j-endptrick)/2] = true
			j += jstep
			p = at(s.blossomendps[b], j-endptrick) ^ endptrick
			s.allowedge[p/2] = true
			j += jstep
		}
		bv := at(s.blossomchilds[b], j)
		s.label[s.endpoint[p^1]] = 2
		s.label[bv] = 2
		s.labelend[s.endpoint[p^1]] = p
		s.labelend[bv] = p
		s.bestedge[bv] = -1
		j += jstep
		for at(s.blossomchilds[b], j) != entrychild {
			bv := at(s.blossomchilds[b], j)
			if s.label[bv] == 1 {
				j += jstep
				continue
			}
			var reached = -1
			for _, lv := range s.blossomLeaves(bv, nil) {
				if s.label[lv] != 0 {
					reached = lv
					break
				}
			}
			if reached != -1 {
				s.label[reached] = 0
				s.label[s.endpoint[s.mate[s.blossombase[bv]]]] = 0
				s.assignLabel(reached, 2, s.labelend[reached])
			}
			j += jstep
		}
	}
	s.label[b] = -1
	s.labelend[b] = -1
	s.blossomchilds[b] = nil
	s.blossomendps[b] = nil
	s.blossombase[b] = -1
	s.blossombestedges[b] = nil
	s.bestedge[b] = -1
	s.unusedblossoms = append(s.unusedblossoms, b)
}

// augmentBlossom swaps matched and unmatched edges inside blossom b so that
// vertex v becomes the new base.
func (s *blossomSolver) augmentBlossom(b, v int) {
	t := v
	for s.blossomparent[t] != b {
		t = s.blossomparent[t]
	}
	if t >= s.nvertex {
		s.augmentBlossom(t, v)
	}
	i := indexOf(s.blossomchilds[b], t)
	j := i
	var jstep, endptrick int
	if i&1 != 0 {
		j -= len(s.blossomchilds[b])
		jstep = 1
		endptrick = 0
	} else {
		jstep = -1
		endptrick = 1
	}
	for j != 0 {
		j += jstep
		t := at(s.blossomchilds[b], j)
		p := at(s.blossomendps[b], j-endptrick) ^ endptrick
		if t >= s.nvertex {
			s.augmentBlossom(t, s.endpoint[p])
		}
		j += jstep
		t = at(s.blossomchilds[b], j)
		if t >= s.nvertex {
			s.augmentBlossom(t, s.endpoint[p^1])
		}
		s.mate[s.endpoint[p]] = p ^ 1
		s.mate[s.endpoint[p^1]] = p
	}
	s.blossomchilds[b] = append(s.blossomchilds[b][i:], s.blossomchilds[b][:i]...)
	s.blossomendps[b] = append(s.blossomendps[b][i:], s.blossomendps[b][:i]...)
	s.blossombase[b] = s.blossombase[s.blossomchilds[b][0]]
}

// augmentMatching augments along the path through edge k and both trees.
func (s *blossomSolver) augmentMatching(k int) {
	for side := 0; side < 2; side++ {
		var v, p int
		if side == 0 {
			v, p = s.edges[k].U, 2*k+1
		} else {
			v, p = s.edges[k].V, 2*k
		}
		sv := v
		sp := p
		for {
			bs := s.inblossom[sv]
			if bs >= s.nvertex {
				s.augmentBlossom(bs, sv)
			}
			s.mate[sv] = sp
			if s.labelend[bs] == -1 {
				break
			}
			t := s.endpoint[s.labelend[bs]]
			bt := s.inblossom[t]
			sv = s.endpoint[s.labelend[bt]]
			j := s.endpoint[s.labelend[bt]^1]
			if bt >= s.nvertex {
				s.augmentBlossom(bt, j)
			}
			s.mate[j] = s.labelend[bt]
			sp = s.labelend[bt] ^ 1
		}
	}
}

func (s *blossomSolver) solve() {
	n := s.nvertex
	for stage := 0; stage < n; stage++ {
		for i := range s.label {
			s.label[i] = 0
		}
		for i := range s.bestedge {
			s.bestedge[i] = -1
		}
		for i := n; i < 2*n; i++ {
			s.blossombestedges[i] = nil
		}
		for i := range s.allowedge {
			s.allowedge[i] = false
		}
		s.queue = s.queue[:0]
		for v := 0; v < n; v++ {
			if s.mate[v] == -1 && s.label[s.inblossom[v]] == 0 {
				s.assignLabel(v, 1, -1)
			}
		}
		augmented := false
		for {
			for len(s.queue) > 0 && !augmented {
				v := s.queue[len(s.queue)-1]
				s.queue = s.queue[:len(s.queue)-1]
				for _, p := range s.neighbend[v] {
					k := p / 2
					w := s.endpoint[p]
					if s.inblossom[v] == s.inblossom[w] {
						continue
					}
					var kslack float64
					if !s.allowedge[k] {
						kslack = s.slack(k)
						if kslack <= 0 {
							s.allowedge[k] = true
						}
					}
					if s.allowedge[k] {
						if s.label[s.inblossom[w]] == 0 {
							s.assignLabel(w, 2, p^1)
						} else if s.label[s.inblossom[w]] == 1 {
							base := s.scanBlossom(v, w)
							if base >= 0 {
								s.addBlossom(base, k)
							} else {
								s.augmentMatching(k)
								augmented = true
								break
							}
						} else if s.label[w] == 0 {
							s.label[w] = 2
							s.labelend[w] = p ^ 1
						}
					} else if s.label[s.inblossom[w]] == 1 {
						b := s.inblossom[v]
						if s.bestedge[b] == -1 || kslack < s.slack(s.bestedge[b]) {
							s.bestedge[b] = k
						}
					} else if s.label[w] == 0 {
						if s.bestedge[w] == -1 || kslack < s.slack(s.bestedge[w]) {
							s.bestedge[w] = k
						}
					}
				}
			}
			if augmented {
				break
			}
			// No augmenting path; adjust duals.
			deltatype := -1
			var delta float64
			deltaedge := -1
			deltablossom := -1
			if !s.maxCardinality {
				deltatype = 1
				delta = minFloat(s.dualvar[:n])
			}
			for v := 0; v < n; v++ {
				if s.label[s.inblossom[v]] == 0 && s.bestedge[v] != -1 {
					d := s.slack(s.bestedge[v])
					if deltatype == -1 || d < delta {
						delta = d
						deltatype = 2
						deltaedge = s.bestedge[v]
					}
				}
			}
			for b := 0; b < 2*n; b++ {
				if s.blossomparent[b] == -1 && s.label[b] == 1 && s.bestedge[b] != -1 {
					d := s.slack(s.bestedge[b]) / 2
					if deltatype == -1 || d < delta {
						delta = d
						deltatype = 3
						deltaedge = s.bestedge[b]
					}
				}
			}
			for b := n; b < 2*n; b++ {
				if s.blossombase[b] >= 0 && s.blossomparent[b] == -1 && s.label[b] == 2 &&
					(deltatype == -1 || s.dualvar[b] < delta) {
					delta = s.dualvar[b]
					deltatype = 4
					deltablossom = b
				}
			}
			if deltatype == -1 {
				// Max-cardinality mode with no improving move: finish with a
				// final non-negative vertex-dual update.
				deltatype = 1
				delta = minFloat(s.dualvar[:n])
				if delta < 0 {
					delta = 0
				}
			}
			for v := 0; v < n; v++ {
				switch s.label[s.inblossom[v]] {
				case 1:
					s.dualvar[v] -= delta
				case 2:
					s.dualvar[v] += delta
				}
			}
			for b := n; b < 2*n; b++ {
				if s.blossombase[b] >= 0 && s.blossomparent[b] == -1 {
					switch s.label[b] {
					case 1:
						s.dualvar[b] += delta
					case 2:
						s.dualvar[b] -= delta
					}
				}
			}
			switch deltatype {
			case 1:
				// Optimum reached.
			case 2:
				s.allowedge[deltaedge] = true
				i := s.edges[deltaedge].U
				if s.label[s.inblossom[i]] == 0 {
					i = s.edges[deltaedge].V
				}
				s.queue = append(s.queue, i)
			case 3:
				s.allowedge[deltaedge] = true
				s.queue = append(s.queue, s.edges[deltaedge].U)
			case 4:
				s.expandBlossom(deltablossom, false)
			}
			if deltatype == 1 {
				break
			}
		}
		if !augmented {
			break
		}
		// End of stage: expand all S-blossoms with zero dual.
		for b := n; b < 2*n; b++ {
			if s.blossomparent[b] == -1 && s.blossombase[b] >= 0 &&
				s.label[b] == 1 && s.dualvar[b] == 0 {
				s.expandBlossom(b, true)
			}
		}
	}
}

func reverseInts(xs []int) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	panic("matching: indexOf not found")
}

// at indexes xs allowing Python-style negative indices.
func at(xs []int, i int) int {
	if i < 0 {
		i += len(xs)
	}
	return xs[i]
}

func minFloat(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
