package matching

import (
	"io"

	"obm/internal/snap"
	"obm/internal/trace"
)

// Snapshot writes the matching's full dynamic state — per-node degrees
// and incidence-list prefixes; the membership bitset is derivable — as a
// section of an enclosing snapshot stream. The encoding restores the
// incidence lists in their exact order, so a restored instance is
// indistinguishable from the original, not merely equal as an edge set.
func (m *BMatching) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w)
	sw.U32(uint32(m.n))
	sw.U32(uint32(m.b))
	sw.I32s(m.deg)
	for u := 0; u < m.n; u++ {
		for _, k := range m.IncidentView(u) {
			sw.U64(uint64(k))
		}
	}
	return sw.Err()
}

// Restore loads state written by Snapshot into this instance, which must
// have the same dimensions (n, b) — restore targets are constructed from
// the run's own configuration, never from the snapshot, so a corrupt
// stream can fail validation but can never size an allocation. Every field
// is validated: degrees against the cap, endpoints against the universe,
// and the cross-listing of each edge at both endpoints; the membership
// bitset and size are rebuilt rather than trusted. On error the matching
// is left in an unspecified state and must be Reset before reuse.
func (m *BMatching) Restore(r io.Reader) error {
	sr := snap.NewReader(r)
	if n := sr.U32(); sr.Err() == nil && int(n) != m.n {
		return snap.Corruptf("matching: snapshot for n=%d, have n=%d", n, m.n)
	}
	if b := sr.U32(); sr.Err() == nil && int(b) != m.b {
		return snap.Corruptf("matching: snapshot for b=%d, have b=%d", b, m.b)
	}
	sr.I32s(m.deg)
	if sr.Err() != nil {
		return sr.Err()
	}
	for u := 0; u < m.n; u++ {
		if m.deg[u] < 0 || int(m.deg[u]) > m.b {
			return snap.Corruptf("matching: node %d degree %d outside [0,%d]", u, m.deg[u], m.b)
		}
	}
	clear(m.present)
	m.size = 0
	for u := 0; u < m.n; u++ {
		base := u * m.b
		for i := 0; i < int(m.deg[u]); i++ {
			k := trace.PairKey(sr.U64())
			if sr.Err() != nil {
				return sr.Err()
			}
			lo, hi := k.Endpoints()
			if lo < 0 || lo >= hi || hi >= m.n || (lo != u && hi != u) {
				return snap.Corruptf("matching: edge %v in node %d incidence is invalid", k, u)
			}
			m.inc[base+i] = k
			if lo == u {
				// Count and set membership once per edge, at its low
				// endpoint; the high endpoint's copy is checked below.
				bit := m.pairBit(lo, hi)
				if m.present[bit>>6]&(1<<(uint(bit)&63)) != 0 {
					return snap.Corruptf("matching: edge %v duplicated", k)
				}
				m.present[bit>>6] |= 1 << (uint(bit) & 63)
				m.size++
			}
		}
	}
	// Cross-validate: every edge listed at a node must be a member (set at
	// its low endpoint), and the total incidence must be 2·size — together
	// these force each edge to appear exactly once per endpoint.
	total := 0
	for u := 0; u < m.n; u++ {
		total += int(m.deg[u])
		for _, k := range m.IncidentView(u) {
			if !m.Has(k) {
				return snap.Corruptf("matching: edge %v listed at node %d but not a member", k, u)
			}
		}
	}
	if total != 2*m.size {
		return snap.Corruptf("matching: %d incidence entries for %d edges", total, m.size)
	}
	return nil
}
