package matching

import (
	"sort"

	"obm/internal/trace"
)

// IteratedMWM computes a maximum-weight b-matching heuristically by running
// b rounds of (1-)maximum-weight matching and uniting the rounds, removing
// matched edges and capacity-exhausted nodes between rounds. This is the
// construction behind the paper's SO-BMA baseline (the paper applies
// NetworkX's blossom matching; with b > 1 switches, each switch provides
// one matching, so the union of b disjoint matchings models the b optical
// switches exactly). Each round adds at most one edge per node, so the
// result is always a valid b-matching.
func IteratedMWM(n int, edges []WeightedEdge, b int) []trace.PairKey {
	if b < 1 {
		panic("matching: IteratedMWM requires b >= 1")
	}
	remaining := make([]WeightedEdge, 0, len(edges))
	for _, e := range edges {
		if e.W > 0 {
			remaining = append(remaining, e)
		}
	}
	capacity := make([]int, n)
	for i := range capacity {
		capacity[i] = b
	}
	var out []trace.PairKey
	for round := 0; round < b && len(remaining) > 0; round++ {
		mate := MaxWeightMatching(n, remaining, false)
		chosen := make(map[trace.PairKey]struct{})
		for v := 0; v < n; v++ {
			if mate[v] > v {
				k := trace.MakePairKey(v, mate[v])
				chosen[k] = struct{}{}
				out = append(out, k)
				capacity[v]--
				capacity[mate[v]]--
			}
		}
		if len(chosen) == 0 {
			break
		}
		next := remaining[:0]
		for _, e := range remaining {
			if _, picked := chosen[trace.MakePairKey(e.U, e.V)]; picked {
				continue
			}
			if capacity[e.U] == 0 || capacity[e.V] == 0 {
				continue
			}
			next = append(next, e)
		}
		remaining = next
	}
	return out
}

// GreedyBMatching computes a b-matching by scanning edges in order of
// decreasing weight and taking every edge whose endpoints both have spare
// capacity. A classic 1/2-approximation of maximum-weight b-matching;
// used as a fast baseline and as a sanity lower bound for IteratedMWM.
func GreedyBMatching(n int, edges []WeightedEdge, b int) []trace.PairKey {
	if b < 1 {
		panic("matching: GreedyBMatching requires b >= 1")
	}
	sorted := append([]WeightedEdge(nil), edges...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].W != sorted[j].W {
			return sorted[i].W > sorted[j].W
		}
		// Deterministic tie-break.
		if sorted[i].U != sorted[j].U {
			return sorted[i].U < sorted[j].U
		}
		return sorted[i].V < sorted[j].V
	})
	deg := make([]int, n)
	var out []trace.PairKey
	for _, e := range sorted {
		if e.W <= 0 {
			break
		}
		if deg[e.U] < b && deg[e.V] < b {
			deg[e.U]++
			deg[e.V]++
			out = append(out, trace.MakePairKey(e.U, e.V))
		}
	}
	return out
}

// TotalWeight sums the weights of the selected pairs given a weight lookup.
func TotalWeight(pairs []trace.PairKey, weight map[trace.PairKey]float64) float64 {
	var s float64
	for _, k := range pairs {
		s += weight[k]
	}
	return s
}

// BruteForceMWM computes an exact maximum-weight matching by exhaustive
// search over edge subsets. Exponential; for cross-validation on small
// graphs only (len(edges) <= ~22).
func BruteForceMWM(n int, edges []WeightedEdge) float64 {
	return bruteForce(n, edges, 1)
}

// BruteForceBMatching computes the exact maximum-weight b-matching value by
// exhaustive search. Exponential; tests only.
func BruteForceBMatching(n int, edges []WeightedEdge, b int) float64 {
	return bruteForce(n, edges, b)
}

func bruteForce(n int, edges []WeightedEdge, b int) float64 {
	if len(edges) > 24 {
		panic("matching: brute force limited to 24 edges")
	}
	deg := make([]int, n)
	var best float64
	var rec func(i int, cur float64)
	rec = func(i int, cur float64) {
		if cur > best {
			best = cur
		}
		if i == len(edges) {
			return
		}
		// Skip edge i.
		rec(i+1, cur)
		// Take edge i if feasible.
		e := edges[i]
		if deg[e.U] < b && deg[e.V] < b {
			deg[e.U]++
			deg[e.V]++
			rec(i+1, cur+e.W)
			deg[e.U]--
			deg[e.V]--
		}
	}
	rec(0, 0)
	return best
}
