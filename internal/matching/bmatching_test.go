package matching

import (
	"testing"
	"testing/quick"

	"obm/internal/stats"
	"obm/internal/trace"
)

func TestBMatchingAddRemove(t *testing.T) {
	m := NewBMatching(4, 1)
	k01 := trace.MakePairKey(0, 1)
	if err := m.Add(k01); err != nil {
		t.Fatal(err)
	}
	if !m.Has(k01) || m.Size() != 1 || m.Degree(0) != 1 {
		t.Fatal("add bookkeeping wrong")
	}
	if err := m.Add(k01); err == nil {
		t.Fatal("duplicate add accepted")
	}
	if err := m.Add(trace.MakePairKey(0, 2)); err == nil {
		t.Fatal("degree cap violated")
	}
	if err := m.Add(trace.MakePairKey(2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove(k01); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove(k01); err == nil {
		t.Fatal("double remove accepted")
	}
	if m.Free(0) != 1 {
		t.Fatal("free capacity wrong after remove")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBMatchingOutOfRange(t *testing.T) {
	m := NewBMatching(3, 1)
	if err := m.Add(trace.MakePairKey(0, 3)); err == nil {
		t.Fatal("out-of-range pair accepted")
	}
}

func TestBMatchingIncident(t *testing.T) {
	m := NewBMatching(5, 2)
	m.Add(trace.MakePairKey(0, 1))
	m.Add(trace.MakePairKey(0, 2))
	inc := m.Incident(0)
	if len(inc) != 2 {
		t.Fatalf("incident = %v", inc)
	}
}

func TestBMatchingInvariantUnderRandomOps(t *testing.T) {
	if err := quick.Check(func(ops []uint16, bRaw uint8) bool {
		n := 8
		b := int(bRaw%3) + 1
		m := NewBMatching(n, b)
		for _, op := range ops {
			u := int(op) % n
			v := int(op>>4) % n
			if u == v {
				continue
			}
			k := trace.MakePairKey(u, v)
			if op&0x8000 != 0 && m.Has(k) {
				if err := m.Remove(k); err != nil {
					return false
				}
			} else if !m.Has(k) && m.Degree(u) < b && m.Degree(v) < b {
				if err := m.Add(k); err != nil {
					return false
				}
			}
			if m.CheckInvariants() != nil {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyBMatchingRespectsDegree(t *testing.T) {
	r := stats.NewRand(5)
	n := 20
	var edges []WeightedEdge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, WeightedEdge{u, v, float64(r.Intn(100))})
		}
	}
	for _, b := range []int{1, 2, 5} {
		pairs := GreedyBMatching(n, edges, b)
		deg := make([]int, n)
		for _, k := range pairs {
			u, v := k.Endpoints()
			deg[u]++
			deg[v]++
		}
		for u, d := range deg {
			if d > b {
				t.Fatalf("b=%d: node %d degree %d", b, u, d)
			}
		}
	}
}

func TestGreedyIsHalfApprox(t *testing.T) {
	// Greedy b-matching is a 1/2-approximation; verify on small instances
	// against brute force.
	r := stats.NewRand(9)
	for trial := 0; trial < 100; trial++ {
		n := 5 + r.Intn(3)
		var edges []WeightedEdge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Bool(0.5) {
					edges = append(edges, WeightedEdge{u, v, float64(1 + r.Intn(50))})
				}
			}
		}
		if len(edges) > 20 {
			edges = edges[:20]
		}
		b := 1 + r.Intn(2)
		opt := BruteForceBMatching(n, edges, b)
		wmap := map[trace.PairKey]float64{}
		for _, e := range edges {
			wmap[trace.MakePairKey(e.U, e.V)] = e.W
		}
		got := TotalWeight(GreedyBMatching(n, edges, b), wmap)
		if got < opt/2 {
			t.Fatalf("trial %d: greedy %v < half of optimum %v", trial, got, opt)
		}
	}
}

func TestIteratedMWMValidAndStrong(t *testing.T) {
	r := stats.NewRand(31)
	for trial := 0; trial < 60; trial++ {
		n := 5 + r.Intn(3)
		var edges []WeightedEdge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Bool(0.6) {
					edges = append(edges, WeightedEdge{u, v, float64(1 + r.Intn(40))})
				}
			}
		}
		if len(edges) > 20 {
			edges = edges[:20]
		}
		b := 1 + r.Intn(3)
		pairs := IteratedMWM(n, edges, b)
		deg := make([]int, n)
		seen := map[trace.PairKey]bool{}
		for _, k := range pairs {
			if seen[k] {
				t.Fatalf("trial %d: duplicate pair %v", trial, k)
			}
			seen[k] = true
			u, v := k.Endpoints()
			deg[u]++
			deg[v]++
		}
		for u, d := range deg {
			if d > b {
				t.Fatalf("trial %d: node %d degree %d > b=%d", trial, u, d, b)
			}
		}
		wmap := map[trace.PairKey]float64{}
		for _, e := range edges {
			wmap[trace.MakePairKey(e.U, e.V)] = e.W
		}
		got := TotalWeight(pairs, wmap)
		opt := BruteForceBMatching(n, edges, b)
		greedy := TotalWeight(GreedyBMatching(n, edges, b), wmap)
		if got > opt+1e-9 {
			t.Fatalf("trial %d: iterated MWM %v exceeds optimum %v", trial, got, opt)
		}
		// Iterated MWM should be at least half the optimum in practice; we
		// assert the weaker guarantee that it is competitive with greedy/2 to
		// catch gross regressions without over-fitting.
		if got < greedy/2 {
			t.Fatalf("trial %d: iterated MWM %v far below greedy %v", trial, got, greedy)
		}
	}
}

func TestIteratedMWMExactForB1(t *testing.T) {
	// With b=1, IteratedMWM is exactly one blossom run: optimal.
	r := stats.NewRand(41)
	for trial := 0; trial < 50; trial++ {
		n := 6
		var edges []WeightedEdge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Bool(0.5) {
					edges = append(edges, WeightedEdge{u, v, float64(1 + r.Intn(30))})
				}
			}
		}
		wmap := map[trace.PairKey]float64{}
		for _, e := range edges {
			wmap[trace.MakePairKey(e.U, e.V)] = e.W
		}
		got := TotalWeight(IteratedMWM(n, edges, 1), wmap)
		want := BruteForceMWM(n, edges)
		if got != want {
			t.Fatalf("trial %d: %v != %v", trial, got, want)
		}
	}
}

func TestBMatchingPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewBMatching(1, 1) },
		func() { NewBMatching(3, 0) },
		func() { IteratedMWM(3, nil, 0) },
		func() { GreedyBMatching(3, nil, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
