package matching_test

import (
	"fmt"

	"obm/internal/matching"
)

// ExampleMaxWeightMatching solves a small instance where two light edges
// beat one heavy edge.
func ExampleMaxWeightMatching() {
	edges := []matching.WeightedEdge{
		{U: 0, V: 1, W: 3}, {U: 1, V: 2, W: 5}, {U: 2, V: 3, W: 3},
	}
	mate := matching.MaxWeightMatching(4, edges, false)
	fmt.Println(mate)
	// Output: [1 0 3 2]
}

// ExampleIteratedMWM builds the SO-BMA-style b-matching: b rounds of
// maximum-weight matching.
func ExampleIteratedMWM() {
	edges := []matching.WeightedEdge{
		{U: 0, V: 1, W: 10}, {U: 0, V: 2, W: 9}, {U: 1, V: 2, W: 1},
	}
	// Round 1 picks {0,1} (weight 10); round 2 picks {0,2} (weight 9;
	// {1,2} conflicts with it at node 2).
	pairs := matching.IteratedMWM(3, edges, 2)
	fmt.Println(len(pairs))
	// Output: 2
}
