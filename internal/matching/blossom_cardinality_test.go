package matching

import (
	"testing"

	"obm/internal/stats"
)

// bruteForceMaxCardinality finds the maximum weight among matchings of
// maximum cardinality, by exhaustive search.
func bruteForceMaxCardinality(n int, edges []WeightedEdge) (size int, weight float64) {
	deg := make([]int, n)
	var rec func(i, curSize int, curW float64)
	rec = func(i, curSize int, curW float64) {
		if curSize > size || (curSize == size && curW > weight) {
			size, weight = curSize, curW
		}
		if i == len(edges) {
			return
		}
		rec(i+1, curSize, curW)
		e := edges[i]
		if deg[e.U] == 0 && deg[e.V] == 0 {
			deg[e.U], deg[e.V] = 1, 1
			rec(i+1, curSize+1, curW+e.W)
			deg[e.U], deg[e.V] = 0, 0
		}
	}
	rec(0, 0, 0)
	return
}

func TestMaxCardinalityRandomVsBruteForce(t *testing.T) {
	r := stats.NewRand(91)
	for trial := 0; trial < 150; trial++ {
		n := 4 + r.Intn(4)
		var edges []WeightedEdge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Bool(0.5) {
					edges = append(edges, WeightedEdge{u, v, float64(1 + r.Intn(15))})
				}
			}
		}
		if len(edges) > 18 {
			edges = edges[:18]
		}
		mate := MaxWeightMatching(n, edges, true)
		checkMateConsistent(t, mate)
		gotSize := 0
		for v, m := range mate {
			if m > v {
				gotSize++
			}
		}
		gotW := mateWeight(n, edges, mate)
		wantSize, wantW := bruteForceMaxCardinality(n, edges)
		if gotSize != wantSize {
			t.Fatalf("trial %d: cardinality %d, want %d (edges %v)", trial, gotSize, wantSize, edges)
		}
		if gotW < wantW-1e-9 {
			t.Fatalf("trial %d: weight %v below optimum %v at max cardinality", trial, gotW, wantW)
		}
	}
}

func TestMaxCardinalityPathGraphs(t *testing.T) {
	// Path graphs have a unique maximum-cardinality structure.
	for _, n := range []int{2, 3, 4, 5, 6, 7, 8} {
		var edges []WeightedEdge
		for i := 0; i+1 < n; i++ {
			edges = append(edges, WeightedEdge{i, i + 1, 1})
		}
		mate := MaxWeightMatching(n, edges, true)
		size := 0
		for v, m := range mate {
			if m > v {
				size++
			}
		}
		if size != n/2 {
			t.Fatalf("path n=%d: matched %d edges, want %d", n, size, n/2)
		}
	}
}
