// Package matching provides the b-matching substrate: a dynamic
// degree-capped matching structure used by the online algorithms, a full
// Edmonds-blossom maximum-weight matching implementation (the algorithm
// behind the paper's SO-BMA baseline, which used NetworkX's port of the
// same), offline maximum-weight b-matching constructions, and exact
// brute-force references for testing.
package matching

import (
	"fmt"

	"obm/internal/trace"
)

// BMatching is a dynamic b-matching over n nodes: a set of node pairs such
// that every node has at most b incident pairs. It is the structure M that
// the online algorithms reconfigure.
type BMatching struct {
	n, b  int
	deg   []int
	edges map[trace.PairKey]struct{}
	inc   []map[trace.PairKey]struct{} // incident pairs per node
}

// NewBMatching returns an empty b-matching over n nodes with degree cap b.
// It panics if n < 2 or b < 1.
func NewBMatching(n, b int) *BMatching {
	if n < 2 {
		panic("matching: NewBMatching requires n >= 2")
	}
	if b < 1 {
		panic("matching: NewBMatching requires b >= 1")
	}
	inc := make([]map[trace.PairKey]struct{}, n)
	for i := range inc {
		inc[i] = make(map[trace.PairKey]struct{})
	}
	return &BMatching{
		n:     n,
		b:     b,
		deg:   make([]int, n),
		edges: make(map[trace.PairKey]struct{}),
		inc:   inc,
	}
}

// N returns the node count.
func (m *BMatching) N() int { return m.n }

// B returns the degree cap.
func (m *BMatching) B() int { return m.b }

// Size returns the number of matching edges.
func (m *BMatching) Size() int { return len(m.edges) }

// Has reports whether pair k is a matching edge.
func (m *BMatching) Has(k trace.PairKey) bool {
	_, ok := m.edges[k]
	return ok
}

// Degree returns the number of matching edges incident to node u.
func (m *BMatching) Degree(u int) int { return m.deg[u] }

// Free returns the remaining capacity of node u.
func (m *BMatching) Free(u int) int { return m.b - m.deg[u] }

// Add inserts pair k as a matching edge. It returns an error if k is
// already matched, an endpoint is out of range, or an endpoint is at its
// degree cap.
func (m *BMatching) Add(k trace.PairKey) error {
	u, v := k.Endpoints()
	if v >= m.n {
		return fmt.Errorf("matching: pair %v out of range [0,%d)", k, m.n)
	}
	if m.Has(k) {
		return fmt.Errorf("matching: pair %v already matched", k)
	}
	if m.deg[u] >= m.b {
		return fmt.Errorf("matching: node %d at degree cap %d", u, m.b)
	}
	if m.deg[v] >= m.b {
		return fmt.Errorf("matching: node %d at degree cap %d", v, m.b)
	}
	m.edges[k] = struct{}{}
	m.inc[u][k] = struct{}{}
	m.inc[v][k] = struct{}{}
	m.deg[u]++
	m.deg[v]++
	return nil
}

// Remove deletes pair k from the matching. It returns an error if k is not
// matched.
func (m *BMatching) Remove(k trace.PairKey) error {
	if !m.Has(k) {
		return fmt.Errorf("matching: pair %v not matched", k)
	}
	u, v := k.Endpoints()
	delete(m.edges, k)
	delete(m.inc[u], k)
	delete(m.inc[v], k)
	m.deg[u]--
	m.deg[v]--
	return nil
}

// Incident returns the matching edges incident to node u, in unspecified
// order.
func (m *BMatching) Incident(u int) []trace.PairKey {
	out := make([]trace.PairKey, 0, len(m.inc[u]))
	for k := range m.inc[u] {
		out = append(out, k)
	}
	return out
}

// ForEachIncident calls fn for every matching edge incident to node u,
// stopping early if fn returns false. Allocation-free variant of Incident
// for per-request hot paths.
func (m *BMatching) ForEachIncident(u int, fn func(trace.PairKey) bool) {
	for k := range m.inc[u] {
		if !fn(k) {
			return
		}
	}
}

// Edges returns all matching edges in unspecified order.
func (m *BMatching) Edges() []trace.PairKey {
	out := make([]trace.PairKey, 0, len(m.edges))
	for k := range m.edges {
		out = append(out, k)
	}
	return out
}

// CheckInvariants verifies internal consistency (degree counts match
// incidence sets, no node exceeds the cap). Intended for tests.
func (m *BMatching) CheckInvariants() error {
	deg := make([]int, m.n)
	for k := range m.edges {
		u, v := k.Endpoints()
		deg[u]++
		deg[v]++
		if _, ok := m.inc[u][k]; !ok {
			return fmt.Errorf("matching: edge %v missing from inc[%d]", k, u)
		}
		if _, ok := m.inc[v][k]; !ok {
			return fmt.Errorf("matching: edge %v missing from inc[%d]", k, v)
		}
	}
	for u := 0; u < m.n; u++ {
		if deg[u] != m.deg[u] {
			return fmt.Errorf("matching: node %d degree %d, recorded %d", u, deg[u], m.deg[u])
		}
		if deg[u] > m.b {
			return fmt.Errorf("matching: node %d degree %d exceeds cap %d", u, deg[u], m.b)
		}
		if len(m.inc[u]) != deg[u] {
			return fmt.Errorf("matching: node %d incidence size %d != degree %d", u, len(m.inc[u]), deg[u])
		}
	}
	return nil
}
