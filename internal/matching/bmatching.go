// Package matching provides the b-matching substrate: a dynamic
// degree-capped matching structure used by the online algorithms, a full
// Edmonds-blossom maximum-weight matching implementation (the algorithm
// behind the paper's SO-BMA baseline, which used NetworkX's port of the
// same), offline maximum-weight b-matching constructions, and exact
// brute-force references for testing.
package matching

import (
	"fmt"

	"obm/internal/trace"
)

// BMatching is a dynamic b-matching over n nodes: a set of node pairs such
// that every node has at most b incident pairs. It is the structure M that
// the online algorithms reconfigure.
//
// The representation is fully array-backed — degree counts in a flat
// []int32 and per-node incidence lists in fixed-capacity slices of one
// shared n·b slab — so membership tests, insertions and removals on the
// per-request hot path never touch a hash map. Membership is an O(b) scan
// of the smaller-degree endpoint's incidence list; b is a small constant
// (the number of optical switches per rack) in every workload this
// repository models.
type BMatching struct {
	n, b    int
	size    int
	deg     []int32
	inc     []trace.PairKey // inc[u*b : u*b+deg[u]] are the pairs incident to u
	present []uint64        // membership bitset over the dense pair index
}

// NewBMatching returns an empty b-matching over n nodes with degree cap b.
// It panics if n < 2 or b < 1.
func NewBMatching(n, b int) *BMatching {
	if n < 2 {
		panic("matching: NewBMatching requires n >= 2")
	}
	if b < 1 {
		panic("matching: NewBMatching requires b >= 1")
	}
	return &BMatching{
		n:       n,
		b:       b,
		deg:     make([]int32, n),
		inc:     make([]trace.PairKey, n*b),
		present: make([]uint64, (trace.NumPairs(n)+63)/64),
	}
}

// Reset empties the matching in place, leaving it indistinguishable from a
// freshly constructed BMatching of the same dimensions. The backing slabs
// are retained (incidence entries past a node's degree are never read), so
// algorithms resetting between repetitions stop allocating once warm.
func (m *BMatching) Reset() {
	clear(m.deg)
	clear(m.present)
	m.size = 0
}

// pairBit returns the dense row-major pair index of {u, v}, u < v — the
// same enumeration as trace.PairID, computed arithmetically so membership
// is one bit test.
func (m *BMatching) pairBit(u, v int) int {
	return u*(2*m.n-u-1)/2 + (v - u - 1)
}

// N returns the node count.
func (m *BMatching) N() int { return m.n }

// B returns the degree cap.
func (m *BMatching) B() int { return m.b }

// Size returns the number of matching edges.
func (m *BMatching) Size() int { return m.size }

// Has reports whether pair k is a matching edge.
func (m *BMatching) Has(k trace.PairKey) bool {
	u, v := k.Endpoints()
	if v >= m.n {
		return false
	}
	i := m.pairBit(u, v)
	return m.present[i>>6]&(1<<(uint(i)&63)) != 0
}

// HasID reports whether the pair with dense index id (trace.PairID order)
// is a matching edge: one bit test, for hot paths that already carry the
// dense index.
func (m *BMatching) HasID(id trace.PairID) bool {
	return m.present[id>>6]&(1<<(uint(id)&63)) != 0
}

// Degree returns the number of matching edges incident to node u.
func (m *BMatching) Degree(u int) int { return int(m.deg[u]) }

// Free returns the remaining capacity of node u.
func (m *BMatching) Free(u int) int { return m.b - int(m.deg[u]) }

// Add inserts pair k as a matching edge. It returns an error if k is
// already matched, an endpoint is out of range, or an endpoint is at its
// degree cap.
func (m *BMatching) Add(k trace.PairKey) error {
	u, v := k.Endpoints()
	if v >= m.n {
		return fmt.Errorf("matching: pair %v out of range [0,%d)", k, m.n)
	}
	if m.Has(k) {
		return fmt.Errorf("matching: pair %v already matched", k)
	}
	if int(m.deg[u]) >= m.b {
		return fmt.Errorf("matching: node %d at degree cap %d", u, m.b)
	}
	if int(m.deg[v]) >= m.b {
		return fmt.Errorf("matching: node %d at degree cap %d", v, m.b)
	}
	m.inc[u*m.b+int(m.deg[u])] = k
	m.inc[v*m.b+int(m.deg[v])] = k
	m.deg[u]++
	m.deg[v]++
	i := m.pairBit(u, v)
	m.present[i>>6] |= 1 << (uint(i) & 63)
	m.size++
	return nil
}

// Remove deletes pair k from the matching. It returns an error if k is not
// matched.
func (m *BMatching) Remove(k trace.PairKey) error {
	if !m.Has(k) {
		return fmt.Errorf("matching: pair %v not matched", k)
	}
	u, v := k.Endpoints()
	m.removeIncident(u, k)
	m.removeIncident(v, k)
	i := m.pairBit(u, v)
	m.present[i>>6] &^= 1 << (uint(i) & 63)
	m.size--
	return nil
}

// removeIncident deletes k from node w's incidence list (swap with last).
func (m *BMatching) removeIncident(w int, k trace.PairKey) {
	base := w * m.b
	last := int(m.deg[w]) - 1
	for i := 0; i <= last; i++ {
		if m.inc[base+i] == k {
			m.inc[base+i] = m.inc[base+last]
			m.deg[w]--
			return
		}
	}
	panic(fmt.Sprintf("matching: edge %v missing from node %d incidence", k, w))
}

// Incident returns the matching edges incident to node u, in unspecified
// order. The result is a fresh slice; use IncidentView or ForEachIncident
// on allocation-sensitive paths.
func (m *BMatching) Incident(u int) []trace.PairKey {
	return append([]trace.PairKey(nil), m.IncidentView(u)...)
}

// IncidentView returns the matching edges incident to node u as a view into
// the matching's backing array, in unspecified order. The view is read-only
// and valid only until the next Add or Remove.
func (m *BMatching) IncidentView(u int) []trace.PairKey {
	return m.inc[u*m.b : u*m.b+int(m.deg[u])]
}

// ForEachIncident calls fn for every matching edge incident to node u,
// stopping early if fn returns false. Allocation-free variant of Incident
// for per-request hot paths.
func (m *BMatching) ForEachIncident(u int, fn func(trace.PairKey) bool) {
	for _, k := range m.IncidentView(u) {
		if !fn(k) {
			return
		}
	}
}

// Edges returns all matching edges in unspecified order.
func (m *BMatching) Edges() []trace.PairKey {
	out := make([]trace.PairKey, 0, m.size)
	for u := 0; u < m.n; u++ {
		for _, k := range m.IncidentView(u) {
			if lo, _ := k.Endpoints(); lo == u {
				out = append(out, k)
			}
		}
	}
	return out
}

// CheckInvariants verifies internal consistency (degree counts match
// incidence lists, both endpoints list every edge, no node exceeds the cap,
// no duplicates). Intended for tests.
func (m *BMatching) CheckInvariants() error {
	edges := 0
	for u := 0; u < m.n; u++ {
		view := m.IncidentView(u)
		if int(m.deg[u]) > m.b {
			return fmt.Errorf("matching: node %d degree %d exceeds cap %d", u, m.deg[u], m.b)
		}
		for i, k := range view {
			ku, kv := k.Endpoints()
			if ku != u && kv != u {
				return fmt.Errorf("matching: edge %v in inc[%d] is not incident to %d", k, u, u)
			}
			for _, q := range view[i+1:] {
				if q == k {
					return fmt.Errorf("matching: edge %v duplicated in inc[%d]", k, u)
				}
			}
			other := ku
			if other == u {
				other = kv
			}
			found := false
			for _, q := range m.IncidentView(other) {
				if q == k {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("matching: edge %v missing from inc[%d]", k, other)
			}
			if ku == u {
				if !m.Has(k) {
					return fmt.Errorf("matching: edge %v in incidence lists but not in bitset", k)
				}
				edges++
			}
		}
	}
	if edges != m.size {
		return fmt.Errorf("matching: %d edges in incidence lists, recorded size %d", edges, m.size)
	}
	bits := 0
	for _, w := range m.present {
		for ; w != 0; w &= w - 1 {
			bits++
		}
	}
	if bits != m.size {
		return fmt.Errorf("matching: %d bits set in membership bitset, recorded size %d", bits, m.size)
	}
	return nil
}
