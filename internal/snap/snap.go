// Package snap provides the little-endian binary primitives shared by
// every snapshot encoder/decoder in this repository (algorithm state,
// simulation counters, engine session blobs, grid checkpoints).
//
// A Writer wraps an io.Writer and a Reader wraps an io.Reader; both keep a
// running CRC-32 (IEEE) over every byte that passes through and both
// implement the plain stream interfaces, so nested Snapshot/Restore calls
// compose: an outer format wraps the stream once, inner sections write
// through it, and the outer trailer (WriteCRC / VerifyCRC) then covers the
// whole blob. Errors are sticky — after the first failure every call is a
// no-op and Err returns the original cause — so encoders can be written as
// straight-line sequences with a single error check at the end.
//
// Decoders are written to be safe on adversarial input (the fuzz targets
// feed them arbitrary bytes): every variable-length field is validated
// against shape the restoring instance already knows, so a corrupt or
// truncated snapshot produces an error, never a panic or an
// attacker-controlled allocation.
package snap

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
)

// ErrCorrupt tags snapshot decoding failures caused by the input bytes
// (bad magic, shape mismatch, failed CRC) as opposed to I/O errors.
var ErrCorrupt = fmt.Errorf("snap: corrupt snapshot")

// Corruptf returns an error wrapping ErrCorrupt, so callers can classify
// "bad bytes" separately from "broken transport" with errors.Is.
func Corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// Writer encodes little-endian primitives onto an io.Writer with a running
// CRC-32 and a sticky error.
type Writer struct {
	w   io.Writer
	crc hash.Hash32
	err error
	buf [8]byte
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, crc: crc32.NewIEEE()}
}

// Err returns the first error encountered, if any.
func (w *Writer) Err() error { return w.err }

// Write implements io.Writer: raw bytes pass through the CRC accumulator,
// which is what lets nested snapshot sections share one trailer.
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	n, err := w.w.Write(p)
	w.crc.Write(p[:n])
	if err != nil {
		w.err = err
	}
	return n, err
}

// Bytes writes p verbatim.
func (w *Writer) Bytes(p []byte) { w.Write(p) }

// U8 writes one byte.
func (w *Writer) U8(v uint8) {
	w.buf[0] = v
	w.Write(w.buf[:1])
}

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.Write(w.buf[:4])
}

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.Write(w.buf[:8])
}

// I64 writes a little-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 writes a float64 as its IEEE-754 bits (bit-exact round trips).
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// I32s writes each element of vs as a little-endian uint32 bit pattern.
func (w *Writer) I32s(vs []int32) {
	for _, v := range vs {
		w.U32(uint32(v))
	}
}

// U64s writes each element of vs.
func (w *Writer) U64s(vs []uint64) {
	for _, v := range vs {
		w.U64(v)
	}
}

// F64s writes each element of vs bit-exactly.
func (w *Writer) F64s(vs []float64) {
	for _, v := range vs {
		w.F64(v)
	}
}

// WriteCRC appends the running CRC-32 as a little-endian trailer. The
// trailer itself feeds the CRC too (harmlessly — the matching VerifyCRC
// compares before consuming it), so nested sections must not call this;
// only the outermost format does, exactly once, as its final field.
func (w *Writer) WriteCRC() {
	w.U32(w.crc.Sum32())
}

// Reader decodes little-endian primitives from an io.Reader with a running
// CRC-32 and a sticky error.
type Reader struct {
	r   io.Reader
	crc hash.Hash32
	err error
	buf [8]byte
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r, crc: crc32.NewIEEE()}
}

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// fail records the sticky error (first one wins).
func (r *Reader) fail(err error) {
	if r.err == nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = Corruptf("truncated snapshot")
		}
		r.err = err
	}
}

// Read implements io.Reader, feeding the CRC accumulator.
func (r *Reader) Read(p []byte) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	n, err := r.r.Read(p)
	r.crc.Write(p[:n])
	if err != nil && err != io.EOF {
		r.err = err
	}
	return n, err
}

// Bytes fills p from the stream.
func (r *Reader) Bytes(p []byte) {
	if r.err != nil {
		return
	}
	if _, err := io.ReadFull(r, p); err != nil {
		r.fail(err)
	}
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	r.Bytes(r.buf[:1])
	if r.err != nil {
		return 0
	}
	return r.buf[0]
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	r.Bytes(r.buf[:4])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(r.buf[:4])
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	r.Bytes(r.buf[:8])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(r.buf[:8])
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads a float64 from its IEEE-754 bits.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// I32s fills vs with little-endian int32 values.
func (r *Reader) I32s(vs []int32) {
	for i := range vs {
		vs[i] = int32(r.U32())
	}
}

// U64s fills vs.
func (r *Reader) U64s(vs []uint64) {
	for i := range vs {
		vs[i] = r.U64()
	}
}

// F64s fills vs bit-exactly.
func (r *Reader) F64s(vs []float64) {
	for i := range vs {
		vs[i] = r.F64()
	}
}

// Expect reads len(want) bytes and fails unless they equal want; used for
// magic tags.
func (r *Reader) Expect(want []byte) {
	got := make([]byte, len(want))
	r.Bytes(got)
	if r.err != nil {
		return
	}
	for i := range want {
		if got[i] != want[i] {
			r.fail(Corruptf("bad magic %q, want %q", got, want))
			return
		}
	}
}

// VerifyCRC reads the little-endian CRC-32 trailer and compares it with
// the running CRC over everything read so far. Call exactly once, as the
// outermost format's final field.
func (r *Reader) VerifyCRC() {
	if r.err != nil {
		return
	}
	want := r.crc.Sum32()
	got := r.U32()
	if r.err != nil {
		return
	}
	if got != want {
		r.fail(Corruptf("CRC mismatch: stored %#08x, computed %#08x", got, want))
	}
}
