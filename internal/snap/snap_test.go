package snap

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

// TestRoundTrip checks that every primitive round-trips bit-exactly and
// that the CRC trailer verifies.
func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Bytes([]byte("MAGI"))
	w.U8(7)
	w.U32(0xdeadbeef)
	w.U64(1 << 60)
	w.I64(-42)
	w.F64(math.Pi)
	w.F64(math.Inf(-1))
	w.I32s([]int32{-1, 0, 1 << 30})
	w.U64s([]uint64{0, ^uint64(0)})
	w.F64s([]float64{0.5, -0.0})
	w.WriteCRC()
	if err := w.Err(); err != nil {
		t.Fatalf("writer error: %v", err)
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	r.Expect([]byte("MAGI"))
	if got := r.U8(); got != 7 {
		t.Errorf("U8 = %d, want 7", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 1<<60 {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 = %v, want -Inf", got)
	}
	i32 := make([]int32, 3)
	r.I32s(i32)
	if i32[0] != -1 || i32[2] != 1<<30 {
		t.Errorf("I32s = %v", i32)
	}
	u64 := make([]uint64, 2)
	r.U64s(u64)
	if u64[1] != ^uint64(0) {
		t.Errorf("U64s = %v", u64)
	}
	f64 := make([]float64, 2)
	r.F64s(f64)
	if math.Float64bits(f64[1]) != math.Float64bits(-0.0) {
		t.Errorf("F64s negative zero lost: %v", f64)
	}
	r.VerifyCRC()
	if err := r.Err(); err != nil {
		t.Fatalf("reader error: %v", err)
	}
}

// TestCorruption checks that flipped bits fail the CRC and that truncation
// and bad magic surface as ErrCorrupt, never as success.
func TestCorruption(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Bytes([]byte("MAGI"))
	w.U64(12345)
	w.WriteCRC()
	blob := buf.Bytes()

	for i := range blob {
		bad := bytes.Clone(blob)
		bad[i] ^= 0x40
		r := NewReader(bytes.NewReader(bad))
		r.Expect([]byte("MAGI"))
		r.U64()
		r.VerifyCRC()
		if r.Err() == nil {
			t.Fatalf("flip at byte %d went undetected", i)
		}
		if !errors.Is(r.Err(), ErrCorrupt) {
			t.Fatalf("flip at byte %d: error %v does not wrap ErrCorrupt", i, r.Err())
		}
	}
	for n := 0; n < len(blob); n++ {
		r := NewReader(bytes.NewReader(blob[:n]))
		r.Expect([]byte("MAGI"))
		r.U64()
		r.VerifyCRC()
		if !errors.Is(r.Err(), ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: got %v", n, r.Err())
		}
	}
}

// TestStickyWriterError checks that a failing sink poisons the writer once
// and for all.
func TestStickyWriterError(t *testing.T) {
	w := NewWriter(failWriter{})
	w.U64(1)
	first := w.Err()
	if first == nil {
		t.Fatal("no error from failing sink")
	}
	w.U64(2)
	w.WriteCRC()
	if w.Err() != first {
		t.Fatalf("sticky error replaced: %v -> %v", first, w.Err())
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }
