package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a := NewRand(1)
	b := NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestRandZeroSeedNotDegenerate(t *testing.T) {
	r := NewRand(0)
	var allZero = true
	for i := 0; i < 10; i++ {
		if r.Uint64() != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("zero seed produced all-zero stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRand(9)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := NewRand(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(3)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRand(5)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRand(6)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRand(12)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams correlated: %d/100 equal", same)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRand(13)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v", p)
	}
}
