package stats

// Alias samples from an arbitrary discrete distribution in O(1) per draw
// using the Walker/Vose alias method. Construction is O(n).
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table for the given non-negative weights.
// Weights need not be normalized. It panics if weights is empty, contains a
// negative entry, or sums to zero.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("stats: NewAlias with empty weights")
	}
	var sum float64
	for _, w := range weights {
		if w < 0 {
			panic("stats: NewAlias with negative weight")
		}
		sum += w
	}
	if sum == 0 {
		panic("stats: NewAlias with zero total weight")
	}
	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	// Scaled probabilities; average is exactly 1.
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
	}
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, p := range scaled {
		if p < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Numerical leftovers: both stacks hold entries that should be 1.
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// N returns the support size of the distribution.
func (a *Alias) N() int { return len(a.prob) }

// Sample draws one index distributed according to the table's weights.
func (a *Alias) Sample(r *Rand) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}
