package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a := NewAlias(weights)
	r := NewRand(100)
	const draws = 400000
	counts := make([]float64, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Sample(r)]++
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		got := counts[i] / draws
		want := w / total
		if math.Abs(got-want) > 0.005 {
			t.Errorf("index %d: frequency %v, want %v", i, got, want)
		}
	}
}

func TestAliasSingleton(t *testing.T) {
	a := NewAlias([]float64{5})
	r := NewRand(1)
	for i := 0; i < 100; i++ {
		if a.Sample(r) != 0 {
			t.Fatal("singleton alias must always return 0")
		}
	}
}

func TestAliasZeroWeightNeverSampled(t *testing.T) {
	a := NewAlias([]float64{0, 1, 0, 2})
	r := NewRand(2)
	for i := 0; i < 10000; i++ {
		v := a.Sample(r)
		if v == 0 || v == 2 {
			t.Fatalf("sampled zero-weight index %d", v)
		}
	}
}

func TestAliasPanics(t *testing.T) {
	cases := [][]float64{nil, {}, {-1, 2}, {0, 0}}
	for _, w := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewAlias(%v): expected panic", w)
				}
			}()
			NewAlias(w)
		}()
	}
}

func TestAliasSampleInRange(t *testing.T) {
	r := NewRand(3)
	if err := quick.Check(func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		w := make([]float64, len(raw))
		var sum float64
		for i, v := range raw {
			w[i] = float64(v)
			sum += w[i]
		}
		if sum == 0 {
			return true
		}
		a := NewAlias(w)
		for i := 0; i < 32; i++ {
			v := a.Sample(r)
			if v < 0 || v >= len(w) || w[v] == 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(100, 1.2)
	r := NewRand(4)
	const draws = 200000
	counts := make([]float64, 100)
	for i := 0; i < draws; i++ {
		counts[z.Sample(r)]++
	}
	if counts[0] <= counts[50] {
		t.Fatal("Zipf must favor low ranks")
	}
	want := ZipfWeights(100, 1.2)
	got0 := counts[0] / draws
	if math.Abs(got0-want[0]) > 0.01 {
		t.Fatalf("rank-0 frequency %v, want %v", got0, want[0])
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(10, 0)
	r := NewRand(5)
	counts := make([]float64, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Sample(r)]++
	}
	for i, c := range counts {
		if math.Abs(c/draws-0.1) > 0.01 {
			t.Errorf("rank %d frequency %v, want 0.1", i, c/draws)
		}
	}
}

func TestZipfWeightsNormalized(t *testing.T) {
	w := ZipfWeights(57, 0.9)
	var sum float64
	for _, x := range w {
		sum += x
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum to %v", sum)
	}
	for i := 1; i < len(w); i++ {
		if w[i] > w[i-1] {
			t.Fatal("weights must be non-increasing")
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipf(0, 1) },
		func() { NewZipf(10, -0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
