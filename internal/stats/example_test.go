package stats_test

import (
	"fmt"

	"obm/internal/stats"
)

// ExampleRand shows that the generator is deterministic per seed.
func ExampleRand() {
	a := stats.NewRand(7)
	b := stats.NewRand(7)
	fmt.Println(a.Intn(1000) == b.Intn(1000))
	// Output: true
}

// ExampleZipf draws from a finite power-law distribution, the spatial-skew
// primitive behind the synthetic traces.
func ExampleZipf() {
	z := stats.NewZipf(1000, 1.2)
	r := stats.NewRand(1)
	low := 0
	for i := 0; i < 10000; i++ {
		if z.Sample(r) < 10 {
			low++
		}
	}
	fmt.Println(low > 3000) // top-10 ranks dominate
	// Output: true
}
