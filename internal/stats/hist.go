package stats

import "math/bits"

// Histogram is a fixed-size log2-bucketed histogram in the HDR style:
// values (typically latencies in nanoseconds) land in one of 976 buckets —
// 16 exact buckets for values below 16, then 16 linear sub-buckets per
// power of two — giving a worst-case relative quantile error of 1/16
// (6.25%) over the full uint64 range. Everything is a fixed array, so
// Record is alloc-free and a Histogram embeds into long-lived structs
// (the engine's sessions) without indirection.
//
// Histograms merge by plain counter addition, so per-worker histograms
// fold into one without loss. A Histogram is not safe for concurrent use;
// callers serialize (the engine records under its per-session lock).
const (
	histSub     = 16 // linear sub-buckets per octave, and the exact range
	histBuckets = histSub + (64-4)*histSub
)

// Histogram records value counts. The zero value is an empty histogram
// ready for use.
type Histogram struct {
	counts   [histBuckets]uint64
	count    uint64
	sum      uint64
	min, max uint64
}

// histBucket maps a value to its bucket index.
func histBucket(v uint64) int {
	if v < histSub {
		return int(v)
	}
	e := bits.Len64(v)            // 2^(e-1) <= v < 2^e, e >= 5
	sub := (v >> uint(e-5)) & 0xf // next 4 bits below the leading one
	return histSub + (e-5)*histSub + int(sub)
}

// histUpper returns the largest value mapping to bucket idx — the
// conservative representative Quantile reports.
func histUpper(idx int) uint64 {
	if idx < histSub {
		return uint64(idx)
	}
	e := (idx-histSub)/histSub + 5
	sub := uint64((idx - histSub) % histSub)
	lower := uint64(1)<<uint(e-1) + sub<<uint(e-5)
	return lower + 1<<uint(e-5) - 1
}

// Record adds one value. It never allocates.
func (h *Histogram) Record(v uint64) {
	h.counts[histBucket(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.count }

// Min and Max return the exact extremes of the recorded values (0 when
// empty).
func (h *Histogram) Min() uint64 { return h.min }
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the exact arithmetic mean of the recorded values (0 when
// empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) of the
// recorded values, within one bucket (relative error <= 1/16). It returns
// 0 for an empty histogram; Quantile(1) is clamped to the exact maximum.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(q*float64(h.count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			u := histUpper(i)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}

// Merge folds o's counts into h. Histograms recorded by independent
// workers merge losslessly (counters add).
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Reset clears the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }
