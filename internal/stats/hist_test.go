package stats

import (
	"math"
	"testing"
)

func TestHistogramExactSmallValues(t *testing.T) {
	var h Histogram
	for v := uint64(0); v < 16; v++ {
		h.Record(v)
	}
	if h.Count() != 16 {
		t.Fatalf("count = %d, want 16", h.Count())
	}
	// Values below histSub land in exact buckets, so quantiles are exact.
	if got := h.Quantile(0); got != 0 {
		t.Errorf("p0 = %d, want 0", got)
	}
	if got := h.Quantile(1); got != 15 {
		t.Errorf("p100 = %d, want 15", got)
	}
	// rank(0.5) = round(0.5·16) = 8, and the 8th smallest of 0..15 is 7.
	if got := h.Quantile(0.5); got != 7 {
		t.Errorf("p50 = %d, want 7", got)
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	// Every bucket's upper bound must map back to the same bucket, and
	// upper+1 to the next: the buckets tile the range with no gaps.
	for idx := 0; idx < histBuckets-1; idx++ {
		u := histUpper(idx)
		if got := histBucket(u); got != idx {
			t.Fatalf("bucket(upper(%d)) = %d", idx, got)
		}
		if got := histBucket(u + 1); got != idx+1 {
			t.Fatalf("bucket(upper(%d)+1) = %d, want %d", idx, got, idx+1)
		}
	}
}

func TestHistogramQuantileError(t *testing.T) {
	var h Histogram
	const n = 100000
	for v := uint64(1); v <= n; v++ {
		h.Record(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := float64(h.Quantile(q))
		want := q * n
		if got < want || got > want*(1+1.0/16)+1 {
			t.Errorf("q=%g: got %g, want in [%g, %g]", q, got, want, want*(1+1.0/16)+1)
		}
	}
	if h.Min() != 1 || h.Max() != n {
		t.Errorf("min/max = %d/%d, want 1/%d", h.Min(), h.Max(), n)
	}
	if mean := h.Mean(); math.Abs(mean-(n+1)/2) > 0.5 {
		t.Errorf("mean = %g, want %g", mean, float64(n+1)/2)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, both Histogram
	for v := uint64(1); v <= 1000; v++ {
		a.Record(v)
		both.Record(v)
	}
	for v := uint64(1000000); v <= 1001000; v++ {
		b.Record(v)
		both.Record(v)
	}
	a.Merge(&b)
	if a.Count() != both.Count() || a.Min() != both.Min() || a.Max() != both.Max() {
		t.Fatalf("merge mismatch: %d/%d/%d vs %d/%d/%d",
			a.Count(), a.Min(), a.Max(), both.Count(), both.Min(), both.Max())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.999} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Errorf("q=%g: merged %d != direct %d", q, a.Quantile(q), both.Quantile(q))
		}
	}
	// Merging into an empty histogram preserves min.
	var empty Histogram
	empty.Merge(&both)
	if empty.Min() != both.Min() {
		t.Errorf("empty-merge min = %d, want %d", empty.Min(), both.Min())
	}
}

func TestHistogramRecordAllocFree(t *testing.T) {
	var h Histogram
	v := uint64(12345)
	if allocs := testing.AllocsPerRun(100, func() {
		h.Record(v)
		v += 999
	}); allocs != 0 {
		t.Errorf("Record allocates %.1f times per call, want 0", allocs)
	}
}

func TestHistogramEmptyAndReset(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram not zero-valued")
	}
	h.Record(42)
	h.Reset()
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("reset histogram not empty")
	}
}
