package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (0 for fewer than 2 items).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Gini returns the Gini coefficient of the non-negative values in xs:
// 0 = perfectly uniform, →1 = maximally skewed. Used to quantify the spatial
// skew of traffic matrices. Returns 0 for empty or all-zero input.
func Gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var cum, total float64
	for i, x := range s {
		cum += float64(i+1) * x
		total += x
	}
	if total == 0 {
		return 0
	}
	return (2*cum/(float64(n)*total) - float64(n+1)/float64(n))
}

// Summary is the aggregate of one metric over a set of repetitions: the
// row format of the scenario-grid runner. The zero value is the summary of
// an empty sample.
type Summary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"` // population standard deviation
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// Summarize aggregates xs into a Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Mean: Mean(xs), Std: StdDev(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs[1:] {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	return s
}

// MeanStd renders the summary as "mean ± std" in compact scientific
// notation — the cell format of rendered report tables. An empty summary
// renders as "-".
func (s Summary) MeanStd() string {
	if s.N == 0 {
		return "-"
	}
	if s.N == 1 || s.Std == 0 {
		return fmt.Sprintf("%.4g", s.Mean)
	}
	return fmt.Sprintf("%.4g ± %.2g", s.Mean, s.Std)
}

// Entropy returns the Shannon entropy (bits) of a discrete distribution
// given by non-negative weights (not necessarily normalized).
// Returns 0 for empty or all-zero input.
func Entropy(weights []float64) float64 {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, w := range weights {
		if w > 0 {
			p := w / total
			h -= p * math.Log2(p)
		}
	}
	return h
}
