// Package stats provides deterministic pseudo-random number generation and
// the statistical samplers used by the workload generators and randomized
// algorithms in this repository.
//
// Everything in this package is seedable and reproducible: the same seed
// always yields the same stream, independent of the Go version, because the
// generators are implemented here rather than delegated to math/rand.
package stats

import (
	"errors"
	"math"
)

// Rand is a deterministic pseudo-random number generator based on
// xoshiro256** (Blackman & Vigna), seeded through splitmix64. It is not safe
// for concurrent use; create one Rand per goroutine.
type Rand struct {
	s [4]uint64
}

// NewRand returns a generator seeded with seed. Any seed (including 0) is
// valid: the state is expanded through splitmix64 so it is never all-zero.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Int63 returns a non-negative 63-bit value.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	threshold := -n % n
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= threshold {
			return hi
		}
	}
}

func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// NormFloat64 returns a standard normal value (Marsaglia polar method).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using swap (Fisher–Yates).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Split derives an independent generator from the current one. Useful for
// giving each of several components its own reproducible stream.
func (r *Rand) Split() *Rand { return NewRand(r.Uint64()) }

// State returns the generator's internal state, for snapshotting. A
// generator restored with SetState continues the exact same stream.
func (r *Rand) State() [4]uint64 { return r.s }

// SetState restores a state previously returned by State. The all-zero
// state is invalid for xoshiro256** (it is a fixed point of the update and
// Seed can never produce it); SetState rejects it so a corrupt snapshot
// cannot wedge the generator.
func (r *Rand) SetState(s [4]uint64) error {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return errors.New("stats: SetState with all-zero xoshiro256** state")
	}
	r.s = s
	return nil
}
