package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if m := Mean(xs); m != 3 {
		t.Fatalf("Mean = %v", m)
	}
	if v := Variance(xs); !approx(v, 2, 1e-12) {
		t.Fatalf("Variance = %v", v)
	}
	if s := StdDev(xs); !approx(s, math.Sqrt2, 1e-12) {
		t.Fatalf("StdDev = %v", s)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty input should give 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !approx(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestGiniUniform(t *testing.T) {
	xs := []float64{2, 2, 2, 2}
	if g := Gini(xs); !approx(g, 0, 1e-12) {
		t.Fatalf("Gini uniform = %v, want 0", g)
	}
}

func TestGiniSkewed(t *testing.T) {
	xs := make([]float64, 100)
	xs[0] = 1 // all mass on one element
	g := Gini(xs)
	if g < 0.95 {
		t.Fatalf("Gini of point mass = %v, want near 1", g)
	}
}

func TestGiniMonotoneInSkew(t *testing.T) {
	flat := Gini(ZipfWeights(50, 0.2))
	steep := Gini(ZipfWeights(50, 1.5))
	if steep <= flat {
		t.Fatalf("Gini should grow with skew: flat=%v steep=%v", flat, steep)
	}
}

func TestEntropyUniform(t *testing.T) {
	w := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	if h := Entropy(w); !approx(h, 3, 1e-12) {
		t.Fatalf("Entropy uniform-8 = %v, want 3 bits", h)
	}
}

func TestEntropyPointMass(t *testing.T) {
	if h := Entropy([]float64{0, 7, 0}); !approx(h, 0, 1e-12) {
		t.Fatalf("Entropy point mass = %v, want 0", h)
	}
}

func TestEntropyBounds(t *testing.T) {
	if err := quick.Check(func(raw []uint8) bool {
		w := make([]float64, len(raw))
		for i, v := range raw {
			w[i] = float64(v)
		}
		h := Entropy(w)
		if h < 0 {
			return false
		}
		if len(w) > 0 && h > math.Log2(float64(len(w)))+1e-9 {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBurstChainStationary(t *testing.T) {
	c := NewBurstChain(0.4, 8)
	r := NewRand(21)
	c.Reset(r)
	const n = 400000
	on := 0
	for i := 0; i < n; i++ {
		if c.Step(r) {
			on++
		}
	}
	p := float64(on) / n
	if math.Abs(p-0.4) > 0.02 {
		t.Fatalf("stationary ON fraction = %v, want ~0.4", p)
	}
}

func TestBurstChainBurstLength(t *testing.T) {
	c := NewBurstChain(0.5, 20)
	r := NewRand(22)
	c.Reset(r)
	var bursts, onSteps int
	prev := c.On()
	for i := 0; i < 500000; i++ {
		cur := c.Step(r)
		if cur {
			onSteps++
			if !prev {
				bursts++
			}
		}
		prev = cur
	}
	if bursts == 0 {
		t.Fatal("no bursts observed")
	}
	avg := float64(onSteps) / float64(bursts)
	if avg < 15 || avg > 25 {
		t.Fatalf("average burst length = %v, want ~20", avg)
	}
}

func TestBurstChainNeverOnWhenPZero(t *testing.T) {
	c := NewBurstChain(0, 5)
	r := NewRand(23)
	c.Reset(r)
	for i := 0; i < 1000; i++ {
		if c.Step(r) {
			t.Fatal("chain with pOn=0 entered ON state")
		}
	}
}

func TestBurstChainPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewBurstChain(-0.1, 5) },
		func() { NewBurstChain(1.0, 5) },
		func() { NewBurstChain(0.5, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("Summarize = %+v", s)
	}
	if want := StdDev([]float64{4, 1, 3, 2}); s.Std != want {
		t.Fatalf("Std = %v, want %v", s.Std, want)
	}
	if z := Summarize(nil); z != (Summary{}) {
		t.Fatalf("empty Summarize = %+v", z)
	}
	one := Summarize([]float64{7})
	if one.N != 1 || one.Mean != 7 || one.Std != 0 || one.Min != 7 || one.Max != 7 {
		t.Fatalf("single-sample Summarize = %+v", one)
	}
}
