package stats

// BurstChain is a two-state Markov-modulated process used to inject temporal
// burstiness into synthetic traces. In the ON state the process keeps
// repeating the current "focus" (e.g. the same communicating rack pair);
// in the OFF state each step draws fresh.
//
// The chain is parameterized by the stationary ON probability pOn and the
// expected burst length burstLen (number of consecutive ON steps). From
// these, the transition probabilities are derived:
//
//	P(ON→OFF)  = 1/burstLen
//	P(OFF→ON)  = pOn/(1-pOn) * 1/burstLen   (detailed balance)
type BurstChain struct {
	onToOff  float64
	offToOn  float64
	on       bool
	initProb float64
}

// NewBurstChain constructs the chain. pOn must be in [0, 1) and burstLen
// must be >= 1. With pOn = 0 the chain never enters the ON state.
func NewBurstChain(pOn, burstLen float64) *BurstChain {
	if pOn < 0 || pOn >= 1 {
		panic("stats: NewBurstChain pOn out of [0,1)")
	}
	if burstLen < 1 {
		panic("stats: NewBurstChain burstLen < 1")
	}
	c := &BurstChain{
		onToOff:  1 / burstLen,
		initProb: pOn,
	}
	if pOn > 0 {
		c.offToOn = pOn / (1 - pOn) / burstLen
		if c.offToOn > 1 {
			c.offToOn = 1
		}
	}
	return c
}

// Reset draws the initial state from the stationary distribution.
func (c *BurstChain) Reset(r *Rand) { c.on = r.Bool(c.initProb) }

// Step advances the chain one step and reports whether the process is in
// the ON (bursting) state after the step.
func (c *BurstChain) Step(r *Rand) bool {
	if c.on {
		if r.Bool(c.onToOff) {
			c.on = false
		}
	} else {
		if r.Bool(c.offToOn) {
			c.on = true
		}
	}
	return c.on
}

// On reports the current state without advancing.
func (c *BurstChain) On() bool { return c.on }
