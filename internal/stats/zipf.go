package stats

import "math"

// Zipf samples ranks from a finite Zipf (power-law) distribution:
// P(X = i) ∝ (i+1)^(-s) for i in [0, n). Any exponent s >= 0 is supported
// (s = 0 degenerates to uniform). Sampling is O(1) via an alias table.
type Zipf struct {
	alias *Alias
	s     float64
	n     int
}

// NewZipf builds a Zipf sampler over n ranks with exponent s.
// It panics if n <= 0 or s < 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: NewZipf with non-positive n")
	}
	if s < 0 {
		panic("stats: NewZipf with negative exponent")
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = math.Pow(float64(i+1), -s)
	}
	return &Zipf{alias: NewAlias(w), s: s, n: n}
}

// N returns the support size.
func (z *Zipf) N() int { return z.n }

// S returns the exponent.
func (z *Zipf) S() float64 { return z.s }

// Sample draws one rank in [0, n).
func (z *Zipf) Sample(r *Rand) int { return z.alias.Sample(r) }

// ZipfWeights returns the normalized probability vector of a Zipf
// distribution over n ranks with exponent s.
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = math.Pow(float64(i+1), -s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}
