package sim

import (
	"reflect"
	"testing"

	"obm/internal/core"
	"obm/internal/graph"
	"obm/internal/trace"
)

// The streamed-replay golden suite: chunked Source replay must yield
// bit-identical cost curves to the PR 1 materialized path (RunCompiled) on
// every golden trace family, for every chunk size, through both the
// generator-backed streaming source and the materialized adapter. Together
// with core's golden table (which pins the materialized path to the seed
// implementations) this pins the streamed path to the paper's exact costs.

const streamGoldenAlpha = 30

// goldenStreams mirrors core's golden trace families, each as a stream
// constructor plus its materialized twin.
func goldenStreams(t *testing.T) []struct {
	name   string
	stream func() (trace.Stream, error)
	mat    func() (*trace.Trace, error)
} {
	t.Helper()
	fb := trace.FacebookPreset(trace.Database, 40, 7)
	fb.Requests = 20000
	return []struct {
		name   string
		stream func() (trace.Stream, error)
		mat    func() (*trace.Trace, error)
	}{
		{
			name:   "facebook",
			stream: func() (trace.Stream, error) { return trace.NewFacebookStream(fb) },
			mat:    func() (*trace.Trace, error) { return trace.FacebookStyle(fb) },
		},
		{
			name:   "microsoft",
			stream: func() (trace.Stream, error) { return trace.NewMicrosoftStream(30, 20000, 3) },
			mat:    func() (*trace.Trace, error) { return trace.MicrosoftStyle(30, 20000, 3), nil },
		},
		{
			name:   "uniform",
			stream: func() (trace.Stream, error) { return trace.NewUniformStream(30, 16000, 5) },
			mat:    func() (*trace.Trace, error) { return trace.Uniform(30, 16000, 5), nil },
		},
		{
			name:   "phaseshift",
			stream: func() (trace.Stream, error) { return trace.NewPhaseShiftStream(30, 16000, 4, 11) },
			mat:    func() (*trace.Trace, error) { return trace.PhaseShift(30, 16000, 4, 11) },
		},
	}
}

// sameCurves compares everything that must be bit-identical between two
// replays (wall time excepted).
func sameCurves(t *testing.T, label string, got, want *RunResult) {
	t.Helper()
	if !reflect.DeepEqual(got.Series.X, want.Series.X) ||
		!reflect.DeepEqual(got.Series.Routing, want.Series.Routing) ||
		!reflect.DeepEqual(got.Series.Reconfig, want.Series.Reconfig) {
		t.Errorf("%s: cost curves differ from materialized replay", label)
	}
	if got.Adds != want.Adds || got.Removals != want.Removals {
		t.Errorf("%s: reconfiguration counts (%d,%d) != (%d,%d)",
			label, got.Adds, got.Removals, want.Adds, want.Removals)
	}
	if got.FinalMatchingSize != want.FinalMatchingSize {
		t.Errorf("%s: final matching size %d != %d", label, got.FinalMatchingSize, want.FinalMatchingSize)
	}
}

func TestStreamedReplayMatchesMaterialized(t *testing.T) {
	newAlg := func(name string, n int, model core.CostModel) core.Algorithm {
		t.Helper()
		var (
			alg core.Algorithm
			err error
		)
		switch name {
		case "rbma":
			alg, err = core.NewRBMA(n, 6, model, 1)
		case "bma":
			alg, err = core.NewBMA(n, 6, model)
		}
		if err != nil {
			t.Fatal(err)
		}
		return alg
	}
	for _, fam := range goldenStreams(t) {
		t.Run(fam.name, func(t *testing.T) {
			mat, err := fam.mat()
			if err != nil {
				t.Fatal(err)
			}
			n := mat.NumRacks
			model := core.CostModel{Metric: graph.FatTreeRacks(n).Metric(), Alpha: streamGoldenAlpha}
			ct, err := mat.Compile(model.Metric.Dist)
			if err != nil {
				t.Fatal(err)
			}
			cps := Checkpoints(mat.Len(), 8)
			for _, algName := range []string{"rbma", "bma"} {
				want, err := RunCompiled(newAlg(algName, n, model), ct, model.Alpha, cps)
				if err != nil {
					t.Fatal(err)
				}
				for _, chunkSize := range []int{1, 997, 8192, mat.Len() + 1} {
					// Generator-backed streaming source: trace generated,
					// compiled and replayed chunk by chunk.
					st, err := fam.stream()
					if err != nil {
						t.Fatal(err)
					}
					src, err := trace.NewSource(st, model.Metric.Dist)
					if err != nil {
						t.Fatal(err)
					}
					got, err := RunSource(newAlg(algName, n, model), src, model.Alpha, cps, chunkSize)
					if err != nil {
						t.Fatal(err)
					}
					label := fam.name + "/" + algName + "/stream"
					sameCurves(t, label, &got, &want)

					// Materialized adapter: same compiled trace read as a
					// source.
					got, err = RunSource(newAlg(algName, n, model), ct.Source(), model.Alpha, cps, chunkSize)
					if err != nil {
						t.Fatal(err)
					}
					sameCurves(t, fam.name+"/"+algName+"/adapter", &got, &want)
				}
			}
		})
	}
}

// TestRunAveragedSourceMatchesCompiled pins the repetition-averaged
// streamed path (source Reset per repetition) to the materialized
// averaged path.
func TestRunAveragedSourceMatchesCompiled(t *testing.T) {
	fb := trace.FacebookPreset(trace.Database, 20, 9)
	fb.Requests = 8000
	mat, err := trace.FacebookStyle(fb)
	if err != nil {
		t.Fatal(err)
	}
	model := core.CostModel{Metric: graph.FatTreeRacks(20).Metric(), Alpha: streamGoldenAlpha}
	ct, err := mat.Compile(model.Metric.Dist)
	if err != nil {
		t.Fatal(err)
	}
	f := func(rep uint64) (core.Algorithm, error) {
		return core.NewRBMA(20, 4, model, rep)
	}
	cps := Checkpoints(mat.Len(), 5)
	want, err := RunAveragedCompiled(f, ct, model.Alpha, cps, 3)
	if err != nil {
		t.Fatal(err)
	}
	st, err := trace.NewFacebookStream(fb)
	if err != nil {
		t.Fatal(err)
	}
	src, err := trace.NewSource(st, model.Metric.Dist)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunAveragedSource(f, src, model.Alpha, cps, 3, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.X, want.X) ||
		!reflect.DeepEqual(got.Routing, want.Routing) ||
		!reflect.DeepEqual(got.Reconfig, want.Reconfig) {
		t.Fatal("averaged streamed curves differ from materialized")
	}
}
