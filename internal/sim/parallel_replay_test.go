package sim

import (
	"context"
	"reflect"
	"testing"

	"obm/internal/core"
	"obm/internal/graph"
	"obm/internal/stats"
	"obm/internal/trace"
)

// Golden suite for the parallel replay path: on every paper trace family,
// RunSourceParallel must be byte-identical to sequential RunSource — for
// every shard count, every worker count, and every algorithm in the grid
// line-up. α is 30 (integer) as in all presets, so the canonical-order fold
// is exact, not merely reproducible.

// newGoldenAlg builds one replay instance: the named algorithm wrapped into
// shards planes (shards <= 1 still wraps, so the parallel pump itself is
// exercised at one shard).
func newGoldenAlg(t *testing.T, name string, n, shards, b int, model core.CostModel) *core.Sharded {
	t.Helper()
	part, err := core.NewPartition(n, shards)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := core.NewSharded(part, func(shard int) (core.Algorithm, error) {
		switch name {
		case "rbma":
			return core.NewRBMA(n, b, model, core.ShardSeed(1, shard))
		case "bma":
			return core.NewBMA(n, b, model)
		case "oblivious":
			return core.NewOblivious(model)
		}
		t.Fatalf("unknown algorithm %q", name)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

func TestParallelReplayGolden(t *testing.T) {
	fams := goldenStreams(t)
	algs := []string{"rbma", "bma", "oblivious"}
	shardCounts := []int{1, 2, 4, 7}
	if testing.Short() {
		fams = fams[:2]
		shardCounts = []int{1, 4, 7}
	}
	for _, fam := range fams {
		t.Run(fam.name, func(t *testing.T) {
			mat, err := fam.mat()
			if err != nil {
				t.Fatal(err)
			}
			n := mat.NumRacks
			model := core.CostModel{Metric: graph.FatTreeRacks(n).Metric(), Alpha: streamGoldenAlpha}
			ct, err := mat.Compile(model.Metric.Dist)
			if err != nil {
				t.Fatal(err)
			}
			cps := Checkpoints(mat.Len(), 8)
			for _, algName := range algs {
				for _, shards := range shardCounts {
					want, err := RunSource(newGoldenAlg(t, algName, n, shards, 6, model),
						ct.Source(), model.Alpha, cps, 997)
					if err != nil {
						t.Fatal(err)
					}
					workerCounts := []int{shards, 2, shards + 9}
					if testing.Short() {
						workerCounts = workerCounts[:1]
					}
					for _, workers := range workerCounts {
						// Replay through the generator-backed streaming
						// source, so the reader overlaps generation with
						// the shard workers like a real grid job.
						st, err := fam.stream()
						if err != nil {
							t.Fatal(err)
						}
						src, err := trace.NewSource(st, model.Metric.Dist)
						if err != nil {
							t.Fatal(err)
						}
						got, err := RunSourceParallel(newGoldenAlg(t, algName, n, shards, 6, model),
							src, model.Alpha, cps, 997, workers)
						if err != nil {
							t.Fatal(err)
						}
						label := fam.name + "/" + algName
						sameCurves(t, label, &got, &want)
						if got.Series.Label != want.Series.Label {
							t.Errorf("%s: label %q != %q", label, got.Series.Label, want.Series.Label)
						}
					}
				}
			}
		})
	}
}

// TestParallelReplaySingleShardMatchesPlain: one plane seeded with the base
// seed is the classic unsharded algorithm, so parallel replay at shards = 1
// must reproduce plain sequential RunSource bit for bit — unconditionally,
// for any α, since the single accumulator replays the sequential meter's
// exact operation sequence.
func TestParallelReplaySingleShardMatchesPlain(t *testing.T) {
	fam := goldenStreams(t)[0]
	mat, err := fam.mat()
	if err != nil {
		t.Fatal(err)
	}
	n := mat.NumRacks
	model := core.CostModel{Metric: graph.FatTreeRacks(n).Metric(), Alpha: streamGoldenAlpha}
	ct, err := mat.Compile(model.Metric.Dist)
	if err != nil {
		t.Fatal(err)
	}
	cps := Checkpoints(mat.Len(), 8)
	plain, err := core.NewRBMA(n, 6, model, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunSource(plain, ct.Source(), model.Alpha, cps, 8192)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSourceParallel(newGoldenAlg(t, "rbma", n, 1, 6, model),
		ct.Source(), model.Alpha, cps, 8192, 4)
	if err != nil {
		t.Fatal(err)
	}
	sameCurves(t, "single-shard", &got, &want)
	if got.Series.Label != want.Series.Label {
		t.Errorf("single-shard label %q != plain %q", got.Series.Label, want.Series.Label)
	}
}

// TestParallelReplayFallbackNonSharded: a non-sharded algorithm silently
// takes the sequential path and still matches RunSource.
func TestParallelReplayFallbackNonSharded(t *testing.T) {
	fam := goldenStreams(t)[1]
	mat, err := fam.mat()
	if err != nil {
		t.Fatal(err)
	}
	n := mat.NumRacks
	model := core.CostModel{Metric: graph.FatTreeRacks(n).Metric(), Alpha: streamGoldenAlpha}
	ct, err := mat.Compile(model.Metric.Dist)
	if err != nil {
		t.Fatal(err)
	}
	cps := Checkpoints(mat.Len(), 5)
	newAlg := func() core.Algorithm {
		alg, err := core.NewBMA(n, 4, model)
		if err != nil {
			t.Fatal(err)
		}
		return alg
	}
	want, err := RunSource(newAlg(), ct.Source(), model.Alpha, cps, 4096)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSourceParallel(newAlg(), ct.Source(), model.Alpha, cps, 4096, 8)
	if err != nil {
		t.Fatal(err)
	}
	sameCurves(t, "fallback", &got, &want)
}

// TestParallelReplayCancellation: a cancelled context aborts the replay
// with the context's error and leaves no goroutines behind (the race
// detector and goroutine leak checks in -race CI would flag stragglers).
func TestParallelReplayCancellation(t *testing.T) {
	fam := goldenStreams(t)[2]
	mat, err := fam.mat()
	if err != nil {
		t.Fatal(err)
	}
	n := mat.NumRacks
	model := core.CostModel{Metric: graph.FatTreeRacks(n).Metric(), Alpha: streamGoldenAlpha}
	ct, err := mat.Compile(model.Metric.Dist)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var res RunResult
	err = runSourceParallelInto(ctx, &res, newGoldenAlg(t, "rbma", n, 4, 6, model),
		ct.Source(), model.Alpha, []int{mat.Len()}, trace.NewChunk(1024), 4, nil)
	if err == nil {
		t.Fatal("cancelled parallel replay returned nil error")
	}
}

// TestRunGridParallelMatchesSequential: a multi-plane scenario produces
// identical grid outcomes whether jobs replay sequentially or in parallel —
// the GridOptions.Parallel knob is invisible in results, which is what
// keeps run stores and fleet shards valid across it.
func TestRunGridParallelMatchesSequential(t *testing.T) {
	specs := []ScenarioSpec{{
		Name: "planes", Family: "uniform",
		Racks: 24, Requests: 12000, Seed: 3,
		Bs: []int{2, 4}, Reps: 2, Shards: 4,
	}}
	stripTimes := func(g *GridResult) {
		for i := range g.Rows {
			g.Rows[i].ElapsedMS = stats.Summary{}
		}
	}
	seq, err := RunGrid(specs, GridOptions{Workers: 1, CurvePoints: 6})
	if err != nil {
		t.Fatal(err)
	}
	stripTimes(seq)
	for _, parallel := range []int{2, 4, 9} {
		par, err := RunGrid(specs, GridOptions{Workers: 1, CurvePoints: 6, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		stripTimes(par)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("parallel=%d grid result differs from sequential", parallel)
		}
	}
}

// TestParallelReplayAllocGrowth guards the scratch-pool fix: repeated
// parallel replays with reused result and chunk buffers must not pay
// O(shards) allocations per run. Before the parallelScratch pool, each
// run rebuilt its accumulators, sample matrix, channels and batch free
// list (~480 allocs/run at shards=8); now the steady state is a handful
// of allocations (worker goroutine launches and the result's series
// appends), independent of how much the free list recycles.
func TestParallelReplayAllocGrowth(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates per goroutine/sync op; the bound only holds uninstrumented")
	}
	const (
		racks    = 64
		requests = 20000
		shards   = 8
	)
	model := core.CostModel{Metric: graph.FatTreeRacks(racks).Metric(), Alpha: 30}
	ct, err := trace.Uniform(racks, requests, 3).Compile(model.Metric.Dist)
	if err != nil {
		t.Fatal(err)
	}
	sh := newGoldenAlg(t, "rbma", racks, shards, 4, model)
	src := ct.Source()
	cps := Checkpoints(requests, 10)
	chunk := trace.NewChunk(4096)
	var res RunResult
	run := func() {
		sh.Reset()
		if err := runSourceParallelInto(context.Background(), &res, sh, src, model.Alpha, cps, chunk, shards, nil); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the pool, the batch free list and the result buffers
	allocs := testing.AllocsPerRun(20, run)
	// The bound is loose against scheduler noise (goroutine starts) but
	// far below the ~60-per-shard regime the pool replaced.
	if allocs > 48 {
		t.Errorf("parallel replay allocates %.1f times per run at shards=%d, want <= 48", allocs, shards)
	}
}
