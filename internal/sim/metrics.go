package sim

import (
	"time"

	"obm/internal/obs"
)

// Metrics aggregates replay observability for the grid layer: request and
// chunk throughput, completed jobs, per-shard fold times in the parallel
// driver, and checkpoint save/load latency. Every field is optional and a
// nil *Metrics disables instrumentation entirely — the replay hot loops
// call the nil-safe hooks below, which cost one predictable branch when
// metrics are off and one atomic add (or mutexed histogram record, at
// chunk/batch granularity, never per request) when on. Hooks never touch
// cost math, so instrumented replays stay bit-identical to bare ones.
type Metrics struct {
	Requests *obs.Counter   // requests replayed (counted per fed chunk)
	Chunks   *obs.Counter   // trace chunks fed
	Jobs     *obs.Counter   // grid jobs executed to completion
	FoldNS   *obs.Histogram // parallel replay: per-shard batch apply time (ns)
	SaveNS   *obs.Histogram // checkpoint serialize+store time (ns)
	LoadNS   *obs.Histogram // checkpoint load+restore time (ns)
}

// NewMetrics registers the standard obm_grid_* series on r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Requests: r.Counter("obm_grid_requests_total", "Requests replayed by grid jobs."),
		Chunks:   r.Counter("obm_grid_chunks_total", "Trace chunks replayed by grid jobs."),
		Jobs:     r.Counter("obm_grid_jobs_total", "Grid jobs executed to completion (cache hits excluded)."),
		FoldNS:   r.Histogram("obm_grid_fold_seconds", "Per-shard batch apply time in the parallel replay driver.", 1e-9),
		SaveNS:   r.Histogram("obm_grid_checkpoint_save_seconds", "Replay checkpoint serialize+store time.", 1e-9),
		LoadNS:   r.Histogram("obm_grid_checkpoint_load_seconds", "Replay checkpoint load+restore time.", 1e-9),
	}
}

// chunkFed records one fed chunk of n requests.
func (m *Metrics) chunkFed(n int) {
	if m == nil {
		return
	}
	if m.Requests != nil {
		m.Requests.Add(uint64(n))
	}
	if m.Chunks != nil {
		m.Chunks.Inc()
	}
}

// jobDone records one executed grid job.
func (m *Metrics) jobDone() {
	if m == nil || m.Jobs == nil {
		return
	}
	m.Jobs.Inc()
}

// foldHist returns the fold-time histogram, or nil. The parallel driver
// hoists this out of its worker loop so the off path costs one nil check
// per batch.
func (m *Metrics) foldHist() *obs.Histogram {
	if m == nil {
		return nil
	}
	return m.FoldNS
}

// saveTimed records one checkpoint save.
func (m *Metrics) saveTimed(d time.Duration) {
	if m == nil || m.SaveNS == nil {
		return
	}
	m.SaveNS.ObserveDuration(d)
}

// loadTimed records one checkpoint load attempt (including rejected
// blobs — a slow failed load is still operator-relevant).
func (m *Metrics) loadTimed(d time.Duration) {
	if m == nil || m.LoadNS == nil {
		return
	}
	m.LoadNS.ObserveDuration(d)
}
