//go:build race

package sim

// raceEnabled gates allocation-count guards: race instrumentation
// allocates per goroutine and per synchronization op, so absolute
// alloc bounds only hold in uninstrumented builds.
const raceEnabled = true
