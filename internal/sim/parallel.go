package sim

import (
	"fmt"
	"runtime"
	"sync"

	"obm/internal/core"
)

// RunExperimentParallel is RunExperiment with the (algorithm, b) jobs
// spread over a worker pool. Cost curves are bit-identical to the
// sequential runner (each job owns its algorithm instances and seeds);
// wall-clock Elapsed values are still measured per decision loop but can
// inflate under CPU contention — use the sequential RunExperiment for the
// execution-time figures, and this for cost-only sweeps.
// workers <= 0 selects GOMAXPROCS.
func RunExperimentParallel(cfg Config, specs []AlgSpec, workers int) (*Result, error) {
	ct, err := cfg.compile()
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type job struct {
		spec  AlgSpec
		b     int
		index int
	}
	var jobs []job
	for _, spec := range specs {
		bs := cfg.Bs
		if spec.FixedB >= 0 {
			bs = []int{spec.FixedB}
		}
		for _, b := range bs {
			jobs = append(jobs, job{spec: spec, b: b, index: len(jobs)})
		}
	}
	curves := make([]Curve, len(jobs))
	errs := make([]error, len(jobs))
	ch := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc scratch // per-worker: reused across every job and repetition
			for j := range ch {
				f := func(rep uint64) (core.Algorithm, error) { return j.spec.New(j.b, rep) }
				avg, err := runAveragedCompiled(f, ct, cfg.Model.Alpha, cfg.Checkpoints, cfg.Reps, &sc)
				if err != nil {
					errs[j.index] = fmt.Errorf("sim: %s/%s(b=%d): %w", cfg.Name, j.spec.Name, j.b, err)
					continue
				}
				curves[j.index] = Curve{Alg: j.spec.Name, B: j.b, Avg: avg}
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Result{Name: cfg.Name, Curves: curves}, nil
}
