package sim

import (
	"context"
	"fmt"

	"obm/internal/core"
)

// RunExperimentParallel is RunExperiment with the (algorithm, b) jobs
// spread over a worker pool. Cost curves are bit-identical to the
// sequential runner (each job owns its algorithm instances and seeds);
// wall-clock Elapsed values are still measured per decision loop but can
// inflate under CPU contention — use the sequential RunExperiment for the
// execution-time figures, and this for cost-only sweeps.
// workers <= 0 selects GOMAXPROCS.
//
// On failure every job error is reported (joined with errors.Join, in job
// order), not just the first: after the first failure no further jobs are
// started, but already-running jobs finish and their errors are collected
// too.
func RunExperimentParallel(cfg Config, specs []AlgSpec, workers int) (*Result, error) {
	ct, err := cfg.compile()
	if err != nil {
		return nil, err
	}
	type job struct {
		spec AlgSpec
		b    int
	}
	var jobs []job
	for _, spec := range specs {
		bs := cfg.Bs
		if spec.FixedB >= 0 {
			bs = []int{spec.FixedB}
		}
		for _, b := range bs {
			jobs = append(jobs, job{spec: spec, b: b})
		}
	}
	curves := make([]Curve, len(jobs))
	err = runPool(context.Background(), len(jobs), workers, func() func(int) error {
		var sc scratch // per-worker: reused across every job and repetition
		return func(ji int) error {
			j := jobs[ji]
			f := func(rep uint64) (core.Algorithm, error) { return j.spec.New(j.b, rep) }
			avg, err := runAveragedCompiled(f, ct, cfg.Model.Alpha, cfg.Checkpoints, cfg.Reps, &sc)
			if err != nil {
				return fmt.Errorf("sim: %s/%s(b=%d): %w", cfg.Name, j.spec.Name, j.b, err)
			}
			curves[ji] = Curve{Alg: j.spec.Name, B: j.b, Avg: avg}
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	return &Result{Name: cfg.Name, Curves: curves}, nil
}
