package sim

import (
	"fmt"
	"io"

	"obm/internal/core"
	"obm/internal/snap"
)

// Incremental snapshots: the "OBMI" blob is the unit of state transfer for
// every checkpoint consumer — live engine sessions serialize their session
// state as one, grid checkpoints embed one, and fleet handoff ships one.
// It captures the cumulative counters plus the algorithm's full dynamic
// state (via core.Snapshotter) under a single CRC-32 trailer, so restore +
// replay-the-tail is bit-identical to an uninterrupted replay — the
// equivalence contract snapshot_equiv_test.go sweeps.

// snapshotMagic and snapshotVersion identify the Incremental blob format.
var snapshotMagic = []byte("OBMI")

const snapshotVersion = 1

// Snapshot writes the stepper's cumulative counters and the bound
// algorithm's dynamic state as a versioned, CRC-trailed binary blob. The
// algorithm must implement core.Snapshotter.
func (in *Incremental) Snapshot(w io.Writer) error {
	ss, ok := in.alg.(core.Snapshotter)
	if !ok {
		return fmt.Errorf("sim: algorithm %s does not support snapshots", in.alg.Name())
	}
	sw := snap.NewWriter(w)
	sw.Bytes(snapshotMagic)
	sw.U8(snapshotVersion)
	sw.F64(in.alpha)
	sw.I64(in.served)
	sw.F64(in.tot.Routing)
	sw.F64(in.tot.Reconfig)
	sw.I64(int64(in.tot.Adds))
	sw.I64(int64(in.tot.Removals))
	if sw.Err() != nil {
		return sw.Err()
	}
	if err := ss.Snapshot(sw); err != nil {
		return err
	}
	sw.WriteCRC()
	return sw.Err()
}

// Restore loads a blob written by Snapshot into this stepper and its bound
// algorithm, which must be configured identically to the snapshotted one
// (same constructor parameters, same alpha — alpha is verified bit-exactly
// since it participates in every cost fold). On error the algorithm may be
// partially mutated: Reset it (or discard the instance) before reuse.
func (in *Incremental) Restore(r io.Reader) error {
	ss, ok := in.alg.(core.Snapshotter)
	if !ok {
		return fmt.Errorf("sim: algorithm %s does not support snapshots", in.alg.Name())
	}
	sr := snap.NewReader(r)
	sr.Expect(snapshotMagic)
	if v := sr.U8(); sr.Err() == nil && v != snapshotVersion {
		return snap.Corruptf("sim: snapshot version %d, this build reads %d", v, snapshotVersion)
	}
	alpha := sr.F64()
	served := sr.I64()
	routing := sr.F64()
	reconfig := sr.F64()
	adds := sr.I64()
	removals := sr.I64()
	if sr.Err() != nil {
		return sr.Err()
	}
	if alpha != in.alpha {
		return snap.Corruptf("sim: snapshot taken under alpha=%v, stepper has %v", alpha, in.alpha)
	}
	if served < 0 || adds < 0 || removals < 0 {
		return snap.Corruptf("sim: negative snapshot counters (served=%d adds=%d removals=%d)", served, adds, removals)
	}
	if err := ss.Restore(sr); err != nil {
		return err
	}
	sr.VerifyCRC()
	if sr.Err() != nil {
		return sr.Err()
	}
	in.served = served
	in.tot = core.ShardStep{
		Routing:  routing,
		Reconfig: reconfig,
		Adds:     int(adds),
		Removals: int(removals),
	}
	return nil
}
