package sim

import (
	"testing"

	"obm/internal/core"
	"obm/internal/graph"
	"obm/internal/trace"
)

// RunCompiled must produce exactly the curves Run produces, both for
// algorithms with a ServeCompiled fast path (R-BMA, BMA) and for fallback
// algorithms replayed through Serve (Batch).
func TestRunCompiledMatchesRun(t *testing.T) {
	const n = 20
	top := graph.FatTreeRacks(n)
	model := core.CostModel{Metric: top.Metric(), Alpha: 30}
	tr, err := trace.FacebookStyle(trace.FacebookPreset(trace.Database, n, 3))
	if err != nil {
		t.Fatal(err)
	}
	tr = tr.Prefix(20000)
	ct, err := tr.Compile(model.Metric.Dist)
	if err != nil {
		t.Fatal(err)
	}
	checkpoints := Checkpoints(tr.Len(), 7)

	algs := map[string]func() (core.Algorithm, error){
		"r-bma": func() (core.Algorithm, error) { return core.NewRBMA(n, 4, model, 5) },
		"r-bma-eager": func() (core.Algorithm, error) {
			return core.NewRBMA(n, 4, model, 5, core.WithEagerRemoval())
		},
		"bma":       func() (core.Algorithm, error) { return core.NewBMA(n, 4, model) },
		"oblivious": func() (core.Algorithm, error) { return core.NewOblivious(model) },
		"so-bma":    func() (core.Algorithm, error) { return core.NewStaticFromTrace(tr, 4, model) },
		"batch":     func() (core.Algorithm, error) { return core.NewBatch(n, 4, model, 1000, 0.5) },
	}
	for name, mk := range algs {
		t.Run(name, func(t *testing.T) {
			a1, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			plain, err := Run(a1, tr, model.Alpha, checkpoints)
			if err != nil {
				t.Fatal(err)
			}
			a2, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			compiled, err := RunCompiled(a2, ct, model.Alpha, checkpoints)
			if err != nil {
				t.Fatal(err)
			}
			if _, fast := core.Algorithm(a2).(core.CompiledServer); !fast && name != "batch" {
				t.Errorf("%s lost its ServeCompiled fast path", name)
			}
			if plain.Adds != compiled.Adds || plain.Removals != compiled.Removals ||
				plain.FinalMatchingSize != compiled.FinalMatchingSize {
				t.Fatalf("step totals diverged: plain %+v, compiled %+v", plain, compiled)
			}
			for i := range plain.Series.X {
				if plain.Series.X[i] != compiled.Series.X[i] ||
					plain.Series.Routing[i] != compiled.Series.Routing[i] ||
					plain.Series.Reconfig[i] != compiled.Series.Reconfig[i] {
					t.Fatalf("checkpoint %d diverged: plain (%d,%v,%v), compiled (%d,%v,%v)",
						i, plain.Series.X[i], plain.Series.Routing[i], plain.Series.Reconfig[i],
						compiled.Series.X[i], compiled.Series.Routing[i], compiled.Series.Reconfig[i])
				}
			}
		})
	}
}

// The sequential and parallel experiment runners must agree curve-for-curve
// on the compiled path.
func TestRunExperimentParallelMatchesSequentialCompiled(t *testing.T) {
	const n = 16
	top := graph.FatTreeRacks(n)
	model := core.CostModel{Metric: top.Metric(), Alpha: 30}
	tr := trace.MicrosoftStyle(n, 12000, 9)
	cfg := Config{
		Name:        "parity",
		Trace:       tr,
		Model:       model,
		Bs:          []int{2, 4},
		Reps:        2,
		Checkpoints: Checkpoints(tr.Len(), 5),
	}
	specs := []AlgSpec{
		{
			Name:   "r-bma",
			FixedB: -1,
			New: func(b int, rep uint64) (core.Algorithm, error) {
				return core.NewRBMA(n, b, model, rep*7+uint64(b))
			},
		},
		{
			Name:   "bma",
			FixedB: -1,
			New:    func(b int, rep uint64) (core.Algorithm, error) { return core.NewBMA(n, b, model) },
		},
	}
	seq, err := RunExperiment(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunExperimentParallel(cfg, specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Curves) != len(par.Curves) {
		t.Fatalf("curve counts differ: %d vs %d", len(seq.Curves), len(par.Curves))
	}
	for i := range seq.Curves {
		s, p := seq.Curves[i], par.Curves[i]
		if s.Alg != p.Alg || s.B != p.B {
			t.Fatalf("curve %d identity differs: %s(b=%d) vs %s(b=%d)", i, s.Alg, s.B, p.Alg, p.B)
		}
		for j := range s.Avg.Routing {
			if s.Avg.Routing[j] != p.Avg.Routing[j] || s.Avg.Reconfig[j] != p.Avg.Reconfig[j] {
				t.Fatalf("curve %s(b=%d) point %d differs", s.Alg, s.B, j)
			}
		}
	}
}
