package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"obm/internal/core"
	"obm/internal/graph"
	"obm/internal/trace"
)

// ScenarioSpec is one named, JSON-encodable experiment scenario: a workload
// family with its parameters, the cost model, the algorithm line-up, the
// b sweep and the repetition count. The grid scheduler expands a list of
// specs into a (scenario × algorithm × b × rep) job grid.
//
// Workloads are built as streaming trace.Sources, so a spec with 10⁸
// requests replays under O(chunk) memory. The trace seed is Seed (fixed
// across repetitions, like the figure experiments); algorithm seeds vary
// per repetition.
type ScenarioSpec struct {
	Name     string `json:"name"`
	Family   string `json:"family"`
	Racks    int    `json:"racks"`
	Requests int    `json:"requests"`
	Seed     uint64 `json:"seed"`
	// Alpha is the reconfiguration cost (default 30, the figures' value).
	Alpha float64 `json:"alpha,omitempty"`
	// Bs is the degree-cap sweep.
	Bs []int `json:"bs"`
	// Reps is the repetition count (algorithm seeds differ per rep).
	Reps int `json:"reps"`
	// Shards, when > 1, runs every algorithm as that many independent
	// switch planes over a node-row partition of the pair universe
	// (core.Sharded): each plane keeps its own degree-b matching over the
	// pairs it owns, so a rack can hold up to Shards·b optical edges in
	// total — the multi-layer reconfigurable fabrics of the rotor-switch
	// literature. Shard count is part of the experiment's identity
	// (results for S planes differ from one plane); it also unlocks the
	// parallel replay path (GridOptions.Parallel), which never changes
	// results. 0 and 1 both mean the classic single-plane algorithm and
	// hash identically (omitempty), so existing persisted runs stay valid.
	Shards int `json:"shards,omitempty"`
	// Algs names the algorithm line-up (see Algorithms); default
	// ["r-bma", "bma", "oblivious"].
	Algs []string `json:"algs,omitempty"`
	// Params carries family-specific knobs (see each family's docs);
	// unknown keys are rejected by the family builder.
	Params map[string]float64 `json:"params,omitempty"`
}

// Normalize returns the spec with every optional field filled with its
// default (alpha, algorithm line-up, repetition count). Persisted run
// manifests store normalized specs, so a spec hash does not depend on
// whether defaults were spelled out or omitted.
func (s ScenarioSpec) Normalize() ScenarioSpec { return s.withDefaults() }

// withDefaults fills the optional fields.
func (s ScenarioSpec) withDefaults() ScenarioSpec {
	if s.Alpha == 0 {
		s.Alpha = 30
	}
	if len(s.Algs) == 0 {
		s.Algs = []string{"r-bma", "bma", "oblivious"}
	}
	if s.Reps == 0 {
		s.Reps = 1
	}
	return s
}

// Validate reports whether the spec is runnable: known family and
// algorithms, usable sweep, and buildable workload stream.
func (s ScenarioSpec) Validate() error {
	s = s.withDefaults()
	if s.Name == "" {
		return fmt.Errorf("sim: scenario without a name")
	}
	if len(s.Bs) == 0 {
		return fmt.Errorf("sim: scenario %q needs a b sweep", s.Name)
	}
	if s.Reps < 1 {
		return fmt.Errorf("sim: scenario %q needs Reps >= 1", s.Name)
	}
	if s.Alpha < 1 {
		return fmt.Errorf("sim: scenario %q: alpha = %v, need >= 1", s.Name, s.Alpha)
	}
	if strings.ContainsAny(s.Name, ",\"\n") {
		return fmt.Errorf("sim: scenario name %q must not contain commas, quotes or newlines (it names CSV rows)", s.Name)
	}
	if s.Shards < 0 || s.Shards > s.Racks {
		return fmt.Errorf("sim: scenario %q: shards = %d out of [0, racks = %d]", s.Name, s.Shards, s.Racks)
	}
	for _, a := range s.Algs {
		if _, err := algBuilder(a); err != nil {
			return fmt.Errorf("sim: scenario %q: %w (have %v)", s.Name, err, Algorithms())
		}
	}
	if _, err := s.NewStream(); err != nil {
		return fmt.Errorf("sim: scenario %q: %w", s.Name, err)
	}
	return nil
}

// Model returns the scenario's cost model: a fat-tree over Racks with the
// spec's alpha — the same construction as the paper's figures.
func (s ScenarioSpec) Model() core.CostModel {
	s = s.withDefaults()
	return core.CostModel{Metric: graph.FatTreeRacks(s.Racks).Metric(), Alpha: s.Alpha}
}

// NewStream builds the scenario's raw workload stream from its family.
func (s ScenarioSpec) NewStream() (trace.Stream, error) {
	registryMu.RLock()
	b, ok := familyBuilders[s.Family]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("unknown family %q (have %v)", s.Family, Families())
	}
	return b(s.withDefaults())
}

// NewSource builds the scenario's compiled streaming source: the workload
// stream compiled chunk by chunk against the scenario's metric. Each call
// returns an independent source, safe to hand to a parallel worker.
func (s ScenarioSpec) NewSource() (trace.Source, error) {
	st, err := s.NewStream()
	if err != nil {
		return nil, err
	}
	return trace.NewSource(st, s.Model().Metric.Dist)
}

// FamilyBuilder constructs a workload stream from a (defaults-filled) spec.
type FamilyBuilder func(spec ScenarioSpec) (trace.Stream, error)

var (
	registryMu     sync.RWMutex
	familyBuilders = map[string]FamilyBuilder{}
	algBuilders    = map[string]func(spec ScenarioSpec, model core.CostModel) AlgSpec{}
	scenarioReg    = map[string]ScenarioSpec{}
	scenarioOrder  []string
)

// RegisterFamily adds (or replaces) a workload family under name.
func RegisterFamily(name string, b FamilyBuilder) {
	registryMu.Lock()
	defer registryMu.Unlock()
	familyBuilders[name] = b
}

// Families returns the registered workload family names, sorted.
func Families() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(familyBuilders))
	for name := range familyBuilders {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RegisterScenario adds (or replaces) a named scenario preset.
func RegisterScenario(spec ScenarioSpec) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, ok := scenarioReg[spec.Name]; !ok {
		scenarioOrder = append(scenarioOrder, spec.Name)
	}
	scenarioReg[spec.Name] = spec
}

// Scenarios returns the registered scenario presets in registration order.
func Scenarios() []ScenarioSpec {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]ScenarioSpec, 0, len(scenarioOrder))
	for _, name := range scenarioOrder {
		out = append(out, scenarioReg[name])
	}
	return out
}

// ScenarioByName returns the registered scenario preset with that name.
func ScenarioByName(name string) (ScenarioSpec, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	spec, ok := scenarioReg[name]
	if !ok {
		return ScenarioSpec{}, fmt.Errorf("sim: unknown scenario %q", name)
	}
	return spec, nil
}

// Algorithms returns the algorithm names the grid runner knows, sorted.
func Algorithms() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(algBuilders))
	for name := range algBuilders {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// algBuilder looks up an algorithm constructor under the registry lock.
func algBuilder(name string) (func(spec ScenarioSpec, model core.CostModel) AlgSpec, error) {
	registryMu.RLock()
	b, ok := algBuilders[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
	return b, nil
}

// BuildAlgorithm instantiates one named algorithm from the registry for
// this spec's cost model, degree cap b and repetition seed — exactly the
// instance a grid job for (spec, name, b, rep) would replay with, shard
// planes and per-plane seeding included. Algorithms with a pinned degree
// (oblivious) ignore b. The live engine builds its per-session instances
// through this path, so an engine session and an offline grid job with
// the same parameters are seeded identically.
func (s ScenarioSpec) BuildAlgorithm(name string, b int, rep uint64) (core.Algorithm, error) {
	s = s.withDefaults()
	as, err := s.algSpec(name, s.Model())
	if err != nil {
		return nil, err
	}
	if as.FixedB >= 0 {
		b = as.FixedB
	}
	return as.New(b, rep)
}

// algSpec resolves an algorithm name into an AlgSpec for the scenario,
// reusing a model the caller has already built.
func (s ScenarioSpec) algSpec(name string, model core.CostModel) (AlgSpec, error) {
	b, err := algBuilder(name)
	if err != nil {
		return AlgSpec{}, fmt.Errorf("sim: %w", err)
	}
	return b(s.withDefaults(), model), nil
}

// param reads a family knob with a default.
func param(spec ScenarioSpec, key string, def float64) float64 {
	if v, ok := spec.Params[key]; ok {
		return v
	}
	return def
}

// shardedAlg wraps an algorithm constructor into a core.Sharded when the
// spec asks for multiple planes; Shards <= 1 builds the plain single-plane
// algorithm directly (no wrapper, so classic scenarios are untouched).
func shardedAlg(spec ScenarioSpec, build func(shard int) (core.Algorithm, error)) (core.Algorithm, error) {
	if spec.Shards <= 1 {
		return build(0)
	}
	part, err := core.NewPartition(spec.Racks, spec.Shards)
	if err != nil {
		return nil, err
	}
	return core.NewSharded(part, build)
}

// checkParams rejects unknown knobs, the classic silent-typo failure of
// stringly-typed JSON configs.
func checkParams(spec ScenarioSpec, known ...string) error {
	for key := range spec.Params {
		ok := false
		for _, k := range known {
			if key == k {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("family %q: unknown param %q (known: %v)", spec.Family, key, known)
		}
	}
	return nil
}

func init() {
	// Workload families. Paper-era families first; each maps the generic
	// spec knobs onto its generator's parameters.
	for _, c := range []trace.Cluster{trace.Database, trace.WebService, trace.Hadoop} {
		c := c
		RegisterFamily(c.String(), func(spec ScenarioSpec) (trace.Stream, error) {
			if err := checkParams(spec); err != nil {
				return nil, err
			}
			p := trace.FacebookPreset(c, spec.Racks, spec.Seed)
			p.Requests = spec.Requests
			return trace.NewFacebookStream(p)
		})
	}
	RegisterFamily("uniform", func(spec ScenarioSpec) (trace.Stream, error) {
		if err := checkParams(spec); err != nil {
			return nil, err
		}
		return trace.NewUniformStream(spec.Racks, spec.Requests, spec.Seed)
	})
	RegisterFamily("microsoft", func(spec ScenarioSpec) (trace.Stream, error) {
		if err := checkParams(spec); err != nil {
			return nil, err
		}
		return trace.NewMicrosoftStream(spec.Racks, spec.Requests, spec.Seed)
	})
	RegisterFamily("phase-shift", func(spec ScenarioSpec) (trace.Stream, error) {
		if err := checkParams(spec, "phases"); err != nil {
			return nil, err
		}
		return trace.NewPhaseShiftStream(spec.Racks, spec.Requests, int(param(spec, "phases", 4)), spec.Seed)
	})
	RegisterFamily("permutation", func(spec ScenarioSpec) (trace.Stream, error) {
		if err := checkParams(spec); err != nil {
			return nil, err
		}
		return trace.NewPermutationStream(spec.Racks, spec.Requests, spec.Seed)
	})
	RegisterFamily("diurnal", func(spec ScenarioSpec) (trace.Stream, error) {
		if err := checkParams(spec, "period", "peak_skew", "off_skew"); err != nil {
			return nil, err
		}
		return trace.NewDiurnalStream(trace.DiurnalParams{
			Racks:    spec.Racks,
			Requests: spec.Requests,
			Seed:     spec.Seed,
			Period:   int(param(spec, "period", 0)),
			PeakSkew: param(spec, "peak_skew", 0),
			OffSkew:  param(spec, "off_skew", 0),
		})
	})
	RegisterFamily("hotspot", func(spec ScenarioSpec) (trace.Stream, error) {
		if err := checkParams(spec, "hotspots", "hot_prob", "migrate_every"); err != nil {
			return nil, err
		}
		return trace.NewHotspotStream(trace.HotspotParams{
			Racks:        spec.Racks,
			Requests:     spec.Requests,
			Seed:         spec.Seed,
			Hotspots:     int(param(spec, "hotspots", 0)),
			HotProb:      param(spec, "hot_prob", 0),
			MigrateEvery: int(param(spec, "migrate_every", 0)),
		})
	})
	RegisterFamily("tenant-mix", func(spec ScenarioSpec) (trace.Stream, error) {
		if err := checkParams(spec, "tenants", "tenant_skew", "pair_skew", "cross_prob"); err != nil {
			return nil, err
		}
		return trace.NewTenantMixStream(trace.TenantMixParams{
			Racks:      spec.Racks,
			Requests:   spec.Requests,
			Seed:       spec.Seed,
			Tenants:    int(param(spec, "tenants", 0)),
			TenantSkew: param(spec, "tenant_skew", 0),
			PairSkew:   param(spec, "pair_skew", 0),
			CrossProb:  param(spec, "cross_prob", 0),
		})
	})

	// Algorithm line-up. Seeding matches internal/figures: the randomized
	// algorithm's seed varies per (rep, b); in multi-plane scenarios each
	// plane derives its own seed from that base via core.ShardSeed (plane 0
	// keeps the base, so shards = 1 is seeded exactly like the classic
	// single-plane run).
	algBuilders["r-bma"] = func(spec ScenarioSpec, model core.CostModel) AlgSpec {
		n := spec.Racks
		return AlgSpec{
			Name:   "r-bma",
			FixedB: -1,
			New: func(b int, rep uint64) (core.Algorithm, error) {
				base := rep*0x9e3779b9 + uint64(b)
				return shardedAlg(spec, func(shard int) (core.Algorithm, error) {
					return core.NewRBMA(n, b, model, core.ShardSeed(base, shard))
				})
			},
		}
	}
	algBuilders["bma"] = func(spec ScenarioSpec, model core.CostModel) AlgSpec {
		n := spec.Racks
		return AlgSpec{
			Name:   "bma",
			FixedB: -1,
			New: func(b int, rep uint64) (core.Algorithm, error) {
				return shardedAlg(spec, func(int) (core.Algorithm, error) {
					return core.NewBMA(n, b, model)
				})
			},
		}
	}
	algBuilders["oblivious"] = func(spec ScenarioSpec, model core.CostModel) AlgSpec {
		return AlgSpec{
			Name:   "oblivious",
			FixedB: 0,
			New: func(b int, rep uint64) (core.Algorithm, error) {
				// Stateless: planes would all behave identically, so the
				// oblivious baseline never shards.
				return core.NewOblivious(model)
			},
		}
	}

	// Scenario presets: one per new family (the widened workload coverage)
	// plus classic baselines, all modest sizes so the full preset grid runs
	// in seconds at scale 1. Larger studies load specs from JSON.
	RegisterScenario(ScenarioSpec{
		Name: "diurnal-swing", Family: "diurnal",
		Racks: 48, Requests: 120000, Seed: 1,
		Bs: []int{4, 8}, Reps: 3,
	})
	RegisterScenario(ScenarioSpec{
		Name: "hotspot-migration", Family: "hotspot",
		Racks: 48, Requests: 120000, Seed: 2,
		Bs: []int{4, 8}, Reps: 3,
		Params: map[string]float64{"hotspots": 12, "migrate_every": 4000},
	})
	RegisterScenario(ScenarioSpec{
		Name: "tenant-mix", Family: "tenant-mix",
		Racks: 64, Requests: 120000, Seed: 3,
		Bs: []int{4, 8}, Reps: 3,
		Params: map[string]float64{"tenants": 8},
	})
	RegisterScenario(ScenarioSpec{
		Name: "facebook-database-small", Family: "facebook-database",
		Racks: 50, Requests: 100000, Seed: 4,
		Bs: []int{6, 12}, Reps: 3,
	})
	RegisterScenario(ScenarioSpec{
		Name: "uniform-baseline", Family: "uniform",
		Racks: 48, Requests: 100000, Seed: 5,
		Bs: []int{4, 8}, Reps: 3,
	})
	RegisterScenario(ScenarioSpec{
		Name: "phase-shift", Family: "phase-shift",
		Racks: 48, Requests: 100000, Seed: 6,
		Bs: []int{4, 8}, Reps: 3,
		Params: map[string]float64{"phases": 5},
	})
}
