package sim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"obm/internal/core"
	"obm/internal/graph"
	"obm/internal/trace"
)

func testSetup(n int) (core.CostModel, *trace.Trace) {
	top := graph.FatTreeRacks(n)
	model := core.CostModel{Metric: top.Metric(), Alpha: 30}
	tr, _ := trace.FacebookStyle(trace.FacebookPreset(trace.Database, n, 5))
	return model, tr.Prefix(20000)
}

func TestCheckpoints(t *testing.T) {
	cps := Checkpoints(100, 4)
	want := []int{25, 50, 75, 100}
	for i := range want {
		if cps[i] != want[i] {
			t.Fatalf("Checkpoints = %v", cps)
		}
	}
	if got := Checkpoints(3, 10); len(got) != 3 {
		t.Fatalf("Checkpoints should clamp num to total: %v", got)
	}
}

func TestCheckpointsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Checkpoints(0, 5)
}

func TestRunProducesMonotoneCurves(t *testing.T) {
	model, tr := testSetup(12)
	alg, err := core.NewRBMA(12, 3, model, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(alg, tr, model.Alpha, Checkpoints(tr.Len(), 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series.X) != 10 {
		t.Fatalf("got %d checkpoints", len(res.Series.X))
	}
	for i := 1; i < len(res.Series.X); i++ {
		if res.Series.Routing[i] < res.Series.Routing[i-1] {
			t.Fatal("routing cost must be non-decreasing")
		}
		if res.Series.Reconfig[i] < res.Series.Reconfig[i-1] {
			t.Fatal("reconfig cost must be non-decreasing")
		}
	}
	if res.Adds == 0 {
		t.Fatal("R-BMA should reconfigure on a skewed trace")
	}
	if res.FinalMatchingSize == 0 {
		t.Fatal("final matching empty")
	}
}

func TestRunRejectsBadCheckpoints(t *testing.T) {
	model, tr := testSetup(10)
	alg, _ := core.NewOblivious(model)
	if _, err := Run(alg, tr, model.Alpha, []int{10, 10}); err == nil {
		t.Fatal("non-ascending checkpoints accepted")
	}
	if _, err := Run(alg, tr, model.Alpha, []int{tr.Len() + 1}); err == nil {
		t.Fatal("checkpoint beyond trace accepted")
	}
}

func TestRunAveragedAveragesOverSeeds(t *testing.T) {
	model, tr := testSetup(10)
	f := func(rep uint64) (core.Algorithm, error) {
		return core.NewRBMA(10, 3, model, rep)
	}
	avg, err := RunAveraged(f, tr, model.Alpha, Checkpoints(tr.Len(), 5), 3)
	if err != nil {
		t.Fatal(err)
	}
	if avg.Reps != 3 || len(avg.Routing) != 5 {
		t.Fatalf("avg = %+v", avg)
	}
	if avg.Routing[4] <= 0 {
		t.Fatal("averaged routing cost should be positive")
	}
}

func TestRunExperimentAndCSV(t *testing.T) {
	model, tr := testSetup(10)
	cfg := Config{
		Name:        "unit",
		Trace:       tr,
		Model:       model,
		Bs:          []int{2, 4},
		Reps:        2,
		Checkpoints: Checkpoints(tr.Len(), 4),
	}
	specs := []AlgSpec{
		{
			Name:   "r-bma",
			FixedB: -1,
			New: func(b int, rep uint64) (core.Algorithm, error) {
				return core.NewRBMA(10, b, model, rep)
			},
		},
		{
			Name:   "oblivious",
			FixedB: 0,
			New: func(b int, rep uint64) (core.Algorithm, error) {
				return core.NewOblivious(model)
			},
		},
	}
	res, err := RunExperiment(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	// r-bma at b=2 and b=4, oblivious once.
	if len(res.Curves) != 3 {
		t.Fatalf("curves = %d, want 3", len(res.Curves))
	}
	finals := res.FinalRouting()
	if finals["r-bma(b=4)"] >= finals["oblivious(b=0)"] {
		t.Fatalf("r-bma (%v) should beat oblivious (%v)",
			finals["r-bma(b=4)"], finals["oblivious(b=0)"])
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "experiment,alg,b,requests") {
		t.Fatal("CSV header missing")
	}
	if lines := strings.Count(out, "\n"); lines != 1+3*4 {
		t.Fatalf("CSV has %d lines, want 13", lines)
	}
	if rows := res.SummaryRows(); len(rows) != 3 {
		t.Fatalf("summary rows = %d", len(rows))
	}
}

func TestWriteJSON(t *testing.T) {
	model, tr := testSetup(10)
	cfg := Config{
		Name: "json", Trace: tr, Model: model,
		Bs: []int{2}, Reps: 1, Checkpoints: Checkpoints(tr.Len(), 3),
	}
	specs := []AlgSpec{{
		Name: "r-bma", FixedB: -1,
		New: func(b int, rep uint64) (core.Algorithm, error) {
			return core.NewRBMA(10, b, model, rep)
		},
	}}
	res, err := RunExperiment(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Name   string `json:"experiment"`
		Curves []struct {
			Alg     string    `json:"alg"`
			B       int       `json:"b"`
			Routing []float64 `json:"routing_cost"`
		} `json:"curves"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.Name != "json" || len(parsed.Curves) != 1 || len(parsed.Curves[0].Routing) != 3 {
		t.Fatalf("parsed = %+v", parsed)
	}
}

func TestRunExperimentValidation(t *testing.T) {
	model, tr := testSetup(10)
	if _, err := RunExperiment(Config{Name: "x", Trace: tr, Model: model, Bs: []int{2}}, nil); err == nil {
		t.Fatal("Reps=0 accepted")
	}
	if _, err := RunExperiment(Config{Name: "x", Trace: tr, Model: model, Reps: 1}, nil); err == nil {
		t.Fatal("empty b sweep accepted")
	}
}

func TestASCIIChartRenders(t *testing.T) {
	model, tr := testSetup(10)
	cfg := Config{
		Name: "chart", Trace: tr, Model: model,
		Bs: []int{2}, Reps: 1, Checkpoints: Checkpoints(tr.Len(), 6),
	}
	specs := []AlgSpec{{
		Name:   "r-bma",
		FixedB: -1,
		New: func(b int, rep uint64) (core.Algorithm, error) {
			return core.NewRBMA(10, b, model, rep)
		},
	}}
	res, err := RunExperiment(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	chart := ASCIIChart("routing", res.Curves, 40, 10,
		func(a Averaged, i int) float64 { return a.Routing[i] })
	if !strings.Contains(chart, "r-bma(b=2)") {
		t.Fatalf("chart missing legend:\n%s", chart)
	}
	if !strings.Contains(chart, "*") {
		t.Fatalf("chart missing data points:\n%s", chart)
	}
	empty := ASCIIChart("empty", nil, 40, 10, func(a Averaged, i int) float64 { return 0 })
	if !strings.Contains(empty, "no data") {
		t.Fatal("empty chart should say so")
	}
}
