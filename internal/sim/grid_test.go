package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"

	"obm/internal/core"
)

func testGridSpecs() []ScenarioSpec {
	return []ScenarioSpec{
		{
			Name: "hot", Family: "hotspot",
			Racks: 12, Requests: 6000, Seed: 1,
			Bs: []int{2, 3}, Reps: 2,
			Params: map[string]float64{"migrate_every": 1000},
		},
		{
			Name: "mix", Family: "tenant-mix",
			Racks: 12, Requests: 6000, Seed: 2,
			Bs: []int{2}, Reps: 2,
			Params: map[string]float64{"tenants": 3},
			Algs:   []string{"r-bma", "oblivious"},
		},
	}
}

func TestRunGridAggregatesCells(t *testing.T) {
	var mu sync.Mutex
	var calls int
	res, err := RunGrid(testGridSpecs(), GridOptions{
		Workers:   3,
		ChunkSize: 512,
		Progress: func(done, total int, job GridJob, err error) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if err != nil {
				t.Errorf("job %s failed: %v", job, err)
			}
			if total != 14 {
				t.Errorf("job %s reported total = %d, want 14", job, total)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// hot: r-bma b∈{2,3}, bma b∈{2,3}, oblivious b=0 → 5 cells; mix:
	// r-bma b=2, oblivious b=0 → 2 cells.
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(res.Rows))
	}
	// hot: 5 cells × 2 reps; mix: 2 cells × 2 reps.
	if calls != 14 {
		t.Fatalf("progress callbacks = %d, want 14", calls)
	}
	for _, r := range res.Rows {
		if r.Routing.N != 2 {
			t.Errorf("row %s/%s(b=%d): reps = %d, want 2", r.Scenario, r.Alg, r.B, r.Routing.N)
		}
		if r.Routing.Mean <= 0 {
			t.Errorf("row %s/%s(b=%d): routing mean %v", r.Scenario, r.Alg, r.B, r.Routing.Mean)
		}
		if r.Total.Mean < r.Routing.Mean {
			t.Errorf("row %s/%s(b=%d): total < routing", r.Scenario, r.Alg, r.B)
		}
	}
	// Deterministic row order: specs in input order, algorithms in
	// line-up order.
	if res.Rows[0].Scenario != "hot" || res.Rows[5].Scenario != "mix" {
		t.Fatalf("row order: %+v", res.Rows)
	}
	// Demand-aware beats oblivious on the skewed hotspot workload.
	var rbma, obl float64
	for _, r := range res.Rows {
		if r.Scenario != "hot" {
			continue
		}
		switch {
		case r.Alg == "r-bma" && r.B == 3:
			rbma = r.Routing.Mean
		case r.Alg == "oblivious":
			obl = r.Routing.Mean
		}
	}
	if rbma == 0 || obl == 0 || rbma >= obl {
		t.Fatalf("r-bma (%v) should beat oblivious (%v) on hotspot", rbma, obl)
	}
}

// TestRunGridDeterministic: two runs with different worker counts must
// produce identical rows — jobs own their sources and seeds, so schedule
// order cannot leak into results.
func TestRunGridDeterministic(t *testing.T) {
	a, err := RunGrid(testGridSpecs(), GridOptions{Workers: 1, ChunkSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGrid(testGridSpecs(), GridOptions{Workers: 4, ChunkSize: 8192})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		ra, rb := a.Rows[i], b.Rows[i]
		rb.ElapsedMS = ra.ElapsedMS // wall time legitimately differs
		if ra != rb {
			t.Fatalf("row %d differs across schedules:\n%+v\n%+v", i, ra, rb)
		}
	}
}

func TestRunGridValidation(t *testing.T) {
	if _, err := RunGrid(nil, GridOptions{}); err == nil {
		t.Fatal("empty grid accepted")
	}
	bad := testGridSpecs()
	bad[0].Family = "no-such-family"
	if _, err := RunGrid(bad, GridOptions{}); err == nil {
		t.Fatal("unknown family accepted")
	}
	bad = testGridSpecs()
	bad[0].Algs = []string{"no-such-alg"}
	if _, err := RunGrid(bad, GridOptions{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	bad = testGridSpecs()
	bad[1].Name = bad[0].Name
	if _, err := RunGrid(bad, GridOptions{}); err == nil {
		t.Fatal("duplicate scenario name accepted")
	}
	bad = testGridSpecs()
	bad[0].Params["typo_knob"] = 1
	if _, err := RunGrid(bad, GridOptions{}); err == nil {
		t.Fatal("unknown family param accepted")
	}
	bad = testGridSpecs()
	bad[0].Name = "comma,name"
	if _, err := RunGrid(bad, GridOptions{}); err == nil {
		t.Fatal("CSV-breaking scenario name accepted")
	}
}

func TestGridOutputFormats(t *testing.T) {
	res, err := RunGrid(testGridSpecs()[:1], GridOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	out := csv.String()
	if !strings.HasPrefix(out, "scenario,family,alg,b,") {
		t.Fatalf("CSV header missing:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 1+len(res.Rows) {
		t.Fatalf("CSV has %d lines, want %d", lines, 1+len(res.Rows))
	}
	var js bytes.Buffer
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Rows []struct {
			Scenario string `json:"scenario"`
			Routing  struct {
				N    int     `json:"n"`
				Mean float64 `json:"mean"`
			} `json:"routing_cost"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(js.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.Rows) != len(res.Rows) || parsed.Rows[0].Routing.N != 2 {
		t.Fatalf("parsed JSON = %+v", parsed)
	}
	if rows := res.SummaryRows(); len(rows) != len(res.Rows) {
		t.Fatalf("summary rows = %d", len(rows))
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	specs := testGridSpecs()
	data, err := json.Marshal(specs)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadScenarios(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(specs) || decoded[0].Name != "hot" || decoded[0].Params["migrate_every"] != 1000 {
		t.Fatalf("round trip = %+v", decoded)
	}
	if _, err := ReadScenarios(strings.NewReader(`[{"name":"x","bogus_field":1}]`)); err == nil {
		t.Fatal("unknown JSON field accepted")
	}
}

func TestScenarioRegistry(t *testing.T) {
	if len(Families()) < 9 {
		t.Fatalf("families = %v", Families())
	}
	if len(Algorithms()) < 3 {
		t.Fatalf("algorithms = %v", Algorithms())
	}
	presets := Scenarios()
	if len(presets) < 6 {
		t.Fatalf("scenario presets = %d", len(presets))
	}
	for _, spec := range presets {
		if err := spec.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", spec.Name, err)
		}
	}
	if _, err := ScenarioByName(presets[0].Name); err != nil {
		t.Fatal(err)
	}
	if _, err := ScenarioByName("no-such-scenario"); err == nil {
		t.Fatal("unknown scenario name accepted")
	}
}

// failingSpec errors at every construction, so each (b) job of a parallel
// experiment fails independently.
func failingSpec() AlgSpec {
	return AlgSpec{
		Name:   "failing",
		FixedB: -1,
		New: func(b int, rep uint64) (core.Algorithm, error) {
			return nil, errors.New("boom")
		},
	}
}

func TestRunExperimentParallelJoinsAllErrors(t *testing.T) {
	model, tr := testSetup(10)
	cfg := Config{
		Name: "errs", Trace: tr, Model: model,
		Bs: []int{2, 3, 4}, Reps: 1, Checkpoints: Checkpoints(tr.Len(), 2),
	}
	_, err := RunExperimentParallel(cfg, []AlgSpec{failingSpec()}, 2)
	if err == nil {
		t.Fatal("expected failure")
	}
	// With 3 failing jobs and feeding that stops after the first failure,
	// at least one and at most three errors surface — each must carry the
	// job identity, and all surfaced errors must be joined.
	msg := err.Error()
	if !strings.Contains(msg, "errs/failing(b=") || !strings.Contains(msg, "boom") {
		t.Fatalf("error lacks job context: %v", err)
	}
	if n := strings.Count(msg, "boom"); n < 1 || n > 3 {
		t.Fatalf("joined %d errors, want 1..3: %v", n, err)
	}
}

func TestRunGridJoinsErrorsAndStops(t *testing.T) {
	specs := []ScenarioSpec{{
		Name: "bad-b", Family: "uniform",
		Racks: 8, Requests: 1000, Seed: 1,
		Bs: []int{0}, Reps: 3, // b=0 makes NewRBMA fail per job
		Algs: []string{"r-bma"},
	}}
	var mu sync.Mutex
	ran, failed := 0, 0
	_, err := RunGrid(specs, GridOptions{Workers: 2, Progress: func(done, total int, job GridJob, jerr error) {
		mu.Lock()
		defer mu.Unlock()
		ran++
		if jerr != nil {
			failed++
		}
	}})
	if err == nil {
		t.Fatal("expected failure")
	}
	if !strings.Contains(err.Error(), "bad-b/r-bma(b=0)") {
		t.Fatalf("error lacks job identity: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if ran < 1 || ran > 3 {
		t.Fatalf("ran %d jobs of a failing scenario, want 1..3", ran)
	}
	if failed != ran {
		t.Fatalf("%d of %d jobs failed, want all", failed, ran)
	}
}

// TestRunGridContextCancel pins the cancellation contract: cancelling the
// context stops the grid promptly, every job Persist saw stays valid, the
// returned partial result aggregates exactly those jobs, and a resumed run
// (Lookup over the persisted outcomes) completes to a result identical to
// an uninterrupted run.
func TestRunGridContextCancel(t *testing.T) {
	specs := testGridSpecs()

	full, err := RunGrid(specs, GridOptions{Workers: 2, ChunkSize: 512})
	if err != nil {
		t.Fatalf("uninterrupted RunGrid: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	persisted := make(map[GridJob]JobOutcome)
	var mu sync.Mutex
	const stopAfter = 3
	partial, err := RunGridContext(ctx, specs, GridOptions{
		Workers:   1, // serialize so a deterministic number of jobs persist
		ChunkSize: 512,
		Persist: func(j GridJob, o JobOutcome) error {
			mu.Lock()
			defer mu.Unlock()
			persisted[j] = o
			if len(persisted) == stopAfter {
				cancel()
			}
			return nil
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunGridContext error = %v, want context.Canceled", err)
	}
	if partial == nil {
		t.Fatal("cancelled RunGridContext returned nil partial result")
	}
	mu.Lock()
	n := len(persisted)
	mu.Unlock()
	if n >= 14 {
		t.Fatalf("cancellation did not stop the grid: %d of 14 jobs ran", n)
	}

	// Partial-but-persisted: resuming from the persisted outcomes must
	// reproduce the uninterrupted run exactly.
	resumed, err := RunGrid(specs, GridOptions{
		Workers:   2,
		ChunkSize: 512,
		Lookup: func(j GridJob) (JobOutcome, bool) {
			o, ok := persisted[j]
			return o, ok
		},
		Persist: func(j GridJob, o JobOutcome) error {
			if _, ok := persisted[j]; ok {
				t.Errorf("job %s re-executed despite being persisted", j)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("resumed RunGrid: %v", err)
	}
	var fullCSV, resumedCSV bytes.Buffer
	if err := full.WriteCSV(&fullCSV); err != nil {
		t.Fatal(err)
	}
	if err := resumed.WriteCSV(&resumedCSV); err != nil {
		t.Fatal(err)
	}
	// Wall-time columns differ between runs; compare the deterministic
	// prefix of every row (all columns before elapsed_ms_mean).
	trim := func(s string) string {
		var rows []string
		for _, line := range strings.Split(strings.TrimSpace(s), "\n") {
			rows = append(rows, line[:strings.LastIndex(line, ",")])
		}
		return strings.Join(rows, "\n")
	}
	if got, want := trim(resumedCSV.String()), trim(fullCSV.String()); got != want {
		t.Errorf("resumed grid differs from uninterrupted run:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestRunGridContextCancelBeforeStart: a context cancelled before the grid
// starts executes nothing and still returns (empty) partial aggregation.
func TestRunGridContextCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	res, err := RunGridContext(ctx, testGridSpecs(), GridOptions{
		Persist: func(GridJob, JobOutcome) error { ran = true; return nil },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("a job persisted despite pre-cancelled context")
	}
	if res == nil || len(res.Rows) != 0 {
		t.Errorf("pre-cancelled grid result = %+v, want empty", res)
	}
}
