package sim

import (
	"bytes"
	"testing"
)

// fuzzSpec is the fixed scenario every FuzzRestore iteration restores
// into: small enough to rebuild per input, real enough to cover the bank,
// counters and matching decode paths.
func fuzzSpec(shards int) ScenarioSpec {
	return ScenarioSpec{
		Name: "fuzz", Family: "uniform",
		Racks: 16, Requests: 2000, Seed: 11,
		Alpha: 30.0, Bs: []int{2}, Algs: []string{"r-bma"},
		Shards: shards,
	}
}

// fuzzBlob replays n requests through a fresh instance and snapshots it —
// a structurally valid seed input for the fuzzer to mutate.
func fuzzBlob(f *testing.F, spec ScenarioSpec, alg string, n int) []byte {
	f.Helper()
	a, err := spec.BuildAlgorithm(alg, 2, 3)
	if err != nil {
		f.Fatal(err)
	}
	src, err := spec.NewSource()
	if err != nil {
		f.Fatal(err)
	}
	in := NewIncremental(a, spec.Alpha)
	if err := replaySpan(in, src, 0, n, nil); err != nil {
		f.Fatal(err)
	}
	var b bytes.Buffer
	if err := in.Snapshot(&b); err != nil {
		f.Fatal(err)
	}
	return b.Bytes()
}

// FuzzRestore feeds arbitrary bytes to the full snapshot decode stack
// (OBMI header, counters, algorithm sections, CRC): corrupt input must
// error — never panic, never allocate proportionally to attacker-chosen
// lengths, never leave a half-restored instance that later misbehaves. An
// input that does restore must round-trip: serving more requests and
// re-snapshotting must both succeed.
func FuzzRestore(f *testing.F) {
	f.Add(fuzzBlob(f, fuzzSpec(1), "r-bma", 0))
	f.Add(fuzzBlob(f, fuzzSpec(1), "r-bma", 500))
	f.Add(fuzzBlob(f, fuzzSpec(1), "r-bma", 2000))
	f.Add(fuzzBlob(f, fuzzSpec(4), "r-bma", 700))
	f.Add(fuzzBlob(f, fuzzSpec(1), "bma", 300))
	f.Add(fuzzBlob(f, fuzzSpec(1), "oblivious", 100))
	f.Add([]byte("OBMI"))
	f.Add([]byte{})

	specs := []ScenarioSpec{fuzzSpec(1), fuzzSpec(4)}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, spec := range specs {
			alg, err := spec.BuildAlgorithm("r-bma", 2, 3)
			if err != nil {
				t.Fatal(err)
			}
			in := NewIncremental(alg, spec.Alpha)
			if err := in.Restore(bytes.NewReader(data)); err != nil {
				continue
			}
			// Successful restore ⇒ the instance must be fully usable.
			if ca, ok := alg.(interface{ CheckCacheInvariant() error }); ok {
				if err := ca.CheckCacheInvariant(); err != nil {
					t.Fatalf("restore accepted a blob violating invariants: %v", err)
				}
			}
			src, err := spec.NewSource()
			if err != nil {
				t.Fatal(err)
			}
			served := int(in.Counters().Served)
			if served < 0 || served > spec.Requests {
				t.Fatalf("restore accepted served=%d outside [0,%d]", served, spec.Requests)
			}
			if err := replaySpan(in, src, served, min(served+64, spec.Requests), nil); err != nil {
				t.Fatalf("restored instance cannot serve: %v", err)
			}
			var out bytes.Buffer
			if err := in.Snapshot(&out); err != nil {
				t.Fatalf("restored instance cannot re-snapshot: %v", err)
			}
		}
	})
}

// FuzzRestoreSharded drives the multi-plane decode path (per-plane
// sections under one outer CRC) with the sharded instance as the restore
// target.
func FuzzRestoreSharded(f *testing.F) {
	f.Add(fuzzBlob(f, fuzzSpec(4), "r-bma", 0))
	f.Add(fuzzBlob(f, fuzzSpec(4), "r-bma", 1200))
	f.Add(fuzzBlob(f, fuzzSpec(1), "r-bma", 400))
	spec := fuzzSpec(4)
	f.Fuzz(func(t *testing.T, data []byte) {
		alg, err := spec.BuildAlgorithm("r-bma", 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		in := NewIncremental(alg, spec.Alpha)
		if err := in.Restore(bytes.NewReader(data)); err != nil {
			return
		}
		var out bytes.Buffer
		if err := in.Snapshot(&out); err != nil {
			t.Fatalf("restored instance cannot re-snapshot: %v", err)
		}
	})
}
