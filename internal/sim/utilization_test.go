package sim

import (
	"testing"

	"obm/internal/core"
	"obm/internal/graph"
	"obm/internal/trace"
)

func TestUtilizationObliviousLoadsAllPaths(t *testing.T) {
	top := graph.Star(5)
	model := core.CostModel{Metric: top.Metric(), Alpha: 30}
	// 100 leaf-to-leaf requests: every one crosses two hub links.
	reqs := make([]trace.Request, 100)
	for i := range reqs {
		reqs[i] = trace.Request{Src: 1, Dst: 2}
	}
	tr := &trace.Trace{NumRacks: top.NumRacks(), Reqs: reqs}
	obl, _ := core.NewOblivious(model)
	_, util, err := RunWithUtilization(obl, tr, model.Alpha, top)
	if err != nil {
		t.Fatal(err)
	}
	if util.MatchedFraction != 0 {
		t.Fatal("oblivious never matches")
	}
	if util.MaxLinkLoad != 100 {
		t.Fatalf("MaxLinkLoad = %v, want 100", util.MaxLinkLoad)
	}
	if len(util.StaticLinkLoads) != 2 {
		t.Fatalf("expected exactly 2 loaded links, got %d", len(util.StaticLinkLoads))
	}
}

func TestUtilizationMatchingOffloadsFabric(t *testing.T) {
	top := graph.FatTreeRacks(16)
	model := core.CostModel{Metric: top.Metric(), Alpha: 30}
	p := trace.FacebookPreset(trace.Database, 16, 5)
	p.Requests = 30000
	tr, _ := trace.FacebookStyle(p)

	load := func(alg core.Algorithm) (float64, float64) {
		_, util, err := RunWithUtilization(alg, tr, model.Alpha, top)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, l := range util.StaticLinkLoads {
			total += l
		}
		return total, util.MatchedFraction
	}
	obl, _ := core.NewOblivious(model)
	oblLoad, _ := load(obl)
	rbma, _ := core.NewRBMA(16, 3, model, 1)
	rbmaLoad, matched := load(rbma)
	if matched < 0.5 {
		t.Fatalf("R-BMA matched only %.0f%% of a skewed trace", 100*matched)
	}
	if rbmaLoad >= oblLoad/2 {
		t.Fatalf("R-BMA should offload the fabric: %v vs oblivious %v", rbmaLoad, oblLoad)
	}
}

func TestUtilizationValidation(t *testing.T) {
	top := graph.Star(3)
	model := core.CostModel{Metric: top.Metric(), Alpha: 30}
	obl, _ := core.NewOblivious(model)
	bad := &trace.Trace{NumRacks: 50, Reqs: []trace.Request{{Src: 0, Dst: 49}}}
	if _, _, err := RunWithUtilization(obl, bad, model.Alpha, top); err == nil {
		t.Fatal("trace larger than topology accepted")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	model, tr := testSetup(10)
	cfg := Config{
		Name: "par", Trace: tr, Model: model,
		Bs: []int{2, 4}, Reps: 2, Checkpoints: Checkpoints(tr.Len(), 4),
	}
	specs := []AlgSpec{
		{
			Name: "r-bma", FixedB: -1,
			New: func(b int, rep uint64) (core.Algorithm, error) {
				return core.NewRBMA(10, b, model, rep+uint64(b)<<16)
			},
		},
		{
			Name: "oblivious", FixedB: 0,
			New: func(b int, rep uint64) (core.Algorithm, error) {
				return core.NewOblivious(model)
			},
		},
	}
	seq, err := RunExperiment(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunExperimentParallel(cfg, specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Curves) != len(par.Curves) {
		t.Fatalf("curve counts differ: %d vs %d", len(seq.Curves), len(par.Curves))
	}
	// Parallel preserves job order and must produce identical cost curves
	// (same seeds, independent instances).
	for i := range seq.Curves {
		s, p := seq.Curves[i], par.Curves[i]
		if s.Alg != p.Alg || s.B != p.B {
			t.Fatalf("curve %d: ordering differs (%s,%d) vs (%s,%d)", i, s.Alg, s.B, p.Alg, p.B)
		}
		for j := range s.Avg.Routing {
			if s.Avg.Routing[j] != p.Avg.Routing[j] {
				t.Fatalf("curve %d checkpoint %d: %v vs %v", i, j, s.Avg.Routing[j], p.Avg.Routing[j])
			}
		}
	}
}

func TestParallelValidation(t *testing.T) {
	model, tr := testSetup(10)
	if _, err := RunExperimentParallel(Config{Name: "x", Trace: tr, Model: model, Bs: []int{2}}, nil, 2); err == nil {
		t.Fatal("Reps=0 accepted")
	}
	if _, err := RunExperimentParallel(Config{Name: "x", Trace: tr, Model: model, Reps: 1}, nil, 2); err == nil {
		t.Fatal("empty b sweep accepted")
	}
}
