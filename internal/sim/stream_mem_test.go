package sim

import (
	"context"
	"os"
	"runtime"
	"testing"

	"obm/internal/core"
	"obm/internal/graph"
	"obm/internal/trace"
)

// The bounded-memory acceptance suite: streamed replay must hold O(chunk)
// requests, not O(T). Verified three ways: constructing a 10⁸-request
// source allocates nothing proportional to T; a warm replay loop allocates
// (almost) nothing regardless of trace length; and — behind an env gate,
// because it takes a few CPU-seconds — an actual 10⁸-request replay stays
// under a fixed heap cap.

// measureAlloc returns the heap bytes allocated while running fn.
func measureAlloc(fn func()) uint64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

func newUniformSource(t testing.TB, n, count int, model core.CostModel) trace.Source {
	t.Helper()
	st, err := trace.NewUniformStream(n, count, 1)
	if err != nil {
		t.Fatal(err)
	}
	src, err := trace.NewSource(st, model.Metric.Dist)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// TestStreamSourceConstructionIsOofChunk: building a source over a
// 10⁸-request stream and reading its first chunks must not allocate any
// O(T) buffer (a materialized 10⁸-request trace would need ~800 MB for the
// Request slice alone, and ~1.6 GB compiled).
func TestStreamSourceConstructionIsOofChunk(t *testing.T) {
	model := core.CostModel{Metric: graph.FatTreeRacks(24).Metric(), Alpha: 30}
	const huge = 100_000_000
	var src trace.Source
	alloc := measureAlloc(func() {
		src = newUniformSource(t, 24, huge, model)
		chunk := trace.NewChunk(8192)
		for i := 0; i < 4; i++ {
			if _, err := src.Next(chunk); err != nil {
				t.Fatal(err)
			}
		}
	})
	if src.Len() != huge {
		t.Fatalf("source Len = %d", src.Len())
	}
	// Generator state + pair index + two 8192-request chunk-sized buffers:
	// well under a megabyte. An O(T) buffer would be hundreds of megabytes.
	if alloc > 8<<20 {
		t.Fatalf("constructing and reading a 1e8-request source allocated %d bytes — O(T) buffer?", alloc)
	}
}

// TestStreamedReplayAllocsIndependentOfLength: once the per-worker scratch
// (chunk + result buffer) is warm, a full streamed replay allocates a
// trace-length-independent number of bytes — the steady state is
// allocation-free, so quadrupling T must not grow allocations.
func TestStreamedReplayAllocsIndependentOfLength(t *testing.T) {
	model := core.CostModel{Metric: graph.FatTreeRacks(24).Metric(), Alpha: 30}
	replayAlloc := func(count, chunkSize int) uint64 {
		src := newUniformSource(t, 24, count, model)
		alg, err := core.NewRBMA(24, 4, model, 1)
		if err != nil {
			t.Fatal(err)
		}
		chunk := trace.NewChunk(chunkSize)
		var res RunResult
		cps := Checkpoints(count, 4)
		// Warm pass: grows the scratch buffers once.
		if err := runSourceInto(context.Background(), &res, alg, src, model.Alpha, cps, chunk, nil); err != nil {
			t.Fatal(err)
		}
		alg.Reset()
		return measureAlloc(func() {
			if err := runSourceInto(context.Background(), &res, alg, src, model.Alpha, cps, chunk, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
	const chunkSize = 4096
	short := replayAlloc(100_000, chunkSize)
	long := replayAlloc(400_000, chunkSize)
	// Both should be near zero; 64 KiB of slack absorbs runtime noise
	// (stack growth, timer internals) without masking an O(T) regression,
	// which would show up as megabytes.
	const slack = 64 << 10
	if short > slack {
		t.Errorf("warm 100k-request streamed replay allocated %d bytes, want < %d", short, slack)
	}
	if long > short+slack {
		t.Errorf("allocations grew with trace length: %d bytes at 100k vs %d at 400k", short, long)
	}
}

// TestStreamHundredMillionRequests is the literal acceptance run: a
// 10⁸-request streamed scenario replayed under a fixed heap cap. It costs
// a few CPU-seconds, so it only runs when OBM_STREAM_HUGE=1 is set:
//
//	OBM_STREAM_HUGE=1 go test ./internal/sim -run TestStreamHundredMillion -v
func TestStreamHundredMillionRequests(t *testing.T) {
	if os.Getenv("OBM_STREAM_HUGE") == "" {
		t.Skip("set OBM_STREAM_HUGE=1 to run the 1e8-request replay")
	}
	model := core.CostModel{Metric: graph.FatTreeRacks(48).Metric(), Alpha: 30}
	const huge = 100_000_000
	spec := ScenarioSpec{
		Name: "huge", Family: "hotspot",
		Racks: 48, Requests: huge, Seed: 1,
		Bs: []int{4}, Reps: 1,
	}
	src, err := spec.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	alg, err := core.NewBMA(48, 4, model)
	if err != nil {
		t.Fatal(err)
	}
	chunk := trace.NewChunk(8192)
	var res RunResult
	done := make(chan struct{})
	peak := make(chan uint64, 1)
	go func() {
		var max uint64
		var ms runtime.MemStats
		for {
			select {
			case <-done:
				peak <- max
				return
			default:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > max {
					max = ms.HeapAlloc
				}
			}
		}
	}()
	if err := runSourceInto(context.Background(), &res, alg, src, model.Alpha, Checkpoints(huge, 4), chunk, nil); err != nil {
		t.Fatal(err)
	}
	close(done)
	if p := <-peak; p > 256<<20 {
		t.Fatalf("1e8-request replay peaked at %d bytes of heap, want < 256 MiB", p)
	}
	if res.Series.X[len(res.Series.X)-1] != huge {
		t.Fatalf("replay ended at %d requests", res.Series.X[len(res.Series.X)-1])
	}
}
