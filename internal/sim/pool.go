package sim

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// runPool executes nJobs jobs (identified by index) on a worker pool and
// returns every job error joined in job order (nil if all succeeded).
// newWorker is called once per worker goroutine and returns the job
// function, closing over that worker's scratch buffers. After the first
// failure — or once ctx is cancelled — no further jobs are started; jobs
// already handed to a worker finish (a cancelled ctx makes ctx-aware jobs
// return early) and their errors are collected too. workers <= 0 selects
// GOMAXPROCS.
func runPool(ctx context.Context, nJobs, workers int, newWorker func() func(job int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nJobs {
		workers = nJobs
	}
	errs := make([]error, nJobs)
	ch := make(chan int)
	quit := make(chan struct{})
	var quitOnce sync.Once
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work := newWorker()
			for ji := range ch {
				if err := work(ji); err != nil {
					errs[ji] = err
					quitOnce.Do(func() { close(quit) })
				}
			}
		}()
	}
feed:
	for ji := 0; ji < nJobs; ji++ {
		select {
		case ch <- ji:
		case <-quit:
			break feed
		case <-ctx.Done():
			break feed
		}
	}
	close(ch)
	wg.Wait()
	return errors.Join(errs...)
}
