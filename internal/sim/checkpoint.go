package sim

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"time"

	"obm/internal/core"
	"obm/internal/snap"
	"obm/internal/trace"
)

// Mid-job replay checkpoints: the "OBMC" blob freezes one grid job part-way
// through its replay — stream position, the partial cost curve, accumulated
// decision-loop time, and an embedded "OBMI" algorithm snapshot — so a
// killed run resumes *inside* a long job instead of replaying it from
// request zero. Resume fast-forwards the job's own deterministic source to
// the frozen position and continues; by the snapshot equivalence contract
// the finished outcome is bit-identical to an uninterrupted replay, which
// is why a checkpoint can never become part of job identity: it is purely
// an optimization, and any load failure falls back to a fresh replay.

// ckMagic and ckVersion identify the replay-checkpoint blob format.
var ckMagic = []byte("OBMC")

const ckVersion = 1

// ckHooks is a job-bound view of the GridOptions checkpoint hooks.
type ckHooks struct {
	every int
	save  func([]byte) error
	load  func() ([]byte, bool)
	drop  func()
}

// enabled reports whether the checkpointed replay path is worth taking at
// all (something to save, or something to resume from).
func (ck *ckHooks) enabled() bool {
	return (ck.every > 0 && ck.save != nil) || ck.load != nil
}

// saveReplayCheckpoint serializes the meter's mid-replay state at stream
// position pos. An error means the algorithm refused to snapshot (e.g. an
// ablation variant with a substituted cache) — never an I/O failure, since
// the sink is an in-memory buffer.
func saveReplayCheckpoint(m *costMeter, pos int, elapsed time.Duration) ([]byte, error) {
	var buf bytes.Buffer
	sw := snap.NewWriter(&buf)
	sw.Bytes(ckMagic)
	sw.U8(ckVersion)
	sw.I64(int64(pos))
	sw.U32(uint32(len(m.res.Series.X)))
	for i, x := range m.res.Series.X {
		sw.I64(int64(x))
		sw.F64(m.res.Series.Routing[i])
		sw.F64(m.res.Series.Reconfig[i])
	}
	sw.I64(int64(elapsed))
	if sw.Err() != nil {
		return nil, sw.Err()
	}
	if err := m.inc.Snapshot(sw); err != nil {
		return nil, err
	}
	sw.WriteCRC()
	if sw.Err() != nil {
		return nil, sw.Err()
	}
	return buf.Bytes(), nil
}

// loadReplayCheckpoint restores a blob written by saveReplayCheckpoint into
// a freshly initialized meter, returning the stream position to resume from
// and the elapsed time accumulated before the checkpoint. The stored curve
// prefix must agree exactly with the meter's checkpoint schedule — a blob
// from a run with different curve points is rejected, not reinterpreted.
// On error the meter and its algorithm are in an unspecified state; the
// caller falls back to a fresh replay.
func loadReplayCheckpoint(blob []byte, m *costMeter, total int) (int, time.Duration, error) {
	sr := snap.NewReader(bytes.NewReader(blob))
	sr.Expect(ckMagic)
	if v := sr.U8(); sr.Err() == nil && v != ckVersion {
		return 0, 0, snap.Corruptf("sim: checkpoint version %d, this build reads %d", v, ckVersion)
	}
	pos64 := sr.I64()
	npoints := sr.U32()
	if sr.Err() != nil {
		return 0, 0, sr.Err()
	}
	pos := int(pos64)
	if pos64 < 0 || pos > total {
		return 0, 0, snap.Corruptf("sim: checkpoint position %d outside [0,%d]", pos64, total)
	}
	if int(npoints) > len(m.checkpoints) {
		return 0, 0, snap.Corruptf("sim: checkpoint has %d curve points, schedule has %d", npoints, len(m.checkpoints))
	}
	for i := 0; i < int(npoints); i++ {
		x := sr.I64()
		routing := sr.F64()
		reconfig := sr.F64()
		if sr.Err() != nil {
			return 0, 0, sr.Err()
		}
		if int(x) != m.checkpoints[i] || int(x) > pos {
			return 0, 0, snap.Corruptf("sim: checkpoint curve point %d at x=%d does not match schedule point %d", i, x, m.checkpoints[i])
		}
		m.res.Series.X = append(m.res.Series.X, int(x))
		m.res.Series.Routing = append(m.res.Series.Routing, routing)
		m.res.Series.Reconfig = append(m.res.Series.Reconfig, reconfig)
	}
	if int(npoints) < len(m.checkpoints) && m.checkpoints[npoints] <= pos {
		return 0, 0, snap.Corruptf("sim: checkpoint at %d is missing curve point %d", pos, m.checkpoints[npoints])
	}
	elapsed := sr.I64()
	if sr.Err() == nil && elapsed < 0 {
		return 0, 0, snap.Corruptf("sim: negative checkpoint elapsed time %d", elapsed)
	}
	if err := m.inc.Restore(sr); err != nil {
		return 0, 0, err
	}
	sr.VerifyCRC()
	if sr.Err() != nil {
		return 0, 0, sr.Err()
	}
	if got := m.inc.Counters().Served; got != int64(pos) {
		return 0, 0, snap.Corruptf("sim: checkpoint at position %d embeds a snapshot of %d served requests", pos, got)
	}
	m.ci = int(npoints)
	m.nextCP = -1
	if m.ci < len(m.checkpoints) {
		m.nextCP = m.checkpoints[m.ci]
	}
	return pos, time.Duration(elapsed), nil
}

// runSourceCheckpointed is runSourceInto with mid-replay checkpointing: it
// resumes from ck.load's blob when one exists and is valid (anything else
// silently degrades to a fresh replay), saves a new checkpoint through
// ck.save at the first chunk boundary after every ck.every fed requests,
// and drops the checkpoint once the replay completes. Cost curves are
// bit-identical to runSourceInto in every case — resumed, checkpointed or
// both — because the algorithm snapshot round-trip is exact and the source
// is deterministic under Reset.
func runSourceCheckpointed(ctx context.Context, res *RunResult, alg core.Algorithm, src trace.Source, alpha float64, checkpoints []int, chunk *trace.CompiledChunk, ck ckHooks, met *Metrics) error {
	if err := validateCheckpoints(checkpoints, src.Len()); err != nil {
		return err
	}
	src.Reset()
	res.reset(alg.Name())
	m := newCostMeter(res, checkpoints, alg, alpha)
	start := 0
	var elapsed time.Duration
	if ck.load != nil {
		lt := time.Now()
		blob, ok := ck.load()
		if ok {
			pos, el, err := loadReplayCheckpoint(blob, &m, src.Len())
			met.loadTimed(time.Since(lt))
			if err != nil {
				// A checkpoint is an optimization: a corrupt, truncated or
				// mismatched blob means a fresh replay, not a failed job.
				// The load may have partially mutated the algorithm and the
				// series buffers, so rebuild both from scratch.
				alg.Reset()
				res.reset(alg.Name())
				m = newCostMeter(res, checkpoints, alg, alpha)
			} else {
				start, elapsed = pos, el
			}
		}
	}
	saving := ck.every > 0 && ck.save != nil
	fed := 0
	i := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		n, err := src.Next(chunk)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		// Fast-forward: chunks entirely inside the resumed prefix are
		// drained without feeding; a chunk straddling the boundary feeds
		// only its suffix.
		if i+n <= start {
			i += n
			continue
		}
		skip := 0
		if i < start {
			skip = start - i
		}
		t0 := time.Now()
		for j, req := range chunk.Reqs[skip:n] {
			m.inc.Feed(req)
			if gi := i + skip + j; gi+1 == m.nextCP {
				m.checkpoint(gi)
			}
		}
		elapsed += time.Since(t0)
		fed += n - skip
		i += n
		met.chunkFed(n - skip)
		if saving && fed >= ck.every {
			st := time.Now()
			blob, serr := saveReplayCheckpoint(&m, i, elapsed)
			if serr != nil {
				// The algorithm cannot snapshot (ablation variants): run the
				// job to completion without checkpoints rather than failing
				// a perfectly computable outcome.
				saving = false
			} else if err := ck.save(blob); err != nil {
				return fmt.Errorf("sim: saving checkpoint at %d requests: %w", i, err)
			} else {
				met.saveTimed(time.Since(st))
			}
			fed = 0
		}
	}
	res.Elapsed = elapsed
	if i != src.Len() {
		return fmt.Errorf("sim: source %q produced %d requests, declared %d", src.Name(), i, src.Len())
	}
	m.finish()
	res.FinalMatchingSize = alg.MatchingSize()
	if ck.drop != nil {
		ck.drop()
	}
	return nil
}
