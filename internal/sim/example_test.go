package sim_test

import (
	"fmt"

	"obm/internal/sim"
)

// ExampleRunGrid expands two scenario specs into a (scenario × algorithm
// × b × rep) job grid and executes it on the worker pool with streamed,
// bounded-memory replay. Costs are deterministic under the seed contract,
// so the aggregated row shapes are stable.
func ExampleRunGrid() {
	specs := []sim.ScenarioSpec{
		{
			Name: "uniform-demo", Family: "uniform",
			Racks: 8, Requests: 2000, Seed: 1,
			Bs: []int{2}, Reps: 2,
			Algs: []string{"r-bma", "oblivious"},
		},
		{
			Name: "hotspot-demo", Family: "hotspot",
			Racks: 8, Requests: 2000, Seed: 2,
			Bs: []int{2}, Reps: 2,
			Params: map[string]float64{"hotspots": 3},
		},
	}
	res, err := sim.RunGrid(specs, sim.GridOptions{Workers: 2})
	if err != nil {
		panic(err)
	}
	for _, r := range res.Rows {
		fmt.Printf("%s %s b=%d reps=%d\n", r.Scenario, r.Alg, r.B, r.Routing.N)
	}
	// Output:
	// uniform-demo r-bma b=2 reps=2
	// uniform-demo oblivious b=0 reps=2
	// hotspot-demo r-bma b=2 reps=2
	// hotspot-demo bma b=2 reps=2
	// hotspot-demo oblivious b=0 reps=2
}

// ExamplePlanGrid shows the deterministic grid expansion that sharding
// and run stores are built on: job identities depend only on the specs.
func ExamplePlanGrid() {
	specs := []sim.ScenarioSpec{{
		Name: "demo", Family: "uniform",
		Racks: 8, Requests: 1000, Seed: 1,
		Bs: []int{2, 4}, Reps: 2, Algs: []string{"bma"},
	}}
	plan, err := sim.PlanGrid(specs)
	if err != nil {
		panic(err)
	}
	for i, j := range plan.Jobs {
		fmt.Printf("job %d: %s (cell %d)\n", i, j, plan.CellOf[i])
	}
	// Output:
	// job 0: demo/bma(b=2)/rep=0 (cell 0)
	// job 1: demo/bma(b=2)/rep=1 (cell 0)
	// job 2: demo/bma(b=4)/rep=0 (cell 1)
	// job 3: demo/bma(b=4)/rep=1 (cell 1)
}
