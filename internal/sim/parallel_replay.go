package sim

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"obm/internal/core"
	"obm/internal/trace"
)

// Parallel streamed replay: the multi-core twin of RunSource for sharded
// (multi-plane) algorithms. One reader goroutine (the caller) drains the
// trace.Source — sources are not concurrency-safe — and scatters each chunk
// into per-shard sub-batches; per-shard state lives in core.Sharded's
// planes, which share nothing, so the sub-batches replay concurrently.
//
// Determinism: every plane serves exactly the subsequence of requests it
// owns, in trace order (per-shard FIFO channels; one fixed worker per
// shard), with the sequential cost meter's accumulation order; checkpoint
// curves are assembled by folding per-shard samples in canonical ascending
// shard order (core.FoldShardSteps' order). The result is therefore a pure
// function of (algorithm, trace, checkpoints): the worker count, chunk
// size and goroutine scheduling never change a single bit. With one shard
// the replay is unconditionally byte-identical to sequential RunSource;
// with S > 1 it equals sequential replay of the same sharded algorithm
// whenever per-step costs are integer-valued (α integer — every preset and
// figure), because all partial cost sums are then exact in float64.
// parallel_replay_test.go pins both properties on the paper's four trace
// families.

// cpSample is one shard's cumulative cost sampled at one checkpoint.
type cpSample struct {
	routing, reconfig float64
}

// shardMark tells a worker to sample checkpoint ci after serving the first
// pos requests of the batch. Every shard receives a mark for every global
// checkpoint (its owned-subsequence position at that point), so curves
// merge by folding shard samples per checkpoint.
type shardMark struct {
	pos int32
	ci  int32
}

// shardBatch is the unit of reader→worker transfer: one chunk's requests
// owned by one shard, plus the checkpoint marks falling inside it. Batches
// are recycled through a free list, so a replay of any length allocates a
// bounded number of them.
type shardBatch struct {
	shard int
	reqs  []trace.CompiledReq
	marks []shardMark
}

// parallelScratch is the per-run working set of the parallel replay —
// per-shard accumulators, checkpoint samples (flat, s·ncp+ci), scatter
// state, the worker channels and the batch free list. It is recycled
// through a sync.Pool: a grid run executes thousands of parallel replays,
// and without reuse each one paid O(shards) allocations for this state
// plus a fresh set of batch buffers (the old code closed its channels at
// drain, so nothing survived a run). Workers now terminate on a nil
// sentinel batch instead of channel close, which is what lets the
// channels — and the recycled batches queued on the free list — live
// across runs. The alloc-growth guard in parallel_replay_test.go pins
// the effect.
type parallelScratch struct {
	finals  []core.ShardStep
	samples []cpSample
	cur     []*shardBatch
	work    []chan *shardBatch
	free    chan *shardBatch
}

var parallelPool sync.Pool

// getParallelScratch returns a scratch sized for (shards, workers, ncp),
// growing a pooled one only where capacity is short.
func getParallelScratch(shards, workers, ncp int) *parallelScratch {
	sc, _ := parallelPool.Get().(*parallelScratch)
	if sc == nil {
		sc = &parallelScratch{}
	}
	if cap(sc.finals) < shards {
		sc.finals = make([]core.ShardStep, shards)
	} else {
		sc.finals = sc.finals[:shards]
		clear(sc.finals)
	}
	if need := shards * ncp; cap(sc.samples) < need {
		sc.samples = make([]cpSample, need)
	} else {
		sc.samples = sc.samples[:need]
	}
	if cap(sc.cur) < shards {
		sc.cur = make([]*shardBatch, shards)
	} else {
		sc.cur = sc.cur[:shards]
		clear(sc.cur)
	}
	for len(sc.work) < workers {
		sc.work = append(sc.work, make(chan *shardBatch, 2))
	}
	if sc.free == nil || cap(sc.free) < 4*shards {
		// Migrate recycled batches into the bigger free list.
		old := sc.free
		sc.free = make(chan *shardBatch, 4*shards)
		for old != nil {
			select {
			case b := <-old:
				sc.free <- b
			default:
				old = nil
			}
		}
	}
	return sc
}

// RunSourceParallel replays src through alg with up to `workers` worker
// goroutines (<= 0 selects GOMAXPROCS, capped at the shard count),
// resetting the source first. alg must be a *core.Sharded for the replay
// to actually parallelize; any other algorithm falls back to the
// sequential RunSource path. The result is byte-identical for every
// worker count — parallelism is a throughput knob, never part of the
// experiment's identity.
func RunSourceParallel(alg core.Algorithm, src trace.Source, alpha float64, checkpoints []int, chunkSize, workers int) (RunResult, error) {
	var res RunResult
	if err := runSourceParallelInto(context.Background(), &res, alg, src, alpha, checkpoints, trace.NewChunk(chunkSize), workers, nil); err != nil {
		return RunResult{}, err
	}
	return res, nil
}

// runSourceParallelInto is RunSourceParallel writing into reusable result
// and chunk buffers. The chunk buffer is only read on the caller's
// goroutine (requests are copied into shard batches before workers see
// them), so the grid scheduler's per-worker chunk is safe to pass in.
func runSourceParallelInto(ctx context.Context, res *RunResult, alg core.Algorithm, src trace.Source, alpha float64, checkpoints []int, chunk *trace.CompiledChunk, workers int, met *Metrics) error {
	sh, ok := alg.(*core.Sharded)
	if !ok {
		return runSourceInto(ctx, res, alg, src, alpha, checkpoints, chunk, met)
	}
	if err := validateCheckpoints(checkpoints, src.Len()); err != nil {
		return err
	}
	shards := sh.Shards()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shards {
		workers = shards
	}
	src.Reset()
	res.reset(alg.Name())
	part := sh.Partition()

	// Per-shard state, recycled across runs through the scratch pool. Each
	// finals/samples entry is written by exactly one worker goroutine
	// (shard s is pinned to worker s % workers) and read only after the
	// WaitGroup barrier. samples is flat: shard s's checkpoint ci lives at
	// s*ncp + ci.
	ncp := len(checkpoints)
	sc := getParallelScratch(shards, workers, ncp)
	defer parallelPool.Put(sc)
	finals := sc.finals
	samples := sc.samples
	work := sc.work[:workers]
	// Recycled batch buffers: enough for every shard to have one batch in
	// flight per channel slot plus one being filled, without the reader
	// ever needing a fresh allocation in steady state.
	free := sc.free

	// Fold timing is per delivered batch, not per request, so the
	// histogram mutex is touched at scatter granularity; hoisted out of
	// the loop, the off path is one nil check per batch.
	foldHist := met.foldHist()

	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				// nil is the termination sentinel — the channels are never
				// closed, so they (and the batches on the free list) outlive
				// the run inside the pooled scratch.
				b := <-work[w]
				if b == nil {
					return
				}
				var t0 time.Time
				if foldHist != nil {
					t0 = time.Now()
				}
				s := b.shard
				d := &finals[s]
				prev := int32(0)
				for _, mk := range b.marks {
					sh.ApplyShard(s, alpha, b.reqs[prev:mk.pos], d)
					prev = mk.pos
					samples[s*ncp+int(mk.ci)] = cpSample{d.Routing, d.Reconfig}
				}
				sh.ApplyShard(s, alpha, b.reqs[prev:], d)
				if foldHist != nil {
					foldHist.ObserveDuration(time.Since(t0))
				}
				select {
				case free <- b:
				default:
				}
			}
		}(w)
	}
	drain := func() {
		for w := range work {
			work[w] <- nil
		}
		wg.Wait()
	}

	getBatch := func(s int) *shardBatch {
		var b *shardBatch
		select {
		case b = <-free:
			b.reqs = b.reqs[:0]
			b.marks = b.marks[:0]
		default:
			b = &shardBatch{}
		}
		b.shard = s
		return b
	}

	// Scatter loop: split each chunk by owner, stamp checkpoint marks into
	// every shard's batch, hand finished batches to the owning worker.
	cur := sc.cur
	pos, ci := 0, 0
	nextCP := -1
	if len(checkpoints) > 0 {
		nextCP = checkpoints[0]
	}
	for {
		if err := ctx.Err(); err != nil {
			drain()
			return err
		}
		n, err := src.Next(chunk)
		if err == io.EOF {
			break
		}
		if err != nil {
			drain()
			return err
		}
		for _, req := range chunk.Reqs[:n] {
			s := part.OfReq(req)
			b := cur[s]
			if b == nil {
				b = getBatch(s)
				cur[s] = b
			}
			b.reqs = append(b.reqs, req)
			pos++
			if pos == nextCP {
				for s2 := 0; s2 < shards; s2++ {
					b2 := cur[s2]
					if b2 == nil {
						b2 = getBatch(s2)
						cur[s2] = b2
					}
					b2.marks = append(b2.marks, shardMark{pos: int32(len(b2.reqs)), ci: int32(ci)})
				}
				ci++
				nextCP = -1
				if ci < len(checkpoints) {
					nextCP = checkpoints[ci]
				}
			}
		}
		for s := 0; s < shards; s++ {
			if cur[s] != nil {
				work[s%workers] <- cur[s]
				cur[s] = nil
			}
		}
		met.chunkFed(n)
	}
	drain()
	// Elapsed is the wall clock of the whole scatter/serve/merge section —
	// the parallel throughput actually achieved. Unlike the sequential
	// path it includes the source's generation time (the reader overlaps
	// it with the workers), so compare parallel Elapsed against parallel,
	// not against RunSource's decision-loop-only timing.
	res.Elapsed = time.Since(start)

	if pos != src.Len() {
		return fmt.Errorf("sim: source %q produced %d requests, declared %d", src.Name(), pos, src.Len())
	}

	// Deterministic merge: per checkpoint, fold shard samples in ascending
	// shard order (the canonical FoldShardSteps order).
	for i, cp := range checkpoints {
		var routing, reconfig float64
		for s := 0; s < shards; s++ {
			routing += samples[s*ncp+i].routing
			reconfig += samples[s*ncp+i].reconfig
		}
		res.Series.X = append(res.Series.X, cp)
		res.Series.Routing = append(res.Series.Routing, routing)
		res.Series.Reconfig = append(res.Series.Reconfig, reconfig)
	}
	total := core.FoldShardSteps(finals)
	res.Adds = total.Adds
	res.Removals = total.Removals
	res.FinalMatchingSize = sh.MatchingSize()
	return nil
}
