package sim

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"obm/internal/core"
	"obm/internal/trace"
)

// The snapshot/restore equivalence suite: for every paper trace family ×
// algorithm × shard count × snapshot point, snapshotting a replay at k
// requests, restoring into a fresh instance and replaying the tail must
// reproduce the uninterrupted replay's cost stream bit for bit (see
// CheckSnapshotEquivalence). This is the contract every checkpoint
// consumer — grid resume, engine session restore, fleet handoff — relies
// on.

const (
	equivRacks    = 32
	equivRequests = 20000
	equivB        = 4
	equivAlpha    = 30.0
)

// equivSpec parameterizes one equivalence scenario.
func equivSpec(family string, shards int) ScenarioSpec {
	return ScenarioSpec{
		Name: "equiv", Family: family,
		Racks: equivRacks, Requests: equivRequests, Seed: 11,
		Alpha: equivAlpha, Bs: []int{equivB}, Algs: []string{"r-bma"},
		Shards: shards,
	}
}

// equivBuilder returns the fresh-instance constructor for one (alg,
// family, shards) cell. Registry algorithms build through the scenario
// registry (shard planes and per-plane seeding included, exactly like a
// grid job or an engine session); the static baseline is built offline
// from the materialized trace, per plane when sharded.
func equivBuilder(t *testing.T, alg string, spec ScenarioSpec) func() (core.Algorithm, error) {
	t.Helper()
	if alg != "static" {
		return func() (core.Algorithm, error) {
			return spec.BuildAlgorithm(alg, equivB, 3)
		}
	}
	st, err := spec.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Collect(st)
	model := spec.Model()
	if spec.Shards <= 1 {
		return func() (core.Algorithm, error) {
			return core.NewStaticFromTrace(tr, equivB, model)
		}
	}
	return func() (core.Algorithm, error) {
		part, err := core.NewPartition(spec.Racks, spec.Shards)
		if err != nil {
			return nil, err
		}
		return core.NewSharded(part, func(int) (core.Algorithm, error) {
			return core.NewStaticFromTrace(tr, equivB, model)
		})
	}
}

func TestSnapshotEquivalence(t *testing.T) {
	families := []string{"uniform", "microsoft", "phase-shift", "permutation"}
	algs := []string{"r-bma", "bma", "oblivious", "static"}
	shardCounts := []int{1, 2, 4, 7}
	snapAts := []int{7321, 16000}
	if testing.Short() {
		families = []string{"uniform", "phase-shift"}
		shardCounts = []int{1, 2}
		snapAts = []int{7321}
	}
	checkpoints := Checkpoints(equivRequests, 8)
	for _, family := range families {
		for _, alg := range algs {
			for _, shards := range shardCounts {
				for _, snapAt := range snapAts {
					name := fmt.Sprintf("%s/%s/shards=%d/at=%d", family, alg, shards, snapAt)
					spec := equivSpec(family, shards)
					build := equivBuilder(t, alg, spec)
					t.Run(name, func(t *testing.T) {
						t.Parallel()
						src, err := spec.NewSource()
						if err != nil {
							t.Fatal(err)
						}
						if err := CheckSnapshotEquivalence(build, src, equivAlpha, checkpoints, snapAt); err != nil {
							t.Fatal(err)
						}
					})
				}
			}
		}
	}
}

// TestSnapshotEquivalenceEdges pins the boundary snapshot points: a
// snapshot before the first request (a freshly built instance must
// round-trip) and after the last (nothing left to replay; final state must
// still compare equal).
func TestSnapshotEquivalenceEdges(t *testing.T) {
	spec := equivSpec("uniform", 2)
	build := equivBuilder(t, "r-bma", spec)
	for _, snapAt := range []int{0, equivRequests} {
		src, err := spec.NewSource()
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckSnapshotEquivalence(build, src, equivAlpha, Checkpoints(equivRequests, 4), snapAt); err != nil {
			t.Fatalf("snapAt=%d: %v", snapAt, err)
		}
	}
}

// TestSnapshotRestoreRejectsMismatch pins the loud-failure paths: a blob
// restored into a differently configured instance must error, never
// silently produce a diverging state.
func TestSnapshotRestoreRejectsMismatch(t *testing.T) {
	spec := equivSpec("uniform", 1)
	src, err := spec.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	alg, err := spec.BuildAlgorithm("r-bma", equivB, 3)
	if err != nil {
		t.Fatal(err)
	}
	in := NewIncremental(alg, equivAlpha)
	if err := replaySpan(in, src, 0, 5000, nil); err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	if err := in.Snapshot(&blob); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		alg   string
		b     int
		alpha float64
		want  string
	}{
		{"wrong b", "r-bma", equivB + 1, equivAlpha, "b="},
		{"wrong alpha", "r-bma", equivB, equivAlpha + 1, "alpha"},
		{"wrong algorithm", "bma", equivB, equivAlpha, "tag"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			target, err := spec.BuildAlgorithm(tc.alg, tc.b, 3)
			if err != nil {
				t.Fatal(err)
			}
			tin := NewIncremental(target, tc.alpha)
			rerr := tin.Restore(bytes.NewReader(blob.Bytes()))
			if rerr == nil {
				t.Fatalf("restore into %s succeeded, want error", tc.name)
			}
			if !strings.Contains(rerr.Error(), tc.want) {
				t.Fatalf("restore error %q does not mention %q", rerr, tc.want)
			}
		})
	}
}
