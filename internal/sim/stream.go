package sim

import (
	"context"
	"fmt"
	"io"
	"time"

	"obm/internal/core"
	"obm/internal/trace"
)

// Streamed replay: the chunked twin of the materialized replay loops in
// engine.go. A trace.Source delivers compiled requests in fixed-size
// chunks, so a replay of any length holds O(chunk) requests in memory; the
// per-request decision loop is byte-for-byte the one RunCompiled runs, so
// cost curves are bit-identical to materialized replay (pinned by
// stream_golden_test.go).

// RunSource replays src through alg in chunks of chunkSize requests
// (trace.DefaultChunkSize if <= 0), resetting the source first. Cost
// curves are bit-identical to RunCompiled over the materialized trace.
func RunSource(alg core.Algorithm, src trace.Source, alpha float64, checkpoints []int, chunkSize int) (RunResult, error) {
	var res RunResult
	if err := runSourceInto(context.Background(), &res, alg, src, alpha, checkpoints, trace.NewChunk(chunkSize), nil); err != nil {
		return RunResult{}, err
	}
	return res, nil
}

// runSourceInto is RunSource writing into reusable result and chunk
// buffers: a (result, chunk) pair recycled across repetitions stops
// allocating once warm, which is what keeps streamed replay O(chunk).
// Cancellation is honored at chunk boundaries — a cancelled ctx aborts
// the replay within one chunk's worth of requests, never mid-chunk, so
// costs are either complete or discarded (a partial replay is an error,
// not a shorter curve).
func runSourceInto(ctx context.Context, res *RunResult, alg core.Algorithm, src trace.Source, alpha float64, checkpoints []int, chunk *trace.CompiledChunk, met *Metrics) error {
	if err := validateCheckpoints(checkpoints, src.Len()); err != nil {
		return err
	}
	src.Reset()
	res.reset(alg.Name())
	m := newCostMeter(res, checkpoints, alg, alpha)
	i := 0
	// Elapsed covers the decision loops only — generation and chunk
	// compilation inside src.Next are excluded, so the measurement matches
	// the materialized path (which times the Serve loop over a
	// pre-compiled trace) and stays comparable to the paper's
	// execution-time figures. The two clock reads per chunk are noise
	// against thousands of Serve calls.
	var elapsed time.Duration
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		n, err := src.Next(chunk)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		start := time.Now()
		for _, req := range chunk.Reqs[:n] {
			m.inc.Feed(req)
			if i+1 == m.nextCP {
				m.checkpoint(i)
			}
			i++
		}
		elapsed += time.Since(start)
		met.chunkFed(n)
	}
	res.Elapsed = elapsed
	if i != src.Len() {
		return fmt.Errorf("sim: source %q produced %d requests, declared %d", src.Name(), i, src.Len())
	}
	m.finish()
	res.FinalMatchingSize = alg.MatchingSize()
	return nil
}

// RunAveragedSource replays src through reps independent algorithm
// instances (resetting the source per repetition) and averages the curves.
func RunAveragedSource(f AlgFactory, src trace.Source, alpha float64, checkpoints []int, reps, chunkSize int) (Averaged, error) {
	chunk := trace.NewChunk(chunkSize)
	return runAveraged(f, reps, nil, func(res *RunResult, alg core.Algorithm) error {
		return runSourceInto(context.Background(), res, alg, src, alpha, checkpoints, chunk, nil)
	})
}
