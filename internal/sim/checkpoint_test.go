package sim

import (
	"context"
	"math"
	"testing"

	"obm/internal/trace"
)

// ckEnv builds the fixtures for one checkpointed-replay test: a scenario
// source, a fresh algorithm and reference outcome from plain runSourceInto.
func ckEnv(t *testing.T, shards int) (ScenarioSpec, []int, RunResult) {
	t.Helper()
	spec := equivSpec("uniform", shards)
	checkpoints := Checkpoints(equivRequests, 5)
	src, err := spec.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	alg, err := spec.BuildAlgorithm("r-bma", equivB, 3)
	if err != nil {
		t.Fatal(err)
	}
	var ref RunResult
	if err := runSourceInto(context.Background(), &ref, alg, src, equivAlpha, checkpoints, trace.NewChunk(512), nil); err != nil {
		t.Fatal(err)
	}
	return spec, checkpoints, ref
}

// sameSeries compares two run results bit-exactly (everything but the
// wall-clock fields).
func sameSeries(t *testing.T, want, got *RunResult) {
	t.Helper()
	if len(want.Series.X) != len(got.Series.X) {
		t.Fatalf("series lengths %d != %d", len(got.Series.X), len(want.Series.X))
	}
	for i := range want.Series.X {
		if want.Series.X[i] != got.Series.X[i] ||
			math.Float64bits(want.Series.Routing[i]) != math.Float64bits(got.Series.Routing[i]) ||
			math.Float64bits(want.Series.Reconfig[i]) != math.Float64bits(got.Series.Reconfig[i]) {
			t.Fatalf("series diverges at point %d: (%d, %v, %v) != (%d, %v, %v)",
				i, got.Series.X[i], got.Series.Routing[i], got.Series.Reconfig[i],
				want.Series.X[i], want.Series.Routing[i], want.Series.Reconfig[i])
		}
	}
	if want.Adds != got.Adds || want.Removals != got.Removals || want.FinalMatchingSize != got.FinalMatchingSize {
		t.Fatalf("final state (adds=%d removals=%d matching=%d) != (adds=%d removals=%d matching=%d)",
			got.Adds, got.Removals, got.FinalMatchingSize, want.Adds, want.Removals, want.FinalMatchingSize)
	}
}

// TestCheckpointedReplayMatchesPlain runs the checkpointed path end to end
// (saving but never resuming) and requires bit-identical results to the
// plain path, plus a dropped checkpoint at the end.
func TestCheckpointedReplayMatchesPlain(t *testing.T) {
	for _, shards := range []int{1, 3} {
		spec, checkpoints, ref := ckEnv(t, shards)
		src, err := spec.NewSource()
		if err != nil {
			t.Fatal(err)
		}
		alg, err := spec.BuildAlgorithm("r-bma", equivB, 3)
		if err != nil {
			t.Fatal(err)
		}
		saves, drops := 0, 0
		ck := ckHooks{
			every: 3000,
			save:  func([]byte) error { saves++; return nil },
			drop:  func() { drops++ },
		}
		var res RunResult
		if err := runSourceCheckpointed(context.Background(), &res, alg, src, equivAlpha, checkpoints, trace.NewChunk(512), ck, nil); err != nil {
			t.Fatal(err)
		}
		sameSeries(t, &ref, &res)
		if saves == 0 {
			t.Fatal("no checkpoint was saved")
		}
		if drops != 1 {
			t.Fatalf("drop hook called %d times, want 1", drops)
		}
	}
}

// TestCheckpointedReplayResumes interrupts a checkpointed replay (save
// hook retains the blob), then resumes from the retained checkpoint and
// requires the finished outcome to match the uninterrupted reference bit
// for bit — the grid-level form of the snapshot equivalence contract.
func TestCheckpointedReplayResumes(t *testing.T) {
	spec, checkpoints, ref := ckEnv(t, 2)

	// Phase 1: replay with checkpointing, cancelling via a save hook that
	// stops the run after the second checkpoint lands.
	var kept []byte
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	saves := 0
	ck := ckHooks{
		every: 4000,
		save: func(blob []byte) error {
			kept = append(kept[:0], blob...)
			if saves++; saves == 2 {
				cancel()
			}
			return nil
		},
	}
	src, err := spec.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	alg, err := spec.BuildAlgorithm("r-bma", equivB, 3)
	if err != nil {
		t.Fatal(err)
	}
	var partial RunResult
	if err := runSourceCheckpointed(ctx, &partial, alg, src, equivAlpha, checkpoints, trace.NewChunk(512), ck, nil); err == nil {
		t.Fatal("cancelled replay reported success")
	}
	if kept == nil {
		t.Fatal("no checkpoint retained")
	}

	// Phase 2: fresh everything, resume from the retained blob.
	src2, err := spec.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	alg2, err := spec.BuildAlgorithm("r-bma", equivB, 3)
	if err != nil {
		t.Fatal(err)
	}
	loaded := false
	dropped := false
	ck2 := ckHooks{
		load: func() ([]byte, bool) { loaded = true; return kept, true },
		drop: func() { dropped = true },
	}
	var res RunResult
	if err := runSourceCheckpointed(context.Background(), &res, alg2, src2, equivAlpha, checkpoints, trace.NewChunk(512), ck2, nil); err != nil {
		t.Fatal(err)
	}
	if !loaded || !dropped {
		t.Fatalf("loaded=%v dropped=%v, want both", loaded, dropped)
	}
	sameSeries(t, &ref, &res)
}

// TestCheckpointedReplayCorruptFallback flips one byte in every position
// of a saved checkpoint and requires each damaged blob to degrade to a
// fresh replay with a bit-identical outcome — never an error, never a
// silently wrong result.
func TestCheckpointedReplayCorruptFallback(t *testing.T) {
	spec, checkpoints, ref := ckEnv(t, 1)
	var kept []byte
	src, err := spec.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	alg, err := spec.BuildAlgorithm("r-bma", equivB, 3)
	if err != nil {
		t.Fatal(err)
	}
	ck := ckHooks{
		every: equivRequests / 2,
		save:  func(blob []byte) error { kept = append(kept[:0], blob...); return nil },
	}
	var res RunResult
	if err := runSourceCheckpointed(context.Background(), &res, alg, src, equivAlpha, checkpoints, trace.NewChunk(512), ck, nil); err != nil {
		t.Fatal(err)
	}
	if kept == nil {
		t.Fatal("no checkpoint retained")
	}

	// Sample corruption positions (every byte would be slow at 20k
	// requests of replay per position).
	stride := len(kept)/64 + 1
	for pos := 0; pos < len(kept); pos += stride {
		bad := append([]byte(nil), kept...)
		bad[pos] ^= 0x40
		src2, err := spec.NewSource()
		if err != nil {
			t.Fatal(err)
		}
		alg2, err := spec.BuildAlgorithm("r-bma", equivB, 3)
		if err != nil {
			t.Fatal(err)
		}
		var got RunResult
		ck2 := ckHooks{load: func() ([]byte, bool) { return bad, true }}
		if err := runSourceCheckpointed(context.Background(), &got, alg2, src2, equivAlpha, checkpoints, trace.NewChunk(512), ck2, nil); err != nil {
			t.Fatalf("corrupt byte %d: replay failed: %v", pos, err)
		}
		sameSeries(t, &ref, &got)
	}

	// Truncations likewise.
	for _, cut := range []int{0, 1, len(kept) / 2, len(kept) - 1} {
		src2, err := spec.NewSource()
		if err != nil {
			t.Fatal(err)
		}
		alg2, err := spec.BuildAlgorithm("r-bma", equivB, 3)
		if err != nil {
			t.Fatal(err)
		}
		var got RunResult
		ck2 := ckHooks{load: func() ([]byte, bool) { return kept[:cut], true }}
		if err := runSourceCheckpointed(context.Background(), &got, alg2, src2, equivAlpha, checkpoints, trace.NewChunk(512), ck2, nil); err != nil {
			t.Fatalf("truncation to %d: replay failed: %v", cut, err)
		}
		sameSeries(t, &ref, &got)
	}
}
