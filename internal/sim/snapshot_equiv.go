package sim

import (
	"bytes"
	"fmt"
	"io"
	"math"

	"obm/internal/core"
	"obm/internal/trace"
)

// The snapshot equivalence checker: the seed-reproducibility contract
// gives snapshot/restore a free verifier — replaying a stream's tail on a
// restored instance must produce exactly the cost stream an uninterrupted
// replay produces, bit for bit. CheckSnapshotEquivalence asserts that for
// one (algorithm, source, snapshot point) triple; snapshot_equiv_test.go
// sweeps it over the paper's trace families × algorithms × shard counts ×
// snapshot points, and the engine's tests reuse it over real TCP.

// CheckSnapshotEquivalence verifies the snapshot/restore equivalence
// contract:
//
//  1. replay src fully through a fresh instance, sampling cumulative costs
//     at every checkpoint (the reference);
//  2. replay the first snapAt requests through a second fresh instance and
//     snapshot it;
//  3. restore the snapshot into a third fresh instance, require its
//     counters and a re-snapshot to match bit-for-bit, then replay the
//     remaining requests on it;
//  4. require every checkpoint sample, the final counters and the final
//     matching size from phases 2+3 to equal the reference exactly
//     (Float64bits, not epsilon).
//
// build must return a freshly constructed, identically configured
// algorithm on every call (same parameters and seed — construction is
// deterministic, so instances are interchangeable). checkpoints are
// ascending request counts ≤ src.Len(); snapAt may fall anywhere in
// [0, src.Len()].
func CheckSnapshotEquivalence(build func() (core.Algorithm, error), src trace.Source, alpha float64, checkpoints []int, snapAt int) error {
	total := src.Len()
	if snapAt < 0 || snapAt > total {
		return fmt.Errorf("sim: snapshot point %d outside [0,%d]", snapAt, total)
	}
	if err := validateCheckpoints(checkpoints, total); err != nil {
		return err
	}
	cpIdx := make(map[int]int, len(checkpoints))
	for i, c := range checkpoints {
		cpIdx[c] = i
	}
	sampler := func(in *Incremental, routing, reconfig []float64) func(int) {
		return func(count int) {
			if i, ok := cpIdx[count]; ok {
				routing[i] = in.tot.Routing
				reconfig[i] = in.tot.Reconfig
			}
		}
	}

	// Phase 1: the uninterrupted reference replay.
	refIn, err := buildIncremental(build, alpha)
	if err != nil {
		return err
	}
	refR := make([]float64, len(checkpoints))
	refC := make([]float64, len(checkpoints))
	if err := replaySpan(refIn, src, 0, total, sampler(refIn, refR, refC)); err != nil {
		return err
	}

	// Phase 2: replay to the snapshot point and serialize.
	partIn, err := buildIncremental(build, alpha)
	if err != nil {
		return err
	}
	gotR := make([]float64, len(checkpoints))
	gotC := make([]float64, len(checkpoints))
	if err := replaySpan(partIn, src, 0, snapAt, sampler(partIn, gotR, gotC)); err != nil {
		return err
	}
	var blob bytes.Buffer
	if err := partIn.Snapshot(&blob); err != nil {
		return fmt.Errorf("sim: snapshotting %s at %d: %w", partIn.alg.Name(), snapAt, err)
	}

	// Phase 3: restore into a fresh instance and replay the tail.
	restIn, err := buildIncremental(build, alpha)
	if err != nil {
		return err
	}
	if err := restIn.Restore(bytes.NewReader(blob.Bytes())); err != nil {
		return fmt.Errorf("sim: restoring %s at %d: %w", restIn.alg.Name(), snapAt, err)
	}
	if err := sameCounters(partIn.Counters(), restIn.Counters()); err != nil {
		return fmt.Errorf("sim: counters after restore at %d: %w", snapAt, err)
	}
	var reblob bytes.Buffer
	if err := restIn.Snapshot(&reblob); err != nil {
		return fmt.Errorf("sim: re-snapshotting after restore at %d: %w", snapAt, err)
	}
	if !bytes.Equal(blob.Bytes(), reblob.Bytes()) {
		return fmt.Errorf("sim: re-snapshot after restore at %d is not byte-identical (%d vs %d bytes)",
			snapAt, blob.Len(), reblob.Len())
	}
	if err := replaySpan(restIn, src, snapAt, total, sampler(restIn, gotR, gotC)); err != nil {
		return err
	}

	// Phase 4: bit-exact comparison against the reference.
	for i, cp := range checkpoints {
		if math.Float64bits(gotR[i]) != math.Float64bits(refR[i]) ||
			math.Float64bits(gotC[i]) != math.Float64bits(refC[i]) {
			return fmt.Errorf("sim: %s on %s: snapshot at %d diverges at checkpoint %d: (%v, %v) != reference (%v, %v)",
				restIn.alg.Name(), src.Name(), snapAt, cp, gotR[i], gotC[i], refR[i], refC[i])
		}
	}
	if err := sameCounters(refIn.Counters(), restIn.Counters()); err != nil {
		return fmt.Errorf("sim: %s on %s: final counters after snapshot at %d: %w",
			restIn.alg.Name(), src.Name(), snapAt, err)
	}
	if ref, got := refIn.MatchingSize(), restIn.MatchingSize(); ref != got {
		return fmt.Errorf("sim: %s on %s: final matching size %d != reference %d after snapshot at %d",
			restIn.alg.Name(), src.Name(), got, ref, snapAt)
	}
	return nil
}

// buildIncremental constructs a fresh algorithm and wraps it in a stepper.
func buildIncremental(build func() (core.Algorithm, error), alpha float64) (*Incremental, error) {
	alg, err := build()
	if err != nil {
		return nil, err
	}
	return NewIncremental(alg, alpha), nil
}

// replaySpan feeds src's requests with global indices [from, to) into in,
// whose algorithm state must already correspond to the first `from`
// requests. The source is reset and its prefix drained without feeding —
// the chunked twin of seeking. onServed is called with the global request
// count after each fed request.
func replaySpan(in *Incremental, src trace.Source, from, to int, onServed func(count int)) error {
	src.Reset()
	chunk := trace.NewChunk(0)
	i := 0
	for i < to {
		n, err := src.Next(chunk)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		for _, req := range chunk.Reqs[:n] {
			if i >= to {
				break
			}
			if i >= from {
				in.Feed(req)
				if onServed != nil {
					onServed(i + 1)
				}
			}
			i++
		}
	}
	if i < to {
		return fmt.Errorf("sim: source %q ended at %d requests, wanted %d", src.Name(), i, to)
	}
	return nil
}

// sameCounters compares two counter snapshots bit-exactly.
func sameCounters(want, got Counters) error {
	if want.Served != got.Served ||
		math.Float64bits(want.Routing) != math.Float64bits(got.Routing) ||
		math.Float64bits(want.Reconfig) != math.Float64bits(got.Reconfig) ||
		want.Adds != got.Adds || want.Removals != got.Removals {
		return fmt.Errorf("counters %+v != %+v", got, want)
	}
	return nil
}
