package sim

import (
	"fmt"
	"sort"

	"obm/internal/core"
	"obm/internal/graph"
	"obm/internal/trace"
)

// Utilization summarizes how traffic loaded the network during a run:
// requests served by matching edges bypass the static fabric entirely; the
// rest load every static link on their shortest path. The paper's
// "bandwidth tax" argument (§1.1) is exactly that lower routing cost means
// less static-fabric load; this report makes the per-link picture explicit.
type Utilization struct {
	// MatchedFraction is the share of requests served on matching edges.
	MatchedFraction float64
	// StaticLinkLoads maps "u-v" static links (graph node ids, u < v) to
	// the number of requests that crossed them.
	StaticLinkLoads map[[2]int]float64
	// MaxLinkLoad and MeanLinkLoad summarize StaticLinkLoads over links
	// that carried any traffic.
	MaxLinkLoad  float64
	MeanLinkLoad float64
	// HottestLinks lists the top-k loaded links in descending order.
	HottestLinks [][2]int
}

// RunWithUtilization replays tr through alg like Run while additionally
// tracking per-link load on the static topology top (whose metric must be
// the one inside the algorithm's cost model).
func RunWithUtilization(alg core.Algorithm, tr *trace.Trace, alpha float64, top *graph.Topology) (RunResult, Utilization, error) {
	if err := tr.Validate(); err != nil {
		return RunResult{}, Utilization{}, err
	}
	if top.NumRacks() < tr.NumRacks {
		return RunResult{}, Utilization{}, fmt.Errorf("sim: topology has %d racks, trace needs %d",
			top.NumRacks(), tr.NumRacks)
	}
	oracle := top.Paths()
	loads := make(map[[2]int]float64)
	matched := 0
	res := RunResult{Series: Series{Label: alg.Name()}}
	var routing, reconfig float64
	for _, req := range tr.Reqs {
		u, v := int(req.Src), int(req.Dst)
		wasMatched := alg.Matched(u, v)
		st := alg.Serve(u, v)
		routing += st.RoutingCost
		reconfig += st.ReconfigCost(alpha)
		res.Adds += st.Adds
		res.Removals += st.Removals
		if wasMatched {
			matched++
			continue
		}
		oracle.VisitPathEdges(u, v, func(a, b int) {
			if a > b {
				a, b = b, a
			}
			loads[[2]int{a, b}]++
		})
	}
	res.Series.X = []int{tr.Len()}
	res.Series.Routing = []float64{routing}
	res.Series.Reconfig = []float64{reconfig}
	res.FinalMatchingSize = alg.MatchingSize()

	var util Utilization
	util.StaticLinkLoads = loads
	if tr.Len() > 0 {
		util.MatchedFraction = float64(matched) / float64(tr.Len())
	}
	type linkLoad struct {
		link [2]int
		load float64
	}
	var ll []linkLoad
	var sum float64
	for link, load := range loads {
		ll = append(ll, linkLoad{link, load})
		sum += load
		if load > util.MaxLinkLoad {
			util.MaxLinkLoad = load
		}
	}
	if len(ll) > 0 {
		util.MeanLinkLoad = sum / float64(len(ll))
	}
	sort.Slice(ll, func(i, j int) bool {
		if ll[i].load != ll[j].load {
			return ll[i].load > ll[j].load
		}
		return ll[i].link[0] < ll[j].link[0] ||
			(ll[i].link[0] == ll[j].link[0] && ll[i].link[1] < ll[j].link[1])
	})
	topK := 10
	if len(ll) < topK {
		topK = len(ll)
	}
	for i := 0; i < topK; i++ {
		util.HottestLinks = append(util.HottestLinks, ll[i].link)
	}
	return res, util, nil
}
