// Package sim is the trace-driven simulation harness: it replays request
// traces through online algorithms, records checkpointed cumulative cost
// curves and wall-clock execution time (the paper's Figures 1–4 plot
// exactly these two quantities), averages repetitions, and renders results
// as CSV and quick ASCII charts.
//
// The experiment runners compile the trace once (trace.Compiled: every
// request pre-resolved to its dense PairID, endpoints and static distance)
// and replay the compiled form through every algorithm, b value and
// repetition, reusing one scratch result buffer per worker so repeated
// replays allocate almost nothing. Replaying a compiled trace is
// cost-identical to replaying the raw trace: algorithms that implement
// core.CompiledServer take the dense fast path, everything else falls back
// to Serve(u, v).
//
// Replay also runs streamed: RunSource consumes a trace.Source in
// fixed-size chunks, so arbitrarily long workloads replay under O(chunk)
// memory with cost curves bit-identical to the materialized path. On top
// sits the scenario-grid scheduler (ScenarioSpec, RunGrid): named,
// JSON-encodable scenario specs expanded into a (scenario × algorithm ×
// b × rep) job grid, executed by a worker pool where every job owns its
// streaming source, with repetitions aggregated into stats.Summary rows
// and CSV/JSON output.
//
// Grid execution is durable-by-hook: PlanGrid exposes the deterministic
// job expansion, and GridOptions' Lookup/Persist/Shard hooks let a run
// store (internal/report) skip completed jobs, log finished ones, and
// partition one grid across processes — without the scheduler knowing
// anything about persistence formats.
package sim

import (
	"fmt"
	"time"

	"obm/internal/core"
	"obm/internal/trace"
)

// Series is one cumulative-cost curve: at X[i] requests served, the
// algorithm had paid Routing[i] routing cost and Reconfig[i]
// reconfiguration cost.
type Series struct {
	Label    string
	X        []int
	Routing  []float64
	Reconfig []float64
}

// Total returns Routing[i] + Reconfig[i].
func (s *Series) Total(i int) float64 { return s.Routing[i] + s.Reconfig[i] }

// RunResult is the outcome of replaying one trace through one algorithm.
type RunResult struct {
	Series            Series
	Elapsed           time.Duration // wall-clock time of the decision loop
	Adds, Removals    int
	FinalMatchingSize int
}

// reset clears the result for reuse, truncating (not freeing) the series.
func (r *RunResult) reset(label string) {
	r.Series.Label = label
	r.Series.X = r.Series.X[:0]
	r.Series.Routing = r.Series.Routing[:0]
	r.Series.Reconfig = r.Series.Reconfig[:0]
	r.Elapsed = 0
	r.Adds, r.Removals = 0, 0
	r.FinalMatchingSize = 0
}

// Checkpoints returns num evenly spaced checkpoints ending at total.
func Checkpoints(total, num int) []int {
	if num < 1 || total < 1 {
		panic("sim: Checkpoints requires positive total and num")
	}
	if num > total {
		num = total
	}
	out := make([]int, num)
	for i := 1; i <= num; i++ {
		out[i-1] = total * i / num
	}
	return out
}

func validateCheckpoints(checkpoints []int, traceLen int) error {
	for i := 1; i < len(checkpoints); i++ {
		if checkpoints[i] <= checkpoints[i-1] {
			return fmt.Errorf("sim: checkpoints must be ascending")
		}
	}
	if len(checkpoints) > 0 && checkpoints[len(checkpoints)-1] > traceLen {
		return fmt.Errorf("sim: checkpoint %d beyond trace length %d",
			checkpoints[len(checkpoints)-1], traceLen)
	}
	return nil
}

// costMeter samples an Incremental's cumulative totals at checkpoints:
// the replay loops feed requests through the embedded stepper (the same
// accumulation path the live engine runs) and the meter appends series
// points. nextCP is the upcoming checkpoint (or -1), kept denormalized so
// the replay loops pay one integer compare per request instead of a
// method call.
type costMeter struct {
	res         *RunResult
	inc         Incremental
	checkpoints []int
	ci          int
	nextCP      int
}

func newCostMeter(res *RunResult, checkpoints []int, alg core.Algorithm, alpha float64) costMeter {
	m := costMeter{res: res, checkpoints: checkpoints, nextCP: -1}
	m.inc.Init(alg, alpha)
	if len(checkpoints) > 0 {
		m.nextCP = checkpoints[0]
	}
	return m
}

// checkpoint samples the running totals at request count i+1.
func (c *costMeter) checkpoint(i int) {
	for c.ci < len(c.checkpoints) && i+1 == c.checkpoints[c.ci] {
		c.res.Series.X = append(c.res.Series.X, i+1)
		c.res.Series.Routing = append(c.res.Series.Routing, c.inc.tot.Routing)
		c.res.Series.Reconfig = append(c.res.Series.Reconfig, c.inc.tot.Reconfig)
		c.ci++
	}
	c.nextCP = -1
	if c.ci < len(c.checkpoints) {
		c.nextCP = c.checkpoints[c.ci]
	}
}

// finish folds the step totals back into the result.
func (c *costMeter) finish() {
	c.res.Adds = c.inc.tot.Adds
	c.res.Removals = c.inc.tot.Removals
}

// Run replays tr through alg, recording cumulative costs at the given
// checkpoints (request counts, ascending). Elapsed time covers only the
// Serve loop, mirroring the paper's sequential execution-time measurement.
func Run(alg core.Algorithm, tr *trace.Trace, alpha float64, checkpoints []int) (RunResult, error) {
	var res RunResult
	if err := runInto(&res, alg, tr, alpha, checkpoints); err != nil {
		return RunResult{}, err
	}
	return res, nil
}

func runInto(res *RunResult, alg core.Algorithm, tr *trace.Trace, alpha float64, checkpoints []int) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	if err := validateCheckpoints(checkpoints, tr.Len()); err != nil {
		return err
	}
	res.reset(alg.Name())
	m := newCostMeter(res, checkpoints, alg, alpha)
	start := time.Now()
	for i, req := range tr.Reqs {
		m.inc.FeedRaw(int(req.Src), int(req.Dst))
		if i+1 == m.nextCP {
			m.checkpoint(i)
		}
	}
	res.Elapsed = time.Since(start)
	m.finish()
	res.FinalMatchingSize = alg.MatchingSize()
	return nil
}

// RunCompiled is Run over a pre-compiled trace: algorithms implementing
// core.CompiledServer replay without per-request canonicalization or metric
// lookups. Cost curves are identical to Run on the source trace.
func RunCompiled(alg core.Algorithm, ct *trace.Compiled, alpha float64, checkpoints []int) (RunResult, error) {
	var res RunResult
	if err := runCompiledInto(&res, alg, ct, alpha, checkpoints); err != nil {
		return RunResult{}, err
	}
	return res, nil
}

// runCompiledInto is RunCompiled writing into a reusable result buffer: the
// series slices are truncated and re-appended, so a result recycled across
// repetitions stops allocating once warm.
func runCompiledInto(res *RunResult, alg core.Algorithm, ct *trace.Compiled, alpha float64, checkpoints []int) error {
	if err := validateCheckpoints(checkpoints, ct.Len()); err != nil {
		return err
	}
	res.reset(alg.Name())
	m := newCostMeter(res, checkpoints, alg, alpha)
	start := time.Now()
	for i, req := range ct.Reqs {
		m.inc.Feed(req)
		if i+1 == m.nextCP {
			m.checkpoint(i)
		}
	}
	res.Elapsed = time.Since(start)
	m.finish()
	res.FinalMatchingSize = alg.MatchingSize()
	return nil
}

// Averaged is the mean of several runs of the same configuration with
// different seeds (the paper averages 5 repetitions).
type Averaged struct {
	Label    string
	X        []int
	Routing  []float64 // mean cumulative routing cost
	Reconfig []float64
	Elapsed  time.Duration // mean wall-clock time
	Reps     int
}

// AlgFactory builds a fresh algorithm instance for repetition rep.
// Deterministic algorithms can ignore rep.
type AlgFactory func(rep uint64) (core.Algorithm, error)

// scratch carries the per-worker reusable buffers of the experiment
// runners: one run result recycled across every repetition the worker
// executes.
type scratch struct {
	res RunResult
}

// runAveraged accumulates reps runs produced by replay into a mean curve.
func runAveraged(f AlgFactory, reps int, sc *scratch,
	replay func(res *RunResult, alg core.Algorithm) error) (Averaged, error) {
	if reps < 1 {
		return Averaged{}, fmt.Errorf("sim: reps must be >= 1")
	}
	if sc == nil {
		sc = &scratch{}
	}
	var avg Averaged
	avg.Reps = reps
	var totalElapsed time.Duration
	for rep := 0; rep < reps; rep++ {
		alg, err := f(uint64(rep))
		if err != nil {
			return Averaged{}, err
		}
		if err := replay(&sc.res, alg); err != nil {
			return Averaged{}, err
		}
		res := &sc.res
		if rep == 0 {
			avg.Label = res.Series.Label
			avg.X = append([]int(nil), res.Series.X...)
			avg.Routing = make([]float64, len(res.Series.Routing))
			avg.Reconfig = make([]float64, len(res.Series.Reconfig))
		}
		for i := range res.Series.Routing {
			avg.Routing[i] += res.Series.Routing[i]
			avg.Reconfig[i] += res.Series.Reconfig[i]
		}
		totalElapsed += res.Elapsed
	}
	for i := range avg.Routing {
		avg.Routing[i] /= float64(reps)
		avg.Reconfig[i] /= float64(reps)
	}
	avg.Elapsed = totalElapsed / time.Duration(reps)
	return avg, nil
}

// RunAveraged replays tr through reps independent instances and averages
// the curves.
func RunAveraged(f AlgFactory, tr *trace.Trace, alpha float64, checkpoints []int, reps int) (Averaged, error) {
	return runAveraged(f, reps, nil, func(res *RunResult, alg core.Algorithm) error {
		return runInto(res, alg, tr, alpha, checkpoints)
	})
}

// RunAveragedCompiled replays a compiled trace through reps independent
// instances and averages the curves.
func RunAveragedCompiled(f AlgFactory, ct *trace.Compiled, alpha float64, checkpoints []int, reps int) (Averaged, error) {
	return runAveragedCompiled(f, ct, alpha, checkpoints, reps, nil)
}

// runAveragedCompiled is RunAveragedCompiled with a per-worker scratch: the
// experiment runners pass one per worker so repetitions reuse the run
// buffer.
func runAveragedCompiled(f AlgFactory, ct *trace.Compiled, alpha float64, checkpoints []int, reps int, sc *scratch) (Averaged, error) {
	return runAveraged(f, reps, sc, func(res *RunResult, alg core.Algorithm) error {
		return runCompiledInto(res, alg, ct, alpha, checkpoints)
	})
}
