// Package sim is the trace-driven simulation harness: it replays request
// traces through online algorithms, records checkpointed cumulative cost
// curves and wall-clock execution time (the paper's Figures 1–4 plot
// exactly these two quantities), averages repetitions, and renders results
// as CSV and quick ASCII charts.
package sim

import (
	"fmt"
	"time"

	"obm/internal/core"
	"obm/internal/trace"
)

// Series is one cumulative-cost curve: at X[i] requests served, the
// algorithm had paid Routing[i] routing cost and Reconfig[i]
// reconfiguration cost.
type Series struct {
	Label    string
	X        []int
	Routing  []float64
	Reconfig []float64
}

// Total returns Routing[i] + Reconfig[i].
func (s *Series) Total(i int) float64 { return s.Routing[i] + s.Reconfig[i] }

// RunResult is the outcome of replaying one trace through one algorithm.
type RunResult struct {
	Series            Series
	Elapsed           time.Duration // wall-clock time of the decision loop
	Adds, Removals    int
	FinalMatchingSize int
}

// Checkpoints returns num evenly spaced checkpoints ending at total.
func Checkpoints(total, num int) []int {
	if num < 1 || total < 1 {
		panic("sim: Checkpoints requires positive total and num")
	}
	if num > total {
		num = total
	}
	out := make([]int, num)
	for i := 1; i <= num; i++ {
		out[i-1] = total * i / num
	}
	return out
}

// Run replays tr through alg, recording cumulative costs at the given
// checkpoints (request counts, ascending). Elapsed time covers only the
// Serve loop, mirroring the paper's sequential execution-time measurement.
func Run(alg core.Algorithm, tr *trace.Trace, alpha float64, checkpoints []int) (RunResult, error) {
	if err := tr.Validate(); err != nil {
		return RunResult{}, err
	}
	for i := 1; i < len(checkpoints); i++ {
		if checkpoints[i] <= checkpoints[i-1] {
			return RunResult{}, fmt.Errorf("sim: checkpoints must be ascending")
		}
	}
	if len(checkpoints) > 0 && checkpoints[len(checkpoints)-1] > tr.Len() {
		return RunResult{}, fmt.Errorf("sim: checkpoint %d beyond trace length %d",
			checkpoints[len(checkpoints)-1], tr.Len())
	}
	res := RunResult{Series: Series{Label: alg.Name()}}
	var routing, reconfig float64
	ci := 0
	start := time.Now()
	for i, req := range tr.Reqs {
		st := alg.Serve(int(req.Src), int(req.Dst))
		routing += st.RoutingCost
		reconfig += st.ReconfigCost(alpha)
		res.Adds += st.Adds
		res.Removals += st.Removals
		for ci < len(checkpoints) && i+1 == checkpoints[ci] {
			res.Series.X = append(res.Series.X, i+1)
			res.Series.Routing = append(res.Series.Routing, routing)
			res.Series.Reconfig = append(res.Series.Reconfig, reconfig)
			ci++
		}
	}
	res.Elapsed = time.Since(start)
	res.FinalMatchingSize = alg.MatchingSize()
	return res, nil
}

// Averaged is the mean of several runs of the same configuration with
// different seeds (the paper averages 5 repetitions).
type Averaged struct {
	Label    string
	X        []int
	Routing  []float64 // mean cumulative routing cost
	Reconfig []float64
	Elapsed  time.Duration // mean wall-clock time
	Reps     int
}

// AlgFactory builds a fresh algorithm instance for repetition rep.
// Deterministic algorithms can ignore rep.
type AlgFactory func(rep uint64) (core.Algorithm, error)

// RunAveraged replays tr through reps independent instances and averages
// the curves.
func RunAveraged(f AlgFactory, tr *trace.Trace, alpha float64, checkpoints []int, reps int) (Averaged, error) {
	if reps < 1 {
		return Averaged{}, fmt.Errorf("sim: reps must be >= 1")
	}
	var avg Averaged
	avg.Reps = reps
	var totalElapsed time.Duration
	for rep := 0; rep < reps; rep++ {
		alg, err := f(uint64(rep))
		if err != nil {
			return Averaged{}, err
		}
		res, err := Run(alg, tr, alpha, checkpoints)
		if err != nil {
			return Averaged{}, err
		}
		if rep == 0 {
			avg.Label = res.Series.Label
			avg.X = res.Series.X
			avg.Routing = make([]float64, len(res.Series.Routing))
			avg.Reconfig = make([]float64, len(res.Series.Reconfig))
		}
		for i := range res.Series.Routing {
			avg.Routing[i] += res.Series.Routing[i]
			avg.Reconfig[i] += res.Series.Reconfig[i]
		}
		totalElapsed += res.Elapsed
	}
	for i := range avg.Routing {
		avg.Routing[i] /= float64(reps)
		avg.Reconfig[i] /= float64(reps)
	}
	avg.Elapsed = totalElapsed / time.Duration(reps)
	return avg, nil
}
