package sim

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"obm/internal/core"
	"obm/internal/stats"
	"obm/internal/trace"
)

// The scenario-grid scheduler: a list of ScenarioSpecs is expanded into a
// (scenario × algorithm × b × rep) job grid and executed by a worker pool.
// Every job builds its own streaming source, so memory is O(workers ×
// chunk) regardless of trace lengths, and jobs never share mutable state.
// Repetitions of one (scenario, algorithm, b) cell are aggregated into a
// stats.Summary row.
//
// The grid supports durable execution through three orthogonal hooks, all
// built on the fact that a job's outcome is a pure function of its
// identity (the spec seed and the rep-derived algorithm seed):
//
//   - Lookup short-circuits jobs whose outcome is already known (resume);
//   - Persist records each finished job (a run store appends it to a log);
//   - Shard/Shards statically partitions the job grid across processes.
//
// internal/report combines them into a crash-safe, shardable run store.

// GridJob identifies one cell-repetition of the grid. Job identity is
// stable across runs: it depends only on the specs, never on scheduling,
// worker count or sharding — which is what makes outcomes persistable and
// grids resumable.
type GridJob struct {
	Scenario string
	Alg      string
	B        int
	Rep      int
}

func (j GridJob) String() string {
	return fmt.Sprintf("%s/%s(b=%d)/rep=%d", j.Scenario, j.Alg, j.B, j.Rep)
}

// JobOutcome is the persistable result of one grid job: the final
// cumulative costs, the decision-loop wall time, and (when
// GridOptions.CurvePoints > 0) the checkpointed cost curve. Routing and
// Reconfig are deterministic given the job identity; ElapsedMS is not.
type JobOutcome struct {
	Routing   float64 `json:"routing"`
	Reconfig  float64 `json:"reconfig"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// Checkpointed curve, present when the grid ran with CurvePoints > 0:
	// after X[i] requests the job had paid RoutingCurve[i] routing and
	// ReconfigCurve[i] reconfiguration cost.
	X             []int     `json:"x,omitempty"`
	RoutingCurve  []float64 `json:"routing_curve,omitempty"`
	ReconfigCurve []float64 `json:"reconfig_curve,omitempty"`
}

// GridOptions tunes the grid scheduler.
type GridOptions struct {
	// Workers is the pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// ChunkSize is the streaming chunk capacity per worker
	// (trace.DefaultChunkSize if <= 0).
	ChunkSize int
	// CurvePoints, when > 0, records that many evenly spaced cost-curve
	// checkpoints in every JobOutcome (0 keeps only the final costs).
	CurvePoints int
	// Parallel, when > 1, replays each job with up to that many worker
	// goroutines when the job's algorithm is sharded (scenario Shards > 1);
	// single-plane jobs always replay sequentially. Outcomes are
	// byte-identical for every Parallel value — like Workers, it is a
	// throughput knob, never part of job identity, so persisted outcomes,
	// content-addressed caches and fleet shards stay valid across it.
	Parallel int
	// Shard/Shards statically partition the job grid: only jobs whose
	// plan index i satisfies i % Shards == Shard are executed, so
	// independent processes (or machines) running distinct shards of the
	// same spec list own disjoint job slices. Shards <= 1 disables
	// sharding. Cells with no jobs in this shard are dropped from the
	// result; a merged full-grid view is assembled by internal/report.
	Shard, Shards int
	// Lookup, when non-nil, is consulted once per job before execution;
	// returning (outcome, true) marks the job complete without running it.
	// This is the resume path: a run store replays its log through Lookup
	// and only the missing jobs execute.
	Lookup func(GridJob) (JobOutcome, bool)
	// Persist, when non-nil, is called exactly once per executed job,
	// serialized, after the job finishes successfully (jobs resolved via
	// Lookup are not re-persisted). A Persist error aborts the grid like a
	// job failure.
	Persist func(GridJob, JobOutcome) error
	// Progress, when non-nil, is called after every executed job with the
	// completion count (jobs resolved via Lookup are not reported).
	// Callbacks are serialized; err is the job's error (nil on success).
	Progress func(done, total int, job GridJob, err error)
	// CheckpointEvery, when > 0 with SaveCheckpoint set, snapshots each
	// in-flight job's algorithm state plus partial curve roughly every
	// that many requests (at chunk boundaries, sequential replay only;
	// the parallel path replays whole jobs or not at all). A killed run
	// resumed through LoadCheckpoint then restarts *inside* a job rather
	// than at its start. Checkpoints are an optimization, never part of
	// job identity: a missing, stale or corrupt checkpoint just means a
	// fresh replay, and determinism makes the outcome identical.
	CheckpointEvery int
	// SaveCheckpoint persists one job's mid-flight checkpoint blob,
	// replacing any previous one. Errors abort the grid like a Persist
	// failure (a broken checkpoint store is a broken store).
	SaveCheckpoint func(GridJob, []byte) error
	// LoadCheckpoint returns a job's previously saved checkpoint blob, if
	// any, consulted once before the job replays from scratch.
	LoadCheckpoint func(GridJob) ([]byte, bool)
	// DropCheckpoint discards a job's checkpoint once the job completes.
	DropCheckpoint func(GridJob)
	// Metrics, when non-nil, receives replay observability (request/chunk
	// throughput, executed jobs, fold and checkpoint timings). Purely
	// observational: instrumented runs produce bit-identical outcomes.
	Metrics *Metrics
}

// GridRow is one aggregated cell: the final costs of one (scenario,
// algorithm, b) combination summarized over its repetitions.
type GridRow struct {
	Scenario string
	Family   string
	Alg      string
	B        int
	Requests int
	Racks    int
	// Final cumulative costs across repetitions.
	Routing  stats.Summary
	Reconfig stats.Summary
	Total    stats.Summary
	// ElapsedMS summarizes per-repetition decision-loop wall time.
	ElapsedMS stats.Summary
}

// GridResult collects every aggregated row of a grid run, in deterministic
// (spec, algorithm, b) order.
type GridResult struct {
	Rows []GridRow
}

// GridPlan is the deterministic expansion of a spec list into its job grid:
// job identities in execution order, the (scenario, algorithm, b) cells
// they aggregate into, and the job→cell mapping. The plan is a pure
// function of the specs — two processes planning the same specs see the
// same job order, which is what sharding and run stores rely on.
type GridPlan struct {
	Jobs []GridJob
	// Cells carries each cell's identity fields (summaries are zero).
	Cells []GridRow
	// CellOf[i] is the index in Cells that Jobs[i] aggregates into.
	CellOf []int
}

// runtimeJob is a planned job plus everything needed to execute it.
type runtimeJob struct {
	GridJob
	spec  ScenarioSpec
	model core.CostModel
	alg   AlgSpec
	cell  int
}

// expandGrid validates the specs and expands them into the runtime job
// list and cell table, in deterministic (spec, algorithm, b, rep) order.
// The cost model (an O(racks²) metric construction) is built once per
// scenario and shared by its jobs.
func expandGrid(specs []ScenarioSpec) ([]runtimeJob, []GridRow, error) {
	if len(specs) == 0 {
		return nil, nil, fmt.Errorf("sim: grid with no scenarios")
	}
	seen := make(map[string]bool, len(specs))
	for _, spec := range specs {
		if err := spec.Validate(); err != nil {
			return nil, nil, err
		}
		if seen[spec.Name] {
			return nil, nil, fmt.Errorf("sim: duplicate scenario name %q", spec.Name)
		}
		seen[spec.Name] = true
	}
	var jobs []runtimeJob
	var cells []GridRow
	for _, spec := range specs {
		spec := spec.withDefaults()
		model := spec.Model()
		for _, algName := range spec.Algs {
			as, err := spec.algSpec(algName, model)
			if err != nil {
				return nil, nil, err
			}
			bs := spec.Bs
			if as.FixedB >= 0 {
				bs = []int{as.FixedB}
			}
			for _, b := range bs {
				cells = append(cells, GridRow{
					Scenario: spec.Name,
					Family:   spec.Family,
					Alg:      algName,
					B:        b,
					Requests: spec.Requests,
					Racks:    spec.Racks,
				})
				for rep := 0; rep < spec.Reps; rep++ {
					jobs = append(jobs, runtimeJob{
						GridJob: GridJob{Scenario: spec.Name, Alg: algName, B: b, Rep: rep},
						spec:    spec,
						model:   model,
						alg:     as,
						cell:    len(cells) - 1,
					})
				}
			}
		}
	}
	return jobs, cells, nil
}

// newPlan strips the runtime parts off an expanded grid.
func newPlan(jobs []runtimeJob, cells []GridRow) *GridPlan {
	p := &GridPlan{
		Jobs:   make([]GridJob, len(jobs)),
		Cells:  cells,
		CellOf: make([]int, len(jobs)),
	}
	for i := range jobs {
		p.Jobs[i] = jobs[i].GridJob
		p.CellOf[i] = jobs[i].cell
	}
	return p
}

// PlanGrid expands specs into their job grid without executing anything.
// internal/report plans the same grid a run store was created from to know
// which jobs a log is missing and to aggregate records in canonical order.
func PlanGrid(specs []ScenarioSpec) (*GridPlan, error) {
	jobs, cells, err := expandGrid(specs)
	if err != nil {
		return nil, err
	}
	return newPlan(jobs, cells), nil
}

// ShardSlice returns the plan jobs owned by shard (index, count) — those
// whose plan index i satisfies i % count == index — in plan order. A
// count <= 1 returns the full job list. It is the partition the
// GridOptions.Shard/Shards hooks execute and the unit the experiment
// service leases to fleet workers.
func (p *GridPlan) ShardSlice(index, count int) []GridJob {
	if count <= 1 {
		return append([]GridJob(nil), p.Jobs...)
	}
	var jobs []GridJob
	for i := index; i < len(p.Jobs); i += count {
		jobs = append(jobs, p.Jobs[i])
	}
	return jobs
}

// Aggregate folds job outcomes into the plan's cells: repetition values are
// summarized in plan order, so the result is independent of where the
// outcomes came from (live execution, a resumed log, merged shard logs).
// Jobs without an outcome are skipped; cells with no outcomes are dropped.
func (p *GridPlan) Aggregate(outcomes map[GridJob]JobOutcome) *GridResult {
	type acc struct {
		routing, reconfig, total, elapsed []float64
	}
	accs := make([]acc, len(p.Cells))
	for i, j := range p.Jobs {
		o, ok := outcomes[j]
		if !ok {
			continue
		}
		a := &accs[p.CellOf[i]]
		a.routing = append(a.routing, o.Routing)
		a.reconfig = append(a.reconfig, o.Reconfig)
		a.total = append(a.total, o.Routing+o.Reconfig)
		a.elapsed = append(a.elapsed, o.ElapsedMS)
	}
	out := &GridResult{Rows: make([]GridRow, 0, len(p.Cells))}
	for ci, a := range accs {
		if len(a.routing) == 0 {
			continue
		}
		row := p.Cells[ci]
		row.Routing = stats.Summarize(a.routing)
		row.Reconfig = stats.Summarize(a.reconfig)
		row.Total = stats.Summarize(a.total)
		row.ElapsedMS = stats.Summarize(a.elapsed)
		out.Rows = append(out.Rows, row)
	}
	return out
}

// RunGrid validates the specs, expands the job grid and executes it on the
// worker pool, honoring the durability hooks in opt (Lookup-resolved jobs
// are skipped, executed jobs are handed to Persist, and sharding restricts
// execution to this process's slice). All job errors are collected and
// joined; after the first failure no new jobs are started (in-flight jobs
// finish). On error the partial result is discarded — though every job
// Persist saw is already durable.
func RunGrid(specs []ScenarioSpec, opt GridOptions) (*GridResult, error) {
	return RunGridContext(context.Background(), specs, opt)
}

// RunGridContext is RunGrid under a context. Cancelling ctx stops the
// grid promptly: no new jobs are fed to the pool, and in-flight jobs
// abort at their next chunk boundary instead of replaying to the end.
// Jobs that completed (and were handed to Persist) before the
// cancellation stay valid — a store-backed run is left
// partial-but-persisted, ready to be resumed. On cancellation the
// returned result aggregates exactly those completed jobs and err wraps
// ctx.Err(); job errors caused by the cancellation itself are not
// reported as failures.
func RunGridContext(ctx context.Context, specs []ScenarioSpec, opt GridOptions) (*GridResult, error) {
	jobs, cells, err := expandGrid(specs)
	if err != nil {
		return nil, err
	}
	if opt.Shards > 1 && (opt.Shard < 0 || opt.Shard >= opt.Shards) {
		return nil, fmt.Errorf("sim: shard %d/%d out of range", opt.Shard, opt.Shards)
	}

	// Partition (sharding) and short-circuit (resume) before execution.
	outcomes := make(map[GridJob]JobOutcome, len(jobs))
	var run []runtimeJob
	for i := range jobs {
		if opt.Shards > 1 && i%opt.Shards != opt.Shard {
			continue
		}
		if opt.Lookup != nil {
			if o, ok := opt.Lookup(jobs[i].GridJob); ok {
				outcomes[jobs[i].GridJob] = o
				continue
			}
		}
		run = append(run, jobs[i])
	}

	results := make([]JobOutcome, len(run))
	completed := make([]bool, len(run))
	var (
		mu   sync.Mutex // serializes Persist and Progress callbacks
		done int
	)
	err = runPool(ctx, len(run), opt.Workers, func() func(int) error {
		// Per-worker scratch: one chunk and one result buffer reused
		// across every job — the bounded-memory contract.
		chunk := trace.NewChunk(opt.ChunkSize)
		var res RunResult
		return func(ji int) error {
			j := &run[ji]
			err := runGridJob(ctx, j.spec, j.model, j.alg, j.GridJob, &opt, chunk, &res)
			if err != nil {
				err = fmt.Errorf("sim: grid %s: %w", j.GridJob, err)
			} else {
				results[ji] = jobOutcome(&res, opt.CurvePoints)
			}
			mu.Lock()
			done++
			if err == nil && opt.Persist != nil {
				if perr := opt.Persist(j.GridJob, results[ji]); perr != nil {
					err = fmt.Errorf("sim: grid %s: persisting: %w", j.GridJob, perr)
				}
			}
			if err == nil {
				completed[ji] = true
				opt.Metrics.jobDone()
			}
			if opt.Progress != nil {
				opt.Progress(done, len(run), j.GridJob, err)
			}
			mu.Unlock()
			return err
		}
	})
	if cerr := ctx.Err(); cerr != nil {
		// A cancelled grid is not a failed grid: aggregate what finished
		// (all of it already persisted) and report the cancellation. Real
		// job failures that raced with the cancellation are subsumed — the
		// caller asked the grid to stop, and a resume will resurface them.
		for i := range run {
			if completed[i] {
				outcomes[run[i].GridJob] = results[i]
			}
		}
		return newPlan(jobs, cells).Aggregate(outcomes), fmt.Errorf("sim: grid interrupted: %w", cerr)
	}
	if err != nil {
		return nil, err
	}
	for i := range run {
		outcomes[run[i].GridJob] = results[i]
	}
	return newPlan(jobs, cells).Aggregate(outcomes), nil
}

// jobOutcome snapshots a run result into a persistable outcome, copying
// the curve out of the worker's reused buffers.
func jobOutcome(res *RunResult, curvePoints int) JobOutcome {
	o := JobOutcome{ElapsedMS: float64(res.Elapsed) / float64(time.Millisecond)}
	if n := len(res.Series.X); n > 0 {
		o.Routing = res.Series.Routing[n-1]
		o.Reconfig = res.Series.Reconfig[n-1]
	}
	if curvePoints > 0 {
		o.X = append([]int(nil), res.Series.X...)
		o.RoutingCurve = append([]float64(nil), res.Series.Routing...)
		o.ReconfigCurve = append([]float64(nil), res.Series.Reconfig...)
	}
	return o
}

// gridCheckpoints picks a job's checkpoint list: the full curve when the
// grid records curves, otherwise the single end-of-trace checkpoint.
func gridCheckpoints(total, curvePoints int) []int {
	if total == 0 {
		return nil
	}
	if curvePoints > 0 {
		return Checkpoints(total, curvePoints)
	}
	return []int{total}
}

// runGridJob replays one grid job: it builds the job's own streaming
// source (workers never share generator state) against the scenario's
// pre-built model and records cumulative costs at the job's checkpoints.
// Multi-plane jobs take the parallel replay path when the grid runs with
// Parallel > 1; the outcome is identical either way. Mid-job checkpointing
// applies only to the sequential path — the parallel path replays whole
// jobs or not at all, but still drops any stale checkpoint it completes
// past.
func runGridJob(ctx context.Context, spec ScenarioSpec, model core.CostModel, as AlgSpec, j GridJob, opt *GridOptions, chunk *trace.CompiledChunk, res *RunResult) error {
	st, err := spec.NewStream()
	if err != nil {
		return err
	}
	src, err := trace.NewSource(st, model.Metric.Dist)
	if err != nil {
		return err
	}
	alg, err := as.New(j.B, uint64(j.Rep))
	if err != nil {
		return err
	}
	checkpoints := gridCheckpoints(src.Len(), opt.CurvePoints)
	if opt.Parallel > 1 {
		if sh, ok := alg.(*core.Sharded); ok && sh.Shards() > 1 {
			if err := runSourceParallelInto(ctx, res, sh, src, spec.Alpha, checkpoints, chunk, opt.Parallel, opt.Metrics); err != nil {
				return err
			}
			if opt.DropCheckpoint != nil {
				opt.DropCheckpoint(j)
			}
			return nil
		}
	}
	ck := ckHooks{}
	if opt.CheckpointEvery > 0 && opt.SaveCheckpoint != nil {
		ck.every = opt.CheckpointEvery
		ck.save = func(blob []byte) error { return opt.SaveCheckpoint(j, blob) }
	}
	if opt.LoadCheckpoint != nil {
		ck.load = func() ([]byte, bool) { return opt.LoadCheckpoint(j) }
	}
	if opt.DropCheckpoint != nil {
		ck.drop = func() { opt.DropCheckpoint(j) }
	}
	if ck.enabled() {
		return runSourceCheckpointed(ctx, res, alg, src, spec.Alpha, checkpoints, chunk, ck, opt.Metrics)
	}
	return runSourceInto(ctx, res, alg, src, spec.Alpha, checkpoints, chunk, opt.Metrics)
}

// WriteCSV emits the grid result as tidy CSV, one row per aggregated cell.
func (g *GridResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "scenario,family,alg,b,racks,requests,reps,"+
		"routing_mean,routing_std,reconfig_mean,reconfig_std,total_mean,total_std,elapsed_ms_mean"); err != nil {
		return err
	}
	for _, r := range g.Rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%d,%d,%d,%d,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%.3f\n",
			r.Scenario, r.Family, r.Alg, r.B, r.Racks, r.Requests, r.Routing.N,
			r.Routing.Mean, r.Routing.Std, r.Reconfig.Mean, r.Reconfig.Std,
			r.Total.Mean, r.Total.Std, r.ElapsedMS.Mean); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits the grid result as JSON.
func (g *GridResult) WriteJSON(w io.Writer) error {
	type jsonRow struct {
		Scenario  string        `json:"scenario"`
		Family    string        `json:"family"`
		Alg       string        `json:"alg"`
		B         int           `json:"b"`
		Racks     int           `json:"racks"`
		Requests  int           `json:"requests"`
		Routing   stats.Summary `json:"routing_cost"`
		Reconfig  stats.Summary `json:"reconfig_cost"`
		Total     stats.Summary `json:"total_cost"`
		ElapsedMS stats.Summary `json:"elapsed_ms"`
	}
	out := struct {
		Rows []jsonRow `json:"rows"`
	}{Rows: make([]jsonRow, 0, len(g.Rows))}
	for _, r := range g.Rows {
		out.Rows = append(out.Rows, jsonRow{
			Scenario: r.Scenario, Family: r.Family, Alg: r.Alg, B: r.B,
			Racks: r.Racks, Requests: r.Requests,
			Routing: r.Routing, Reconfig: r.Reconfig, Total: r.Total,
			ElapsedMS: r.ElapsedMS,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SummaryRows renders one aligned text line per aggregated cell.
func (g *GridResult) SummaryRows() []string {
	rows := make([]string, 0, len(g.Rows))
	for _, r := range g.Rows {
		rows = append(rows, fmt.Sprintf("%-24s %-10s b=%-3d routing=%.3e±%.1e total=%.3e  time=%8.2fms",
			r.Scenario, r.Alg, r.B, r.Routing.Mean, r.Routing.Std, r.Total.Mean, r.ElapsedMS.Mean))
	}
	return rows
}

// ReadScenarios decodes a JSON scenario list ([{...}, ...]) from r.
func ReadScenarios(r io.Reader) ([]ScenarioSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var specs []ScenarioSpec
	if err := dec.Decode(&specs); err != nil {
		return nil, fmt.Errorf("sim: decoding scenarios: %w", err)
	}
	return specs, nil
}
