package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"obm/internal/core"
	"obm/internal/stats"
	"obm/internal/trace"
)

// The scenario-grid scheduler: a list of ScenarioSpecs is expanded into a
// (scenario × algorithm × b × rep) job grid and executed by a worker pool.
// Every job builds its own streaming source, so memory is O(workers ×
// chunk) regardless of trace lengths, and jobs never share mutable state.
// Repetitions of one (scenario, algorithm, b) cell are aggregated into a
// stats.Summary row.

// GridJob identifies one cell-repetition of the grid.
type GridJob struct {
	Scenario string
	Alg      string
	B        int
	Rep      int
}

func (j GridJob) String() string {
	return fmt.Sprintf("%s/%s(b=%d)/rep=%d", j.Scenario, j.Alg, j.B, j.Rep)
}

// GridOptions tunes the grid scheduler.
type GridOptions struct {
	// Workers is the pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// ChunkSize is the streaming chunk capacity per worker
	// (trace.DefaultChunkSize if <= 0).
	ChunkSize int
	// Progress, when non-nil, is called after every finished job with the
	// completion count. Callbacks are serialized; err is the job's error
	// (nil on success).
	Progress func(done, total int, job GridJob, err error)
}

// GridRow is one aggregated cell: the final costs of one (scenario,
// algorithm, b) combination summarized over its repetitions.
type GridRow struct {
	Scenario string
	Family   string
	Alg      string
	B        int
	Requests int
	Racks    int
	// Final cumulative costs across repetitions.
	Routing  stats.Summary
	Reconfig stats.Summary
	Total    stats.Summary
	// ElapsedMS summarizes per-repetition decision-loop wall time.
	ElapsedMS stats.Summary
}

// GridResult collects every aggregated row of a grid run, in deterministic
// (spec, algorithm, b) order.
type GridResult struct {
	Rows []GridRow
}

// gridCell accumulates one row's repetitions.
type gridCell struct {
	row      GridRow
	routing  []float64
	reconfig []float64
	total    []float64
	elapsed  []float64
}

// RunGrid validates the specs, expands the job grid and executes it on the
// worker pool. All job errors are collected and joined; after the first
// failure no new jobs are started (in-flight jobs finish). On error the
// partial result is discarded.
func RunGrid(specs []ScenarioSpec, opt GridOptions) (*GridResult, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("sim: RunGrid with no scenarios")
	}
	seen := make(map[string]bool, len(specs))
	for _, spec := range specs {
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		if seen[spec.Name] {
			return nil, fmt.Errorf("sim: duplicate scenario name %q", spec.Name)
		}
		seen[spec.Name] = true
	}

	// Expand the grid. Cells are created in deterministic order; jobs
	// reference their cell by index. The cost model (an O(racks²) metric
	// construction) is built once per scenario and shared by its jobs.
	type job struct {
		GridJob
		spec  ScenarioSpec
		model core.CostModel
		alg   AlgSpec
		cell  int
	}
	var jobs []job
	var cells []*gridCell
	for _, spec := range specs {
		spec := spec.withDefaults()
		model := spec.Model()
		for _, algName := range spec.Algs {
			as, err := spec.algSpec(algName, model)
			if err != nil {
				return nil, err
			}
			bs := spec.Bs
			if as.FixedB >= 0 {
				bs = []int{as.FixedB}
			}
			for _, b := range bs {
				cells = append(cells, &gridCell{row: GridRow{
					Scenario: spec.Name,
					Family:   spec.Family,
					Alg:      algName,
					B:        b,
					Requests: spec.Requests,
					Racks:    spec.Racks,
				}})
				for rep := 0; rep < spec.Reps; rep++ {
					jobs = append(jobs, job{
						GridJob: GridJob{Scenario: spec.Name, Alg: algName, B: b, Rep: rep},
						spec:    spec,
						model:   model,
						alg:     as,
						cell:    len(cells) - 1,
					})
				}
			}
		}
	}

	type jobResult struct {
		routing  float64
		reconfig float64
		elapsed  time.Duration
	}
	results := make([]jobResult, len(jobs))
	var (
		mu   sync.Mutex // serializes Progress callbacks
		done int
	)
	err := runPool(len(jobs), opt.Workers, func() func(int) error {
		// Per-worker scratch: one chunk and one result buffer reused
		// across every job — the bounded-memory contract.
		chunk := trace.NewChunk(opt.ChunkSize)
		var res RunResult
		return func(ji int) error {
			j := &jobs[ji]
			err := runGridJob(j.spec, j.model, j.alg, j.GridJob, chunk, &res)
			if err != nil {
				err = fmt.Errorf("sim: grid %s: %w", j.GridJob, err)
			} else {
				r := &results[ji]
				if n := len(res.Series.Routing); n > 0 {
					r.routing = res.Series.Routing[n-1]
					r.reconfig = res.Series.Reconfig[n-1]
				}
				r.elapsed = res.Elapsed
			}
			if opt.Progress != nil {
				mu.Lock()
				done++
				opt.Progress(done, len(jobs), j.GridJob, err)
				mu.Unlock()
			}
			return err
		}
	})
	if err != nil {
		return nil, err
	}

	// Aggregate repetitions into rows.
	for i := range results {
		r := &results[i]
		c := cells[jobs[i].cell]
		c.routing = append(c.routing, r.routing)
		c.reconfig = append(c.reconfig, r.reconfig)
		c.total = append(c.total, r.routing+r.reconfig)
		c.elapsed = append(c.elapsed, float64(r.elapsed)/float64(time.Millisecond))
	}
	out := &GridResult{Rows: make([]GridRow, 0, len(cells))}
	for _, c := range cells {
		c.row.Routing = stats.Summarize(c.routing)
		c.row.Reconfig = stats.Summarize(c.reconfig)
		c.row.Total = stats.Summarize(c.total)
		c.row.ElapsedMS = stats.Summarize(c.elapsed)
		out.Rows = append(out.Rows, c.row)
	}
	return out, nil
}

// runGridJob replays one grid job: it builds the job's own streaming
// source (workers never share generator state) against the scenario's
// pre-built model and records the final cumulative costs via the single
// end-of-trace checkpoint.
func runGridJob(spec ScenarioSpec, model core.CostModel, as AlgSpec, j GridJob, chunk *trace.CompiledChunk, res *RunResult) error {
	st, err := spec.NewStream()
	if err != nil {
		return err
	}
	src, err := trace.NewSource(st, model.Metric.Dist)
	if err != nil {
		return err
	}
	alg, err := as.New(j.B, uint64(j.Rep))
	if err != nil {
		return err
	}
	cps := []int{src.Len()}
	if src.Len() == 0 {
		cps = nil
	}
	return runSourceInto(res, alg, src, spec.Alpha, cps, chunk)
}

// WriteCSV emits the grid result as tidy CSV, one row per aggregated cell.
func (g *GridResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "scenario,family,alg,b,racks,requests,reps,"+
		"routing_mean,routing_std,reconfig_mean,reconfig_std,total_mean,total_std,elapsed_ms_mean"); err != nil {
		return err
	}
	for _, r := range g.Rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%d,%d,%d,%d,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%.3f\n",
			r.Scenario, r.Family, r.Alg, r.B, r.Racks, r.Requests, r.Routing.N,
			r.Routing.Mean, r.Routing.Std, r.Reconfig.Mean, r.Reconfig.Std,
			r.Total.Mean, r.Total.Std, r.ElapsedMS.Mean); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits the grid result as JSON.
func (g *GridResult) WriteJSON(w io.Writer) error {
	type jsonRow struct {
		Scenario  string        `json:"scenario"`
		Family    string        `json:"family"`
		Alg       string        `json:"alg"`
		B         int           `json:"b"`
		Racks     int           `json:"racks"`
		Requests  int           `json:"requests"`
		Routing   stats.Summary `json:"routing_cost"`
		Reconfig  stats.Summary `json:"reconfig_cost"`
		Total     stats.Summary `json:"total_cost"`
		ElapsedMS stats.Summary `json:"elapsed_ms"`
	}
	out := struct {
		Rows []jsonRow `json:"rows"`
	}{Rows: make([]jsonRow, 0, len(g.Rows))}
	for _, r := range g.Rows {
		out.Rows = append(out.Rows, jsonRow{
			Scenario: r.Scenario, Family: r.Family, Alg: r.Alg, B: r.B,
			Racks: r.Racks, Requests: r.Requests,
			Routing: r.Routing, Reconfig: r.Reconfig, Total: r.Total,
			ElapsedMS: r.ElapsedMS,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SummaryRows renders one aligned text line per aggregated cell.
func (g *GridResult) SummaryRows() []string {
	rows := make([]string, 0, len(g.Rows))
	for _, r := range g.Rows {
		rows = append(rows, fmt.Sprintf("%-24s %-10s b=%-3d routing=%.3e±%.1e total=%.3e  time=%8.2fms",
			r.Scenario, r.Alg, r.B, r.Routing.Mean, r.Routing.Std, r.Total.Mean, r.ElapsedMS.Mean))
	}
	return rows
}

// ReadScenarios decodes a JSON scenario list ([{...}, ...]) from r.
func ReadScenarios(r io.Reader) ([]ScenarioSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var specs []ScenarioSpec
	if err := dec.Decode(&specs); err != nil {
		return nil, fmt.Errorf("sim: decoding scenarios: %w", err)
	}
	return specs, nil
}
