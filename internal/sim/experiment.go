package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"obm/internal/core"
	"obm/internal/trace"
)

// AlgSpec names an algorithm family and knows how to instantiate it for a
// given degree cap b and repetition seed.
type AlgSpec struct {
	Name string
	// New builds the instance; rep differs per repetition so randomized
	// algorithms get fresh seeds.
	New func(b int, rep uint64) (core.Algorithm, error)
	// FixedB, when >= 0, pins the algorithm to one b regardless of the
	// sweep (used for Oblivious, which has no b).
	FixedB int
}

// Config describes one experiment: a trace replayed by several algorithm
// families across a sweep of b values, averaged over Reps repetitions.
type Config struct {
	Name        string
	Trace       *trace.Trace
	Model       core.CostModel
	Bs          []int
	Reps        int
	Checkpoints []int
	// Compiled optionally carries Trace pre-resolved against Model's
	// metric (trace.Compile), so repeated experiment runs skip
	// re-compilation. When nil the runners compile on entry.
	Compiled *trace.Compiled
}

// Curve is an averaged result annotated with its configuration.
type Curve struct {
	Alg string
	B   int
	Avg Averaged
}

// Result collects every curve of an experiment.
type Result struct {
	Name   string
	Curves []Curve
}

// compile validates cfg and pre-resolves its trace against the cost model's
// metric, shared by every (algorithm, b, repetition) replay.
func (cfg *Config) compile() (*trace.Compiled, error) {
	if cfg.Reps < 1 {
		return nil, fmt.Errorf("sim: experiment %q needs Reps >= 1", cfg.Name)
	}
	if len(cfg.Bs) == 0 {
		return nil, fmt.Errorf("sim: experiment %q needs a b sweep", cfg.Name)
	}
	if cfg.Compiled != nil {
		if cfg.Compiled.NumRacks != cfg.Trace.NumRacks || cfg.Compiled.Len() != cfg.Trace.Len() {
			return nil, fmt.Errorf("sim: experiment %q: Compiled (%d racks, %d requests) does not match Trace (%d racks, %d requests)",
				cfg.Name, cfg.Compiled.NumRacks, cfg.Compiled.Len(), cfg.Trace.NumRacks, cfg.Trace.Len())
		}
		return cfg.Compiled, nil
	}
	ct, err := cfg.Trace.Compile(cfg.Model.Metric.Dist)
	if err != nil {
		return nil, fmt.Errorf("sim: experiment %q: %w", cfg.Name, err)
	}
	return ct, nil
}

// RunExperiment executes cfg for each algorithm spec and each b. The trace
// is compiled once and replayed through a single scratch buffer, so the
// per-run cost is the decision loops themselves.
func RunExperiment(cfg Config, specs []AlgSpec) (*Result, error) {
	ct, err := cfg.compile()
	if err != nil {
		return nil, err
	}
	res := &Result{Name: cfg.Name}
	var sc scratch
	for _, spec := range specs {
		bs := cfg.Bs
		if spec.FixedB >= 0 {
			bs = []int{spec.FixedB}
		}
		for _, b := range bs {
			f := func(rep uint64) (core.Algorithm, error) { return spec.New(b, rep) }
			avg, err := runAveragedCompiled(f, ct, cfg.Model.Alpha, cfg.Checkpoints, cfg.Reps, &sc)
			if err != nil {
				return nil, fmt.Errorf("sim: %s/%s(b=%d): %w", cfg.Name, spec.Name, b, err)
			}
			res.Curves = append(res.Curves, Curve{Alg: spec.Name, B: b, Avg: avg})
		}
	}
	return res, nil
}

// WriteJSON emits the experiment result as JSON (one object with the
// experiment name and the list of curves).
func (r *Result) WriteJSON(w io.Writer) error {
	type jsonCurve struct {
		Alg       string    `json:"alg"`
		B         int       `json:"b"`
		X         []int     `json:"requests"`
		Routing   []float64 `json:"routing_cost"`
		Reconfig  []float64 `json:"reconfig_cost"`
		ElapsedMS float64   `json:"elapsed_ms"`
		Reps      int       `json:"reps"`
	}
	out := struct {
		Name   string      `json:"experiment"`
		Curves []jsonCurve `json:"curves"`
	}{Name: r.Name}
	for _, c := range r.Curves {
		out.Curves = append(out.Curves, jsonCurve{
			Alg:       c.Alg,
			B:         c.B,
			X:         c.Avg.X,
			Routing:   c.Avg.Routing,
			Reconfig:  c.Avg.Reconfig,
			ElapsedMS: float64(c.Avg.Elapsed) / float64(time.Millisecond),
			Reps:      c.Avg.Reps,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteCSV emits the experiment result as tidy CSV:
// experiment,alg,b,requests,routing_cost,reconfig_cost,total_cost,elapsed_ms
func (r *Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "experiment,alg,b,requests,routing_cost,reconfig_cost,total_cost,elapsed_ms"); err != nil {
		return err
	}
	for _, c := range r.Curves {
		for i, x := range c.Avg.X {
			total := c.Avg.Routing[i] + c.Avg.Reconfig[i]
			if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%.1f,%.1f,%.1f,%.3f\n",
				r.Name, c.Alg, c.B, x, c.Avg.Routing[i], c.Avg.Reconfig[i], total,
				float64(c.Avg.Elapsed)/float64(time.Millisecond)); err != nil {
				return err
			}
		}
	}
	return nil
}

// FinalRouting returns each curve's final cumulative routing cost, keyed
// "alg(b=?)", for summary tables.
func (r *Result) FinalRouting() map[string]float64 {
	out := make(map[string]float64, len(r.Curves))
	for _, c := range r.Curves {
		if len(c.Avg.Routing) == 0 {
			continue
		}
		out[fmt.Sprintf("%s(b=%d)", c.Alg, c.B)] = c.Avg.Routing[len(c.Avg.Routing)-1]
	}
	return out
}

// SummaryRows renders "alg b final_routing elapsed_ms" rows sorted by
// algorithm then b, for terminal output.
func (r *Result) SummaryRows() []string {
	curves := append([]Curve(nil), r.Curves...)
	sort.Slice(curves, func(i, j int) bool {
		if curves[i].Alg != curves[j].Alg {
			return curves[i].Alg < curves[j].Alg
		}
		return curves[i].B < curves[j].B
	})
	rows := make([]string, 0, len(curves))
	for _, c := range curves {
		final := 0.0
		if n := len(c.Avg.Routing); n > 0 {
			final = c.Avg.Routing[n-1]
		}
		rows = append(rows, fmt.Sprintf("%-22s b=%-3d routing=%.3e  time=%8.2fms",
			c.Alg, c.B, final, float64(c.Avg.Elapsed)/float64(time.Millisecond)))
	}
	return rows
}
